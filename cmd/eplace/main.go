// Command eplace runs the full ePlace flow (mIP -> mGP -> mLG -> cGP ->
// cDP) on a Bookshelf benchmark or a generated synthetic circuit and
// writes the placed .pl plus a quality report.
//
// Usage:
//
//	eplace -aux design.aux -out placed.pl
//	eplace -synth 5000 -macros 10 -density 0.8 -out placed.pl
//	eplace -aux design.aux -solver cg          # FFTPL mode (CG baseline)
//	eplace -synth 5000 -trace out.jsonl -status :6060 -bench-out BENCH.json
//	eplace -synth 5000 -checkpoint-dir ckpt -checkpoint-every 100
//	eplace -synth 5000 -checkpoint-dir ckpt -resume    # continue after a crash
package main

import (
	"flag"
	"fmt"
	"os"

	"eplace/internal/bookshelf"
	"eplace/internal/checkpoint"
	"eplace/internal/congestion"
	"eplace/internal/core"
	"eplace/internal/metrics"
	"eplace/internal/netlist"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
	"eplace/internal/timing"
	"eplace/internal/viz"
)

func main() {
	var (
		auxPath  = flag.String("aux", "", "Bookshelf .aux file to place")
		synthN   = flag.Int("synth", 0, "generate a synthetic circuit with N standard cells")
		macros   = flag.Int("macros", 0, "movable macros for -synth")
		density  = flag.Float64("density", 1.0, "target density rho_t for -synth")
		seed     = flag.Int64("seed", 1, "synthetic circuit seed")
		outPath  = flag.String("out", "", "output .pl path (optional)")
		solver   = flag.String("solver", "nesterov", "global placement solver: nesterov | cg")
		gridM    = flag.Int("grid", 0, "bin grid size per side (power of two, 0 = auto)")
		maxIters = flag.Int("iters", 0, "max GP iterations (0 = default 3000)")
		workers  = flag.Int("workers", 0, "gradient-kernel workers (0 = all cores, 1 = serial)")
		gpOnly   = flag.Bool("gp-only", false, "stop after global placement (no legalization)")
		tdPasses = flag.Int("timing", 0, "timing-driven reweighting passes (extension)")
		cgPasses = flag.Int("congestion", 0, "congestion-driven reweighting passes (extension)")
		heatmap  = flag.String("heatmap", "", "directory for PGM heatmaps of the final layout")
		quiet    = flag.Bool("q", false, "suppress progress output")

		tracePath = flag.String("trace", "", "write per-iteration telemetry as JSON lines to this file")
		csvPath   = flag.String("trace-csv", "", "write per-iteration telemetry as CSV to this file")
		statusAdr = flag.String("status", "", "serve live /status, /samples, expvar and pprof on this address (e.g. :6060)")
		benchOut  = flag.String("bench-out", "", "write a machine-readable benchmark record (JSON) to this file")

		ckptDir   = flag.String("checkpoint-dir", "", "persist crash-safe flow snapshots into this directory")
		ckptEvery = flag.Int("checkpoint-every", 0, "also snapshot every N global-placement iterations (0 = stage boundaries only)")
		resume    = flag.Bool("resume", false, "continue from <checkpoint-dir>/latest.ckpt instead of starting fresh")
		digests   = flag.Bool("digests", false, "print the per-stage golden determinism digests")
	)
	flag.Parse()

	var d *netlist.Design
	var err error
	switch {
	case *auxPath != "":
		d, err = bookshelf.ReadAux(*auxPath)
		if err != nil {
			fatal("reading %s: %v", *auxPath, err)
		}
	case *synthN > 0:
		d = synth.Generate(synth.Spec{
			Name:             "synthetic",
			NumCells:         *synthN,
			NumMovableMacros: *macros,
			TargetDensity:    *density,
			Seed:             *seed,
		})
	default:
		fmt.Fprintln(os.Stderr, "eplace: need -aux FILE or -synth N")
		flag.Usage()
		os.Exit(2)
	}
	if err := d.Validate(); err != nil {
		fatal("invalid design: %v", err)
	}
	if !*quiet {
		fmt.Printf("design %s: %s\n", d.Name, d.Stats())
	}

	// Telemetry: assemble the sink stack the recorder fans out to.
	var sinks []telemetry.Sink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal("trace file: %v", err)
		}
		sinks = append(sinks, telemetry.NewJSONLSink(f))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal("trace CSV file: %v", err)
		}
		sinks = append(sinks, telemetry.NewCSVSink(f))
	}
	var ring *telemetry.RingSink
	if *statusAdr != "" {
		ring = telemetry.NewRingSink(4096)
		sinks = append(sinks, ring)
	}
	var rec *telemetry.Recorder
	if len(sinks) > 0 || *benchOut != "" {
		rec = telemetry.New(sinks...)
		rec.SetWorkers(*workers)
	}
	if *statusAdr != "" {
		srv, err := telemetry.ServeStatus(*statusAdr, rec, ring)
		if err != nil {
			fatal("status server: %v", err)
		}
		defer srv.Close()
		if !*quiet {
			fmt.Printf("status        http://%s/status (pprof on /debug/pprof/)\n", srv.Addr())
		}
	}

	gp := core.Options{GridM: *gridM, MaxIters: *maxIters, Workers: *workers, Telemetry: rec}
	if *solver == "cg" {
		gp.Solver = core.SolverCG
	} else if *solver != "nesterov" {
		fatal("unknown solver %q", *solver)
	}
	gp.CheckpointEvery = *ckptEvery

	// Checkpointing and resume: the flow snapshots itself at stage
	// boundaries (plus every -checkpoint-every GP iterations) and can
	// continue from latest.ckpt with a bitwise-identical result.
	flow := core.FlowOptions{GP: gp, SkipLegalization: *gpOnly}
	if *resume && *ckptDir == "" {
		fatal("-resume requires -checkpoint-dir")
	}
	if *ckptDir != "" {
		mgr, err := checkpoint.NewManager(*ckptDir)
		if err != nil {
			fatal("checkpoint dir: %v", err)
		}
		flow.Checkpoint = mgr
		if *resume {
			st, err := mgr.Load()
			if err != nil {
				fatal("loading checkpoint: %v", err)
			}
			flow.Resume = st
			if !*quiet {
				fmt.Printf("resuming      phase %q of %q\n", st.Phase, st.DesignName)
			}
		}
	}
	res, err := core.Place(d, flow)
	if err != nil {
		fatal("placement failed: %v", err)
	}

	// Optional timing-driven passes (Sec. VIII extension): analyze,
	// reweight critical nets, re-place.
	if *tdPasses > 0 {
		tg := timing.Build(d, timing.Options{})
		tg.Analyze()
		fmt.Printf("timing        critical path %.4g before reweighting\n", tg.WorstArrival)
		for pass := 0; pass < *tdPasses; pass++ {
			tg.TimingWeights(3)
			res, err = core.Place(d, core.FlowOptions{GP: gp, SkipLegalization: *gpOnly})
			if err != nil {
				fatal("timing-driven pass %d failed: %v", pass+1, err)
			}
			tg.Analyze()
			fmt.Printf("timing        critical path %.4g after pass %d\n", tg.WorstArrival, pass+1)
		}
	}

	// Optional congestion-driven passes (Sec. VIII extension): RUDY map,
	// reweight congested nets, re-place.
	if *cgPasses > 0 {
		cm := congestion.Compute(d, 0, congestion.Options{})
		st := cm.Stats()
		fmt.Printf("congestion    max %.3f avg %.3f overflowed bins %d before reweighting\n",
			st.MaxRatio, st.AvgRatio, st.OverflowedBins)
		for pass := 0; pass < *cgPasses; pass++ {
			cm.Weights(d, 2)
			res, err = core.Place(d, core.FlowOptions{GP: gp, SkipLegalization: *gpOnly})
			if err != nil {
				fatal("congestion-driven pass %d failed: %v", pass+1, err)
			}
			cm = congestion.Compute(d, 0, congestion.Options{})
			st = cm.Stats()
			fmt.Printf("congestion    max %.3f avg %.3f overflowed bins %d after pass %d\n",
				st.MaxRatio, st.AvgRatio, st.OverflowedBins, pass+1)
		}
	}

	rep := metrics.Measure(d.Name, "ePlace", d, *gridM, 0, res.Legal)
	fmt.Printf("HPWL          %.6g\n", rep.HPWL)
	fmt.Printf("scaled HPWL   %.6g\n", rep.ScaledHPWL)
	fmt.Printf("overflow tau  %.4f\n", rep.Overflow)
	fmt.Printf("legal         %v\n", rep.Legal)
	fmt.Printf("mGP           %d iters, tau %.4f, %d backtracks\n",
		res.MGP.Iterations, res.MGP.Overflow, res.MGP.Backtracks)
	if res.MixedSize {
		fmt.Printf("mLG           j=%d, Om %.4g -> %.4g\n",
			res.MLG.OuterIterations, res.MLG.OmBefore, res.MLG.OmAfter)
		fmt.Printf("cGP           %d iters, tau %.4f\n", res.CGP.Iterations, res.CGP.Overflow)
	}
	for _, stage := range res.Stages {
		fmt.Printf("time %-8s %v\n", stage.Name, stage.Time.Round(1e6))
	}
	if *digests {
		for _, sd := range res.Digests {
			fmt.Printf("digest %-10s %s (%d iters)\n", sd.Stage, sd.Hex(), sd.Iterations)
		}
	}

	if *benchOut != "" {
		b := telemetry.BenchRecord{
			Benchmark:  d.Name,
			Cells:      len(d.Cells),
			Nets:       len(d.Nets),
			Pins:       len(d.Pins),
			HPWL:       rep.HPWL,
			ScaledHPWL: rep.ScaledHPWL,
			Overflow:   rep.Overflow,
			Legal:      rep.Legal,
			Iterations: map[string]int{"mGP": res.MGP.Iterations},
			Digests:    res.Digests,
		}
		if res.MixedSize {
			b.Iterations["cGP"] = res.CGP.Iterations
		}
		for _, stage := range res.Stages {
			b.Stages = append(b.Stages, telemetry.StageSeconds{
				Name: stage.Name, Seconds: stage.Time.Seconds(),
			})
			b.Seconds += stage.Time.Seconds()
		}
		b.KernelsFrom(rec)
		report := telemetry.NewBenchReport("eplace-cli")
		report.Workers = *workers
		report.Add(b)
		if err := report.WriteFile(*benchOut); err != nil {
			fatal("writing %s: %v", *benchOut, err)
		}
		if !*quiet {
			fmt.Printf("wrote %s\n", *benchOut)
		}
	}
	if err := rec.Close(); err != nil {
		fatal("closing telemetry sinks: %v", err)
	}

	if *heatmap != "" {
		if err := os.MkdirAll(*heatmap, 0o755); err != nil {
			fatal("heatmap dir: %v", err)
		}
		m := 128
		layout := viz.RasterizeLayout(d, m)
		if err := viz.SavePGM(*heatmap+"/layout.pgm", layout, m); err != nil {
			fatal("heatmap: %v", err)
		}
		cm := congestion.Compute(d, m, congestion.Options{})
		if err := viz.SavePGM(*heatmap+"/congestion.pgm", cm.Demand, m); err != nil {
			fatal("heatmap: %v", err)
		}
		if !*quiet {
			fmt.Printf("wrote %s/layout.pgm and congestion.pgm\n", *heatmap)
		}
	}

	if *outPath != "" {
		if err := bookshelf.WritePL(d, *outPath); err != nil {
			fatal("writing %s: %v", *outPath, err)
		}
		if !*quiet {
			fmt.Printf("wrote %s\n", *outPath)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "eplace: "+format+"\n", args...)
	os.Exit(1)
}
