// Command eplace runs the full ePlace flow (mIP -> mGP -> mLG -> cGP ->
// cDP) on a Bookshelf benchmark or a generated synthetic circuit and
// writes the placed .pl plus a quality report — or, with -serve, runs
// as a placement job server that schedules many such flows.
//
// Usage:
//
//	eplace -aux design.aux -out placed.pl
//	eplace -synth 5000 -macros 10 -density 0.8 -out placed.pl
//	eplace -aux design.aux -solver cg          # FFTPL mode (CG baseline)
//	eplace -synth 5000 -trace out.jsonl -status :6060 -bench-out BENCH.json
//	eplace -synth 5000 -checkpoint-dir ckpt -checkpoint-every 100
//	eplace -synth 5000 -checkpoint-dir ckpt -resume    # continue after a crash
//	eplace -synth 5000 -eco edits.json -from prev.ckpt # incremental re-placement
//	eplace -serve :8080 -serve-dir jobs -serve-jobs 2  # placement-as-a-service
//
// SIGINT/SIGTERM cancel the flow context: an interrupted run flushes
// its telemetry sinks and (with -checkpoint-dir) persists a final
// mid-stage checkpoint before exiting, so -resume continues it with a
// bitwise-identical result. In -serve mode the same signals drain the
// HTTP server and checkpoint every running job.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"

	"eplace/internal/bookshelf"
	"eplace/internal/checkpoint"
	"eplace/internal/congestion"
	"eplace/internal/core"
	"eplace/internal/eco"
	"eplace/internal/metrics"
	"eplace/internal/netlist"
	"eplace/internal/poisson"
	"eplace/internal/server"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
	"eplace/internal/timing"
	"eplace/internal/viz"
)

func main() {
	// Trap SIGINT/SIGTERM into context cancellation so every cleanup
	// below runs as a defer instead of being skipped by os.Exit: sinks
	// flush, the status server drains, running flows checkpoint. A
	// second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "eplace: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		auxPath  = flag.String("aux", "", "Bookshelf .aux file to place")
		synthN   = flag.Int("synth", 0, "generate a synthetic circuit with N standard cells")
		macros   = flag.Int("macros", 0, "movable macros for -synth")
		density  = flag.Float64("density", 1.0, "target density rho_t for -synth")
		seed     = flag.Int64("seed", 1, "synthetic circuit seed")
		outPath  = flag.String("out", "", "output .pl path (optional)")
		solver   = flag.String("solver", "nesterov", "global placement solver: nesterov | cg")
		poiKind  = flag.String("poisson", "", "eDensity Poisson backend: spectral | spectral32 | multigrid (default spectral)")
		gridM    = flag.Int("grid", 0, "bin grid size per side (power of two, 0 = auto)")
		maxIters = flag.Int("iters", 0, "max GP iterations (0 = default 3000)")
		workers  = flag.Int("workers", 0, "gradient-kernel workers (0 = all cores, 1 = serial)")
		gpOnly   = flag.Bool("gp-only", false, "stop after global placement (no legalization)")
		levels   = flag.Int("levels", 1, "multilevel V-cycle levels (1 = flat; >1 clusters the netlist and warm-starts each level)")
		clCap    = flag.Float64("cluster-cap", 0, "cluster area cap as a multiple of the average std-cell area (0 = default)")
		tdPasses = flag.Int("timing", 0, "timing-driven reweighting passes (extension)")
		cgPasses = flag.Int("congestion", 0, "congestion-driven reweighting passes (extension)")
		heatmap  = flag.String("heatmap", "", "directory for PGM heatmaps of the final layout")
		quiet    = flag.Bool("q", false, "suppress progress output")

		tracePath = flag.String("trace", "", "write per-iteration telemetry as JSON lines to this file")
		csvPath   = flag.String("trace-csv", "", "write per-iteration telemetry as CSV to this file")
		statusAdr = flag.String("status", "", "serve live /status, /samples, expvar and pprof on this address (e.g. :6060)")
		benchOut  = flag.String("bench-out", "", "write a machine-readable benchmark record (JSON) to this file")

		ecoPath  = flag.String("eco", "", "apply an ECO edit script (JSON) and re-place incrementally; requires -from")
		fromPath = flag.String("from", "", "previous placement to warm-start -eco from: a .ckpt snapshot or a placed .pl")

		ckptDir   = flag.String("checkpoint-dir", "", "persist crash-safe flow snapshots into this directory")
		ckptEvery = flag.Int("checkpoint-every", 0, "also snapshot every N global-placement iterations (0 = stage boundaries only)")
		resume    = flag.Bool("resume", false, "continue from <checkpoint-dir>/latest.ckpt instead of starting fresh")
		digests   = flag.Bool("digests", false, "print the per-stage golden determinism digests")

		serveAddr  = flag.String("serve", "", "run as a placement job server on this address (e.g. :8080)")
		serveDir   = flag.String("serve-dir", "eplace-jobs", "job state root for -serve (checkpoints, traces, results)")
		serveJobs  = flag.Int("serve-jobs", 2, "concurrent placements for -serve")
		serveEvery = flag.Int("serve-every", 25, "mid-stage checkpoint cadence (GP iterations) for -serve jobs")
	)
	flag.Parse()

	if *serveAddr != "" {
		return serve(ctx, *serveAddr, *serveDir, *serveJobs, *workers, *serveEvery, *quiet)
	}

	var d *netlist.Design
	var err error
	switch {
	case *auxPath != "":
		d, err = bookshelf.ReadAux(*auxPath)
		if err != nil {
			return fmt.Errorf("reading %s: %w", *auxPath, err)
		}
	case *synthN > 0:
		d = synth.Generate(synth.Spec{
			Name:             "synthetic",
			NumCells:         *synthN,
			NumMovableMacros: *macros,
			TargetDensity:    *density,
			Seed:             *seed,
		})
	default:
		fmt.Fprintln(os.Stderr, "eplace: need -aux FILE, -synth N, or -serve ADDR")
		flag.Usage()
		return errors.New("no design given")
	}
	if err := d.Validate(); err != nil {
		return fmt.Errorf("invalid design: %w", err)
	}
	if !*quiet {
		fmt.Printf("design %s: %s\n", d.Name, d.Stats())
	}

	// Telemetry: assemble the sink stack the recorder fans out to. The
	// recorder is closed by defer so an interrupted or failed run still
	// flushes every sink (Close is idempotent; the success path also
	// closes explicitly to surface flush errors).
	var sinks []telemetry.Sink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		sinks = append(sinks, telemetry.NewJSONLSink(f))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("trace CSV file: %w", err)
		}
		sinks = append(sinks, telemetry.NewCSVSink(f))
	}
	var ring *telemetry.RingSink
	if *statusAdr != "" {
		ring = telemetry.NewRingSink(4096)
		sinks = append(sinks, ring)
	}
	var rec *telemetry.Recorder
	if len(sinks) > 0 || *benchOut != "" {
		rec = telemetry.New(sinks...)
		rec.SetWorkers(*workers)
		defer rec.Close()
	}
	if *statusAdr != "" {
		srv, err := telemetry.ServeStatus(*statusAdr, rec, ring)
		if err != nil {
			return fmt.Errorf("status server: %w", err)
		}
		defer srv.Close()
		if !*quiet {
			fmt.Printf("status        http://%s/status (pprof on /debug/pprof/)\n", srv.Addr())
		}
	}

	gp := core.Options{GridM: *gridM, MaxIters: *maxIters, Workers: *workers, Telemetry: rec}
	if *solver == "cg" {
		gp.Solver = core.SolverCG
	} else if *solver != "nesterov" {
		return fmt.Errorf("unknown solver %q", *solver)
	}
	gp.Poisson = *poiKind
	if !slices.Contains(poisson.Kinds(), poisson.NormalizeKind(*poiKind)) {
		return fmt.Errorf("unknown poisson backend %q (have %s)",
			*poiKind, strings.Join(poisson.Kinds(), " | "))
	}
	gp.CheckpointEvery = *ckptEvery

	// Incremental (ECO) mode: warm-start from a previous placement of
	// the same design source, apply the edit script, and re-place only
	// the affected cells.
	if *ecoPath != "" {
		return runEco(ctx, d, gp, *ecoPath, *fromPath, *outPath, *ckptDir, *digests, *quiet)
	}
	if *fromPath != "" {
		return errors.New("-from requires -eco EDITS.json")
	}

	// Checkpointing and resume: the flow snapshots itself at stage
	// boundaries (plus every -checkpoint-every GP iterations) and can
	// continue from latest.ckpt with a bitwise-identical result.
	flow := core.FlowOptions{GP: gp, SkipLegalization: *gpOnly, Levels: *levels, ClusterCap: *clCap}
	if *resume && *ckptDir == "" {
		return errors.New("-resume requires -checkpoint-dir")
	}
	if *ckptDir != "" {
		mgr, err := checkpoint.NewManager(*ckptDir)
		if err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
		flow.Checkpoint = mgr
		if *resume {
			st, err := mgr.Load()
			if err != nil {
				return fmt.Errorf("loading checkpoint: %w", err)
			}
			flow.Resume = st
			if !*quiet {
				fmt.Printf("resuming      phase %q of %q\n", st.Phase, st.DesignName)
			}
		}
	}
	res, err := core.PlaceContext(ctx, d, flow)
	if errors.Is(err, core.ErrCanceled) {
		if *ckptDir != "" {
			fmt.Fprintf(os.Stderr, "eplace: interrupted; final checkpoint saved, continue with -resume\n")
		}
		return err
	}
	if err != nil {
		return fmt.Errorf("placement failed: %w", err)
	}

	// Optional timing-driven passes (Sec. VIII extension): analyze,
	// reweight critical nets, re-place.
	if *tdPasses > 0 {
		tg := timing.Build(d, timing.Options{})
		tg.Analyze()
		fmt.Printf("timing        critical path %.4g before reweighting\n", tg.WorstArrival)
		for pass := 0; pass < *tdPasses; pass++ {
			tg.TimingWeights(3)
			res, err = core.Place(d, core.FlowOptions{GP: gp, SkipLegalization: *gpOnly})
			if err != nil {
				return fmt.Errorf("timing-driven pass %d failed: %w", pass+1, err)
			}
			tg.Analyze()
			fmt.Printf("timing        critical path %.4g after pass %d\n", tg.WorstArrival, pass+1)
		}
	}

	// Optional congestion-driven passes (Sec. VIII extension): RUDY map,
	// reweight congested nets, re-place.
	if *cgPasses > 0 {
		cm := congestion.Compute(d, 0, congestion.Options{})
		st := cm.Stats()
		fmt.Printf("congestion    max %.3f avg %.3f overflowed bins %d before reweighting\n",
			st.MaxRatio, st.AvgRatio, st.OverflowedBins)
		for pass := 0; pass < *cgPasses; pass++ {
			cm.Weights(d, 2)
			res, err = core.Place(d, core.FlowOptions{GP: gp, SkipLegalization: *gpOnly})
			if err != nil {
				return fmt.Errorf("congestion-driven pass %d failed: %w", pass+1, err)
			}
			cm = congestion.Compute(d, 0, congestion.Options{})
			st = cm.Stats()
			fmt.Printf("congestion    max %.3f avg %.3f overflowed bins %d after pass %d\n",
				st.MaxRatio, st.AvgRatio, st.OverflowedBins, pass+1)
		}
	}

	rep := metrics.Measure(d.Name, "ePlace", d, *gridM, 0, res.Legal)
	fmt.Printf("HPWL          %.6g\n", rep.HPWL)
	fmt.Printf("scaled HPWL   %.6g\n", rep.ScaledHPWL)
	fmt.Printf("overflow tau  %.4f\n", rep.Overflow)
	fmt.Printf("legal         %v\n", rep.Legal)
	for _, ml := range res.ML {
		fmt.Printf("mGP/L%-8d %d cells, %d iters, tau %.4f\n",
			ml.Level, ml.Cells, ml.Result.Iterations, ml.Result.Overflow)
	}
	fmt.Printf("mGP           %d iters, tau %.4f, %d backtracks\n",
		res.MGP.Iterations, res.MGP.Overflow, res.MGP.Backtracks)
	if res.MixedSize {
		fmt.Printf("mLG           j=%d, Om %.4g -> %.4g\n",
			res.MLG.OuterIterations, res.MLG.OmBefore, res.MLG.OmAfter)
		fmt.Printf("cGP           %d iters, tau %.4f\n", res.CGP.Iterations, res.CGP.Overflow)
	}
	for _, stage := range res.Stages {
		fmt.Printf("time %-8s %v\n", stage.Name, stage.Time.Round(1e6))
	}
	if *digests {
		for _, sd := range res.Digests {
			fmt.Printf("digest %-10s %s (%d iters)\n", sd.Stage, sd.Hex(), sd.Iterations)
		}
	}

	if *benchOut != "" {
		b := telemetry.BenchRecord{
			Benchmark:  d.Name,
			Cells:      len(d.Cells),
			Nets:       len(d.Nets),
			Pins:       len(d.Pins),
			HPWL:       rep.HPWL,
			ScaledHPWL: rep.ScaledHPWL,
			Overflow:   rep.Overflow,
			Legal:      rep.Legal,
			Iterations: map[string]int{"mGP": res.MGP.Iterations},
			Digests:    res.Digests,
		}
		if res.MixedSize {
			b.Iterations["cGP"] = res.CGP.Iterations
		}
		for _, ml := range res.ML {
			b.Iterations[fmt.Sprintf("mGP/L%d", ml.Level)] = ml.Result.Iterations
		}
		for _, stage := range res.Stages {
			b.Stages = append(b.Stages, telemetry.StageSeconds{
				Name: stage.Name, Seconds: stage.Time.Seconds(),
			})
			b.Seconds += stage.Time.Seconds()
		}
		b.KernelsFrom(rec)
		report := telemetry.NewBenchReport("eplace-cli")
		report.Workers = *workers
		report.Add(b)
		if err := report.WriteFile(*benchOut); err != nil {
			return fmt.Errorf("writing %s: %w", *benchOut, err)
		}
		if !*quiet {
			fmt.Printf("wrote %s\n", *benchOut)
		}
	}
	if err := rec.Close(); err != nil {
		return fmt.Errorf("closing telemetry sinks: %w", err)
	}

	if *heatmap != "" {
		if err := os.MkdirAll(*heatmap, 0o755); err != nil {
			return fmt.Errorf("heatmap dir: %w", err)
		}
		m := 128
		layout := viz.RasterizeLayout(d, m)
		if err := viz.SavePGM(*heatmap+"/layout.pgm", layout, m); err != nil {
			return fmt.Errorf("heatmap: %w", err)
		}
		cm := congestion.Compute(d, m, congestion.Options{})
		if err := viz.SavePGM(*heatmap+"/congestion.pgm", cm.Demand, m); err != nil {
			return fmt.Errorf("heatmap: %w", err)
		}
		if !*quiet {
			fmt.Printf("wrote %s/layout.pgm and congestion.pgm\n", *heatmap)
		}
	}

	if *outPath != "" {
		if err := bookshelf.WritePL(d, *outPath); err != nil {
			return fmt.Errorf("writing %s: %w", *outPath, err)
		}
		if !*quiet {
			fmt.Printf("wrote %s\n", *outPath)
		}
	}
	return nil
}

// runEco executes `-eco edits.json -from prev.ckpt|.pl`: load the
// previous placement into d (which must be built from the same design
// source as the original run), apply the edit script, and run the
// incremental re-placement.
func runEco(ctx context.Context, d *netlist.Design, gp core.Options, ecoPath, fromPath, outPath, ckptDir string, digests, quiet bool) error {
	if fromPath == "" {
		return errors.New("-eco requires -from PREV.ckpt or -from PREV.pl")
	}
	if strings.HasSuffix(fromPath, ".ckpt") {
		st, err := checkpoint.ReadFile(fromPath)
		if err != nil {
			return fmt.Errorf("loading %s: %w", fromPath, err)
		}
		if err := core.WarmStart(d, st); err != nil {
			return err
		}
		// Stay on the backend the warm-start positions came from unless
		// one was selected explicitly.
		if gp.Poisson == "" {
			gp.Poisson = st.Poisson
		}
	} else {
		if err := bookshelf.ReadPL(d, fromPath); err != nil {
			return fmt.Errorf("loading %s: %w", fromPath, err)
		}
	}
	script, err := eco.LoadScript(ecoPath)
	if err != nil {
		return err
	}
	prep, err := eco.Prepare(d, script, eco.PlanOptions{})
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Println(prep.Plan.String())
	}
	opt := core.ECOOptions{GP: gp}
	if ckptDir != "" {
		mgr, err := checkpoint.NewManager(ckptDir)
		if err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
		opt.Checkpoint = mgr
	}
	res, err := core.PlaceECO(ctx, d, prep.Plan, opt)
	if err != nil {
		return err
	}
	if res.NoOp {
		fmt.Println("eco           structural no-op: previous placement reused")
	} else {
		fmt.Printf("eGP           %d iters, tau %.4f (%d active / %d frozen cells)\n",
			res.GP.Iterations, res.GP.Overflow, res.ActiveCells, res.FrozenCells)
	}
	fmt.Printf("HPWL          %.6g\n", res.HPWL)
	fmt.Printf("legal         %v\n", res.Legal)
	for _, stage := range res.Stages {
		fmt.Printf("time %-8s %v\n", stage.Name, stage.Time.Round(1e6))
	}
	if digests {
		for _, sd := range res.Digests {
			fmt.Printf("digest %-10s %s (%d iters)\n", sd.Stage, sd.Hex(), sd.Iterations)
		}
	}
	if outPath != "" {
		if err := bookshelf.WritePL(d, outPath); err != nil {
			return fmt.Errorf("writing %s: %w", outPath, err)
		}
		if !quiet {
			fmt.Printf("wrote %s\n", outPath)
		}
	}
	return nil
}

// serve runs the placement job server until the context is canceled
// (SIGINT/SIGTERM), then drains HTTP and checkpoints every running job
// before returning.
func serve(ctx context.Context, addr, dir string, jobs, workersPerJob, every int, quiet bool) error {
	cfg := server.Config{
		MaxConcurrent:   jobs,
		WorkersPerJob:   workersPerJob,
		CheckpointEvery: every,
		Dir:             dir,
	}
	if !quiet {
		cfg.Log = os.Stderr
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	h, err := server.ListenAndServe(addr, s)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("serving placement jobs on http://%s/jobs (state in %s)\n", h.Addr(), dir)
	}
	<-ctx.Done()
	if !quiet {
		fmt.Println("shutting down: draining HTTP, checkpointing running jobs")
	}
	if err := h.Close(); err != nil {
		return err
	}
	return s.Close()
}
