// Command evaluate scores a placement the way the ISPD contest scripts
// do (the "official scripts" the paper evaluates with, Sec. VII): it
// loads a Bookshelf benchmark, optionally substitutes a solution .pl,
// and reports HPWL, scaled HPWL, density overflow and legality.
//
// Usage:
//
//	evaluate -aux design.aux                    # score the .pl in the aux
//	evaluate -aux design.aux -pl placed.pl      # score a solution file
//	evaluate -aux design.aux -density 0.5       # override rho_t
package main

import (
	"flag"
	"fmt"
	"os"

	"eplace/internal/bookshelf"
	"eplace/internal/legalize"
	"eplace/internal/metrics"
	"eplace/internal/netlist"
)

func main() {
	var (
		auxPath = flag.String("aux", "", "Bookshelf .aux benchmark")
		plPath  = flag.String("pl", "", "solution .pl to score (default: the aux's own)")
		density = flag.Float64("density", 0, "target density override (0 = benchmark value)")
		gridM   = flag.Int("grid", 0, "density grid size (0 = auto)")
	)
	flag.Parse()
	if *auxPath == "" {
		fmt.Fprintln(os.Stderr, "evaluate: need -aux FILE")
		flag.Usage()
		os.Exit(2)
	}
	d, err := bookshelf.ReadAux(*auxPath)
	if err != nil {
		fatal("reading %s: %v", *auxPath, err)
	}
	if *plPath != "" {
		if err := bookshelf.ReadPL(d, *plPath); err != nil {
			fatal("reading %s: %v", *plPath, err)
		}
	}
	if *density > 0 {
		d.TargetDensity = *density
	}
	if err := d.Validate(); err != nil {
		fatal("invalid design: %v", err)
	}

	legal := false
	legalErr := error(nil)
	if len(d.Rows) > 0 {
		legalErr = legalize.CheckLegal(d, d.MovableOf(netlist.StdCell))
		legal = legalErr == nil
		if legal {
			movMacros := d.MovableOf(netlist.Macro)
			if len(movMacros) > 0 {
				legalErr = legalize.CheckMacrosLegal(d, movMacros)
				legal = legalErr == nil
			}
		}
	}

	rep := metrics.Measure(d.Name, "evaluate", d, *gridM, 0, legal)
	fmt.Printf("circuit         %s (%s)\n", d.Name, d.Stats())
	fmt.Printf("target density  %.2f\n", d.TargetDensity)
	fmt.Printf("HPWL            %.6g\n", rep.HPWL)
	fmt.Printf("scaled HPWL     %.6g (tau_avg %.2f%%)\n", rep.ScaledHPWL, rep.OverflowPerBin)
	fmt.Printf("overflow tau    %.4f\n", rep.Overflow)
	fmt.Printf("total overlap   %.6g\n", rep.Overlap)
	if len(d.Rows) == 0 {
		fmt.Printf("legal           n/a (no rows in benchmark)\n")
	} else if legal {
		fmt.Printf("legal           true\n")
	} else {
		fmt.Printf("legal           false (%v)\n", legalErr)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "evaluate: "+format+"\n", args...)
	os.Exit(1)
}
