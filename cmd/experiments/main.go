// Command experiments regenerates every table and figure of the
// paper's evaluation on the synthetic suites (see DESIGN.md for the
// experiment index).
//
// Usage:
//
//	experiments -exp table1                 # Table I  (ISPD2005-like)
//	experiments -exp table2                 # Table II (ISPD2006-like)
//	experiments -exp table3                 # Table III (MMS-like)
//	experiments -exp fig2|fig3|fig5|fig6|fig7
//	experiments -exp ablate-bktrk|ablate-precond|ablate-filler
//	experiments -exp linesearch|rotation
//	experiments -exp bench -bench-out BENCH_eplace.json
//	experiments -exp eco -bench-out BENCH_eplace.json   # warm-vs-cold ECO speedups
//	experiments -exp service -jobs 200 -service-out BENCH_service.json
//	experiments -exp all -scale 0.5         # everything, half-size circuits
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"eplace/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see package comment)")
		scale    = flag.Float64("scale", 1.0, "circuit size scale factor")
		gridM    = flag.Int("grid", 0, "bin grid size (0 = auto)")
		maxIters = flag.Int("iters", 0, "max GP iterations (0 = default)")
		circuits = flag.Int("circuits", 0, "limit suite size for ablations/fig7; base cell count for -exp eco (0 = all/default)")
		outDir   = flag.String("outdir", "", "directory for position CSV dumps (fig3)")
		workers  = flag.Int("workers", 0, "gradient-kernel workers (0 = all cores)")
		benchOut = flag.String("bench-out", "BENCH_eplace.json", "output path for -exp bench")
		quiet    = flag.Bool("q", false, "suppress per-run progress")
		million  = flag.Bool("million", false, "add a 1M-cell multilevel row to -exp bench")
		levels   = flag.Int("levels", 0, "V-cycle depth for the bench scale sweep (0 = default 5)")
		noSweep  = flag.Bool("no-sweep", false, "skip the large-circuit scale sweep in -exp bench")
		poiKind  = flag.String("poisson", "", "eDensity Poisson backend: spectral | spectral32 | multigrid (bench default spectral32)")

		jobs       = flag.Int("jobs", 0, "job count for -exp service (0 = default 200)")
		concurrent = flag.Int("concurrent", 0, "scheduler slots for -exp service (0 = default 4)")
		serviceOut = flag.String("service-out", "BENCH_service.json", "output path for -exp service")
	)
	flag.Parse()

	opt := experiments.RunOptions{GridM: *gridM, MaxIters: *maxIters, Poisson: *poiKind}
	out := io.Writer(os.Stdout)
	progress := io.Writer(os.Stderr)
	if *quiet {
		progress = io.Discard
	}

	run := func(id string) {
		switch id {
		case "table1":
			experiments.Table1(*scale, opt, out, progress)
		case "table2":
			experiments.Table2(*scale, opt, out, progress)
		case "table3":
			experiments.Table3(*scale, opt, out, progress)
		case "fig2":
			experiments.Fig2(*scale, opt, out)
		case "fig3":
			experiments.Fig3(*scale, opt, []int{0, 5, 20, 60, 150, 300}, *outDir, out)
		case "fig5":
			experiments.Fig5(*scale, opt, out)
		case "fig6":
			experiments.Fig6(*scale, opt, out)
		case "fig7":
			experiments.Fig7(*scale, opt, *circuits, out)
		case "ablate-bktrk":
			experiments.AblateBacktracking(*scale, *circuits, opt, out)
		case "ablate-precond":
			experiments.AblatePreconditioner(*scale, *circuits, opt, out)
		case "ablate-filler":
			experiments.AblateFillerPhase(*scale, *circuits, opt, out)
		case "linesearch":
			experiments.LineSearchStudy(*scale, opt, out)
		case "rotation":
			experiments.RotationStudy(*scale, *circuits, opt, out)
		case "bench":
			report := experiments.BenchSuite(experiments.BenchOptions{
				Scale: *scale, Circuits: *circuits, Workers: *workers, Log: progress,
				Million: *million, SweepLevels: *levels, SkipSweep: *noSweep,
				Poisson: *poiKind,
			})
			if err := report.WriteFile(*benchOut); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", *benchOut, err)
				os.Exit(1)
			}
			fmt.Fprintf(out, "wrote %s (%d records)\n", *benchOut, len(report.Records))
		case "eco":
			cells := *circuits
			report, err := experiments.ECOStudy(experiments.ECOStudyOptions{
				Cells: cells, GridM: *gridM, Workers: *workers, Log: progress,
			}, out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: eco study: %v\n", err)
				os.Exit(1)
			}
			if err := experiments.MergeBenchFile(*benchOut, "ECO-", report); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", *benchOut, err)
				os.Exit(1)
			}
			fmt.Fprintf(out, "merged %d ECO records into %s\n", len(report.Records), *benchOut)
		case "service":
			rep, err := experiments.ServiceLoad(experiments.ServiceOptions{
				Jobs:          *jobs,
				Concurrent:    *concurrent,
				WorkersPerJob: *workers,
				Log:           progress,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: service load: %v\n", err)
				os.Exit(1)
			}
			if rep.DigestChecks != rep.DigestMatches {
				fmt.Fprintf(os.Stderr, "experiments: service determinism violated: %d/%d digest matches\n",
					rep.DigestMatches, rep.DigestChecks)
				os.Exit(1)
			}
			if err := rep.WriteFile(*serviceOut); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", *serviceOut, err)
				os.Exit(1)
			}
			fmt.Fprintf(out, "wrote %s (%d jobs, %.1f done/s, %d preemptions)\n",
				*serviceOut, rep.Jobs, rep.JobsPerSecond, rep.Preemptions)
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
			os.Exit(2)
		}
		fmt.Fprintln(out)
	}

	if *exp == "all" {
		for _, id := range []string{
			"table1", "table2", "table3",
			"fig2", "fig3", "fig5", "fig6", "fig7",
			"ablate-bktrk", "ablate-precond", "ablate-filler", "linesearch", "rotation",
		} {
			fmt.Fprintf(out, "==== %s ====\n", id)
			run(id)
		}
		return
	}
	run(*exp)
}
