// Command genbench emits the synthetic benchmark suites (the ISPD
// 2005 / ISPD 2006 / MMS analogs of DESIGN.md) as Bookshelf files, so
// they can be fed to any Bookshelf-compatible placer.
//
// Usage:
//
//	genbench -suite mms -scale 1.0 -out bench/
//	genbench -suite ispd05 -only ADAPTEC1 -out bench/
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eplace/internal/bookshelf"
	"eplace/internal/synth"
)

func main() {
	var (
		suite = flag.String("suite", "ispd05", "suite: ispd05 | ispd06 | mms")
		scale = flag.Float64("scale", 1.0, "cell-count scale factor")
		only  = flag.String("only", "", "emit only this circuit (empty = all)")
		out   = flag.String("out", "bench", "output directory")
	)
	flag.Parse()

	var specs []synth.Spec
	switch *suite {
	case "ispd05":
		specs = synth.ISPD05Suite(*scale)
	case "ispd06":
		specs = synth.ISPD06Suite(*scale)
	case "mms":
		specs = synth.MMSSuite(*scale)
	default:
		fmt.Fprintf(os.Stderr, "genbench: unknown suite %q\n", *suite)
		os.Exit(2)
	}
	for _, spec := range specs {
		if *only != "" && !strings.EqualFold(spec.Name, *only) {
			continue
		}
		d := synth.Generate(spec)
		base := strings.ToLower(*suite) + "_" + strings.ToLower(spec.Name)
		if err := bookshelf.WriteAux(d, *out, base); err != nil {
			fmt.Fprintf(os.Stderr, "genbench: %s: %v\n", spec.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %s -> %s/%s.aux\n", spec.Name, d.Stats(), *out, base)
	}
}
