module eplace

go 1.22
