// Timing-driven placement: the Sec. VIII "extension towards timing"
// demonstrated end to end. A placed circuit is analyzed with the
// built-in static timing analyzer, critical nets are reweighted, and
// the flow reruns: the critical path shortens at a small wirelength
// cost. A RUDY congestion report shows the routability view of both
// layouts.
//
//	go run ./examples/timingdriven
package main

import (
	"fmt"
	"log"

	"eplace/internal/congestion"
	"eplace/internal/core"
	"eplace/internal/synth"
	"eplace/internal/timing"
)

func main() {
	d := synth.Generate(synth.Spec{Name: "td-demo", NumCells: 1200})

	res, err := core.Place(d, core.FlowOptions{})
	if err != nil {
		log.Fatal(err)
	}
	tg := timing.Build(d, timing.Options{})
	tg.Analyze()
	cm := congestion.Compute(d, 0, congestion.Options{})
	fmt.Printf("wirelength-driven: HPWL %-9.0f critical path %-8.4g peak congestion %.2f\n",
		res.HPWL, tg.WorstArrival, cm.Stats().MaxRatio)
	baseHPWL, basePath := res.HPWL, tg.WorstArrival

	// Two reweight-and-replace passes.
	for pass := 1; pass <= 2; pass++ {
		tg.TimingWeights(3)
		res, err = core.Place(d, core.FlowOptions{})
		if err != nil {
			log.Fatal(err)
		}
		tg.Analyze()
		cm = congestion.Compute(d, 0, congestion.Options{})
		fmt.Printf("timing pass %d:     HPWL %-9.0f critical path %-8.4g peak congestion %.2f\n",
			pass, res.HPWL, tg.WorstArrival, cm.Stats().MaxRatio)
	}

	fmt.Printf("\ncritical path improved %.1f%% for %.1f%% extra wirelength\n",
		100*(1-tg.WorstArrival/basePath), 100*(res.HPWL/baseHPWL-1))
}
