// Bookshelf round trip: generate a benchmark, write it in ISPD
// Bookshelf format, read it back, place it, and emit the final .pl —
// the interchange path for real contest benchmarks.
//
//	go run ./examples/bookshelfio
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"eplace/internal/bookshelf"
	"eplace/internal/core"
	"eplace/internal/synth"
)

func main() {
	dir, err := os.MkdirTemp("", "eplace-bookshelf")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Write a synthetic benchmark as .aux/.nodes/.nets/.wts/.pl/.scl.
	src := synth.Generate(synth.Spec{Name: "io-demo", NumCells: 800, NumFixedMacros: 4})
	if err := bookshelf.WriteAux(src, dir, "iodemo"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote benchmark to %s/iodemo.aux\n", dir)

	// Read it back, exactly as a contest benchmark would be loaded.
	d, err := bookshelf.ReadAux(filepath.Join(dir, "iodemo.aux"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded: %s, region %v, %d rows\n", d.Stats(), d.Region, len(d.Rows))

	res, err := core.Place(d, core.FlowOptions{})
	if err != nil {
		log.Fatal(err)
	}
	out := filepath.Join(dir, "iodemo_placed.pl")
	if err := bookshelf.WritePL(d, out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed: HPWL %.0f, legal=%v, wrote %s\n", res.HPWL, res.Legal, out)
}
