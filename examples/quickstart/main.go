// Quickstart: build a tiny design with the netlist API, run the full
// ePlace flow, and print the quality metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"eplace/internal/core"
	"eplace/internal/geom"
	"eplace/internal/legalize"
	"eplace/internal/netlist"
)

func main() {
	// A 64x64 die with uniform rows of height 2.
	d := netlist.New("quickstart", geom.Rect{Hx: 64, Hy: 64})
	legalize.BuildRows(d, 2, 1)

	// 400 standard cells in a chain-of-clusters netlist plus four
	// corner IO pads.
	rng := rand.New(rand.NewSource(42))
	var cells []int
	for i := 0; i < 400; i++ {
		cells = append(cells, d.AddCell(netlist.Cell{
			Name: fmt.Sprintf("c%d", i),
			W:    float64(2 + rng.Intn(3)), H: 2,
			X: rng.Float64() * 64, Y: rng.Float64() * 64,
		}))
	}
	var pads []int
	for i, p := range [][2]float64{{1, 1}, {63, 1}, {1, 63}, {63, 63}} {
		pads = append(pads, d.AddCell(netlist.Cell{
			Name: fmt.Sprintf("pad%d", i), W: 1, H: 1, X: p[0] - 0.5, Y: p[1] - 0.5,
			Kind: netlist.Pad, Fixed: true,
		}))
	}
	for k := 0; k < 500; k++ {
		ni := d.AddNet(fmt.Sprintf("n%d", k), 1)
		base := rng.Intn(390)
		for p := 0; p < 2+rng.Intn(3); p++ {
			d.Connect(cells[base+rng.Intn(10)], ni, 0, 0)
		}
	}
	for i, pi := range pads {
		ni := d.AddNet(fmt.Sprintf("pn%d", i), 1)
		d.Connect(pi, ni, 0, 0)
		d.Connect(cells[rng.Intn(len(cells))], ni, 0, 0)
	}

	fmt.Printf("before placement: HPWL = %.0f (random layout)\n", d.HPWL())

	res, err := core.Place(d, core.FlowOptions{
		GP: core.Options{GridM: 32},
	})
	if err != nil {
		log.Fatalf("placement failed: %v", err)
	}

	fmt.Printf("after placement:  HPWL = %.0f, legal = %v\n", res.HPWL, res.Legal)
	fmt.Printf("mGP converged in %d iterations at overflow %.3f\n",
		res.MGP.Iterations, res.MGP.Overflow)
	fmt.Printf("detail placement recovered %.1f%% wirelength\n",
		100*(1-res.DP.HPWLAfter/res.DP.HPWLBefore))
}
