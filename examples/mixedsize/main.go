// Mixed-size placement: the full mIP -> mGP -> mLG -> cGP -> cDP flow
// of Fig. 1 on an MMS-style circuit with movable macros, with a
// per-stage progress report (the data behind Figures 2 and 5).
//
//	go run ./examples/mixedsize
package main

import (
	"fmt"
	"log"

	"eplace/internal/core"
	"eplace/internal/synth"
)

func main() {
	// An MMS ADAPTEC1-style circuit: 2000 cells, 6 movable macros
	// holding ~25% of the movable area, fixed IO pads.
	d := synth.Generate(synth.Spec{
		Name:             "mms-demo",
		NumCells:         2000,
		NumMovableMacros: 6,
	})
	fmt.Printf("circuit: %s\n", d.Stats())

	trace := &core.Trace{}
	res, err := core.Place(d, core.FlowOptions{
		GP: core.Options{Trace: trace},
	})
	if err != nil {
		log.Fatalf("placement failed: %v", err)
	}

	fmt.Println("\nstage progression:")
	for _, stage := range []string{"mGP", "cGP-filler", "cGP"} {
		ss := trace.Stage(stage)
		if len(ss) == 0 {
			continue
		}
		first, last := ss[0], ss[len(ss)-1]
		fmt.Printf("  %-10s %4d iters   HPWL %10.0f -> %10.0f   tau %.3f -> %.3f\n",
			stage, len(ss), first.HPWL, last.HPWL, first.Overflow, last.Overflow)
	}
	fmt.Printf("  %-10s macro overlap %9.0f -> %9.0f (W overhead %+.1f%%)\n",
		"mLG", res.MLG.OmBefore, res.MLG.OmAfter,
		100*(res.MLG.WAfter/res.MLG.WBefore-1))

	fmt.Println("\nstage wall-clock:")
	for _, stage := range res.Stages {
		fmt.Printf("  %-5s %v\n", stage.Name, stage.Time.Round(1e6))
	}
	fmt.Printf("\nfinal: HPWL %.0f, legal=%v\n", res.HPWL, res.Legal)
}
