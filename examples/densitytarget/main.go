// Density targets: the ISPD 2006 scenario. The same circuit is placed
// against different density upper bounds rho_t; tighter targets force
// more spreading, trading wirelength for (scaled-HPWL-penalized)
// density overflow — the tradeoff behind Table II.
//
//	go run ./examples/densitytarget
package main

import (
	"fmt"
	"log"

	"eplace/internal/core"
	"eplace/internal/metrics"
	"eplace/internal/synth"
)

func main() {
	fmt.Println("rho_t   HPWL        sHPWL       tau      penalty%")
	for _, rhoT := range []float64{0.9, 0.7, 0.5} {
		d := synth.Generate(synth.Spec{
			Name:          "density-demo",
			NumCells:      1500,
			TargetDensity: rhoT,
			Utilization:   0.45, // whitespace to spread into
		})
		res, err := core.Place(d, core.FlowOptions{})
		if err != nil {
			log.Fatalf("rho_t=%.1f: %v", rhoT, err)
		}
		rep := metrics.Measure(d.Name, "ePlace", d, 0, 0, res.Legal)
		fmt.Printf("%.1f   %10.0f  %10.0f   %.4f   %+.2f%%\n",
			rhoT, rep.HPWL, rep.ScaledHPWL, rep.Overflow,
			100*(rep.ScaledHPWL/rep.HPWL-1))
	}
	fmt.Println("\nlower rho_t forces spreading: HPWL grows and the residual")
	fmt.Println("per-bin overflow (penalized by sHPWL) grows with tightness;")
	fmt.Println("ePlace keeps it the smallest in Table II's comparison.")
}
