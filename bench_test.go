// Root benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation (Sec. VII), on reduced-scale circuits so a
// full -bench=. sweep completes in minutes. Full-scale regeneration of
// the tables goes through cmd/experiments (see EXPERIMENTS.md).
package eplace

import (
	"fmt"
	"io"
	"testing"

	"eplace/internal/core"
	"eplace/internal/experiments"
	"eplace/internal/netlist"
	"eplace/internal/synth"
)

// benchScale keeps -bench runs quick; cmd/experiments uses 1.0.
const benchScale = 0.15

func benchOpt() experiments.RunOptions {
	return experiments.RunOptions{GridM: 32, MaxIters: 1000}
}

// mustPlaceGlobal runs core.PlaceGlobal and fails the benchmark on a
// configuration error.
func mustPlaceGlobal(tb testing.TB, d *netlist.Design, idx []int, opt core.Options, stage string, lambdaInit float64) core.Result {
	tb.Helper()
	res, err := core.PlaceGlobal(d, idx, opt, stage, lambdaInit)
	if err != nil {
		tb.Fatalf("PlaceGlobal(%s): %v", stage, err)
	}
	return res
}

func ispd05Spec(name string) synth.Spec {
	for _, s := range synth.ISPD05Suite(benchScale) {
		if s.Name == name {
			return s
		}
	}
	panic("unknown circuit " + name)
}

func ispd06Spec(name string) synth.Spec {
	for _, s := range synth.ISPD06Suite(benchScale) {
		if s.Name == name {
			return s
		}
	}
	panic("unknown circuit " + name)
}

func mmsSpec(name string) synth.Spec {
	for _, s := range synth.MMSSuite(benchScale) {
		if s.Name == name {
			return s
		}
	}
	panic("unknown circuit " + name)
}

// BenchmarkTable1PlacerSuite times every placer of Table I on the
// ISPD2005-like ADAPTEC1 and reports final HPWL.
func BenchmarkTable1PlacerSuite(b *testing.B) {
	spec := ispd05Spec("ADAPTEC1")
	for _, p := range experiments.AllPlacers {
		b.Run(string(p), func(b *testing.B) {
			var hpwl float64
			for i := 0; i < b.N; i++ {
				rep := experiments.RunSpec(spec, p, benchOpt())
				if rep.Failed {
					b.Fatalf("%s failed", p)
				}
				hpwl = rep.HPWL
			}
			b.ReportMetric(hpwl, "HPWL")
		})
	}
}

// BenchmarkTable2DensityTarget times ePlace under an ISPD2006-like
// density bound and reports the scaled HPWL and per-bin overflow.
func BenchmarkTable2DensityTarget(b *testing.B) {
	spec := ispd06Spec("NEWBLUE1")
	var rep = experiments.RunSpec(spec, experiments.EPlace, benchOpt())
	for i := 0; i < b.N; i++ {
		rep = experiments.RunSpec(spec, experiments.EPlace, benchOpt())
		if rep.Failed {
			b.Fatal("run failed")
		}
	}
	b.ReportMetric(rep.ScaledHPWL, "sHPWL")
	b.ReportMetric(rep.OverflowPerBin, "tau_avg%")
}

// BenchmarkTable3MixedSize times every placer of Table III on the
// MMS-like ADAPTEC1 (movable macros; shared mLG/cDP back end).
func BenchmarkTable3MixedSize(b *testing.B) {
	spec := mmsSpec("ADAPTEC1")
	for _, p := range experiments.AllPlacers {
		b.Run(string(p), func(b *testing.B) {
			var hpwl float64
			for i := 0; i < b.N; i++ {
				rep := experiments.RunSpec(spec, p, benchOpt())
				if rep.Failed {
					b.Fatalf("%s failed", p)
				}
				hpwl = rep.HPWL
			}
			b.ReportMetric(hpwl, "HPWL")
		})
	}
}

// BenchmarkFig2ConvergenceTrace times the fully traced mixed-size flow
// behind Figure 2.
func BenchmarkFig2ConvergenceTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig2(benchScale, benchOpt(), io.Discard)
	}
}

// BenchmarkFig7GradientBreakdown times one mGP run and reports the
// density/wirelength gradient shares of Figure 7.
func BenchmarkFig7GradientBreakdown(b *testing.B) {
	spec := mmsSpec("ADAPTEC1")
	var density, wl float64
	for i := 0; i < b.N; i++ {
		d := synth.Generate(spec)
		experiments.MIPOnly(d)
		core.InsertFillers(d, 2)
		res := mustPlaceGlobal(b, d, d.Movable(), core.Options{GridM: 32, MaxIters: 1000}, "mGP", 0)
		if res.Diverged {
			b.Fatal("mGP diverged")
		}
		density = 100 * res.DensityTime.Seconds() / res.Total.Seconds()
		wl = 100 * res.WirelengthTime.Seconds() / res.Total.Seconds()
	}
	b.ReportMetric(density, "density%")
	b.ReportMetric(wl, "wirelength%")
}

// BenchmarkAblationBacktracking compares mGP with and without BkTrk
// (Sec. V-C): same circuit, HPWL reported per variant.
func BenchmarkAblationBacktracking(b *testing.B) {
	spec := mmsSpec("ADAPTEC1")
	for _, disable := range []bool{false, true} {
		name := "with-bktrk"
		if disable {
			name = "without-bktrk"
		}
		b.Run(name, func(b *testing.B) {
			var hpwl float64
			diverged := false
			for i := 0; i < b.N; i++ {
				d := synth.Generate(spec)
				experiments.MIPOnly(d)
				core.InsertFillers(d, 2)
				res := mustPlaceGlobal(b, d, d.Movable(),
					core.Options{GridM: 32, MaxIters: 1000, DisableBkTrk: disable}, "mGP", 0)
				hpwl = res.HPWL
				diverged = res.Diverged
			}
			b.ReportMetric(hpwl, "HPWL")
			b.ReportMetric(boolMetric(diverged), "diverged")
		})
	}
}

// BenchmarkAblationPreconditioner compares mGP with and without the
// preconditioner (Sec. V-D).
func BenchmarkAblationPreconditioner(b *testing.B) {
	spec := mmsSpec("ADAPTEC2")
	for _, disable := range []bool{false, true} {
		name := "with-precond"
		if disable {
			name = "without-precond"
		}
		b.Run(name, func(b *testing.B) {
			var hpwl, tau float64
			for i := 0; i < b.N; i++ {
				d := synth.Generate(spec)
				experiments.MIPOnly(d)
				core.InsertFillers(d, 2)
				res := mustPlaceGlobal(b, d, d.Movable(),
					core.Options{GridM: 32, MaxIters: 1000, DisablePrecond: disable}, "mGP", 0)
				hpwl, tau = res.HPWL, res.Overflow
			}
			b.ReportMetric(hpwl, "HPWL")
			b.ReportMetric(tau, "tau")
		})
	}
}

// BenchmarkSolverComparison times Nesterov vs CG-with-line-search on
// the identical eDensity objective (footnote 2 / Sec. V-A).
func BenchmarkSolverComparison(b *testing.B) {
	spec := ispd05Spec("ADAPTEC1")
	for _, solver := range []core.SolverKind{core.SolverNesterov, core.SolverCG} {
		name := "nesterov"
		if solver == core.SolverCG {
			name = "cg-linesearch"
		}
		b.Run(name, func(b *testing.B) {
			var iters int
			var hpwl float64
			for i := 0; i < b.N; i++ {
				d := synth.Generate(spec)
				experiments.MIPOnly(d)
				core.InsertFillers(d, 2)
				res := mustPlaceGlobal(b, d, d.Movable(),
					core.Options{GridM: 32, MaxIters: 2000, Solver: solver}, "mGP", 0)
				iters, hpwl = res.Iterations, res.HPWL
			}
			b.ReportMetric(float64(iters), "iters")
			b.ReportMetric(hpwl, "HPWL")
		})
	}
}

// BenchmarkFullFlowScaling times the complete flow across circuit
// sizes, the throughput view of the runtime columns.
func BenchmarkFullFlowScaling(b *testing.B) {
	for _, n := range []int{500, 1000, 2000, 4000} {
		b.Run(fmt.Sprintf("cells-%d", n), func(b *testing.B) {
			spec := synth.Spec{Name: fmt.Sprintf("scale-%d", n), NumCells: n, NumMovableMacros: 4}
			for i := 0; i < b.N; i++ {
				d := synth.Generate(spec)
				if _, err := core.Place(d, core.FlowOptions{GP: core.Options{MaxIters: 1500}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkAblationAdaptiveRestart compares plain Nesterov against the
// adaptive-restart extension (DESIGN.md design-choice ablation).
func BenchmarkAblationAdaptiveRestart(b *testing.B) {
	spec := ispd05Spec("ADAPTEC2")
	for _, restart := range []bool{false, true} {
		name := "plain"
		if restart {
			name = "adaptive-restart"
		}
		b.Run(name, func(b *testing.B) {
			var hpwl float64
			var iters int
			for i := 0; i < b.N; i++ {
				d := synth.Generate(spec)
				experiments.MIPOnly(d)
				core.InsertFillers(d, 2)
				res := mustPlaceGlobal(b, d, d.Movable(),
					core.Options{GridM: 32, MaxIters: 1500, AdaptiveRestart: restart}, "mGP", 0)
				hpwl, iters = res.HPWL, res.Iterations
			}
			b.ReportMetric(hpwl, "HPWL")
			b.ReportMetric(float64(iters), "iters")
		})
	}
}

// BenchmarkAblationMacroHalo measures the deadspace-allocation halo
// (Sec. III note) on a mixed-size circuit.
func BenchmarkAblationMacroHalo(b *testing.B) {
	spec := mmsSpec("ADAPTEC2")
	for _, halo := range []float64{0, 1.0} {
		name := fmt.Sprintf("halo-%.1f", halo)
		b.Run(name, func(b *testing.B) {
			var hpwl float64
			legal := true
			for i := 0; i < b.N; i++ {
				d := synth.Generate(spec)
				res, err := core.Place(d, core.FlowOptions{
					GP: core.Options{GridM: 32, MaxIters: 1000}, MacroHalo: halo,
				})
				if err != nil {
					b.Fatal(err)
				}
				hpwl, legal = res.HPWL, res.Legal
			}
			b.ReportMetric(hpwl, "HPWL")
			b.ReportMetric(boolMetric(legal), "legal")
		})
	}
}
