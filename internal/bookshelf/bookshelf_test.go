package bookshelf

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"eplace/internal/netlist"
	"eplace/internal/synth"
)

func TestRoundTrip(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "rt", NumCells: 200, NumFixedMacros: 3, NumMovableMacros: 2})
	dir := t.TempDir()
	if err := WriteAux(d, dir, "rt"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAux(filepath.Join(dir, "rt.aux"))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(d.Cells) {
		t.Fatalf("cells %d != %d", len(back.Cells), len(d.Cells))
	}
	if len(back.Nets) != len(d.Nets) || len(back.Pins) != len(d.Pins) {
		t.Fatalf("nets/pins mismatch: %d/%d vs %d/%d",
			len(back.Nets), len(back.Pins), len(d.Nets), len(d.Pins))
	}
	if len(back.Rows) != len(d.Rows) {
		t.Fatalf("rows %d != %d", len(back.Rows), len(d.Rows))
	}
	// Positions and sizes survive.
	for i := range d.Cells {
		a, b := &d.Cells[i], &back.Cells[i]
		if math.Abs(a.X-b.X) > 1e-9 || math.Abs(a.Y-b.Y) > 1e-9 {
			t.Fatalf("cell %d position (%v,%v) vs (%v,%v)", i, a.X, a.Y, b.X, b.Y)
		}
		if a.W != b.W || a.H != b.H {
			t.Fatalf("cell %d size mismatch", i)
		}
		if a.Fixed != b.Fixed {
			t.Fatalf("cell %d fixed flag mismatch", i)
		}
	}
	// HPWL identical (pin offsets survive).
	if math.Abs(back.HPWL()-d.HPWL()) > 1e-6*d.HPWL() {
		t.Errorf("HPWL %v != %v", back.HPWL(), d.HPWL())
	}
	if err := back.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReadHandwritten(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("x.aux", "RowBasedPlacement : x.nodes x.nets x.wts x.pl x.scl\n")
	write("x.nodes", `UCLA nodes 1.0
# comment
NumNodes : 3
NumTerminals : 1
	a	2	4
	b	3	4
	p1	10	12 terminal
`)
	write("x.nets", `UCLA nets 1.0
NumNets : 2
NumPins : 4
NetDegree : 2 n0
	a I : 0.5 0
	b O : -0.5 0
NetDegree : 2 n1
	b I
	p1 O : 0 0
`)
	write("x.wts", "n1 2.5\n")
	write("x.pl", `UCLA pl 1.0
a 0 0 : N
b 10 0 : N
p1 50 20 : N /FIXED
`)
	write("x.scl", `UCLA scl 1.0
NumRows : 2
CoreRow Horizontal
  Coordinate : 0
  Height : 4
  Sitewidth : 1
  Sitespacing : 1
  SubrowOrigin : 0 NumSites : 60
End
CoreRow Horizontal
  Coordinate : 4
  Height : 4
  Sitewidth : 1
  Sitespacing : 1
  SubrowOrigin : 0 NumSites : 60
End
`)
	d, err := ReadAux(filepath.Join(dir, "x.aux"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 3 || len(d.Nets) != 2 || len(d.Pins) != 4 {
		t.Fatalf("structure: %d cells %d nets %d pins", len(d.Cells), len(d.Nets), len(d.Pins))
	}
	// a at lower-left (0,0) with size 2x4 -> center (1,2).
	a := d.Cells[d.CellByName("a")]
	if a.X != 1 || a.Y != 2 {
		t.Errorf("a center = (%v, %v)", a.X, a.Y)
	}
	p1 := d.Cells[d.CellByName("p1")]
	if !p1.Fixed {
		t.Error("p1 not fixed")
	}
	if p1.Kind != netlist.Macro {
		t.Errorf("p1 kind = %v, want macro (large terminal)", p1.Kind)
	}
	if d.Nets[1].Weight != 2.5 {
		t.Errorf("n1 weight = %v", d.Nets[1].Weight)
	}
	// Pin offset on net 0 pin 0.
	if d.Pins[0].Ox != 0.5 {
		t.Errorf("pin offset = %v", d.Pins[0].Ox)
	}
	// Rows and region.
	if len(d.Rows) != 2 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	if d.Region.Hx != 60 || d.Region.Hy != 8 {
		t.Errorf("region = %v", d.Region)
	}
	if d.Rows[0].SiteW != 1 {
		t.Errorf("site width = %v", d.Rows[0].SiteW)
	}
}

func TestReadPLUpdatesPositions(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "pl", NumCells: 50})
	dir := t.TempDir()
	// Shift everything and write a PL; reading it back must restore.
	orig := make([]float64, len(d.Cells))
	for i := range d.Cells {
		orig[i] = d.Cells[i].X
	}
	if err := WritePL(d, filepath.Join(dir, "a.pl")); err != nil {
		t.Fatal(err)
	}
	for i := range d.Cells {
		d.Cells[i].X += 5
	}
	if err := ReadPL(d, filepath.Join(dir, "a.pl")); err != nil {
		t.Fatal(err)
	}
	for i := range d.Cells {
		if math.Abs(d.Cells[i].X-orig[i]) > 1e-9 {
			t.Fatalf("cell %d x = %v, want %v", i, d.Cells[i].X, orig[i])
		}
	}
}

func TestMissingFileErrors(t *testing.T) {
	if _, err := ReadAux("/nonexistent/x.aux"); err == nil {
		t.Error("expected error for missing aux")
	}
	dir := t.TempDir()
	aux := filepath.Join(dir, "y.aux")
	os.WriteFile(aux, []byte("RowBasedPlacement : y.nodes y.nets y.pl\n"), 0o644)
	if _, err := ReadAux(aux); err == nil {
		t.Error("expected error for missing nodes file")
	}
}

func TestUnknownCellInNetsErrors(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "z.aux"), []byte("RowBasedPlacement : z.nodes z.nets z.pl\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "z.nodes"), []byte("NumNodes : 1\na 1 1\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "z.nets"), []byte("NetDegree : 2 n\n a I\n ghost I\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "z.pl"), []byte("a 0 0 : N\n"), 0o644)
	if _, err := ReadAux(filepath.Join(dir, "z.aux")); err == nil {
		t.Error("expected error for unknown cell in nets")
	}
}
