// Package bookshelf reads and writes the GSRC/ISPD Bookshelf placement
// format used by the ISPD 2005/2006 and MMS benchmark suites: the .aux
// index, .nodes (objects), .nets (hyperedges with pin offsets), .pl
// (placement), .scl (rows) and .wts (net weights) files. Real contest
// benchmarks drop into the synthetic flow unchanged through this
// package.
//
// Bookshelf stores object positions as lower-left corners with pin
// offsets from the object center; the netlist model uses centers
// throughout, and this package converts at the boundary.
package bookshelf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"eplace/internal/geom"
	"eplace/internal/netlist"
)

// ReadAux loads a complete design from a Bookshelf .aux file.
func ReadAux(path string) (*netlist.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	files := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// "RowBasedPlacement : a.nodes a.nets a.wts a.pl a.scl"
		if i := strings.Index(line, ":"); i >= 0 {
			line = line[i+1:]
		}
		for _, tok := range strings.Fields(line) {
			switch strings.ToLower(filepath.Ext(tok)) {
			case ".nodes", ".nets", ".wts", ".pl", ".scl":
				files[strings.ToLower(filepath.Ext(tok))] = tok
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	need := func(ext string) (string, error) {
		name, ok := files[ext]
		if !ok {
			return "", fmt.Errorf("bookshelf: aux lists no %s file", ext)
		}
		return filepath.Join(dir, name), nil
	}

	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	d := netlist.New(name, geom.Rect{})

	nodesPath, err := need(".nodes")
	if err != nil {
		return nil, err
	}
	if err := readNodes(d, nodesPath); err != nil {
		return nil, err
	}
	netsPath, err := need(".nets")
	if err != nil {
		return nil, err
	}
	if err := readNets(d, netsPath); err != nil {
		return nil, err
	}
	if wts, ok := files[".wts"]; ok {
		if err := readWts(d, filepath.Join(dir, wts)); err != nil {
			return nil, err
		}
	}
	plPath, err := need(".pl")
	if err != nil {
		return nil, err
	}
	if err := ReadPL(d, plPath); err != nil {
		return nil, err
	}
	if scl, ok := files[".scl"]; ok {
		if err := readSCL(d, filepath.Join(dir, scl)); err != nil {
			return nil, err
		}
	}
	deriveRegion(d)
	return d, nil
}

// scanner yields non-comment logical lines.
type scanner struct {
	sc   *bufio.Scanner
	line int
}

func newScanner(r io.Reader) *scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &scanner{sc: sc}
}

func (s *scanner) next() (string, bool) {
	for s.sc.Scan() {
		s.line++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "UCLA") {
			continue
		}
		return line, true
	}
	return "", false
}

func readNodes(d *netlist.Design, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s := newScanner(f)
	for {
		line, ok := s.next()
		if !ok {
			break
		}
		if strings.HasPrefix(line, "NumNodes") || strings.HasPrefix(line, "NumTerminals") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return fmt.Errorf("%s:%d: malformed node line %q", path, s.line, line)
		}
		w, err1 := strconv.ParseFloat(fields[1], 64)
		h, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("%s:%d: bad node size %q", path, s.line, line)
		}
		c := netlist.Cell{Name: fields[0], W: w, H: h}
		if len(fields) > 3 {
			switch fields[3] {
			case "terminal":
				c.Fixed = true
				c.Kind = netlist.Pad
				if w > 1 && h > 1 {
					c.Kind = netlist.Macro
				}
			case "terminal_NI":
				c.Fixed = true
				c.Kind = netlist.Pad
			}
		}
		d.AddCell(c)
	}
	return s.sc.Err()
}

func readNets(d *netlist.Design, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s := newScanner(f)
	curNet := -1
	for {
		line, ok := s.next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(line, "NumNets"), strings.HasPrefix(line, "NumPins"):
			continue
		case strings.HasPrefix(line, "NetDegree"):
			// "NetDegree : 3 netName"
			fields := strings.Fields(line)
			name := ""
			if len(fields) >= 4 {
				name = fields[3]
			}
			curNet = d.AddNet(name, 1)
		default:
			if curNet < 0 {
				return fmt.Errorf("%s:%d: pin before NetDegree", path, s.line)
			}
			// "cellName I : ox oy" (offsets optional)
			fields := strings.Fields(line)
			ci := d.CellByName(fields[0])
			if ci < 0 {
				return fmt.Errorf("%s:%d: unknown cell %q", path, s.line, fields[0])
			}
			ox, oy := 0.0, 0.0
			if i := indexOf(fields, ":"); i >= 0 && len(fields) >= i+3 {
				ox, _ = strconv.ParseFloat(fields[i+1], 64)
				oy, _ = strconv.ParseFloat(fields[i+2], 64)
			}
			pi := d.Connect(ci, curNet, ox, oy)
			if len(fields) > 1 {
				switch fields[1] {
				case "I":
					d.Pins[pi].Dir = netlist.DirIn
				case "O":
					d.Pins[pi].Dir = netlist.DirOut
				}
			}
		}
	}
	return s.sc.Err()
}

func readWts(d *netlist.Design, path string) error {
	f, err := os.Open(path)
	if err != nil {
		// .wts files are frequently absent or empty placeholders.
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	byName := map[string]int{}
	for ni := range d.Nets {
		if d.Nets[ni].Name != "" {
			byName[d.Nets[ni].Name] = ni
		}
	}
	s := newScanner(f)
	for {
		line, ok := s.next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		if ni, ok := byName[fields[0]]; ok {
			if w, err := strconv.ParseFloat(fields[1], 64); err == nil {
				d.Nets[ni].Weight = w
			}
		}
	}
	return s.sc.Err()
}

// ReadPL loads positions (lower-left corners) from a .pl file into an
// existing design, honoring /FIXED suffixes.
func ReadPL(d *netlist.Design, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s := newScanner(f)
	for {
		line, ok := s.next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		ci := d.CellByName(fields[0])
		if ci < 0 {
			return fmt.Errorf("%s:%d: unknown cell %q", path, s.line, fields[0])
		}
		x, err1 := strconv.ParseFloat(fields[1], 64)
		y, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("%s:%d: bad coordinates %q", path, s.line, line)
		}
		c := &d.Cells[ci]
		c.X = x + c.W/2
		c.Y = y + c.H/2
		if strings.Contains(line, "/FIXED") {
			c.Fixed = true
		}
	}
	return s.sc.Err()
}

func readSCL(d *netlist.Design, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s := newScanner(f)
	var row netlist.Row
	inRow := false
	var siteSpacing float64
	var numSites float64
	for {
		line, ok := s.next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		key := strings.ToLower(strings.TrimSuffix(fields[0], ":"))
		switch key {
		case "corerow":
			inRow = true
			row = netlist.Row{}
			siteSpacing, numSites = 0, 0
		case "end":
			if inRow {
				if siteSpacing > 0 && numSites > 0 {
					row.Hx = row.Lx + siteSpacing*numSites
					row.SiteW = siteSpacing
				}
				d.Rows = append(d.Rows, row)
				inRow = false
			}
		case "coordinate":
			row.Y = lastFloat(fields)
		case "height":
			row.Height = lastFloat(fields)
		case "sitewidth":
			// informational; spacing drives the grid
		case "sitespacing":
			siteSpacing = lastFloat(fields)
		case "subroworigin":
			// "SubrowOrigin : x NumSites : n"
			for i := 0; i < len(fields); i++ {
				switch strings.ToLower(strings.TrimSuffix(fields[i], ":")) {
				case "subroworigin":
					if v, ok := floatAfter(fields, i); ok {
						row.Lx = v
					}
				case "numsites":
					if v, ok := floatAfter(fields, i); ok {
						numSites = v
					}
				}
			}
		}
	}
	sort.Slice(d.Rows, func(a, b int) bool { return d.Rows[a].Y < d.Rows[b].Y })
	return s.sc.Err()
}

// deriveRegion sets the placement region from rows when present, else
// from the bounding box of all objects.
func deriveRegion(d *netlist.Design) {
	if len(d.Rows) > 0 {
		r := geom.Rect{Lx: d.Rows[0].Lx, Ly: d.Rows[0].Y,
			Hx: d.Rows[0].Hx, Hy: d.Rows[0].Y + d.Rows[0].Height}
		for _, row := range d.Rows[1:] {
			r = r.Union(geom.Rect{Lx: row.Lx, Ly: row.Y, Hx: row.Hx, Hy: row.Y + row.Height})
		}
		d.Region = r
		return
	}
	if len(d.Cells) == 0 {
		d.Region = geom.Rect{Hx: 1, Hy: 1}
		return
	}
	r := d.Cells[0].Rect()
	for i := range d.Cells {
		r = r.Union(d.Cells[i].Rect())
	}
	d.Region = r
}

// WriteAux writes a complete Bookshelf benchmark (aux, nodes, nets, wts,
// pl, scl) under dir with the given base name.
func WriteAux(d *netlist.Design, dir, base string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, base+".nodes"), func(w *bufio.Writer) error {
		return writeNodes(d, w)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, base+".nets"), func(w *bufio.Writer) error {
		return writeNets(d, w)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, base+".wts"), func(w *bufio.Writer) error {
		for ni := range d.Nets {
			if d.Nets[ni].Name != "" && d.Nets[ni].Weight != 1 && d.Nets[ni].Weight != 0 {
				fmt.Fprintf(w, "%s %g\n", d.Nets[ni].Name, d.Nets[ni].Weight)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := WritePL(d, filepath.Join(dir, base+".pl")); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, base+".scl"), func(w *bufio.Writer) error {
		return writeSCL(d, w)
	}); err != nil {
		return err
	}
	return writeFile(filepath.Join(dir, base+".aux"), func(w *bufio.Writer) error {
		fmt.Fprintf(w, "RowBasedPlacement : %s.nodes %s.nets %s.wts %s.pl %s.scl\n",
			base, base, base, base, base)
		return nil
	})
}

func writeFile(path string, fill func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := fill(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeNodes(d *netlist.Design, w *bufio.Writer) error {
	fmt.Fprintf(w, "UCLA nodes 1.0\n\n")
	terminals := 0
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			terminals++
		}
	}
	fmt.Fprintf(w, "NumNodes : %d\nNumTerminals : %d\n", len(d.Cells), terminals)
	for i := range d.Cells {
		c := &d.Cells[i]
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("o%d", i)
		}
		if c.Fixed {
			fmt.Fprintf(w, "%s %g %g terminal\n", name, c.W, c.H)
		} else {
			fmt.Fprintf(w, "%s %g %g\n", name, c.W, c.H)
		}
	}
	return nil
}

func writeNets(d *netlist.Design, w *bufio.Writer) error {
	fmt.Fprintf(w, "UCLA nets 1.0\n\n")
	fmt.Fprintf(w, "NumNets : %d\nNumPins : %d\n", len(d.Nets), len(d.Pins))
	for ni := range d.Nets {
		net := &d.Nets[ni]
		name := net.Name
		if name == "" {
			name = fmt.Sprintf("n%d", ni)
		}
		fmt.Fprintf(w, "NetDegree : %d %s\n", len(net.Pins), name)
		for _, pi := range net.Pins {
			p := &d.Pins[pi]
			cname := fmt.Sprintf("o%d", p.Cell)
			if p.Cell >= 0 && d.Cells[p.Cell].Name != "" {
				cname = d.Cells[p.Cell].Name
			}
			dir := "B"
			switch p.Dir {
			case netlist.DirIn:
				dir = "I"
			case netlist.DirOut:
				dir = "O"
			}
			fmt.Fprintf(w, "  %s %s : %g %g\n", cname, dir, p.Ox, p.Oy)
		}
	}
	return nil
}

// WritePL writes the placement as lower-left corners.
func WritePL(d *netlist.Design, path string) error {
	return writeFile(path, func(w *bufio.Writer) error {
		fmt.Fprintf(w, "UCLA pl 1.0\n\n")
		for i := range d.Cells {
			c := &d.Cells[i]
			name := c.Name
			if name == "" {
				name = fmt.Sprintf("o%d", i)
			}
			suffix := ""
			if c.Fixed {
				suffix = " /FIXED"
			}
			fmt.Fprintf(w, "%s %g %g : N%s\n", name, c.X-c.W/2, c.Y-c.H/2, suffix)
		}
		return nil
	})
}

func writeSCL(d *netlist.Design, w *bufio.Writer) error {
	fmt.Fprintf(w, "UCLA scl 1.0\n\n")
	fmt.Fprintf(w, "NumRows : %d\n", len(d.Rows))
	for _, r := range d.Rows {
		siteW := r.SiteW
		if siteW <= 0 {
			siteW = 1
		}
		fmt.Fprintf(w, "CoreRow Horizontal\n")
		fmt.Fprintf(w, "  Coordinate : %g\n", r.Y)
		fmt.Fprintf(w, "  Height : %g\n", r.Height)
		fmt.Fprintf(w, "  Sitewidth : %g\n", siteW)
		fmt.Fprintf(w, "  Sitespacing : %g\n", siteW)
		fmt.Fprintf(w, "  SubrowOrigin : %g NumSites : %d\n", r.Lx, int((r.Hx-r.Lx)/siteW))
		fmt.Fprintf(w, "End\n")
	}
	return nil
}

// floatAfter returns the first parseable float strictly after index i,
// skipping ":" separators.
func floatAfter(fields []string, i int) (float64, bool) {
	for j := i + 1; j < len(fields); j++ {
		if v, err := strconv.ParseFloat(fields[j], 64); err == nil {
			return v, true
		}
		if fields[j] != ":" {
			return 0, false
		}
	}
	return 0, false
}

func lastFloat(fields []string) float64 {
	for i := len(fields) - 1; i >= 0; i-- {
		if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
			return v
		}
	}
	return 0
}

func indexOf(fields []string, s string) int {
	for i, f := range fields {
		if f == s {
			return i
		}
	}
	return -1
}
