package bookshelf

import (
	"os"
	"path/filepath"
	"testing"
)

// writeBench materializes one benchmark from raw file contents.
func writeBench(t testing.TB, nodes, nets, pl, scl string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"f.aux":   "RowBasedPlacement : f.nodes f.nets f.pl f.scl\n",
		"f.nodes": nodes,
		"f.nets":  nets,
		"f.pl":    pl,
		"f.scl":   scl,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(dir, "f.aux")
}

// FuzzReadAux feeds arbitrary file contents through the reader: it may
// reject them with an error, but it must never panic, and anything it
// accepts must pass Validate.
func FuzzReadAux(f *testing.F) {
	f.Add("NumNodes : 1\na 2 2\n", "NetDegree : 2 n\n a I\n a O\n", "a 0 0 : N\n",
		"CoreRow Horizontal\n Coordinate : 0\n Height : 2\n Sitespacing : 1\n SubrowOrigin : 0 NumSites : 10\nEnd\n")
	f.Add("a 2", "garbage", "", "")
	f.Add("NumNodes : 2\na 1 1\nb 3 3 terminal\n", "NetDegree : 2\n a\n b\n", "a 5 5 : N\nb 1 1 : N /FIXED\n", "")
	f.Add("", "", "", "")
	f.Add("a -1 -1\n", "NetDegree : 0 empty\n", "a 1e308 1e308 : N\n", "CoreRow\nEnd\n")
	f.Fuzz(func(t *testing.T, nodes, nets, pl, scl string) {
		aux := writeBench(t, nodes, nets, pl, scl)
		d, err := ReadAux(aux)
		if err != nil {
			return
		}
		// Accepted designs must be structurally sound enough to walk.
		_ = d.HPWL()
		_ = d.Stats()
		for pi := range d.Pins {
			if d.Pins[pi].Net < 0 || d.Pins[pi].Net >= len(d.Nets) {
				t.Fatalf("pin %d references net %d of %d", pi, d.Pins[pi].Net, len(d.Nets))
			}
			if d.Pins[pi].Cell >= len(d.Cells) {
				t.Fatalf("pin %d references cell %d of %d", pi, d.Pins[pi].Cell, len(d.Cells))
			}
		}
	})
}

// FuzzReadPL: arbitrary .pl contents against a fixed design must never
// panic.
func FuzzReadPL(f *testing.F) {
	f.Add("a 1 2 : N\n")
	f.Add("a x y : N\n")
	f.Add("ghost 1 2 : N /FIXED\n")
	f.Add(": : :\n\n#c\nUCLA pl 1.0\n")
	f.Fuzz(func(t *testing.T, pl string) {
		dir := t.TempDir()
		path := filepath.Join(dir, "x.pl")
		if err := os.WriteFile(path, []byte(pl), 0o644); err != nil {
			t.Fatal(err)
		}
		aux := writeBench(t, "NumNodes : 1\na 2 2\n", "NetDegree : 2 n\n a I\n a O\n", "a 0 0 : N\n", "")
		d, err := ReadAux(aux)
		if err != nil {
			t.Skip()
		}
		_ = ReadPL(d, path) // errors fine, panics not
	})
}
