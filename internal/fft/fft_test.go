package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(j) * float64(k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func TestPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -4, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlan(%d) did not panic", n)
				}
			}()
			NewPlan(n)
		}()
	}
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128} {
		p := NewPlan(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x, false)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		for k := range got {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d k=%d got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestInverseMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 32
	p := NewPlan(n)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := naiveDFT(x, true)
	got := append([]complex128(nil), x...)
	p.Inverse(got)
	for k := range got {
		if cmplx.Abs(got[k]-want[k]) > 1e-9*float64(n) {
			t.Fatalf("k=%d got %v want %v", k, got[k], want[k])
		}
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 32, 256, 1024} {
		p := NewPlan(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		for i := range y {
			if cmplx.Abs(y[i]/complex(float64(n), 0)-x[i]) > 1e-10*float64(n) {
				t.Fatalf("n=%d i=%d round trip %v vs %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestParsevalEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 128
	p := NewPlan(n)
	x := make([]complex128, n)
	timeE := 0.0
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeE += real(x[i]) * real(x[i])
	}
	p.Forward(x)
	freqE := 0.0
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-8*timeE {
		t.Errorf("Parseval: time %v freq/n %v", timeE, freqE/float64(n))
	}
}

// allSizes is every power of two the acceptance bar names: the packed
// transforms must match the O(n^2) references at 1e-9 relative error
// on all of them (plus the degenerate n=1).
var allSizes = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

func randVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestDCT2MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range allSizes {
		r := NewReal(n)
		x := randVec(rng, n)
		got := make([]float64, n)
		r.DCT2(x, got)
		want := NaiveDCT2(x)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Fatalf("n=%d DCT2 max diff %v", n, d)
		}
	}
}

func TestIDCTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range allSizes {
		r := NewReal(n)
		a := randVec(rng, n)
		got := make([]float64, n)
		r.IDCT(a, got)
		want := NaiveIDCT(a)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Fatalf("n=%d IDCT max diff %v", n, d)
		}
	}
}

func TestIDSTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range allSizes {
		r := NewReal(n)
		a := randVec(rng, n)
		got := make([]float64, n)
		r.IDST(a, got)
		want := NaiveIDST(a)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Fatalf("n=%d IDST max diff %v", n, d)
		}
	}
}

// The pair transforms must agree with the naive references on both
// channels at every size: the packing separation is exact up to
// rounding.
func TestPairTransformsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range allSizes {
		r := NewReal(n)
		a := randVec(rng, n)
		b := randVec(rng, n)
		gotA := make([]float64, n)
		gotB := make([]float64, n)

		r.DCT2Pair(a, b, gotA, gotB)
		if d := maxAbsDiff(gotA, NaiveDCT2(a)); d > 1e-9*float64(n) {
			t.Fatalf("n=%d DCT2Pair A max diff %v", n, d)
		}
		if d := maxAbsDiff(gotB, NaiveDCT2(b)); d > 1e-9*float64(n) {
			t.Fatalf("n=%d DCT2Pair B max diff %v", n, d)
		}

		r.IDCTPair(a, b, gotA, gotB)
		if d := maxAbsDiff(gotA, NaiveIDCT(a)); d > 1e-9*float64(n) {
			t.Fatalf("n=%d IDCTPair A max diff %v", n, d)
		}
		if d := maxAbsDiff(gotB, NaiveIDCT(b)); d > 1e-9*float64(n) {
			t.Fatalf("n=%d IDCTPair B max diff %v", n, d)
		}

		r.IDSTPair(a, b, gotA, gotB)
		if d := maxAbsDiff(gotA, NaiveIDST(a)); d > 1e-9*float64(n) {
			t.Fatalf("n=%d IDSTPair A max diff %v", n, d)
		}
		if d := maxAbsDiff(gotB, NaiveIDST(b)); d > 1e-9*float64(n) {
			t.Fatalf("n=%d IDSTPair B max diff %v", n, d)
		}
	}
}

// The Poisson pipeline transforms coefficient planes in place, so every
// transform must tolerate out aliasing the input.
func TestTransformsInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{2, 8, 64, 512} {
		r := NewReal(n)
		a := randVec(rng, n)
		b := randVec(rng, n)

		ref := make([]float64, n)
		r.DCT2(a, ref)
		got := append([]float64(nil), a...)
		r.DCT2(got, got)
		if maxAbsDiff(got, ref) != 0 {
			t.Fatalf("n=%d DCT2 in place differs", n)
		}

		refB := make([]float64, n)
		r.IDCTPair(a, b, ref, refB)
		gotA := append([]float64(nil), a...)
		gotB := append([]float64(nil), b...)
		r.IDCTPair(gotA, gotB, gotA, gotB)
		if maxAbsDiff(gotA, ref) != 0 || maxAbsDiff(gotB, refB) != 0 {
			t.Fatalf("n=%d IDCTPair in place differs", n)
		}

		r.IDSTPair(a, b, ref, refB)
		copy(gotA, a)
		copy(gotB, b)
		r.IDSTPair(gotA, gotB, gotA, gotB)
		if maxAbsDiff(gotA, ref) != 0 || maxAbsDiff(gotB, refB) != 0 {
			t.Fatalf("n=%d IDSTPair in place differs", n)
		}
	}
}

func TestIDCTAndIDSTConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 64
	r := NewReal(n)
	a := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	c1 := make([]float64, n)
	s1 := make([]float64, n)
	r.IDCTAndIDST(a, c1, s1)
	c2 := make([]float64, n)
	s2 := make([]float64, n)
	r.IDCT(a, c2)
	r.IDST(a, s2)
	// The fused transform runs through a full-length FFT, the single
	// ones through the half-packed route, so agreement is to rounding
	// rather than bitwise.
	if maxAbsDiff(c1, c2) > 1e-9 || maxAbsDiff(s1, s2) > 1e-9 {
		t.Error("combined transform disagrees with separate calls")
	}
}

// Property: DCT2 followed by IDCT with the standard normalization
// recovers the input: x_i = (2/n) * sum_u s_u X_u cos(...), s_0 = 1/2.
func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{2, 8, 64, 512, 1024} {
		r := NewReal(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		coef := make([]float64, n)
		r.DCT2(x, coef)
		for u := range coef {
			coef[u] *= 2 / float64(n)
		}
		coef[0] /= 2
		back := make([]float64, n)
		r.IDCT(coef, back)
		if d := maxAbsDiff(back, x); d > 1e-8 {
			t.Fatalf("n=%d DCT round trip max diff %v", n, d)
		}
	}
}

// Property: the reconstruction of a pure cosine mode is exact.
func TestSingleModeReconstruction(t *testing.T) {
	n := 32
	r := NewReal(n)
	for u := 0; u < n; u += 5 {
		a := make([]float64, n)
		a[u] = 1
		got := make([]float64, n)
		r.IDCT(a, got)
		for i := 0; i < n; i++ {
			want := math.Cos(math.Pi * float64(u) * float64(2*i+1) / float64(2*n))
			if math.Abs(got[i]-want) > 1e-10 {
				t.Fatalf("mode u=%d sample i=%d: got %v want %v", u, i, got[i], want)
			}
		}
	}
}

// Property: IDST of the u=0 mode is identically zero.
func TestIDSTZeroMode(t *testing.T) {
	n := 16
	r := NewReal(n)
	a := make([]float64, n)
	a[0] = 123.456
	out := make([]float64, n)
	r.IDST(a, out)
	for i, v := range out {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("IDST zero mode leaked at %d: %v", i, v)
		}
	}
}

// Property: transforms are linear.
func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 64
	r := NewReal(n)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	sum := make([]float64, n)
	for i := range sum {
		sum[i] = 2*a[i] - 3*b[i]
	}
	ta := make([]float64, n)
	tb := make([]float64, n)
	ts := make([]float64, n)
	r.DCT2(a, ta)
	r.DCT2(b, tb)
	r.DCT2(sum, ts)
	for i := range ts {
		if math.Abs(ts[i]-(2*ta[i]-3*tb[i])) > 1e-8 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	p := NewPlan(1024)
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%7), float64(i%3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func benchInput(n int) (*Real, []float64, []float64) {
	r := NewReal(n)
	x := make([]float64, n)
	out := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 13)
	}
	return r, x, out
}

func BenchmarkDCT2_128(b *testing.B) {
	r, x, out := benchInput(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.DCT2(x, out)
	}
}

func BenchmarkDCT2_256(b *testing.B) {
	r, x, out := benchInput(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.DCT2(x, out)
	}
}

func BenchmarkDCT2_512(b *testing.B) {
	r, x, out := benchInput(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.DCT2(x, out)
	}
}

// BenchmarkDCT2Pair_512 amortizes one full-length FFT over two rows —
// the per-row cost should undercut two single DCT2 calls.
func BenchmarkDCT2Pair_512(b *testing.B) {
	r, x, out := benchInput(512)
	x2 := append([]float64(nil), x...)
	out2 := make([]float64, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.DCT2Pair(x, x2, out, out2)
	}
}

func BenchmarkIDCT_512(b *testing.B) {
	r, x, out := benchInput(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.IDCT(x, out)
	}
}

func BenchmarkIDCTAndIDST_512(b *testing.B) {
	r, x, out := benchInput(512)
	out2 := make([]float64, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.IDCTAndIDST(x, out, out2)
	}
}
