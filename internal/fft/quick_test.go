package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Forward then Inverse recovers the input (scaled by n) for
// arbitrary random vectors and sizes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, sizeSel uint8) bool {
		n := 1 << (2 + sizeSel%8) // 4..512
		rng := rand.New(rand.NewSource(seed))
		p := NewPlan(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		for i := range y {
			if cmplx.Abs(y[i]/complex(float64(n), 0)-x[i]) > 1e-9*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: DCT2 of a constant vector concentrates all energy in the
// zero coefficient.
func TestQuickDCTConstant(t *testing.T) {
	f := func(cRaw int16, sizeSel uint8) bool {
		n := 1 << (1 + sizeSel%8)
		c := float64(cRaw) / 64
		r := NewReal(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = c
		}
		out := make([]float64, n)
		r.DCT2(x, out)
		if math.Abs(out[0]-c*float64(n)) > 1e-9*float64(n)*(1+math.Abs(c)) {
			return false
		}
		for u := 1; u < n; u++ {
			if math.Abs(out[u]) > 1e-8*(1+math.Abs(c))*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: IDCT and IDST agree with the naive O(n^2) references on
// random coefficient vectors.
func TestQuickMatchesNaive(t *testing.T) {
	f := func(seed int64, sizeSel uint8) bool {
		n := 1 << (1 + sizeSel%6) // 2..64 (naive is quadratic)
		rng := rand.New(rand.NewSource(seed))
		r := NewReal(n)
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		c := make([]float64, n)
		s := make([]float64, n)
		r.IDCTAndIDST(a, c, s)
		wc := NaiveIDCT(a)
		ws := NaiveIDST(a)
		for i := 0; i < n; i++ {
			if math.Abs(c[i]-wc[i]) > 1e-8*float64(n) || math.Abs(s[i]-ws[i]) > 1e-8*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
