// AVX2 butterfly kernels for the float32 FFT (Plan32). The buffers are
// []complex64 viewed as interleaved float32 re/im pairs; one YMM
// register holds 4 complex values. Written directly in assembly because
// the Go compiler widens complex64 arithmetic to float64, and the
// scalar float32 decomposition it would take to avoid that does not
// auto-vectorize.
//
// Lane conventions: a complex64 occupies one qword; "even/odd float
// lanes" of a qword are (re, im).

#include "textflag.h"

// func hasAVX2asm() bool
//
// CPUID feature probe: OSXSAVE+AVX (leaf 1 ECX bits 27,28), OS YMM
// state enabled (XCR0 bits 1,2), and AVX2 (leaf 7 EBX bit 5).
TEXT ·hasAVX2asm(SB), NOSPLIT, $0-1
	MOVL	$1, AX
	XORL	CX, CX
	CPUID
	MOVL	CX, DX
	SHRL	$27, DX
	ANDL	$3, DX
	CMPL	DX, $3
	JNE	no
	XORL	CX, CX
	XGETBV
	ANDL	$6, AX
	CMPL	AX, $6
	JNE	no
	MOVL	$7, AX
	XORL	CX, CX
	CPUID
	SHRL	$5, BX
	ANDL	$1, BX
	MOVB	BX, ret+0(FP)
	RET
no:
	MOVB	$0, ret+0(FP)
	RET

// func stage12AVX2(x *complex64, n int, mask *uint32)
//
// Fused first two DIT stages (butterfly sizes 2 and 4) over a
// bit-reversed buffer: each block of 4 complex values [x0 x1 x2 x3] is
// one YMM register and is carried through both stages in registers.
//
// Stage 1:  a=x0+x1  b=x0-x1  c=x2+x3  d=x2-x3
// Stage 2:  y0=a+c  y1=b+w1*d  y2=a-c  y3=b-w1*d,  w1 = -i fwd / +i inv
//
// mask points at 16 uint32s: the first 8 (M1) give stage 1 its qword
// sign pattern (negate floats of qwords 1,3 so one VADDPS computes
// both +/- halves); the second 8 (M2) fold w1 and the stage-2 signs
// into one XOR after an in-qword re/im swap of the d term.
TEXT ·stage12AVX2(SB), NOSPLIT, $0-24
	MOVQ	x+0(FP), DI
	MOVQ	n+8(FP), SI
	MOVQ	mask+16(FP), DX
	VMOVUPS	(DX), Y14
	VMOVUPS	32(DX), Y15
	SHLQ	$3, SI
	XORQ	AX, AX
loop:
	VMOVUPS	(DI)(AX*1), Y0
	VPERMPD	$0xA0, Y0, Y1       // [x0 x0 x2 x2]
	VPERMPD	$0xF5, Y0, Y2       // [x1 x1 x3 x3]
	VXORPS	Y14, Y2, Y2         // [x1 -x1 x3 -x3]
	VADDPS	Y2, Y1, Y3          // t = [a b c d]
	VPERM2F128 $0x00, Y3, Y3, Y4 // [a b a b]
	VPERM2F128 $0x11, Y3, Y3, Y5 // [c d c d]
	VPERMILPS $0xB4, Y5, Y5     // swap re/im of the d qwords
	VXORPS	Y15, Y5, Y5         // [c  w1*d  -c  -w1*d]
	VADDPS	Y5, Y4, Y6          // [y0 y1 y2 y3]
	VMOVUPS	Y6, (DI)(AX*1)
	ADDQ	$32, AX
	CMPQ	AX, SI
	JLT	loop
	VZEROUPPER
	RET

// func stageGAVX2(x *complex64, n, half int, tw *complex64)
//
// One generic DIT stage of butterfly size 2*half (half >= 4, a
// multiple of 4): for every block and every k, with t = w_k * v,
//   u' = u + t,  v' = u - t.
// The complex multiply is the usual moveldup/movehdup/addsubps
// pattern, 4 butterflies per iteration; tw is this stage's contiguous
// twiddle table.
TEXT ·stageGAVX2(SB), NOSPLIT, $0-32
	MOVQ	x+0(FP), DI
	MOVQ	n+8(FP), SI
	MOVQ	half+16(FP), CX
	MOVQ	tw+24(FP), DX
	SHLQ	$3, CX              // half in bytes
	MOVQ	CX, R8
	SHLQ	$1, R8              // block size in bytes
	SHLQ	$3, SI              // buffer size in bytes
	XORQ	R9, R9              // block start offset
outer:
	LEAQ	(DI)(R9*1), R10     // &x[start]
	LEAQ	(R10)(CX*1), R11    // &x[start+half]
	XORQ	AX, AX              // k offset in bytes
inner:
	VMOVUPS	(R10)(AX*1), Y0     // u
	VMOVUPS	(R11)(AX*1), Y1     // v
	VMOVUPS	(DX)(AX*1), Y2      // w
	VMOVSLDUP Y2, Y3            // [wr wr]
	VMOVSHDUP Y2, Y4            // [wi wi]
	VPERMILPS $0xB1, Y1, Y5     // [vi vr]
	VMULPS	Y3, Y1, Y6          // [vr*wr vi*wr]
	VMULPS	Y4, Y5, Y7          // [vi*wi vr*wi]
	VADDSUBPS Y7, Y6, Y8        // t = [vr*wr-vi*wi  vi*wr+vr*wi]
	VADDPS	Y8, Y0, Y9          // u + t
	VSUBPS	Y8, Y0, Y10         // u - t
	VMOVUPS	Y9, (R10)(AX*1)
	VMOVUPS	Y10, (R11)(AX*1)
	ADDQ	$32, AX
	CMPQ	AX, CX
	JLT	inner
	ADDQ	R8, R9
	CMPQ	R9, SI
	JLT	outer
	VZEROUPPER
	RET
