//go:build amd64

package fft

// useAVX2 selects the assembly butterfly kernels. It is probed once at
// startup; a process therefore runs exactly one butterfly
// implementation for its whole lifetime, which keeps the float32
// backend bitwise deterministic (the vector and scalar kernels agree
// to the last ulp only stage by stage, not necessarily after rounding,
// so mixing them mid-run would break digest stability).
var useAVX2 = hasAVX2asm()

// hasAVX2asm reports whether the CPU and OS support the AVX2 kernels.
// Implemented in fft32_amd64.s.
func hasAVX2asm() bool

// stage12AVX2 runs the fused size-2 and size-4 butterfly stages over a
// bit-reversed buffer of n complex64 values (n >= 8). mask points at
// the 16 sign words of stage12FwdMask or stage12InvMask.
//
//go:noescape
func stage12AVX2(x *complex64, n int, mask *uint32)

// stageGAVX2 runs one butterfly stage of size 2*half (half >= 4) with
// the stage's contiguous twiddle table.
//
//go:noescape
func stageGAVX2(x *complex64, n, half int, tw *complex64)
