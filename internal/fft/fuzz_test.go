package fft

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzReorderTables checks the structural invariants of the packed
// transform tables at fuzzed sizes: the Makhoul input reorder and the
// inverse output scatter must both be permutations of [0, n), the
// even/odd structure the scatter's sign folding relies on must hold
// (b_j lands on an even output index exactly when j < n/2), and the
// two tables must be mutually consistent in the sense that a DCT2
// round trip through both reconstructs the input.
func FuzzReorderTables(f *testing.F) {
	for _, seed := range []uint8{0, 1, 5, 10} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, sizeExp uint8) {
		n := 1 << (int(sizeExp) % 11) // 1..1024
		r := NewReal(n)
		if n == 1 {
			return // degenerate: no tables
		}
		h := n / 2
		seen := make([]bool, n)
		for j, src := range r.fwdReorder {
			if src < 0 || src >= n || seen[src] {
				t.Fatalf("n=%d fwdReorder[%d]=%d is not a permutation", n, j, src)
			}
			seen[src] = true
			// Makhoul order: first half ascending evens, second half
			// descending odds.
			if j < h && src != 2*j {
				t.Fatalf("n=%d fwdReorder[%d]=%d, want %d", n, j, src, 2*j)
			}
			if j >= h && src != 2*(n-1-j)+1 {
				t.Fatalf("n=%d fwdReorder[%d]=%d, want %d", n, j, src, 2*(n-1-j)+1)
			}
		}
		seen = make([]bool, n)
		for j, dst := range r.invPos {
			if dst < 0 || dst >= n || seen[dst] {
				t.Fatalf("n=%d invPos[%d]=%d is not a permutation", n, j, dst)
			}
			seen[dst] = true
			if (dst%2 == 0) != (j < h) {
				t.Fatalf("n=%d invPos[%d]=%d breaks the parity split", n, j, dst)
			}
		}
		// Consistency: DCT2 through fwdReorder followed by IDCT through
		// invPos must reproduce the input under the standard scaling.
		rng := rand.New(rand.NewSource(int64(n)))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		coef := make([]float64, n)
		r.DCT2(x, coef)
		for u := range coef {
			coef[u] *= 2 / float64(n)
		}
		coef[0] /= 2
		back := make([]float64, n)
		r.IDCT(coef, back)
		for i := range back {
			if math.Abs(back[i]-x[i]) > 1e-8 {
				t.Fatalf("n=%d round trip differs at %d: %v vs %v", n, i, back[i], x[i])
			}
		}
	})
}

// FuzzPackedTransforms cross-checks the packed fast transforms against
// the O(n^2) references on fuzzed inputs and sizes, covering the single
// (half-length FFT) and pair (full-length FFT) code paths.
func FuzzPackedTransforms(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(42), uint8(6))
	f.Add(int64(-7), uint8(0))
	f.Add(int64(99), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, sizeExp uint8) {
		n := 1 << (int(sizeExp) % 9) // 1..256: naive reference is quadratic
		rng := rand.New(rand.NewSource(seed))
		r := NewReal(n)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 10
			b[i] = rng.NormFloat64() * 10
		}
		tol := 1e-9 * float64(n) * 10
		check := func(name string, got, want []float64) {
			t.Helper()
			for i := range got {
				if math.Abs(got[i]-want[i]) > tol {
					t.Fatalf("n=%d %s[%d] = %v, naive %v", n, name, i, got[i], want[i])
				}
			}
		}
		out := make([]float64, n)
		out2 := make([]float64, n)
		r.DCT2(a, out)
		check("DCT2", out, NaiveDCT2(a))
		r.IDCT(a, out)
		check("IDCT", out, NaiveIDCT(a))
		r.IDST(a, out)
		check("IDST", out, NaiveIDST(a))
		r.IDCTAndIDST(a, out, out2)
		check("IDCTAndIDST/C", out, NaiveIDCT(a))
		check("IDCTAndIDST/S", out2, NaiveIDST(a))
		r.DCT2Pair(a, b, out, out2)
		check("DCT2Pair/A", out, NaiveDCT2(a))
		check("DCT2Pair/B", out2, NaiveDCT2(b))
		r.IDCTPair(a, b, out, out2)
		check("IDCTPair/A", out, NaiveIDCT(a))
		check("IDCTPair/B", out2, NaiveIDCT(b))
		r.IDSTPair(a, b, out, out2)
		check("IDSTPair/A", out, NaiveIDST(a))
		check("IDSTPair/B", out2, NaiveIDST(b))
	})
}
