//go:build amd64

package fft

import (
	"math/rand"
	"testing"
)

func toF64(x []float32) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = float64(v)
	}
	return out
}

// TestScalarFallbackMatchesNaive forces the portable butterfly kernel
// and pins it against the float64 naive references, so the non-AVX2
// path stays correct even when CI machines all take the vector path.
func TestScalarFallbackMatchesNaive(t *testing.T) {
	if !useAVX2 {
		t.Skip("already on the scalar path")
	}
	useAVX2 = false
	defer func() { useAVX2 = true }()

	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		r := NewReal32(n)
		xA := make([]float32, n)
		xB := make([]float32, n)
		for j := range xA {
			xA[j] = float32(rng.Float64()*2 - 1)
			xB[j] = float32(rng.Float64()*2 - 1)
		}
		outA := make([]float32, n)
		outB := make([]float32, n)
		r.DCT2Pair(xA, xB, outA, outB)
		wantA := NaiveDCT2(toF64(xA))
		wantB := NaiveDCT2(toF64(xB))
		tol := relTol32(n)
		if e := maxRelErr32(outA, wantA); e > tol {
			t.Errorf("scalar DCT2Pair n=%d A: rel err %.3g > %.3g", n, e, tol)
		}
		if e := maxRelErr32(outB, wantB); e > tol {
			t.Errorf("scalar DCT2Pair n=%d B: rel err %.3g > %.3g", n, e, tol)
		}

		r.IDCTPair(xA, xB, outA, outB)
		wantA = NaiveIDCT(toF64(xA))
		wantB = NaiveIDCT(toF64(xB))
		if e := maxRelErr32(outA, wantA); e > tol {
			t.Errorf("scalar IDCTPair n=%d A: rel err %.3g > %.3g", n, e, tol)
		}
		if e := maxRelErr32(outB, wantB); e > tol {
			t.Errorf("scalar IDCTPair n=%d B: rel err %.3g > %.3g", n, e, tol)
		}

		r.IDSTPair(xA, xB, outA, outB)
		wantA = NaiveIDST(toF64(xA))
		wantB = NaiveIDST(toF64(xB))
		if e := maxRelErr32(outA, wantA); e > tol {
			t.Errorf("scalar IDSTPair n=%d A: rel err %.3g > %.3g", n, e, tol)
		}
		if e := maxRelErr32(outB, wantB); e > tol {
			t.Errorf("scalar IDSTPair n=%d B: rel err %.3g > %.3g", n, e, tol)
		}
	}
}
