// Package fft implements the spectral transforms used by the Poisson
// solver: an iterative radix-2 complex FFT plus the real cosine/sine
// transforms (DCT-II, inverse DCT, inverse DST) that expand and
// reconstruct grids in the Neumann cosine basis
//
//	f(x) = sum_u a_u cos(w_u (x + 1/2)),  w_u = pi*u/n.
//
// All transforms are unnormalized sums; callers apply scaling. Sizes
// must be powers of two, which the bin grid guarantees.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Plan holds precomputed twiddle factors and the bit-reversal
// permutation for complex FFTs of one size.
//
// Concurrency contract: a Plan is immutable after NewPlan — Forward and
// Inverse only read the plan and mutate the caller's buffer in place —
// so one Plan may be shared by any number of goroutines as long as each
// call operates on a distinct buffer. This differs from Real below,
// which owns mutable scratch and is single-goroutine-only.
type Plan struct {
	n       int
	logn    int
	rev     []int
	twiddle []complex128 // twiddle[k] = exp(-2*pi*i*k/n), k < n/2
}

// NewPlan creates a plan for complex FFTs of length n (a power of two).
func NewPlan(n int) *Plan {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: size %d is not a positive power of two", n))
	}
	p := &Plan{n: n, logn: bits.TrailingZeros(uint(n))}
	p.rev = make([]int, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - p.logn))
	}
	p.twiddle = make([]complex128, n/2)
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = cmplx.Exp(complex(0, ang))
	}
	return p
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

// Forward computes the in-place forward DFT
//
//	X_k = sum_j x_j exp(-2*pi*i*j*k/n).
func (p *Plan) Forward(x []complex128) { p.transform(x, false) }

// Inverse computes the in-place unnormalized inverse DFT
//
//	x_j = sum_k X_k exp(+2*pi*i*j*k/n)
//
// (no 1/n factor; callers scale as needed).
func (p *Plan) Inverse(x []complex128) { p.transform(x, true) }

func (p *Plan) transform(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: buffer length %d, plan size %d", len(x), p.n))
	}
	// Bit-reversal permutation.
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	for size := 2; size <= p.n; size <<= 1 {
		half := size >> 1
		step := p.n / size
		for start := 0; start < p.n; start += size {
			ti := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[ti]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				u := x[k]
				v := x[k+half] * w
				x[k] = u + v
				x[k+half] = u - v
				ti += step
			}
		}
	}
}

// Real implements the three real transforms on length-n vectors via one
// shared length-2n complex FFT.
//
// Concurrency contract: a Real is NOT safe for concurrent use — every
// transform stages data through the internal scratch buffer, unlike
// Plan whose calls are independent. Create one Real per worker
// goroutine (the poisson.Solver pool does exactly this); construction
// is cheap and instances share nothing mutable.
type Real struct {
	n       int
	plan    *Plan
	scratch []complex128
	// shift[u] = exp(+i*pi*u/(2n)) used by the inverse transforms,
	// and its conjugate by the forward transform.
	shift []complex128
}

// NewReal creates real-transform workspace for vectors of length n
// (a power of two).
func NewReal(n int) *Real {
	r := &Real{n: n, plan: NewPlan(2 * n)}
	r.scratch = make([]complex128, 2*n)
	r.shift = make([]complex128, n)
	for u := 0; u < n; u++ {
		ang := math.Pi * float64(u) / float64(2*n)
		r.shift[u] = cmplx.Exp(complex(0, ang))
	}
	return r
}

// N returns the vector length.
func (r *Real) N() int { return r.n }

// DCT2 computes the unnormalized forward DCT-II
//
//	out_u = sum_i x_i cos(pi*u*(2i+1)/(2n)).
func (r *Real) DCT2(x, out []float64) {
	r.check(x, out)
	for i := 0; i < r.n; i++ {
		r.scratch[i] = complex(x[i], 0)
	}
	for i := r.n; i < 2*r.n; i++ {
		r.scratch[i] = 0
	}
	r.plan.Forward(r.scratch)
	for u := 0; u < r.n; u++ {
		// cos term = Re(conj(shift)*F_u).
		s := r.shift[u]
		f := r.scratch[u]
		out[u] = real(f)*real(s) + imag(f)*imag(s)
	}
}

// IDCT computes the cosine reconstruction
//
//	out_i = sum_u a_u cos(pi*u*(2i+1)/(2n)).
//
// Note a_0 is weighted fully (not halved as in the classical DCT-III).
func (r *Real) IDCT(a, out []float64) {
	r.check(a, out)
	r.inverseBoth(a)
	for i := 0; i < r.n; i++ {
		out[i] = real(r.scratch[i])
	}
}

// IDST computes the sine reconstruction
//
//	out_i = sum_u a_u sin(pi*u*(2i+1)/(2n)).
//
// The u = 0 term contributes nothing regardless of a_0.
func (r *Real) IDST(a, out []float64) {
	r.check(a, out)
	r.inverseBoth(a)
	for i := 0; i < r.n; i++ {
		out[i] = imag(r.scratch[i])
	}
}

// IDCTAndIDST computes both reconstructions of the same coefficients
// with a single FFT: outC_i = sum a_u cos(...), outS_i = sum a_u sin(...).
func (r *Real) IDCTAndIDST(a, outC, outS []float64) {
	r.check(a, outC)
	r.check(a, outS)
	r.inverseBoth(a)
	for i := 0; i < r.n; i++ {
		outC[i] = real(r.scratch[i])
		outS[i] = imag(r.scratch[i])
	}
}

// inverseBoth leaves sum_u a_u exp(+i*pi*u*(2i+1)/(2n)) in scratch[:n].
func (r *Real) inverseBoth(a []float64) {
	for u := 0; u < r.n; u++ {
		r.scratch[u] = complex(a[u], 0) * r.shift[u]
	}
	for u := r.n; u < 2*r.n; u++ {
		r.scratch[u] = 0
	}
	r.plan.Inverse(r.scratch)
}

func (r *Real) check(in, out []float64) {
	if len(in) != r.n || len(out) != r.n {
		panic(fmt.Sprintf("fft: vector length %d/%d, workspace size %d", len(in), len(out), r.n))
	}
}

// NaiveDCT2 is the O(n^2) reference for DCT2, used in tests.
func NaiveDCT2(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += x[i] * math.Cos(math.Pi*float64(u)*float64(2*i+1)/float64(2*n))
		}
		out[u] = s
	}
	return out
}

// NaiveIDCT is the O(n^2) reference for IDCT, used in tests.
func NaiveIDCT(a []float64) []float64 {
	n := len(a)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for u := 0; u < n; u++ {
			s += a[u] * math.Cos(math.Pi*float64(u)*float64(2*i+1)/float64(2*n))
		}
		out[i] = s
	}
	return out
}

// NaiveIDST is the O(n^2) reference for IDST, used in tests.
func NaiveIDST(a []float64) []float64 {
	n := len(a)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for u := 0; u < n; u++ {
			s += a[u] * math.Sin(math.Pi*float64(u)*float64(2*i+1)/float64(2*n))
		}
		out[i] = s
	}
	return out
}
