// Package fft implements the spectral transforms used by the Poisson
// solver: an iterative radix-2 complex FFT plus the real cosine/sine
// transforms (DCT-II, inverse DCT, inverse DST) that expand and
// reconstruct grids in the Neumann cosine basis
//
//	f(x) = sum_u a_u cos(w_u (x + 1/2)),  w_u = pi*u/n.
//
// The real transforms use Makhoul's packed formulation: a length-n
// DCT-II (or its cosine/sine reconstructions) is computed from a single
// length-n/2 complex FFT of the even/odd-reordered input, with a
// precomputed reorder table and quarter-sample shift twiddles — about
// 4x fewer butterflies than the classical zero-padded length-2n
// embedding. The *Pair methods go one step further and carry two
// independent real vectors through one full length-n complex FFT, which
// is how the Poisson solver amortizes FFT work across its planes.
//
// All transforms are unnormalized sums; callers apply scaling. Sizes
// must be powers of two, which the bin grid guarantees.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Plan holds precomputed twiddle factors and the bit-reversal
// permutation for complex FFTs of one size.
//
// Concurrency contract: a Plan is immutable after NewPlan — Forward and
// Inverse only read the plan and mutate the caller's buffer in place —
// so one Plan may be shared by any number of goroutines as long as each
// call operates on a distinct buffer. This differs from Real below,
// which owns mutable scratch and is single-goroutine-only.
type Plan struct {
	n       int
	logn    int
	rev     []int
	twiddle []complex128 // twiddle[k] = exp(-2*pi*i*k/n), k < n/2
}

// NewPlan creates a plan for complex FFTs of length n (a power of two).
func NewPlan(n int) *Plan {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: size %d is not a positive power of two", n))
	}
	p := &Plan{n: n, logn: bits.TrailingZeros(uint(n))}
	p.rev = make([]int, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - p.logn))
	}
	p.twiddle = make([]complex128, n/2)
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = cmplx.Exp(complex(0, ang))
	}
	return p
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

// Forward computes the in-place forward DFT
//
//	X_k = sum_j x_j exp(-2*pi*i*j*k/n).
func (p *Plan) Forward(x []complex128) { p.transform(x, false) }

// Inverse computes the in-place unnormalized inverse DFT
//
//	x_j = sum_k X_k exp(+2*pi*i*j*k/n)
//
// (no 1/n factor; callers scale as needed).
func (p *Plan) Inverse(x []complex128) { p.transform(x, true) }

func (p *Plan) transform(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: buffer length %d, plan size %d", len(x), p.n))
	}
	// Bit-reversal permutation.
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	for size := 2; size <= p.n; size <<= 1 {
		half := size >> 1
		step := p.n / size
		for start := 0; start < p.n; start += size {
			ti := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[ti]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				u := x[k]
				v := x[k+half] * w
				x[k] = u + v
				x[k+half] = u - v
				ti += step
			}
		}
	}
}

// Real implements the three real transforms on length-n vectors with
// Makhoul-style packing: single transforms run through one length-n/2
// complex FFT of the even/odd-reordered data, and the *Pair variants
// carry two real vectors through one full length-n complex FFT.
//
// Concurrency contract: a Real is NOT safe for concurrent use — every
// transform stages data through the internal scratch and B-spectrum
// buffers and reads the shared reorder/twiddle tables, unlike Plan
// whose calls are independent. Create one Real per worker goroutine
// (the poisson.Solver pool does exactly this); construction is cheap
// and instances share nothing mutable. All methods tolerate out
// aliasing the input: inputs are fully staged into scratch before any
// output element is written.
type Real struct {
	n, h int   // vector length and its half
	full *Plan // length-n plan for the pair transforms (nil when n == 1)
	half *Plan // length-n/2 plan for the single transforms (nil when n == 1)
	// scratch is the complex FFT buffer; bbuf stages the B spectrum
	// (u = 0..h) of the half-packed inverse transforms.
	scratch []complex128
	bbuf    []complex128
	// fwdReorder is Makhoul's input permutation
	// v = [x_0, x_2, ..., x_{n-2}, x_{n-1}, x_{n-3}, ..., x_1]:
	// v[j] = x[fwdReorder[j]].
	fwdReorder []int
	// invPos is the inverse output scatter: reconstruction sample b_j of
	// the packed inverse lands at out[invPos[j]] (2j for j < h, else
	// 2n-2j-1). Positions with j < h are exactly the even out indices,
	// which is what lets IDST fold its (-1)^i sign into the scatter.
	invPos []int
	// fwdTw[u] = exp(-i*pi*u/(2n)), the forward quarter-sample shift;
	// invTw is its conjugate, used to build the inverse B spectrum.
	fwdTw, invTw []complex128
	// packTw[u] = exp(-2*pi*i*u/n), u <= h: the even/odd recombination
	// twiddle of the half-length packing.
	packTw []complex128
}

// NewReal creates real-transform workspace for vectors of length n
// (a power of two).
func NewReal(n int) *Real {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: size %d is not a positive power of two", n))
	}
	r := &Real{n: n, h: n / 2}
	if n == 1 {
		return r
	}
	r.full = NewPlan(n)
	r.half = NewPlan(n / 2)
	r.scratch = make([]complex128, n)
	r.bbuf = make([]complex128, r.h+1)
	r.fwdReorder = make([]int, n)
	for j := 0; j < r.h; j++ {
		r.fwdReorder[j] = 2 * j
		r.fwdReorder[n-1-j] = 2*j + 1
	}
	r.invPos = make([]int, n)
	for j := 0; j < n; j++ {
		if j < r.h {
			r.invPos[j] = 2 * j
		} else {
			r.invPos[j] = 2*n - 2*j - 1
		}
	}
	r.fwdTw = make([]complex128, n)
	r.invTw = make([]complex128, n)
	for u := 0; u < n; u++ {
		ang := math.Pi * float64(u) / float64(2*n)
		r.invTw[u] = cmplx.Exp(complex(0, ang))
		r.fwdTw[u] = complex(real(r.invTw[u]), -imag(r.invTw[u]))
	}
	r.packTw = make([]complex128, r.h+1)
	for u := 0; u <= r.h; u++ {
		ang := -2 * math.Pi * float64(u) / float64(n)
		r.packTw[u] = cmplx.Exp(complex(0, ang))
	}
	return r
}

// N returns the vector length.
func (r *Real) N() int { return r.n }

// DCT2 computes the unnormalized forward DCT-II
//
//	out_u = sum_i x_i cos(pi*u*(2i+1)/(2n))
//
// via one length-n/2 complex FFT: the even/odd-reordered input v packs
// into n/2 complex samples, and out_u = Re(exp(-i*pi*u/(2n)) V_u) where
// V is the length-n DFT of v, recovered from the packed spectrum by the
// standard real-FFT split.
func (r *Real) DCT2(x, out []float64) {
	r.check(x, out)
	n, h := r.n, r.h
	if n == 1 {
		out[0] = x[0]
		return
	}
	for t := 0; t < h; t++ {
		r.scratch[t] = complex(x[r.fwdReorder[2*t]], x[r.fwdReorder[2*t+1]])
	}
	r.half.Forward(r.scratch[:h])
	for u := 0; u <= h; u++ {
		zu := r.scratch[u%h]
		zc := r.scratch[(h-u)%h]
		zc = complex(real(zc), -imag(zc))
		e := (zu + zc) / 2
		d := (zu - zc) / 2
		o := complex(imag(d), -real(d)) // -i * d
		t := r.fwdTw[u] * (e + r.packTw[u]*o)
		out[u] = real(t)
		if u >= 1 && u < h {
			out[n-u] = -imag(t)
		}
	}
}

// DCT2Pair computes the DCT-II of two independent vectors with one full
// length-n complex FFT, packing xA into the real and xB into the
// imaginary channel. Either output may alias its input.
func (r *Real) DCT2Pair(xA, xB, outA, outB []float64) {
	r.check(xA, outA)
	r.check(xB, outB)
	n := r.n
	if n == 1 {
		outA[0], outB[0] = xA[0], xB[0]
		return
	}
	for j := 0; j < n; j++ {
		src := r.fwdReorder[j]
		r.scratch[j] = complex(xA[src], xB[src])
	}
	r.full.Forward(r.scratch)
	for u := 0; u < n; u++ {
		zu := r.scratch[u]
		zc := r.scratch[(n-u)%n]
		zc = complex(real(zc), -imag(zc))
		w := r.fwdTw[u]
		ta := w * (zu + zc)
		tb := w * (zu - zc)
		outA[u] = real(ta) / 2
		outB[u] = imag(tb) / 2
	}
}

// IDCT computes the cosine reconstruction
//
//	out_i = sum_u a_u cos(pi*u*(2i+1)/(2n))
//
// via one length-n/2 complex FFT. Note a_0 is weighted fully (not
// halved as in the classical DCT-III).
func (r *Real) IDCT(a, out []float64) {
	r.check(a, out)
	if r.n == 1 {
		out[0] = a[0]
		return
	}
	r.buildB(a, false)
	r.inverseHalf()
	h := r.h
	for t := 0; t < h; t++ {
		z := r.scratch[t]
		out[r.invPos[2*t]] = real(z)
		out[r.invPos[2*t+1]] = imag(z)
	}
}

// IDST computes the sine reconstruction
//
//	out_i = sum_u a_u sin(pi*u*(2i+1)/(2n)).
//
// The u = 0 term contributes nothing regardless of a_0. Internally it
// is the IDCT of the frequency-reversed coefficients with a sign flip
// on the odd output samples:
// sin(pi*u*(2i+1)/(2n)) = (-1)^i cos(pi*(n-u)*(2i+1)/(2n)).
func (r *Real) IDST(a, out []float64) {
	r.check(a, out)
	if r.n == 1 {
		out[0] = 0
		return
	}
	r.buildB(a, true)
	r.inverseHalf()
	h := r.h
	for t := 0; t < h; t++ {
		z := r.scratch[t]
		j0, j1 := 2*t, 2*t+1
		v0, v1 := real(z), imag(z)
		if j0 >= h {
			v0 = -v0
		}
		if j1 >= h {
			v1 = -v1
		}
		out[r.invPos[j0]] = v0
		out[r.invPos[j1]] = v1
	}
}

// IDCTPair computes the cosine reconstructions of two independent
// coefficient vectors with one full length-n complex FFT. Either output
// may alias its input.
func (r *Real) IDCTPair(aA, aB, outA, outB []float64) {
	r.check(aA, outA)
	r.check(aB, outB)
	n := r.n
	if n == 1 {
		outA[0], outB[0] = aA[0], aB[0]
		return
	}
	r.scratch[0] = complex(aA[0], aB[0])
	for u := 1; u < n; u++ {
		au := complex(aA[u]/2, aB[u]/2)
		anu := complex(aA[n-u]/2, aB[n-u]/2)
		r.scratch[u] = r.invTw[u] * (au - 1i*anu)
	}
	r.full.Inverse(r.scratch)
	for j := 0; j < n; j++ {
		z := r.scratch[j]
		p := r.invPos[j]
		outA[p] = real(z)
		outB[p] = imag(z)
	}
}

// IDSTPair computes the sine reconstructions of two independent
// coefficient vectors with one full length-n complex FFT. Either output
// may alias its input.
func (r *Real) IDSTPair(aA, aB, outA, outB []float64) {
	r.check(aA, outA)
	r.check(aB, outB)
	n, h := r.n, r.h
	if n == 1 {
		outA[0], outB[0] = 0, 0
		return
	}
	r.scratch[0] = 0
	for u := 1; u < n; u++ {
		au := complex(aA[n-u]/2, aB[n-u]/2)
		anu := complex(aA[u]/2, aB[u]/2)
		r.scratch[u] = r.invTw[u] * (au - 1i*anu)
	}
	r.full.Inverse(r.scratch)
	for j := 0; j < n; j++ {
		z := r.scratch[j]
		p := r.invPos[j]
		if j < h {
			outA[p] = real(z)
			outB[p] = imag(z)
		} else {
			outA[p] = -real(z)
			outB[p] = -imag(z)
		}
	}
}

// IDCTAndIDST computes both reconstructions of the same coefficients
// with a single full-length FFT: outC_i = sum a_u cos(...),
// outS_i = sum a_u sin(...). The cosine coefficients ride the real
// channel and the reversed sine coefficients the imaginary channel.
func (r *Real) IDCTAndIDST(a, outC, outS []float64) {
	r.check(a, outC)
	r.check(a, outS)
	n, h := r.n, r.h
	if n == 1 {
		outC[0], outS[0] = a[0], 0
		return
	}
	r.scratch[0] = complex(a[0], 0)
	for u := 1; u < n; u++ {
		au := complex(a[u]/2, a[n-u]/2)
		anu := complex(a[n-u]/2, a[u]/2)
		r.scratch[u] = r.invTw[u] * (au - 1i*anu)
	}
	r.full.Inverse(r.scratch)
	for j := 0; j < n; j++ {
		z := r.scratch[j]
		p := r.invPos[j]
		outC[p] = real(z)
		if j < h {
			outS[p] = imag(z)
		} else {
			outS[p] = -imag(z)
		}
	}
}

// buildB stages the conjugate-symmetric B spectrum of the half-packed
// inverse into bbuf[0..h]: B_u = exp(+i*pi*u/(2n)) (c_u - i c_{n-u})
// with c_0 = a_0, c_u = a_u/2 (the full-weight a_0 convention), and for
// the sine variant the frequency-reversed coefficients c_u = a_{n-u}/2,
// c_0 = 0. It then packs B into the length-n/2 spectrum
// Z_u = (B_u + B*_{h-u}) + i exp(+2*pi*i*u/n) (B_u - B*_{h-u})
// in scratch, ready for one half-length inverse FFT.
func (r *Real) buildB(a []float64, sine bool) {
	n, h := r.n, r.h
	if sine {
		r.bbuf[0] = 0
		for u := 1; u < h; u++ {
			r.bbuf[u] = r.invTw[u] * complex(a[n-u]/2, -a[u]/2)
		}
		r.bbuf[h] = complex(math.Sqrt2*a[h]/2, 0)
	} else {
		r.bbuf[0] = complex(a[0], 0)
		for u := 1; u < h; u++ {
			r.bbuf[u] = r.invTw[u] * complex(a[u]/2, -a[n-u]/2)
		}
		r.bbuf[h] = complex(math.Sqrt2*a[h]/2, 0)
	}
	for u := 0; u < h; u++ {
		bu := r.bbuf[u]
		bc := r.bbuf[h-u]
		bc = complex(real(bc), -imag(bc))
		sum := bu + bc
		d := conjMul(r.packTw[u], bu-bc) // exp(+2*pi*i*u/n) * (B_u - B*_{h-u})
		r.scratch[u] = sum + complex(-imag(d), real(d))
	}
}

// inverseHalf runs the unnormalized half-length inverse FFT over the
// packed spectrum left in scratch by buildB, leaving the interleaved
// reconstruction samples b_{2t} + i b_{2t+1} in scratch[:h].
func (r *Real) inverseHalf() { r.half.Inverse(r.scratch[:r.h]) }

// conjMul returns conj(w) * z.
func conjMul(w, z complex128) complex128 {
	return complex(real(w), -imag(w)) * z
}

func (r *Real) check(in, out []float64) {
	if len(in) != r.n || len(out) != r.n {
		panic(fmt.Sprintf("fft: vector length %d/%d, workspace size %d", len(in), len(out), r.n))
	}
}

// NaiveDCT2 is the O(n^2) reference for DCT2, used in tests.
func NaiveDCT2(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += x[i] * math.Cos(math.Pi*float64(u)*float64(2*i+1)/float64(2*n))
		}
		out[u] = s
	}
	return out
}

// NaiveIDCT is the O(n^2) reference for IDCT, used in tests.
func NaiveIDCT(a []float64) []float64 {
	n := len(a)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for u := 0; u < n; u++ {
			s += a[u] * math.Cos(math.Pi*float64(u)*float64(2*i+1)/float64(2*n))
		}
		out[i] = s
	}
	return out
}

// NaiveIDST is the O(n^2) reference for IDST, used in tests.
func NaiveIDST(a []float64) []float64 {
	n := len(a)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for u := 0; u < n; u++ {
			s += a[u] * math.Sin(math.Pi*float64(u)*float64(2*i+1)/float64(2*n))
		}
		out[i] = s
	}
	return out
}
