//go:build !amd64

package fft

// Non-amd64 builds always take the scalar float32 butterfly kernel.
const useAVX2 = false

func stage12AVX2(x *complex64, n int, mask *uint32) {
	panic("fft: AVX2 kernel called on non-amd64 build")
}

func stageGAVX2(x *complex64, n, half int, tw *complex64) {
	panic("fft: AVX2 kernel called on non-amd64 build")
}
