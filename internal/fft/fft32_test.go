package fft

import (
	"math"
	"math/rand"
	"testing"
)

// relTol32 is the per-size relative error budget of the float32 pair
// transforms against the float64 naive references: a few float32 ulps
// per butterfly stage, normalized by the output's max magnitude.
func relTol32(n int) float64 {
	stages := math.Log2(float64(n)) + 2
	return 8 * 1.2e-7 * stages
}

// maxRelErr32 returns max|got-want| / max(max|want|, 1e-30).
func maxRelErr32(got []float32, want []float64) float64 {
	scale := 1e-30
	for _, w := range want {
		if a := math.Abs(w); a > scale {
			scale = a
		}
	}
	worst := 0.0
	for i := range got {
		if d := math.Abs(float64(got[i]) - want[i]); d/scale > worst {
			worst = d / scale
		}
	}
	return worst
}

func randVec32(n int, seed int64) ([]float32, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x32 := make([]float32, n)
	x64 := make([]float64, n)
	for i := range x32 {
		v := float32(rng.Float64()*2 - 1)
		x32[i] = v
		x64[i] = float64(v) // identical inputs in both precisions
	}
	return x32, x64
}

func TestDCT2Pair32MatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		r := NewReal32(n)
		xa32, xa64 := randVec32(n, 1)
		xb32, xb64 := randVec32(n, 2)
		oa := make([]float32, n)
		ob := make([]float32, n)
		r.DCT2Pair(xa32, xb32, oa, ob)
		tol := relTol32(n)
		if e := maxRelErr32(oa, NaiveDCT2(xa64)); e > tol {
			t.Errorf("n=%d DCT2Pair A rel err %g > %g", n, e, tol)
		}
		if e := maxRelErr32(ob, NaiveDCT2(xb64)); e > tol {
			t.Errorf("n=%d DCT2Pair B rel err %g > %g", n, e, tol)
		}
		// The From64 variant must produce bitwise the same result for
		// inputs that are exactly representable in float32.
		oa2 := make([]float32, n)
		ob2 := make([]float32, n)
		r.DCT2PairFrom64(xa64, xb64, oa2, ob2)
		for i := range oa {
			if oa[i] != oa2[i] || ob[i] != ob2[i] {
				t.Fatalf("n=%d DCT2PairFrom64 differs from DCT2Pair at %d", n, i)
			}
		}
	}
}

func TestIDCTPair32MatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		r := NewReal32(n)
		aa32, aa64 := randVec32(n, 3)
		ab32, ab64 := randVec32(n, 4)
		oa := make([]float32, n)
		ob := make([]float32, n)
		r.IDCTPair(aa32, ab32, oa, ob)
		tol := relTol32(n)
		if e := maxRelErr32(oa, NaiveIDCT(aa64)); e > tol {
			t.Errorf("n=%d IDCTPair A rel err %g > %g", n, e, tol)
		}
		if e := maxRelErr32(ob, NaiveIDCT(ab64)); e > tol {
			t.Errorf("n=%d IDCTPair B rel err %g > %g", n, e, tol)
		}
		oa64 := make([]float64, n)
		ob64 := make([]float64, n)
		r.IDCTPairTo64(aa32, ab32, oa64, ob64)
		for i := range oa {
			if float64(oa[i]) != oa64[i] || float64(ob[i]) != ob64[i] {
				t.Fatalf("n=%d IDCTPairTo64 differs from IDCTPair at %d", n, i)
			}
		}
	}
}

func TestIDSTPair32MatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		r := NewReal32(n)
		aa32, aa64 := randVec32(n, 5)
		ab32, ab64 := randVec32(n, 6)
		oa := make([]float32, n)
		ob := make([]float32, n)
		r.IDSTPair(aa32, ab32, oa, ob)
		tol := relTol32(n)
		if e := maxRelErr32(oa, NaiveIDST(aa64)); e > tol {
			t.Errorf("n=%d IDSTPair A rel err %g > %g", n, e, tol)
		}
		if e := maxRelErr32(ob, NaiveIDST(ab64)); e > tol {
			t.Errorf("n=%d IDSTPair B rel err %g > %g", n, e, tol)
		}
		oa64 := make([]float64, n)
		ob64 := make([]float64, n)
		r.IDSTPairTo64(aa32, ab32, oa64, ob64)
		for i := range oa {
			if float64(oa[i]) != oa64[i] || float64(ob[i]) != ob64[i] {
				t.Fatalf("n=%d IDSTPairTo64 differs from IDSTPair at %d", n, i)
			}
		}
	}
}

// TestPair32InPlace checks the alias-safety contract: outputs may
// alias inputs because every input is fully staged into scratch first.
func TestPair32InPlace(t *testing.T) {
	const n = 64
	r := NewReal32(n)
	xa, _ := randVec32(n, 7)
	xb, _ := randVec32(n, 8)
	wantA := make([]float32, n)
	wantB := make([]float32, n)
	r.DCT2Pair(xa, xb, wantA, wantB)
	gotA := append([]float32(nil), xa...)
	gotB := append([]float32(nil), xb...)
	r.DCT2Pair(gotA, gotB, gotA, gotB)
	for i := range wantA {
		if gotA[i] != wantA[i] || gotB[i] != wantB[i] {
			t.Fatalf("in-place DCT2Pair differs at %d", i)
		}
	}

	r.IDCTPair(xa, xb, wantA, wantB)
	copy(gotA, xa)
	copy(gotB, xb)
	r.IDCTPair(gotA, gotB, gotA, gotB)
	for i := range wantA {
		if gotA[i] != wantA[i] || gotB[i] != wantB[i] {
			t.Fatalf("in-place IDCTPair differs at %d", i)
		}
	}

	r.IDSTPair(xa, xb, wantA, wantB)
	copy(gotA, xa)
	copy(gotB, xb)
	r.IDSTPair(gotA, gotB, gotA, gotB)
	for i := range wantA {
		if gotA[i] != wantA[i] || gotB[i] != wantB[i] {
			t.Fatalf("in-place IDSTPair differs at %d", i)
		}
	}
}

// TestPair32RoundTrip checks DCT2Pair followed by the scaled IDCTPair
// reconstructs the input within float32 tolerance (the a_0 full-weight
// convention: a_0 scales by 1/n, a_u by 2/n).
func TestPair32RoundTrip(t *testing.T) {
	const n = 256
	r := NewReal32(n)
	xa, xa64 := randVec32(n, 9)
	xb, xb64 := randVec32(n, 10)
	ca := make([]float32, n)
	cb := make([]float32, n)
	r.DCT2Pair(xa, xb, ca, cb)
	ca[0] /= float32(n)
	cb[0] /= float32(n)
	for u := 1; u < n; u++ {
		ca[u] *= 2 / float32(n)
		cb[u] *= 2 / float32(n)
	}
	oa := make([]float32, n)
	ob := make([]float32, n)
	r.IDCTPair(ca, cb, oa, ob)
	tol := 2 * relTol32(n)
	if e := maxRelErr32(oa, xa64); e > tol {
		t.Errorf("round trip A rel err %g > %g", e, tol)
	}
	if e := maxRelErr32(ob, xb64); e > tol {
		t.Errorf("round trip B rel err %g > %g", e, tol)
	}
}

func BenchmarkDCT2Pair32_512(b *testing.B) {
	r := NewReal32(512)
	x := make([]float32, 512)
	for i := range x {
		x[i] = float32(i % 13)
	}
	o1 := make([]float32, 512)
	o2 := make([]float32, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.DCT2Pair(x, x, o1, o2)
	}
}
