// fft32.go implements the float32 twins of the packed real transforms:
// the same Makhoul pair-packing as Real, carried in complex64 buffers
// over float32 tables. Halving the element size halves the memory
// traffic of every cache-blocked pass in the Poisson pipeline, and the
// narrower lanes double the butterfly throughput of the vectorized
// stages (fft32_amd64.s).
//
// Two pitfalls shape this file:
//
//   - complex64 ARITHMETIC is poison: the Go compiler widens every
//     complex64 multiply to float64 (CVTSS2SD per operand), making it
//     slower than complex128. complex64 appears here only as a storage
//     layout (interleaved float32 pairs); every multiply is written as
//     explicit float32 real/imag arithmetic, and the butterfly stages
//     run in AVX2 assembly where available (4 butterflies per step)
//     with a pure-float32 scalar fallback.
//
//   - separate permutation passes are wasted traffic: the classic
//     bit-reversal swap is fused into the transforms' existing
//     gather/scatter loops (fwdGather composes Makhoul's reorder with
//     the reversal; the inverse spectrum builders scatter through rev),
//     so the FFT kernel itself is butterflies only.
//
// Only the *Pair variants exist: the float32 Poisson pipeline
// (poisson.Solver32) pairs two rows into every FFT in all five of its
// passes, so the half-packed single transforms would be dead code. The
// *From64/*To64 variants fuse the float64<->float32 precision
// conversion into the same gather/scatter loops, so a float32 solve
// reads float64 charge and writes float64 field planes without any
// separate conversion pass.
//
// All twiddle tables are computed in float64 and rounded once, so table
// error is a half-ulp of float32; accumulated transform error stays
// within a few ulps per butterfly stage (pinned against the float64
// naive references in fft32_test.go).
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Plan32 holds per-stage twiddle tables and the bit-reversal
// permutation for complex64 FFTs of one size. Immutable after
// NewPlan32 and shareable across goroutines operating on distinct
// buffers.
type Plan32 struct {
	n    int
	logn int
	rev  []int
	// fwdSt[s]/invSt[s] hold the stage-(s+1) twiddles contiguously:
	// half = 1<<s butterfly factors exp(∓i*pi*k/half), k < half. The
	// contiguous per-stage layout is what lets the vector kernel stream
	// them instead of striding through one shared table.
	fwdSt, invSt [][]complex64
}

// NewPlan32 creates a plan for complex64 FFTs of length n (a power of
// two).
func NewPlan32(n int) *Plan32 {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: size %d is not a positive power of two", n))
	}
	p := &Plan32{n: n, logn: bits.TrailingZeros(uint(n))}
	p.rev = make([]int, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - p.logn))
	}
	for s := 0; s < p.logn; s++ {
		half := 1 << s
		fwd := make([]complex64, half)
		inv := make([]complex64, half)
		for k := 0; k < half; k++ {
			ang := -math.Pi * float64(k) / float64(half)
			w := cmplx.Exp(complex(0, ang))
			fwd[k] = complex64(w)
			inv[k] = complex64(complex(real(w), -imag(w)))
		}
		p.fwdSt = append(p.fwdSt, fwd)
		p.invSt = append(p.invSt, inv)
	}
	return p
}

// N returns the transform length.
func (p *Plan32) N() int { return p.n }

// Forward computes the in-place forward DFT in complex64 on
// natural-order input.
func (p *Plan32) Forward(x []complex64) {
	p.check(x)
	p.swap(x)
	p.butterflies(x, false)
}

// Inverse computes the in-place unnormalized inverse DFT in complex64
// on natural-order input.
func (p *Plan32) Inverse(x []complex64) {
	p.check(x)
	p.swap(x)
	p.butterflies(x, true)
}

func (p *Plan32) check(x []complex64) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: buffer length %d, plan size %d", len(x), p.n))
	}
}

// swap applies the bit-reversal permutation. The pair transforms below
// never call it: they build the buffer bit-reversed in their
// gather/scatter loops and go straight to butterflies.
func (p *Plan32) swap(x []complex64) {
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// butterflies runs the decimation-in-time stages on a buffer whose
// elements are already in bit-reversed order, producing natural-order
// output. Vector path: a fused radix-2x2 first pass (sizes 2 and 4 in
// one sweep) then 4-wide generic stages; the scalar fallback covers
// n < 8, non-amd64 builds, and pre-AVX2 hardware.
func (p *Plan32) butterflies(x []complex64, inverse bool) {
	if p.n < 2 {
		return
	}
	st := p.fwdSt
	mask := &stage12FwdMask
	if inverse {
		st = p.invSt
		mask = &stage12InvMask
	}
	if useAVX2 && p.n >= 8 {
		stage12AVX2(&x[0], p.n, &mask[0])
		for s := 2; s < p.logn; s++ {
			stageGAVX2(&x[0], p.n, 1<<s, &st[s][0])
		}
		return
	}
	p.scalarStages(x, st)
}

// scalarStages is the portable butterfly kernel: identical math to the
// vector path, written as explicit float32 real/imag arithmetic (a
// complex64 multiply would be silently widened to float64 — see the
// file comment).
func (p *Plan32) scalarStages(x []complex64, st [][]complex64) {
	n := p.n
	for s, tw := range st {
		half := 1 << s
		size := half * 2
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tw[k]
				wr, wi := real(w), imag(w)
				b := x[start+k+half]
				br, bi := real(b), imag(b)
				tr := br*wr - bi*wi
				ti := br*wi + bi*wr
				a := x[start+k]
				ar, ai := real(a), imag(a)
				x[start+k] = complex(ar+tr, ai+ti)
				x[start+k+half] = complex(ar-tr, ai-ti)
			}
		}
	}
}

// Real32 is the float32 twin of Real for the pair-packed transforms.
// Same concurrency contract: NOT safe for concurrent use (shared
// scratch); create one per worker goroutine. All methods tolerate out
// aliasing the input.
type Real32 struct {
	n, h    int
	full    *Plan32
	scratch []complex64
	// fwdGather composes Makhoul's even/odd reorder with the FFT's
	// bit-reversal: scratch[j] = in[fwdGather[j]] feeds the butterfly
	// stages directly, with no separate permutation pass.
	fwdGather []int
	// rev is the plan's bit-reversal, used by the inverse builders to
	// scatter the spectrum straight into butterfly order.
	rev []int
	// invPos is the inverse output scatter (2j for j < h, else 2n-2j-1),
	// identical to Real's.
	invPos []int
	// fwdTw[u] = exp(-i*pi*u/(2n)); invTw its conjugate.
	fwdTw, invTw []complex64
}

// NewReal32 creates float32 pair-transform workspace for vectors of
// length n (a power of two).
func NewReal32(n int) *Real32 {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: size %d is not a positive power of two", n))
	}
	r := &Real32{n: n, h: n / 2}
	if n == 1 {
		return r
	}
	r.full = NewPlan32(n)
	r.rev = r.full.rev
	r.scratch = make([]complex64, n)
	fwdReorder := make([]int, n)
	for j := 0; j < r.h; j++ {
		fwdReorder[j] = 2 * j
		fwdReorder[n-1-j] = 2*j + 1
	}
	r.fwdGather = make([]int, n)
	for j := 0; j < n; j++ {
		r.fwdGather[j] = fwdReorder[r.rev[j]]
	}
	r.invPos = make([]int, n)
	for j := 0; j < n; j++ {
		if j < r.h {
			r.invPos[j] = 2 * j
		} else {
			r.invPos[j] = 2*n - 2*j - 1
		}
	}
	r.fwdTw = make([]complex64, n)
	r.invTw = make([]complex64, n)
	for u := 0; u < n; u++ {
		ang := math.Pi * float64(u) / float64(2*n)
		w := cmplx.Exp(complex(0, ang))
		r.invTw[u] = complex64(w)
		r.fwdTw[u] = complex64(complex(real(w), -imag(w)))
	}
	return r
}

// N returns the vector length.
func (r *Real32) N() int { return r.n }

// f32or64 admits the two precisions a pair transform can stage from or
// scatter to; conversion happens element-wise inside the existing
// gather/scatter loops, never as a separate pass.
type f32or64 interface{ ~float32 | ~float64 }

// DCT2Pair computes the unnormalized DCT-II of two independent float32
// vectors with one full length-n complex64 FFT (same math as
// Real.DCT2Pair). Either output may alias its input.
func (r *Real32) DCT2Pair(xA, xB, outA, outB []float32) {
	dct2Pair32(r, xA, xB, outA, outB)
}

// DCT2PairFrom64 is DCT2Pair staging from float64 inputs: the
// float64->float32 rounding rides the reorder gather.
func (r *Real32) DCT2PairFrom64(xA, xB []float64, outA, outB []float32) {
	dct2Pair32(r, xA, xB, outA, outB)
}

// IDCTPair computes the cosine reconstructions of two independent
// float32 coefficient vectors (same math as Real.IDCTPair, full-weight
// a_0). Either output may alias its input.
func (r *Real32) IDCTPair(aA, aB, outA, outB []float32) {
	idctPair32(r, aA, aB, outA, outB)
}

// IDCTPairTo64 is IDCTPair scattering to float64 outputs: the widening
// rides the inverse output scatter.
func (r *Real32) IDCTPairTo64(aA, aB []float32, outA, outB []float64) {
	idctPair32(r, aA, aB, outA, outB)
}

// IDSTPair computes the sine reconstructions of two independent
// float32 coefficient vectors (same math as Real.IDSTPair). Either
// output may alias its input.
func (r *Real32) IDSTPair(aA, aB, outA, outB []float32) {
	idstPair32(r, aA, aB, outA, outB)
}

// IDSTPairTo64 is IDSTPair scattering to float64 outputs.
func (r *Real32) IDSTPairTo64(aA, aB []float32, outA, outB []float64) {
	idstPair32(r, aA, aB, outA, outB)
}

func dct2Pair32[In, Out f32or64](r *Real32, xA, xB []In, outA, outB []Out) {
	check32(r, len(xA), len(outA))
	check32(r, len(xB), len(outB))
	n := r.n
	if n == 1 {
		outA[0], outB[0] = Out(xA[0]), Out(xB[0])
		return
	}
	// Gather in reorder-then-bit-reversed order: the FFT is butterflies
	// only.
	for j := 0; j < n; j++ {
		src := r.fwdGather[j]
		r.scratch[j] = complex(float32(xA[src]), float32(xB[src]))
	}
	r.full.butterflies(r.scratch, false)
	// Unpack the two interleaved real spectra and apply the
	// quarter-sample shift, in explicit float32 arithmetic.
	for u := 0; u < n; u++ {
		zu := r.scratch[u]
		zc := r.scratch[(n-u)%n]
		zur, zui := real(zu), imag(zu)
		zcr, zci := real(zc), imag(zc)
		w := r.fwdTw[u]
		wr, wi := real(w), imag(w)
		sr, si := zur+zcr, zui-zci // zu + conj(zc)
		dr, di := zur-zcr, zui+zci // zu - conj(zc)
		outA[u] = Out((wr*sr - wi*si) * 0.5)
		outB[u] = Out((wr*di + wi*dr) * 0.5)
	}
}

func idctPair32[In, Out f32or64](r *Real32, aA, aB []In, outA, outB []Out) {
	check32(r, len(aA), len(outA))
	check32(r, len(aB), len(outB))
	n := r.n
	if n == 1 {
		outA[0], outB[0] = Out(aA[0]), Out(aB[0])
		return
	}
	// Build the packed spectrum scattered through the bit-reversal, so
	// the inverse FFT is butterflies only. t = a_u - i*a_{n-u} (halved),
	// rotated by the inverse quarter-sample shift.
	r.scratch[r.rev[0]] = complex(float32(aA[0]), float32(aB[0]))
	for u := 1; u < n; u++ {
		aur, aui := float32(aA[u])*0.5, float32(aB[u])*0.5
		anr, ani := float32(aA[n-u])*0.5, float32(aB[n-u])*0.5
		tr, ti := aur+ani, aui-anr
		w := r.invTw[u]
		wr, wi := real(w), imag(w)
		r.scratch[r.rev[u]] = complex(wr*tr-wi*ti, wr*ti+wi*tr)
	}
	r.full.butterflies(r.scratch, true)
	for j := 0; j < n; j++ {
		z := r.scratch[j]
		p := r.invPos[j]
		outA[p] = Out(real(z))
		outB[p] = Out(imag(z))
	}
}

func idstPair32[In, Out f32or64](r *Real32, aA, aB []In, outA, outB []Out) {
	check32(r, len(aA), len(outA))
	check32(r, len(aB), len(outB))
	n, h := r.n, r.h
	if n == 1 {
		outA[0], outB[0] = 0, 0
		return
	}
	// Same spectrum builder as IDCT with the coefficients reversed
	// (sine reconstruction), scattered through the bit-reversal.
	r.scratch[r.rev[0]] = 0
	for u := 1; u < n; u++ {
		aur, aui := float32(aA[n-u])*0.5, float32(aB[n-u])*0.5
		anr, ani := float32(aA[u])*0.5, float32(aB[u])*0.5
		tr, ti := aur+ani, aui-anr
		w := r.invTw[u]
		wr, wi := real(w), imag(w)
		r.scratch[r.rev[u]] = complex(wr*tr-wi*ti, wr*ti+wi*tr)
	}
	r.full.butterflies(r.scratch, true)
	for j := 0; j < n; j++ {
		z := r.scratch[j]
		p := r.invPos[j]
		if j < h {
			outA[p] = Out(real(z))
			outB[p] = Out(imag(z))
		} else {
			outA[p] = Out(-real(z))
			outB[p] = Out(-imag(z))
		}
	}
}

func check32(r *Real32, in, out int) {
	if in != r.n || out != r.n {
		panic(fmt.Sprintf("fft: vector length %d/%d, workspace size %d", in, out, r.n))
	}
}

const signBit32 = 0x80000000

// stage12FwdMask drives the fused first two stages in the vector
// kernel: the first 8 words negate the stage-1 odd qwords, the second 8
// apply the stage-2 factor w = -i (forward) to the d term and the
// lower-half subtraction. See fft32_amd64.s for the lane derivation.
var stage12FwdMask = [16]uint32{
	0, 0, signBit32, signBit32, 0, 0, signBit32, signBit32,
	0, 0, 0, signBit32, signBit32, signBit32, signBit32, 0,
}

// stage12InvMask is the inverse twin (w = +i).
var stage12InvMask = [16]uint32{
	0, 0, signBit32, signBit32, 0, 0, signBit32, signBit32,
	0, 0, signBit32, 0, signBit32, signBit32, 0, signBit32,
}
