// Package netlist defines the placement design model shared by every
// stage of the placer: cells (standard cells, macros, IO pads and
// fillers), nets, pins with cell-relative offsets, the placement region
// and standard-cell rows. Cell positions are stored as centers in
// database units; geometry helpers convert to bounding rectangles.
package netlist

import (
	"fmt"
	"math"

	"eplace/internal/geom"
)

// Kind classifies a cell for placement purposes.
type Kind uint8

const (
	// StdCell is a movable standard cell that must end on a row.
	StdCell Kind = iota
	// Macro is a large block; movable in mixed-size mode, fixed otherwise.
	Macro
	// Pad is a fixed IO terminal.
	Pad
	// Filler is a placer-inserted whitespace filler; it carries density
	// charge but no connectivity and is discarded before legalization.
	Filler
)

// String names the kind for reports and debugging.
func (k Kind) String() string {
	switch k {
	case StdCell:
		return "stdcell"
	case Macro:
		return "macro"
	case Pad:
		return "pad"
	case Filler:
		return "filler"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Cell is one placeable object. X, Y is the cell center.
type Cell struct {
	Name  string
	W, H  float64
	X, Y  float64
	Kind  Kind
	Fixed bool
	// Pins indexes into Design.Pins (empty for fillers).
	Pins []int
}

// Area returns the cell area, which is also its electric quantity q_i.
func (c *Cell) Area() float64 { return c.W * c.H }

// Rect returns the cell bounding box at its current position.
func (c *Cell) Rect() geom.Rect {
	return geom.NewRectCenter(c.X, c.Y, c.W, c.H)
}

// Dir is a pin's signal direction (used by the timing extension).
type Dir uint8

const (
	// DirUnknown marks pins without direction information.
	DirUnknown Dir = iota
	// DirIn is a signal sink.
	DirIn
	// DirOut is a signal driver.
	DirOut
)

// Pin connects a cell to a net at an offset from the cell center.
type Pin struct {
	Cell int // index into Design.Cells, -1 for a floating terminal
	Net  int // index into Design.Nets
	// Ox, Oy is the pin offset from the owning cell's center.
	Ox, Oy float64
	// Dir is the signal direction when known.
	Dir Dir
}

// Net is a hyperedge over pins.
type Net struct {
	Name   string
	Weight float64
	// Pins indexes into Design.Pins.
	Pins []int
}

// EffWeight returns the net's effective weight: unweighted nets
// (Weight == 0, e.g. Bookshelf benchmarks without a .wts entry) count
// as 1. Every consumer of net weights — the HPWL metric, the smooth
// wirelength models, the quadratic net model — must use this instead of
// coercing Weight locally, so metric and gradient can never drift.
func (n *Net) EffWeight() float64 {
	if n.Weight == 0 {
		return 1
	}
	return n.Weight
}

// Row is a standard-cell row for legalization.
type Row struct {
	Y      float64 // bottom of the row
	Height float64
	Lx, Hx float64 // usable extent
	SiteW  float64 // site width (x snap grid)
}

// Design is a complete placement instance G = (V, E, R).
type Design struct {
	Name  string
	Cells []Cell
	Nets  []Net
	Pins  []Pin
	// Region is the placement region R.
	Region geom.Rect
	// Rows are standard-cell rows; empty for purely analytic flows.
	Rows []Row
	// TargetDensity is the benchmark density upper bound rho_t in (0, 1].
	TargetDensity float64

	nameToCell map[string]int
}

// New returns an empty design over the given region with target density 1.
func New(name string, region geom.Rect) *Design {
	return &Design{
		Name:          name,
		Region:        region,
		TargetDensity: 1.0,
		nameToCell:    make(map[string]int),
	}
}

// Reserve grows the cell, net and pin slices to the given capacities
// ahead of bulk construction (the synthetic generator and the
// multilevel coarsener know their counts up front), so building a
// million-cell design does not pay for repeated append re-copies.
func (d *Design) Reserve(cells, nets, pins int) {
	if cap(d.Cells)-len(d.Cells) < cells {
		grown := make([]Cell, len(d.Cells), len(d.Cells)+cells)
		copy(grown, d.Cells)
		d.Cells = grown
	}
	if cap(d.Nets)-len(d.Nets) < nets {
		grown := make([]Net, len(d.Nets), len(d.Nets)+nets)
		copy(grown, d.Nets)
		d.Nets = grown
	}
	if cap(d.Pins)-len(d.Pins) < pins {
		grown := make([]Pin, len(d.Pins), len(d.Pins)+pins)
		copy(grown, d.Pins)
		d.Pins = grown
	}
}

// AddCell appends a cell and returns its index.
func (d *Design) AddCell(c Cell) int {
	idx := len(d.Cells)
	d.Cells = append(d.Cells, c)
	if d.nameToCell == nil {
		d.nameToCell = make(map[string]int)
	}
	if c.Name != "" {
		d.nameToCell[c.Name] = idx
	}
	return idx
}

// CellByName returns the index of the named cell, or -1.
func (d *Design) CellByName(name string) int {
	if i, ok := d.nameToCell[name]; ok {
		return i
	}
	return -1
}

// AddNet appends an empty net and returns its index.
func (d *Design) AddNet(name string, weight float64) int {
	d.Nets = append(d.Nets, Net{Name: name, Weight: weight})
	return len(d.Nets) - 1
}

// Connect attaches a pin on cell ci to net ni with offset (ox, oy) from
// the cell center, and returns the pin index.
func (d *Design) Connect(ci, ni int, ox, oy float64) int {
	pi := len(d.Pins)
	d.Pins = append(d.Pins, Pin{Cell: ci, Net: ni, Ox: ox, Oy: oy})
	d.Nets[ni].Pins = append(d.Nets[ni].Pins, pi)
	if ci >= 0 {
		d.Cells[ci].Pins = append(d.Cells[ci].Pins, pi)
	}
	return pi
}

// PinPos returns the absolute position of pin pi.
func (d *Design) PinPos(pi int) geom.Point {
	p := &d.Pins[pi]
	if p.Cell < 0 {
		return geom.Point{X: p.Ox, Y: p.Oy}
	}
	c := &d.Cells[p.Cell]
	return geom.Point{X: c.X + p.Ox, Y: c.Y + p.Oy}
}

// NetHPWL returns the half-perimeter wirelength of net ni (weighted).
func (d *Design) NetHPWL(ni int) float64 {
	n := &d.Nets[ni]
	if len(n.Pins) < 2 {
		return 0
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, pi := range n.Pins {
		p := d.PinPos(pi)
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	return n.EffWeight() * ((maxX - minX) + (maxY - minY))
}

// HPWL returns the total weighted half-perimeter wirelength (Eq. 1).
func (d *Design) HPWL() float64 {
	total := 0.0
	for ni := range d.Nets {
		total += d.NetHPWL(ni)
	}
	return total
}

// Movable returns indices of all cells free to move (including fillers).
func (d *Design) Movable() []int {
	out := make([]int, 0, len(d.Cells))
	for i := range d.Cells {
		if !d.Cells[i].Fixed {
			out = append(out, i)
		}
	}
	return out
}

// MovableOf returns indices of free cells of the given kind.
func (d *Design) MovableOf(kind Kind) []int {
	var out []int
	for i := range d.Cells {
		if !d.Cells[i].Fixed && d.Cells[i].Kind == kind {
			out = append(out, i)
		}
	}
	return out
}

// FixedCells returns indices of all fixed cells.
func (d *Design) FixedCells() []int {
	var out []int
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			out = append(out, i)
		}
	}
	return out
}

// Macros returns indices of all macro cells (fixed or movable).
func (d *Design) Macros() []int {
	var out []int
	for i := range d.Cells {
		if d.Cells[i].Kind == Macro {
			out = append(out, i)
		}
	}
	return out
}

// MovableArea returns the total area of movable non-filler cells.
func (d *Design) MovableArea() float64 {
	a := 0.0
	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Fixed && c.Kind != Filler {
			a += c.Area()
		}
	}
	return a
}

// FillerArea returns the total area of filler cells.
func (d *Design) FillerArea() float64 {
	a := 0.0
	for i := range d.Cells {
		if d.Cells[i].Kind == Filler {
			a += d.Cells[i].Area()
		}
	}
	return a
}

// FixedAreaInRegion returns the area of fixed cells clipped to the region.
func (d *Design) FixedAreaInRegion() float64 {
	a := 0.0
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			a += c.Rect().Intersect(d.Region).Area()
		}
	}
	return a
}

// Utilization returns movable area / (region area - fixed area).
func (d *Design) Utilization() float64 {
	free := d.Region.Area() - d.FixedAreaInRegion()
	if free <= 0 {
		return math.Inf(1)
	}
	return d.MovableArea() / free
}

// Positions copies the centers of the given cells into a flat
// {x1..xn, y1..yn} vector, the optimizer's solution layout v. It
// allocates the vector; hot paths that already own a buffer should use
// PositionsInto.
func (d *Design) Positions(idx []int) []float64 {
	v := make([]float64, 2*len(idx))
	d.PositionsInto(idx, v)
	return v
}

// PositionsInto writes the centers of the given cells into v, which
// must have length 2*len(idx), in the {x1..xn, y1..yn} layout — the
// allocation-free variant of Positions.
func (d *Design) PositionsInto(idx []int, v []float64) {
	if len(v) != 2*len(idx) {
		panic("netlist: position buffer size mismatch")
	}
	for k, ci := range idx {
		v[k] = d.Cells[ci].X
		v[k+len(idx)] = d.Cells[ci].Y
	}
}

// SetPositions writes a flat {x, y} vector back to the given cells.
func (d *Design) SetPositions(idx []int, v []float64) {
	n := len(idx)
	for k, ci := range idx {
		d.Cells[ci].X = v[k]
		d.Cells[ci].Y = v[k+n]
	}
}

// TotalOverlap returns the summed pairwise overlap area over the given
// cells (the O metric of Figures 2, 3 and 6). Rectangles are hashed
// into a uniform grid with cell-sized bins and pairs are examined only
// within shared bins (each pair counted once, in the bin holding its
// intersection's low corner), so the cost is O(n + overlapping pairs)
// instead of the x-sweep's O(n^2) on dense or collapsed layouts —
// essential for reporting on 100K+ cell designs. Intended for
// reporting, not inner loops.
func (d *Design) TotalOverlap(idx []int) float64 {
	n := len(idx)
	if n < 2 {
		return 0
	}
	rects := make([]geom.Rect, n)
	lx, ly := math.Inf(1), math.Inf(1)
	hx, hy := math.Inf(-1), math.Inf(-1)
	var sw, sh float64
	for k, ci := range idx {
		r := d.Cells[ci].Rect()
		rects[k] = r
		lx, ly = math.Min(lx, r.Lx), math.Min(ly, r.Ly)
		hx, hy = math.Max(hx, r.Hx), math.Max(hy, r.Hy)
		sw += r.Hx - r.Lx
		sh += r.Hy - r.Ly
	}
	// Average-extent bins keep per-bin occupancy O(1) on spread
	// layouts; the floor bounds the grid at 1024x1024 so huge designs
	// with tiny cells stay in memory.
	binW := math.Max(sw/float64(n), (hx-lx)/1024)
	binH := math.Max(sh/float64(n), (hy-ly)/1024)
	if binW <= 0 || binH <= 0 {
		binW, binH = 1, 1
	}
	mx := int((hx-lx)/binW) + 1
	my := int((hy-ly)/binH) + 1
	clampBin := func(b, m int) int {
		if b < 0 {
			return 0
		}
		if b >= m {
			return m - 1
		}
		return b
	}
	buckets := make([][]int32, mx*my)
	for k := range rects {
		r := &rects[k]
		bx0 := clampBin(int((r.Lx-lx)/binW), mx)
		bx1 := clampBin(int((r.Hx-lx)/binW), mx)
		by0 := clampBin(int((r.Ly-ly)/binH), my)
		by1 := clampBin(int((r.Hy-ly)/binH), my)
		for by := by0; by <= by1; by++ {
			for bx := bx0; bx <= bx1; bx++ {
				b := by*mx + bx
				buckets[b] = append(buckets[b], int32(k))
			}
		}
	}
	total := 0.0
	for b, mem := range buckets {
		for i := 0; i < len(mem); i++ {
			ri := &rects[mem[i]]
			for j := i + 1; j < len(mem); j++ {
				rj := &rects[mem[j]]
				ix := math.Max(ri.Lx, rj.Lx)
				iy := math.Max(ri.Ly, rj.Ly)
				w := math.Min(ri.Hx, rj.Hx) - ix
				h := math.Min(ri.Hy, rj.Hy) - iy
				if w <= 0 || h <= 0 {
					continue
				}
				// Count the pair only in the bin that owns the
				// intersection's low corner.
				if clampBin(int((iy-ly)/binH), my)*mx+clampBin(int((ix-lx)/binW), mx) != b {
					continue
				}
				total += w * h
			}
		}
	}
	return total
}

// NetDegreeHistogram returns a map from net degree to count, used by the
// synthetic benchmark generator tests and reporting.
func (d *Design) NetDegreeHistogram() map[int]int {
	h := make(map[int]int)
	for ni := range d.Nets {
		h[len(d.Nets[ni].Pins)]++
	}
	return h
}

// Stats summarizes a design for reports.
type Stats struct {
	Cells, StdCells, Macros, Pads, Fillers int
	MovableMacros                          int
	Nets, Pins                             int
	MovableArea, FixedArea, RegionArea     float64
	Utilization                            float64
}

// Stats computes summary statistics.
func (d *Design) Stats() Stats {
	s := Stats{
		Nets:        len(d.Nets),
		Pins:        len(d.Pins),
		Cells:       len(d.Cells),
		MovableArea: d.MovableArea(),
		FixedArea:   d.FixedAreaInRegion(),
		RegionArea:  d.Region.Area(),
	}
	for i := range d.Cells {
		switch d.Cells[i].Kind {
		case StdCell:
			s.StdCells++
		case Macro:
			s.Macros++
			if !d.Cells[i].Fixed {
				s.MovableMacros++
			}
		case Pad:
			s.Pads++
		case Filler:
			s.Fillers++
		}
	}
	s.Utilization = d.Utilization()
	return s
}

// String formats the summary on one line.
func (s Stats) String() string {
	return fmt.Sprintf("cells=%d (std=%d macro=%d[mov %d] pad=%d filler=%d) nets=%d pins=%d util=%.3f",
		s.Cells, s.StdCells, s.Macros, s.MovableMacros, s.Pads, s.Fillers, s.Nets, s.Pins, s.Utilization)
}

// Clone deep-copies the design (cells, nets, pins, rows).
func (d *Design) Clone() *Design {
	nd := &Design{
		Name:          d.Name,
		Region:        d.Region,
		TargetDensity: d.TargetDensity,
		Cells:         make([]Cell, len(d.Cells)),
		Nets:          make([]Net, len(d.Nets)),
		Pins:          make([]Pin, len(d.Pins)),
		Rows:          append([]Row(nil), d.Rows...),
		nameToCell:    make(map[string]int, len(d.nameToCell)),
	}
	copy(nd.Pins, d.Pins)
	for i := range d.Cells {
		nd.Cells[i] = d.Cells[i]
		nd.Cells[i].Pins = append([]int(nil), d.Cells[i].Pins...)
		if nd.Cells[i].Name != "" {
			nd.nameToCell[nd.Cells[i].Name] = i
		}
	}
	for i := range d.Nets {
		nd.Nets[i] = d.Nets[i]
		nd.Nets[i].Pins = append([]int(nil), d.Nets[i].Pins...)
	}
	return nd
}

// RemoveFillers deletes all filler cells. Fillers never carry pins, so
// nets and pin indices are unaffected as long as fillers were appended
// after all connected cells, which placer stages guarantee.
func (d *Design) RemoveFillers() {
	for i := range d.Cells {
		if d.Cells[i].Kind == Filler && len(d.Cells[i].Pins) > 0 {
			panic("netlist: filler cell with pins")
		}
	}
	keep := d.Cells[:0]
	for i := range d.Cells {
		if d.Cells[i].Kind != Filler {
			keep = append(keep, d.Cells[i])
		} else if d.Cells[i].Name != "" {
			delete(d.nameToCell, d.Cells[i].Name)
		}
	}
	d.Cells = keep
}

// Validate performs structural consistency checks and returns the first
// problem found, or nil.
func (d *Design) Validate() error {
	if !d.Region.Valid() || d.Region.Empty() {
		return fmt.Errorf("netlist: invalid region %v", d.Region)
	}
	if d.TargetDensity <= 0 || d.TargetDensity > 1 {
		return fmt.Errorf("netlist: target density %v out of (0,1]", d.TargetDensity)
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.W < 0 || c.H < 0 {
			return fmt.Errorf("netlist: cell %d (%s) negative size", i, c.Name)
		}
		for _, pi := range c.Pins {
			if pi < 0 || pi >= len(d.Pins) {
				return fmt.Errorf("netlist: cell %d pin index %d out of range", i, pi)
			}
			if d.Pins[pi].Cell != i {
				return fmt.Errorf("netlist: cell %d pin %d back-reference mismatch", i, pi)
			}
		}
	}
	for ni := range d.Nets {
		for _, pi := range d.Nets[ni].Pins {
			if pi < 0 || pi >= len(d.Pins) {
				return fmt.Errorf("netlist: net %d pin index %d out of range", ni, pi)
			}
			if d.Pins[pi].Net != ni {
				return fmt.Errorf("netlist: net %d pin %d back-reference mismatch", ni, pi)
			}
		}
	}
	for pi := range d.Pins {
		p := &d.Pins[pi]
		if p.Net < 0 || p.Net >= len(d.Nets) {
			return fmt.Errorf("netlist: pin %d net index out of range", pi)
		}
		if p.Cell >= len(d.Cells) {
			return fmt.Errorf("netlist: pin %d cell index out of range", pi)
		}
	}
	return nil
}
