package netlist

import (
	"fmt"
	"math"
)

// Compiled is an immutable, data-oriented view of a Design built for the
// per-iteration kernels: a CSR (compressed sparse row) encoding of the
// net -> pin incidence plus structure-of-arrays copies of the cell
// geometry. The optimizer stages build one view per stage (topology is
// frozen for the whole stage) and every hot kernel — smooth wirelength,
// density rasterization, force integration, exact HPWL — walks the flat
// int32/float64 arrays instead of pointer-chasing Net -> Pin -> Cell
// through the Go structs.
//
// Layout:
//
//   - NetOff[ni] .. NetOff[ni+1] is net ni's pin slot range. Pin slots
//     are net-major in net order, and within a net in the net's pin
//     order, so ascending slot order IS the serial (net, pin) evaluation
//     order the determinism contract fixes. NetOff doubles as the
//     pin-count prefix sum used for pin-balanced work sharding.
//   - PinCell[s] is the owning cell of slot s (-1 for a floating
//     terminal); PinOx/PinOy are the pin offsets from the cell center.
//     PinIndex[s] maps the slot back to the Design.Pins index.
//   - PosX/PosY are the live cell centers, indexed by cell. The engine
//     writes them once per iteration (SetPositions) instead of
//     scattering into Cell structs and re-gathering in every kernel;
//     models owning a private view refresh them from the structs with
//     SyncGeometry before evaluating.
//   - CellW/CellH/Filler mirror the cell extents and filler flags for
//     the density rasterizer; NetW caches each net's effective weight.
//
// A Compiled view is NOT safe for concurrent mutation: SetPositions and
// the Sync methods must not race with readers. The read-only kernels may
// share it freely between evaluations.
type Compiled struct {
	d *Design

	// CSR topology (frozen at Compile time).
	NetOff   []int32
	PinCell  []int32
	PinIndex []int32
	PinOx    []float64
	PinOy    []float64

	// Per-net effective weights (refresh with SyncNetWeights).
	NetW []float64

	// SoA cell geometry. PosX/PosY are live positions; CellW/CellH and
	// Filler change only through SyncGeometry.
	PosX, PosY   []float64
	CellW, CellH []float64
	Filler       []bool
}

// Compile builds the flat view of d at its current positions. The
// net/pin topology must not change for the lifetime of the view;
// positions, sizes and net weights can be re-synced.
func (d *Design) Compile() *Compiled {
	if len(d.Pins) > math.MaxInt32 || len(d.Cells) > math.MaxInt32 {
		panic(fmt.Sprintf("netlist: design too large to compile (%d pins, %d cells)",
			len(d.Pins), len(d.Cells)))
	}
	cv := &Compiled{
		d:      d,
		NetOff: make([]int32, len(d.Nets)+1),
		NetW:   make([]float64, len(d.Nets)),
	}
	total := 0
	for ni := range d.Nets {
		total += len(d.Nets[ni].Pins)
		cv.NetOff[ni+1] = int32(total)
		cv.NetW[ni] = d.Nets[ni].EffWeight()
	}
	cv.PinCell = make([]int32, total)
	cv.PinIndex = make([]int32, total)
	cv.PinOx = make([]float64, total)
	cv.PinOy = make([]float64, total)
	s := 0
	for ni := range d.Nets {
		for _, pi := range d.Nets[ni].Pins {
			p := &d.Pins[pi]
			cv.PinCell[s] = int32(p.Cell)
			cv.PinIndex[s] = int32(pi)
			cv.PinOx[s] = p.Ox
			cv.PinOy[s] = p.Oy
			s++
		}
	}
	cv.PosX = make([]float64, len(d.Cells))
	cv.PosY = make([]float64, len(d.Cells))
	cv.CellW = make([]float64, len(d.Cells))
	cv.CellH = make([]float64, len(d.Cells))
	cv.Filler = make([]bool, len(d.Cells))
	cv.SyncGeometry()
	return cv
}

// Design returns the design the view was compiled from.
func (cv *Compiled) Design() *Design { return cv.d }

// NumPinSlots returns the total number of CSR pin slots.
func (cv *Compiled) NumPinSlots() int { return len(cv.PinCell) }

// SyncGeometry refreshes the SoA geometry arrays (positions, extents,
// filler flags) from the Cell structs, growing them if cells were
// appended since Compile. Models that own a private view call this
// before every evaluation so direct Cell mutations stay visible; the
// engine, which writes positions through SetPositions, never needs to.
func (cv *Compiled) SyncGeometry() {
	d := cv.d
	if len(d.Cells) > len(cv.PosX) {
		cv.PosX = make([]float64, len(d.Cells))
		cv.PosY = make([]float64, len(d.Cells))
		cv.CellW = make([]float64, len(d.Cells))
		cv.CellH = make([]float64, len(d.Cells))
		cv.Filler = make([]bool, len(d.Cells))
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		cv.PosX[i] = c.X
		cv.PosY[i] = c.Y
		cv.CellW[i] = c.W
		cv.CellH[i] = c.H
		cv.Filler[i] = c.Kind == Filler
	}
}

// SyncNetWeights refreshes the cached effective net weights.
func (cv *Compiled) SyncNetWeights() {
	for ni := range cv.d.Nets {
		cv.NetW[ni] = cv.d.Nets[ni].EffWeight()
	}
}

// SetPositions writes a flat {x_1..x_n, y_1..y_n} solution vector into
// the view's position arrays for the cells in idx — the engine's
// once-per-iteration scatter. Cell structs are left untouched; use
// Design.SetPositions for the final write-back.
func (cv *Compiled) SetPositions(idx []int, v []float64) {
	n := len(idx)
	for k, ci := range idx {
		cv.PosX[ci] = v[k]
		cv.PosY[ci] = v[k+n]
	}
}

// PinPosSlot returns the absolute position of CSR pin slot s from the
// SoA arrays, matching Design.PinPos bit for bit.
func (cv *Compiled) PinPosSlot(s int) (x, y float64) {
	ci := cv.PinCell[s]
	if ci < 0 {
		return cv.PinOx[s], cv.PinOy[s]
	}
	return cv.PosX[ci] + cv.PinOx[s], cv.PosY[ci] + cv.PinOy[s]
}

// NetHPWL returns the weighted half-perimeter wirelength of net ni at
// the view's positions, bit-for-bit identical to Design.NetHPWL at the
// same positions and weights.
func (cv *Compiled) NetHPWL(ni int) float64 {
	o0, o1 := int(cv.NetOff[ni]), int(cv.NetOff[ni+1])
	if o1-o0 < 2 {
		return 0
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for s := o0; s < o1; s++ {
		x, y := cv.PinPosSlot(s)
		minX = math.Min(minX, x)
		maxX = math.Max(maxX, x)
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	return cv.NetW[ni] * ((maxX - minX) + (maxY - minY))
}

// HPWL returns the total weighted half-perimeter wirelength (Eq. 1)
// over the flat view, summing nets in index order exactly like
// Design.HPWL so the two are bitwise-interchangeable. It allocates
// nothing, making it safe for the per-iteration engine loop.
func (cv *Compiled) HPWL() float64 {
	total := 0.0
	for ni := 0; ni < len(cv.NetW); ni++ {
		total += cv.NetHPWL(ni)
	}
	return total
}
