package netlist

import (
	"math"
	"math/rand"
	"testing"

	"eplace/internal/geom"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9*(1+math.Abs(a)+math.Abs(b)) }

// buildTiny returns a 3-cell, 2-net design used by several tests.
//
//	c0 at (0,0) 2x2, c1 at (10,0) 2x2, pad at (20,5) fixed.
//	n0 = {c0, c1}, n1 = {c1, pad} with weight 2.
func buildTiny() *Design {
	d := New("tiny", geom.Rect{Lx: -5, Ly: -5, Hx: 30, Hy: 15})
	c0 := d.AddCell(Cell{Name: "c0", W: 2, H: 2, X: 0, Y: 0})
	c1 := d.AddCell(Cell{Name: "c1", W: 2, H: 2, X: 10, Y: 0})
	p := d.AddCell(Cell{Name: "io", W: 1, H: 1, X: 20, Y: 5, Kind: Pad, Fixed: true})
	n0 := d.AddNet("n0", 1)
	n1 := d.AddNet("n1", 2)
	d.Connect(c0, n0, 0, 0)
	d.Connect(c1, n0, 0, 0)
	d.Connect(c1, n1, 0.5, 0)
	d.Connect(p, n1, 0, 0)
	return d
}

func TestHPWL(t *testing.T) {
	d := buildTiny()
	// n0: |10-0| + 0 = 10 (weight 1); n1: |20-10.5| + |5-0| = 14.5 (weight 2).
	want := 10.0 + 2*14.5
	if got := d.HPWL(); !almostEq(got, want) {
		t.Errorf("HPWL = %v, want %v", got, want)
	}
	if got := d.NetHPWL(0); !almostEq(got, 10) {
		t.Errorf("NetHPWL(0) = %v", got)
	}
}

func TestHPWLSinglePinNet(t *testing.T) {
	d := New("x", geom.Rect{Hx: 10, Hy: 10})
	c := d.AddCell(Cell{W: 1, H: 1, X: 5, Y: 5})
	n := d.AddNet("single", 1)
	d.Connect(c, n, 0, 0)
	if got := d.NetHPWL(n); got != 0 {
		t.Errorf("single-pin net HPWL = %v, want 0", got)
	}
}

func TestPinPosOffsets(t *testing.T) {
	d := buildTiny()
	// Pin 2 is on c1 with offset (0.5, 0).
	got := d.PinPos(2)
	if !almostEq(got.X, 10.5) || !almostEq(got.Y, 0) {
		t.Errorf("PinPos = %v", got)
	}
	// Moving the cell moves the pin.
	d.Cells[1].X = 0
	got = d.PinPos(2)
	if !almostEq(got.X, 0.5) {
		t.Errorf("PinPos after move = %v", got)
	}
}

func TestMovablePartitions(t *testing.T) {
	d := buildTiny()
	mov := d.Movable()
	if len(mov) != 2 {
		t.Fatalf("Movable = %v", mov)
	}
	if len(d.FixedCells()) != 1 {
		t.Errorf("FixedCells = %v", d.FixedCells())
	}
	if got := d.MovableArea(); !almostEq(got, 8) {
		t.Errorf("MovableArea = %v", got)
	}
}

func TestPositionsRoundTrip(t *testing.T) {
	d := buildTiny()
	idx := d.Movable()
	v := d.Positions(idx)
	if len(v) != 4 {
		t.Fatalf("Positions len = %d", len(v))
	}
	v[0], v[2] = 3, 7 // c0 -> (3, 7)
	d.SetPositions(idx, v)
	if d.Cells[0].X != 3 || d.Cells[0].Y != 7 {
		t.Errorf("SetPositions: c0 = (%v, %v)", d.Cells[0].X, d.Cells[0].Y)
	}
	v2 := d.Positions(idx)
	for i := range v {
		if v[i] != v2[i] {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, v[i], v2[i])
		}
	}
}

func TestTotalOverlap(t *testing.T) {
	d := New("ovl", geom.Rect{Hx: 100, Hy: 100})
	a := d.AddCell(Cell{W: 4, H: 4, X: 0, Y: 0})
	b := d.AddCell(Cell{W: 4, H: 4, X: 2, Y: 0}) // overlaps a by 2x4 = 8
	c := d.AddCell(Cell{W: 4, H: 4, X: 50, Y: 50})
	got := d.TotalOverlap([]int{a, b, c})
	if !almostEq(got, 8) {
		t.Errorf("TotalOverlap = %v, want 8", got)
	}
	// Identical stacked cells: full overlap.
	d.Cells[b].X = 0
	if got := d.TotalOverlap([]int{a, b}); !almostEq(got, 16) {
		t.Errorf("stacked TotalOverlap = %v, want 16", got)
	}
}

func TestTotalOverlapMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := New("rand", geom.Rect{Hx: 50, Hy: 50})
	var idx []int
	for i := 0; i < 60; i++ {
		idx = append(idx, d.AddCell(Cell{
			W: 1 + rng.Float64()*5, H: 1 + rng.Float64()*5,
			X: rng.Float64() * 50, Y: rng.Float64() * 50,
		}))
	}
	brute := 0.0
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			brute += d.Cells[idx[i]].Rect().Overlap(d.Cells[idx[j]].Rect())
		}
	}
	if got := d.TotalOverlap(idx); !almostEq(got, brute) {
		t.Errorf("TotalOverlap = %v, brute force = %v", got, brute)
	}
}

func TestUtilization(t *testing.T) {
	d := New("u", geom.Rect{Hx: 10, Hy: 10}) // area 100
	d.AddCell(Cell{W: 5, H: 2, X: 5, Y: 5})  // movable 10
	d.AddCell(Cell{W: 4, H: 5, X: 2, Y: 2.5, Kind: Macro, Fixed: true})
	// fixed rect [0,0,4,5] fully inside: 20; free = 80; util = 10/80.
	if got := d.Utilization(); !almostEq(got, 0.125) {
		t.Errorf("Utilization = %v", got)
	}
}

func TestFixedAreaClipping(t *testing.T) {
	d := New("clip", geom.Rect{Hx: 10, Hy: 10})
	// Fixed pad half outside the region.
	d.AddCell(Cell{W: 4, H: 4, X: 0, Y: 5, Kind: Pad, Fixed: true})
	if got := d.FixedAreaInRegion(); !almostEq(got, 8) {
		t.Errorf("FixedAreaInRegion = %v, want 8", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := buildTiny()
	c := d.Clone()
	c.Cells[0].X = 99
	c.Nets[0].Pins[0] = 3
	if d.Cells[0].X == 99 {
		t.Error("clone shares cell storage")
	}
	if d.Nets[0].Pins[0] == 3 {
		t.Error("clone shares net pin storage")
	}
	if c.CellByName("c1") != 1 {
		t.Error("clone lost name index")
	}
}

func TestRemoveFillers(t *testing.T) {
	d := buildTiny()
	d.AddCell(Cell{Name: "f0", W: 1, H: 1, Kind: Filler})
	d.AddCell(Cell{Name: "f1", W: 1, H: 1, Kind: Filler})
	if len(d.Cells) != 5 {
		t.Fatal("setup")
	}
	d.RemoveFillers()
	if len(d.Cells) != 3 {
		t.Errorf("RemoveFillers left %d cells", len(d.Cells))
	}
	for i := range d.Cells {
		if d.Cells[i].Kind == Filler {
			t.Error("filler survived removal")
		}
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate after RemoveFillers: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := buildTiny()
	if err := d.Validate(); err != nil {
		t.Fatalf("valid design rejected: %v", err)
	}
	d.Pins[0].Net = 99
	if err := d.Validate(); err == nil {
		t.Error("Validate missed out-of-range net index")
	}
	d = buildTiny()
	d.Cells[0].W = -1
	if err := d.Validate(); err == nil {
		t.Error("Validate missed negative width")
	}
	d = New("bad", geom.Rect{Hx: 1, Hy: 1})
	d.TargetDensity = 1.5
	if err := d.Validate(); err == nil {
		t.Error("Validate missed bad target density")
	}
}

func TestStats(t *testing.T) {
	d := buildTiny()
	d.AddCell(Cell{W: 10, H: 10, X: 15, Y: 7, Kind: Macro})
	d.AddCell(Cell{W: 1, H: 1, Kind: Filler})
	s := d.Stats()
	if s.StdCells != 2 || s.Macros != 1 || s.MovableMacros != 1 || s.Pads != 1 || s.Fillers != 1 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Nets != 2 || s.Pins != 4 {
		t.Errorf("Stats nets/pins = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty Stats string")
	}
}

func TestCellByName(t *testing.T) {
	d := buildTiny()
	if d.CellByName("c1") != 1 {
		t.Error("CellByName c1")
	}
	if d.CellByName("nope") != -1 {
		t.Error("CellByName missing should be -1")
	}
}

func TestHPWLTranslationInvariance(t *testing.T) {
	d := buildTiny()
	before := d.HPWL()
	for i := range d.Cells {
		d.Cells[i].X += 13.5
		d.Cells[i].Y -= 2.25
	}
	if got := d.HPWL(); !almostEq(got, before) {
		t.Errorf("HPWL changed under translation: %v vs %v", got, before)
	}
}

func TestNetDegreeHistogram(t *testing.T) {
	d := buildTiny()
	h := d.NetDegreeHistogram()
	if h[2] != 2 {
		t.Errorf("histogram = %v", h)
	}
}
