package netlist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eplace/internal/geom"
)

// TestCompileStructure checks the CSR invariants on a random design:
// offsets are the pin-count prefix sum, slots appear in (net, pin)
// order, and every slot round-trips to its Design.Pins entry.
func TestCompileStructure(t *testing.T) {
	d := randomDesign(3)
	cv := d.Compile()
	if got, want := cv.NumPinSlots(), len(d.Pins); got != want {
		t.Fatalf("pin slots = %d, want %d", got, want)
	}
	s := 0
	for ni := range d.Nets {
		if int(cv.NetOff[ni]) != s {
			t.Fatalf("NetOff[%d] = %d, want %d", ni, cv.NetOff[ni], s)
		}
		for _, pi := range d.Nets[ni].Pins {
			if int(cv.PinIndex[s]) != pi {
				t.Fatalf("slot %d: PinIndex %d, want %d", s, cv.PinIndex[s], pi)
			}
			p := &d.Pins[pi]
			if int(cv.PinCell[s]) != p.Cell || cv.PinOx[s] != p.Ox || cv.PinOy[s] != p.Oy {
				t.Fatalf("slot %d does not mirror pin %d", s, pi)
			}
			x, y := cv.PinPosSlot(s)
			pos := d.PinPos(pi)
			if math.Float64bits(x) != math.Float64bits(pos.X) ||
				math.Float64bits(y) != math.Float64bits(pos.Y) {
				t.Fatalf("slot %d position (%v,%v) != PinPos %v", s, x, y, pos)
			}
			s++
		}
		if cv.NetW[ni] != d.Nets[ni].EffWeight() {
			t.Fatalf("NetW[%d] = %v, want %v", ni, cv.NetW[ni], d.Nets[ni].EffWeight())
		}
	}
	if int(cv.NetOff[len(d.Nets)]) != s {
		t.Fatalf("final offset %d, want %d", cv.NetOff[len(d.Nets)], s)
	}
}

// TestCompiledHPWLMatchesDesign locks the equivalence the engine relies
// on: the flat-view HPWL is bit-for-bit the pointer-based Design.HPWL
// across random designs, both at compile-time positions and after
// moving cells through either write path.
func TestCompiledHPWLMatchesDesign(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDesign(seed)
		cv := d.Compile()
		if math.Float64bits(cv.HPWL()) != math.Float64bits(d.HPWL()) {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		idx := d.Movable()
		v := make([]float64, 2*len(idx))
		for i := range v {
			v[i] = rng.Float64() * 100
		}
		// SoA write path (the engine's): view moves, structs stale.
		cv.SetPositions(idx, v)
		// Struct write path: sync brings the view up to date.
		d.SetPositions(idx, v)
		if math.Float64bits(cv.HPWL()) != math.Float64bits(d.HPWL()) {
			return false
		}
		cv.SyncGeometry()
		return math.Float64bits(cv.HPWL()) == math.Float64bits(d.HPWL())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestCompiledHPWLAllocFree pins the engine-loop contract: evaluating
// HPWL on the view allocates nothing.
func TestCompiledHPWLAllocFree(t *testing.T) {
	d := randomDesign(7)
	cv := d.Compile()
	var sink float64
	if n := testing.AllocsPerRun(100, func() { sink = cv.HPWL() }); n != 0 {
		t.Errorf("Compiled.HPWL allocates %v times per call", n)
	}
	_ = sink
}

// TestSyncNetWeights checks weight changes propagate through the sync.
func TestSyncNetWeights(t *testing.T) {
	d := randomDesign(11)
	cv := d.Compile()
	d.Nets[0].Weight = 4.5
	cv.SyncNetWeights()
	if cv.NetW[0] != 4.5 {
		t.Fatalf("NetW[0] = %v after sync, want 4.5", cv.NetW[0])
	}
	if math.Float64bits(cv.HPWL()) != math.Float64bits(d.HPWL()) {
		t.Fatal("HPWL diverged after weight change + sync")
	}
}

// TestSyncGeometryGrowth checks the view survives cells appended after
// Compile (the density model's own-view case with late fillers).
func TestSyncGeometryGrowth(t *testing.T) {
	d := randomDesign(13)
	cv := d.Compile()
	ci := d.AddCell(Cell{W: 2, H: 2, X: 9, Y: 9, Kind: Filler})
	cv.SyncGeometry()
	if cv.PosX[ci] != 9 || !cv.Filler[ci] || cv.CellW[ci] != 2 {
		t.Fatalf("appended cell not mirrored: x=%v filler=%v w=%v",
			cv.PosX[ci], cv.Filler[ci], cv.CellW[ci])
	}
}

// TestPositionsInto checks the allocation-free variant matches
// Positions and round-trips through SetPositions.
func TestPositionsInto(t *testing.T) {
	d := randomDesign(17)
	idx := d.Movable()
	want := d.Positions(idx)
	got := make([]float64, 2*len(idx))
	d.PositionsInto(idx, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PositionsInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if n := testing.AllocsPerRun(50, func() { d.PositionsInto(idx, got) }); n != 0 {
		t.Errorf("PositionsInto allocates %v times per call", n)
	}
	defer func() {
		if recover() == nil {
			t.Error("PositionsInto accepted a short buffer")
		}
	}()
	d.PositionsInto(idx, got[:1])
}

// benchDesign builds a larger design for the HPWL microbenchmarks.
func benchDesign(cells int) *Design {
	rng := rand.New(rand.NewSource(42))
	d := New("bench", geom.Rect{Hx: 1000, Hy: 1000})
	var idx []int
	for i := 0; i < cells; i++ {
		idx = append(idx, d.AddCell(Cell{
			W: 2, H: 2, X: rng.Float64() * 1000, Y: rng.Float64() * 1000,
		}))
	}
	for k := 0; k < cells; k++ {
		ni := d.AddNet("", 1)
		deg := 2 + rng.Intn(5)
		for p := 0; p < deg; p++ {
			d.Connect(idx[rng.Intn(len(idx))], ni, rng.Float64()-0.5, rng.Float64()-0.5)
		}
	}
	return d
}

// BenchmarkHPWL measures the pointer-chasing Design.HPWL reference.
func BenchmarkHPWL(b *testing.B) {
	d := benchDesign(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.HPWL()
	}
}

// BenchmarkCompiledHPWL measures the flat CSR/SoA HPWL the engine loop
// uses.
func BenchmarkCompiledHPWL(b *testing.B) {
	d := benchDesign(10000)
	cv := d.Compile()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cv.HPWL()
	}
}
