package netlist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eplace/internal/geom"
)

func randomDesign(seed int64) *Design {
	rng := rand.New(rand.NewSource(seed))
	d := New("q", geom.Rect{Hx: 100, Hy: 100})
	n := 2 + rng.Intn(15)
	var idx []int
	for i := 0; i < n; i++ {
		idx = append(idx, d.AddCell(Cell{
			W: 1 + rng.Float64()*4, H: 1 + rng.Float64()*2,
			X: rng.Float64() * 100, Y: rng.Float64() * 100,
		}))
	}
	for k := 0; k < 1+rng.Intn(8); k++ {
		ni := d.AddNet("", 1)
		deg := 2 + rng.Intn(4)
		for p := 0; p < deg; p++ {
			d.Connect(idx[rng.Intn(n)], ni, rng.Float64()-0.5, rng.Float64()-0.5)
		}
	}
	return d
}

// Property: HPWL scales linearly with uniform coordinate scaling.
func TestQuickHPWLScaling(t *testing.T) {
	f := func(seed int64, sRaw uint8) bool {
		d := randomDesign(seed)
		s := 0.25 + float64(sRaw)/64
		before := d.HPWL()
		for i := range d.Cells {
			d.Cells[i].X *= s
			d.Cells[i].Y *= s
		}
		for i := range d.Pins {
			d.Pins[i].Ox *= s
			d.Pins[i].Oy *= s
		}
		after := d.HPWL()
		return math.Abs(after-s*before) < 1e-9*(1+before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: HPWL is invariant under mirroring the design about the
// region's vertical axis.
func TestQuickHPWLMirrorInvariance(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDesign(seed)
		before := d.HPWL()
		for i := range d.Cells {
			d.Cells[i].X = 100 - d.Cells[i].X
		}
		for i := range d.Pins {
			d.Pins[i].Ox = -d.Pins[i].Ox
		}
		after := d.HPWL()
		return math.Abs(after-before) < 1e-9*(1+before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Clone + Validate always succeeds, and mutating the clone
// never perturbs the original's HPWL.
func TestQuickCloneIsolation(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDesign(seed)
		before := d.HPWL()
		c := d.Clone()
		if c.Validate() != nil {
			return false
		}
		for i := range c.Cells {
			c.Cells[i].X += 7
		}
		return d.HPWL() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: total overlap is zero after spreading cells onto a
// sufficiently coarse lattice, and positive when all are stacked.
func TestQuickOverlapExtremes(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDesign(seed)
		idx := d.Movable()
		// Lattice spread: pitch larger than any cell dimension.
		for k, ci := range idx {
			d.Cells[ci].X = float64(k%10) * 8
			d.Cells[ci].Y = float64(k/10) * 8
		}
		if d.TotalOverlap(idx) != 0 {
			return false
		}
		for _, ci := range idx {
			d.Cells[ci].X = 50
			d.Cells[ci].Y = 50
		}
		return len(idx) < 2 || d.TotalOverlap(idx) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
