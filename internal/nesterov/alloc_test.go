package nesterov

import "testing"

// TestStepAllocFree pins Step's documented allocation contract with an
// allocation-free quadratic objective: the optimizer itself must not
// allocate per iteration.
func TestStepAllocFree(t *testing.T) {
	grad := func(v, g []float64) {
		for i := range v {
			g[i] = v[i] - float64(i%7)
		}
	}
	v0 := make([]float64, 64)
	for i := range v0 {
		v0[i] = float64(i % 13)
	}
	o := New(v0, grad, nil, 0.01)
	o.Step(false)
	o.Step(false)
	if n := testing.AllocsPerRun(50, func() { o.Step(false) }); n != 0 {
		t.Errorf("Step allocates %v times per call, want 0", n)
	}
}
