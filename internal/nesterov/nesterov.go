// Package nesterov implements the nonlinear solvers of the paper:
// Nesterov's method (Algorithm 1) with steplength predicted as the
// inverse Lipschitz constant (Eq. 10) and refined by the BkTrk
// backtracking of Algorithm 2, plus a conjugate-gradient solver with
// line search that reproduces the FFTPL/APlace-style optimizer ePlace
// compares against (Sec. V-A and footnote 2).
//
// The solvers are generic over the objective: the placement engine
// supplies a gradient callback (already preconditioned, Sec. V-D) and,
// for the CG baseline, a cost callback. The cost function may change
// between iterations (gamma and lambda are adjusted iteratively); the
// dynamic Lipschitz prediction is what makes that safe (Sec. V-B).
package nesterov

import (
	"math"
)

// GradFunc evaluates the (preconditioned) gradient of f at v into grad.
// It must not retain the slices.
type GradFunc func(v, grad []float64)

// ClampFunc restricts a solution vector to the feasible box in place.
type ClampFunc func(v []float64)

// Optimizer runs Nesterov's method with Lipschitz steplength prediction
// and backtracking. Create with New, then call Step repeatedly; U holds
// the output solution u_k, which the paper returns as the final answer.
type Optimizer struct {
	// Epsilon is the backtracking scale factor (Algorithm 2; 0.95).
	Epsilon float64
	// MaxBacktrack bounds the inner loop of Algorithm 2 (default 10).
	MaxBacktrack int
	// MaxStep caps the predicted steplength to keep iterations sane when
	// successive gradients are nearly identical (default 1e9*seedStep).
	MaxStep float64
	// AdaptiveRestart resets the momentum sequence a_k whenever the
	// gradient opposes the current velocity (O'Donoghue & Candes), an
	// optional refinement beyond the paper that damps the oscillation
	// Nesterov momentum can develop on nonconvex objectives.
	AdaptiveRestart bool

	grad  GradFunc
	clamp ClampFunc

	// U and V are the two concurrently updated solutions u_k and v_k.
	U, V []float64
	// GradV is grad f_pre(v_k).
	GradV []float64

	vPrev    []float64
	gradPrev []float64
	a        float64

	// scratch
	uNext, vNext, gradNext []float64

	steps      int
	backtracks int
	restarts   int
}

// New creates an optimizer at v0. The reference solution v_{k-1} needed
// by the first Lipschitz prediction is seeded by a small descent
// perturbation of v0 with magnitude seedStep (use a fraction of a bin).
// clamp may be nil.
func New(v0 []float64, g GradFunc, clamp ClampFunc, seedStep float64) *Optimizer {
	n := len(v0)
	o := &Optimizer{
		Epsilon:      0.95,
		MaxBacktrack: 10,
		MaxStep:      math.Inf(1),
		grad:         g,
		clamp:        clamp,
		U:            append([]float64(nil), v0...),
		V:            append([]float64(nil), v0...),
		GradV:        make([]float64, n),
		vPrev:        make([]float64, n),
		gradPrev:     make([]float64, n),
		uNext:        make([]float64, n),
		vNext:        make([]float64, n),
		gradNext:     make([]float64, n),
		a:            1,
	}
	o.MaxStep = 1e9 * seedStep
	o.grad(o.V, o.GradV)
	gn := norm(o.GradV)
	if gn == 0 {
		gn = 1
	}
	scale := seedStep / gn
	for i := range o.vPrev {
		o.vPrev[i] = o.V[i] - scale*o.GradV[i]
	}
	if o.clamp != nil {
		o.clamp(o.vPrev)
	}
	o.grad(o.vPrev, o.gradPrev)
	return o
}

// State is the complete serializable iteration state of an Optimizer:
// everything Step reads that is not re-derivable from the objective
// callbacks. Restoring a State into Resume and stepping produces a
// trajectory bitwise-identical to continuing the original optimizer —
// the contract the checkpoint/restart subsystem is built on.
type State struct {
	// U, V are the two concurrently updated solutions u_k and v_k;
	// VPrev is v_{k-1}; GradV and GradPrev are the preconditioned
	// gradients at V and VPrev (the Lipschitz prediction inputs).
	U, V, VPrev, GradV, GradPrev []float64
	// A is the momentum coefficient a_k.
	A float64
	// Steps, Backtracks and Restarts are the cumulative counters.
	Steps, Backtracks, Restarts int
}

// State deep-copies the optimizer's iteration state.
func (o *Optimizer) State() State {
	return State{
		U:        append([]float64(nil), o.U...),
		V:        append([]float64(nil), o.V...),
		VPrev:    append([]float64(nil), o.vPrev...),
		GradV:    append([]float64(nil), o.GradV...),
		GradPrev: append([]float64(nil), o.gradPrev...),
		A:        o.a,
		Steps:    o.steps, Backtracks: o.backtracks, Restarts: o.restarts,
	}
}

// Resume reconstructs an optimizer from a captured State without the
// seeding gradient evaluations New performs: the state already holds
// both (solution, gradient) pairs of the Lipschitz recurrence, so the
// next Step continues exactly where the captured run left off.
// seedStep must match the value passed to New (it fixes MaxStep).
func Resume(s State, g GradFunc, clamp ClampFunc, seedStep float64) *Optimizer {
	n := len(s.U)
	o := &Optimizer{
		Epsilon:      0.95,
		MaxBacktrack: 10,
		MaxStep:      1e9 * seedStep,
		grad:         g,
		clamp:        clamp,
		U:            append([]float64(nil), s.U...),
		V:            append([]float64(nil), s.V...),
		GradV:        append([]float64(nil), s.GradV...),
		vPrev:        append([]float64(nil), s.VPrev...),
		gradPrev:     append([]float64(nil), s.GradPrev...),
		uNext:        make([]float64, n),
		vNext:        make([]float64, n),
		gradNext:     make([]float64, n),
		a:            s.A,
		steps:        s.Steps,
		backtracks:   s.Backtracks,
		restarts:     s.Restarts,
	}
	return o
}

// Steps returns the number of Step calls so far.
func (o *Optimizer) Steps() int { return o.steps }

// Backtracks returns the total number of extra gradient evaluations
// spent inside BkTrk (0 when every first check passes).
func (o *Optimizer) Backtracks() int { return o.backtracks }

// Step advances one iteration of Algorithm 1, returning the accepted
// steplength and the number of backtracks taken. When disableBkTrk is
// true the Lipschitz prediction is used unchecked (the ablation of
// Sec. V-C).
//
// Step allocates nothing: all iteration state lives in the buffers
// preallocated by New, so a full placement iteration stays
// allocation-free as long as the callbacks do (the engine's gradient
// pipeline guarantees this at Workers=1).
func (o *Optimizer) Step(disableBkTrk bool) (alpha float64, backtracks int) {
	n := len(o.V)
	aNext := (1 + math.Sqrt(4*o.a*o.a+1)) / 2
	coeff := (o.a - 1) / aNext

	if norm(o.GradV) == 0 {
		// Stationary point: stay put but keep the recurrence moving so a
		// later objective change (lambda/gamma update) resumes cleanly.
		copy(o.uNext, o.V)
		copy(o.vNext, o.V)
		o.grad(o.vNext, o.gradNext)
		o.commit(aNext)
		return 0, 0
	}

	alpha = o.lipschitzStep(o.V, o.vPrev, o.GradV, o.gradPrev)
	for bt := 0; ; bt++ {
		// Candidate u_{k+1} and extrapolated v_{k+1} (Alg. 1 lines 2, 4).
		for i := 0; i < n; i++ {
			o.uNext[i] = o.V[i] - alpha*o.GradV[i]
		}
		if o.clamp != nil {
			o.clamp(o.uNext)
		}
		for i := 0; i < n; i++ {
			o.vNext[i] = o.uNext[i] + coeff*(o.uNext[i]-o.U[i])
		}
		if o.clamp != nil {
			o.clamp(o.vNext)
		}
		o.grad(o.vNext, o.gradNext)
		if disableBkTrk || bt >= o.MaxBacktrack {
			break
		}
		// Reference steplength from the new pair (Alg. 2 line 2). The
		// gradient at the candidate is reused next iteration, so a
		// passing first check costs nothing extra. Accept unless the
		// measured inverse Lipschitz constant is more than (1-Epsilon)
		// below the prediction — a genuine overestimate.
		ref := o.lipschitzStep(o.vNext, o.V, o.gradNext, o.GradV)
		if ref >= o.Epsilon*alpha {
			break
		}
		alpha = ref
		backtracks++
	}
	o.backtracks += backtracks

	// Gradient-based adaptive restart: if the new gradient points
	// against the step just taken, momentum is hurting — restart the
	// a_k sequence.
	if o.AdaptiveRestart {
		dot := 0.0
		for i := range o.vNext {
			dot += o.gradNext[i] * (o.uNext[i] - o.U[i])
		}
		if dot > 0 {
			aNext = 1
			o.restarts++
		}
	}
	o.commit(aNext)
	return alpha, backtracks
}

// Restarts returns how many adaptive restarts have fired.
func (o *Optimizer) Restarts() int { return o.restarts }

// commit shifts the solution and gradient windows forward one iteration.
func (o *Optimizer) commit(aNext float64) {
	o.steps++
	o.U, o.uNext = o.uNext, o.U
	o.vPrev, o.V, o.vNext = o.V, o.vNext, o.vPrev
	o.gradPrev, o.GradV, o.gradNext = o.GradV, o.gradNext, o.gradPrev
	o.a = aNext
}

// lipschitzStep returns the Eq. (10) steplength ||dv|| / ||dg||, capped.
// The result is always finite: an infinite ratio (Inf dv with finite dg,
// which the NaN branch alone would let through) falls back to MaxStep,
// and if MaxStep itself is non-finite the step degrades to 0 (a no-op
// iteration) rather than poisoning the positions with Inf.
func (o *Optimizer) lipschitzStep(v, vp, g, gp []float64) float64 {
	var dv, dg float64
	for i := range v {
		d := v[i] - vp[i]
		dv += d * d
		e := g[i] - gp[i]
		dg += e * e
	}
	s := o.MaxStep
	if dg != 0 {
		s = math.Sqrt(dv / dg)
	}
	if s == 0 || math.IsNaN(s) || math.IsInf(s, 1) || s > o.MaxStep {
		s = o.MaxStep
	}
	if math.IsNaN(s) || math.IsInf(s, 1) {
		s = 0
	}
	return s
}

func norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
