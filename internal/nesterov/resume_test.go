package nesterov

import (
	"math"
	"testing"
)

// rosenGrad is a nonconvex-ish test gradient (2D Rosenbrock), enough
// structure to exercise backtracking and momentum.
func rosenGrad(v, g []float64) {
	x, y := v[0], v[1]
	g[0] = -2*(1-x) - 400*x*(y-x*x)
	g[1] = 200 * (y - x*x)
}

// TestResumeBitwiseEquivalent checks the State/Resume contract: a run
// interrupted at step k and resumed must produce a trajectory
// bitwise-identical to the uninterrupted run, including counters.
func TestResumeBitwiseEquivalent(t *testing.T) {
	for _, restart := range []bool{false, true} {
		v0 := []float64{-1.2, 1}
		ref := New(v0, rosenGrad, nil, 1e-3)
		ref.AdaptiveRestart = restart

		const split, total = 7, 30
		other := New(v0, rosenGrad, nil, 1e-3)
		other.AdaptiveRestart = restart
		for k := 0; k < split; k++ {
			ref.Step(false)
			other.Step(false)
		}
		res := Resume(other.State(), rosenGrad, nil, 1e-3)
		res.AdaptiveRestart = restart

		for k := split; k < total; k++ {
			a1, b1 := ref.Step(false)
			a2, b2 := res.Step(false)
			if a1 != a2 || b1 != b2 {
				t.Fatalf("restart=%v step %d: (alpha,bt) = (%v,%d) vs (%v,%d)",
					restart, k, a1, b1, a2, b2)
			}
			for i := range ref.U {
				if math.Float64bits(ref.U[i]) != math.Float64bits(res.U[i]) ||
					math.Float64bits(ref.V[i]) != math.Float64bits(res.V[i]) {
					t.Fatalf("restart=%v step %d: solutions diverged at %d: %v vs %v",
						restart, k, i, ref.U[i], res.U[i])
				}
			}
		}
		if ref.Steps() != res.Steps() || ref.Backtracks() != res.Backtracks() ||
			ref.Restarts() != res.Restarts() {
			t.Fatalf("restart=%v: counters diverged: (%d,%d,%d) vs (%d,%d,%d)",
				restart, ref.Steps(), ref.Backtracks(), ref.Restarts(),
				res.Steps(), res.Backtracks(), res.Restarts())
		}
	}
}

// TestStateIsDeepCopy verifies State does not alias live buffers.
func TestStateIsDeepCopy(t *testing.T) {
	o := New([]float64{1, 2}, rosenGrad, nil, 1e-3)
	s := o.State()
	u0 := s.U[0]
	o.Step(false)
	o.Step(false)
	if s.U[0] != u0 {
		t.Error("State aliases the optimizer's U buffer")
	}
}
