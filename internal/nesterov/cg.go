package nesterov

import "math"

// CostFunc evaluates the objective at v.
type CostFunc func(v []float64) float64

// CGSolver is the Polak-Ribiere nonlinear conjugate gradient solver
// with backtracking line search that prior nonlinear placers (APlace,
// NTUplace, FFTPL) use. ePlace replaces it with Nesterov's method; it
// is kept as the comparison baseline for Sec. V-A and footnote 2, which
// reports line search consuming >60% of FFTPL's runtime.
type CGSolver struct {
	// Armijo line-search parameters.
	Shrink    float64 // step shrink factor per trial (default 0.5)
	C1        float64 // sufficient-decrease constant (default 1e-4)
	MaxTrials int     // max line-search trials per iteration (default 20)
	// InitStep is the first trial steplength of each search, refreshed
	// from the previously accepted step.
	InitStep float64
	// Interrupt, when non-nil, is polled between line-search trials;
	// once it reports true the search stops early with the best trial so
	// far. Each trial costs a full objective evaluation (a Poisson
	// solve), so without this hook a cancelled CG placement would still
	// burn up to MaxTrials solves before the iteration loop could notice
	// the cancellation.
	Interrupt func() bool

	cost  CostFunc
	grad  GradFunc
	clamp ClampFunc

	V    []float64
	Grad []float64
	dir  []float64
	cand []float64

	prevGrad []float64
	haveDir  bool

	costEvals int
	gradEvals int
	steps     int
}

// NewCG creates a CG solver at v0.
func NewCG(v0 []float64, cost CostFunc, g GradFunc, clamp ClampFunc, initStep float64) *CGSolver {
	n := len(v0)
	s := &CGSolver{
		Shrink:    0.5,
		C1:        1e-4,
		MaxTrials: 20,
		InitStep:  initStep,
		cost:      cost,
		grad:      g,
		clamp:     clamp,
		V:         append([]float64(nil), v0...),
		Grad:      make([]float64, n),
		dir:       make([]float64, n),
		cand:      make([]float64, n),
		prevGrad:  make([]float64, n),
	}
	s.grad(s.V, s.Grad)
	s.gradEvals++
	return s
}

// Steps returns the number of Step calls so far.
func (s *CGSolver) Steps() int { return s.steps }

// CostEvals returns the objective evaluations spent inside line
// search, the quantity footnote 2 is about.
func (s *CGSolver) CostEvals() int { return s.costEvals }

// GradEvals returns the gradient evaluations so far.
func (s *CGSolver) GradEvals() int { return s.gradEvals }

// Step performs one CG iteration (direction update + line search) and
// returns the accepted steplength.
func (s *CGSolver) Step() float64 {
	n := len(s.V)
	if !s.haveDir {
		for i := 0; i < n; i++ {
			s.dir[i] = -s.Grad[i]
		}
		s.haveDir = true
	} else {
		// Polak-Ribiere+ beta.
		var num, den float64
		for i := 0; i < n; i++ {
			num += s.Grad[i] * (s.Grad[i] - s.prevGrad[i])
			den += s.prevGrad[i] * s.prevGrad[i]
		}
		beta := 0.0
		if den > 0 {
			beta = math.Max(0, num/den)
		}
		for i := 0; i < n; i++ {
			s.dir[i] = -s.Grad[i] + beta*s.dir[i]
		}
		// Restart on a non-descent direction.
		dg := 0.0
		for i := 0; i < n; i++ {
			dg += s.dir[i] * s.Grad[i]
		}
		if dg >= 0 {
			for i := 0; i < n; i++ {
				s.dir[i] = -s.Grad[i]
			}
		}
	}

	f0 := s.cost(s.V)
	s.costEvals++
	dg := 0.0
	for i := 0; i < n; i++ {
		dg += s.dir[i] * s.Grad[i]
	}
	step := s.InitStep
	accepted := 0.0
	for trial := 0; trial < s.MaxTrials; trial++ {
		if trial > 0 && s.Interrupt != nil && s.Interrupt() {
			break
		}
		for i := 0; i < n; i++ {
			s.cand[i] = s.V[i] + step*s.dir[i]
		}
		if s.clamp != nil {
			s.clamp(s.cand)
		}
		f := s.cost(s.cand)
		s.costEvals++
		if f <= f0+s.C1*step*dg {
			accepted = step
			break
		}
		step *= s.Shrink
	}
	if accepted == 0 {
		// Line search failed; take the tiny last trial anyway to avoid
		// stalling (the candidate holds the smallest step).
		accepted = step
	}
	copy(s.V, s.cand)
	copy(s.prevGrad, s.Grad)
	s.grad(s.V, s.Grad)
	s.gradEvals++
	// Warm-start the next search near the accepted step.
	s.InitStep = math.Max(accepted*2, 1e-12)
	s.steps++
	return accepted
}
