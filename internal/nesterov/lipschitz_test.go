package nesterov

import (
	"math"
	"testing"
)

// TestLipschitzStepNonFinite locks the guard against non-finite inputs:
// an Inf position delta with a finite gradient delta used to slip past
// the NaN check and return +Inf whenever MaxStep was not finite.
func TestLipschitzStepNonFinite(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name    string
		maxStep float64
		v, vp   []float64
		g, gp   []float64
		want    float64
	}{
		{
			name:    "inf-dv-finite-dg-finite-cap",
			maxStep: 1e6,
			v:       []float64{inf, 0}, vp: []float64{0, 0},
			g: []float64{1, 0}, gp: []float64{0, 0},
			want: 1e6,
		},
		{
			name:    "inf-dv-finite-dg-inf-cap",
			maxStep: inf,
			v:       []float64{inf, 0}, vp: []float64{0, 0},
			g: []float64{1, 0}, gp: []float64{0, 0},
			want: 0, // both ratio and cap are +Inf: degrade to a no-op step
		},
		{
			name:    "inf-gradient",
			maxStep: 1e6,
			v:       []float64{1, 0}, vp: []float64{0, 0},
			g: []float64{inf, 0}, gp: []float64{0, 0},
			want: 1e6, // dv/dg underflows to 0, which maps to the cap
		},
		{
			name:    "nan-gradient",
			maxStep: 1e6,
			v:       []float64{1, 0}, vp: []float64{0, 0},
			g: []float64{math.NaN(), 0}, gp: []float64{0, 0},
			want: 1e6,
		},
		{
			name:    "inf-dv-inf-dg",
			maxStep: 1e6,
			v:       []float64{inf, 0}, vp: []float64{0, 0},
			g: []float64{inf, 0}, gp: []float64{0, 0},
			want: 1e6, // Inf/Inf is NaN, which maps to the cap
		},
		{
			name:    "zero-dg-inf-cap",
			maxStep: inf,
			v:       []float64{1, 0}, vp: []float64{0, 0},
			g: []float64{1, 0}, gp: []float64{1, 0},
			want: 0,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := &Optimizer{MaxStep: c.maxStep}
			got := o.lipschitzStep(c.v, c.vp, c.g, c.gp)
			if got != c.want {
				t.Fatalf("lipschitzStep = %v, want %v", got, c.want)
			}
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("lipschitzStep returned non-finite %v", got)
			}
		})
	}
}

// TestStepWithNonFiniteGradient checks Optimizer.Step never accepts a
// non-finite steplength even when a gradient callback reports Inf
// components mid-run (the engine's divergence guard handles the
// positions; the steplength itself must stay finite).
func TestStepWithNonFiniteGradient(t *testing.T) {
	calls := 0
	grad := func(v, g []float64) {
		calls++
		for i := range g {
			g[i] = v[i] // simple quadratic bowl
		}
		if calls == 3 { // poison one evaluation mid-run
			g[0] = math.Inf(1)
		}
	}
	o := New([]float64{1, 2}, grad, nil, 0.01)
	for k := 0; k < 4; k++ {
		alpha, _ := o.Step(false)
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			t.Fatalf("step %d: non-finite alpha %v", k, alpha)
		}
	}
}
