package nesterov

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic builds f(x) = 1/2 sum d_i (x_i - t_i)^2 with gradient
// d_i (x_i - t_i); its Lipschitz constant is max d_i.
type quadratic struct {
	d, t []float64
}

func (q quadratic) cost(v []float64) float64 {
	s := 0.0
	for i := range v {
		e := v[i] - q.t[i]
		s += 0.5 * q.d[i] * e * e
	}
	return s
}

func (q quadratic) grad(v, g []float64) {
	for i := range v {
		g[i] = q.d[i] * (v[i] - q.t[i])
	}
}

func newQuad(n int, seed int64) quadratic {
	rng := rand.New(rand.NewSource(seed))
	q := quadratic{d: make([]float64, n), t: make([]float64, n)}
	for i := 0; i < n; i++ {
		q.d[i] = 0.5 + rng.Float64()*4.5
		q.t[i] = rng.NormFloat64() * 10
	}
	return q
}

func TestNesterovConvergesOnQuadratic(t *testing.T) {
	q := newQuad(50, 1)
	v0 := make([]float64, 50)
	o := New(v0, q.grad, nil, 0.01)
	for k := 0; k < 300; k++ {
		o.Step(false)
	}
	if c := q.cost(o.U); c > 1e-6 {
		t.Errorf("cost after 300 iterations = %v, want ~0", c)
	}
}

func TestNesterovFasterThanGradientDescent(t *testing.T) {
	// Ill-conditioned quadratic: Nesterov's O(1/k^2) rate should beat
	// plain gradient descent with the same Lipschitz steplength.
	n := 40
	q := quadratic{d: make([]float64, n), t: make([]float64, n)}
	for i := 0; i < n; i++ {
		q.d[i] = 0.01 + 3*float64(i)/float64(n) // condition number ~300
		q.t[i] = 5
	}
	v0 := make([]float64, n)
	iters := 150

	o := New(v0, q.grad, nil, 0.01)
	for k := 0; k < iters; k++ {
		o.Step(false)
	}
	nesterovCost := q.cost(o.U)

	// Plain gradient descent with exact 1/L step.
	gd := append([]float64(nil), v0...)
	g := make([]float64, n)
	step := 1.0 / 3.01
	for k := 0; k < iters; k++ {
		q.grad(gd, g)
		for i := range gd {
			gd[i] -= step * g[i]
		}
	}
	gdCost := q.cost(gd)
	if nesterovCost >= gdCost {
		t.Errorf("Nesterov %v not faster than GD %v after %d iters", nesterovCost, gdCost, iters)
	}
	if nesterovCost > 1e-2*gdCost {
		t.Errorf("Nesterov %v not clearly faster than GD %v", nesterovCost, gdCost)
	}
}

func TestLipschitzPredictionOnQuadratic(t *testing.T) {
	// On an isotropic quadratic with d_i = L the predicted steplength is
	// exactly 1/L from the first iteration.
	n := 10
	const L = 4.0
	q := quadratic{d: make([]float64, n), t: make([]float64, n)}
	for i := range q.d {
		q.d[i] = L
		q.t[i] = 1
	}
	v0 := make([]float64, n)
	o := New(v0, q.grad, nil, 0.01)
	alpha, _ := o.Step(false)
	if math.Abs(alpha-1/L) > 1e-9 {
		t.Errorf("steplength = %v, want %v", alpha, 1/L)
	}
}

func TestBacktrackingTriggersOnAbruptCurvatureIncrease(t *testing.T) {
	// Start on a flat quadratic, then switch to a much steeper one: the
	// stale Lipschitz estimate over-predicts the step and BkTrk must
	// engage.
	n := 8
	soft := quadratic{d: make([]float64, n), t: make([]float64, n)}
	hard := quadratic{d: make([]float64, n), t: make([]float64, n)}
	for i := 0; i < n; i++ {
		soft.d[i] = 0.04 + 0.003*float64(i) // slight anisotropy: no exact 1-step convergence
		hard.d[i] = 50
		hard.t[i] = 1
	}
	active := &soft
	grad := func(v, g []float64) { active.grad(v, g) }
	v0 := make([]float64, n)
	for i := range v0 {
		v0[i] = 3
	}
	o := New(v0, grad, nil, 0.01)
	for k := 0; k < 5; k++ {
		o.Step(false)
	}
	active = &hard
	_, bt := o.Step(false)
	if bt == 0 {
		t.Error("no backtracking after 1000x curvature increase")
	}
}

func TestBacktrackingShrinksCommittedStep(t *testing.T) {
	// The Sec. V-C mechanism in miniature: after an abrupt curvature
	// increase (the placement analogue is the iterative lambda/gamma
	// update), the raw Lipschitz prediction overestimates the steplength;
	// BkTrk must commit a much smaller one than the unchecked run.
	n := 8
	run := func(disable bool) float64 {
		soft := quadratic{d: make([]float64, n), t: make([]float64, n)}
		hard := quadratic{d: make([]float64, n), t: make([]float64, n)}
		for i := 0; i < n; i++ {
			soft.d[i] = 0.02 + 0.01*float64(i)
			hard.d[i] = 50
			hard.t[i] = 1
		}
		active := &soft
		grad := func(v, g []float64) { active.grad(v, g) }
		v0 := make([]float64, n)
		for i := range v0 {
			v0[i] = 3 + 0.2*float64(i)
		}
		o := New(v0, grad, nil, 0.01)
		for k := 0; k < 3; k++ {
			o.Step(disable)
		}
		active = &hard
		// Second post-switch step: the prediction now mixes one stale and
		// one fresh gradient and overshoots without BkTrk.
		o.Step(disable)
		alpha, _ := o.Step(disable)
		return alpha
	}
	withBT := run(false)
	withoutBT := run(true)
	if withBT >= 0.5*withoutBT {
		t.Errorf("committed alpha with BkTrk %v, without %v: expected clear shrink", withBT, withoutBT)
	}
}

func TestClampKeepsIteratesInBox(t *testing.T) {
	q := newQuad(20, 3)
	for i := range q.t {
		q.t[i] = 100 // optimum far outside the box
	}
	clamp := func(v []float64) {
		for i := range v {
			if v[i] > 1 {
				v[i] = 1
			}
			if v[i] < -1 {
				v[i] = -1
			}
		}
	}
	o := New(make([]float64, 20), q.grad, clamp, 0.01)
	for k := 0; k < 50; k++ {
		o.Step(false)
	}
	for i, v := range o.U {
		if v < -1-1e-12 || v > 1+1e-12 {
			t.Fatalf("U[%d] = %v escaped box", i, v)
		}
	}
	// Clamped optimum is the box face nearest the target.
	for i, v := range o.U {
		if math.Abs(v-1) > 1e-6 {
			t.Errorf("U[%d] = %v, want 1", i, v)
		}
	}
}

func TestMaxStepCap(t *testing.T) {
	q := newQuad(5, 4)
	o := New(make([]float64, 5), q.grad, nil, 0.01)
	o.MaxStep = 1e-3
	alpha, _ := o.Step(false)
	if alpha > 1e-3 {
		t.Errorf("alpha = %v exceeds MaxStep", alpha)
	}
}

func TestAkRecurrence(t *testing.T) {
	// a_{k+1} = (1 + sqrt(4 a_k^2 + 1))/2 starting from 1 grows ~ k/2;
	// verify through the optimizer's behavior indirectly: after many
	// steps on a trivial function nothing NaNs.
	q := newQuad(3, 5)
	o := New(make([]float64, 3), q.grad, nil, 0.01)
	for k := 0; k < 500; k++ {
		alpha, _ := o.Step(false)
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			t.Fatalf("alpha = %v at step %d", alpha, k)
		}
	}
	for i, v := range o.U {
		if math.IsNaN(v) {
			t.Fatalf("U[%d] = NaN", i)
		}
	}
}

func TestCGConvergesOnQuadratic(t *testing.T) {
	q := newQuad(30, 6)
	s := NewCG(make([]float64, 30), q.cost, q.grad, nil, 1.0)
	for k := 0; k < 200; k++ {
		s.Step()
	}
	if c := q.cost(s.V); c > 1e-4 {
		t.Errorf("CG cost after 200 iterations = %v", c)
	}
}

func TestCGCountsLineSearchEvals(t *testing.T) {
	q := newQuad(10, 7)
	s := NewCG(make([]float64, 10), q.cost, q.grad, nil, 1.0)
	for k := 0; k < 20; k++ {
		s.Step()
	}
	if s.CostEvals() <= 20 {
		t.Errorf("CostEvals = %d, expected more than one per iteration", s.CostEvals())
	}
	if s.GradEvals() < 20 {
		t.Errorf("GradEvals = %d", s.GradEvals())
	}
}

func TestCGRespectsClamp(t *testing.T) {
	q := newQuad(10, 8)
	for i := range q.t {
		q.t[i] = 50
	}
	clamp := func(v []float64) {
		for i := range v {
			if v[i] > 2 {
				v[i] = 2
			}
		}
	}
	s := NewCG(make([]float64, 10), q.cost, q.grad, clamp, 1.0)
	for k := 0; k < 50; k++ {
		s.Step()
	}
	for i, v := range s.V {
		if v > 2+1e-12 {
			t.Fatalf("V[%d] = %v escaped clamp", i, v)
		}
	}
}

// Footnote 2's runtime argument: CG pays several objective evaluations
// per iteration for its line search (>60% of FFTPL's runtime), while
// Nesterov needs ~1 gradient per iteration (1.037 average on MMS). In a
// placer a cost evaluation is as expensive as a gradient (both need the
// Poisson solve), so evals-per-iteration is the runtime ratio.
func TestNesterovEvalsPerIterationNearOne(t *testing.T) {
	// Both solvers receive the diagonally preconditioned gradient
	// H^-1 grad f (Sec. V-D); without preconditioning the directional
	// curvature fluctuates and BkTrk fires constantly, which is exactly
	// the oscillation the paper's preconditioner exists to prevent.
	n := 60
	q := quadratic{d: make([]float64, n), t: make([]float64, n)}
	for i := 0; i < n; i++ {
		q.d[i] = 0.01 + 3*float64(i)/float64(n)
		q.t[i] = 5
	}
	pgrad := func(v, g []float64) {
		q.grad(v, g)
		for i := range g {
			g[i] /= q.d[i]
		}
	}
	iters := 100

	o := New(make([]float64, n), pgrad, nil, 0.01)
	nEvals := 2 // initial seed
	for k := 0; k < iters; k++ {
		_, bt := o.Step(false)
		nEvals += 1 + bt
	}
	if q.cost(o.U) > 1e-3*q.cost(make([]float64, n)) {
		t.Fatalf("Nesterov did not converge: %v", q.cost(o.U))
	}
	perIter := float64(nEvals) / float64(iters)

	s := NewCG(make([]float64, n), q.cost, pgrad, nil, 1.0)
	for k := 0; k < iters; k++ {
		s.Step()
	}
	cgPerIter := float64(s.CostEvals()+s.GradEvals()) / float64(iters)

	if perIter > 2.0 {
		t.Errorf("Nesterov evals/iter = %v, want near 1", perIter)
	}
	if cgPerIter < 3.0 {
		t.Errorf("CG evals/iter = %v, expected >= 3 (line search)", cgPerIter)
	}
	if perIter >= cgPerIter {
		t.Errorf("Nesterov %v evals/iter not below CG %v", perIter, cgPerIter)
	}
}

func BenchmarkNesterovStep(b *testing.B) {
	q := newQuad(10000, 10)
	o := New(make([]float64, 10000), q.grad, nil, 0.01)
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		o.Step(false)
	}
}

func TestAdaptiveRestartFires(t *testing.T) {
	// Strongly anisotropic quadratic without preconditioning: momentum
	// overshoots across the narrow valley and restarts must fire.
	n := 20
	q := quadratic{d: make([]float64, n), t: make([]float64, n)}
	for i := 0; i < n; i++ {
		q.d[i] = 0.05 + 5*float64(i)/float64(n)
		q.t[i] = 3
	}
	o := New(make([]float64, n), q.grad, nil, 0.01)
	o.AdaptiveRestart = true
	for k := 0; k < 200; k++ {
		o.Step(false)
	}
	if o.Restarts() == 0 {
		t.Error("adaptive restart never fired on an oscillating run")
	}
	if c := q.cost(o.U); c > 1e-4 {
		t.Errorf("cost with restarts = %v", c)
	}
}

func TestAdaptiveRestartOffByDefault(t *testing.T) {
	q := newQuad(10, 21)
	o := New(make([]float64, 10), q.grad, nil, 0.01)
	for k := 0; k < 50; k++ {
		o.Step(false)
	}
	if o.Restarts() != 0 {
		t.Error("restarts fired while disabled")
	}
}
