package viz

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/netlist"
)

func TestWritePGMHeader(t *testing.T) {
	grid := make([]float64, 16)
	for i := range grid {
		grid[i] = float64(i)
	}
	var buf bytes.Buffer
	if err := WritePGM(&buf, grid, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n4 4\n255\n")) {
		t.Fatalf("bad header: %q", out[:12])
	}
	if len(out) != len("P5\n4 4\n255\n")+16 {
		t.Errorf("payload size = %d", len(out)-len("P5\n4 4\n255\n"))
	}
	// Max value maps to 255, min to 0; row order flipped: grid[15] (top
	// right) is the first row's last byte.
	payload := out[len("P5\n4 4\n255\n"):]
	if payload[3] != 255 {
		t.Errorf("top-right byte = %d, want 255", payload[3])
	}
	if payload[12] != 0 {
		t.Errorf("bottom-left byte = %d, want 0", payload[12])
	}
}

func TestWritePGMConstantGrid(t *testing.T) {
	grid := make([]float64, 16)
	var buf bytes.Buffer
	if err := WritePGM(&buf, grid, 4); err != nil {
		t.Fatal(err)
	}
}

func TestWritePGMSizeMismatch(t *testing.T) {
	if err := WritePGM(&bytes.Buffer{}, make([]float64, 10), 4); err == nil {
		t.Error("expected size mismatch error")
	}
}

func TestSavePGM(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.pgm")
	if err := SavePGM(path, make([]float64, 64), 8); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("P5\n")) {
		t.Error("file is not a PGM")
	}
}

func TestRasterizeLayout(t *testing.T) {
	d := netlist.New("v", geom.Rect{Hx: 32, Hy: 32})
	d.AddCell(netlist.Cell{W: 8, H: 8, X: 4, Y: 4})                                     // bottom-left cell
	d.AddCell(netlist.Cell{W: 8, H: 8, X: 28, Y: 28, Kind: netlist.Macro, Fixed: true}) // top-right macro
	grid := RasterizeLayout(d, 8)
	if grid[0] <= 0 {
		t.Error("bottom-left bin empty")
	}
	if grid[7*8+7] != 1 {
		t.Errorf("macro bin = %v, want 1", grid[7*8+7])
	}
	if grid[4*8+4] != 0 {
		t.Errorf("center bin = %v, want 0", grid[4*8+4])
	}
}

func TestASCIIHeatmap(t *testing.T) {
	d := netlist.New("a", geom.Rect{Hx: 32, Hy: 32})
	d.AddCell(netlist.Cell{W: 16, H: 16, X: 8, Y: 8})
	grid := RasterizeLayout(d, 16)
	s := ASCIIHeatmap(grid, 16, 16)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 16 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Bottom-left dense (last line, first chars dark), top-right empty.
	bottom := lines[len(lines)-1]
	top := lines[0]
	if bottom[0] == ' ' {
		t.Errorf("bottom-left should be dark: %q", bottom)
	}
	if top[len(top)-1] != ' ' {
		t.Errorf("top-right should be blank: %q", top)
	}
	// Downsampling produces fewer columns.
	small := ASCIIHeatmap(grid, 16, 8)
	if got := len(strings.Split(strings.TrimRight(small, "\n"), "\n")); got != 8 {
		t.Errorf("downsampled lines = %d, want 8", got)
	}
}
