// Package viz renders placement state as images and text: grayscale
// PGM heatmaps of scalar grids (density, potential, congestion), PGM
// rasters of cell layouts (the data behind the paper's Figures 3, 5
// and 6), and compact ASCII heatmaps for terminal inspection. PGM is
// chosen because it needs no image library and every viewer opens it.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"

	"eplace/internal/netlist"
)

// WritePGM writes an m x m scalar grid (row-major, row 0 at the bottom)
// as an 8-bit PGM image, auto-scaled to the data range. Values are
// flipped vertically so the image matches placement coordinates.
func WritePGM(w io.Writer, grid []float64, m int) error {
	if len(grid) != m*m {
		return fmt.Errorf("viz: grid length %d, want %d", len(grid), m*m)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range grid {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", m, m)
	for j := m - 1; j >= 0; j-- {
		for i := 0; i < m; i++ {
			v := (grid[j*m+i] - lo) / span
			if err := bw.WriteByte(byte(v * 255)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SavePGM writes the grid to a file.
func SavePGM(path string, grid []float64, m int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePGM(f, grid, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RasterizeLayout renders the design's cells into an m x m occupancy
// grid: standard cells and fillers accumulate area, macros and fixed
// cells are drawn at full intensity, giving the familiar placement
// snapshot look of Fig. 3.
func RasterizeLayout(d *netlist.Design, m int) []float64 {
	grid := make([]float64, m*m)
	binW := d.Region.W() / float64(m)
	binH := d.Region.H() / float64(m)
	binArea := binW * binH
	for i := range d.Cells {
		c := &d.Cells[i]
		r := c.Rect().Intersect(d.Region)
		if r.Empty() {
			continue
		}
		i0 := clamp(int((r.Lx-d.Region.Lx)/binW), 0, m-1)
		i1 := clamp(int(math.Ceil((r.Hx-d.Region.Lx)/binW)), 1, m)
		j0 := clamp(int((r.Ly-d.Region.Ly)/binH), 0, m-1)
		j1 := clamp(int(math.Ceil((r.Hy-d.Region.Ly)/binH)), 1, m)
		solid := c.Fixed || c.Kind == netlist.Macro
		for j := j0; j < j1; j++ {
			by := d.Region.Ly + float64(j)*binH
			oy := math.Min(r.Hy, by+binH) - math.Max(r.Ly, by)
			if oy <= 0 {
				continue
			}
			for i2 := i0; i2 < i1; i2++ {
				bx := d.Region.Lx + float64(i2)*binW
				ox := math.Min(r.Hx, bx+binW) - math.Max(r.Lx, bx)
				if ox <= 0 {
					continue
				}
				if solid {
					grid[j*m+i2] = math.Max(grid[j*m+i2], 1)
				} else {
					grid[j*m+i2] += ox * oy / binArea
				}
			}
		}
	}
	return grid
}

// asciiRamp maps intensity to characters, light to dark.
const asciiRamp = " .:-=+*#%@"

// ASCIIHeatmap renders the grid as rows of characters (row 0 at the
// bottom, like placement coordinates), downsampling to at most maxCols
// columns.
func ASCIIHeatmap(grid []float64, m, maxCols int) string {
	if maxCols <= 0 || maxCols > m {
		maxCols = m
	}
	step := m / maxCols
	if step < 1 {
		step = 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range grid {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	out := make([]byte, 0, (m/step+1)*(m/step+2))
	for j := m - step; j >= 0; j -= step {
		for i := 0; i+step <= m; i += step {
			// Average the block.
			sum := 0.0
			for dj := 0; dj < step; dj++ {
				for di := 0; di < step; di++ {
					sum += grid[(j+dj)*m+i+di]
				}
			}
			v := (sum/float64(step*step) - lo) / span
			idx := int(v * float64(len(asciiRamp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(asciiRamp) {
				idx = len(asciiRamp) - 1
			}
			out = append(out, asciiRamp[idx])
		}
		out = append(out, '\n')
	}
	return string(out)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
