// Package synth generates deterministic synthetic placement benchmarks
// that stand in for the proprietary ISPD 2005 / ISPD 2006 / MMS suites
// (see DESIGN.md, Substitutions). Circuits have clustered Rent-style
// connectivity, realistic cell-size distributions, boundary IO pads,
// optional fixed blocks (ISPD-style) or movable macros (MMS-style), and
// benchmark-specific target densities. Everything is seeded: the same
// Spec always yields the same circuit.
package synth

import (
	"math"
	"math/rand"

	"eplace/internal/geom"
	"eplace/internal/netlist"
)

// Spec describes one synthetic circuit.
type Spec struct {
	Name string
	// NumCells is the number of movable standard cells.
	NumCells int
	// NumMovableMacros adds MMS-style movable macros.
	NumMovableMacros int
	// NumFixedMacros adds ISPD-style fixed blocks.
	NumFixedMacros int
	// NumPads is the number of fixed boundary IO pads (default 32).
	NumPads int
	// TargetDensity is the benchmark rho_t (default 1.0).
	TargetDensity float64
	// Utilization is movable area / free area (default 0.7).
	Utilization float64
	// MacroAreaFrac is the fraction of movable area inside movable
	// macros (default 0.25 when NumMovableMacros > 0).
	MacroAreaFrac float64
	// RowHeight is the standard-cell height (default 2).
	RowHeight float64
	// Seed drives all randomness (default: hash of Name).
	Seed int64
}

func (s *Spec) defaults() {
	if s.NumPads == 0 {
		s.NumPads = 32
	}
	if s.TargetDensity == 0 {
		s.TargetDensity = 1.0
	}
	if s.Utilization == 0 {
		s.Utilization = 0.7
	}
	if s.MacroAreaFrac == 0 && s.NumMovableMacros > 0 {
		s.MacroAreaFrac = 0.25
	}
	if s.RowHeight == 0 {
		s.RowHeight = 2
	}
	if s.Seed == 0 {
		s.Seed = int64(1)
		for _, r := range s.Name {
			s.Seed = s.Seed*131 + int64(r)
		}
	}
}

// Generate builds the circuit for spec. The layout is a random spread
// (callers run mIP to get the real starting point).
func Generate(spec Spec) *netlist.Design {
	spec.defaults()
	rng := rand.New(rand.NewSource(spec.Seed))

	// Cell dimensions: integral site widths with a decaying distribution
	// (sites are 1 unit; rows snap to them).
	h := spec.RowHeight
	widths := make([]float64, spec.NumCells)
	cellArea := 0.0
	for i := range widths {
		w := math.Round(h * (1 + rng.ExpFloat64()*0.8))
		if w < 1 {
			w = 1
		}
		if w > 5*h {
			w = 5 * h
		}
		widths[i] = w
		cellArea += w * h
	}

	// Movable macro sizes.
	macroArea := 0.0
	type msize struct{ w, h float64 }
	var msizes []msize
	if spec.NumMovableMacros > 0 {
		want := cellArea * spec.MacroAreaFrac / (1 - spec.MacroAreaFrac)
		per := want / float64(spec.NumMovableMacros)
		for i := 0; i < spec.NumMovableMacros; i++ {
			aspect := 0.5 + rng.Float64()*1.5
			a := per * (0.5 + rng.Float64())
			mw := math.Sqrt(a * aspect)
			mh := a / mw
			// Snap macro height to a row multiple for realism.
			mh = math.Max(h*2, math.Round(mh/h)*h)
			msizes = append(msizes, msize{mw, mh})
			macroArea += mw * mh
		}
	}

	// Fixed blocks sized relative to the movable area.
	fixedArea := 0.0
	var fsizes []msize
	for i := 0; i < spec.NumFixedMacros; i++ {
		a := (cellArea + macroArea) * (0.01 + rng.Float64()*0.03)
		aspect := 0.6 + rng.Float64()
		fw := math.Sqrt(a * aspect)
		fh := a / fw
		fsizes = append(fsizes, msize{fw, fh})
		fixedArea += fw * fh
	}

	movable := cellArea + macroArea
	side := math.Sqrt(movable/spec.Utilization + fixedArea)
	// Round up to an integral number of rows.
	rows := int(math.Ceil(side / h))
	side = float64(rows) * h
	d := netlist.New(spec.Name, geom.Rect{Hx: side, Hy: side})
	d.TargetDensity = spec.TargetDensity
	d.Reserve(spec.NumFixedMacros+spec.NumCells+spec.NumMovableMacros+spec.NumPads, 0, 0)
	for r := 0; r < rows; r++ {
		d.Rows = append(d.Rows, netlist.Row{
			Y: float64(r) * h, Height: h, Lx: 0, Hx: side, SiteW: 1,
		})
	}

	// Fixed blocks on a jittered diagonal-ish grid, non-overlapping by
	// construction (placed in distinct grid slots).
	if len(fsizes) > 0 {
		slots := int(math.Ceil(math.Sqrt(float64(len(fsizes)))))
		pitch := side / float64(slots+1)
		k := 0
		for gy := 0; gy < slots && k < len(fsizes); gy++ {
			for gx := 0; gx < slots && k < len(fsizes); gx++ {
				fs := fsizes[k]
				cx := pitch * (float64(gx) + 1)
				cy := pitch * (float64(gy) + 1)
				p := geom.ClampPoint(geom.Point{X: cx, Y: cy}, fs.w, fs.h, d.Region)
				d.AddCell(netlist.Cell{
					Name: "FIXED" + itoa(k), W: fs.w, H: fs.h, X: p.X, Y: p.Y,
					Kind: netlist.Macro, Fixed: true,
				})
				k++
			}
		}
	}

	// Movable standard cells at random positions.
	cells := make([]int, spec.NumCells)
	for i := 0; i < spec.NumCells; i++ {
		w := widths[i]
		cells[i] = d.AddCell(netlist.Cell{
			Name: "o" + itoa(i), W: w, H: h,
			X: w/2 + rng.Float64()*(side-w),
			Y: h/2 + rng.Float64()*(side-h),
		})
	}

	// Movable macros at random positions.
	macros := make([]int, 0, len(msizes))
	for k, ms := range msizes {
		macros = append(macros, d.AddCell(netlist.Cell{
			Name: "MACRO" + itoa(k), W: ms.w, H: ms.h,
			X:    ms.w/2 + rng.Float64()*(side-ms.w),
			Y:    ms.h/2 + rng.Float64()*(side-ms.h),
			Kind: netlist.Macro,
		}))
	}

	// IO pads around the periphery.
	pads := make([]int, 0, spec.NumPads)
	for i := 0; i < spec.NumPads; i++ {
		t := float64(i) / float64(spec.NumPads)
		var x, y float64
		switch {
		case t < 0.25:
			x, y = side*4*t, 0.5
		case t < 0.5:
			x, y = side-0.5, side*4*(t-0.25)
		case t < 0.75:
			x, y = side*(1-4*(t-0.5)), side-0.5
		default:
			x, y = 0.5, side*(1-4*(t-0.75))
		}
		// Align pad edges to the site grid so row segments keep integral
		// boundaries.
		x = math.Floor(geom.Clamp(x, 0.5, side-0.5)) + 0.5
		y = math.Floor(geom.Clamp(y, 0.5, side-0.5)) + 0.5
		x = geom.Clamp(x, 0.5, side-0.5)
		y = geom.Clamp(y, 0.5, side-0.5)
		pads = append(pads, d.AddCell(netlist.Cell{
			Name: "PAD" + itoa(i), W: 1, H: 1, X: x, Y: y,
			Kind: netlist.Pad, Fixed: true,
		}))
	}

	buildNets(d, rng, cells, macros, pads)
	return d
}

// buildNets creates clustered connectivity: dense local nets inside
// clusters of ~12 cells, sparser nets between nearby clusters, a few
// global nets, macro fan-in/out, and pad nets. Net degrees follow the
// heavy-two-pin distribution of real netlists.
func buildNets(d *netlist.Design, rng *rand.Rand, cells, macros, pads []int) {
	n := len(cells)
	if n == 0 {
		return
	}
	const clusterSize = 12
	numClusters := (n + clusterSize - 1) / clusterSize
	clusterOf := func(i int) int { return i / clusterSize }
	_ = clusterOf
	pick := func(cluster int) int {
		base := cluster * clusterSize
		size := clusterSize
		if base+size > n {
			size = n - base
		}
		return cells[base+rng.Intn(size)]
	}
	degree := func() int {
		// ~60% 2-pin, 20% 3-pin, rest 4..8.
		r := rng.Float64()
		switch {
		case r < 0.60:
			return 2
		case r < 0.80:
			return 3
		default:
			return 4 + rng.Intn(5)
		}
	}
	addNet := func(members []int) {
		if len(members) < 2 {
			return
		}
		ni := d.AddNet("", 1)
		for k, ci := range members {
			c := &d.Cells[ci]
			ox := (rng.Float64() - 0.5) * c.W * 0.8
			oy := (rng.Float64() - 0.5) * c.H * 0.8
			pi := d.Connect(ci, ni, ox, oy)
			// First member drives the net; the rest are sinks (used by
			// the timing extension).
			if k == 0 {
				d.Pins[pi].Dir = netlist.DirOut
			} else {
				d.Pins[pi].Dir = netlist.DirIn
			}
		}
	}

	// Pre-size the net and pin arrays: every net count below is known up
	// front and degrees average under 3 pins per net, so reserving here
	// keeps construction free of append re-copies at million-cell scale.
	intra := n * 12 / 10
	inter := n * 3 / 10
	global := n / 20
	numNets := intra + inter + global + 4*len(macros) + len(pads)
	d.Reserve(0, numNets, 3*numNets)
	// members is reused across nets (Connect copies what it needs).
	members := make([]int, 0, 16)

	// Intra-cluster nets: ~1.2 per cell.
	for k := 0; k < intra; k++ {
		c := rng.Intn(numClusters)
		deg := degree()
		members = members[:0]
		for p := 0; p < deg; p++ {
			members = append(members, pick(c))
		}
		addNet(uniq(members))
	}
	// Neighbor-cluster nets: ~0.3 per cell.
	for k := 0; k < inter; k++ {
		c1 := rng.Intn(numClusters)
		c2 := c1 + 1 + rng.Intn(3)
		if c2 >= numClusters {
			c2 = rng.Intn(numClusters)
		}
		members = append(members[:0], pick(c1), pick(c2), pick(c1))
		addNet(uniq(members))
	}
	// Global nets: ~0.05 per cell, higher degree.
	for k := 0; k < global; k++ {
		deg := 3 + rng.Intn(6)
		members = members[:0]
		for p := 0; p < deg; p++ {
			members = append(members, cells[rng.Intn(n)])
		}
		addNet(uniq(members))
	}
	// Macro nets: each macro talks to ~8 random cells over several nets.
	for _, mi := range macros {
		for k := 0; k < 4; k++ {
			members = append(members[:0], mi)
			for p := 0; p < 2; p++ {
				members = append(members, cells[rng.Intn(n)])
			}
			addNet(uniq(members))
		}
	}
	// Pad nets.
	for _, pi := range pads {
		members = append(members[:0], pi, cells[rng.Intn(n)])
		addNet(members)
	}
}

// uniq deduplicates in place, preserving first-seen order. Net member
// lists are tiny (degree <= 9), so a linear scan beats a map — the map
// version allocated once per net, the dominant cost of building a
// million-net circuit.
func uniq(in []int) []int {
	out := in[:0]
	for _, v := range in {
		dup := false
		for _, u := range out {
			if u == v {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
