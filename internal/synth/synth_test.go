package synth

import (
	"math"
	"testing"
	"time"

	"eplace/internal/netlist"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Spec{Name: "X", NumCells: 500})
	b := Generate(Spec{Name: "X", NumCells: 500})
	if len(a.Cells) != len(b.Cells) || len(a.Nets) != len(b.Nets) || len(a.Pins) != len(b.Pins) {
		t.Fatal("same spec produced different structure")
	}
	for i := range a.Cells {
		if a.Cells[i].X != b.Cells[i].X || a.Cells[i].W != b.Cells[i].W {
			t.Fatalf("cell %d differs", i)
		}
	}
	c := Generate(Spec{Name: "Y", NumCells: 500})
	if c.HPWL() == a.HPWL() {
		t.Error("different names produced identical circuits")
	}
}

func TestGenerateValid(t *testing.T) {
	for _, spec := range []Spec{
		{Name: "plain", NumCells: 300},
		{Name: "mms", NumCells: 300, NumMovableMacros: 5},
		{Name: "ispd", NumCells: 300, NumFixedMacros: 6, TargetDensity: 0.8},
	} {
		d := Generate(spec)
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

func TestUtilizationNearSpec(t *testing.T) {
	d := Generate(Spec{Name: "u", NumCells: 2000, Utilization: 0.7})
	if u := d.Utilization(); math.Abs(u-0.7) > 0.05 {
		t.Errorf("utilization = %v, want ~0.7", u)
	}
	d = Generate(Spec{Name: "u2", NumCells: 2000, NumFixedMacros: 8, Utilization: 0.5})
	if u := d.Utilization(); math.Abs(u-0.5) > 0.07 {
		t.Errorf("utilization with fixed = %v, want ~0.5", u)
	}
}

func TestMacroAreaFraction(t *testing.T) {
	d := Generate(Spec{Name: "m", NumCells: 2000, NumMovableMacros: 10, MacroAreaFrac: 0.3})
	var macroA, cellA float64
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Fixed {
			continue
		}
		switch c.Kind {
		case netlist.Macro:
			macroA += c.Area()
		case netlist.StdCell:
			cellA += c.Area()
		}
	}
	frac := macroA / (macroA + cellA)
	if math.Abs(frac-0.3) > 0.1 {
		t.Errorf("macro area fraction = %v, want ~0.3", frac)
	}
}

func TestFixedMacrosDoNotOverlap(t *testing.T) {
	d := Generate(Spec{Name: "f", NumCells: 1000, NumFixedMacros: 12})
	var fixed []int
	for i := range d.Cells {
		if d.Cells[i].Fixed && d.Cells[i].Kind == netlist.Macro {
			fixed = append(fixed, i)
		}
	}
	if len(fixed) != 12 {
		t.Fatalf("fixed macros = %d", len(fixed))
	}
	for i := 0; i < len(fixed); i++ {
		ri := d.Cells[fixed[i]].Rect()
		if !d.Region.ContainsRect(ri) {
			t.Errorf("fixed macro %d outside region", i)
		}
		for j := i + 1; j < len(fixed); j++ {
			if ov := ri.Overlap(d.Cells[fixed[j]].Rect()); ov > 1e-9 {
				t.Errorf("fixed macros %d, %d overlap by %v", i, j, ov)
			}
		}
	}
}

func TestNetDegreeDistribution(t *testing.T) {
	d := Generate(Spec{Name: "deg", NumCells: 3000})
	h := d.NetDegreeHistogram()
	total, twoPin := 0, 0
	for deg, cnt := range h {
		if deg < 2 {
			t.Errorf("%d nets of degree %d", cnt, deg)
		}
		total += cnt
		if deg == 2 {
			twoPin += cnt
		}
	}
	frac := float64(twoPin) / float64(total)
	if frac < 0.35 || frac > 0.85 {
		t.Errorf("two-pin fraction = %v, want heavy-two-pin distribution", frac)
	}
	// Average pins per net in the realistic 2-5 range.
	if avg := float64(len(d.Pins)) / float64(total); avg < 2 || avg > 5 {
		t.Errorf("average net degree = %v", avg)
	}
}

func TestRowsCoverRegion(t *testing.T) {
	d := Generate(Spec{Name: "rows", NumCells: 500})
	if len(d.Rows) == 0 {
		t.Fatal("no rows")
	}
	top := d.Rows[len(d.Rows)-1]
	if top.Y+top.Height > d.Region.Hy+1e-9 {
		t.Error("rows exceed region")
	}
	if top.Y+top.Height < d.Region.Hy-d.Rows[0].Height {
		t.Error("rows do not cover region")
	}
}

func TestPadsOnBoundary(t *testing.T) {
	d := Generate(Spec{Name: "pads", NumCells: 200, NumPads: 16})
	count := 0
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Kind != netlist.Pad {
			continue
		}
		count++
		nearEdge := c.X < 1 || c.X > d.Region.Hx-1 || c.Y < 1 || c.Y > d.Region.Hy-1
		if !nearEdge {
			t.Errorf("pad %d at (%v, %v) not on boundary", i, c.X, c.Y)
		}
		if !c.Fixed {
			t.Errorf("pad %d not fixed", i)
		}
	}
	if count != 16 {
		t.Errorf("pads = %d, want 16", count)
	}
}

func TestSuites(t *testing.T) {
	if got := len(ISPD05Suite(1)); got != 8 {
		t.Errorf("ISPD05 suite size = %d", got)
	}
	if got := len(ISPD06Suite(1)); got != 8 {
		t.Errorf("ISPD06 suite size = %d", got)
	}
	if got := len(MMSSuite(1)); got != 16 {
		t.Errorf("MMS suite size = %d", got)
	}
	for _, s := range ISPD06Suite(1) {
		if s.TargetDensity >= 1.0 {
			t.Errorf("%s: ISPD06 target density %v", s.Name, s.TargetDensity)
		}
	}
	for _, s := range MMSSuite(1) {
		if s.NumMovableMacros == 0 {
			t.Errorf("%s: MMS circuit without movable macros", s.Name)
		}
	}
	// Scaling works.
	small := ISPD05Suite(0.1)
	if small[0].NumCells != 211 {
		t.Errorf("scaled cell count = %d", small[0].NumCells)
	}
	// Suite circuits generate cleanly.
	d := Generate(MMSSuite(0.2)[0])
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerate10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(Spec{Name: "bench", NumCells: 10000, NumMovableMacros: 10})
	}
}

func BenchmarkGenerate200k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(Spec{Name: "bench200k", NumCells: 200000, NumMovableMacros: 20})
	}
}

// TestGenerateNearLinear guards the generator's scaling: building 16x
// the cells must cost well under the ~256x a quadratic construction
// would. Wall-clock ratios on loaded CI machines are noisy, so the
// bound is generous (64x, i.e. O(n^1.5)) — a reintroduced quadratic
// scan (per-net maps, pairwise overlap checks) blows past it by an
// order of magnitude.
func TestGenerateNearLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	run := func(n int) time.Duration {
		best := time.Duration(1<<62 - 1)
		for trial := 0; trial < 3; trial++ {
			t0 := time.Now()
			Generate(Spec{Name: "lin", NumCells: n, Seed: 1})
			if el := time.Since(t0); el < best {
				best = el
			}
		}
		return best
	}
	run(4000) // warm-up
	small := run(12500)
	big := run(200000)
	if ratio := float64(big) / float64(small); ratio > 64 {
		t.Errorf("Generate(200000) / Generate(12500) = %.1fx, want near-linear (<= 64x); small=%v big=%v",
			ratio, small, big)
	}
}
