package synth

// The suites below mirror the structure of the paper's three benchmark
// sets at ~100x reduced cell counts (see DESIGN.md, Substitutions):
// relative circuit sizes, macro counts and the ISPD 2006 target
// densities follow the originals (Tables I-III).

// ISPD05Suite returns the eight ISPD 2005 analogs: standard cells plus
// fixed blocks, target density 1.0.
func ISPD05Suite(scale float64) []Spec {
	if scale <= 0 {
		scale = 1
	}
	s := func(name string, cells, fixedMacros int) Spec {
		return Spec{
			Name:           name,
			NumCells:       int(float64(cells) * scale),
			NumFixedMacros: fixedMacros,
			TargetDensity:  1.0,
		}
	}
	// Cell counts proportional to the paper's 211K..2177K.
	return []Spec{
		s("ADAPTEC1", 2110, 8),
		s("ADAPTEC2", 2550, 10),
		s("ADAPTEC3", 4520, 8),
		s("ADAPTEC4", 4960, 9),
		s("BIGBLUE1", 2780, 6),
		s("BIGBLUE2", 5580, 12),
		s("BIGBLUE3", 10970, 10),
		s("BIGBLUE4", 21770, 12),
	}
}

// ISPD06Suite returns the eight ISPD 2006 analogs with the contest's
// benchmark-specific target densities (Table II).
func ISPD06Suite(scale float64) []Spec {
	if scale <= 0 {
		scale = 1
	}
	s := func(name string, cells int, rhoT float64) Spec {
		return Spec{
			Name:           name,
			NumCells:       int(float64(cells) * scale),
			NumFixedMacros: 8,
			TargetDensity:  rhoT,
			Utilization:    0.45, // ISPD06 designs have ample whitespace
		}
	}
	return []Spec{
		s("ADAPTEC5", 8430, 0.5),
		s("NEWBLUE1", 3300, 0.8),
		s("NEWBLUE2", 4420, 0.9),
		s("NEWBLUE3", 4940, 0.8),
		s("NEWBLUE4", 6460, 0.5),
		s("NEWBLUE5", 12330, 0.5),
		s("NEWBLUE6", 12550, 0.8),
		s("NEWBLUE7", 25080, 0.8),
	}
}

// MMSSuite returns the sixteen MMS analogs: the same netlists with
// macros freed (movable) and fixed IO pads (Table III).
func MMSSuite(scale float64) []Spec {
	if scale <= 0 {
		scale = 1
	}
	s := func(name string, cells, paperMacros int, rhoT float64) Spec {
		// Macro counts follow the paper's (63..3748), scaled with the
		// suite and clamped so the annealer stays tractable.
		m := int(float64(paperMacros) * scale)
		if m < 4 {
			m = 4
		}
		if m > 64 {
			m = 64
		}
		// Utilization must leave headroom under the density target, as
		// the real low-rho_t circuits do (they are whitespace-rich).
		util := 0.55
		if util > rhoT-0.1 {
			util = rhoT - 0.1
		}
		return Spec{
			Name:             name,
			NumCells:         int(float64(cells) * scale),
			NumMovableMacros: m,
			TargetDensity:    rhoT,
			Utilization:      util,
		}
	}
	return []Spec{
		s("ADAPTEC1", 2110, 63, 1.0),
		s("ADAPTEC2", 2550, 127, 1.0),
		s("ADAPTEC3", 4520, 58, 1.0),
		s("ADAPTEC4", 4960, 69, 1.0),
		s("BIGBLUE1", 2780, 32, 1.0),
		s("BIGBLUE2", 5580, 959, 1.0),
		s("BIGBLUE3", 10970, 2549, 1.0),
		s("BIGBLUE4", 21770, 199, 1.0),
		s("ADAPTEC5", 8430, 76, 0.5),
		s("NEWBLUE1", 3300, 64, 0.8),
		s("NEWBLUE2", 4420, 3748, 0.9),
		s("NEWBLUE3", 4940, 51, 0.8),
		s("NEWBLUE4", 6460, 81, 0.5),
		s("NEWBLUE5", 12330, 91, 0.5),
		s("NEWBLUE6", 12550, 74, 0.8),
		s("NEWBLUE7", 25080, 161, 0.8),
	}
}
