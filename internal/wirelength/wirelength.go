// Package wirelength implements smooth wirelength models and their
// analytic gradients: the weighted-average (WA) model of Eq. (3) used by
// ePlace and the log-sum-exp (LSE) model used by the bell-shape baseline
// placers. Both approach HPWL as the smoothing parameter gamma tends to
// zero; WA from below with tighter error, LSE from above.
package wirelength

import (
	"math"

	"eplace/internal/netlist"
)

// Kind selects the smoothing model.
type Kind uint8

const (
	// WA is the weighted-average model (Eq. 3).
	WA Kind = iota
	// LSE is the log-sum-exp model.
	LSE
)

// Model evaluates smooth wirelength over one design. The cell-to-slot
// mapping is fixed at construction: gradients are produced only for the
// cells passed to New, all other cells contribute as fixed terminals.
type Model struct {
	Kind  Kind
	Gamma float64

	d    *netlist.Design
	idx  []int
	slot []int // cell index -> position in idx, or -1
	// scratch per net
	xs, ys []float64
	gx, gy []float64
	cells  []int
}

// New builds a model producing gradients for the cells in idx.
// Gamma must be positive; it can be changed between evaluations.
func New(d *netlist.Design, idx []int, gamma float64) *Model {
	m := &Model{Kind: WA, Gamma: gamma, d: d, idx: idx}
	m.slot = make([]int, len(d.Cells))
	for i := range m.slot {
		m.slot[i] = -1
	}
	for k, ci := range idx {
		m.slot[ci] = k
	}
	maxDeg := 0
	for ni := range d.Nets {
		if deg := len(d.Nets[ni].Pins); deg > maxDeg {
			maxDeg = deg
		}
	}
	m.xs = make([]float64, maxDeg)
	m.ys = make([]float64, maxDeg)
	m.gx = make([]float64, maxDeg)
	m.gy = make([]float64, maxDeg)
	m.cells = make([]int, maxDeg)
	return m
}

// Cost returns the smooth wirelength at the current positions.
func (m *Model) Cost() float64 { return m.eval(nil) }

// CostAndGradient returns the smooth wirelength and writes its gradient
// for the model's cells into grad, laid out {x_1..x_n, y_1..y_n}.
// grad is zeroed first.
func (m *Model) CostAndGradient(grad []float64) float64 {
	if len(grad) != 2*len(m.idx) {
		panic("wirelength: gradient buffer size mismatch")
	}
	for i := range grad {
		grad[i] = 0
	}
	return m.eval(grad)
}

func (m *Model) eval(grad []float64) float64 {
	d := m.d
	n := len(m.idx)
	total := 0.0
	for ni := range d.Nets {
		net := &d.Nets[ni]
		deg := len(net.Pins)
		if deg < 2 {
			continue
		}
		w := net.Weight
		if w == 0 {
			w = 1
		}
		xs, ys := m.xs[:deg], m.ys[:deg]
		for p, pi := range net.Pins {
			pos := d.PinPos(pi)
			xs[p] = pos.X
			ys[p] = pos.Y
			m.cells[p] = d.Pins[pi].Cell
		}
		var cost float64
		if grad == nil {
			cost = m.axis(xs, nil) + m.axis(ys, nil)
		} else {
			gx, gy := m.gx[:deg], m.gy[:deg]
			cost = m.axis(xs, gx) + m.axis(ys, gy)
			for p := 0; p < deg; p++ {
				ci := m.cells[p]
				if ci < 0 {
					continue
				}
				if s := m.slot[ci]; s >= 0 {
					grad[s] += w * gx[p]
					grad[s+n] += w * gy[p]
				}
			}
		}
		total += w * cost
	}
	return total
}

// axis computes the one-dimensional smooth span of the coordinates in
// xs and, when g is non-nil, writes per-pin derivatives into g.
func (m *Model) axis(xs []float64, g []float64) float64 {
	if m.Kind == LSE {
		return m.axisLSE(xs, g)
	}
	return m.axisWA(xs, g)
}

// axisWA implements the weighted-average span of Eq. (3) with the
// standard max-shift for numerical stability.
func (m *Model) axisWA(xs []float64, g []float64) float64 {
	gamma := m.Gamma
	xmax, xmin := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x > xmax {
			xmax = x
		}
		if x < xmin {
			xmin = x
		}
	}
	var sp, tp, sm, tm float64 // S+, T+, S-, T-
	for _, x := range xs {
		ep := math.Exp((x - xmax) / gamma)
		em := math.Exp((xmin - x) / gamma)
		sp += ep
		tp += x * ep
		sm += em
		tm += x * em
	}
	span := tp/sp - tm/sm
	if g != nil {
		for p, x := range xs {
			ep := math.Exp((x - xmax) / gamma)
			em := math.Exp((xmin - x) / gamma)
			// d(T+/S+)/dx = e^{x/g} [ S+ (1 + x/g) - T+/g ] / S+^2
			dmax := ep * (sp*(1+x/gamma) - tp/gamma) / (sp * sp)
			// d(T-/S-)/dx = e^{-x/g} [ S- (1 - x/g) + T-/g ] / S-^2
			dmin := em * (sm*(1-x/gamma) + tm/gamma) / (sm * sm)
			g[p] = dmax - dmin
		}
	}
	return span
}

// axisLSE implements gamma*(log sum exp(x/gamma) + log sum exp(-x/gamma)).
func (m *Model) axisLSE(xs []float64, g []float64) float64 {
	gamma := m.Gamma
	xmax, xmin := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x > xmax {
			xmax = x
		}
		if x < xmin {
			xmin = x
		}
	}
	var sp, sm float64
	for _, x := range xs {
		sp += math.Exp((x - xmax) / gamma)
		sm += math.Exp((xmin - x) / gamma)
	}
	cost := gamma*(math.Log(sp)+math.Log(sm)) + (xmax - xmin)
	if g != nil {
		for p, x := range xs {
			g[p] = math.Exp((x-xmax)/gamma)/sp - math.Exp((xmin-x)/gamma)/sm
		}
	}
	return cost
}

// HPWL returns the exact half-perimeter wirelength of the design.
func (m *Model) HPWL() float64 { return m.d.HPWL() }
