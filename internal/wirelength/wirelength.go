// Package wirelength implements smooth wirelength models and their
// analytic gradients: the weighted-average (WA) model of Eq. (3) used by
// ePlace and the log-sum-exp (LSE) model used by the bell-shape baseline
// placers. Both approach HPWL as the smoothing parameter gamma tends to
// zero; WA from below with tighter error, LSE from above.
package wirelength

import (
	"math"

	"eplace/internal/netlist"
	"eplace/internal/parallel"
)

// Kind selects the smoothing model.
type Kind uint8

const (
	// WA is the weighted-average model (Eq. 3).
	WA Kind = iota
	// LSE is the log-sum-exp model.
	LSE
)

// Model evaluates smooth wirelength over one design. The cell-to-slot
// mapping is fixed at construction: gradients are produced only for the
// cells passed to New, all other cells contribute as fixed terminals.
//
// Concurrency contract: a Model is NOT safe for concurrent use by
// multiple goroutines — evaluations share internal reduction state
// (per-net costs, per-pin gradient contributions). Parallelism is
// internal: set Workers and call Cost/CostAndGradient from one
// goroutine. The design's net/pin topology must not change after New
// (net weights may change between evaluations; Gamma and Kind too).
type Model struct {
	Kind  Kind
	Gamma float64
	// Workers is the number of shards used for net evaluation and
	// gradient scatter; <= 0 selects all cores (GOMAXPROCS). Results
	// are bitwise-identical for every worker count: per-net terms are
	// computed independently and reduced in a fixed (net, pin) order
	// that matches the serial loop exactly.
	Workers int

	d    *netlist.Design
	idx  []int
	slot []int // cell index -> position in idx, or -1

	// Deterministic reduction state (see eval). costs holds each net's
	// weighted smooth cost; pinGX/pinGY hold each pin's weighted
	// gradient contribution, written by exactly one worker (the one
	// owning the pin's net). adjPin lists, for model cell k, the pins
	// adjPin[adjOff[k]:adjOff[k+1]] that contribute to its gradient,
	// sorted by (net index, position within the net) — the exact order
	// the serial scatter visits them, so the left-to-right fold per
	// cell reproduces the serial sum bit for bit.
	costs  []float64
	pinGX  []float64
	pinGY  []float64
	adjOff []int
	adjPin []int

	maxDeg int
	scr    []*netScratch // per-worker scratch, grown on demand
}

// netScratch is one worker's per-net buffers.
type netScratch struct {
	xs, ys, gx, gy []float64
}

// New builds a model producing gradients for the cells in idx.
// Gamma must be positive; it can be changed between evaluations.
func New(d *netlist.Design, idx []int, gamma float64) *Model {
	m := &Model{Kind: WA, Gamma: gamma, d: d, idx: idx}
	m.slot = make([]int, len(d.Cells))
	for i := range m.slot {
		m.slot[i] = -1
	}
	for k, ci := range idx {
		m.slot[ci] = k
	}
	for ni := range d.Nets {
		if deg := len(d.Nets[ni].Pins); deg > m.maxDeg {
			m.maxDeg = deg
		}
	}
	m.costs = make([]float64, len(d.Nets))
	m.pinGX = make([]float64, len(d.Pins))
	m.pinGY = make([]float64, len(d.Pins))
	m.buildAdjacency()
	return m
}

// buildAdjacency precomputes, for every model cell, its gradient-
// contributing pins in serial scatter order (net index ascending, then
// pin position within the net). Pins on degree<2 nets never contribute
// and are excluded, as are pins of fixed terminals.
func (m *Model) buildAdjacency() {
	d := m.d
	n := len(m.idx)
	counts := make([]int, n)
	forEach := func(visit func(slot, pi int)) {
		for ni := range d.Nets {
			net := &d.Nets[ni]
			if len(net.Pins) < 2 {
				continue
			}
			for _, pi := range net.Pins {
				ci := d.Pins[pi].Cell
				if ci < 0 {
					continue
				}
				if s := m.slot[ci]; s >= 0 {
					visit(s, pi)
				}
			}
		}
	}
	forEach(func(s, pi int) { counts[s]++ })
	m.adjOff = make([]int, n+1)
	for k, c := range counts {
		m.adjOff[k+1] = m.adjOff[k] + c
	}
	m.adjPin = make([]int, m.adjOff[n])
	cursor := append([]int(nil), m.adjOff[:n]...)
	forEach(func(s, pi int) {
		m.adjPin[cursor[s]] = pi
		cursor[s]++
	})
}

// grow ensures per-worker scratch exists for workers shards.
func (m *Model) grow(workers int) {
	for len(m.scr) < workers {
		m.scr = append(m.scr, &netScratch{
			xs: make([]float64, m.maxDeg),
			ys: make([]float64, m.maxDeg),
			gx: make([]float64, m.maxDeg),
			gy: make([]float64, m.maxDeg),
		})
	}
}

// Cost returns the smooth wirelength at the current positions.
func (m *Model) Cost() float64 { return m.eval(nil) }

// CostAndGradient returns the smooth wirelength and writes its gradient
// for the model's cells into grad, laid out {x_1..x_n, y_1..y_n}.
// grad is zeroed first.
func (m *Model) CostAndGradient(grad []float64) float64 {
	if len(grad) != 2*len(m.idx) {
		panic("wirelength: gradient buffer size mismatch")
	}
	for i := range grad {
		grad[i] = 0
	}
	return m.eval(grad)
}

// eval runs the three-phase parallel pipeline. Phase 1 shards the nets:
// each worker evaluates its nets' smooth spans into m.costs and (when
// grad != nil) each pin's weighted derivative into m.pinGX/m.pinGY —
// every write is owned by exactly one worker, so there is no shared
// accumulator. Phase 2 folds the per-net costs in net order on the
// calling goroutine. Phase 3 shards the model cells: each cell's
// gradient is the left-to-right fold of its adjacency contributions.
// Both reductions use a fixed order and association independent of the
// worker count, so every Workers setting produces bitwise-identical
// results — including Workers=1, which reproduces the original serial
// loop exactly.
func (m *Model) eval(grad []float64) float64 {
	d := m.d
	workers := parallel.Count(m.Workers)
	m.grow(workers)

	parallel.For(workers, len(d.Nets), func(wk, lo, hi int) {
		s := m.scr[wk]
		for ni := lo; ni < hi; ni++ {
			net := &d.Nets[ni]
			deg := len(net.Pins)
			if deg < 2 {
				m.costs[ni] = 0
				continue
			}
			w := net.EffWeight()
			xs, ys := s.xs[:deg], s.ys[:deg]
			for p, pi := range net.Pins {
				pos := d.PinPos(pi)
				xs[p] = pos.X
				ys[p] = pos.Y
			}
			var cost float64
			if grad == nil {
				cost = m.axis(xs, nil) + m.axis(ys, nil)
			} else {
				gx, gy := s.gx[:deg], s.gy[:deg]
				cost = m.axis(xs, gx) + m.axis(ys, gy)
				for p, pi := range net.Pins {
					m.pinGX[pi] = w * gx[p]
					m.pinGY[pi] = w * gy[p]
				}
			}
			m.costs[ni] = w * cost
		}
	})

	total := 0.0
	for ni := range d.Nets {
		if len(d.Nets[ni].Pins) >= 2 {
			total += m.costs[ni]
		}
	}

	if grad != nil {
		n := len(m.idx)
		parallel.For(workers, n, func(_, lo, hi int) {
			for k := lo; k < hi; k++ {
				var gx, gy float64
				for _, pi := range m.adjPin[m.adjOff[k]:m.adjOff[k+1]] {
					gx += m.pinGX[pi]
					gy += m.pinGY[pi]
				}
				grad[k] = gx
				grad[k+n] = gy
			}
		})
	}
	return total
}

// axis computes the one-dimensional smooth span of the coordinates in
// xs and, when g is non-nil, writes per-pin derivatives into g. It
// reads only Kind and Gamma and is safe to call from worker goroutines.
func (m *Model) axis(xs []float64, g []float64) float64 {
	if m.Kind == LSE {
		return m.axisLSE(xs, g)
	}
	return m.axisWA(xs, g)
}

// axisWA implements the weighted-average span of Eq. (3) with the
// standard max-shift for numerical stability.
func (m *Model) axisWA(xs []float64, g []float64) float64 {
	gamma := m.Gamma
	xmax, xmin := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x > xmax {
			xmax = x
		}
		if x < xmin {
			xmin = x
		}
	}
	var sp, tp, sm, tm float64 // S+, T+, S-, T-
	for _, x := range xs {
		ep := math.Exp((x - xmax) / gamma)
		em := math.Exp((xmin - x) / gamma)
		sp += ep
		tp += x * ep
		sm += em
		tm += x * em
	}
	span := tp/sp - tm/sm
	if g != nil {
		for p, x := range xs {
			ep := math.Exp((x - xmax) / gamma)
			em := math.Exp((xmin - x) / gamma)
			// d(T+/S+)/dx = e^{x/g} [ S+ (1 + x/g) - T+/g ] / S+^2
			dmax := ep * (sp*(1+x/gamma) - tp/gamma) / (sp * sp)
			// d(T-/S-)/dx = e^{-x/g} [ S- (1 - x/g) + T-/g ] / S-^2
			dmin := em * (sm*(1-x/gamma) + tm/gamma) / (sm * sm)
			g[p] = dmax - dmin
		}
	}
	return span
}

// axisLSE implements gamma*(log sum exp(x/gamma) + log sum exp(-x/gamma)).
func (m *Model) axisLSE(xs []float64, g []float64) float64 {
	gamma := m.Gamma
	xmax, xmin := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x > xmax {
			xmax = x
		}
		if x < xmin {
			xmin = x
		}
	}
	var sp, sm float64
	for _, x := range xs {
		sp += math.Exp((x - xmax) / gamma)
		sm += math.Exp((xmin - x) / gamma)
	}
	cost := gamma*(math.Log(sp)+math.Log(sm)) + (xmax - xmin)
	if g != nil {
		for p, x := range xs {
			g[p] = math.Exp((x-xmax)/gamma)/sp - math.Exp((xmin-x)/gamma)/sm
		}
	}
	return cost
}

// HPWL returns the exact half-perimeter wirelength of the design.
func (m *Model) HPWL() float64 { return m.d.HPWL() }
