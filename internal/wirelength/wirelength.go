// Package wirelength implements smooth wirelength models and their
// analytic gradients: the weighted-average (WA) model of Eq. (3) used by
// ePlace and the log-sum-exp (LSE) model used by the bell-shape baseline
// placers. Both approach HPWL as the smoothing parameter gamma tends to
// zero; WA from below with tighter error, LSE from above.
//
// Evaluation runs on the compiled CSR view of the design
// (netlist.Compiled): flat int32 net->pin arrays, SoA pin offsets and a
// shared SoA position vector, walked by a fused kernel that computes
// each net's pin positions, min/max, exponentials, partial sums and —
// reusing the cached exponentials — the per-pin derivatives in a single
// sweep. That halves the math.Exp calls of the classic
// cost-loop-then-gradient-loop formulation and removes every
// Net -> Pin -> Cell pointer chase from the hot path.
package wirelength

import (
	"math"
	"sort"

	"eplace/internal/netlist"
	"eplace/internal/parallel"
)

// Kind selects the smoothing model.
type Kind uint8

const (
	// WA is the weighted-average model (Eq. 3).
	WA Kind = iota
	// LSE is the log-sum-exp model.
	LSE
)

// evalTasks is the fixed number of net (and cell) tasks the evaluation
// shards into. Task boundaries are precomputed from the pin-count
// prefix sum — balanced pin work per task, not balanced net counts —
// and do not depend on the worker count, so the work decomposition is
// identical for every Workers setting.
const evalTasks = 64

// Model evaluates smooth wirelength over one design. The cell-to-slot
// mapping is fixed at construction: gradients are produced only for the
// cells passed to New, all other cells contribute as fixed terminals.
//
// Concurrency contract: a Model is NOT safe for concurrent use by
// multiple goroutines — evaluations share internal reduction state
// (per-net costs, per-pin gradient contributions). Parallelism is
// internal: set Workers and call Cost/CostAndGradient from one
// goroutine. The design's net/pin topology must not change after New
// (net weights may change between evaluations; Gamma and Kind too).
//
// Allocation contract: after the first evaluation at a given worker
// count, Cost and CostAndGradient allocate nothing at Workers <= 1 and
// only goroutine-spawn bookkeeping beyond that — the evaluation state
// lives in buffers sized at construction.
type Model struct {
	Kind  Kind
	Gamma float64
	// Workers is the number of workers for net evaluation and gradient
	// scatter; <= 0 selects all cores (GOMAXPROCS). Results are
	// bitwise-identical for every worker count: per-net terms are
	// computed independently and reduced in a fixed (net, pin) order
	// that matches the serial loop exactly.
	Workers int

	d       *netlist.Design
	cv      *netlist.Compiled
	ownView bool // true when the model compiled cv itself and must re-sync
	idx     []int
	slot    []int // cell index -> position in idx, or -1

	// Deterministic reduction state (see eval). costs holds each net's
	// weighted smooth cost; pinGX/pinGY hold each CSR pin slot's
	// weighted gradient contribution, written by exactly one worker (the
	// one owning the slot's net task). adjSlot lists, for model cell k,
	// the CSR slots adjSlot[adjOff[k]:adjOff[k+1]] that contribute to
	// its gradient in ascending slot order — which IS (net index,
	// position within the net) order, the exact order the serial scatter
	// visits them, so the left-to-right fold per cell reproduces the
	// serial sum bit for bit.
	costs   []float64
	pinGX   []float64
	pinGY   []float64
	adjOff  []int32
	adjSlot []int32

	// Fixed task boundaries: netTaskOff[t]..netTaskOff[t+1] are the nets
	// of task t (pin-balanced via the NetOff prefix sum), cellTaskOff
	// likewise for the gradient scatter (adjacency-balanced).
	netTaskOff  []int32
	cellTaskOff []int32

	maxDeg int
	scr    []*netScratch // per-worker scratch, grown on demand

	// grad is the gradient destination for the current eval (nil for
	// cost-only); netTask/cellTask are the persistent worker closures,
	// built once so repeated evaluations allocate nothing.
	grad     []float64
	netTask  func(wk, lo, hi int)
	cellTask func(wk, lo, hi int)
}

// netScratch is one worker's per-net buffers: pin coordinates for one
// axis pair and the cached e^+ / e^- exponentials the fused kernel
// shares between the span sums and the derivative pass.
type netScratch struct {
	xs, ys, ep, em []float64
}

// New builds a model producing gradients for the cells in idx, backed
// by a private compiled view of d that re-syncs from the Cell structs
// on every evaluation. Gamma must be positive; it can be changed
// between evaluations.
func New(d *netlist.Design, idx []int, gamma float64) *Model {
	return newModel(d.Compile(), idx, gamma, true)
}

// NewCompiled builds a model over a caller-owned compiled view. The
// caller is responsible for keeping the view's positions (and, if they
// change, net weights) current — the engine writes them once per
// iteration via Compiled.SetPositions instead of paying a full
// struct-to-SoA sync per kernel call.
func NewCompiled(cv *netlist.Compiled, idx []int, gamma float64) *Model {
	return newModel(cv, idx, gamma, false)
}

func newModel(cv *netlist.Compiled, idx []int, gamma float64, ownView bool) *Model {
	d := cv.Design()
	m := &Model{Kind: WA, Gamma: gamma, d: d, cv: cv, idx: idx, ownView: ownView}
	m.slot = make([]int, len(d.Cells))
	for i := range m.slot {
		m.slot[i] = -1
	}
	for k, ci := range idx {
		m.slot[ci] = k
	}
	for ni := range d.Nets {
		if deg := int(cv.NetOff[ni+1] - cv.NetOff[ni]); deg > m.maxDeg {
			m.maxDeg = deg
		}
	}
	m.costs = make([]float64, len(d.Nets))
	m.pinGX = make([]float64, cv.NumPinSlots())
	m.pinGY = make([]float64, cv.NumPinSlots())
	m.buildAdjacency()
	m.netTaskOff = balancedTasks(cv.NetOff, len(d.Nets))
	m.cellTaskOff = balancedTasks(m.adjOff, len(idx))
	m.netTask = func(wk, lo, hi int) {
		s := m.scr[wk]
		for t := lo; t < hi; t++ {
			for ni := int(m.netTaskOff[t]); ni < int(m.netTaskOff[t+1]); ni++ {
				m.evalNet(ni, s)
			}
		}
	}
	m.cellTask = func(_, lo, hi int) {
		n := len(m.idx)
		grad := m.grad
		for t := lo; t < hi; t++ {
			for k := int(m.cellTaskOff[t]); k < int(m.cellTaskOff[t+1]); k++ {
				var gx, gy float64
				for _, s := range m.adjSlot[m.adjOff[k]:m.adjOff[k+1]] {
					gx += m.pinGX[s]
					gy += m.pinGY[s]
				}
				grad[k] = gx
				grad[k+n] = gy
			}
		}
	}
	return m
}

// balancedTasks splits count items into at most evalTasks contiguous
// tasks whose boundaries equalize the prefix-sum weight off (off has
// length count+1; for nets that is the pin count, for cells the
// adjacency length). The boundaries depend only on the topology, never
// on the worker count.
func balancedTasks(off []int32, count int) []int32 {
	nT := evalTasks
	if nT > count {
		nT = count
	}
	b := make([]int32, nT+1)
	if nT == 0 {
		return b
	}
	total := int(off[count])
	b[nT] = int32(count)
	for t := 1; t < nT; t++ {
		target := int32(total * t / nT)
		i := sort.Search(count, func(i int) bool { return off[i] >= target })
		if i < int(b[t-1]) {
			i = int(b[t-1])
		}
		b[t] = int32(i)
	}
	return b
}

// buildAdjacency precomputes, for every model cell, its gradient-
// contributing CSR pin slots in ascending slot order (net index
// ascending, then pin position within the net) — the serial scatter
// order. Pins on degree<2 nets never contribute and are excluded, as
// are pins of floating terminals and non-model cells.
func (m *Model) buildAdjacency() {
	cv := m.cv
	n := len(m.idx)
	counts := make([]int32, n)
	forEach := func(visit func(slot int, s int32)) {
		for ni := 0; ni < len(cv.NetOff)-1; ni++ {
			o0, o1 := cv.NetOff[ni], cv.NetOff[ni+1]
			if o1-o0 < 2 {
				continue
			}
			for s := o0; s < o1; s++ {
				ci := cv.PinCell[s]
				if ci < 0 {
					continue
				}
				if k := m.slot[ci]; k >= 0 {
					visit(k, s)
				}
			}
		}
	}
	forEach(func(k int, s int32) { counts[k]++ })
	m.adjOff = make([]int32, n+1)
	for k, c := range counts {
		m.adjOff[k+1] = m.adjOff[k] + c
	}
	m.adjSlot = make([]int32, m.adjOff[n])
	cursor := append([]int32(nil), m.adjOff[:n]...)
	forEach(func(k int, s int32) {
		m.adjSlot[cursor[k]] = s
		cursor[k]++
	})
}

// grow ensures per-worker scratch exists for workers shards.
func (m *Model) grow(workers int) {
	for len(m.scr) < workers {
		m.scr = append(m.scr, &netScratch{
			xs: make([]float64, m.maxDeg),
			ys: make([]float64, m.maxDeg),
			ep: make([]float64, m.maxDeg),
			em: make([]float64, m.maxDeg),
		})
	}
}

// Cost returns the smooth wirelength at the current positions.
func (m *Model) Cost() float64 { return m.eval(nil) }

// CostAndGradient returns the smooth wirelength and writes its gradient
// for the model's cells into grad, laid out {x_1..x_n, y_1..y_n}.
// grad is not read: eval assigns every element unconditionally (the
// scatter phase owns the full vector), so no zeroing pass is needed.
func (m *Model) CostAndGradient(grad []float64) float64 {
	if len(grad) != 2*len(m.idx) {
		panic("wirelength: gradient buffer size mismatch")
	}
	return m.eval(grad)
}

// eval runs the three-phase parallel pipeline over the compiled view.
// Phase 1 shards the fixed pin-balanced net tasks: each worker runs the
// fused per-net kernel (evalNet), writing its nets' smooth costs into
// m.costs and (when grad != nil) each CSR pin slot's weighted
// derivative into m.pinGX/m.pinGY — every write is owned by exactly one
// worker, so there is no shared accumulator. Phase 2 folds the per-net
// costs in net order on the calling goroutine. Phase 3 shards the model
// cells (adjacency-balanced tasks): each cell's gradient is the
// left-to-right fold of its adjacency contributions, assigned (never
// accumulated) into grad.
//
// Invariant: with grad != nil every element of grad is assigned exactly
// once per eval, so callers never need to zero it. Both reductions use
// a fixed order and association independent of the worker count, so
// every Workers setting produces bitwise-identical results — including
// Workers=1, which reproduces the original serial loop exactly.
func (m *Model) eval(grad []float64) float64 {
	if m.ownView {
		m.cv.SyncGeometry()
		m.cv.SyncNetWeights()
	}
	workers := parallel.Count(m.Workers)
	m.grow(workers)
	m.grad = grad

	parallel.For(workers, len(m.netTaskOff)-1, m.netTask)

	total := 0.0
	cv := m.cv
	for ni := 0; ni < len(m.costs); ni++ {
		if cv.NetOff[ni+1]-cv.NetOff[ni] >= 2 {
			total += m.costs[ni]
		}
	}

	if grad != nil {
		parallel.For(workers, len(m.cellTaskOff)-1, m.cellTask)
	}
	m.grad = nil
	return total
}

// evalNet is the fused per-net kernel: one sweep gathers the pin
// positions from the SoA arrays and tracks min/max per axis, then each
// axis computes its exponentials ONCE — caching e^+ / e^- in the worker
// scratch — and derives both the smooth span and, when a gradient is
// requested, every pin's weighted derivative from the cached values.
// The arithmetic matches the reference axisWA/axisLSE expressions
// operation for operation, so results are bitwise-identical to the
// unfused pointer-based evaluation.
func (m *Model) evalNet(ni int, s *netScratch) {
	cv := m.cv
	o0, o1 := int(cv.NetOff[ni]), int(cv.NetOff[ni+1])
	deg := o1 - o0
	if deg < 2 {
		m.costs[ni] = 0
		return
	}
	w := cv.NetW[ni]
	pinCell, pinOx, pinOy := cv.PinCell, cv.PinOx, cv.PinOy
	posX, posY := cv.PosX, cv.PosY
	xs, ys := s.xs[:deg], s.ys[:deg]
	x, y := pinOx[o0], pinOy[o0]
	if ci := pinCell[o0]; ci >= 0 {
		x += posX[ci]
		y += posY[ci]
	}
	xs[0], ys[0] = x, y
	xmin, xmax, ymin, ymax := x, x, y, y
	for p := 1; p < deg; p++ {
		sl := o0 + p
		x, y = pinOx[sl], pinOy[sl]
		if ci := pinCell[sl]; ci >= 0 {
			x += posX[ci]
			y += posY[ci]
		}
		xs[p], ys[p] = x, y
		if x > xmax {
			xmax = x
		}
		if x < xmin {
			xmin = x
		}
		if y > ymax {
			ymax = y
		}
		if y < ymin {
			ymin = y
		}
	}
	var cost float64
	if m.Kind == LSE {
		cost = m.fusedLSE(xs, xmin, xmax, s, m.pinGX, o0, w) +
			m.fusedLSE(ys, ymin, ymax, s, m.pinGY, o0, w)
	} else {
		cost = m.fusedWA(xs, xmin, xmax, s, m.pinGX, o0, w) +
			m.fusedWA(ys, ymin, ymax, s, m.pinGY, o0, w)
	}
	m.costs[ni] = w * cost
}

// fusedWA computes the weighted-average span of Eq. (3) for one axis
// with the standard max-shift, and when a gradient is requested writes
// each pin's weighted derivative into gOut[o0+p], reusing the cached
// exponentials instead of recomputing them.
func (m *Model) fusedWA(xs []float64, xmin, xmax float64, s *netScratch, gOut []float64, o0 int, w float64) float64 {
	gamma := m.Gamma
	var sp, tp, sm, tm float64 // S+, T+, S-, T-
	if m.grad == nil {
		for _, x := range xs {
			ep := math.Exp((x - xmax) / gamma)
			em := math.Exp((xmin - x) / gamma)
			sp += ep
			tp += x * ep
			sm += em
			tm += x * em
		}
		return tp/sp - tm/sm
	}
	ep, em := s.ep[:len(xs)], s.em[:len(xs)]
	for p, x := range xs {
		e1 := math.Exp((x - xmax) / gamma)
		e2 := math.Exp((xmin - x) / gamma)
		ep[p], em[p] = e1, e2
		sp += e1
		tp += x * e1
		sm += e2
		tm += x * e2
	}
	span := tp/sp - tm/sm
	// The per-pin divisions tp/gamma, tm/gamma and products sp*sp, sm*sm
	// are loop-invariant; hoisting them produces the same bits as
	// recomputing them per pin (each IEEE op is deterministic), so the
	// result still matches the reference expression exactly.
	tpg, tmg := tp/gamma, tm/gamma
	sp2, sm2 := sp*sp, sm*sm
	for p, x := range xs {
		// d(T+/S+)/dx = e^{x/g} [ S+ (1 + x/g) - T+/g ] / S+^2
		dmax := ep[p] * (sp*(1+x/gamma) - tpg) / sp2
		// d(T-/S-)/dx = e^{-x/g} [ S- (1 - x/g) + T-/g ] / S-^2
		dmin := em[p] * (sm*(1-x/gamma) + tmg) / sm2
		gOut[o0+p] = w * (dmax - dmin)
	}
	return span
}

// fusedLSE computes gamma*(log sum exp(x/gamma) + log sum exp(-x/gamma))
// for one axis with cached exponentials, mirroring fusedWA's structure.
func (m *Model) fusedLSE(xs []float64, xmin, xmax float64, s *netScratch, gOut []float64, o0 int, w float64) float64 {
	gamma := m.Gamma
	var sp, sm float64
	if m.grad == nil {
		for _, x := range xs {
			sp += math.Exp((x - xmax) / gamma)
			sm += math.Exp((xmin - x) / gamma)
		}
		return gamma*(math.Log(sp)+math.Log(sm)) + (xmax - xmin)
	}
	ep, em := s.ep[:len(xs)], s.em[:len(xs)]
	for p, x := range xs {
		e1 := math.Exp((x - xmax) / gamma)
		e2 := math.Exp((xmin - x) / gamma)
		ep[p], em[p] = e1, e2
		sp += e1
		sm += e2
	}
	cost := gamma*(math.Log(sp)+math.Log(sm)) + (xmax - xmin)
	for p := range xs {
		gOut[o0+p] = w * (ep[p]/sp - em[p]/sm)
	}
	return cost
}

// axis computes the one-dimensional smooth span of the coordinates in
// xs and, when g is non-nil, writes per-pin derivatives into g. It is
// the unfused REFERENCE implementation the equivalence tests compare
// the fused kernel against; the hot path no longer calls it.
func (m *Model) axis(xs []float64, g []float64) float64 {
	if m.Kind == LSE {
		return m.axisLSE(xs, g)
	}
	return m.axisWA(xs, g)
}

// axisWA implements the weighted-average span of Eq. (3) with the
// standard max-shift for numerical stability (reference path).
func (m *Model) axisWA(xs []float64, g []float64) float64 {
	gamma := m.Gamma
	xmax, xmin := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x > xmax {
			xmax = x
		}
		if x < xmin {
			xmin = x
		}
	}
	var sp, tp, sm, tm float64 // S+, T+, S-, T-
	for _, x := range xs {
		ep := math.Exp((x - xmax) / gamma)
		em := math.Exp((xmin - x) / gamma)
		sp += ep
		tp += x * ep
		sm += em
		tm += x * em
	}
	span := tp/sp - tm/sm
	if g != nil {
		for p, x := range xs {
			ep := math.Exp((x - xmax) / gamma)
			em := math.Exp((xmin - x) / gamma)
			dmax := ep * (sp*(1+x/gamma) - tp/gamma) / (sp * sp)
			dmin := em * (sm*(1-x/gamma) + tm/gamma) / (sm * sm)
			g[p] = dmax - dmin
		}
	}
	return span
}

// axisLSE implements gamma*(log sum exp(x/gamma) + log sum exp(-x/gamma))
// (reference path).
func (m *Model) axisLSE(xs []float64, g []float64) float64 {
	gamma := m.Gamma
	xmax, xmin := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x > xmax {
			xmax = x
		}
		if x < xmin {
			xmin = x
		}
	}
	var sp, sm float64
	for _, x := range xs {
		sp += math.Exp((x - xmax) / gamma)
		sm += math.Exp((xmin - x) / gamma)
	}
	cost := gamma*(math.Log(sp)+math.Log(sm)) + (xmax - xmin)
	if g != nil {
		for p, x := range xs {
			g[p] = math.Exp((x-xmax)/gamma)/sp - math.Exp((xmin-x)/gamma)/sm
		}
	}
	return cost
}

// HPWL returns the exact half-perimeter wirelength of the design.
func (m *Model) HPWL() float64 { return m.d.HPWL() }
