package wirelength

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"eplace/internal/netlist"
	"eplace/internal/synth"
)

// serialReference reproduces the original single-goroutine eval loop
// (shared scratch, direct scatter) exactly as shipped in the seed tree.
// The parallel pipeline must match it bit for bit at every worker count.
func serialReference(m *Model, grad []float64) float64 {
	d := m.d
	n := len(m.idx)
	if grad != nil {
		for i := range grad {
			grad[i] = 0
		}
	}
	xs := make([]float64, m.maxDeg)
	ys := make([]float64, m.maxDeg)
	gx := make([]float64, m.maxDeg)
	gy := make([]float64, m.maxDeg)
	cells := make([]int, m.maxDeg)
	total := 0.0
	for ni := range d.Nets {
		net := &d.Nets[ni]
		deg := len(net.Pins)
		if deg < 2 {
			continue
		}
		w := net.Weight
		if w == 0 {
			w = 1
		}
		axs, ays := xs[:deg], ys[:deg]
		for p, pi := range net.Pins {
			pos := d.PinPos(pi)
			axs[p] = pos.X
			ays[p] = pos.Y
			cells[p] = d.Pins[pi].Cell
		}
		var cost float64
		if grad == nil {
			cost = m.axis(axs, nil) + m.axis(ays, nil)
		} else {
			agx, agy := gx[:deg], gy[:deg]
			cost = m.axis(axs, agx) + m.axis(ays, agy)
			for p := 0; p < deg; p++ {
				ci := cells[p]
				if ci < 0 {
					continue
				}
				if s := m.slot[ci]; s >= 0 {
					grad[s] += w * agx[p]
					grad[s+n] += w * agy[p]
				}
			}
		}
		total += w * cost
	}
	return total
}

func workerCounts() []int {
	counts := []int{1, 2, 7, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		counts = append(counts, 4) // still exercise the sharded path
	}
	return counts
}

// TestEvalParallelEquivalence asserts bitwise-identical cost and
// gradient across worker counts and against the seed serial loop, for
// both smoothing models.
func TestEvalParallelEquivalence(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "wl-par", NumCells: 1500, NumMovableMacros: 3})
	idx := d.Movable()
	for _, kind := range []Kind{WA, LSE} {
		m := New(d, idx, 4.2)
		m.Kind = kind
		refGrad := make([]float64, 2*len(idx))
		refCost := serialReference(m, refGrad)
		refCostOnly := serialReference(m, nil)

		grad := make([]float64, 2*len(idx))
		for _, workers := range workerCounts() {
			m.Workers = workers
			cost := m.CostAndGradient(grad)
			if math.Float64bits(cost) != math.Float64bits(refCost) {
				t.Fatalf("kind=%d workers=%d: cost %x != serial %x", kind, workers,
					math.Float64bits(cost), math.Float64bits(refCost))
			}
			for i := range grad {
				if math.Float64bits(grad[i]) != math.Float64bits(refGrad[i]) {
					t.Fatalf("kind=%d workers=%d: grad[%d] = %v (%x), serial %v (%x)",
						kind, workers, i, grad[i], math.Float64bits(grad[i]),
						refGrad[i], math.Float64bits(refGrad[i]))
				}
			}
			if co := m.Cost(); math.Float64bits(co) != math.Float64bits(refCostOnly) {
				t.Fatalf("kind=%d workers=%d: cost-only %x != serial %x", kind, workers,
					math.Float64bits(co), math.Float64bits(refCostOnly))
			}
		}
	}
}

// TestGradientFiniteDifferenceParallel checks the sharded gradient
// against central finite differences while the evaluation fans out over
// multiple workers; running it under -race exercises the pipeline's
// write ownership.
func TestGradientFiniteDifferenceParallel(t *testing.T) {
	d, idx := randomDesign(40, 7)
	m := New(d, idx, 2.0)
	m.Workers = 4
	n := len(idx)
	grad := make([]float64, 2*n)
	m.CostAndGradient(grad)

	v := d.Positions(idx)
	h := 1e-6
	for _, k := range []int{0, 3, n - 1, n, n + 5, 2*n - 1} {
		orig := v[k]
		v[k] = orig + h
		d.SetPositions(idx, v)
		up := m.Cost()
		v[k] = orig - h
		d.SetPositions(idx, v)
		dn := m.Cost()
		v[k] = orig
		d.SetPositions(idx, v)
		fd := (up - dn) / (2 * h)
		if diff := math.Abs(fd - grad[k]); diff > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("grad[%d] = %v, finite difference %v", k, grad[k], fd)
		}
	}
}

// TestZeroWeightNetScoresIdentically locks the EffWeight contract: a
// zero-weight net (unweighted input) must score exactly like weight 1
// in both the exact HPWL metric and the smooth model, so the two can
// never drift.
func TestZeroWeightNetScoresIdentically(t *testing.T) {
	build := func(w float64) (*netlist.Design, []int) {
		d, idx := randomDesign(20, 11)
		ni := d.AddNet("probe", w)
		d.Connect(idx[2], ni, 0, 0)
		d.Connect(idx[9], ni, 0.5, -0.5)
		d.Connect(idx[15], ni, -0.5, 0.5)
		return d, idx
	}
	d0, idx0 := build(0)
	d1, idx1 := build(1)

	if h0, h1 := d0.HPWL(), d1.HPWL(); math.Float64bits(h0) != math.Float64bits(h1) {
		t.Fatalf("HPWL differs: weight0 %v, weight1 %v", h0, h1)
	}
	m0 := New(d0, idx0, 1.5)
	m1 := New(d1, idx1, 1.5)
	g0 := make([]float64, 2*len(idx0))
	g1 := make([]float64, 2*len(idx1))
	c0 := m0.CostAndGradient(g0)
	c1 := m1.CostAndGradient(g1)
	if math.Float64bits(c0) != math.Float64bits(c1) {
		t.Fatalf("smooth cost differs: weight0 %v, weight1 %v", c0, c1)
	}
	for i := range g0 {
		if math.Float64bits(g0[i]) != math.Float64bits(g1[i]) {
			t.Fatalf("gradient[%d] differs: weight0 %v, weight1 %v", i, g0[i], g1[i])
		}
	}
}

// BenchmarkWAGradient measures one WA cost+gradient evaluation on a
// >=10K-cell synthetic design across worker counts (acceptance: >=2x at
// 4+ cores vs workers-1 on multi-core hardware).
func BenchmarkWAGradient(b *testing.B) {
	d := synth.Generate(synth.Spec{Name: "wl-bench", NumCells: 12000, NumMovableMacros: 8})
	idx := d.Movable()
	m := New(d, idx, 3.0)
	grad := make([]float64, 2*len(idx))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			m.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.CostAndGradient(grad)
			}
		})
	}
}
