package wirelength

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eplace/internal/geom"
	"eplace/internal/netlist"
)

// designFromSeed builds a small random design deterministically.
func designFromSeed(seed int64) (*netlist.Design, []int) {
	rng := rand.New(rand.NewSource(seed))
	d := netlist.New("q", geom.Rect{Hx: 50, Hy: 50})
	n := 3 + rng.Intn(10)
	var idx []int
	for i := 0; i < n; i++ {
		idx = append(idx, d.AddCell(netlist.Cell{
			W: 1, H: 1, X: rng.Float64() * 50, Y: rng.Float64() * 50,
		}))
	}
	nets := 1 + rng.Intn(5)
	for k := 0; k < nets; k++ {
		ni := d.AddNet("", 1)
		deg := 2 + rng.Intn(4)
		for p := 0; p < deg; p++ {
			d.Connect(idx[rng.Intn(n)], ni, 0, 0)
		}
	}
	return d, idx
}

// Property: WA never exceeds HPWL, LSE never falls below it, and both
// bracket it for every random design and smoothing parameter.
func TestQuickSandwichProperty(t *testing.T) {
	f := func(seed int64, gammaRaw uint8) bool {
		d, idx := designFromSeed(seed)
		gamma := 0.1 + float64(gammaRaw)/16
		hpwl := d.HPWL()
		m := New(d, idx, gamma)
		wa := m.Cost()
		m.Kind = LSE
		lse := m.Cost()
		return wa <= hpwl+1e-9 && lse >= hpwl-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: translating the whole design never changes the smooth cost.
func TestQuickTranslationInvariance(t *testing.T) {
	f := func(seed int64, dxRaw, dyRaw int8) bool {
		d, idx := designFromSeed(seed)
		m := New(d, idx, 1.0)
		before := m.Cost()
		dx, dy := float64(dxRaw)/10, float64(dyRaw)/10
		for i := range d.Cells {
			d.Cells[i].X += dx
			d.Cells[i].Y += dy
		}
		after := m.Cost()
		return math.Abs(after-before) < 1e-6*(1+math.Abs(before))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the gradient of a cell not on any net is exactly zero.
func TestQuickIsolatedCellZeroGradient(t *testing.T) {
	f := func(seed int64) bool {
		d, idx := designFromSeed(seed)
		iso := d.AddCell(netlist.Cell{W: 1, H: 1, X: 25, Y: 25})
		idx = append(idx, iso)
		m := New(d, idx, 1.0)
		grad := make([]float64, 2*len(idx))
		m.CostAndGradient(grad)
		k := len(idx) - 1
		return grad[k] == 0 && grad[k+len(idx)] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: shrinking gamma tightens the WA underestimate monotonically
// (statistically; checked pairwise on the same design).
func TestQuickGammaMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		d, idx := designFromSeed(seed)
		hpwl := d.HPWL()
		m := New(d, idx, 4.0)
		coarse := math.Abs(hpwl - m.Cost())
		m.Gamma = 0.25
		fine := math.Abs(hpwl - m.Cost())
		return fine <= coarse+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
