package wirelength

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCompiledBackedEquivalence is the property test for the tentpole:
// across random designs, both smoothing kinds and worker counts
// {1, 2, 7}, a model over a caller-owned compiled view (the engine's
// configuration, positions written only through Compiled.SetPositions)
// produces cost and gradient bit-for-bit identical to the pointer-based
// serial reference, and the view's HPWL matches Design.HPWL.
func TestCompiledBackedEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		n := 20 + int(uint64(seed)%60)
		d, idx := randomDesign(n, seed)
		cv := d.Compile()
		rng := rand.New(rand.NewSource(seed ^ 0xfade))
		v := make([]float64, 2*len(idx))
		for i := range v {
			v[i] = rng.Float64() * 100
		}
		// Engine write path: the view moves, then (for the reference
		// model, which reads the structs) the design follows.
		cv.SetPositions(idx, v)
		d.SetPositions(idx, v)
		if math.Float64bits(cv.HPWL()) != math.Float64bits(d.HPWL()) {
			t.Logf("seed %d: compiled HPWL diverged", seed)
			return false
		}
		for _, kind := range []Kind{WA, LSE} {
			m := NewCompiled(cv, idx, 1.7)
			m.Kind = kind
			ref := New(d, idx, 1.7)
			ref.Kind = kind
			refGrad := make([]float64, 2*len(idx))
			refCost := serialReference(ref, refGrad)
			grad := make([]float64, 2*len(idx))
			for _, workers := range []int{1, 2, 7} {
				m.Workers = workers
				cost := m.CostAndGradient(grad)
				if math.Float64bits(cost) != math.Float64bits(refCost) {
					t.Logf("seed %d kind %d workers %d: cost mismatch", seed, kind, workers)
					return false
				}
				for i := range grad {
					if math.Float64bits(grad[i]) != math.Float64bits(refGrad[i]) {
						t.Logf("seed %d kind %d workers %d: grad[%d] mismatch", seed, kind, workers, i)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCostAndGradientAllocFree pins the allocation contract of the
// fused kernel: at Workers=1, repeated evaluations allocate nothing
// (own-view and shared-view models alike).
func TestCostAndGradientAllocFree(t *testing.T) {
	d, idx := randomDesign(300, 3)
	grad := make([]float64, 2*len(idx))
	for name, m := range map[string]*Model{
		"ownView":  New(d, idx, 1.0),
		"compiled": NewCompiled(d.Compile(), idx, 1.0),
	} {
		m.Workers = 1
		m.CostAndGradient(grad) // warm up scratch
		if n := testing.AllocsPerRun(50, func() { m.CostAndGradient(grad) }); n != 0 {
			t.Errorf("%s: CostAndGradient allocates %v times per call", name, n)
		}
		if n := testing.AllocsPerRun(50, func() { m.Cost() }); n != 0 {
			t.Errorf("%s: Cost allocates %v times per call", name, n)
		}
	}
}

// TestFusedMatchesUnfusedAxis locks the exp-caching rewrite against the
// retained reference kernels: the fused per-net evaluation must
// reproduce axisWA/axisLSE (which recompute every exponential) bit for
// bit, including the hoisted loop-invariant divisions.
func TestFusedMatchesUnfusedAxis(t *testing.T) {
	d, idx := randomDesign(120, 9)
	for _, kind := range []Kind{WA, LSE} {
		m := New(d, idx, 0.9)
		m.Kind = kind
		grad := make([]float64, 2*len(idx))
		got := m.CostAndGradient(grad)
		refGrad := make([]float64, 2*len(idx))
		want := serialReference(m, refGrad)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("kind %d: fused cost %x, unfused %x", kind,
				math.Float64bits(got), math.Float64bits(want))
		}
		for i := range grad {
			if math.Float64bits(grad[i]) != math.Float64bits(refGrad[i]) {
				t.Fatalf("kind %d: fused grad[%d] = %x, unfused %x", kind, i,
					math.Float64bits(grad[i]), math.Float64bits(refGrad[i]))
			}
		}
	}
}
