package wirelength

import (
	"math"
	"math/rand"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/netlist"
)

// randomDesign builds n cells and nets of mixed degree with one fixed pad.
func randomDesign(n int, seed int64) (*netlist.Design, []int) {
	d := netlist.New("w", geom.Rect{Hx: 100, Hy: 100})
	rng := rand.New(rand.NewSource(seed))
	var idx []int
	for i := 0; i < n; i++ {
		idx = append(idx, d.AddCell(netlist.Cell{
			W: 2, H: 2, X: rng.Float64() * 100, Y: rng.Float64() * 100,
		}))
	}
	pad := d.AddCell(netlist.Cell{W: 1, H: 1, X: 0, Y: 50, Kind: netlist.Pad, Fixed: true})
	for k := 0; k < n; k++ {
		deg := 2 + rng.Intn(4)
		ni := d.AddNet("", 1)
		for p := 0; p < deg; p++ {
			ci := idx[rng.Intn(len(idx))]
			d.Connect(ci, ni, rng.Float64()-0.5, rng.Float64()-0.5)
		}
	}
	// One net to the fixed pad.
	ni := d.AddNet("to_pad", 1.5)
	d.Connect(pad, ni, 0, 0)
	d.Connect(idx[0], ni, 0, 0)
	return d, idx
}

func TestWAApproachesHPWL(t *testing.T) {
	d, idx := randomDesign(30, 1)
	hpwl := d.HPWL()
	prevErr := math.Inf(1)
	for _, gamma := range []float64{10, 1, 0.1, 0.01} {
		m := New(d, idx, gamma)
		err := math.Abs(m.Cost() - hpwl)
		if err > prevErr+1e-9 {
			t.Errorf("gamma=%v: WA error %v did not shrink from %v", gamma, err, prevErr)
		}
		prevErr = err
	}
	if prevErr > 1e-3*hpwl {
		t.Errorf("WA at gamma=0.01 still off by %v (HPWL %v)", prevErr, hpwl)
	}
}

func TestWAUnderestimatesHPWL(t *testing.T) {
	d, idx := randomDesign(25, 2)
	m := New(d, idx, 1.0)
	if m.Cost() > d.HPWL()+1e-9 {
		t.Errorf("WA %v exceeds HPWL %v", m.Cost(), d.HPWL())
	}
}

func TestLSEOverestimatesHPWL(t *testing.T) {
	d, idx := randomDesign(25, 3)
	m := New(d, idx, 1.0)
	m.Kind = LSE
	if m.Cost() < d.HPWL()-1e-9 {
		t.Errorf("LSE %v below HPWL %v", m.Cost(), d.HPWL())
	}
	// LSE converges too.
	m.Gamma = 0.01
	if err := math.Abs(m.Cost() - d.HPWL()); err > 1e-2*d.HPWL() {
		t.Errorf("LSE at gamma=0.01 off by %v", err)
	}
}

func gradCheck(t *testing.T, kind Kind, seed int64) {
	t.Helper()
	d, idx := randomDesign(20, seed)
	m := New(d, idx, 2.0)
	m.Kind = kind
	grad := make([]float64, 2*len(idx))
	m.CostAndGradient(grad)
	h := 1e-5
	rng := rand.New(rand.NewSource(seed + 100))
	for trial := 0; trial < 20; trial++ {
		k := rng.Intn(len(idx))
		ci := idx[k]
		isY := rng.Intn(2) == 1
		var num float64
		if isY {
			y0 := d.Cells[ci].Y
			d.Cells[ci].Y = y0 + h
			cp := m.Cost()
			d.Cells[ci].Y = y0 - h
			cm := m.Cost()
			d.Cells[ci].Y = y0
			num = (cp - cm) / (2 * h)
		} else {
			x0 := d.Cells[ci].X
			d.Cells[ci].X = x0 + h
			cp := m.Cost()
			d.Cells[ci].X = x0 - h
			cm := m.Cost()
			d.Cells[ci].X = x0
			num = (cp - cm) / (2 * h)
		}
		slot := k
		if isY {
			slot += len(idx)
		}
		if diff := math.Abs(num - grad[slot]); diff > 1e-5*(1+math.Abs(num)) {
			t.Errorf("kind=%v cell %d axisY=%v: numeric %v analytic %v", kind, k, isY, num, grad[slot])
		}
	}
}

func TestWAGradientNumeric(t *testing.T)  { gradCheck(t, WA, 4) }
func TestLSEGradientNumeric(t *testing.T) { gradCheck(t, LSE, 5) }

func TestGradientTranslationInvariance(t *testing.T) {
	// For a net with all pins movable, the per-net gradient sums to ~0
	// (moving the whole net does not change its span).
	d := netlist.New("ti", geom.Rect{Hx: 100, Hy: 100})
	var idx []int
	for i := 0; i < 5; i++ {
		idx = append(idx, d.AddCell(netlist.Cell{W: 1, H: 1, X: float64(10 + i*7), Y: float64(5 + i*11)}))
	}
	ni := d.AddNet("all", 1)
	for _, ci := range idx {
		d.Connect(ci, ni, 0, 0)
	}
	m := New(d, idx, 1.5)
	grad := make([]float64, 2*len(idx))
	m.CostAndGradient(grad)
	sx, sy := 0.0, 0.0
	for k := range idx {
		sx += grad[k]
		sy += grad[k+len(idx)]
	}
	if math.Abs(sx) > 1e-9 || math.Abs(sy) > 1e-9 {
		t.Errorf("gradient sums = (%v, %v), want 0", sx, sy)
	}
}

func TestFixedPinsPullMovable(t *testing.T) {
	// A movable cell tied to a fixed pad at x=0: gradient must point
	// right (positive), so descent pulls the cell toward the pad.
	d := netlist.New("pull", geom.Rect{Hx: 100, Hy: 100})
	c := d.AddCell(netlist.Cell{W: 1, H: 1, X: 50, Y: 50})
	pad := d.AddCell(netlist.Cell{W: 1, H: 1, X: 0, Y: 50, Fixed: true, Kind: netlist.Pad})
	ni := d.AddNet("n", 1)
	d.Connect(c, ni, 0, 0)
	d.Connect(pad, ni, 0, 0)
	m := New(d, []int{c}, 1.0)
	grad := make([]float64, 2)
	cost := m.CostAndGradient(grad)
	if cost <= 0 {
		t.Fatalf("cost = %v", cost)
	}
	if grad[0] <= 0 {
		t.Errorf("dW/dx = %v, want > 0 (descent moves cell toward pad)", grad[0])
	}
	if math.Abs(grad[1]) > 1e-9 {
		t.Errorf("dW/dy = %v, want 0 (same y)", grad[1])
	}
}

func TestNetWeightScalesGradient(t *testing.T) {
	d := netlist.New("wt", geom.Rect{Hx: 100, Hy: 100})
	c := d.AddCell(netlist.Cell{W: 1, H: 1, X: 50, Y: 50})
	pad := d.AddCell(netlist.Cell{W: 1, H: 1, X: 0, Y: 50, Fixed: true})
	ni := d.AddNet("n", 3)
	d.Connect(c, ni, 0, 0)
	d.Connect(pad, ni, 0, 0)
	m := New(d, []int{c}, 1.0)
	g3 := make([]float64, 2)
	c3 := m.CostAndGradient(g3)
	d.Nets[ni].Weight = 1
	g1 := make([]float64, 2)
	c1 := m.CostAndGradient(g1)
	if math.Abs(c3-3*c1) > 1e-9 || math.Abs(g3[0]-3*g1[0]) > 1e-9 {
		t.Errorf("weight 3 not tripling: cost %v vs %v, grad %v vs %v", c3, c1, g3[0], g1[0])
	}
}

func TestSinglePinNetIgnored(t *testing.T) {
	d := netlist.New("s", geom.Rect{Hx: 10, Hy: 10})
	c := d.AddCell(netlist.Cell{W: 1, H: 1, X: 5, Y: 5})
	ni := d.AddNet("single", 1)
	d.Connect(c, ni, 0, 0)
	m := New(d, []int{c}, 1.0)
	grad := make([]float64, 2)
	if cost := m.CostAndGradient(grad); cost != 0 || grad[0] != 0 {
		t.Errorf("single-pin net produced cost %v grad %v", cost, grad)
	}
}

func TestStabilityLargeCoordinates(t *testing.T) {
	// Coordinates far apart relative to gamma must not produce NaN/Inf.
	d := netlist.New("big", geom.Rect{Hx: 1e7, Hy: 1e7})
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 0, Y: 0})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 9.9e6, Y: 9.9e6})
	ni := d.AddNet("n", 1)
	d.Connect(a, ni, 0, 0)
	d.Connect(b, ni, 0, 0)
	m := New(d, []int{a, b}, 0.5)
	grad := make([]float64, 4)
	cost := m.CostAndGradient(grad)
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		t.Fatalf("cost = %v", cost)
	}
	for i, g := range grad {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("grad[%d] = %v", i, g)
		}
	}
	if math.Abs(cost-2*9.9e6) > 1 {
		t.Errorf("cost = %v, want ~%v", cost, 2*9.9e6)
	}
}

func TestGradientBounded(t *testing.T) {
	// WA per-pin gradients are bounded (roughly by 1 + span/gamma terms
	// canceling); sanity-check no blowup across random layouts.
	d, idx := randomDesign(40, 7)
	m := New(d, idx, 0.8)
	grad := make([]float64, 2*len(idx))
	m.CostAndGradient(grad)
	for i, g := range grad {
		if math.Abs(g) > 100 {
			t.Fatalf("grad[%d] = %v, suspicious blowup", i, g)
		}
	}
}

func BenchmarkWACostAndGradient(b *testing.B) {
	d, idx := randomDesign(5000, 11)
	m := New(d, idx, 1.0)
	grad := make([]float64, 2*len(idx))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CostAndGradient(grad)
	}
}
