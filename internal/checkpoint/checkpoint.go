// Package checkpoint is the crash-safe snapshot/restore subsystem of
// the placement flow. The multi-stage ePlace run (mIP -> mGP -> mLG ->
// cGP -> cDP) is long-running and, without checkpoints, all-or-nothing:
// a crash in cGP discards finished mGP/mLG work. A State captures
// everything a resumed process needs to continue bitwise-identically —
// flow phase, full cell positions, the in-flight Nesterov vectors and
// schedule scalars of a mid-stage global placement, scalars later
// stages derive their inputs from, and the rolling golden-trace
// digests — and the Manager persists it with atomic temp-file+rename
// writes under a versioned, CRC-checked header.
//
// File format (little-endian):
//
//	offset 0:  8-byte magic "EPLCKPT\x00"
//	offset 8:  uint32 format version (FormatVersion)
//	offset 12: uint64 payload length
//	offset 20: uint32 CRC-32C (Castagnoli) of the payload
//	offset 24: payload — encoding/gob of State
//
// The header is checked before the payload is decoded, so a torn or
// corrupted file is rejected with a descriptive error instead of
// resuming from garbage; gob's float64 encoding is exact, so a
// round-trip preserves every position and gradient bit-for-bit.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"

	"eplace/internal/nesterov"
	"eplace/internal/netlist"
	"eplace/internal/telemetry"
)

// FormatVersion is the on-disk format version written by Save. Load
// rejects any other version.
const FormatVersion = 1

var magic = [8]byte{'E', 'P', 'L', 'C', 'K', 'P', 'T', 0}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Flow phases a checkpoint can mark. Stage-boundary phases record that
// the named stage completed (and passed its legality/divergence
// checks); in-stage phases carry a GPState for the iteration loop.
const (
	PhasePostMIP       = "post-mIP"
	PhaseMGP           = "mGP" // mid-stage, GP != nil
	PhasePostMGP       = "post-mGP"
	PhasePostMLG       = "post-mLG"
	PhaseCGPFiller     = "cGP-filler" // mid-stage, GP != nil
	PhasePostCGPFiller = "post-cGP-filler"
	PhaseCGP           = "cGP" // mid-stage, GP != nil
	PhasePreCDP        = "pre-cDP"
	PhaseDone          = "done"
	// PhasePostML marks a completed multilevel prelude: the finest
	// design holds the interpolated warm-start positions and mGP is the
	// next work (Level 0).
	PhasePostML = "post-ML"
)

// PhaseMLevel is the mid-stage phase of the level-k global placement in
// a multilevel run ("mGP/L2", "mGP/L1", ...); snapshots carry a GPState
// and level-k positions. PhasePostMLevel is the boundary after level
// k's placement was interpolated down: the snapshot holds level k-1
// positions.
func PhaseMLevel(k int) string     { return fmt.Sprintf("mGP/L%d", k) }
func PhasePostMLevel(k int) string { return fmt.Sprintf("post-mGP/L%d", k) }

// ParseMLPhase recognizes the per-level multilevel phases: it returns
// the level and whether the snapshot is mid-stage (mGP/Lk, carrying a
// GPState) as opposed to the post-interpolation boundary (post-mGP/Lk).
func ParseMLPhase(phase string) (level int, mid bool, ok bool) {
	var k int
	if n, err := fmt.Sscanf(phase, "mGP/L%d", &k); err == nil && n == 1 && phase == PhaseMLevel(k) {
		return k, true, true
	}
	if n, err := fmt.Sscanf(phase, "post-mGP/L%d", &k); err == nil && n == 1 && phase == PhasePostMLevel(k) {
		return k, false, true
	}
	return 0, false, false
}

// GPState is the in-flight state of one PlaceGlobal iteration loop,
// captured at an iteration boundary: everything the loop reads besides
// the (re-derivable) engine kernels. Restoring it resumes the loop at
// iteration Iter with bitwise-identical arithmetic.
type GPState struct {
	// Stage is the GP stage label ("mGP", "cGP-filler", "cGP").
	Stage string
	// Iter is the iteration the resumed loop starts at.
	Iter int
	// Lambda and Gamma are the penalty and smoothing schedule values.
	Lambda, Gamma float64
	// PrevHPWL feeds the lambda schedule; HPWL0 anchors the divergence
	// guard.
	PrevHPWL, HPWL0 float64
	// Best is the lowest-overflow solution snapshot, with its overflow
	// BestTau seen at iteration BestTauIter (divergence rollback).
	Best        []float64
	BestTau     float64
	BestTauIter int
	// Nesterov is the optimizer recurrence state.
	Nesterov nesterov.State
}

// State is one full flow snapshot.
type State struct {
	// Phase is one of the Phase* constants.
	Phase string
	// DesignName and Fingerprint identify the design the snapshot
	// belongs to; Load-time mismatches abort the resume.
	DesignName  string
	Fingerprint uint64
	// NumBaseCells counts the design's own cells; NumFillers the
	// placement-aid fillers appended after them when the snapshot was
	// taken. A resuming flow re-inserts fillers deterministically (same
	// seed) and then overwrites all positions from X/Y.
	NumBaseCells int
	NumFillers   int
	// X, Y are the cell center positions in cell-index order,
	// length NumBaseCells+NumFillers.
	X, Y []float64
	// Fixed are the per-cell fixed flags at capture time, same indexing
	// as X/Y. The flow itself mutates fixedness (mLG pins the macros it
	// legalized; the filler-only phase temporarily pins the standard
	// cells), and the density model rasterizes fixed cells as immovable
	// charge — so a resume that skips those stages must restore the
	// flags or the field (and the trajectory) would differ.
	Fixed []bool
	// MixedSize mirrors FlowResult.MixedSize at capture time.
	MixedSize bool
	// Poisson is the normalized eDensity Poisson backend name the flow
	// ran with ("spectral", "spectral32", "multigrid"). The backends are
	// numerically distinct, so resuming a trajectory under a different
	// backend would silently break bitwise reproducibility; the flow
	// rejects the mismatch instead. Snapshots written before the field
	// existed decode as "" and are treated as the spectral default.
	Poisson string
	// MGPIterations and MGPFinalLambda are mGP outputs that seed the
	// cGP penalty factor; valid from PhasePostMGP on.
	MGPIterations  int
	MGPFinalLambda float64
	// Level is the netlist level the positions belong to in a
	// multilevel (V-cycle) run: 0 is the finest (the input design),
	// higher levels are the coarsened designs. A resuming flow rebuilds
	// the hierarchy deterministically from the input design — clustering
	// depends only on structure the Fingerprint covers — and restores
	// X/Y onto Designs[Level]. Flat runs always write 0.
	Level int
	// GP is the in-flight global-placement loop state for mid-stage
	// phases, nil at stage boundaries.
	GP *GPState
	// Golden is the rolling golden-trace digest state, restored so a
	// resumed run's final per-stage digests match the uninterrupted
	// run's exactly.
	Golden telemetry.GoldenState
}

// CapturePositions fills X/Y (and the cell counts) from the design,
// which holds numFillers filler cells appended after its base cells.
func (s *State) CapturePositions(d *netlist.Design, numFillers int) {
	n := len(d.Cells)
	s.NumBaseCells = n - numFillers
	s.NumFillers = numFillers
	s.X = make([]float64, n)
	s.Y = make([]float64, n)
	s.Fixed = make([]bool, n)
	for i := range d.Cells {
		s.X[i] = d.Cells[i].X
		s.Y[i] = d.Cells[i].Y
		s.Fixed[i] = d.Cells[i].Fixed
	}
}

// RestorePositions writes the snapshot's positions and fixed flags
// back into the design, which must already hold at least
// NumBaseCells+NumFillers cells (fillers re-inserted by the caller).
// Cells beyond the snapshot — fillers a resuming flow inserted that
// did not yet exist at capture time (e.g. resuming a post-mIP
// snapshot) — keep their current, deterministically re-derived state.
func (s *State) RestorePositions(d *netlist.Design) error {
	if len(d.Cells) < len(s.X) {
		return fmt.Errorf("checkpoint: design has %d cells, snapshot has %d", len(d.Cells), len(s.X))
	}
	for i := range s.X {
		d.Cells[i].X = s.X[i]
		d.Cells[i].Y = s.Y[i]
		if i < len(s.Fixed) {
			d.Cells[i].Fixed = s.Fixed[i]
		}
	}
	return nil
}

// Fingerprint hashes the position-independent structure of a design —
// region, target density, per-cell geometry/kind/fixedness (fillers
// excluded), net weights and net->cell topology — with FNV-1a. A
// checkpoint only resumes onto a design with an identical fingerprint,
// which rejects both wrong designs and mutated ones (e.g. nets
// reweighted by a timing-driven pass after the snapshot).
func Fingerprint(d *netlist.Design) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(f float64) { w64(math.Float64bits(f)) }
	ws := func(s string) {
		w64(uint64(len(s)))
		h.Write([]byte(s))
	}
	ws(d.Name)
	wf(d.Region.Lx)
	wf(d.Region.Ly)
	wf(d.Region.Hx)
	wf(d.Region.Hy)
	wf(d.TargetDensity)
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Kind == netlist.Filler {
			continue
		}
		wf(c.W)
		wf(c.H)
		kind := uint64(c.Kind)
		if c.Fixed {
			kind |= 1 << 8
		}
		w64(kind)
	}
	for ni := range d.Nets {
		n := &d.Nets[ni]
		wf(n.Weight)
		w64(uint64(len(n.Pins)))
		for _, pi := range n.Pins {
			w64(uint64(d.Pins[pi].Cell))
			wf(d.Pins[pi].Ox)
			wf(d.Pins[pi].Oy)
		}
	}
	w64(uint64(len(d.Rows)))
	return h.Sum64()
}

// Encode serializes the state with the versioned CRC-checked header.
func Encode(s *State) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return nil, fmt.Errorf("checkpoint: encoding state: %w", err)
	}
	p := payload.Bytes()
	out := make([]byte, 24+len(p))
	copy(out, magic[:])
	binary.LittleEndian.PutUint32(out[8:], FormatVersion)
	binary.LittleEndian.PutUint64(out[12:], uint64(len(p)))
	binary.LittleEndian.PutUint32(out[20:], crc32.Checksum(p, castagnoli))
	copy(out[24:], p)
	return out, nil
}

// Decode verifies the header and CRC, then decodes the payload.
func Decode(data []byte) (*State, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("checkpoint: file truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return nil, fmt.Errorf("checkpoint: bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != FormatVersion {
		return nil, fmt.Errorf("checkpoint: format version %d, this build reads %d", v, FormatVersion)
	}
	n := binary.LittleEndian.Uint64(data[12:])
	if uint64(len(data)-24) != n {
		return nil, fmt.Errorf("checkpoint: payload length %d, header says %d", len(data)-24, n)
	}
	payload := data[24:]
	want := binary.LittleEndian.Uint32(data[20:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("checkpoint: CRC mismatch (file %08x, computed %08x): corrupted snapshot", want, got)
	}
	var s State
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decoding payload: %w", err)
	}
	return &s, nil
}

// WriteFile atomically writes an encoded state to path: the bytes go
// to a temp file in the same directory, are fsynced, and the file is
// renamed over path, so a crash mid-write can never leave a truncated
// checkpoint under the final name.
func WriteFile(path string, s *State) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: fsync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: committing %s: %w", path, err)
	}
	// Persist the rename itself (best effort: not all filesystems
	// support directory fsync).
	if df, err := os.Open(dir); err == nil {
		df.Sync()
		df.Close()
	}
	return nil
}

// ReadFile loads and verifies a checkpoint file.
func ReadFile(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}

// LatestName is the file the Manager keeps current within its
// directory.
const LatestName = "latest.ckpt"

// DefaultKeep is the numbered-history retention bound a Manager applies
// when Keep is left zero.
const DefaultKeep = 5

// Manager persists a flow's checkpoints in one directory. Every Save
// atomically replaces latest.ckpt; with History enabled each snapshot
// is additionally kept as ckpt-NNNNNN.ckpt, which is how the
// kill-and-resume tests (and post-mortem debugging) pick an arbitrary
// mid-run state to resume from. The numbered history is bounded by
// Keep — a long mGP run with CheckpointEvery set would otherwise grow
// it without limit and fill the disk.
type Manager struct {
	dir string
	// History retains snapshots as numbered files besides latest.ckpt.
	History bool
	// Keep bounds the numbered history: after each successful Save the
	// oldest numbered snapshots are pruned so at most Keep remain.
	// 0 selects DefaultKeep; negative retains everything (the
	// resume-equivalence tests replay arbitrary mid-run states).
	// latest.ckpt is never touched by pruning.
	Keep int

	seq int
}

// NewManager creates (if needed) the checkpoint directory. When the
// directory already holds numbered history (a restarted process
// resuming a run), numbering continues after the highest existing
// snapshot instead of silently overwriting it from ckpt-000001 up.
func NewManager(dir string) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", dir, err)
	}
	m := &Manager{dir: dir}
	if files, err := m.HistoryFiles(); err == nil && len(files) > 0 {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(files[len(files)-1]), "ckpt-%d.ckpt", &n); err == nil {
			m.seq = n
		}
	}
	m.sweepTemp()
	return m, nil
}

// sweepTemp removes orphaned write temporaries. WriteFile cleans its
// own temp file via defer, but a crash (or kill) between CreateTemp and
// the rename leaves `.ckpt-*.tmp` behind forever — a restarted process
// adopting the directory is the only safe point to collect them, since
// any temp file predating this Manager can no longer be renamed by a
// live writer.
func (m *Manager) sweepTemp() {
	stale, err := filepath.Glob(filepath.Join(m.dir, ".ckpt-*.tmp"))
	if err != nil {
		return
	}
	for _, f := range stale {
		os.Remove(f)
	}
}

// Dir returns the checkpoint directory.
func (m *Manager) Dir() string { return m.dir }

// Save atomically persists s as the latest checkpoint, then prunes
// numbered history beyond the Keep bound. Pruning runs only after both
// writes succeeded, so a failed save never costs an older snapshot.
func (m *Manager) Save(s *State) error {
	if m.History {
		m.seq++
		if err := WriteFile(filepath.Join(m.dir, fmt.Sprintf("ckpt-%06d.ckpt", m.seq)), s); err != nil {
			return err
		}
	}
	if err := WriteFile(filepath.Join(m.dir, LatestName), s); err != nil {
		return err
	}
	return m.prune()
}

// prune removes the oldest numbered snapshots beyond the retention
// bound. latest.ckpt does not match the history glob and is never
// considered.
func (m *Manager) prune() error {
	if !m.History || m.Keep < 0 {
		return nil
	}
	keep := m.Keep
	if keep == 0 {
		keep = DefaultKeep
	}
	files, err := m.HistoryFiles()
	if err != nil {
		return err
	}
	if len(files) <= keep {
		return nil
	}
	for _, f := range files[:len(files)-keep] {
		if err := os.Remove(f); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("checkpoint: pruning %s: %w", f, err)
		}
	}
	return nil
}

// Load reads the latest checkpoint.
func (m *Manager) Load() (*State, error) {
	return ReadFile(filepath.Join(m.dir, LatestName))
}

// FinalName is the pinned end-of-run checkpoint written by PinFinal. It
// matches neither LatestName (which later saves replace) nor the
// numbered-history glob (which pruning erodes), so it survives both —
// the anchor anything chaining off a completed run resolves against.
const FinalName = "final.ckpt"

// PinFinal pins the current latest checkpoint as final.ckpt, exempt
// from history pruning and from being replaced by later saves. Call it
// once when a run completes.
func (m *Manager) PinFinal() error {
	s, err := m.Load()
	if err != nil {
		return fmt.Errorf("checkpoint: pinning final: %w", err)
	}
	return WriteFile(filepath.Join(m.dir, FinalName), s)
}

// LoadFinal reads the pinned final checkpoint, falling back to
// latest.ckpt for directories written before pinning existed.
func (m *Manager) LoadFinal() (*State, error) {
	s, err := ReadFile(filepath.Join(m.dir, FinalName))
	if err == nil {
		return s, nil
	}
	if os.IsNotExist(err) {
		return m.Load()
	}
	return nil, err
}

// HistoryFiles lists retained numbered snapshots in save order.
func (m *Manager) HistoryFiles() ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(m.dir, "ckpt-*.ckpt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// Validate checks that the snapshot belongs to d (by name and
// structural fingerprint) before a resume.
func (s *State) Validate(d *netlist.Design) error {
	if s.DesignName != d.Name {
		return fmt.Errorf("checkpoint: snapshot is for design %q, not %q", s.DesignName, d.Name)
	}
	if fp := Fingerprint(d); fp != s.Fingerprint {
		return fmt.Errorf("checkpoint: design %q does not structurally match the snapshot taken of design %q: the netlist changed since the snapshot (design fingerprint %016x, snapshot fingerprint %016x)",
			d.Name, s.DesignName, fp, s.Fingerprint)
	}
	if s.Level == 0 {
		if base := len(d.Cells); base != s.NumBaseCells {
			return fmt.Errorf("checkpoint: design has %d cells, snapshot expects %d before fillers", base, s.NumBaseCells)
		}
	}
	// Level > 0 snapshots capture a coarsened design's positions; the
	// multilevel driver checks NumBaseCells against the rebuilt level.
	return nil
}
