package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"eplace/internal/nesterov"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
)

func sampleState() *State {
	return &State{
		Phase:        PhaseMGP,
		DesignName:   "ckpt-test",
		Fingerprint:  0xdeadbeefcafef00d,
		NumBaseCells: 3,
		NumFillers:   1,
		X:            []float64{1.5, -2.25, math.Pi, 0.125},
		Y:            []float64{0, 7.75, -math.E, 1e30},
		MixedSize:    true,
		MGPIterations: 42, MGPFinalLambda: 3.5e-4,
		GP: &GPState{
			Stage: "mGP", Iter: 17,
			Lambda: 1.25e-3, Gamma: 80.5,
			PrevHPWL: 12345.678, HPWL0: 23456.789,
			Best: []float64{1, 2, 3, 4, 5, 6, 7, 8}, BestTau: 0.42, BestTauIter: 11,
			Nesterov: nesterov.State{
				U: []float64{1, 2}, V: []float64{3, 4}, VPrev: []float64{5, 6},
				GradV: []float64{-1, -2}, GradPrev: []float64{-3, -4},
				A: 5.5, Steps: 17, Backtracks: 3, Restarts: 1,
			},
		},
		Golden: telemetry.GoldenState{Stages: []telemetry.StageDigest{
			{Stage: "mIP", Iterations: 1, Digest: 0x1111},
			{Stage: "mGP", Iterations: 17, Digest: 0x2222},
		}},
	}
}

// TestRoundTripFieldByField snapshots, restores, and compares every
// field — gob float64 encoding must be bit-exact.
func TestRoundTripFieldByField(t *testing.T) {
	s := sampleState()
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("round trip changed state:\n in: %+v\nout: %+v", s, got)
	}
	for i := range s.X {
		if math.Float64bits(s.X[i]) != math.Float64bits(got.X[i]) {
			t.Errorf("X[%d] bits changed", i)
		}
	}
}

func TestFileRoundTripAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.ckpt")
	s := sampleState()
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Error("file round trip changed state")
	}
	// No temp droppings left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after write, want 1", len(entries))
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := Encode(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"truncated header":  func(b []byte) []byte { return b[:10] },
		"truncated payload": func(b []byte) []byte { return b[:len(b)-5] },
		"bad magic":         func(b []byte) []byte { b[0] ^= 0xff; return b },
		"future version":    func(b []byte) []byte { b[8] = 99; return b },
		"payload bit flip":  func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"crc flip":          func(b []byte) []byte { b[20] ^= 0x01; return b },
	}
	for name, mutate := range cases {
		b := mutate(append([]byte(nil), data...))
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode accepted corrupted data", name)
		}
	}
}

func TestManagerLatestAndHistory(t *testing.T) {
	m, err := NewManager(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	m.History = true
	s := sampleState()
	for i := 0; i < 3; i++ {
		s.GP.Iter = i
		if err := m.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	latest, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	if latest.GP.Iter != 2 {
		t.Errorf("latest has iter %d, want 2", latest.GP.Iter)
	}
	hist, err := m.HistoryFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history has %d files, want 3", len(hist))
	}
	first, err := ReadFile(hist[0])
	if err != nil {
		t.Fatal(err)
	}
	if first.GP.Iter != 0 {
		t.Errorf("first history snapshot has iter %d, want 0", first.GP.Iter)
	}
}

// TestManagerPrunesHistory: the numbered history is bounded by Keep
// (default 5) so a long run with CheckpointEvery set cannot fill the
// disk; the newest snapshots survive and latest.ckpt is untouched.
func TestManagerPrunesHistory(t *testing.T) {
	m, err := NewManager(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	m.History = true
	s := sampleState()
	for i := 0; i < 12; i++ {
		s.GP.Iter = i
		if err := m.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := m.HistoryFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != DefaultKeep {
		t.Fatalf("history has %d files after 12 saves, want %d", len(hist), DefaultKeep)
	}
	// The survivors are the newest: iters 7..11.
	oldest, err := ReadFile(hist[0])
	if err != nil {
		t.Fatal(err)
	}
	if oldest.GP.Iter != 12-DefaultKeep {
		t.Errorf("oldest retained snapshot has iter %d, want %d", oldest.GP.Iter, 12-DefaultKeep)
	}
	// latest.ckpt still loads and is the last save.
	latest, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	if latest.GP.Iter != 11 {
		t.Errorf("latest has iter %d, want 11", latest.GP.Iter)
	}

	// An explicit Keep bound applies; negative retains everything.
	m2, _ := NewManager(filepath.Join(t.TempDir(), "c2"))
	m2.History = true
	m2.Keep = 2
	for i := 0; i < 6; i++ {
		s.GP.Iter = i
		if err := m2.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	if hist, _ := m2.HistoryFiles(); len(hist) != 2 {
		t.Errorf("Keep=2 retained %d files", len(hist))
	}
	m3, _ := NewManager(filepath.Join(t.TempDir(), "c3"))
	m3.History = true
	m3.Keep = -1
	for i := 0; i < 9; i++ {
		if err := m3.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	if hist, _ := m3.HistoryFiles(); len(hist) != 9 {
		t.Errorf("Keep=-1 retained %d files, want all 9", len(hist))
	}
}

// TestManagerSeqContinues: a fresh Manager on an existing directory (a
// restarted process resuming a run) numbers new snapshots after the
// retained ones instead of overwriting them.
func TestManagerSeqContinues(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpts")
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	m.History = true
	s := sampleState()
	for i := 0; i < 3; i++ {
		s.GP.Iter = i
		if err := m.Save(s); err != nil {
			t.Fatal(err)
		}
	}

	m2, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2.History = true
	s.GP.Iter = 99
	if err := m2.Save(s); err != nil {
		t.Fatal(err)
	}
	hist, err := m2.HistoryFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 {
		t.Fatalf("restarted manager overwrote history: %d files, want 4", len(hist))
	}
	last, err := ReadFile(hist[len(hist)-1])
	if err != nil {
		t.Fatal(err)
	}
	if last.GP.Iter != 99 {
		t.Errorf("newest snapshot has iter %d, want 99", last.GP.Iter)
	}
}

func TestFingerprintAndValidate(t *testing.T) {
	d1 := synth.Generate(synth.Spec{Name: "fp", NumCells: 50})
	d2 := synth.Generate(synth.Spec{Name: "fp", NumCells: 50})
	if Fingerprint(d1) != Fingerprint(d2) {
		t.Fatal("same spec, different fingerprints")
	}
	// Positions must not affect the fingerprint.
	d2.Cells[0].X += 10
	if Fingerprint(d1) != Fingerprint(d2) {
		t.Error("position change altered the fingerprint")
	}
	// Structure must.
	d2.Nets[0].Weight = 7
	if Fingerprint(d1) == Fingerprint(d2) {
		t.Error("net reweighting kept the fingerprint")
	}

	var s State
	s.DesignName = d1.Name
	s.Fingerprint = Fingerprint(d1)
	s.NumBaseCells = len(d1.Cells)
	if err := s.Validate(d1); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
	if err := s.Validate(d2); err == nil {
		t.Error("snapshot accepted onto a structurally different design")
	}
}

func TestCaptureRestorePositions(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "pos", NumCells: 30})
	var s State
	s.CapturePositions(d, 0)
	want := append([]float64(nil), s.X...)
	for i := range d.Cells {
		d.Cells[i].X += 5
	}
	if err := s.RestorePositions(d); err != nil {
		t.Fatal(err)
	}
	for i := range d.Cells {
		if d.Cells[i].X != want[i] {
			t.Fatalf("cell %d x = %v, want %v", i, d.Cells[i].X, want[i])
		}
	}
	d.Cells = d.Cells[:len(d.Cells)-1]
	if err := s.RestorePositions(d); err == nil {
		t.Error("restore accepted a cell-count mismatch")
	}
}
