package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestManagerSweepsOrphanedTemp is the regression test for the temp
// file leak: a crash between CreateTemp and the rename used to strand
// `.ckpt-*.tmp` files forever, because the deferred remove never runs
// on kill. Adopting the directory must collect them.
func TestManagerSweepsOrphanedTemp(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".ckpt-123456.tmp")
	if err := os.WriteFile(stale, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	keepers := []string{"latest.ckpt", "ckpt-000001.ckpt", "notes.txt"}
	for _, name := range keepers {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := NewManager(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived NewManager (stat err: %v)", err)
	}
	for _, name := range keepers {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("sweep removed %s: %v", name, err)
		}
	}
}

// TestPinFinalSurvivesPruning: the pinned final checkpoint must outlive
// both history pruning and later saves replacing latest.ckpt.
func TestPinFinalSurvivesPruning(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	m.History = true
	m.Keep = 1

	st := sampleState()
	st.Phase = PhaseDone
	if err := m.Save(st); err != nil {
		t.Fatal(err)
	}
	if err := m.PinFinal(); err != nil {
		t.Fatal(err)
	}

	// Later saves churn history past Keep and replace latest.
	later := sampleState()
	later.Phase = PhaseMGP
	later.MGPIterations = 99
	for i := 0; i < 4; i++ {
		if err := m.Save(later); err != nil {
			t.Fatal(err)
		}
	}
	files, err := m.HistoryFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("history not pruned to Keep=1: %v", files)
	}

	got, err := m.LoadFinal()
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != PhaseDone || got.MGPIterations != st.MGPIterations {
		t.Fatalf("pinned final lost: phase %q iters %d", got.Phase, got.MGPIterations)
	}
	// Without a pinned final, LoadFinal falls back to latest.
	m2, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Save(later); err != nil {
		t.Fatal(err)
	}
	got, err = m2.LoadFinal()
	if err != nil {
		t.Fatal(err)
	}
	if got.MGPIterations != 99 {
		t.Fatalf("fallback to latest failed: %+v", got)
	}
}
