package core

import (
	"context"
	"testing"

	"eplace/internal/eco"
	"eplace/internal/netlist"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
)

func ecoSpec(name string) synth.Spec {
	return synth.Spec{Name: name, NumCells: 500, Seed: 2}
}

// digestOf finds one stage's golden digest.
func digestOf(t *testing.T, ds []telemetry.StageDigest, stage string) telemetry.StageDigest {
	t.Helper()
	for _, d := range ds {
		if d.Stage == stage {
			return d
		}
	}
	t.Fatalf("no %q digest in %v", stage, ds)
	return telemetry.StageDigest{}
}

// warmCopy rebuilds the design and carries over the placed positions,
// the way an ECO caller warm-starts from a previous run's output.
func warmCopy(spec synth.Spec, placed *netlist.Design) *netlist.Design {
	d := synth.Generate(spec)
	for i := range d.Cells {
		d.Cells[i].X = placed.Cells[i].X
		d.Cells[i].Y = placed.Cells[i].Y
	}
	return d
}

// TestECONoOpBitwise: an edit script that changes nothing must return
// the previous placement bit for bit — the "final" golden digest equals
// the cold flow's at every worker count.
func TestECONoOpBitwise(t *testing.T) {
	spec := ecoSpec("eco-noop")
	for _, workers := range []int{1, 2, 7} {
		cold := synth.Generate(spec)
		coldRes, err := Place(cold, FlowOptions{GP: Options{Workers: workers, MaxIters: 500}})
		if err != nil {
			t.Fatalf("workers=%d cold: %v", workers, err)
		}

		warm := warmCopy(spec, cold)
		prep, err := eco.Prepare(warm, &eco.Script{}, eco.PlanOptions{})
		if err != nil {
			t.Fatalf("workers=%d prepare: %v", workers, err)
		}
		res, err := PlaceECO(context.Background(), warm, prep.Plan, ECOOptions{GP: Options{Workers: workers}})
		if err != nil {
			t.Fatalf("workers=%d eco: %v", workers, err)
		}
		if !res.NoOp {
			t.Fatalf("workers=%d: empty edit not detected as no-op (%d active)", workers, res.ActiveCells)
		}
		cd, ed := digestOf(t, coldRes.Digests, "final"), digestOf(t, res.Digests, "final")
		if cd.Digest != ed.Digest {
			t.Fatalf("workers=%d: final digest %s != cold %s", workers, ed.Hex(), cd.Hex())
		}
		if res.HPWL != coldRes.HPWL {
			t.Fatalf("workers=%d: HPWL %v != cold %v", workers, res.HPWL, coldRes.HPWL)
		}
		for i := range warm.Cells {
			if warm.Cells[i].X != cold.Cells[i].X || warm.Cells[i].Y != cold.Cells[i].Y {
				t.Fatalf("workers=%d: cell %d moved on a no-op", workers, i)
			}
		}
	}
}

// TestECOFrozenCellsExact: cells outside the activity halo must end the
// incremental run at exactly their input positions.
func TestECOFrozenCellsExact(t *testing.T) {
	spec := ecoSpec("eco-frozen")
	cold := synth.Generate(spec)
	if _, err := Place(cold, FlowOptions{GP: Options{MaxIters: 500}}); err != nil {
		t.Fatal(err)
	}

	warm := warmCopy(spec, cold)
	script := &eco.Script{AddCells: []eco.AddCell{
		{Name: "eco_a", W: 2, H: 1, NetIDs: []int{0}},
		{Name: "eco_b", W: 2, H: 1, NetIDs: []int{1}},
	}}
	prep, err := eco.Prepare(warm, script, eco.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prep.Plan.Frozen) == 0 {
		t.Fatalf("small edit froze nothing: %s", prep.Plan)
	}
	type pos struct{ x, y float64 }
	before := map[int]pos{}
	for _, ci := range prep.Plan.Frozen {
		before[ci] = pos{warm.Cells[ci].X, warm.Cells[ci].Y}
	}

	res, err := PlaceECO(context.Background(), warm, prep.Plan, ECOOptions{GP: Options{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoOp || res.ActiveCells == 0 {
		t.Fatalf("insertion did not activate anything: %+v", res)
	}
	for ci, p := range before {
		if warm.Cells[ci].X != p.x || warm.Cells[ci].Y != p.y {
			t.Fatalf("frozen cell %d moved: (%v,%v) -> (%v,%v)",
				ci, p.x, p.y, warm.Cells[ci].X, warm.Cells[ci].Y)
		}
	}
	if !res.Legal {
		t.Fatal("incremental result not legal")
	}
}

// TestECOBlockedRegionEvicted: after an ECO run with a region blockage,
// no movable standard cell may overlap the blocked rectangle.
func TestECOBlockedRegionEvicted(t *testing.T) {
	spec := ecoSpec("eco-block")
	cold := synth.Generate(spec)
	if _, err := Place(cold, FlowOptions{GP: Options{MaxIters: 500}}); err != nil {
		t.Fatal(err)
	}

	warm := warmCopy(spec, cold)
	r := warm.Region
	blk := eco.Block{
		Lx: r.Lx + 0.3*r.W(), Ly: r.Ly + 0.3*r.H(),
		Hx: r.Lx + 0.5*r.W(), Hy: r.Ly + 0.5*r.H(),
	}
	prep, err := eco.Prepare(warm, &eco.Script{BlockRegions: []eco.Block{blk}}, eco.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PlaceECO(context.Background(), warm, prep.Plan, ECOOptions{GP: Options{}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Legal {
		t.Fatal("blocked result not legal")
	}
	const eps = 1e-9
	for _, ci := range warm.Movable() {
		c := &warm.Cells[ci]
		cr := c.Rect()
		ov := cr.Intersect(blk.Rect())
		if ov.Valid() && ov.W() > eps && ov.H() > eps {
			t.Fatalf("movable cell %d (%s) overlaps the blockage: cell %v block %v",
				ci, c.Name, cr, blk.Rect())
		}
	}
}
