package core

import (
	"math"
	"math/rand"
	"sort"

	"eplace/internal/netlist"
)

// fillerDims picks filler cell dimensions from the middle 80% (by area)
// of movable standard cells, the ePlace/FFTPL recipe: fillers the size
// of a typical cell spread whitespace without distorting the field.
func fillerDims(d *netlist.Design) (w, h float64) {
	type wh struct{ w, h, a float64 }
	var cells []wh
	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Fixed && c.Kind == netlist.StdCell {
			cells = append(cells, wh{c.W, c.H, c.Area()})
		}
	}
	if len(cells) == 0 {
		// Macro-only design: use a small fraction of the region.
		return d.Region.W() / 100, d.Region.H() / 100
	}
	// Total order (area, then width, then height): an area-only sort
	// leaves equal-area cells in unspecified relative order, and when
	// such a tie straddles the 10%/90% trim boundary the averaged
	// filler dimensions — and thus every downstream position — would
	// depend on sort internals.
	sort.Slice(cells, func(a, b int) bool {
		if cells[a].a != cells[b].a {
			return cells[a].a < cells[b].a
		}
		if cells[a].w != cells[b].w {
			return cells[a].w < cells[b].w
		}
		return cells[a].h < cells[b].h
	})
	lo, hi := len(cells)/10, len(cells)-len(cells)/10
	if hi <= lo {
		lo, hi = 0, len(cells)
	}
	var sw, sh float64
	for _, c := range cells[lo:hi] {
		sw += c.w
		sh += c.h
	}
	n := float64(hi - lo)
	return sw / n, sh / n
}

// InsertFillers populates whitespace with unconnected filler cells so
// that movable + filler area equals rhoT * free area (Sec. III), placed
// uniformly at random (seeded). It returns the indices of the new cells.
// No-op (returns nil) when the design is already at or above target
// utilization.
func InsertFillers(d *netlist.Design, seed int64) []int {
	free := d.Region.Area() - d.FixedAreaInRegion()
	want := d.TargetDensity*free - d.MovableArea()
	if want <= 0 {
		return nil
	}
	fw, fh := fillerDims(d)
	if fw <= 0 || fh <= 0 {
		return nil
	}
	count := int(math.Floor(want / (fw * fh)))
	if count <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, 0, count)
	r := d.Region
	for k := 0; k < count; k++ {
		x := r.Lx + fw/2 + rng.Float64()*(r.W()-fw)
		y := r.Ly + fh/2 + rng.Float64()*(r.H()-fh)
		idx = append(idx, d.AddCell(netlist.Cell{
			W: fw, H: fh, X: x, Y: y, Kind: netlist.Filler,
		}))
	}
	return idx
}
