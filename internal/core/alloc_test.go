package core

import (
	"testing"

	"eplace/internal/nesterov"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
)

// TestNesterovIterationAllocFree pins the tentpole allocation contract:
// one full Nesterov iteration of the global-placement loop — the
// momentum step with its gradient evaluation (fused wirelength kernel,
// density rasterize/solve/force), the once-per-iteration position
// scatter into the compiled view, the exact HPWL and the overflow
// check — allocates nothing at Workers=1 once the scratch buffers are
// warm.
func TestNesterovIterationAllocFree(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "alloc-iter", NumCells: 400, NumMovableMacros: 2})
	idx := d.Movable()
	opt := Options{GridM: 32, Workers: 1}
	opt.defaults()
	rec := telemetry.New()
	rec.SetStage("mGP")
	e := mustEngine(t, d, idx, opt, rec)
	e.stage = "mGP"

	v0 := d.Positions(idx)
	e.clamp(v0)
	e.cv.SetPositions(e.idx, v0)
	e.dm.Refresh(e.idx)
	e.updateGamma(e.dm.Overflow(d.TargetDensity))
	e.initLambda(v0)

	o := nesterov.New(v0, e.gradient, e.clamp, 0.1)
	var hpwl, tau float64
	iteration := func() {
		o.Step(false)
		e.cv.SetPositions(e.idx, o.U)
		hpwl = e.cv.HPWL()
		tau = e.dm.Overflow(d.TargetDensity)
	}
	for i := 0; i < 3; i++ {
		iteration() // warm telemetry maps and per-worker scratch
	}
	if n := testing.AllocsPerRun(20, iteration); n != 0 {
		t.Errorf("one Nesterov iteration allocates %v times per run, want 0", n)
	}
	_, _ = hpwl, tau
}
