package core

import (
	"math"
	"testing"

	"eplace/internal/checkpoint"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
)

// mlSpec is large enough for a three-level hierarchy (the ~650-cluster
// middle level clears the clustering minimum again, the ~160-cluster
// coarsest does not).
func mlSpec() synth.Spec {
	return synth.Spec{Name: "ml-det", NumCells: 2600, NumFixedMacros: 4}
}

func mlFlowOpts(workers int) FlowOptions {
	return FlowOptions{
		GP:               Options{GridM: 64, MaxIters: 500, Workers: workers},
		Levels:           3,
		SkipLegalization: true,
	}
}

// TestMultilevelDeterministicAcrossWorkers: the V-cycle run at worker
// counts 1, 2 and 7 produces bit-identical results and identical golden
// digests at every level — coarsening is serial and the per-level
// engines keep their reduction trees fixed, so nothing may drift.
func TestMultilevelDeterministicAcrossWorkers(t *testing.T) {
	ref, err := Place(synth.Generate(mlSpec()), mlFlowOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.ML) != 2 {
		t.Fatalf("ML levels = %d, want 2 (hierarchy did not build?)", len(ref.ML))
	}
	if ref.ML[0].Level != 2 || ref.ML[1].Level != 1 {
		t.Fatalf("ML levels out of order: %+v", ref.ML)
	}
	stages := map[string]bool{}
	for _, sd := range ref.Digests {
		stages[sd.Stage] = true
	}
	for _, want := range []string{"mIP", "mGP/L2", "mGP/L1", "mGP"} {
		if !stages[want] {
			t.Errorf("no golden digest for stage %q (got %v)", want, ref.Digests)
		}
	}
	for _, workers := range []int{2, 7} {
		res, err := Place(synth.Generate(mlSpec()), mlFlowOpts(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if math.Float64bits(res.HPWL) != math.Float64bits(ref.HPWL) {
			t.Errorf("workers=%d: HPWL %v differs from reference %v", workers, res.HPWL, ref.HPWL)
		}
		if ok, why := telemetry.DigestsEqual(ref.Digests, res.Digests); !ok {
			t.Errorf("workers=%d: digests differ: %s", workers, why)
		}
	}
}

// runMLCheckpointed runs the multilevel flow with retained history
// snapshots every `every` GP iterations.
func runMLCheckpointed(t *testing.T, dir string, every int) (FlowResult, *checkpoint.Manager) {
	t.Helper()
	mgr, err := checkpoint.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr.History = true
	mgr.Keep = -1
	fo := mlFlowOpts(2)
	fo.GP.CheckpointEvery = every
	fo.Checkpoint = mgr
	res, err := Place(synth.Generate(mlSpec()), fo)
	if err != nil {
		t.Fatal(err)
	}
	return res, mgr
}

// TestMultilevelKillAndResume models a crash inside a coarse level's
// placement: mid-stage snapshots from both coarse levels (and the
// prelude boundaries) are resumed in fresh processes at a different
// worker count, and every resumed run must reproduce the uninterrupted
// run bit for bit, digests included.
func TestMultilevelKillAndResume(t *testing.T) {
	ref, mgr := runMLCheckpointed(t, t.TempDir(), 10)

	files, err := mgr.HistoryFiles()
	if err != nil {
		t.Fatal(err)
	}
	byPhase := map[string]*checkpoint.State{}
	for _, f := range files {
		st, err := checkpoint.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		byPhase[st.Phase] = st // last retained snapshot per phase wins
	}

	cases := []struct {
		phase string
		level int
		mid   bool
	}{
		{checkpoint.PhasePostMIP, 2, false},
		{checkpoint.PhaseMLevel(2), 2, true},
		{checkpoint.PhasePostMLevel(2), 1, false},
		{checkpoint.PhaseMLevel(1), 1, true},
		{checkpoint.PhasePostML, 0, false},
	}
	for _, tc := range cases {
		st := byPhase[tc.phase]
		if st == nil {
			t.Fatalf("no %q snapshot retained", tc.phase)
		}
		if st.Level != tc.level {
			t.Fatalf("%q snapshot at level %d, want %d", tc.phase, st.Level, tc.level)
		}
		if tc.mid && (st.GP == nil || st.GP.Iter <= 0) {
			t.Fatalf("%q snapshot carries no in-flight GP state", tc.phase)
		}
		fo := mlFlowOpts(7)
		fo.Resume = st
		res, err := Place(synth.Generate(mlSpec()), fo)
		if err != nil {
			t.Fatalf("resume from %q: %v", tc.phase, err)
		}
		if math.Float64bits(res.HPWL) != math.Float64bits(ref.HPWL) {
			t.Errorf("resume from %q: HPWL %v != %v", tc.phase, res.HPWL, ref.HPWL)
		}
		if ok, why := telemetry.DigestsEqual(ref.Digests, res.Digests); !ok {
			t.Errorf("resume from %q: digests differ: %s", tc.phase, why)
		}
	}
}

// TestMultilevelResumeRejectsFlatMismatch: a coarse-level snapshot must
// not resume into a flow configured without levels.
func TestMultilevelResumeRejectsFlatMismatch(t *testing.T) {
	_, mgr := runMLCheckpointed(t, t.TempDir(), 10)
	files, err := mgr.HistoryFiles()
	if err != nil {
		t.Fatal(err)
	}
	var coarse *checkpoint.State
	for _, f := range files {
		st, err := checkpoint.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if st.Level > 0 {
			coarse = st
		}
	}
	if coarse == nil {
		t.Fatal("no coarse-level snapshot retained")
	}
	fo := mlFlowOpts(1)
	fo.Levels = 1 // flat flow
	fo.Resume = coarse
	if _, err := Place(synth.Generate(mlSpec()), fo); err == nil {
		t.Error("coarse snapshot resumed into a flat flow; want an error")
	}
}

// TestMultilevelMatchesFlatQuality is the e2e quality guard: on
// scale-0.2 suite circuits the full multilevel flow must stay legal and
// land within 10% of the flat flow's final HPWL (measured runs are
// typically a few percent better; the margin absorbs noise across
// circuit shapes, not a real regression).
func TestMultilevelMatchesFlatQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("two full flows per circuit")
	}
	specs := []synth.Spec{
		synth.ISPD05Suite(0.2)[0], // ADAPTEC1: std cells + fixed blocks
		synth.ISPD06Suite(0.2)[1], // NEWBLUE1: whitespace-rich
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			flat, err := Place(synth.Generate(spec), FlowOptions{GP: Options{Workers: 2}})
			if err != nil {
				t.Fatal(err)
			}
			ml, err := Place(synth.Generate(spec), FlowOptions{GP: Options{Workers: 2}, Levels: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !ml.Legal {
				t.Fatal("multilevel result not legal")
			}
			if len(ml.ML) == 0 {
				t.Fatal("multilevel flow built no levels")
			}
			if ratio := ml.HPWL / flat.HPWL; ratio > 1.10 {
				t.Errorf("ML HPWL %.0f is %.1f%% worse than flat %.0f (allow 10%%)",
					ml.HPWL, 100*(ratio-1), flat.HPWL)
			}
		})
	}
}
