// Package core implements the ePlace engine: the nonlinear objective
// f(v) = W~(v) + lambda*N(v) of Eq. (4) over the eDensity model, solved
// by Nesterov's method with Lipschitz steplength prediction, the
// approximate preconditioner of Sec. V-D, filler cells, the iterative
// gamma/lambda schedules, and the staged mixed-size flow
// mIP -> mGP -> mLG -> cGP -> cDP of Fig. 1.
package core

import (
	"io"
	"time"

	"eplace/internal/checkpoint"
	"eplace/internal/telemetry"
)

// SolverKind selects the nonlinear optimizer.
type SolverKind uint8

const (
	// SolverNesterov is the paper's solver (Algorithms 1 and 2).
	SolverNesterov SolverKind = iota
	// SolverCG is conjugate gradient with line search: running the same
	// eDensity objective under CG reproduces the FFTPL predecessor the
	// paper compares against (footnote 2).
	SolverCG
)

// Options configures a global placement run.
type Options struct {
	// GridM is the bin-grid size per side; 0 picks grid.ChooseM.
	GridM int
	// TargetOverflow is the stopping density overflow tau (default 0.10).
	TargetOverflow float64
	// MaxIters bounds the solver iterations (default 3000, as the paper).
	MaxIters int
	// MinIters prevents spurious early stops (default 20).
	MinIters int
	// StallIters is the stagnation window: the run stops (Stagnated)
	// when overflow has not improved for this many iterations (default
	// 150). Warm-started incremental runs use a short window — their
	// overflow starts near the grid's quantization floor, and waiting
	// out a long window just grinds lambda upward while wirelength
	// degrades.
	StallIters int
	// LambdaScale multiplies the auto-balanced initial penalty (default
	// 1, the paper's gradient-norm balance). A converged warm start
	// needs a large scale: balancing against the flat density field of
	// an already-spread layout re-enters the early-cGP regime, and the
	// unfrozen cells collapse onto their neighbors chasing wirelength
	// slack before the penalty recovers. Ignored when the caller passes
	// an absolute lambda.
	LambdaScale float64
	// Solver selects Nesterov (default) or the CG/FFTPL baseline.
	Solver SolverKind
	// Workers is the worker count for the per-iteration gradient
	// kernels (WA wirelength, eDensity rasterize/solve/force, spectral
	// Poisson transforms) and, through the flow, for the back end too:
	// the mLG state build, band-sharded row legalization, and the
	// region-parallel cDP passes. 0 uses all cores, 1 runs fully
	// serial. Results are bitwise-identical for every setting; only
	// wall-clock time changes.
	Workers int
	// Poisson selects the density model's Poisson backend by name
	// (poisson.Kinds: "spectral", "spectral32", "multigrid"); "" selects
	// spectral. Within one backend results are bitwise-identical across
	// worker counts; across backends they differ by the backend's
	// approximation error.
	Poisson string

	// DisableBkTrk turns off steplength backtracking (Sec. V-C ablation).
	DisableBkTrk bool
	// AdaptiveRestart enables momentum restarts in the Nesterov solver
	// (an extension beyond the paper; see nesterov.Optimizer).
	AdaptiveRestart bool
	// DisablePrecond turns off the preconditioner (Sec. V-D ablation).
	DisablePrecond bool
	// DisableFillerPhase skips cGP's 20-iteration filler-only placement
	// (Sec. VI-B ablation).
	DisableFillerPhase bool
	// NoFillers disables filler insertion entirely (diagnostic).
	NoFillers bool

	// LambdaInit overrides the automatic gradient-norm-balancing initial
	// penalty factor when > 0.
	LambdaInit float64
	// RefDeltaHPWLFrac is the HPWL-change reference of the lambda
	// schedule, as a fraction of the current HPWL (default 0.01;
	// ePlace uses the absolute 3.5e5 on ~1e8 ISPD wirelengths).
	RefDeltaHPWLFrac float64

	// Seed drives filler placement and any tie-breaking (default 1).
	Seed int64

	// Trace, when non-nil, records one Sample per iteration.
	Trace *Trace

	// Telemetry, when non-nil, receives per-iteration samples,
	// stage/kernel spans and counters for the whole flow (JSONL/CSV
	// sinks, live status endpoint, benchmark reports). nil disables
	// recording at zero cost; results are bitwise-identical either way.
	Telemetry *telemetry.Recorder

	// Golden, when non-nil, absorbs every iteration's state (positions,
	// HPWL, lambda) into the per-stage rolling determinism digest.
	// Place installs one automatically; recording never influences
	// placement results.
	Golden *telemetry.GoldenTrace

	// CheckpointEvery > 0 makes the GP loop capture its in-flight state
	// every N iterations and hand it to CheckpointSink (Nesterov solver
	// only; the CG baseline checkpoints at stage boundaries only).
	CheckpointEvery int
	// CheckpointSink receives mid-stage GP snapshots; Place installs a
	// sink that wraps them with flow context and persists them via the
	// FlowOptions.Checkpoint manager. Called synchronously from the
	// iteration loop.
	CheckpointSink func(*checkpoint.GPState)
	// ResumeGP, when non-nil, re-enters the GP loop at the snapshot's
	// iteration instead of initializing gamma/lambda/optimizer from
	// scratch; the continued trajectory is bitwise-identical to the
	// uninterrupted run. Requires the Nesterov solver.
	ResumeGP *checkpoint.GPState
}

func (o *Options) defaults() {
	if o.TargetOverflow <= 0 {
		o.TargetOverflow = 0.10
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 3000
	}
	if o.MinIters <= 0 {
		o.MinIters = 20
	}
	if o.StallIters <= 0 {
		o.StallIters = 150
	}
	if o.LambdaScale <= 0 {
		o.LambdaScale = 1
	}
	if o.RefDeltaHPWLFrac <= 0 {
		o.RefDeltaHPWLFrac = 0.01
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Result summarizes a global placement run.
type Result struct {
	Iterations int
	HPWL       float64
	Overflow   float64
	// Diverged reports that the run was aborted and rolled back to the
	// best snapshot (the failure mode of the Sec. V-C/V-D ablations).
	Diverged bool
	// Stagnated reports that overflow stopped improving long before the
	// target (typically an infeasible density bound); the best snapshot
	// was returned.
	Stagnated bool
	// Canceled reports that the run was stopped by context cancellation
	// before reaching its stopping criterion. When a CheckpointSink was
	// installed, a final mid-stage snapshot was written first, so the
	// run is resumable from exactly where it stopped.
	Canceled bool
	// Backtracks is the total BkTrk count (Nesterov only).
	Backtracks int
	// Restarts is the adaptive-restart count (Nesterov only).
	Restarts int
	// Timing breakdown (Fig. 7).
	DensityTime    time.Duration
	WirelengthTime time.Duration
	OtherTime      time.Duration
	Total          time.Duration
	// CostEvals counts objective evaluations (CG line search only).
	CostEvals int
	// FinalLambda is the penalty factor at termination (used to seed cGP).
	FinalLambda float64
}

// Sample is one iteration record for Figures 2 and 3, shared with the
// telemetry subsystem (the JSONL schema lives there).
type Sample = telemetry.Sample

// Trace accumulates per-iteration samples across stages.
type Trace struct {
	Samples []Sample
}

// Add appends a sample.
func (t *Trace) Add(s Sample) { t.Samples = append(t.Samples, s) }

// Stage returns the samples belonging to one stage label.
func (t *Trace) Stage(name string) []Sample {
	var out []Sample
	for _, s := range t.Samples {
		if s.Stage == name {
			out = append(out, s)
		}
	}
	return out
}

// WriteCSV emits the trace as CSV (stage,iter,hpwl,tau,energy,lambda,
// gamma,alpha,backtracks), the raw data behind Figure 2. It adapts
// onto the telemetry CSV sink so the two formats cannot drift.
func (t *Trace) WriteCSV(w io.Writer) error {
	return telemetry.WriteSamplesCSV(w, t.Samples)
}
