package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"eplace/internal/checkpoint"
	"eplace/internal/detail"
	"eplace/internal/eco"
	"eplace/internal/geom"
	"eplace/internal/legalize"
	"eplace/internal/netlist"
	"eplace/internal/poisson"
	"eplace/internal/telemetry"
)

// ECOOptions configures an incremental re-placement run.
type ECOOptions struct {
	// GP configures the warm-started global placement over the active
	// cells (workers, Poisson backend, telemetry, golden trace).
	GP Options
	// LegalizeMethod selects the standard-cell legalizer for the
	// incremental cDP over the active cells.
	LegalizeMethod legalize.Method
	// Detail configures cDP refinement; SkipDetail stops after
	// legalization.
	Detail     detail.Options
	SkipDetail bool
	// MaxIters bounds the incremental GP stage (default 600: a warm
	// start near the density target converges in tens of iterations;
	// the bound only matters for pathological edits).
	MaxIters int
	// Perturb is the localized jitter radius applied to the edited
	// cells before the warm start, in multiples of the average standard
	// cell dimension (default 2). The jitter breaks the exact-stacking
	// symmetry of cells seeded at one net centroid — identical
	// positions feel identical gradients and would never separate.
	Perturb float64
	// Checkpoint, when non-nil, persists a done-phase snapshot of the
	// finished incremental placement, so further ECO runs (or the
	// server's job chaining) can stack on top of this one.
	Checkpoint *checkpoint.Manager
}

// ECOResult reports one incremental re-placement.
type ECOResult struct {
	// GP is the incremental global placement over the active cells
	// (stage "eGP"); zero-valued for no-op edits.
	GP Result
	// DP is the detail refinement over the active cells.
	DP detail.Result
	// HPWL and Legal describe the final full layout.
	HPWL  float64
	Legal bool
	// NoOp reports that the edit changed nothing structurally: the
	// previous placement was returned untouched, bit for bit.
	NoOp bool
	// ActiveCells and FrozenCells are the plan's split sizes.
	ActiveCells, FrozenCells int
	// LegalizeDisp and LegalizeMaxDisp are the incremental row
	// legalization's total and max displacement over the active cells.
	LegalizeDisp, LegalizeMaxDisp float64
	// Stages and StageTime mirror FlowResult's accounting.
	Stages    []StageSpan
	StageTime map[string]time.Duration
	// Digests are the per-stage golden digests ("eGP", "cDP", "final").
	// For a no-op edit the "final" digest equals the cold run's.
	Digests []telemetry.StageDigest
}

func (o *ECOOptions) defaults() {
	if o.MaxIters <= 0 {
		o.MaxIters = 600
	}
	if o.Perturb <= 0 {
		o.Perturb = 2
	}
}

// PlaceECO runs an incremental re-placement of d, which must hold the
// previous placement's positions with the edit script already applied
// (see eco.Prepare). Frozen cells are temporarily marked fixed — the
// wirelength model treats them as terminals, the density model
// rasterizes them as immovable charge, and legalization/detail route
// around them as obstacles — and are restored afterwards, bitwise at
// their input positions (enforced, not assumed). Only the plan's
// active cells move: a short Nesterov placement warm-started from the
// current positions (no mIP, no fillers), then row legalization and
// detail placement over the active cells only.
//
// An empty plan (structural no-op) short-circuits: positions are
// untouched and the "final" golden digest matches a cold run of the
// same design exactly, at any worker count.
func PlaceECO(ctx context.Context, d *netlist.Design, plan *eco.Plan, opt ECOOptions) (ECOResult, error) {
	opt.defaults()
	res := ECOResult{StageTime: map[string]time.Duration{}}
	if plan == nil {
		return res, fmt.Errorf("core: PlaceECO needs a freeze plan (see eco.Prepare)")
	}
	rec := opt.GP.Telemetry
	golden := opt.GP.Golden
	if golden == nil {
		golden = telemetry.NewGoldenTrace()
		opt.GP.Golden = golden
	}
	res.ActiveCells = len(plan.Active)
	res.FrozenCells = len(plan.Frozen)

	// The checkpoint fingerprint is taken now, before the run mutates
	// structure the fingerprint covers (row construction below): a
	// future ECO chaining off this result validates against a freshly
	// rebuilt, input-shaped design.
	fp := checkpoint.Fingerprint(d)

	movMacros := d.MovableOf(netlist.Macro)
	mixedSize := len(movMacros) > 0

	// Rows are part of the reused context: build them exactly as the
	// cold flow would, before any freezing hides standard cells from
	// the height vote.
	if len(d.Rows) == 0 {
		if h := stdCellHeight(d); h > 0 {
			legalize.BuildRows(d, h, 0)
		}
	}

	finish := func() error {
		stdCells := d.MovableOf(netlist.StdCell)
		res.HPWL = d.HPWL()
		res.Legal = len(d.Rows) > 0 && legalize.CheckLegal(d, stdCells) == nil
		if mixedSize && res.Legal {
			res.Legal = legalize.CheckMacrosLegal(d, movMacros) == nil
		}
		golden.Absorb("final", 0, d.Positions(d.Movable()), res.HPWL, 0)
		res.Digests = golden.Digests()
		if opt.Checkpoint != nil {
			st := &checkpoint.State{
				Phase:       checkpoint.PhaseDone,
				DesignName:  d.Name,
				Fingerprint: fp,
				MixedSize:   mixedSize,
				Poisson:     poisson.NormalizeKind(opt.GP.Poisson),
				Golden:      golden.State(),
			}
			st.CapturePositions(d, 0)
			return opt.Checkpoint.Save(st)
		}
		return nil
	}

	if len(plan.Active) == 0 {
		// Structural no-op: reuse the previous placement bit for bit.
		res.NoOp = true
		return res, finish()
	}

	// Freeze: everything movable outside the active set becomes a fixed
	// obstacle for the duration of the run. The original flags are
	// restored afterwards (the flow mutates fixedness the same way
	// during the cGP filler-only phase).
	wasFixed := make([]bool, len(d.Cells))
	for i := range d.Cells {
		wasFixed[i] = d.Cells[i].Fixed
	}
	for _, ci := range plan.Frozen {
		d.Cells[ci].Fixed = true
	}
	unfreeze := func() {
		for i := range d.Cells {
			d.Cells[i].Fixed = wasFixed[i]
		}
	}
	// Snapshot the frozen positions: ending anywhere else is a bug the
	// caller must see, not a silent quality loss.
	frozenX := make([]float64, len(plan.Frozen))
	frozenY := make([]float64, len(plan.Frozen))
	for k, ci := range plan.Frozen {
		frozenX[k] = d.Cells[ci].X
		frozenY[k] = d.Cells[ci].Y
	}

	// The active cells' input positions are their trusted legal slots
	// from the reused placement (except fresh cells, which never had
	// one): remembered here, before any perturbation, for the
	// post-eGP snap-back below.
	baseX := make([]float64, len(plan.Active))
	baseY := make([]float64, len(plan.Active))
	for k, ci := range plan.Active {
		baseX[k] = d.Cells[ci].X
		baseY[k] = d.Cells[ci].Y
	}
	freshSet := make(map[int]bool, len(plan.Fresh))
	for _, ci := range plan.Fresh {
		freshSet[ci] = true
	}

	// Localized perturbation of the fresh cells only: deterministic
	// jitter (seeded, serial) so stacked insertions seeded at one net
	// centroid separate under the density force. Pre-existing cells are
	// already at distinct converged positions and need no symmetry
	// breaking — jittering them would only add churn the snap-back has
	// to undo.
	aw, ah := avgActiveDim(d, plan.Active)
	jr := opt.Perturb * math.Max(aw, ah)
	rng := rand.New(rand.NewSource(opt.GP.Seed + 3))
	for _, ci := range plan.Fresh {
		c := &d.Cells[ci]
		if c.Fixed || c.Kind != netlist.StdCell {
			continue
		}
		ang := 2 * math.Pi * rng.Float64()
		r := jr * rng.Float64()
		c.X += r * math.Cos(ang)
		c.Y += r * math.Sin(ang)
		p := clampCell(c, d)
		c.X, c.Y = p.x, p.y
	}

	// --- eGP: warm-started global placement over the active cells. ---
	// Fillers occupy the whitespace exactly as in the cold flow: without
	// them the density force would spread the active cells into every
	// free pocket of the region, inflating wirelength far past the
	// converged placement being reused.
	gpOpt := opt.GP
	if gpOpt.MaxIters == 0 {
		gpOpt.MaxIters = opt.MaxIters
	}
	// A warm start opens at the grid's overflow quantization floor, not
	// at tau~1 like a cold run: the subset-relative overflow can never
	// reach the cold target, so chasing it only grinds lambda upward
	// (degrading the reused wirelength) until the stagnation guard
	// fires. Accept a slightly looser target and a short stall window —
	// the incremental legalizer resolves what the grid cannot see.
	if gpOpt.TargetOverflow <= 0 {
		gpOpt.TargetOverflow = 0.15
	}
	if gpOpt.StallIters <= 0 {
		gpOpt.StallIters = 25
	}
	// Resume in the late-cGP penalty regime (see Options.LambdaScale):
	// the reused layout is the equilibrium of a *grown* penalty, and
	// re-balancing from scratch lets the active cells collapse onto
	// frozen neighbors before density recovers — quality the legalizer
	// then pays back several times over in displacement.
	if gpOpt.LambdaScale <= 0 {
		gpOpt.LambdaScale = 10
	}
	t0 := time.Now()
	gpIdx := plan.Active
	if fillers := InsertFillers(d, opt.GP.Seed+1); len(fillers) > 0 {
		seedFillersInWhitespace(d, fillers, opt.GP.Seed+2)
		gpIdx = append(append(make([]int, 0, len(plan.Active)+len(fillers)), plan.Active...), fillers...)
	}
	var gpErr error
	res.GP, gpErr = PlaceGlobalContext(ctx, d, gpIdx, gpOpt, "eGP", 0)
	d.RemoveFillers()
	res.Stages = append(res.Stages, StageSpan{Name: "eGP", Time: time.Since(t0)})
	res.StageTime["eGP"] = time.Since(t0)
	if gpErr != nil {
		unfreeze()
		return res, gpErr
	}
	if res.GP.Canceled {
		unfreeze()
		return res, canceledAt("eGP")
	}
	if res.GP.Diverged {
		unfreeze()
		return res, fmt.Errorf("core: incremental placement diverged")
	}

	// --- Incremental cDP: legalize and refine the active cells only.
	// Frozen cells are fixed obstacles, so FreeSegments carves them out
	// of the rows and no pass can step on them. ---
	rec.SetStage("cDP")
	t0 = time.Now()
	if len(d.Rows) == 0 {
		unfreeze()
		return res, fmt.Errorf("core: cannot infer row height for incremental legalization")
	}
	// Snap-back: every active cell that still has a trusted slot returns
	// to its exact input position, pinned there through legalization —
	// the reused placement was legal, and its slots are disjoint by
	// construction. Only the fresh cells (which never had a slot) and
	// cells whose slot a new fixed footprint swallowed (a region
	// blockage) legalize, into whatever real whitespace is left; they
	// displace nothing. The alternatives both lose: legalizing the
	// active set from its raw eGP positions repacks every cell's drift
	// noise into the narrow gaps between frozen cells, and legalizing
	// it from snapped positions unpinned lets a fresh cell squat in a
	// full segment and evict its widest incumbent across the die (the
	// greedy pass prices the squatter's own displacement, not the
	// eviction it causes). Parking the fresh cell in the nearest gap
	// that genuinely fits costs a few units of its own wirelength,
	// which the detail pass below then claws back.
	var freshFixed, freshHalos []geom.Rect
	for _, ci := range plan.Fresh {
		c := &d.Cells[ci]
		if c.Fixed && c.W > 0 && c.H > 0 {
			r := c.Rect()
			freshFixed = append(freshFixed, r)
			// The displaced area has to land in a ring around the new
			// obstacle; cells in that ring must keep their eGP pushes or
			// the evictees pile onto whatever gaps the ring's pinned
			// occupants left. Ring width scales with the obstacle size.
			freshHalos = append(freshHalos, r.Expand(0.5*math.Sqrt(r.W()*r.H())))
		}
	}
	var snapped, moved []int
	for k, ci := range plan.Active {
		c := &d.Cells[ci]
		if freshSet[ci] {
			moved = append(moved, ci)
			continue
		}
		slot := geom.Rect{Lx: baseX[k] - c.W/2, Ly: baseY[k] - c.H/2, Hx: baseX[k] + c.W/2, Hy: baseY[k] + c.H/2}
		trusted := true
		for _, fr := range freshHalos {
			if ov := slot.Intersect(fr); ov.Valid() && ov.W() > 1e-9 && ov.H() > 1e-9 {
				trusted = false
				break
			}
		}
		if !trusted {
			moved = append(moved, ci)
			continue
		}
		c.X, c.Y = baseX[k], baseY[k]
		snapped = append(snapped, ci)
	}
	// Park each fresh movable cell at the point of its optimal region —
	// the exact minimizer of the weighted HPWL extension it causes,
	// computed against the snapped-back positions its neighbors keep —
	// nearest its eGP position. The eGP trajectory positioned it
	// against neighbors that have since reverted, so its raw drift
	// position is only an estimate; the closed-form one costs nothing
	// and leaves legalization shifting it within the flat bottom of the
	// wirelength bowl.
	type retarget struct {
		ci   int
		x, y float64
	}
	var retargets []retarget
	for _, ci := range plan.Fresh {
		c := &d.Cells[ci]
		if c.Fixed || c.Kind != netlist.StdCell {
			continue
		}
		x, okX := optimalCoord(d, ci, c.X, false)
		y, okY := optimalCoord(d, ci, c.Y, true)
		if okX || okY {
			if !okX {
				x = c.X
			}
			if !okY {
				y = c.Y
			}
			retargets = append(retargets, retarget{ci, x, y})
		}
	}
	for _, t := range retargets {
		c := &d.Cells[t.ci]
		c.X, c.Y = t.x, t.y
		cl := clampCell(c, d)
		c.X, c.Y = cl.x, cl.y
	}
	for _, ci := range snapped {
		d.Cells[ci].Fixed = true
	}
	if len(moved) > 0 {
		ltot, lmax, err := legalize.CellsWorkers(d, moved, opt.LegalizeMethod, opt.GP.Workers)
		if err != nil {
			unfreeze()
			return res, fmt.Errorf("core: incremental legalization failed: %w", err)
		}
		res.LegalizeDisp, res.LegalizeMaxDisp = ltot, lmax
	}
	// Unpin the snapped cells (unfreeze would do it too, but the detail
	// pass below must already see them movable so it can refine them).
	for _, ci := range snapped {
		d.Cells[ci].Fixed = wasFixed[ci]
	}
	if !opt.SkipDetail {
		dOpt := opt.Detail
		if dOpt.Telemetry == nil {
			dOpt.Telemetry = rec
		}
		if dOpt.Workers == 0 {
			dOpt.Workers = opt.GP.Workers
		}
		// The active set is a sliver of the design, so deeper refinement
		// is nearly free here — and it is the pass that recovers the
		// wirelength a fresh cell loses when no gap exists at its ideal
		// spot and legalization parks it a few rows away.
		if dOpt.Passes <= 0 {
			dOpt.Passes = 6
		}
		if dOpt.SwapCandidates <= 0 {
			dOpt.SwapCandidates = 16
		}
		dOpt.Golden = golden
		var err error
		res.DP, err = detail.Place(d, plan.Active, dOpt)
		if err != nil {
			unfreeze()
			return res, fmt.Errorf("core: incremental detail placement failed: %w", err)
		}
	}
	res.Stages = append(res.Stages, StageSpan{Name: "cDP", Time: time.Since(t0)})
	res.StageTime["cDP"] = time.Since(t0)

	unfreeze()
	for k, ci := range plan.Frozen {
		if d.Cells[ci].X != frozenX[k] || d.Cells[ci].Y != frozenY[k] {
			return res, fmt.Errorf("core: frozen cell %d (%s) moved from (%v, %v) to (%v, %v): freeze invariant violated",
				ci, d.Cells[ci].Name, frozenX[k], frozenY[k], d.Cells[ci].X, d.Cells[ci].Y)
		}
	}
	return res, finish()
}

// WarmStart loads a finished placement's snapshot into a freshly built
// design ahead of an ECO run: it validates that the snapshot belongs to
// d, requires a done-phase (filler-free) state, and restores the
// positions while keeping d's own Fixed flags. The flags matter: the
// flow pins macros after mLG, and that pinning is runtime state of the
// finished run, not netlist structure — letting it leak into the edited
// design would change its fingerprint and break chained ECO resumes.
func WarmStart(d *netlist.Design, st *checkpoint.State) error {
	if err := st.Validate(d); err != nil {
		return err
	}
	if st.Phase != checkpoint.PhaseDone || st.NumFillers != 0 {
		return fmt.Errorf("core: snapshot is at phase %q with %d fillers; incremental re-placement needs a finished run (phase %q)",
			st.Phase, st.NumFillers, checkpoint.PhaseDone)
	}
	fixed := make([]bool, len(d.Cells))
	for i := range d.Cells {
		fixed[i] = d.Cells[i].Fixed
	}
	if err := st.RestorePositions(d); err != nil {
		return err
	}
	for i := range fixed {
		d.Cells[i].Fixed = fixed[i]
	}
	return nil
}

// avgActiveDim returns the average width/height of the given cells.
func avgActiveDim(d *netlist.Design, idx []int) (w, h float64) {
	if len(idx) == 0 {
		return 1, 1
	}
	for _, ci := range idx {
		w += d.Cells[ci].W
		h += d.Cells[ci].H
	}
	return w / float64(len(idx)), h / float64(len(idx))
}

// clampCell keeps a cell's center inside the region respecting size.
// optimalCoord returns the point nearest cur within the cell's optimal
// region along one axis: the minimizer set of the weighted sum of each
// net's bounding-interval extension, holding every other pin fixed. The
// objective is piecewise linear and convex with breakpoints at the
// nets' interval endpoints, so the minimizer is where the subgradient
// sum_n w_n*([x > h_n] - [x < l_n]) crosses zero. ok is false when the
// cell has no nets with other pins.
func optimalCoord(d *netlist.Design, ci int, cur float64, yAxis bool) (best float64, ok bool) {
	type event struct {
		x     float64
		slope float64 // subgradient step when passing x left to right
	}
	var events []event
	for _, pi := range d.Cells[ci].Pins {
		ni := d.Pins[pi].Net
		n := &d.Nets[ni]
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, np := range n.Pins {
			p := &d.Pins[np]
			if p.Cell == ci {
				continue
			}
			v := p.Ox
			if yAxis {
				v = p.Oy
			}
			if p.Cell >= 0 {
				if yAxis {
					v += d.Cells[p.Cell].Y
				} else {
					v += d.Cells[p.Cell].X
				}
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if lo > hi {
			continue
		}
		w := n.EffWeight()
		events = append(events, event{lo, w}, event{hi, w})
	}
	if len(events) == 0 {
		return cur, false
	}
	sort.Slice(events, func(a, b int) bool { return events[a].x < events[b].x })
	// Subgradient left of all events is -sum of net weights (every net
	// pulls right); it gains each event's slope as x passes it. The
	// optimal region spans from the event that brings it to >= 0
	// through the last event where it stays 0.
	total := 0.0
	for _, e := range events {
		total += e.slope
	}
	g := -total / 2
	lo, hi := events[0].x, events[len(events)-1].x
	for i, e := range events {
		g += e.slope
		if g >= 0 {
			lo = e.x
			hi = e.x
			for j := i + 1; j < len(events) && g == 0; j++ {
				hi = events[j].x
				g += events[j].slope
			}
			break
		}
	}
	if cur < lo {
		return lo, true
	}
	if cur > hi {
		return hi, true
	}
	return cur, true
}

type clamped struct{ x, y float64 }

func clampCell(c *netlist.Cell, d *netlist.Design) clamped {
	hw, hh := c.W/2, c.H/2
	x := math.Min(math.Max(c.X, d.Region.Lx+hw), d.Region.Hx-hw)
	y := math.Min(math.Max(c.Y, d.Region.Ly+hh), d.Region.Hy-hh)
	return clamped{x, y}
}

// seedFillersInWhitespace moves freshly inserted fillers from their
// uniform-random positions into the placement's actual whitespace,
// proportionally to per-bin free area. A warm start must open near its
// converged state: fillers dropped uniformly overlap the placed cells,
// and the density force resolving that artificial overlap shoves the
// active cells off the good positions the ECO run is trying to reuse.
func seedFillersInWhitespace(d *netlist.Design, fillers []int, seed int64) {
	if len(fillers) == 0 {
		return
	}
	const n = 64
	r := d.Region
	binW, binH := r.W()/n, r.H()/n
	if binW <= 0 || binH <= 0 {
		return
	}
	// InsertFillers appends, so everything before the first filler
	// index is a real cell.
	occ := make([]float64, n*n)
	for ci := 0; ci < fillers[0]; ci++ {
		cr := d.Cells[ci].Rect()
		lx, hx := math.Max(cr.Lx, r.Lx), math.Min(cr.Hx, r.Hx)
		ly, hy := math.Max(cr.Ly, r.Ly), math.Min(cr.Hy, r.Hy)
		if hx <= lx || hy <= ly {
			continue
		}
		bx0, bx1 := binClamp(int((lx-r.Lx)/binW), n), binClamp(int((hx-r.Lx)/binW), n)
		by0, by1 := binClamp(int((ly-r.Ly)/binH), n), binClamp(int((hy-r.Ly)/binH), n)
		for by := by0; by <= by1; by++ {
			y0 := r.Ly + float64(by)*binH
			oy := math.Min(hy, y0+binH) - math.Max(ly, y0)
			if oy <= 0 {
				continue
			}
			for bx := bx0; bx <= bx1; bx++ {
				x0 := r.Lx + float64(bx)*binW
				if ox := math.Min(hx, x0+binW) - math.Max(lx, x0); ox > 0 {
					occ[by*n+bx] += ox * oy
				}
			}
		}
	}
	cum := make([]float64, n*n)
	total := 0.0
	for b, o := range occ {
		if f := binW*binH - o; f > 0 {
			total += f
		}
		cum[b] = total
	}
	if total <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	for k, fi := range fillers {
		t := (float64(k) + 0.5) / float64(len(fillers)) * total
		b := sort.SearchFloat64s(cum, t)
		if b >= n*n {
			b = n*n - 1
		}
		c := &d.Cells[fi]
		c.X = r.Lx + (float64(b%n)+rng.Float64())*binW
		c.Y = r.Ly + (float64(b/n)+rng.Float64())*binH
		p := clampCell(c, d)
		c.X, c.Y = p.x, p.y
	}
}

// binClamp clamps a bin coordinate into [0, n).
func binClamp(b, n int) int {
	if b < 0 {
		return 0
	}
	if b >= n {
		return n - 1
	}
	return b
}
