package core

import (
	"math"
	"testing"

	"eplace/internal/synth"
)

// TestPlaceGlobalWorkersDeterminism runs the same mGP problem at
// several worker counts and asserts bitwise-identical results: the
// parallel gradient pipeline must not change a single ULP of the
// optimization trajectory.
func TestPlaceGlobalWorkersDeterminism(t *testing.T) {
	run := func(workers int) (float64, float64, int) {
		d := synth.Generate(synth.Spec{Name: "workers-det", NumCells: 400, NumMovableMacros: 2})
		idx := d.Movable()
		res := mustPlaceGlobal(t, d, idx, Options{GridM: 32, MaxIters: 60, MinIters: 60, Workers: workers}, "mGP", 0)
		return res.HPWL, res.Overflow, res.Iterations
	}
	h1, o1, it1 := run(1)
	for _, workers := range []int{2, 7, 0} {
		h, o, it := run(workers)
		if math.Float64bits(h) != math.Float64bits(h1) || math.Float64bits(o) != math.Float64bits(o1) || it != it1 {
			t.Fatalf("workers=%d: (HPWL %v, tau %v, iters %d) != workers=1 (%v, %v, %d)",
				workers, h, o, it, h1, o1, it1)
		}
	}
}
