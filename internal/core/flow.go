package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"eplace/internal/checkpoint"
	"eplace/internal/cluster"
	"eplace/internal/detail"
	"eplace/internal/legalize"
	"eplace/internal/netlist"
	"eplace/internal/poisson"
	"eplace/internal/qp"
	"eplace/internal/telemetry"
)

// FlowOptions configures the full placement flow of Fig. 1.
type FlowOptions struct {
	// GP configures both global placement stages (mGP and cGP).
	GP Options
	// MIP configures the quadratic initial placement.
	MIP qp.Options
	// MLG configures the annealing macro legalizer.
	MLG legalize.MLGOptions
	// Detail configures cDP refinement.
	Detail detail.Options
	// LegalizeMethod selects the cDP standard-cell legalizer.
	LegalizeMethod legalize.Method
	// SkipDetail stops after legalization (diagnostics).
	SkipDetail bool
	// SkipLegalization stops after global placement, leaving an
	// overlapping layout (global-placement-quality studies).
	SkipLegalization bool
	// CGPFillerIters is the filler-only placement length (default 20,
	// Sec. VI-B).
	CGPFillerIters int
	// MacroHalo inflates every movable macro by this margin per side
	// during mGP's density model only (restored before mLG), the
	// "deadspace allocation by appropriate macro inflation" the paper
	// mentions in Sec. III. Larger halos leave more breathing room
	// around macros for the standard cells.
	MacroHalo float64

	// Levels enables multilevel (V-cycle) placement when > 1: the design
	// is coarsened up to Levels-1 times by best-choice clustering
	// (internal/cluster), mIP and the first global placement run on the
	// coarsest netlist, each finer level refines a warm start
	// interpolated from above (stages "mGP/L<k>", coarsest first), and
	// only the finest level runs the full mGP→mLG→cGP→cDP tail. 0 or 1
	// places flat. Clustering stops early on designs too small to pay
	// off, in which case the flow is identical to a flat run.
	Levels int
	// ClusterCap caps a cluster's area at this multiple of the average
	// movable standard-cell area (0 = the cluster package default).
	ClusterCap float64

	// Checkpoint, when non-nil, persists a crash-safe snapshot at every
	// stage boundary — and, with GP.CheckpointEvery > 0, every N GP
	// iterations mid-stage — so an interrupted flow can be continued
	// with Resume instead of restarting from scratch.
	Checkpoint *checkpoint.Manager
	// Resume continues a flow from a snapshot previously written via
	// Checkpoint. The design must be structurally identical (checked by
	// fingerprint); completed stages are skipped, a mid-stage snapshot
	// re-enters the GP loop at its captured iteration, and the final
	// placement is bitwise-identical to the uninterrupted run —
	// including the per-stage golden digests, whose rolling state is
	// part of the snapshot.
	Resume *checkpoint.State
}

func (o *FlowOptions) defaults() {
	if o.CGPFillerIters == 0 {
		o.CGPFillerIters = 20
	}
}

// StageSpan is one completed flow stage and its wall-clock time.
type StageSpan struct {
	Name string
	Time time.Duration
}

// FlowResult aggregates per-stage results of one full placement.
type FlowResult struct {
	MGP Result
	MLG legalize.MLGResult
	CGP Result
	DP  detail.Result

	// ML lists the coarse levels' global-placement results (coarsest
	// first) when the flow ran a multilevel V-cycle; empty for flat
	// runs. The finest level's result is MGP as usual.
	ML []MLLevel

	// HPWL is the final half-perimeter wirelength.
	HPWL float64
	// Legal reports that the final standard-cell layout passed
	// legalize.CheckLegal (and macros CheckMacrosLegal).
	Legal bool
	// MixedSize reports whether the mLG/cGP stages ran.
	MixedSize bool

	// Stages lists every stage that ran, in execution order, with its
	// wall-clock time (Fig. 7). Reports should iterate this rather
	// than a hardcoded stage list so new stages cannot be dropped.
	Stages []StageSpan
	// StageTime indexes Stages by name.
	StageTime map[string]time.Duration

	// Digests are the per-stage golden-trace hashes (rolling FNV-1a
	// over every iteration's positions, cost and lambda) in execution
	// order, ending with the "final" digest over the finished layout.
	// Two runs of the same flow are bitwise-identical iff these match,
	// at any worker count; the determinism CI job asserts exactly that.
	Digests []telemetry.StageDigest
}

// addStage appends a completed stage to both the ordered list and the
// name index, and emits its span to telemetry.
func (r *FlowResult) addStage(rec *telemetry.Recorder, name string, d time.Duration) {
	r.Stages = append(r.Stages, StageSpan{Name: name, Time: d})
	r.StageTime[name] = d
	rec.EmitSpan(name, "", d)
}

// Flow phases in execution order, used to decide which work a resumed
// run still has ahead of it.
const (
	phMIP = iota
	phML // multilevel prelude (coarsest mIP + per-level mGP/L<k>)
	phMGP
	phMLG
	phCGPFiller
	phCGP
	phCDP
	phDone
)

// resumePhase maps a checkpoint phase label to the first flow phase
// still to run and whether the snapshot is mid-stage (carries GPState).
func resumePhase(phase string) (int, bool, error) {
	if _, mid, ok := checkpoint.ParseMLPhase(phase); ok {
		return phML, mid, nil
	}
	switch phase {
	case checkpoint.PhasePostMIP:
		return phMGP, false, nil
	case checkpoint.PhasePostML:
		return phMGP, false, nil
	case checkpoint.PhaseMGP:
		return phMGP, true, nil
	case checkpoint.PhasePostMGP:
		return phMLG, false, nil
	case checkpoint.PhasePostMLG:
		return phCGPFiller, false, nil
	case checkpoint.PhaseCGPFiller:
		return phCGPFiller, true, nil
	case checkpoint.PhasePostCGPFiller:
		return phCGP, false, nil
	case checkpoint.PhaseCGP:
		return phCGP, true, nil
	case checkpoint.PhasePreCDP:
		return phCDP, false, nil
	case checkpoint.PhaseDone:
		return phDone, false, nil
	default:
		return 0, false, fmt.Errorf("core: unknown checkpoint phase %q", phase)
	}
}

// flowState assembles one full snapshot of the flow at a boundary. The
// fingerprint is the one computed over the *input* design at flow
// start, not recomputed here: the flow itself mutates structure the
// fingerprint covers (cDP builds rows when the design has none), and a
// resume always validates against a fresh input-shaped design.
func flowState(d *netlist.Design, fp uint64, phase, poissonKind string, numFillers int, res *FlowResult, golden *telemetry.GoldenTrace) *checkpoint.State {
	st := &checkpoint.State{
		Phase:          phase,
		DesignName:     d.Name,
		Fingerprint:    fp,
		MixedSize:      res.MixedSize,
		Poisson:        poissonKind,
		MGPIterations:  res.MGP.Iterations,
		MGPFinalLambda: res.MGP.FinalLambda,
		Golden:         golden.State(),
	}
	st.CapturePositions(d, numFillers)
	return st
}

// ErrCanceled is returned (wrapped, with the phase that was running)
// when a flow is stopped by context cancellation. The FlowResult
// returned alongside it carries the partial results of the stages that
// completed, and — when a checkpoint manager was installed — a final
// snapshot was persisted first, so the run is resumable from exactly
// where it stopped. Test with errors.Is(err, ErrCanceled).
var ErrCanceled = errors.New("core: placement canceled")

// Place runs the complete ePlace flow on d: quadratic initial placement
// (mIP), mixed-size global placement (mGP), annealing macro legalization
// (mLG) and standard-cell re-placement (cGP) when movable macros exist,
// then legalization plus detail placement (cDP). The design is modified
// in place; fillers are inserted and removed internally.
//
// With opt.Checkpoint set, the flow snapshots itself at every stage
// boundary (and every GP.CheckpointEvery iterations inside the GP
// loops); with opt.Resume set, it continues from such a snapshot and
// produces a final placement bitwise-identical to the uninterrupted
// run.
func Place(d *netlist.Design, opt FlowOptions) (FlowResult, error) {
	return PlaceContext(context.Background(), d, opt)
}

// PlaceContext is Place with cooperative cancellation, the primitive a
// job scheduler preempts placements with. The context is checked once
// per global-placement iteration and at every stage boundary; on
// cancellation the flow persists a final checkpoint (when a manager is
// installed — mid-stage inside the GP loops, so nothing past the last
// finished iteration is lost), stops, and returns the partial results
// with an error wrapping ErrCanceled. Resuming from that checkpoint
// finishes with per-stage golden digests bitwise-identical to an
// uninterrupted run's.
func PlaceContext(ctx context.Context, d *netlist.Design, opt FlowOptions) (FlowResult, error) {
	opt.defaults()
	res := FlowResult{StageTime: map[string]time.Duration{}}
	rec := opt.GP.Telemetry
	// The golden digest harness is always on: the engine absorbs one
	// hash update per iteration (negligible next to a gradient
	// evaluation) and the flow gains a determinism fingerprint for
	// every run.
	golden := opt.GP.Golden
	if golden == nil {
		golden = telemetry.NewGoldenTrace()
		opt.GP.Golden = golden
	}
	// emit forwards one sample to both the legacy Trace and telemetry.
	emit := func(s Sample) {
		if opt.GP.Trace != nil {
			opt.GP.Trace.Add(s)
		}
		rec.Sample(s)
	}

	movable := d.Movable()
	stdCells := d.MovableOf(netlist.StdCell)
	movMacros := d.MovableOf(netlist.Macro)
	res.MixedSize = len(movMacros) > 0

	// --- Resume bookkeeping. ---
	// The fingerprint is taken before the flow mutates any structure it
	// covers (row construction in cDP); every snapshot carries this
	// input-design value.
	fp := checkpoint.Fingerprint(d)
	// poissonKind is the normalized backend name stamped into every
	// snapshot and compared on resume: the backends produce numerically
	// distinct trajectories, so switching mid-run would break the
	// bitwise-reproducibility contract.
	poissonKind := poisson.NormalizeKind(opt.GP.Poisson)
	startPh := phMIP
	midGP := false
	rs := opt.Resume
	if rs != nil {
		if err := rs.Validate(d); err != nil {
			return res, err
		}
		if snap := poisson.NormalizeKind(rs.Poisson); snap != poissonKind {
			return res, fmt.Errorf("core: snapshot was taken with poisson backend %q but this run selects %q; resume with the matching backend (-poisson=%s) or restart from scratch (valid backends: %s)",
				snap, poissonKind, snap, strings.Join(poisson.Kinds(), ", "))
		}
		var err error
		startPh, midGP, err = resumePhase(rs.Phase)
		if err != nil {
			return res, err
		}
		if midGP && opt.GP.Solver != SolverNesterov {
			return res, fmt.Errorf("core: mid-stage resume requires the Nesterov solver")
		}
		if rs.MixedSize != res.MixedSize {
			return res, fmt.Errorf("core: snapshot mixed-size=%v but design mixed-size=%v",
				rs.MixedSize, res.MixedSize)
		}
		// Continue the rolling digests so final per-stage hashes match
		// the uninterrupted run's.
		golden.SetState(rs.Golden)
		res.MGP.Iterations = rs.MGPIterations
		res.MGP.FinalLambda = rs.MGPFinalLambda
	}

	// --- Multilevel hierarchy. ---
	// Built only when the V-cycle prelude still has work (fresh runs and
	// prelude-phase resumes). Clustering reads design structure only —
	// never positions — so a resumed process rebuilds the bit-identical
	// stack the fingerprint vouched for.
	var hier *cluster.Hierarchy
	if opt.Levels > 1 && (rs == nil || rs.Level > 0 || startPh <= phML) {
		hier = buildHierarchy(d, &opt)
	}
	if rs != nil && rs.Level > 0 {
		if hier == nil {
			return res, fmt.Errorf("core: snapshot %q (level %d) is from a multilevel run but this flow builds no levels (set Levels)",
				rs.Phase, rs.Level)
		}
		// A coarse post-mIP snapshot carries Level = coarsest; route it
		// (like the mGP/L<k> phases, mapped by resumePhase) into the
		// prelude, which restores onto the rebuilt coarse design.
		startPh = phML
	}
	// fillers is assigned before any GP stage runs; the checkpoint
	// closures read it at call time.
	var fillers []int

	// saveBoundary persists one stage-boundary snapshot. A requested
	// checkpoint that cannot be written is an error, not a silent skip:
	// the user asked for restartability.
	saveBoundary := func(phase string) error {
		if opt.Checkpoint == nil {
			return nil
		}
		return opt.Checkpoint.Save(flowState(d, fp, phase, poissonKind, len(fillers), &res, golden))
	}
	canceled := canceledAt
	// gpSink wraps mid-stage GP snapshots with flow context. Save
	// errors are carried out of the iteration loop via ckptErr. The sink
	// is installed whenever a manager exists — not only when a cadence
	// is set — because cancellation writes one final mid-stage snapshot
	// through it regardless of CheckpointEvery.
	var ckptErr error
	gpSink := func(phase string) func(*checkpoint.GPState) {
		if opt.Checkpoint == nil {
			return nil
		}
		return func(gs *checkpoint.GPState) {
			st := flowState(d, fp, phase, poissonKind, len(fillers), &res, golden)
			st.GP = gs
			if err := opt.Checkpoint.Save(st); err != nil && ckptErr == nil {
				ckptErr = err
			}
		}
	}

	// --- mIP: quadratic wirelength minimization over all movables. ---
	// In multilevel mode the prelude below runs mIP on the coarsest
	// netlist instead.
	if hier == nil && startPh <= phMIP {
		rec.SetStage("mIP")
		t0 := time.Now()
		qp.Place(d, movable, opt.MIP)
		golden.Absorb("mIP", 0, d.Positions(movable), d.HPWL(), 0)
		res.addStage(rec, "mIP", time.Since(t0))
		if rec.Active() {
			emit(Sample{Stage: "mIP", HPWL: d.HPWL()})
		}
		if err := saveBoundary(checkpoint.PhasePostMIP); err != nil {
			return res, err
		}
		if ctx.Err() != nil {
			return res, canceled(checkpoint.PhasePostMIP)
		}
	}

	// --- Multilevel prelude: coarsest mIP, then one warm-started global
	// placement per level, interpolating down to the finest design. ---
	if hier != nil && startPh <= phML {
		p := &mlPrelude{ctx: ctx, d: d, opt: &opt, res: &res, rec: rec,
			golden: golden, emit: emit, fp: fp, hier: hier}
		if err := p.run(rs); err != nil {
			return res, err
		}
	}

	// Fillers exist from mGP through cGP. A resumed run re-derives them
	// from the same seed (count and initial positions are functions of
	// design structure only), then overwrites every position the
	// snapshot captured.
	if startPh <= phCGP && !opt.GP.NoFillers {
		fillers = InsertFillers(d, opt.GP.Seed+1)
	}
	// Level>0 snapshots were consumed by the prelude (they hold coarse
	// positions); only finest-level (Level 0) snapshots restore here.
	if rs != nil && rs.Level == 0 {
		if rs.NumFillers > 0 && len(fillers) != rs.NumFillers {
			return res, fmt.Errorf("core: re-inserted %d fillers, snapshot has %d (design or options changed?)",
				len(fillers), rs.NumFillers)
		}
		if err := rs.RestorePositions(d); err != nil {
			return res, err
		}
	}

	if startPh >= phDone {
		// The snapshot is of a finished flow: recompute the summary.
		// Rows may have been flow-built in the original run; rebuild them
		// the same way so the legality check sees the same geometry.
		if len(d.Rows) == 0 {
			if h := stdCellHeight(d); h > 0 {
				legalize.BuildRows(d, h, 0)
			}
		}
		res.HPWL = d.HPWL()
		res.Legal = legalize.CheckLegal(d, stdCells) == nil
		if res.MixedSize && res.Legal {
			res.Legal = legalize.CheckMacrosLegal(d, movMacros) == nil
		}
		res.Digests = golden.Digests()
		return res, nil
	}

	// --- mGP: co-place cells, macros and fillers. ---
	gpIdx := append(append([]int(nil), movable...), fillers...)
	if startPh <= phMGP {
		t0 := time.Now()
		if opt.MacroHalo > 0 {
			inflateMacros(d, movMacros, opt.MacroHalo)
		}
		gpOpt := opt.GP
		gpOpt.CheckpointSink = gpSink(checkpoint.PhaseMGP)
		if midGP && startPh == phMGP {
			gpOpt.ResumeGP = rs.GP
		}
		var gpErr error
		res.MGP, gpErr = PlaceGlobalContext(ctx, d, gpIdx, gpOpt, "mGP", 0)
		if opt.MacroHalo > 0 {
			inflateMacros(d, movMacros, -opt.MacroHalo)
		}
		res.addStage(rec, "mGP", time.Since(t0))
		if gpErr != nil {
			return res, gpErr
		}
		if ckptErr != nil {
			return res, ckptErr
		}
		if res.MGP.Canceled {
			return res, canceled("mGP")
		}
		if res.MGP.Diverged {
			return res, fmt.Errorf("core: mGP diverged")
		}
		if err := saveBoundary(checkpoint.PhasePostMGP); err != nil {
			return res, err
		}
	}

	if res.MixedSize {
		// --- mLG: legalize and fix macros (std cells held). ---
		if startPh <= phMLG {
			rec.SetStage("mLG")
			t0 := time.Now()
			mlgOpt := opt.MLG
			if mlgOpt.Seed == 0 {
				mlgOpt.Seed = opt.GP.Seed + 2
			}
			if mlgOpt.Telemetry == nil {
				mlgOpt.Telemetry = rec
			}
			if mlgOpt.Workers == 0 {
				mlgOpt.Workers = opt.GP.Workers
			}
			res.MLG = legalize.Macros(d, movMacros, mlgOpt)
			golden.Absorb("mLG", 0, d.Positions(movMacros), d.HPWL(), 0)
			res.addStage(rec, "mLG", time.Since(t0))
			if !res.MLG.Legal {
				return res, fmt.Errorf("core: mLG left macro overlap %v", res.MLG.OmAfter)
			}
			if err := saveBoundary(checkpoint.PhasePostMLG); err != nil {
				return res, err
			}
			if ctx.Err() != nil {
				return res, canceled(checkpoint.PhasePostMLG)
			}
		}

		// --- cGP: filler-only placement, then free the std cells. ---
		t0 := time.Now()
		if startPh <= phCGPFiller {
			if !opt.GP.DisableFillerPhase && len(fillers) > 0 {
				// Standard cells are held in place during the filler-only
				// iterations; they must contribute charge as fixed objects or
				// the fillers would spread as if the cells did not exist.
				for _, ci := range stdCells {
					d.Cells[ci].Fixed = true
				}
				fOpt := opt.GP
				fOpt.MaxIters = opt.CGPFillerIters
				fOpt.MinIters = opt.CGPFillerIters
				fOpt.TargetOverflow = 1e-9
				fOpt.Trace = opt.GP.Trace
				fOpt.CheckpointSink = gpSink(checkpoint.PhaseCGPFiller)
				if midGP && startPh == phCGPFiller {
					fOpt.ResumeGP = rs.GP
				}
				fRes, gpErr := PlaceGlobalContext(ctx, d, fillers, fOpt, "cGP-filler", 1)
				for _, ci := range stdCells {
					d.Cells[ci].Fixed = false
				}
				if gpErr != nil {
					return res, gpErr
				}
				if ckptErr != nil {
					return res, ckptErr
				}
				if fRes.Canceled {
					// The snapshot was taken with the std cells pinned; the
					// captured Fixed flags restore that on resume.
					return res, canceled("cGP-filler")
				}
			}
			if err := saveBoundary(checkpoint.PhasePostCGPFiller); err != nil {
				return res, err
			}
		}
		if startPh <= phCGP {
			// lambda_cGP = lambda_mGP_last * 1.1^-m, m = mGP iters / 10.
			m := float64(res.MGP.Iterations) / 10
			lambdaInit := res.MGP.FinalLambda * math.Pow(1.1, -m)
			cgpIdx := append(append([]int(nil), stdCells...), fillers...)
			gpOpt := opt.GP
			gpOpt.CheckpointSink = gpSink(checkpoint.PhaseCGP)
			if midGP && startPh == phCGP {
				gpOpt.ResumeGP = rs.GP
			}
			var gpErr error
			res.CGP, gpErr = PlaceGlobalContext(ctx, d, cgpIdx, gpOpt, "cGP", lambdaInit)
			res.addStage(rec, "cGP", time.Since(t0))
			if gpErr != nil {
				return res, gpErr
			}
			if ckptErr != nil {
				return res, ckptErr
			}
			if res.CGP.Canceled {
				return res, canceled("cGP")
			}
			if res.CGP.Diverged {
				return res, fmt.Errorf("core: cGP diverged")
			}
		}
	}

	// Fillers are placement aids only.
	d.RemoveFillers()
	fillers = nil

	if opt.SkipLegalization {
		res.HPWL = d.HPWL()
		res.Digests = golden.Digests()
		return res, nil
	}
	if err := saveBoundary(checkpoint.PhasePreCDP); err != nil {
		return res, err
	}
	if ctx.Err() != nil {
		// cDP is not internally interruptible (its repair passes have no
		// capturable mid-state); a cancellation landing here stops before
		// it starts, resumable from the pre-cDP boundary.
		return res, canceled(checkpoint.PhasePreCDP)
	}

	// --- cDP: row legalization + discrete refinement. ---
	rec.SetStage("cDP")
	t0 := time.Now()
	if len(d.Rows) == 0 {
		h := stdCellHeight(d)
		if h <= 0 {
			return res, fmt.Errorf("core: cannot infer row height")
		}
		legalize.BuildRows(d, h, 0)
	}
	tLG := time.Now()
	if _, _, err := legalize.CellsWorkers(d, stdCells, opt.LegalizeMethod, opt.GP.Workers); err != nil {
		return res, fmt.Errorf("core: legalization failed: %w", err)
	}
	rec.AddSpanTime("cDP", "legalize", time.Since(tLG))
	if !opt.SkipDetail {
		dOpt := opt.Detail
		if dOpt.Telemetry == nil {
			dOpt.Telemetry = rec
		}
		if dOpt.Workers == 0 {
			dOpt.Workers = opt.GP.Workers
		}
		dOpt.Golden = golden
		tDP := time.Now()
		var err error
		res.DP, err = detail.Place(d, stdCells, dOpt)
		if err != nil {
			return res, fmt.Errorf("core: detail placement failed: %w", err)
		}
		rec.AddSpanTime("cDP", "detail", time.Since(tDP))
	}
	res.addStage(rec, "cDP", time.Since(t0))

	res.HPWL = d.HPWL()
	res.Legal = legalize.CheckLegal(d, stdCells) == nil
	if res.MixedSize && res.Legal {
		res.Legal = legalize.CheckMacrosLegal(d, movMacros) == nil
	}
	// The headline digest: the finished layout over every movable.
	golden.Absorb("final", 0, d.Positions(movable), res.HPWL, 0)
	res.Digests = golden.Digests()
	if err := saveBoundary(checkpoint.PhaseDone); err != nil {
		return res, err
	}
	return res, nil
}

// inflateMacros grows (halo > 0) or restores (halo < 0) the movable
// macros' footprints by halo on every side, keeping centers fixed.
func inflateMacros(d *netlist.Design, macros []int, halo float64) {
	for _, mi := range macros {
		c := &d.Cells[mi]
		c.W += 2 * halo
		c.H += 2 * halo
	}
}

// stdCellHeight returns the dominant movable standard-cell height.
// Ties break toward the smaller height so the choice never depends on
// map iteration order (determinism contract: row construction feeds
// the final placement).
func stdCellHeight(d *netlist.Design) float64 {
	counts := map[float64]int{}
	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Fixed && c.Kind == netlist.StdCell {
			counts[c.H]++
		}
	}
	bestH, bestN := 0.0, 0
	for h, n := range counts {
		if n > bestN || (n == bestN && (bestN == 0 || h < bestH)) {
			bestH, bestN = h, n
		}
	}
	return bestH
}
