package core

import (
	"fmt"
	"math"
	"time"

	"eplace/internal/detail"
	"eplace/internal/legalize"
	"eplace/internal/netlist"
	"eplace/internal/qp"
	"eplace/internal/telemetry"
)

// FlowOptions configures the full placement flow of Fig. 1.
type FlowOptions struct {
	// GP configures both global placement stages (mGP and cGP).
	GP Options
	// MIP configures the quadratic initial placement.
	MIP qp.Options
	// MLG configures the annealing macro legalizer.
	MLG legalize.MLGOptions
	// Detail configures cDP refinement.
	Detail detail.Options
	// LegalizeMethod selects the cDP standard-cell legalizer.
	LegalizeMethod legalize.Method
	// SkipDetail stops after legalization (diagnostics).
	SkipDetail bool
	// SkipLegalization stops after global placement, leaving an
	// overlapping layout (global-placement-quality studies).
	SkipLegalization bool
	// CGPFillerIters is the filler-only placement length (default 20,
	// Sec. VI-B).
	CGPFillerIters int
	// MacroHalo inflates every movable macro by this margin per side
	// during mGP's density model only (restored before mLG), the
	// "deadspace allocation by appropriate macro inflation" the paper
	// mentions in Sec. III. Larger halos leave more breathing room
	// around macros for the standard cells.
	MacroHalo float64
}

func (o *FlowOptions) defaults() {
	if o.CGPFillerIters == 0 {
		o.CGPFillerIters = 20
	}
}

// StageSpan is one completed flow stage and its wall-clock time.
type StageSpan struct {
	Name string
	Time time.Duration
}

// FlowResult aggregates per-stage results of one full placement.
type FlowResult struct {
	MGP Result
	MLG legalize.MLGResult
	CGP Result
	DP  detail.Result

	// HPWL is the final half-perimeter wirelength.
	HPWL float64
	// Legal reports that the final standard-cell layout passed
	// legalize.CheckLegal (and macros CheckMacrosLegal).
	Legal bool
	// MixedSize reports whether the mLG/cGP stages ran.
	MixedSize bool

	// Stages lists every stage that ran, in execution order, with its
	// wall-clock time (Fig. 7). Reports should iterate this rather
	// than a hardcoded stage list so new stages cannot be dropped.
	Stages []StageSpan
	// StageTime indexes Stages by name.
	StageTime map[string]time.Duration
}

// addStage appends a completed stage to both the ordered list and the
// name index, and emits its span to telemetry.
func (r *FlowResult) addStage(rec *telemetry.Recorder, name string, d time.Duration) {
	r.Stages = append(r.Stages, StageSpan{Name: name, Time: d})
	r.StageTime[name] = d
	rec.EmitSpan(name, "", d)
}

// Place runs the complete ePlace flow on d: quadratic initial placement
// (mIP), mixed-size global placement (mGP), annealing macro legalization
// (mLG) and standard-cell re-placement (cGP) when movable macros exist,
// then legalization plus detail placement (cDP). The design is modified
// in place; fillers are inserted and removed internally.
func Place(d *netlist.Design, opt FlowOptions) (FlowResult, error) {
	opt.defaults()
	res := FlowResult{StageTime: map[string]time.Duration{}}
	rec := opt.GP.Telemetry
	// emit forwards one sample to both the legacy Trace and telemetry.
	emit := func(s Sample) {
		if opt.GP.Trace != nil {
			opt.GP.Trace.Add(s)
		}
		rec.Sample(s)
	}

	movable := d.Movable()
	stdCells := d.MovableOf(netlist.StdCell)
	movMacros := d.MovableOf(netlist.Macro)
	res.MixedSize = len(movMacros) > 0

	// --- mIP: quadratic wirelength minimization over all movables. ---
	rec.SetStage("mIP")
	t0 := time.Now()
	qp.Place(d, movable, opt.MIP)
	res.addStage(rec, "mIP", time.Since(t0))
	if rec.Active() {
		emit(Sample{Stage: "mIP", HPWL: d.HPWL()})
	}

	// --- mGP: co-place cells, macros and fillers. ---
	t0 = time.Now()
	var fillers []int
	if !opt.GP.NoFillers {
		fillers = InsertFillers(d, opt.GP.Seed+1)
	}
	gpIdx := append(append([]int(nil), movable...), fillers...)
	if opt.MacroHalo > 0 {
		inflateMacros(d, movMacros, opt.MacroHalo)
	}
	res.MGP = PlaceGlobal(d, gpIdx, opt.GP, "mGP", 0)
	if opt.MacroHalo > 0 {
		inflateMacros(d, movMacros, -opt.MacroHalo)
	}
	res.addStage(rec, "mGP", time.Since(t0))
	if res.MGP.Diverged {
		return res, fmt.Errorf("core: mGP diverged")
	}

	if res.MixedSize {
		// --- mLG: legalize and fix macros (std cells held). ---
		rec.SetStage("mLG")
		t0 = time.Now()
		mlgOpt := opt.MLG
		if mlgOpt.Seed == 0 {
			mlgOpt.Seed = opt.GP.Seed + 2
		}
		if mlgOpt.Telemetry == nil {
			mlgOpt.Telemetry = rec
		}
		res.MLG = legalize.Macros(d, movMacros, mlgOpt)
		res.addStage(rec, "mLG", time.Since(t0))
		if !res.MLG.Legal {
			return res, fmt.Errorf("core: mLG left macro overlap %v", res.MLG.OmAfter)
		}

		// --- cGP: filler-only placement, then free the std cells. ---
		t0 = time.Now()
		if !opt.GP.DisableFillerPhase && len(fillers) > 0 {
			// Standard cells are held in place during the filler-only
			// iterations; they must contribute charge as fixed objects or
			// the fillers would spread as if the cells did not exist.
			for _, ci := range stdCells {
				d.Cells[ci].Fixed = true
			}
			fOpt := opt.GP
			fOpt.MaxIters = opt.CGPFillerIters
			fOpt.MinIters = opt.CGPFillerIters
			fOpt.TargetOverflow = 1e-9
			fOpt.Trace = opt.GP.Trace
			PlaceGlobal(d, fillers, fOpt, "cGP-filler", 1)
			for _, ci := range stdCells {
				d.Cells[ci].Fixed = false
			}
		}
		// lambda_cGP = lambda_mGP_last * 1.1^-m, m = mGP iters / 10.
		m := float64(res.MGP.Iterations) / 10
		lambdaInit := res.MGP.FinalLambda * math.Pow(1.1, -m)
		cgpIdx := append(append([]int(nil), stdCells...), fillers...)
		res.CGP = PlaceGlobal(d, cgpIdx, opt.GP, "cGP", lambdaInit)
		res.addStage(rec, "cGP", time.Since(t0))
		if res.CGP.Diverged {
			return res, fmt.Errorf("core: cGP diverged")
		}
	}

	// Fillers are placement aids only.
	d.RemoveFillers()

	if opt.SkipLegalization {
		res.HPWL = d.HPWL()
		return res, nil
	}

	// --- cDP: row legalization + discrete refinement. ---
	rec.SetStage("cDP")
	t0 = time.Now()
	if len(d.Rows) == 0 {
		h := stdCellHeight(d)
		if h <= 0 {
			return res, fmt.Errorf("core: cannot infer row height")
		}
		legalize.BuildRows(d, h, 0)
	}
	tLG := time.Now()
	if _, _, err := legalize.Cells(d, stdCells, opt.LegalizeMethod); err != nil {
		return res, fmt.Errorf("core: legalization failed: %w", err)
	}
	rec.AddSpanTime("cDP", "legalize", time.Since(tLG))
	if !opt.SkipDetail {
		dOpt := opt.Detail
		if dOpt.Telemetry == nil {
			dOpt.Telemetry = rec
		}
		tDP := time.Now()
		var err error
		res.DP, err = detail.Place(d, stdCells, dOpt)
		if err != nil {
			return res, fmt.Errorf("core: detail placement failed: %w", err)
		}
		rec.AddSpanTime("cDP", "detail", time.Since(tDP))
	}
	res.addStage(rec, "cDP", time.Since(t0))

	res.HPWL = d.HPWL()
	res.Legal = legalize.CheckLegal(d, stdCells) == nil
	if res.MixedSize && res.Legal {
		res.Legal = legalize.CheckMacrosLegal(d, movMacros) == nil
	}
	return res, nil
}

// inflateMacros grows (halo > 0) or restores (halo < 0) the movable
// macros' footprints by halo on every side, keeping centers fixed.
func inflateMacros(d *netlist.Design, macros []int, halo float64) {
	for _, mi := range macros {
		c := &d.Cells[mi]
		c.W += 2 * halo
		c.H += 2 * halo
	}
}

// stdCellHeight returns the dominant movable standard-cell height.
func stdCellHeight(d *netlist.Design) float64 {
	counts := map[float64]int{}
	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Fixed && c.Kind == netlist.StdCell {
			counts[c.H]++
		}
	}
	bestH, bestN := 0.0, 0
	for h, n := range counts {
		if n > bestN {
			bestH, bestN = h, n
		}
	}
	return bestH
}
