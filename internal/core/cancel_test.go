package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"eplace/internal/checkpoint"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
)

// cancelAtSink cancels a context when a sample for (stage, iter)
// arrives — a deterministic way to interrupt a flow mid-stage from the
// outside, exactly as a scheduler preempting a job would.
type cancelAtSink struct {
	stage  string
	iter   int
	cancel context.CancelFunc
}

func (s *cancelAtSink) Sample(sm telemetry.Sample) {
	if sm.Stage == s.stage && sm.Iteration == s.iter {
		s.cancel()
	}
}
func (s *cancelAtSink) Span(telemetry.SpanRecord) {}
func (s *cancelAtSink) Close() error              { return nil }

// TestFlowCancelMidMGPResumesBitwise is the cancellation contract
// end-to-end: cancelling a flow mid-mGP returns ErrCanceled with the
// partial results, leaves a loadable mid-stage checkpoint even with no
// CheckpointEvery cadence configured, and resuming that checkpoint
// finishes with final HPWL and per-stage golden digests
// bitwise-identical to a never-interrupted run.
func TestFlowCancelMidMGPResumesBitwise(t *testing.T) {
	spec := detSpecs()[2] // mixed-size: every flow stage runs

	d0 := synth.Generate(spec)
	ref, err := Place(d0, detFlowOpts(1))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel fires during mGP iteration 12, so the loop
	// stops at the top of iteration 13.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := telemetry.New(&cancelAtSink{stage: "mGP", iter: 12, cancel: cancel})
	mgr, err := checkpoint.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fo := detFlowOpts(2)
	fo.GP.Telemetry = rec
	fo.Checkpoint = mgr // note: no CheckpointEvery — boundary cadence only
	d := synth.Generate(spec)
	res, err := PlaceContext(ctx, d, fo)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled flow returned %v, want ErrCanceled", err)
	}
	if !res.MGP.Canceled {
		t.Error("partial result does not mark mGP canceled")
	}
	if res.MGP.Iterations == 0 {
		t.Error("partial result carries no mGP iterations")
	}

	st, err := mgr.Load()
	if err != nil {
		t.Fatalf("no checkpoint after cancellation: %v", err)
	}
	if st.Phase != checkpoint.PhaseMGP {
		t.Fatalf("final checkpoint phase %q, want mid-mGP", st.Phase)
	}
	if st.GP == nil || st.GP.Iter != 13 {
		t.Fatalf("final checkpoint GP state %+v, want Iter=13", st.GP)
	}

	// Resume on a fresh design copy, at a different worker count.
	fo2 := detFlowOpts(7)
	fo2.Resume = st
	d2 := synth.Generate(spec)
	res2, err := Place(d2, fo2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res2.HPWL) != math.Float64bits(ref.HPWL) {
		t.Errorf("resumed HPWL %v differs from uninterrupted %v", res2.HPWL, ref.HPWL)
	}
	if ok, why := telemetry.DigestsEqual(ref.Digests, res2.Digests); !ok {
		t.Errorf("resumed digests differ from uninterrupted run: %s", why)
	}
	if !res2.Legal {
		t.Error("resumed flow not legal")
	}
}

// TestFlowCancelBeforeStart: a context already canceled at entry stops
// the flow at the first boundary with the typed error.
func TestFlowCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := synth.Generate(synth.Spec{Name: "cancel-pre", NumCells: 120})
	_, err := PlaceContext(ctx, d, detFlowOpts(1))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled flow returned %v, want ErrCanceled", err)
	}
}

// TestFlowCancelMidCGP: cancellation during the second GP loop leaves a
// mid-cGP snapshot that also resumes bitwise-identically.
func TestFlowCancelMidCGP(t *testing.T) {
	spec := detSpecs()[2]
	d0 := synth.Generate(spec)
	ref, err := Place(d0, detFlowOpts(1))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := telemetry.New(&cancelAtSink{stage: "cGP", iter: 5, cancel: cancel})
	mgr, err := checkpoint.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fo := detFlowOpts(1)
	fo.GP.Telemetry = rec
	fo.Checkpoint = mgr
	d := synth.Generate(spec)
	_, err = PlaceContext(ctx, d, fo)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled flow returned %v, want ErrCanceled", err)
	}
	st, err := mgr.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != checkpoint.PhaseCGP {
		t.Fatalf("checkpoint phase %q, want mid-cGP", st.Phase)
	}

	fo2 := detFlowOpts(2)
	fo2.Resume = st
	d2 := synth.Generate(spec)
	res2, err := Place(d2, fo2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res2.HPWL) != math.Float64bits(ref.HPWL) {
		t.Errorf("resumed HPWL %v differs from uninterrupted %v", res2.HPWL, ref.HPWL)
	}
	if ok, why := telemetry.DigestsEqual(ref.Digests, res2.Digests); !ok {
		t.Errorf("resumed digests differ: %s", why)
	}
}
