package core_test

import (
	"fmt"

	"eplace/internal/core"
	"eplace/internal/synth"
)

// Example runs the full mixed-size flow on a small synthetic circuit
// and checks the headline guarantees: a legal layout whose global
// placement converged below the 10% density-overflow target.
func Example() {
	d := synth.Generate(synth.Spec{
		Name:             "example",
		NumCells:         500,
		NumMovableMacros: 4,
	})
	res, err := core.Place(d, core.FlowOptions{
		GP: core.Options{GridM: 32, MaxIters: 800},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("legal:", res.Legal)
	fmt.Println("overflow below target:", res.MGP.Overflow <= 0.11)
	fmt.Println("macros legalized:", res.MLG.OmAfter == 0)
	// Output:
	// legal: true
	// overflow below target: true
	// macros legalized: true
}

// ExamplePlaceGlobal shows the standalone global placement engine: the
// caller controls filler insertion and reads the trace.
func ExamplePlaceGlobal() {
	d := synth.Generate(synth.Spec{Name: "gp-example", NumCells: 300})
	core.InsertFillers(d, 1)
	tr := &core.Trace{}
	res, _ := core.PlaceGlobal(d, d.Movable(), core.Options{
		GridM: 32, MaxIters: 600, Trace: tr,
	}, "mGP", 0)
	fmt.Println("converged:", res.Overflow <= 0.11 && !res.Diverged)
	fmt.Println("traced every iteration:", len(tr.Samples) == res.Iterations)
	// Output:
	// converged: true
	// traced every iteration: true
}
