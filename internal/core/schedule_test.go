package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"eplace/internal/netlist"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
)

// mustEngine builds the stage engine or fails the test.
func mustEngine(tb testing.TB, d *netlist.Design, idx []int, opt Options, rec *telemetry.Recorder) *engine {
	tb.Helper()
	e, err := newEngine(d, idx, opt, rec)
	if err != nil {
		tb.Fatalf("newEngine: %v", err)
	}
	return e
}

func TestGammaSchedule(t *testing.T) {
	d := testCircuit(100, 31)
	e := mustEngine(t, d, d.Movable(), Options{GridM: 32}, telemetry.New())
	bw := math.Min(e.dm.Grid.BinW, e.dm.Grid.BinH)
	// At tau = 1: gamma = 8*binW*10^{0.9*20/9 - 1} = 8*binW*10.
	e.updateGamma(1.0)
	if want := 8 * bw * 10; math.Abs(e.gamma-want) > 1e-9*want {
		t.Errorf("gamma(1.0) = %v, want %v", e.gamma, want)
	}
	// At tau = 0.1: gamma = 8*binW*0.1.
	e.updateGamma(0.1)
	if want := 8 * bw * 0.1; math.Abs(e.gamma-want) > 1e-9*want {
		t.Errorf("gamma(0.1) = %v, want %v", e.gamma, want)
	}
	// Monotone in tau.
	e.updateGamma(0.5)
	mid := e.gamma
	e.updateGamma(0.8)
	if e.gamma <= mid {
		t.Errorf("gamma not increasing with overflow: %v then %v", mid, e.gamma)
	}
}

func TestLambdaInitBalancesGradients(t *testing.T) {
	d := testCircuit(200, 32)
	idx := d.Movable()
	e := mustEngine(t, d, idx, Options{GridM: 32}, telemetry.New())
	v := d.Positions(idx)
	e.initLambda(v)
	if e.lambda <= 0 || math.IsInf(e.lambda, 0) || math.IsNaN(e.lambda) {
		t.Fatalf("lambda = %v", e.lambda)
	}
	// By construction sum|gW| == lambda * sum|gN|.
	e.wl.CostAndGradient(e.gw)
	e.dm.Refresh(idx)
	e.dm.Gradient(idx, e.gd)
	var sw, sd float64
	for i := range e.gw {
		sw += math.Abs(e.gw[i])
		sd += math.Abs(e.gd[i])
	}
	if math.Abs(e.lambda*sd-sw) > 1e-6*sw {
		t.Errorf("lambda %v does not balance %v / %v", e.lambda, sw, sd)
	}
}

func TestPlaceGlobalDeterministic(t *testing.T) {
	run := func() []float64 {
		d := testCircuit(200, 33)
		InsertFillers(d, 3)
		idx := d.Movable()
		mustPlaceGlobal(t, d, idx, Options{GridM: 32, MaxIters: 150, TargetOverflow: 0.3}, "mGP", 0)
		return d.Positions(idx)
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("position %d differs between identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFlowDeterministic(t *testing.T) {
	run := func() float64 {
		d := synth.Generate(synth.Spec{Name: "det-flow", NumCells: 300, NumMovableMacros: 3})
		res, err := Place(d, FlowOptions{GP: Options{GridM: 32, MaxIters: 500}})
		if err != nil {
			t.Fatal(err)
		}
		return res.HPWL
	}
	if a, b := run(), run(); a != b {
		t.Errorf("flow not deterministic: %v vs %v", a, b)
	}
}

func TestPreconditionerFloorsAtTinyLambda(t *testing.T) {
	d := testCircuit(50, 34)
	// An unconnected movable cell has degree 0; with lambda ~ 0 the
	// preconditioner must hit its floor rather than divide by ~zero.
	d.AddCell(netlistCell(1, 1, 5, 5))
	idx := d.Movable()
	e := mustEngine(t, d, idx, Options{GridM: 32}, telemetry.New())
	e.lambda = 1e-12
	v := d.Positions(idx)
	g := make([]float64, len(v))
	e.gradient(v, g)
	for i, gv := range g {
		if math.IsNaN(gv) || math.IsInf(gv, 0) {
			t.Fatalf("gradient[%d] = %v with degree-0 cell at tiny lambda", i, gv)
		}
	}
}

// netlistCell builds a plain movable standard cell literal.
func netlistCell(w, h, x, y float64) (c netlist.Cell) {
	c.W, c.H, c.X, c.Y = w, h, x, y
	return c
}

func TestTraceWriteCSV(t *testing.T) {
	tr := &Trace{}
	tr.Add(Sample{Stage: "mGP", Iteration: 0, HPWL: 100, Overflow: 0.9, Lambda: 0.1, Gamma: 5, Alpha: 1})
	tr.Add(Sample{Stage: "cGP", Iteration: 1, HPWL: 90, Overflow: 0.2, Backtracks: 2})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "stage,iter,hpwl") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "mGP,0,100") || !strings.HasPrefix(lines[2], "cGP,1,90") {
		t.Errorf("rows:\n%s", out)
	}
}
