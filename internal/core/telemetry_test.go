package core

import (
	"testing"

	"eplace/internal/telemetry"
)

// runFlow places a fresh copy of the test circuit and returns the final
// positions together with the flow result.
func runFlow(t *testing.T, rec *telemetry.Recorder) ([]float64, FlowResult) {
	t.Helper()
	d := testCircuit(220, 7)
	opt := FlowOptions{}
	opt.GP.MaxIters = 60
	opt.GP.GridM = 32
	opt.GP.Telemetry = rec
	res, err := Place(d, opt)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	return d.Positions(d.Movable()), res
}

// TestTelemetryDoesNotPerturbPlacement is the determinism guarantee:
// instrumentation only reads optimizer state, so running with a live
// recorder (sinks attached) must produce bitwise-identical positions to
// running with telemetry disabled.
func TestTelemetryDoesNotPerturbPlacement(t *testing.T) {
	ring := telemetry.NewRingSink(256)
	rec := telemetry.New(ring)
	posOn, resOn := runFlow(t, rec)
	posOff, resOff := runFlow(t, nil)
	if len(posOn) != len(posOff) {
		t.Fatalf("position vector length mismatch: %d vs %d", len(posOn), len(posOff))
	}
	for i := range posOn {
		if posOn[i] != posOff[i] {
			t.Fatalf("position %d differs with telemetry on: %v vs %v", i, posOn[i], posOff[i])
		}
	}
	if resOn.HPWL != resOff.HPWL {
		t.Errorf("HPWL differs with telemetry on: %v vs %v", resOn.HPWL, resOff.HPWL)
	}
	if rec.Samples() == 0 {
		t.Error("recorder collected no samples")
	}
	if len(ring.Samples()) == 0 {
		t.Error("ring sink received no samples")
	}
}

// TestFlowRecordsStageAndKernelSpans checks that a full flow populates
// the ordered stage list, the name index, and the per-kernel span
// aggregates the Fig. 7 breakdown is derived from.
func TestFlowRecordsStageAndKernelSpans(t *testing.T) {
	rec := telemetry.New()
	_, res := runFlow(t, rec)

	if len(res.Stages) == 0 {
		t.Fatal("FlowResult.Stages is empty")
	}
	if res.Stages[0].Name != "mIP" {
		t.Errorf("first stage = %q, want mIP", res.Stages[0].Name)
	}
	last := res.Stages[len(res.Stages)-1]
	if last.Name != "cDP" {
		t.Errorf("last stage = %q, want cDP", last.Name)
	}
	if len(res.Stages) != len(res.StageTime) {
		t.Errorf("Stages has %d entries, StageTime has %d", len(res.Stages), len(res.StageTime))
	}
	for _, st := range res.Stages {
		if got, ok := res.StageTime[st.Name]; !ok || got != st.Time {
			t.Errorf("StageTime[%q] = %v (present %v), want %v", st.Name, got, ok, st.Time)
		}
	}

	// Kernel aggregates: the engine must have timed both gradient
	// kernels under the mGP stage, and cDP must carry its sub-phases.
	if rec.SpanTime("mGP", "wirelength") <= 0 {
		t.Error("no mGP/wirelength span time recorded")
	}
	if rec.SpanTime("mGP", "density") <= 0 {
		t.Error("no mGP/density span time recorded")
	}
	if rec.SpanTime("cDP", "legalize") <= 0 {
		t.Error("no cDP/legalize span time recorded")
	}
	if rec.SpanTime("cDP", "detail") <= 0 {
		t.Error("no cDP/detail span time recorded")
	}
	// Stage-level spans were emitted for every completed stage.
	for _, st := range res.Stages {
		if rec.SpanTime(st.Name, "") != st.Time {
			t.Errorf("span %q = %v, want stage time %v", st.Name, rec.SpanTime(st.Name, ""), st.Time)
		}
	}
	if n := rec.Snapshot().Counters; len(n) == 0 {
		t.Error("no counters recorded (expected engine/grad_evals at least)")
	}
}

// TestResultTimingFromSpans checks that the engine's per-stage timing
// breakdown (satellite: densityTime/wlTime migrated onto spans) still
// reaches Result even when the caller supplies no recorder, and that
// recorder reuse across stages does not double-count.
func TestResultTimingFromSpans(t *testing.T) {
	rec := telemetry.New()
	_, res := runFlow(t, rec)
	if res.MGP.DensityTime <= 0 || res.MGP.WirelengthTime <= 0 {
		t.Errorf("mGP kernel times not populated: density=%v wl=%v",
			res.MGP.DensityTime, res.MGP.WirelengthTime)
	}
	// The per-result times must not exceed the recorder's aggregate for
	// the stage (they are deltas against the stage-entry baseline).
	if res.MGP.DensityTime > rec.SpanTime("mGP", "density") {
		t.Errorf("result density time %v exceeds span aggregate %v",
			res.MGP.DensityTime, rec.SpanTime("mGP", "density"))
	}
}
