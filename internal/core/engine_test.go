package core

import (
	"math"
	"math/rand"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/netlist"
)

// mustPlaceGlobal runs PlaceGlobal and fails the test on a
// configuration error (the tests here all use valid configurations).
func mustPlaceGlobal(tb testing.TB, d *netlist.Design, idx []int, opt Options, stage string, lambdaInit float64) Result {
	tb.Helper()
	res, err := PlaceGlobal(d, idx, opt, stage, lambdaInit)
	if err != nil {
		tb.Fatalf("PlaceGlobal(%s): %v", stage, err)
	}
	return res
}

// testCircuit builds a clustered synthetic circuit: nCells std cells in
// clusters with local nets plus global nets and a pad ring.
func testCircuit(nCells int, seed int64) *netlist.Design {
	rng := rand.New(rand.NewSource(seed))
	// Size region for ~70% utilization with 2x1.5 average cells.
	area := float64(nCells) * 3.0 / 0.7
	side := math.Ceil(math.Sqrt(area))
	d := netlist.New("test", geom.Rect{Hx: side, Hy: side})
	var cells []int
	for i := 0; i < nCells; i++ {
		w := 1.5 + rng.Float64()
		cells = append(cells, d.AddCell(netlist.Cell{
			W: w, H: 1.5,
			X: rng.Float64() * side, Y: rng.Float64() * side,
		}))
	}
	var pads []int
	for i := 0; i < 8; i++ {
		ang := 2 * math.Pi * float64(i) / 8
		pads = append(pads, d.AddCell(netlist.Cell{
			W: 1, H: 1,
			X:    side/2 + (side/2-0.5)*math.Cos(ang),
			Y:    side/2 + (side/2-0.5)*math.Sin(ang),
			Kind: netlist.Pad, Fixed: true,
		}))
	}
	// Clustered connectivity: consecutive index ranges share nets.
	clusterSize := 10
	for c := 0; c*clusterSize < nCells; c++ {
		base := c * clusterSize
		for k := 0; k < clusterSize; k++ {
			ni := d.AddNet("", 1)
			deg := 2 + rng.Intn(3)
			for p := 0; p < deg; p++ {
				d.Connect(cells[base+rng.Intn(min(clusterSize, nCells-base))], ni, 0, 0)
			}
		}
	}
	// Sparse global nets and pad nets.
	for k := 0; k < nCells/10; k++ {
		ni := d.AddNet("", 1)
		d.Connect(cells[rng.Intn(nCells)], ni, 0, 0)
		d.Connect(cells[rng.Intn(nCells)], ni, 0, 0)
	}
	for _, p := range pads {
		ni := d.AddNet("", 1)
		d.Connect(p, ni, 0, 0)
		d.Connect(cells[rng.Intn(nCells)], ni, 0, 0)
	}
	return d
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestInsertFillers(t *testing.T) {
	d := testCircuit(200, 1)
	movable := d.MovableArea()
	free := d.Region.Area() - d.FixedAreaInRegion()
	fill := InsertFillers(d, 7)
	if len(fill) == 0 {
		t.Fatal("no fillers inserted in under-utilized design")
	}
	got := d.FillerArea()
	want := d.TargetDensity*free - movable
	if math.Abs(got-want) > 0.02*want+fillerSlack(d) {
		t.Errorf("filler area %v, want ~%v", got, want)
	}
	for _, fi := range fill {
		c := &d.Cells[fi]
		if c.Kind != netlist.Filler {
			t.Fatal("non-filler returned")
		}
		if !d.Region.ContainsRect(c.Rect()) {
			t.Errorf("filler %d outside region: %v", fi, c.Rect())
		}
	}
}

// fillerSlack is one filler cell of tolerance from the floor division.
func fillerSlack(d *netlist.Design) float64 {
	for i := range d.Cells {
		if d.Cells[i].Kind == netlist.Filler {
			return d.Cells[i].Area() + 1
		}
	}
	return 1
}

func TestInsertFillersNoopWhenFull(t *testing.T) {
	d := netlist.New("full", geom.Rect{Hx: 10, Hy: 10})
	d.AddCell(netlist.Cell{W: 10, H: 10, X: 5, Y: 5})
	if fill := InsertFillers(d, 1); fill != nil {
		t.Errorf("fillers inserted into a full design: %d", len(fill))
	}
}

func TestPlaceGlobalReducesOverflow(t *testing.T) {
	d := testCircuit(400, 2)
	// Cluster everything at the center (a caricature of v_mIP).
	c := d.Region.Center()
	for _, ci := range d.Movable() {
		d.Cells[ci].X = c.X
		d.Cells[ci].Y = c.Y
	}
	InsertFillers(d, 3)
	idx := d.Movable()
	opt := Options{MaxIters: 800, GridM: 32}
	res := mustPlaceGlobal(t, d, idx, opt, "mGP", 0)
	if res.Diverged {
		t.Fatal("placement diverged")
	}
	if res.Overflow > 0.11 {
		t.Errorf("final overflow = %v, want <= 0.10 (+eps)", res.Overflow)
	}
	if res.Iterations >= 800 {
		t.Errorf("did not converge within 800 iterations")
	}
	// Every cell inside the region.
	for _, ci := range idx {
		if !d.Region.ContainsRect(d.Cells[ci].Rect()) {
			t.Errorf("cell %d escaped region", ci)
			break
		}
	}
}

func TestPlaceGlobalKeepsWirelengthReasonable(t *testing.T) {
	d := testCircuit(400, 4)
	idx := d.Movable()
	// Random start: GP must both spread and not blow up wirelength
	// relative to the random layout.
	randomHPWL := d.HPWL()
	InsertFillers(d, 3)
	res := mustPlaceGlobal(t, d, d.Movable(), Options{MaxIters: 800, GridM: 32}, "mGP", 0)
	if res.Diverged {
		t.Fatal("diverged")
	}
	if res.HPWL > randomHPWL {
		t.Errorf("placed HPWL %v worse than random %v", res.HPWL, randomHPWL)
	}
	_ = idx
}

func TestTraceRecordsProgress(t *testing.T) {
	d := testCircuit(200, 5)
	InsertFillers(d, 3)
	tr := &Trace{}
	res := mustPlaceGlobal(t, d, d.Movable(), Options{MaxIters: 300, GridM: 32, Trace: tr}, "mGP", 0)
	if len(tr.Samples) != res.Iterations {
		t.Errorf("trace has %d samples, result says %d iterations", len(tr.Samples), res.Iterations)
	}
	if len(tr.Stage("mGP")) != len(tr.Samples) {
		t.Error("stage filter lost samples")
	}
	// Overflow at the end below overflow at the start.
	first, last := tr.Samples[0], tr.Samples[len(tr.Samples)-1]
	if last.Overflow >= first.Overflow {
		t.Errorf("overflow did not fall: %v -> %v", first.Overflow, last.Overflow)
	}
}

func TestCGSolverAlsoConverges(t *testing.T) {
	d := testCircuit(200, 6)
	InsertFillers(d, 3)
	res := mustPlaceGlobal(t, d, d.Movable(), Options{
		MaxIters: 1200, GridM: 32, Solver: SolverCG, TargetOverflow: 0.15,
	}, "mGP", 0)
	if res.Diverged {
		t.Fatal("CG diverged")
	}
	if res.Overflow > 0.25 {
		t.Errorf("CG overflow = %v, want <= 0.25", res.Overflow)
	}
	if res.CostEvals == 0 {
		t.Error("CG reported no cost evaluations")
	}
}

func TestMixedSizeMacrosDoNotOscillate(t *testing.T) {
	d := testCircuit(300, 7)
	rng := rand.New(rand.NewSource(8))
	// Add movable macros connected into the netlist.
	var macros []int
	for i := 0; i < 4; i++ {
		mi := d.AddCell(netlist.Cell{
			W: d.Region.W() / 6, H: d.Region.H() / 6,
			X: d.Region.Center().X, Y: d.Region.Center().Y,
			Kind: netlist.Macro,
		})
		macros = append(macros, mi)
		for k := 0; k < 5; k++ {
			ni := d.AddNet("", 1)
			d.Connect(mi, ni, 0, 0)
			d.Connect(rng.Intn(300), ni, 0, 0)
		}
	}
	InsertFillers(d, 3)
	res := mustPlaceGlobal(t, d, d.Movable(), Options{MaxIters: 900, GridM: 32}, "mGP", 0)
	if res.Diverged {
		t.Fatal("mixed-size placement diverged")
	}
	if res.Overflow > 0.15 {
		t.Errorf("mixed-size overflow = %v", res.Overflow)
	}
	// Macros spread apart rather than stacked: pairwise center distance
	// above half a macro width.
	for i := 0; i < len(macros); i++ {
		for j := i + 1; j < len(macros); j++ {
			a, b := &d.Cells[macros[i]], &d.Cells[macros[j]]
			dist := math.Hypot(a.X-b.X, a.Y-b.Y)
			if dist < a.W/2 {
				t.Errorf("macros %d and %d still stacked (dist %v)", i, j, dist)
			}
		}
	}
}

func TestDisablePreconditionerDegrades(t *testing.T) {
	build := func() *netlist.Design {
		d := testCircuit(200, 9)
		rng := rand.New(rand.NewSource(10))
		for i := 0; i < 3; i++ {
			mi := d.AddCell(netlist.Cell{
				W: d.Region.W() / 5, H: d.Region.H() / 5,
				X: d.Region.Center().X, Y: d.Region.Center().Y,
				Kind: netlist.Macro,
			})
			for k := 0; k < 4; k++ {
				ni := d.AddNet("", 1)
				d.Connect(mi, ni, 0, 0)
				d.Connect(rng.Intn(200), ni, 0, 0)
			}
		}
		InsertFillers(d, 3)
		return d
	}
	d1 := build()
	with := mustPlaceGlobal(t, d1, d1.Movable(), Options{MaxIters: 600, GridM: 32}, "mGP", 0)
	d2 := build()
	without := mustPlaceGlobal(t, d2, d2.Movable(), Options{MaxIters: 600, GridM: 32, DisablePrecond: true}, "mGP", 0)
	// The unpreconditioned run must be clearly worse: diverged, not
	// converged, or much longer wirelength (Sec. V-D reports failures on
	// 9/16 benchmarks and +24.63% wirelength on the rest).
	degraded := without.Diverged ||
		without.Overflow > 2*math.Max(with.Overflow, 0.05) ||
		without.HPWL > 1.15*with.HPWL ||
		without.Iterations >= 600 && with.Iterations < 600
	if !degraded {
		t.Errorf("no degradation without preconditioner: with=%+v without=%+v", with, without)
	}
}

func TestPlaceGlobalEmptyMovable(t *testing.T) {
	d := netlist.New("empty", geom.Rect{Hx: 10, Hy: 10})
	d.AddCell(netlist.Cell{W: 2, H: 2, X: 5, Y: 5, Fixed: true})
	res := mustPlaceGlobal(t, d, nil, Options{}, "mGP", 0)
	if res.Diverged || res.Iterations != 0 {
		t.Errorf("empty placement: %+v", res)
	}
}

func TestTimingBreakdownPopulated(t *testing.T) {
	d := testCircuit(200, 11)
	InsertFillers(d, 3)
	res := mustPlaceGlobal(t, d, d.Movable(), Options{MaxIters: 100, GridM: 32, TargetOverflow: 0.5}, "mGP", 0)
	if res.DensityTime <= 0 || res.WirelengthTime <= 0 {
		t.Errorf("timing breakdown empty: %+v", res)
	}
	if res.Total < res.DensityTime+res.WirelengthTime {
		t.Errorf("total %v below parts %v + %v", res.Total, res.DensityTime, res.WirelengthTime)
	}
}
