package core

import (
	"testing"

	"eplace/internal/legalize"
	"eplace/internal/netlist"
	"eplace/internal/synth"
)

func TestFlowStdCellOnly(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "flow-std", NumCells: 600, NumFixedMacros: 4})
	res, err := Place(d, FlowOptions{GP: Options{GridM: 32, MaxIters: 800}})
	if err != nil {
		t.Fatal(err)
	}
	if res.MixedSize {
		t.Error("std-cell design reported mixed-size")
	}
	if !res.Legal {
		t.Error("final layout not legal")
	}
	if res.HPWL <= 0 {
		t.Error("no wirelength reported")
	}
	if res.MGP.Overflow > 0.12 {
		t.Errorf("mGP overflow = %v", res.MGP.Overflow)
	}
	// Fillers removed.
	for i := range d.Cells {
		if d.Cells[i].Kind == netlist.Filler {
			t.Fatal("fillers left in design")
		}
	}
	for _, stage := range []string{"mIP", "mGP", "cDP"} {
		if res.StageTime[stage] <= 0 {
			t.Errorf("stage %s has no recorded time", stage)
		}
	}
}

func TestFlowMixedSize(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "flow-mms", NumCells: 600, NumMovableMacros: 5})
	tr := &Trace{}
	res, err := Place(d, FlowOptions{GP: Options{GridM: 32, MaxIters: 800, Trace: tr}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MixedSize {
		t.Fatal("mixed-size not detected")
	}
	if !res.MLG.Legal {
		t.Error("macros not legalized")
	}
	if !res.Legal {
		t.Error("final layout not legal")
	}
	if err := legalize.CheckMacrosLegal(d, d.Macros()); err != nil {
		t.Errorf("macro legality: %v", err)
	}
	// All three GP stages traced.
	if len(tr.Stage("mGP")) == 0 || len(tr.Stage("cGP")) == 0 {
		t.Error("missing stage traces")
	}
	if len(tr.Stage("cGP-filler")) != 20 {
		t.Errorf("filler-only placement ran %d iterations, want 20", len(tr.Stage("cGP-filler")))
	}
	for _, stage := range []string{"mIP", "mGP", "mLG", "cGP", "cDP"} {
		if res.StageTime[stage] <= 0 {
			t.Errorf("stage %s has no recorded time", stage)
		}
	}
}

func TestFlowSkipLegalization(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "flow-skip", NumCells: 300})
	res, err := Place(d, FlowOptions{
		GP:               Options{GridM: 32, MaxIters: 500},
		SkipLegalization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Legal {
		t.Error("skipped legalization but reported legal")
	}
	if res.HPWL <= 0 {
		t.Error("no HPWL")
	}
}

func TestFlowDetailImprovesOverLegalized(t *testing.T) {
	d1 := synth.Generate(synth.Spec{Name: "flow-dp", NumCells: 500})
	r1, err := Place(d1, FlowOptions{GP: Options{GridM: 32, MaxIters: 600}, SkipDetail: true})
	if err != nil {
		t.Fatal(err)
	}
	d2 := synth.Generate(synth.Spec{Name: "flow-dp", NumCells: 500})
	r2, err := Place(d2, FlowOptions{GP: Options{GridM: 32, MaxIters: 600}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.HPWL > r1.HPWL {
		t.Errorf("detail placement worsened HPWL: %v vs %v", r2.HPWL, r1.HPWL)
	}
	if r2.DP.HPWLAfter > r2.DP.HPWLBefore {
		t.Errorf("cDP increased HPWL: %+v", r2.DP)
	}
}

func TestFlowFillerPhaseAblation(t *testing.T) {
	// Disabling the filler-only placement must not crash and should not
	// help (the paper reports +6.53% wirelength without it).
	d1 := synth.Generate(synth.Spec{Name: "flow-fa", NumCells: 500, NumMovableMacros: 4})
	r1, err := Place(d1, FlowOptions{GP: Options{GridM: 32, MaxIters: 700}})
	if err != nil {
		t.Fatal(err)
	}
	d2 := synth.Generate(synth.Spec{Name: "flow-fa", NumCells: 500, NumMovableMacros: 4})
	r2, err := Place(d2, FlowOptions{GP: Options{GridM: 32, MaxIters: 700, DisableFillerPhase: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Legal || !r2.Legal {
		t.Fatal("flows not legal")
	}
	if r2.HPWL < 0.9*r1.HPWL {
		t.Errorf("disabling filler phase helped substantially: %v vs %v", r2.HPWL, r1.HPWL)
	}
}

func TestStdCellHeightInference(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "h", NumCells: 100, RowHeight: 3})
	if h := stdCellHeight(d); h != 3 {
		t.Errorf("stdCellHeight = %v, want 3", h)
	}
}

func TestMacroHaloRestoredAndSpacing(t *testing.T) {
	d1 := synth.Generate(synth.Spec{Name: "halo", NumCells: 400, NumMovableMacros: 5, Utilization: 0.5})
	wBefore := make(map[int]float64)
	for _, mi := range d1.MovableOf(netlist.Macro) {
		wBefore[mi] = d1.Cells[mi].W
	}
	res, err := Place(d1, FlowOptions{GP: Options{GridM: 32, MaxIters: 700}, MacroHalo: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Legal {
		t.Fatal("halo flow not legal")
	}
	// Macro dimensions restored exactly.
	for mi, w := range wBefore {
		if d1.Cells[mi].W != w {
			t.Errorf("macro %d width %v, want %v (halo not restored)", mi, d1.Cells[mi].W, w)
		}
	}
}
