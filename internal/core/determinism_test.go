package core

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"eplace/internal/checkpoint"
	"eplace/internal/poisson"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
)

// detSpecs are the synthetic circuits of the reproducibility suite:
// std-cell-only, fixed-macro, and mixed-size (all three flow shapes).
func detSpecs() []synth.Spec {
	return []synth.Spec{
		{Name: "det-std", NumCells: 300},
		{Name: "det-fixed", NumCells: 280, NumFixedMacros: 3},
		{Name: "det-mms", NumCells: 260, NumMovableMacros: 3},
	}
}

func detFlowOpts(workers int) FlowOptions {
	return FlowOptions{GP: Options{GridM: 32, MaxIters: 500, Workers: workers}}
}

// TestFlowBitwiseDeterminism is the headline acceptance test: the full
// flow run twice — and at worker counts 1, 2 and 7 — produces the same
// final HPWL to the bit and identical per-stage golden digests on every
// circuit shape.
func TestFlowBitwiseDeterminism(t *testing.T) {
	for _, spec := range detSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			d0 := synth.Generate(spec)
			ref, err := Place(d0, detFlowOpts(1))
			if err != nil {
				t.Fatal(err)
			}
			if len(ref.Digests) == 0 {
				t.Fatal("flow produced no golden digests")
			}
			for _, workers := range []int{1, 2, 7} {
				d := synth.Generate(spec)
				res, err := Place(d, detFlowOpts(workers))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if math.Float64bits(res.HPWL) != math.Float64bits(ref.HPWL) {
					t.Errorf("workers=%d: HPWL %v differs from reference %v",
						workers, res.HPWL, ref.HPWL)
				}
				if ok, why := telemetry.DigestsEqual(ref.Digests, res.Digests); !ok {
					t.Errorf("workers=%d: digests differ: %s", workers, why)
				}
			}
		})
	}
}

// TestFlowBackEndParallelDeterminism extends the golden-digest
// property to a circuit big enough that the parallel back end is
// genuinely sharded: ~5000 std cells split row legalization into
// multiple bands and cDP into multiple regions, so the mLG/cDP digests
// cover the region-parallel passes, the propose/commit ISM protocol,
// and the banded legalizer — not just their single-shard degenerate
// forms.
func TestFlowBackEndParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement at 5000 cells")
	}
	spec := synth.Spec{Name: "det-backend", NumCells: 5000, NumMovableMacros: 2}
	opts := func(workers int) FlowOptions {
		return FlowOptions{GP: Options{GridM: 32, MaxIters: 80, MinIters: 10, Workers: workers}}
	}
	d0 := synth.Generate(spec)
	ref, err := Place(d0, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7} {
		d := synth.Generate(spec)
		res, err := Place(d, opts(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if math.Float64bits(res.HPWL) != math.Float64bits(ref.HPWL) {
			t.Errorf("workers=%d: HPWL %v differs from reference %v",
				workers, res.HPWL, ref.HPWL)
		}
		if ok, why := telemetry.DigestsEqual(ref.Digests, res.Digests); !ok {
			t.Errorf("workers=%d: digests differ: %s", workers, why)
		}
	}
}

// runCheckpointedFlow runs the mixed-size circuit with history-keeping
// checkpoints every `every` GP iterations and returns the result and
// the manager.
func runCheckpointedFlow(t *testing.T, dir string, every int) (FlowResult, *checkpoint.Manager) {
	t.Helper()
	mgr, err := checkpoint.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr.History = true
	mgr.Keep = -1 // these tests replay arbitrary retained snapshots
	fo := detFlowOpts(2)
	fo.GP.CheckpointEvery = every
	fo.Checkpoint = mgr
	d := synth.Generate(detSpecs()[2])
	res, err := Place(d, fo)
	if err != nil {
		t.Fatal(err)
	}
	return res, mgr
}

// TestFlowKillAndResume models a crash mid-mGP: a retained mid-stage
// snapshot is loaded into a fresh copy of the same design and the flow
// continued from it. The resumed run must reach a bitwise-identical
// final placement, including every per-stage digest — at a different
// worker count than the original, since determinism spans both axes.
func TestFlowKillAndResume(t *testing.T) {
	ref, mgr := runCheckpointedFlow(t, t.TempDir(), 20)

	files, err := mgr.HistoryFiles()
	if err != nil {
		t.Fatal(err)
	}
	var mid *checkpoint.State
	for _, f := range files {
		st, err := checkpoint.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if st.Phase == checkpoint.PhaseMGP {
			mid = st // last retained mid-mGP snapshot wins
		}
	}
	if mid == nil {
		t.Fatal("no mid-mGP snapshot retained (CheckpointEvery too large for the run?)")
	}
	if mid.GP == nil || mid.GP.Iter <= 0 {
		t.Fatalf("mid-mGP snapshot carries no GP state: %+v", mid.GP)
	}

	fo := detFlowOpts(7)
	fo.GP.CheckpointEvery = 20
	fo.Resume = mid
	d := synth.Generate(detSpecs()[2])
	res, err := Place(d, fo)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res.HPWL) != math.Float64bits(ref.HPWL) {
		t.Errorf("resumed HPWL %v differs from uninterrupted %v", res.HPWL, ref.HPWL)
	}
	if ok, why := telemetry.DigestsEqual(ref.Digests, res.Digests); !ok {
		t.Errorf("resumed digests differ: %s", why)
	}
	if !res.Legal {
		t.Error("resumed flow not legal")
	}
}

// TestFlowResumeFromBoundary resumes from every stage boundary (no
// in-flight optimizer state) and from the finished snapshot. The
// post-mLG and later boundaries matter specially: they skip the macro
// legalizer, which is what pins macros as fixed — the snapshot must
// restore those flags or cGP's density field would miss the macros.
func TestFlowResumeFromBoundary(t *testing.T) {
	ref, mgr := runCheckpointedFlow(t, t.TempDir(), 0) // boundaries only

	files, err := mgr.HistoryFiles()
	if err != nil {
		t.Fatal(err)
	}
	byPhase := map[string]*checkpoint.State{}
	for _, f := range files {
		st, err := checkpoint.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		byPhase[st.Phase] = st
	}
	for _, phase := range []string{
		checkpoint.PhasePostMIP, checkpoint.PhasePostMGP,
		checkpoint.PhasePostMLG, checkpoint.PhasePostCGPFiller,
		checkpoint.PhasePreCDP,
	} {
		st := byPhase[phase]
		if st == nil {
			t.Fatalf("no %q boundary snapshot", phase)
		}
		fo := detFlowOpts(1)
		fo.Resume = st
		d := synth.Generate(detSpecs()[2])
		res, err := Place(d, fo)
		if err != nil {
			t.Fatalf("resume from %q: %v", phase, err)
		}
		if math.Float64bits(res.HPWL) != math.Float64bits(ref.HPWL) {
			t.Errorf("resume from %q: HPWL %v != %v", phase, res.HPWL, ref.HPWL)
		}
		if ok, why := telemetry.DigestsEqual(ref.Digests, res.Digests); !ok {
			t.Errorf("resume from %q: digests differ: %s", phase, why)
		}
	}

	// latest.ckpt is the finished flow: resuming it just recomputes the
	// summary without re-running any stage.
	done, err := mgr.Load()
	if err != nil {
		t.Fatal(err)
	}
	if done.Phase != checkpoint.PhaseDone {
		t.Fatalf("latest snapshot phase = %q, want %q", done.Phase, checkpoint.PhaseDone)
	}
	fo2 := detFlowOpts(1)
	fo2.Resume = done
	d2 := synth.Generate(detSpecs()[2])
	res2, err := Place(d2, fo2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res2.HPWL) != math.Float64bits(ref.HPWL) {
		t.Errorf("done-resumed HPWL %v != %v", res2.HPWL, ref.HPWL)
	}
}

// TestFlowCheckpointCadence pins the mid-stage snapshot trigger: with
// CheckpointEvery=N the mGP loop writes a snapshot at every Nth
// absolute iteration, so the retained history holds floor(iters/N)
// mid-mGP files (alignment on absolute iteration numbers is what lets
// a resumed run checkpoint at the same points).
func TestFlowCheckpointCadence(t *testing.T) {
	every := 25
	res, mgr := runCheckpointedFlow(t, t.TempDir(), every)
	files, err := mgr.HistoryFiles()
	if err != nil {
		t.Fatal(err)
	}
	nMid := 0
	for _, f := range files {
		st, err := checkpoint.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if st.Phase == checkpoint.PhaseMGP {
			nMid++
			if st.GP == nil || st.GP.Iter%every != 0 {
				t.Errorf("%s: mid-mGP snapshot at iter %v, want multiple of %d",
					filepath.Base(f), st.GP, every)
			}
		}
	}
	want := res.MGP.Iterations / every
	if nMid != want {
		t.Errorf("retained %d mid-mGP snapshots, want %d (mGP ran %d iters)",
			nMid, want, res.MGP.Iterations)
	}
}

// TestFlowResumeRejectsForeignDesign: a snapshot must not silently
// resume onto a structurally different design.
func TestFlowResumeRejectsForeignDesign(t *testing.T) {
	_, mgr := runCheckpointedFlow(t, t.TempDir(), 0)
	st, err := mgr.Load()
	if err != nil {
		t.Fatal(err)
	}
	other := synth.Generate(synth.Spec{Name: "det-other", NumCells: 200})
	fo := detFlowOpts(1)
	fo.Resume = st
	if _, err := Place(other, fo); err == nil {
		t.Error("resume onto a different design succeeded; want fingerprint error")
	}
}

// TestFlowResumeRejectsBackendMismatch: the Poisson backends produce
// numerically distinct trajectories, so a snapshot taken under one
// backend must not silently continue under another.
func TestFlowResumeRejectsBackendMismatch(t *testing.T) {
	_, mgr := runCheckpointedFlow(t, t.TempDir(), 0)
	st, err := mgr.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Poisson != poisson.KindSpectral {
		t.Fatalf("snapshot backend = %q, want %q", st.Poisson, poisson.KindSpectral)
	}
	d := synth.Generate(detSpecs()[2])
	fo := detFlowOpts(1)
	fo.GP.Poisson = poisson.KindMultigrid
	fo.Resume = st
	_, err = Place(d, fo)
	if err == nil || !strings.Contains(err.Error(), "poisson backend") {
		t.Errorf("resume under a different backend: err = %v, want backend-mismatch error", err)
	}
	// The matching backend (spelled explicitly rather than as the ""
	// default) resumes fine.
	d2 := synth.Generate(detSpecs()[2])
	fo2 := detFlowOpts(1)
	fo2.GP.Poisson = poisson.KindSpectral
	fo2.Resume = st
	if _, err := Place(d2, fo2); err != nil {
		t.Errorf("resume under the matching backend failed: %v", err)
	}
}

// TestFlowBitwiseDeterminismPerBackend extends the headline determinism
// guarantee to the non-default Poisson backends: within each backend the
// flow is bitwise-identical across runs and worker counts 1, 2 and 7.
func TestFlowBitwiseDeterminismPerBackend(t *testing.T) {
	spec := detSpecs()[2]
	for _, kind := range []string{poisson.KindSpectral32, poisson.KindMultigrid} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			opts := func(workers int) FlowOptions {
				fo := detFlowOpts(workers)
				fo.GP.Poisson = kind
				return fo
			}
			d0 := synth.Generate(spec)
			ref, err := Place(d0, opts(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 7} {
				d := synth.Generate(spec)
				res, err := Place(d, opts(workers))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if math.Float64bits(res.HPWL) != math.Float64bits(ref.HPWL) {
					t.Errorf("workers=%d: HPWL %v differs from reference %v",
						workers, res.HPWL, ref.HPWL)
				}
				if ok, why := telemetry.DigestsEqual(ref.Digests, res.Digests); !ok {
					t.Errorf("workers=%d: digests differ: %s", workers, why)
				}
			}
		})
	}
}
