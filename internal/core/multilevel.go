package core

import (
	"fmt"
	"time"

	"context"

	"eplace/internal/checkpoint"
	"eplace/internal/cluster"
	"eplace/internal/netlist"
	"eplace/internal/poisson"
	"eplace/internal/qp"
	"eplace/internal/telemetry"
)

// MLLevel is one coarse level's global-placement result in a multilevel
// run, recorded coarsest-first. The finest level's result stays in
// FlowResult.MGP.
type MLLevel struct {
	// Level is the hierarchy level (Depth-1 = coarsest, 1 = the level
	// just above the input design).
	Level int
	// Cells is the level's cell count before fillers.
	Cells int
	// Result is the level's global-placement summary.
	Result Result
}

// buildHierarchy coarsens d for the V-cycle, or returns nil when
// multilevel mode is off or the design is too small for even one level
// to pay off (the flow then places flat, which is also what a resumed
// run of such a design deterministically rebuilds).
func buildHierarchy(d *netlist.Design, opt *FlowOptions) *cluster.Hierarchy {
	if opt.Levels <= 1 {
		return nil
	}
	h := cluster.Build(d, opt.Levels, cluster.Options{CapFactor: opt.ClusterCap})
	if h.Depth() <= 1 {
		return nil
	}
	return h
}

// mlGridM derives level k's bin grid from the finest-level override:
// halved per level (floored at the grid minimum) so coarse levels pair
// coarse bins with their reduced netlists. With GridM == 0 every level
// auto-sizes to its own object count (grid.ChooseM), which realizes
// the same coarse-early/fine-late schedule — the density grid refines
// exactly as the V-cycle descends and overflow drops.
func mlGridM(gridM, k int) int {
	if gridM <= 0 {
		return 0
	}
	m := gridM >> k
	if m < 16 {
		m = 16
	}
	return m
}

// coarseOverflow is the stopping overflow for level k (k >= 1, above
// the finest): coarse solutions are only warm starts for the next
// level, so each stops at a looser target the deeper it sits — 0.15 at
// L1, +0.05 per level, capped at 0.30. Chasing a tight target on a
// tiny coarse netlist is where a naive V-cycle loses its speedup: a
// coarsest level can burn hundreds of iterations closing the last few
// percent of overflow that interpolation then discards anyway.
func coarseOverflow(target float64, k int) float64 {
	f := 0.10 + 0.05*float64(k)
	if f > 0.30 {
		f = 0.30
	}
	if target > f {
		return target
	}
	return f
}

// canceledAt converts a cancellation observed at phase into the typed
// flow error (partial results travel in the FlowResult).
func canceledAt(phase string) error {
	return fmt.Errorf("%w (phase %s)", ErrCanceled, phase)
}

// mlPrelude drives the coarse half of the V-cycle inside PlaceContext:
// mIP on the coarsest level, one warm-started global placement per
// level (stages "mGP/L<k>", coarsest first), interpolation down after
// each, ending with the finest design holding warm-start positions.
type mlPrelude struct {
	ctx     context.Context
	d       *netlist.Design // finest (input) design
	opt     *FlowOptions
	res     *FlowResult
	rec     *telemetry.Recorder
	golden  *telemetry.GoldenTrace
	emit    func(Sample)
	fp      uint64
	hier    *cluster.Hierarchy
	ckptErr error
}

// state assembles one prelude snapshot: positions of the given level's
// design under the *input* design's name and fingerprint (what a resume
// validates against before rebuilding the hierarchy).
func (p *mlPrelude) state(phase string, level int, ld *netlist.Design, numFillers int) *checkpoint.State {
	st := &checkpoint.State{
		Phase:       phase,
		DesignName:  p.d.Name,
		Fingerprint: p.fp,
		MixedSize:   p.res.MixedSize,
		Poisson:     poisson.NormalizeKind(p.opt.GP.Poisson),
		Level:       level,
		Golden:      p.golden.State(),
	}
	st.CapturePositions(ld, numFillers)
	return st
}

// save persists one prelude boundary snapshot (same error contract as
// the flow's saveBoundary: a requested checkpoint that cannot be
// written is an error).
func (p *mlPrelude) save(phase string, level int, ld *netlist.Design, numFillers int) error {
	if p.opt.Checkpoint == nil {
		return nil
	}
	return p.opt.Checkpoint.Save(p.state(phase, level, ld, numFillers))
}

// run executes the prelude, resuming from rs when non-nil (rs must be a
// prelude-phase snapshot: post-mIP at the coarsest level, mid-stage
// mGP/L<k>, or the post-mGP/L<k> boundary). On success the finest
// design holds interpolated warm-start positions for the finest mGP.
func (p *mlPrelude) run(rs *checkpoint.State) error {
	K := p.hier.Depth() - 1
	startLevel, mipNeeded, resumeMid := K, true, false
	if rs != nil {
		mipNeeded = false
		if lvl, mid, ok := checkpoint.ParseMLPhase(rs.Phase); ok {
			if lvl < 1 || lvl > K {
				return fmt.Errorf("core: snapshot level L%d outside hierarchy depth %d", lvl, p.hier.Depth())
			}
			if mid {
				startLevel, resumeMid = lvl, true
			} else {
				// post-mGP/L<k>: level k was interpolated down; the
				// snapshot holds level k-1 positions.
				startLevel = lvl - 1
			}
		} else if rs.Phase == checkpoint.PhasePostMIP {
			if rs.Level != K {
				return fmt.Errorf("core: post-mIP snapshot at level %d, hierarchy coarsest is L%d (options changed?)", rs.Level, K)
			}
		} else {
			return fmt.Errorf("core: phase %q is not a multilevel prelude phase", rs.Phase)
		}
		if rs.Level != startLevel {
			return fmt.Errorf("core: snapshot level %d does not match phase %q (expect %d)", rs.Level, rs.Phase, startLevel)
		}
		if !resumeMid {
			ld := p.hier.Designs[startLevel]
			if rs.NumBaseCells != len(ld.Cells) || rs.NumFillers != 0 {
				return fmt.Errorf("core: level L%d rebuilt with %d cells, snapshot has %d+%d fillers (design or options changed?)",
					startLevel, len(ld.Cells), rs.NumBaseCells, rs.NumFillers)
			}
			if err := rs.RestorePositions(ld); err != nil {
				return err
			}
		}
	}

	for k := startLevel; k >= 1; k-- {
		ld := p.hier.Designs[k]
		if mipNeeded && k == K {
			// mIP runs on the coarsest netlist only — the quadratic
			// solve is one of the flat flow's scaling bottlenecks and a
			// coarse seed is all the V-cycle needs.
			p.rec.SetStage("mIP")
			t0 := time.Now()
			mv := ld.Movable()
			qp.Place(ld, mv, p.opt.MIP)
			p.golden.Absorb("mIP", 0, ld.Positions(mv), ld.HPWL(), 0)
			p.res.addStage(p.rec, "mIP", time.Since(t0))
			if p.rec.Active() {
				p.emit(Sample{Stage: "mIP", HPWL: ld.HPWL()})
			}
			if err := p.save(checkpoint.PhasePostMIP, K, ld, 0); err != nil {
				return err
			}
			if p.ctx.Err() != nil {
				return canceledAt(checkpoint.PhasePostMIP)
			}
		}

		stage := checkpoint.PhaseMLevel(k)
		movable := ld.Movable()
		var fillers []int
		if !p.opt.GP.NoFillers {
			fillers = InsertFillers(ld, p.opt.GP.Seed+1)
		}
		if resumeMid && k == startLevel {
			if len(fillers) != rs.NumFillers {
				return fmt.Errorf("core: level L%d re-inserted %d fillers, snapshot has %d (design or options changed?)",
					k, len(fillers), rs.NumFillers)
			}
			if rs.NumBaseCells != len(ld.Cells)-len(fillers) {
				return fmt.Errorf("core: level L%d rebuilt with %d cells, snapshot expects %d before fillers",
					k, len(ld.Cells)-len(fillers), rs.NumBaseCells)
			}
			if err := rs.RestorePositions(ld); err != nil {
				return err
			}
		}

		movMacros := ld.MovableOf(netlist.Macro)
		if p.opt.MacroHalo > 0 {
			inflateMacros(ld, movMacros, p.opt.MacroHalo)
		}
		gpOpt := p.opt.GP
		gpOpt.GridM = mlGridM(p.opt.GP.GridM, k)
		gpOpt.TargetOverflow = coarseOverflow(gpOpt.TargetOverflow, k)
		gpOpt.CheckpointSink = nil
		if p.opt.Checkpoint != nil {
			numFillers := len(fillers)
			level := k
			gpOpt.CheckpointSink = func(gs *checkpoint.GPState) {
				st := p.state(stage, level, ld, numFillers)
				st.GP = gs
				if err := p.opt.Checkpoint.Save(st); err != nil && p.ckptErr == nil {
					p.ckptErr = err
				}
			}
		}
		if resumeMid && k == startLevel {
			gpOpt.ResumeGP = rs.GP
		}

		// Every level's penalty starts cold (seed 0 picks the engine's
		// gradient-ratio estimate). Handing the converged lambda down —
		// the cGP seeding recipe applied between levels — was measured
		// and rejected: the interpolated start is over-spread, and a
		// mature penalty keeps it from contracting (~10% worse HPWL).
		idx := append(append([]int(nil), movable...), fillers...)
		t0 := time.Now()
		lr, gpErr := PlaceGlobalContext(p.ctx, ld, idx, gpOpt, stage, 0)
		if p.opt.MacroHalo > 0 {
			inflateMacros(ld, movMacros, -p.opt.MacroHalo)
		}
		p.res.addStage(p.rec, stage, time.Since(t0))
		p.res.ML = append(p.res.ML, MLLevel{Level: k, Cells: len(ld.Cells) - len(fillers), Result: lr})
		if gpErr != nil {
			return gpErr
		}
		if p.ckptErr != nil {
			return p.ckptErr
		}
		if lr.Canceled {
			return canceledAt(stage)
		}
		if lr.Diverged {
			return fmt.Errorf("core: %s diverged", stage)
		}
		ld.RemoveFillers()

		p.hier.Interpolate(k)
		if k > 1 {
			if err := p.save(checkpoint.PhasePostMLevel(k), k-1, p.hier.Designs[k-1], 0); err != nil {
				return err
			}
			if p.ctx.Err() != nil {
				return canceledAt(checkpoint.PhasePostMLevel(k))
			}
		}
	}

	if err := p.save(checkpoint.PhasePostML, 0, p.d, 0); err != nil {
		return err
	}
	if p.ctx.Err() != nil {
		return canceledAt(checkpoint.PhasePostML)
	}
	return nil
}
