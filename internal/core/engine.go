package core

import (
	"context"
	"math"
	"time"

	"eplace/internal/checkpoint"
	"eplace/internal/density"
	"eplace/internal/geom"
	"eplace/internal/grid"
	"eplace/internal/nesterov"
	"eplace/internal/netlist"
	"eplace/internal/telemetry"
	"eplace/internal/wirelength"
)

// engine evaluates f = W~ + lambda*N and its preconditioned gradient
// for one set of movable cells.
type engine struct {
	d *netlist.Design
	// cv is the compiled CSR/SoA view shared by the wirelength model,
	// the density model and the loop's HPWL evaluation. The engine
	// writes candidate positions into it once per evaluation
	// (cv.SetPositions); the Cell structs are only written back when the
	// stage finishes.
	cv  *netlist.Compiled
	idx []int
	wl  *wirelength.Model
	dm  *density.Model
	opt Options

	lambda float64
	gamma  float64

	// Per-cell constants for the preconditioner: vertex degree |E_i| and
	// normalized charge q_i / binArea (Sec. V-D).
	degree []float64
	qNorm  []float64

	// Per-cell half sizes for clamping.
	halfW, halfH []float64

	gw, gd []float64 // wirelength and density gradient scratch
	posBuf []float64 // end-of-stage clamp buffer (avoids Positions alloc)

	stage string
	// poissonSpan is the per-backend solve span name ("poisson/<kind>"),
	// built once so the per-iteration gradient stays allocation-free.
	poissonSpan string

	// rec aggregates the per-kernel wall times as telemetry spans
	// (stage/wirelength, stage/density — the Fig. 7 breakdown). It is
	// never nil: when the caller disables telemetry, PlaceGlobal
	// substitutes a private sink-less recorder so Result timings stay
	// populated.
	rec *telemetry.Recorder
}

func newEngine(d *netlist.Design, idx []int, opt Options, rec *telemetry.Recorder) (*engine, error) {
	m := opt.GridM
	if m == 0 {
		m = grid.ChooseM(len(d.Cells))
		// eDensity wants bins no finer than the objects themselves: a
		// bin smaller than the average movable cell rasterizes single
		// cells into isolated spikes whose local forces push cells back
		// and forth between adjacent bins instead of spreading them
		// (observed as an overflow plateau with unbounded wirelength
		// growth on 10K+ cell auto-gridded runs). Coarsen until one bin
		// holds at least one average movable object.
		var area float64
		n := 0
		for i := range d.Cells {
			if !d.Cells[i].Fixed {
				area += d.Cells[i].W * d.Cells[i].H
				n++
			}
		}
		if n > 0 {
			avg := area / float64(n)
			for m > 16 && d.Region.W()*d.Region.H()/float64(m*m) < avg {
				m /= 2
			}
		}
	}
	// Compile the flat view once per stage, after fillers/inflation have
	// fixed the topology and extents for the whole stage; every hot
	// kernel below shares it.
	cv := d.Compile()
	dm, err := density.NewModelCompiled(cv, m, opt.Workers, opt.Poisson)
	if err != nil {
		return nil, err
	}
	e := &engine{
		d:      d,
		cv:     cv,
		idx:    idx,
		wl:     wirelength.NewCompiled(cv, idx, 1),
		dm:     dm,
		opt:    opt,
		rec:    rec,
		degree: make([]float64, len(idx)),
		qNorm:  make([]float64, len(idx)),
		halfW:  make([]float64, len(idx)),
		halfH:  make([]float64, len(idx)),
		gw:     make([]float64, 2*len(idx)),
		gd:     make([]float64, 2*len(idx)),
		posBuf: make([]float64, 2*len(idx)),
	}
	e.wl.Workers = opt.Workers
	e.poissonSpan = "poisson/" + dm.Backend()
	binArea := e.dm.Grid.BinArea()
	for k, ci := range idx {
		c := &d.Cells[ci]
		nets := map[int]bool{}
		for _, pi := range c.Pins {
			nets[d.Pins[pi].Net] = true
		}
		e.degree[k] = float64(len(nets))
		e.qNorm[k] = c.Area() / binArea
		e.halfW[k] = c.W / 2
		e.halfH[k] = c.H / 2
	}
	return e, nil
}

// clamp keeps every cell's center inside the region, respecting size.
func (e *engine) clamp(v []float64) {
	n := len(e.idx)
	r := e.d.Region
	for k := 0; k < n; k++ {
		v[k] = geom.Clamp(v[k], r.Lx+e.halfW[k], r.Hx-e.halfW[k])
		v[k+n] = geom.Clamp(v[k+n], r.Ly+e.halfH[k], r.Hy-e.halfH[k])
	}
}

// gradient evaluates the preconditioned gradient of f at v.
func (e *engine) gradient(v, g []float64) {
	e.cv.SetPositions(e.idx, v)
	t0 := time.Now()
	e.wl.CostAndGradient(e.gw)
	e.rec.AddSpanTime(e.stage, "wirelength", time.Since(t0))
	t0 = time.Now()
	e.dm.Refresh(e.idx)
	e.dm.Gradient(e.idx, e.gd)
	e.rec.AddSpanTime(e.stage, "density", time.Since(t0))
	// Split out the Poisson solve under its backend's name, so the
	// benchmark reports show which backend carried the density share.
	e.rec.AddSpanTime(e.stage, e.poissonSpan, e.dm.LastSolveTime())
	e.rec.Count("engine/grad_evals", 1)

	n := len(e.idx)
	for k := 0; k < n; k++ {
		p := 1.0
		if !e.opt.DisablePrecond {
			// H~_f = |E_i| + lambda * q_i (Eq. 11-13), floored to stay
			// positive definite for isolated cells at tiny lambda.
			p = e.degree[k] + e.lambda*e.qNorm[k]
			if p < 1e-4 {
				p = 1e-4
			}
		}
		g[k] = (e.gw[k] + e.lambda*e.gd[k]) / p
		g[k+n] = (e.gw[k+n] + e.lambda*e.gd[k+n]) / p
	}
}

// cost evaluates f at v (CG baseline only; Nesterov never needs it).
func (e *engine) cost(v []float64) float64 {
	e.cv.SetPositions(e.idx, v)
	t0 := time.Now()
	w := e.wl.Cost()
	e.rec.AddSpanTime(e.stage, "wirelength", time.Since(t0))
	t0 = time.Now()
	e.dm.Refresh(e.idx)
	e.rec.AddSpanTime(e.stage, "density", time.Since(t0))
	e.rec.Count("engine/cost_evals", 1)
	return w + e.lambda*e.dm.Energy()
}

// initLambda balances the initial wirelength and density gradient norms
// (sum of absolute values), the standard ePlace initialization.
func (e *engine) initLambda(v []float64) {
	e.cv.SetPositions(e.idx, v)
	e.wl.CostAndGradient(e.gw)
	e.dm.Refresh(e.idx)
	e.dm.Gradient(e.idx, e.gd)
	var sw, sd float64
	for i := range e.gw {
		sw += math.Abs(e.gw[i])
		sd += math.Abs(e.gd[i])
	}
	if sd == 0 {
		e.lambda = 1
		return
	}
	e.lambda = sw / sd
	if e.lambda <= 0 {
		e.lambda = 1
	}
	if e.opt.LambdaScale > 0 {
		e.lambda *= e.opt.LambdaScale
	}
}

// updateGamma applies the overflow-driven smoothing schedule
// gamma = 8 * binW * 10^{(tau - 0.1) * 20/9 - 1}: ~80 bins of smoothing
// at tau=1 down to ~0.8 at tau=0.1.
func (e *engine) updateGamma(tau float64) {
	bw := math.Min(e.dm.Grid.BinW, e.dm.Grid.BinH)
	e.gamma = 8 * bw * math.Pow(10, (tau-0.1)*20/9-1)
	e.wl.Gamma = e.gamma
}

// PlaceGlobal runs one global placement (the mGP or cGP loop) over the
// movable cells idx of d, which must already hold the starting
// positions. lambdaInit <= 0 selects automatic balancing. It returns
// the result; final positions are written back to d. It errors without
// touching d on an invalid configuration (unknown Poisson backend,
// bad grid size).
func PlaceGlobal(d *netlist.Design, idx []int, opt Options, stage string, lambdaInit float64) (Result, error) {
	return PlaceGlobalContext(context.Background(), d, idx, opt, stage, lambdaInit)
}

// PlaceGlobalContext is PlaceGlobal with cooperative cancellation: the
// context is polled once per iteration (the preemption granularity a
// job scheduler gets — one gradient evaluation, not one stage). On
// cancellation the loop stops before the next iteration, hands a final
// mid-stage snapshot to opt.CheckpointSink when one is installed
// (regardless of the CheckpointEvery cadence, so the very latest state
// is resumable), writes the current positions back to d, and returns
// with Result.Canceled set. A resume from that snapshot continues the
// trajectory bitwise-identically to the uninterrupted run.
func PlaceGlobalContext(ctx context.Context, d *netlist.Design, idx []int, opt Options, stage string, lambdaInit float64) (Result, error) {
	opt.defaults()
	start := time.Now()
	var res Result
	if len(idx) == 0 {
		res.HPWL = d.HPWL()
		return res, nil
	}
	// The engine always records kernel spans; a private sink-less
	// recorder stands in when telemetry is disabled so the Result's
	// Fig. 7 timing breakdown stays derivable from spans either way.
	rec := opt.Telemetry
	if rec == nil {
		rec = telemetry.New()
	}
	rec.SetStage(stage)
	wl0 := rec.SpanTime(stage, "wirelength")
	den0 := rec.SpanTime(stage, "density")
	prevWL, prevDen := wl0, den0
	e, err := newEngine(d, idx, opt, rec)
	if err != nil {
		return res, err
	}
	e.stage = stage

	seedStep := 0.1 * math.Min(e.dm.Grid.BinW, e.dm.Grid.BinH)

	var stepNesterov func() (float64, int)
	var solution func() []float64
	var opt2 *nesterov.Optimizer
	var cg *nesterov.CGSolver
	var hpwl0, prevHPWL float64
	var best []float64
	var bestTau float64
	bestTauIter := 0
	iterStart := 0

	if rs := opt.ResumeGP; rs != nil && opt.Solver == SolverNesterov {
		// Resume: every schedule scalar and optimizer vector comes from
		// the snapshot, and the whole init path (tau0, gamma, lambda
		// balancing, the optimizer's seeding gradient evaluations) is
		// skipped — the loop re-enters at iteration rs.Iter with exactly
		// the state the captured run had there, so the continued
		// trajectory is bitwise-identical to the uninterrupted one.
		e.lambda, e.gamma = rs.Lambda, rs.Gamma
		e.wl.Gamma = e.gamma
		hpwl0, prevHPWL = rs.HPWL0, rs.PrevHPWL
		best = append([]float64(nil), rs.Best...)
		bestTau, bestTauIter = rs.BestTau, rs.BestTauIter
		iterStart = rs.Iter
		opt2 = nesterov.Resume(rs.Nesterov, e.gradient, e.clamp, seedStep)
		opt2.AdaptiveRestart = opt.AdaptiveRestart
		stepNesterov = func() (float64, int) { return opt2.Step(opt.DisableBkTrk) }
		solution = func() []float64 { return opt2.U }
	} else {
		v0 := d.Positions(idx)
		e.clamp(v0)
		tau0 := func() float64 {
			e.cv.SetPositions(e.idx, v0)
			e.dm.Refresh(e.idx)
			return e.dm.Overflow(d.TargetDensity)
		}()
		e.updateGamma(tau0)
		if lambdaInit > 0 {
			e.lambda = lambdaInit
		} else if opt.LambdaInit > 0 {
			e.lambda = opt.LambdaInit
		} else {
			e.initLambda(v0)
		}

		// HPWL of the clamped start, from the view (the structs still
		// hold the unclamped input until the end-of-stage write-back).
		hpwl0 = e.cv.HPWL()
		prevHPWL = hpwl0

		if opt.Solver == SolverNesterov {
			opt2 = nesterov.New(v0, e.gradient, e.clamp, seedStep)
			opt2.AdaptiveRestart = opt.AdaptiveRestart
			stepNesterov = func() (float64, int) { return opt2.Step(opt.DisableBkTrk) }
			solution = func() []float64 { return opt2.U }
		} else {
			cg = nesterov.NewCG(v0, e.cost, e.gradient, e.clamp, seedStep*10)
			// Every objective evaluation costs a full Poisson solve; keep
			// failed line searches from burning twenty of them — and let a
			// cancellation abort a search mid-flight instead of paying for
			// the remaining trials.
			cg.MaxTrials = 10
			cg.Interrupt = func() bool { return ctx.Err() != nil }
			stepNesterov = func() (float64, int) { return cg.Step(), 0 }
			solution = func() []float64 { return cg.V }
		}

		// Divergence guard: remember the best (lowest-overflow) solution.
		best = append([]float64(nil), v0...)
		bestTau = tau0
	}

	// Divergence threshold. 20x the starting HPWL catches blow-ups on
	// small designs, but under-shoots at scale: a quadratic seed
	// collapses everything near the pads, so legitimate spreading alone
	// multiplies HPWL by far more than 20x on 10K+ cell designs (and by
	// more still on coarse cluster netlists, whose few long nets spread
	// to a large fraction of the region). Floor the threshold at half
	// the geometric ceiling (every net spanning the whole region) — a
	// clamped blow-up slams into the walls near the ceiling, while real
	// trajectories stay under a third of it (a uniformly random layout);
	// stalls below the threshold are caught by the stagnation guard.
	divergeHPWL := 20 * math.Max(hpwl0, 1)
	var wSum float64
	for ni := range d.Nets {
		wSum += d.Nets[ni].EffWeight()
	}
	if b := 0.5 * wSum * (d.Region.Hx - d.Region.Lx + d.Region.Hy - d.Region.Ly); b > divergeHPWL {
		divergeHPWL = b
	}

	iter := iterStart
	for ; iter < opt.MaxIters; iter++ {
		// Cooperative cancellation, checked once per iteration. The state
		// here is exactly what the next iteration would read (the same
		// cut a cadence checkpoint takes at the bottom of the loop), so
		// the snapshot resumes bitwise-identically. The CG baseline has
		// no capturable recurrence: it cancels without a mid-stage
		// snapshot and falls back to the last stage boundary.
		if ctx.Err() != nil {
			res.Canceled = true
			if opt.CheckpointSink != nil && opt2 != nil {
				opt.CheckpointSink(&checkpoint.GPState{
					Stage: stage, Iter: iter,
					Lambda: e.lambda, Gamma: e.gamma,
					PrevHPWL: prevHPWL, HPWL0: hpwl0,
					Best:    append([]float64(nil), best...),
					BestTau: bestTau, BestTauIter: bestTauIter,
					Nesterov: opt2.State(),
				})
			}
			break
		}
		alpha, bt := stepNesterov()

		u := solution()
		e.cv.SetPositions(e.idx, u)
		hpwl := e.cv.HPWL()
		tau := e.dm.Overflow(d.TargetDensity) // from the latest Refresh

		if tau <= bestTau {
			bestTau = tau
			bestTauIter = iter
			copy(best, u)
		}
		// Roll this iteration's exact state into the stage's golden
		// digest (lambda here is the value the iteration's gradient
		// used, before the schedule update below).
		opt.Golden.Absorb(stage, iter, u, hpwl, e.lambda)
		if opt.Trace != nil || opt.Telemetry.Active() {
			s := Sample{
				Stage: stage, Iteration: iter,
				HPWL: hpwl, Overflow: tau, Energy: e.dm.Energy(),
				Lambda: e.lambda, Gamma: e.gamma, Alpha: alpha, Backtracks: bt,
				GradWL: sumAbs(e.gw), GradDensity: sumAbs(e.gd),
			}
			if opt2 != nil {
				s.Steps = opt2.Steps()
				s.Restarts = opt2.Restarts()
			} else {
				s.Steps = cg.Steps()
			}
			wlNow := rec.SpanTime(stage, "wirelength")
			denNow := rec.SpanTime(stage, "density")
			s.WirelengthTime = wlNow - prevWL
			s.DensityTime = denNow - prevDen
			prevWL, prevDen = wlNow, denNow
			if opt.Trace != nil {
				opt.Trace.Add(s)
			}
			opt.Telemetry.Sample(s)
		}

		if math.IsNaN(hpwl) || hpwl > divergeHPWL {
			res.Diverged = true
			break
		}
		if tau <= opt.TargetOverflow && iter >= opt.MinIters {
			iter++
			break
		}
		// Stagnation: overflow has not improved for many iterations —
		// the target is unreachable (e.g. infeasible density bound).
		// Return the best snapshot instead of grinding lambda upward
		// until wirelength explodes.
		if iter-bestTauIter > opt.StallIters && iter >= opt.MinIters {
			res.Stagnated = true
			break
		}

		// Penalty schedule: mu = 1.1^{1 - dHPWL/ref} clamped to
		// [0.95, 1.1], with the reference wirelength change a fixed
		// fraction of the current HPWL (the analogue of ePlace's
		// absolute 3.5e5 on ~1e8 ISPD wirelengths).
		refDelta := opt.RefDeltaHPWLFrac * math.Max(hpwl, 1)
		mu := math.Pow(1.1, math.Max(-3, math.Min(1, 1-(hpwl-prevHPWL)/refDelta)))
		if mu < 0.95 {
			mu = 0.95
		}
		if mu > 1.1 {
			mu = 1.1
		}
		e.lambda *= mu
		prevHPWL = hpwl
		e.updateGamma(tau)

		// Crash-safe snapshot of the loop state at this iteration
		// boundary (everything the next iteration reads), aligned to
		// absolute iteration numbers so a resumed run checkpoints at the
		// same points as an uninterrupted one. Nesterov only: the CG
		// baseline has no capturable recurrence and falls back to
		// stage-boundary checkpoints.
		if opt.CheckpointSink != nil && opt.CheckpointEvery > 0 && opt2 != nil &&
			(iter+1)%opt.CheckpointEvery == 0 {
			opt.CheckpointSink(&checkpoint.GPState{
				Stage: stage, Iter: iter + 1,
				Lambda: e.lambda, Gamma: e.gamma,
				PrevHPWL: prevHPWL, HPWL0: hpwl0,
				Best:    append([]float64(nil), best...),
				BestTau: bestTau, BestTauIter: bestTauIter,
				Nesterov: opt2.State(),
			})
		}
	}

	// Adopt the best snapshot if we diverged or stagnated past it,
	// clamp it, and write it back to both the structs (the caller's
	// source of truth between stages) and the view (for the final
	// Refresh/HPWL below).
	final := solution()
	if res.Diverged || res.Stagnated {
		final = best
	}
	copy(e.posBuf, final)
	e.clamp(e.posBuf)
	e.d.SetPositions(e.idx, e.posBuf)
	e.cv.SetPositions(e.idx, e.posBuf)

	e.dm.Refresh(e.idx)
	res.Iterations = iter
	res.HPWL = d.HPWL()
	res.Overflow = e.dm.Overflow(d.TargetDensity)
	res.FinalLambda = e.lambda
	// Run statistics come from the optimizer accessors rather than
	// per-step mirroring.
	if opt2 != nil {
		res.Backtracks = opt2.Backtracks()
		res.Restarts = opt2.Restarts()
	}
	if cg != nil {
		res.CostEvals = cg.CostEvals()
	}
	res.DensityTime = rec.SpanTime(stage, "density") - den0
	res.WirelengthTime = rec.SpanTime(stage, "wirelength") - wl0
	res.Total = time.Since(start)
	res.OtherTime = res.Total - res.DensityTime - res.WirelengthTime
	return res, nil
}

// sumAbs returns the L1 norm of x (gradient magnitudes for samples).
func sumAbs(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}
