package poisson

import (
	"math"
	"math/rand"
	"testing"
)

// manufactured builds rho for the exact solution
// psi(i,j) = cos(wu*(i+1/2)) * cos(wv*(j+1/2)).
func manufactured(m, u, v int) (rho, psi []float64) {
	rho = make([]float64, m*m)
	psi = make([]float64, m*m)
	wu := math.Pi * float64(u) / float64(m)
	wv := math.Pi * float64(v) / float64(m)
	k2 := wu*wu + wv*wv
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			p := math.Cos(wu*(float64(i)+0.5)) * math.Cos(wv*(float64(j)+0.5))
			psi[j*m+i] = p
			rho[j*m+i] = k2 * p
		}
	}
	return rho, psi
}

// mustSolver builds a float64 spectral solver or fails the test: the
// helper for the many tests whose m is a known-good power of two.
func mustSolver(tb testing.TB, m, workers int) *Solver {
	tb.Helper()
	s, err := NewSolverWorkers(m, workers)
	if err != nil {
		tb.Fatalf("NewSolverWorkers(%d, %d): %v", m, workers, err)
	}
	return s
}

func TestNewSolverRejectsBadSize(t *testing.T) {
	for _, m := range []int{0, -4, 3, 24} {
		if _, err := NewSolver(m); err == nil {
			t.Errorf("NewSolver(%d) = nil error, want descriptive error", m)
		}
		for _, kind := range Kinds() {
			if _, err := NewBackend(kind, m, 1); err == nil {
				t.Errorf("NewBackend(%q, %d) = nil error, want descriptive error", kind, m)
			}
		}
	}
	if _, err := NewBackend("fancy", 64, 1); err == nil {
		t.Error("NewBackend with an unknown kind succeeded, want error naming the kinds")
	}
}

func TestManufacturedSolution(t *testing.T) {
	m := 32
	s := mustSolver(t, m, 0)
	for _, uv := range [][2]int{{1, 0}, {0, 1}, {1, 1}, {3, 2}, {7, 5}, {15, 15}} {
		rho, want := manufactured(m, uv[0], uv[1])
		s.Solve(rho)
		for b := range want {
			if d := math.Abs(s.Psi[b] - want[b]); d > 1e-8 {
				t.Fatalf("mode %v bin %d: psi=%v want=%v", uv, b, s.Psi[b], want[b])
			}
		}
	}
}

func TestFieldMatchesAnalyticDerivative(t *testing.T) {
	m := 32
	s := mustSolver(t, m, 0)
	u, v := 3, 2
	rho, _ := manufactured(m, u, v)
	s.Solve(rho)
	wu := math.Pi * float64(u) / float64(m)
	wv := math.Pi * float64(v) / float64(m)
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			x, y := float64(i)+0.5, float64(j)+0.5
			// psi = cos(wu x) cos(wv y); Ex = -d psi/dx = wu sin(wu x) cos(wv y).
			wantEx := wu * math.Sin(wu*x) * math.Cos(wv*y)
			wantEy := wv * math.Cos(wu*x) * math.Sin(wv*y)
			if math.Abs(s.Ex[j*m+i]-wantEx) > 1e-8 {
				t.Fatalf("Ex(%d,%d)=%v want %v", i, j, s.Ex[j*m+i], wantEx)
			}
			if math.Abs(s.Ey[j*m+i]-wantEy) > 1e-8 {
				t.Fatalf("Ey(%d,%d)=%v want %v", i, j, s.Ey[j*m+i], wantEy)
			}
		}
	}
}

func TestUniformChargeGivesZeroField(t *testing.T) {
	m := 16
	s := mustSolver(t, m, 0)
	rho := make([]float64, m*m)
	for i := range rho {
		rho[i] = 7.5 // pure DC: removed by the zero-frequency constraint
	}
	s.Solve(rho)
	for b := range rho {
		if math.Abs(s.Psi[b]) > 1e-10 || math.Abs(s.Ex[b]) > 1e-10 || math.Abs(s.Ey[b]) > 1e-10 {
			t.Fatalf("uniform charge produced psi=%v ex=%v ey=%v at %d",
				s.Psi[b], s.Ex[b], s.Ey[b], b)
		}
	}
}

func TestPsiZeroMean(t *testing.T) {
	m := 32
	s := mustSolver(t, m, 0)
	rng := rand.New(rand.NewSource(3))
	rho := make([]float64, m*m)
	for i := range rho {
		rho[i] = rng.Float64() * 10
	}
	s.Solve(rho)
	sum := 0.0
	for _, p := range s.Psi {
		sum += p
	}
	if math.Abs(sum/float64(m*m)) > 1e-9 {
		t.Errorf("psi mean = %v, want 0", sum/float64(m*m))
	}
}

// The electric force must point away from a concentrated charge blob:
// this is the mechanism that spreads cells apart (Sec. IV).
func TestFieldPointsAwayFromBlob(t *testing.T) {
	m := 32
	s := mustSolver(t, m, 0)
	rho := make([]float64, m*m)
	cx, cy := 16, 16
	for dj := -2; dj <= 2; dj++ {
		for di := -2; di <= 2; di++ {
			rho[(cy+dj)*m+(cx+di)] = 100
		}
	}
	s.Solve(rho)
	// Sample points on each side of the blob.
	right := s.Ex[cy*m+(cx+6)]
	left := s.Ex[cy*m+(cx-6)]
	up := s.Ey[(cy+6)*m+cx]
	down := s.Ey[(cy-6)*m+cx]
	if right <= 0 {
		t.Errorf("Ex right of blob = %v, want > 0", right)
	}
	if left >= 0 {
		t.Errorf("Ex left of blob = %v, want < 0", left)
	}
	if up <= 0 {
		t.Errorf("Ey above blob = %v, want > 0", up)
	}
	if down >= 0 {
		t.Errorf("Ey below blob = %v, want < 0", down)
	}
	// Potential peaks at the blob.
	if s.Psi[cy*m+cx] <= s.Psi[5*m+5] {
		t.Errorf("psi at blob %v not above psi far away %v", s.Psi[cy*m+cx], s.Psi[5*m+5])
	}
}

// Neumann boundary: the normal field component vanishes at the walls,
// preventing charge from being pushed outside the region. The cosine
// basis guarantees d psi/dx = 0 at x = 0 and x = m exactly; at sample
// points half a bin inside, the normal field must be small relative to
// the interior field scale.
func TestNeumannBoundaryFieldSmall(t *testing.T) {
	m := 64
	s := mustSolver(t, m, 0)
	rho := make([]float64, m*m)
	// Off-center blob so boundary fields would be asymmetric if wrong.
	for dj := -2; dj <= 2; dj++ {
		for di := -2; di <= 2; di++ {
			rho[(20+dj)*m+(40+di)] = 50
		}
	}
	s.Solve(rho)
	maxInterior := 0.0
	for _, v := range s.Ex {
		if a := math.Abs(v); a > maxInterior {
			maxInterior = a
		}
	}
	// Compare the half-bin-inside boundary samples against the analytic
	// continuation at the true wall (which is exactly zero): they must be
	// an order of magnitude below the interior peak.
	for j := 0; j < m; j++ {
		if a := math.Abs(s.Ex[j*m+0]); a > 0.25*maxInterior {
			t.Fatalf("Ex near left wall row %d = %v, interior max %v", j, a, maxInterior)
		}
		if a := math.Abs(s.Ex[j*m+m-1]); a > 0.25*maxInterior {
			t.Fatalf("Ex near right wall row %d = %v, interior max %v", j, a, maxInterior)
		}
	}
	maxInterior = 0
	for _, v := range s.Ey {
		if a := math.Abs(v); a > maxInterior {
			maxInterior = a
		}
	}
	for i := 0; i < m; i++ {
		if a := math.Abs(s.Ey[0*m+i]); a > 0.25*maxInterior {
			t.Fatalf("Ey near bottom wall col %d = %v, interior max %v", i, a, maxInterior)
		}
		if a := math.Abs(s.Ey[(m-1)*m+i]); a > 0.25*maxInterior {
			t.Fatalf("Ey near top wall col %d = %v, interior max %v", i, a, maxInterior)
		}
	}
}

// Linearity: solving a + b equals solving a plus solving b.
func TestSolveLinearity(t *testing.T) {
	m := 16
	s := mustSolver(t, m, 0)
	rng := rand.New(rand.NewSource(8))
	a := make([]float64, m*m)
	b := make([]float64, m*m)
	ab := make([]float64, m*m)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
		ab[i] = a[i] + b[i]
	}
	s.Solve(a)
	psiA := append([]float64(nil), s.Psi...)
	exA := append([]float64(nil), s.Ex...)
	s.Solve(b)
	psiB := append([]float64(nil), s.Psi...)
	exB := append([]float64(nil), s.Ex...)
	s.Solve(ab)
	for i := range ab {
		if math.Abs(s.Psi[i]-(psiA[i]+psiB[i])) > 1e-9 {
			t.Fatalf("psi nonlinearity at %d", i)
		}
		if math.Abs(s.Ex[i]-(exA[i]+exB[i])) > 1e-9 {
			t.Fatalf("ex nonlinearity at %d", i)
		}
	}
}

// Energy of two separated blobs is lower than of one merged blob:
// spreading reduces N(v), the optimizer's descent direction.
func TestEnergyDecreasesWhenSpread(t *testing.T) {
	m := 32
	s := mustSolver(t, m, 0)
	merged := make([]float64, m*m)
	for dj := 0; dj < 4; dj++ {
		for di := 0; di < 4; di++ {
			merged[(14+dj)*m+(14+di)] = 10
		}
	}
	split := make([]float64, m*m)
	for dj := 0; dj < 4; dj++ {
		for di := 0; di < 4; di++ {
			split[(14+dj)*m+(6+di)] = 5
			split[(14+dj)*m+(22+di)] = 5
		}
	}
	s.Solve(merged)
	eMerged := s.Energy(merged)
	s.Solve(split)
	eSplit := s.Energy(split)
	if eSplit >= eMerged {
		t.Errorf("energy split=%v >= merged=%v", eSplit, eMerged)
	}
	if eMerged <= 0 {
		t.Errorf("merged energy = %v, want > 0", eMerged)
	}
}

// Laplacian check: numerically differentiating the reconstructed psi
// recovers -rho for a smooth band-limited charge.
func TestPoissonResidualSmoothCharge(t *testing.T) {
	m := 64
	s := mustSolver(t, m, 0)
	rho := make([]float64, m*m)
	// Band-limited smooth charge: a few low-frequency cosine modes.
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			x, y := float64(i)+0.5, float64(j)+0.5
			rho[j*m+i] = 3*math.Cos(math.Pi*2*x/float64(m))*math.Cos(math.Pi*1*y/float64(m)) +
				1.5*math.Cos(math.Pi*3*x/float64(m))
		}
	}
	s.Solve(rho)
	// Central second differences on interior bins; spacing 1 bin. The
	// truncation error is O(h^2 * w^4) which for these low modes is small.
	for j := 2; j < m-2; j++ {
		for i := 2; i < m-2; i++ {
			lap := s.Psi[j*m+i-1] + s.Psi[j*m+i+1] + s.Psi[(j-1)*m+i] + s.Psi[(j+1)*m+i] - 4*s.Psi[j*m+i]
			if d := math.Abs(-lap - rho[j*m+i]); d > 0.02*(1+math.Abs(rho[j*m+i])) {
				t.Fatalf("residual at (%d,%d): lap=%v rho=%v", i, j, -lap, rho[j*m+i])
			}
		}
	}
}

// The blocked transpose must be an exact involution for every grid
// size the solver accepts, including ones that are not multiples of
// the tile edge.
func TestTransposeRoundTrip(t *testing.T) {
	for _, m := range []int{2, 8, 16, 32, 64, 128} {
		s := mustSolver(t, m, 2)
		src := make([]float64, m*m)
		rng := rand.New(rand.NewSource(int64(m)))
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		dst := make([]float64, m*m)
		back := make([]float64, m*m)
		s.transpose(src, dst)
		for j := 0; j < m; j++ {
			for i := 0; i < m; i++ {
				if dst[i*m+j] != src[j*m+i] {
					t.Fatalf("m=%d transpose wrong at (%d,%d)", m, i, j)
				}
			}
		}
		s.transpose(dst, back)
		for i := range src {
			if back[i] != src[i] {
				t.Fatalf("m=%d transpose not an involution at %d", m, i)
			}
		}
	}
}

// The sharded Energy reduction must be bitwise-identical at every
// worker count: shard boundaries are fixed, not worker-derived.
func TestEnergyWorkersBitwise(t *testing.T) {
	const m = 64
	rho := make([]float64, m*m)
	rng := rand.New(rand.NewSource(17))
	for i := range rho {
		rho[i] = rng.NormFloat64()
	}
	ref := mustSolver(t, m, 1)
	ref.Solve(rho)
	want := ref.Energy(rho)
	for _, workers := range []int{2, 3, 7, 8} {
		s := mustSolver(t, m, workers)
		s.Solve(rho)
		if got := s.Energy(rho); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("workers=%d: energy %v != %v", workers, got, want)
		}
	}
}

// Tiny grids exercise the pair-packed pipeline's smallest transforms
// (n=2 FFTs, single-pair rows); the manufactured modes must still be
// exact.
func TestManufacturedSolutionSmallGrids(t *testing.T) {
	for _, m := range []int{2, 4, 8} {
		s := mustSolver(t, m, 0)
		for _, uv := range [][2]int{{1, 0}, {0, 1}, {1, 1}} {
			rho, want := manufactured(m, uv[0], uv[1])
			s.Solve(rho)
			for b := range want {
				if d := math.Abs(s.Psi[b] - want[b]); d > 1e-9 {
					t.Fatalf("m=%d mode %v bin %d: psi=%v want=%v", m, uv, b, s.Psi[b], want[b])
				}
			}
		}
	}
}

// A 1x1 grid has only the removed DC mode: everything is zero.
func TestSolveDegenerateGrid(t *testing.T) {
	s := mustSolver(t, 1, 0)
	s.Solve([]float64{42})
	if s.Psi[0] != 0 || s.Ex[0] != 0 || s.Ey[0] != 0 {
		t.Fatalf("1x1 solve: psi=%v ex=%v ey=%v, want zeros", s.Psi[0], s.Ex[0], s.Ey[0])
	}
	if e := s.Energy([]float64{42}); e != 0 {
		t.Fatalf("1x1 energy = %v, want 0", e)
	}
}

func benchSolve(b *testing.B, m, workers int) {
	s := mustSolver(b, m, workers)
	rho := make([]float64, m*m)
	rng := rand.New(rand.NewSource(1))
	for i := range rho {
		rho[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(rho)
	}
}

// Single-threaded solver benchmarks: the numbers the telemetry bench
// harness records (see EXPERIMENTS.md "Kernel microbenchmarks").
func BenchmarkSolve_128(b *testing.B) { benchSolve(b, 128, 1) }
func BenchmarkSolve_256(b *testing.B) { benchSolve(b, 256, 1) }
func BenchmarkSolve_512(b *testing.B) { benchSolve(b, 512, 1) }

// All-cores variant, for the parallel-scaling view.
func BenchmarkSolve_256AllCores(b *testing.B) { benchSolve(b, 256, 0) }

func BenchmarkEnergy_256(b *testing.B) {
	m := 256
	s := mustSolver(b, m, 1)
	rho := make([]float64, m*m)
	rng := rand.New(rand.NewSource(1))
	for i := range rho {
		rho[i] = rng.Float64()
	}
	s.Solve(rho)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Energy(rho)
	}
}
