// multigrid.go is the geometric-multigrid Poisson backend: the same
// cell-centered Neumann problem as the spectral solvers, discretized
// with the standard 5-point stencil and solved by V-cycles of red-black
// Gauss-Seidel smoothing, full-weighting restriction and bilinear
// prolongation, iterated to a fixed relative residual tolerance. It is
// an independent implementation sharing nothing with the transform
// pipeline, which is exactly what makes it useful as a cross-check
// backend: a bug in the spectral path and a bug in this path would have
// to conspire to produce matching fields.
//
// Discretization: on every level the operator is
//
//	(A u)_c = deg(c)*u_c - sum_nb u_nb = f_c,   f = h^2 * (rho - mean)
//
// where the neighbor sum runs over the 2..4 existing neighbors of cell
// c — dropping the missing neighbors at the boundary IS the homogeneous
// Neumann condition (mirror ghost u_ghost = u_c cancels from the
// stencil). The system is singular with a constant nullspace, matching
// the continuous problem; compatibility is enforced by subtracting the
// charge mean up front, and the potential is re-centered to zero mean
// at the end, mirroring the spectral solver's dropped (0,0) mode.
//
// Determinism: a red-black sweep updates one color while reading only
// the other, so values never depend on traversal order and row-sharded
// parallel sweeps are bitwise-identical at every worker count. All
// reductions (charge mean, residual norms, energy) fold a fixed
// 64-shard partition in shard order, same as the spectral backends.
// Solve always cold-starts from u = 0 — warm-starting from the previous
// iteration's potential would be faster but would make the result
// depend on solver history, breaking bitwise checkpoint-resume
// equivalence (the density model is rebuilt, not snapshotted).
//
// The multigrid fields differ from the spectral ones by the O(h^2)
// discretization error of the stencil and of the central-difference
// gradient, not by the algebraic tolerance; the property tests pin that
// gap with smooth charge planes per grid size.
package poisson

import (
	"math"

	"eplace/internal/parallel"
)

// Cycle defaults: V(2,2) cycles to 1e-6 relative residual, which costs
// 5-7 cycles at production sizes; the remaining algebraic error is then
// far below the O(h^2) discretization gap to the continuous solution.
const (
	defaultMGTol       = 1e-6
	defaultMGMaxCycles = 50
	defaultMGSmooth    = 2
	defaultMGCoarse    = 32
	coarsestM          = 2
)

// mgLevel is one grid of the hierarchy; level 0 is the finest (m x m).
type mgLevel struct {
	m       int
	u, f, r []float64
}

// Multigrid is the geometric multigrid Poisson backend. Not safe for
// concurrent method calls; use one per placement engine.
type Multigrid struct {
	m       int
	workers int
	levels  []mgLevel

	// Tol is the relative residual target ||f - A u|| <= Tol*||f||.
	Tol float64
	// MaxCycles bounds the V-cycle count per Solve.
	MaxCycles int
	// PreSmooth/PostSmooth are the red-black sweep counts around each
	// coarse-grid correction; CoarseSweeps solves the coarsest level.
	PreSmooth, PostSmooth, CoarseSweeps int

	epart   [energyShards]float64
	eShards int
	// Outputs, valid after Solve.
	psi, ex, ey []float64
	// cycles is the V-cycle count of the latest Solve.
	cycles int
}

// NewMultigrid creates a multigrid solver for an m x m grid (m a power
// of two) using all cores.
func NewMultigrid(m int) (*Multigrid, error) { return NewMultigridWorkers(m, 0) }

// NewMultigridWorkers is NewMultigrid with an explicit worker count;
// workers <= 0 selects all cores. Levels below 64x64 run serial (the
// fork-join costs more than the sweep there), so coarse levels always
// smooth serially regardless of the pool size.
func NewMultigridWorkers(m, workers int) (*Multigrid, error) {
	if err := checkGridSize(m); err != nil {
		return nil, err
	}
	g := &Multigrid{
		m:       m,
		workers: parallel.Count(workers),

		Tol:          defaultMGTol,
		MaxCycles:    defaultMGMaxCycles,
		PreSmooth:    defaultMGSmooth,
		PostSmooth:   defaultMGSmooth,
		CoarseSweeps: defaultMGCoarse,

		psi: make([]float64, m*m),
		ex:  make([]float64, m*m),
		ey:  make([]float64, m*m),
	}
	for lm := m; lm >= coarsestM; lm /= 2 {
		g.levels = append(g.levels, mgLevel{
			m: lm,
			u: make([]float64, lm*lm),
			f: make([]float64, lm*lm),
			r: make([]float64, lm*lm),
		})
		if lm == m && m < 2*coarsestM {
			break // m == 1 or 2: single level
		}
	}
	g.eShards = energyShards
	if g.eShards > m*m {
		g.eShards = m * m
	}
	return g, nil
}

// M returns the grid size.
func (g *Multigrid) M() int { return g.m }

// Name returns the backend kind.
func (g *Multigrid) Name() string { return KindMultigrid }

// Planes returns the potential and field planes of the latest Solve.
func (g *Multigrid) Planes() (psi, ex, ey []float64) { return g.psi, g.ex, g.ey }

// Cycles returns the V-cycle count of the latest Solve.
func (g *Multigrid) Cycles() int { return g.cycles }

// effWorkers returns the worker count for a level of edge lm: serial
// below 64, never more than half the rows (the finest shard is a row).
func (g *Multigrid) effWorkers(lm int) int {
	if lm < 64 {
		return 1
	}
	w := g.workers
	if w > lm/2 {
		w = lm / 2
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Solve computes Psi, Ex and Ey from the charge plane rho (length m*m,
// row-major). The mean of rho is discarded, matching the spectral
// backends' dropped (0,0) mode.
func (g *Multigrid) Solve(rho []float64) {
	m := g.m
	n := m * m
	if len(rho) != n {
		panic("poisson: charge plane size mismatch")
	}
	g.cycles = 0
	if m == 1 {
		g.psi[0], g.ex[0], g.ey[0] = 0, 0, 0
		return
	}

	l0 := &g.levels[0]
	mean := g.sum(rho) / float64(n)
	w := g.effWorkers(m)
	u, f := l0.u, l0.f
	parallel.For(w, m, func(_, lo, hi int) {
		for k := lo * m; k < hi*m; k++ {
			u[k] = 0 // cold start: see the determinism note above
			f[k] = rho[k] - mean
		}
	})
	fnorm := math.Sqrt(g.dot(f, f))
	if fnorm > 0 {
		for g.cycles < g.MaxCycles {
			g.vcycle(0)
			g.cycles++
			g.residual(l0)
			if math.Sqrt(g.dot(l0.r, l0.r)) <= g.Tol*fnorm {
				break
			}
		}
	}

	umean := g.sum(u) / float64(n)
	psi, ex, ey := g.psi, g.ex, g.ey
	parallel.For(w, m, func(_, lo, hi int) {
		for k := lo * m; k < hi*m; k++ {
			psi[k] = u[k] - umean
		}
	})
	// Fields by central differences with mirror ghosts (psi[-1] =
	// psi[0]), halving the stencil at the walls; Ex = -d psi/dx.
	parallel.For(w, m, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			row := j * m
			up, dn := row-m, row+m
			if j == 0 {
				up = row
			}
			if j == m-1 {
				dn = row
			}
			ex[row] = -(psi[row+1] - psi[row]) / 2
			for i := 1; i < m-1; i++ {
				ex[row+i] = -(psi[row+i+1] - psi[row+i-1]) / 2
			}
			ex[row+m-1] = -(psi[row+m-1] - psi[row+m-2]) / 2
			for i := 0; i < m; i++ {
				ey[row+i] = -(psi[dn+i] - psi[up+i]) / 2
			}
		}
	})
}

// vcycle runs one V-cycle starting at level k (solving A u = f on that
// level's current u as the initial guess).
func (g *Multigrid) vcycle(k int) {
	l := &g.levels[k]
	if k == len(g.levels)-1 {
		for s := 0; s < g.CoarseSweeps; s++ {
			g.sweep(l)
		}
		return
	}
	for s := 0; s < g.PreSmooth; s++ {
		g.sweep(l)
	}
	g.residual(l)
	g.restrict(l, &g.levels[k+1])
	g.vcycle(k + 1)
	g.prolong(&g.levels[k+1], l)
	for s := 0; s < g.PostSmooth; s++ {
		g.sweep(l)
	}
}

// sweep runs one full red-black Gauss-Seidel sweep (red half-sweep then
// black), row-sharded. Each half-sweep writes one color and reads only
// the other, so shard boundaries cannot change any value.
func (g *Multigrid) sweep(l *mgLevel) {
	w := g.effWorkers(l.m)
	for color := 0; color < 2; color++ {
		c := color
		parallel.For(w, l.m, func(_, lo, hi int) {
			for j := lo; j < hi; j++ {
				smoothRow(l, j, c)
			}
		})
	}
}

// smoothRow applies the Gauss-Seidel update u_c = (f_c + sum_nb
// u_nb)/deg(c) to the cells of row j whose color (i+j)&1 matches color.
func smoothRow(l *mgLevel, j, color int) {
	m := l.m
	u, f := l.u, l.f
	row := j * m
	hasUp, hasDn := j > 0, j < m-1
	for i := (color ^ (j & 1)) & 1; i < m; i += 2 {
		sum, deg := 0.0, 0.0
		if i > 0 {
			sum += u[row+i-1]
			deg++
		}
		if i < m-1 {
			sum += u[row+i+1]
			deg++
		}
		if hasUp {
			sum += u[row-m+i]
			deg++
		}
		if hasDn {
			sum += u[row+m+i]
			deg++
		}
		u[row+i] = (sum + f[row+i]) / deg
	}
}

// residual computes r = f - A u, row-sharded (reads u, writes r).
func (g *Multigrid) residual(l *mgLevel) {
	m := l.m
	w := g.effWorkers(m)
	u, f, r := l.u, l.f, l.r
	parallel.For(w, m, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			row := j * m
			hasUp, hasDn := j > 0, j < m-1
			for i := 0; i < m; i++ {
				sum, deg := 0.0, 0.0
				if i > 0 {
					sum += u[row+i-1]
					deg++
				}
				if i < m-1 {
					sum += u[row+i+1]
					deg++
				}
				if hasUp {
					sum += u[row-m+i]
					deg++
				}
				if hasDn {
					sum += u[row+m+i]
					deg++
				}
				r[row+i] = f[row+i] - (deg*u[row+i] - sum)
			}
		}
	})
}

// restrict forms the coarse right-hand side by full weighting — each
// coarse cell takes the SUM of its four children's residuals, which
// carries the h^2 scaling of the coarse operator (the average times
// (h_H/h)^2 = 4) — and zeroes the coarse initial guess.
func (g *Multigrid) restrict(fine, coarse *mgLevel) {
	mf, mc := fine.m, coarse.m
	w := g.effWorkers(mc)
	r, fc, uc := fine.r, coarse.f, coarse.u
	parallel.For(w, mc, func(_, lo, hi int) {
		for J := lo; J < hi; J++ {
			top, bot := 2*J*mf, (2*J+1)*mf
			out := J * mc
			for I := 0; I < mc; I++ {
				i := 2 * I
				fc[out+I] = r[top+i] + r[top+i+1] + r[bot+i] + r[bot+i+1]
				uc[out+I] = 0
			}
		}
	})
}

// prolong interpolates the coarse correction bilinearly and adds it to
// the fine solution. A fine cell center sits 1/4 of a coarse cell from
// its parent's center, giving tensor weights 9/16, 3/16, 3/16, 1/16
// over the parent and its nearer neighbors; out-of-range neighbor
// indices clamp to the boundary cell, which is the mirror (Neumann)
// extension of the coarse grid.
func (g *Multigrid) prolong(coarse, fine *mgLevel) {
	mf, mc := fine.m, coarse.m
	w := g.effWorkers(mf)
	e, u := coarse.u, fine.u
	parallel.For(w, mf, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			J := j >> 1
			Jn := J - 1 + 2*(j&1)
			if Jn < 0 {
				Jn = 0
			} else if Jn > mc-1 {
				Jn = mc - 1
			}
			main, side := e[J*mc:(J+1)*mc], e[Jn*mc:(Jn+1)*mc]
			row := j * mf
			for i := 0; i < mf; i++ {
				I := i >> 1
				In := I - 1 + 2*(i&1)
				if In < 0 {
					In = 0
				} else if In > mc-1 {
					In = mc - 1
				}
				u[row+i] += 0.5625*main[I] + 0.1875*(main[In]+side[I]) + 0.0625*side[In]
			}
		}
	})
}

// sum folds x over the fixed 64-shard partition in shard order.
func (g *Multigrid) sum(x []float64) float64 {
	n := len(x)
	shards := g.eShards
	w := g.effWorkers(g.m)
	parallel.For(w, shards, func(_, lo, hi int) {
		for sh := lo; sh < hi; sh++ {
			a, b := sh*n/shards, (sh+1)*n/shards
			e := 0.0
			for k := a; k < b; k++ {
				e += x[k]
			}
			g.epart[sh] = e
		}
	})
	e := 0.0
	for _, p := range g.epart[:shards] {
		e += p
	}
	return e
}

// dot folds sum_k a_k*b_k over the fixed 64-shard partition.
func (g *Multigrid) dot(a, b []float64) float64 {
	n := len(a)
	shards := g.eShards
	w := g.effWorkers(g.m)
	parallel.For(w, shards, func(_, lo, hi int) {
		for sh := lo; sh < hi; sh++ {
			x, y := sh*n/shards, (sh+1)*n/shards
			e := 0.0
			for k := x; k < y; k++ {
				e += a[k] * b[k]
			}
			g.epart[sh] = e
		}
	})
	e := 0.0
	for _, p := range g.epart[:shards] {
		e += p
	}
	return e
}

// Energy returns sum_b rho_b * psi_b for the latest Solve, with the
// same fixed-order reduction as the spectral backends.
func (g *Multigrid) Energy(rho []float64) float64 {
	if len(rho) != len(g.psi) {
		panic("poisson: charge plane size mismatch")
	}
	return g.dot(rho, g.psi)
}
