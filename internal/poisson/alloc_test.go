package poisson

import (
	"math"
	"testing"
)

// TestSolveEnergyAllocFree pins the serial allocation contract: with a
// single worker, repeated Solve and Energy calls reuse the persistent
// task closures and whole-plane scratch and allocate nothing.
func TestSolveEnergyAllocFree(t *testing.T) {
	const m = 64
	s := mustSolver(t, m, 1)
	rho := make([]float64, m*m)
	for i := range rho {
		rho[i] = math.Sin(float64(5 * i))
	}
	s.Solve(rho)
	s.Energy(rho)
	if n := testing.AllocsPerRun(10, func() { s.Solve(rho) }); n != 0 {
		t.Errorf("Solve allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() { s.Energy(rho) }); n != 0 {
		t.Errorf("Energy allocates %v times per call, want 0", n)
	}
}
