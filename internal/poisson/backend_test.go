package poisson

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// mustBackend builds the named backend or fails the test.
func mustBackend(tb testing.TB, kind string, m, workers int) Backend {
	tb.Helper()
	b, err := NewBackend(kind, m, workers)
	if err != nil {
		tb.Fatalf("NewBackend(%q, %d, %d): %v", kind, m, workers, err)
	}
	return b
}

// randCharge is a white-noise charge plane: the hardest case for the
// float32 pipeline (full spectral content, heavy cancellation).
func randCharge(m int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	rho := make([]float64, m*m)
	for i := range rho {
		rho[i] = rng.Float64() * 10
	}
	return rho
}

// smoothCharge is a low-frequency charge plane plus a broad Gaussian
// blob: representative of real bin densities, and band-limited enough
// that the multigrid stencil's O(h^2) discretization error stays small.
func smoothCharge(m int) []float64 {
	rho := make([]float64, m*m)
	fm := float64(m)
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			x, y := (float64(i)+0.5)/fm, (float64(j)+0.5)/fm
			g := math.Exp(-((x-0.4)*(x-0.4) + (y-0.6)*(y-0.6)) / 0.02)
			rho[j*m+i] = 3*math.Cos(math.Pi*2*x)*math.Cos(math.Pi*y) +
				1.5*math.Cos(math.Pi*3*x) + 5*g
		}
	}
	return rho
}

// spectral32Tol is the per-size error budget of the float32 pipeline
// against the float64 reference: a few float32 ulps per transform
// stage, so it grows slowly (log m) with the grid.
func spectral32Tol(m int) float64 { return 2e-6 * (math.Log2(float64(m)) + 2) }

// multigridTol is the per-size budget of the 5-point multigrid fields
// against the spectral reference on SMOOTH charge. The gap is the
// O(h^2) discretization error of the stencil and of the
// central-difference gradient, so it shrinks 4x per grid doubling;
// the constant covers the Gaussian blob's mid-band content.
func multigridTol(m int) float64 { return 15.0 / float64(m*m) }

// TestSpectral32FieldsMatchReference pins the float32 spectral backend
// against the float64 reference across the size ladder, on white-noise
// charge (worst case for precision).
func TestSpectral32FieldsMatchReference(t *testing.T) {
	for _, m := range []int{16, 32, 64, 128, 256, 512} {
		ref := mustSolver(t, m, 1)
		s := mustBackend(t, KindSpectral32, m, 1)
		rho := randCharge(m, int64(m))
		ref.Solve(rho)
		s.Solve(rho)
		psi, ex, ey := s.Planes()
		errs := []float64{
			MaxRelError(psi, ref.Psi),
			MaxRelError(ex, ref.Ex),
			MaxRelError(ey, ref.Ey),
		}
		tol := spectral32Tol(m)
		t.Logf("m=%d spectral32 rel err psi=%.3g ex=%.3g ey=%.3g (tol %.3g)",
			m, errs[0], errs[1], errs[2], tol)
		for i, e := range errs {
			if e > tol {
				t.Errorf("m=%d plane %d: rel err %g > %g", m, i, e, tol)
			}
		}
		// Energy agrees to the same relative order.
		eRef := ref.Energy(rho)
		eGot := s.Energy(rho)
		if d := math.Abs(eGot-eRef) / math.Abs(eRef); d > tol {
			t.Errorf("m=%d energy rel err %g > %g", m, d, tol)
		}
	}
}

// TestMultigridFieldsMatchReference pins the multigrid backend against
// the spectral reference on smooth charge, where the remaining gap is
// the stencil's O(h^2) discretization error.
func TestMultigridFieldsMatchReference(t *testing.T) {
	for _, m := range []int{16, 32, 64, 128, 256, 512} {
		ref := mustSolver(t, m, 1)
		g := mustBackend(t, KindMultigrid, m, 1)
		rho := smoothCharge(m)
		ref.Solve(rho)
		g.Solve(rho)
		psi, ex, ey := g.Planes()
		errs := []float64{
			MaxRelError(psi, ref.Psi),
			MaxRelError(ex, ref.Ex),
			MaxRelError(ey, ref.Ey),
		}
		tol := multigridTol(m)
		t.Logf("m=%d multigrid rel err psi=%.3g ex=%.3g ey=%.3g (tol %.3g, cycles %d)",
			m, errs[0], errs[1], errs[2], tol, g.(*Multigrid).Cycles())
		for i, e := range errs {
			if e > tol {
				t.Errorf("m=%d plane %d: rel err %g > %g", m, i, e, tol)
			}
		}
	}
}

// TestMultigridSolvesDiscreteSystem checks the algebraic contract
// independently of the spectral comparison: the returned potential
// satisfies the 5-point system A psi = rho - mean to the residual
// tolerance, even on white-noise charge.
func TestMultigridSolvesDiscreteSystem(t *testing.T) {
	for _, m := range []int{16, 64, 128} {
		g := mustBackend(t, KindMultigrid, m, 1).(*Multigrid)
		rho := randCharge(m, 99)
		g.Solve(rho)
		psi, _, _ := g.Planes()
		mean := 0.0
		for _, r := range rho {
			mean += r
		}
		mean /= float64(m * m)
		var rnorm, fnorm float64
		for j := 0; j < m; j++ {
			for i := 0; i < m; i++ {
				sum, deg := 0.0, 0.0
				if i > 0 {
					sum += psi[j*m+i-1]
					deg++
				}
				if i < m-1 {
					sum += psi[j*m+i+1]
					deg++
				}
				if j > 0 {
					sum += psi[(j-1)*m+i]
					deg++
				}
				if j < m-1 {
					sum += psi[(j+1)*m+i]
					deg++
				}
				f := rho[j*m+i] - mean
				r := f - (deg*psi[j*m+i] - sum)
				rnorm += r * r
				fnorm += f * f
			}
		}
		rel := math.Sqrt(rnorm / fnorm)
		t.Logf("m=%d multigrid residual %.3g (cycles %d)", m, rel, g.Cycles())
		if rel > g.Tol*1.01 {
			t.Errorf("m=%d: relative residual %g > tol %g", m, rel, g.Tol)
		}
	}
}

// TestBackendsBitwiseAcrossWorkers pins the determinism contract for
// every backend: identical planes and energy at workers 1, 2 and 7.
func TestBackendsBitwiseAcrossWorkers(t *testing.T) {
	const m = 128
	for _, kind := range Kinds() {
		rho := randCharge(m, 7)
		ref := mustBackend(t, kind, m, 1)
		ref.Solve(rho)
		refPsi, refEx, refEy := ref.Planes()
		refE := ref.Energy(rho)
		for _, workers := range []int{2, 7} {
			b := mustBackend(t, kind, m, workers)
			b.Solve(rho)
			psi, ex, ey := b.Planes()
			for i := range psi {
				if psi[i] != refPsi[i] || ex[i] != refEx[i] || ey[i] != refEy[i] {
					t.Fatalf("%s workers=%d: plane mismatch at %d", kind, workers, i)
				}
			}
			if e := b.Energy(rho); math.Float64bits(e) != math.Float64bits(refE) {
				t.Fatalf("%s workers=%d: energy %v != %v", kind, workers, e, refE)
			}
		}
	}
}

// TestBackendsRepeatSolveBitwise pins solve-to-solve reproducibility:
// re-solving the same charge yields bit-identical planes (multigrid
// cold-starts every Solve precisely to guarantee this).
func TestBackendsRepeatSolveBitwise(t *testing.T) {
	const m = 64
	for _, kind := range Kinds() {
		b := mustBackend(t, kind, m, 2)
		rho := randCharge(m, 21)
		other := smoothCharge(m)
		b.Solve(rho)
		psi, _, _ := b.Planes()
		first := append([]float64(nil), psi...)
		b.Solve(other) // disturb internal state
		b.Solve(rho)
		psi, _, _ = b.Planes()
		for i := range psi {
			if psi[i] != first[i] {
				t.Fatalf("%s: repeat solve differs at %d", kind, i)
			}
		}
	}
}

// TestGuardFallback forces the precision guard to trip and checks the
// permanent float64 fallback: the planes become the reference's and
// later solves keep using it.
func TestGuardFallback(t *testing.T) {
	const m = 64
	s, err := NewSolver32Workers(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.GuardEvery = 1
	s.GuardTol = 0 // any nonzero float32 rounding error trips the guard
	rho := randCharge(m, 5)
	s.Solve(rho)
	if !s.FellBack() {
		t.Fatal("guard with zero tolerance did not trip")
	}
	if s.LastGuardErr() <= 0 {
		t.Fatalf("guard error = %v, want > 0", s.LastGuardErr())
	}
	ref := mustSolver(t, m, 1)
	ref.Solve(rho)
	psi, ex, ey := s.Planes()
	for i := range psi {
		if psi[i] != ref.Psi[i] || ex[i] != ref.Ex[i] || ey[i] != ref.Ey[i] {
			t.Fatalf("fallback planes differ from reference at %d", i)
		}
	}
	if e, want := s.Energy(rho), ref.Energy(rho); math.Float64bits(e) != math.Float64bits(want) {
		t.Fatalf("fallback energy %v != %v", e, want)
	}
	// Subsequent solves stay on the reference path.
	rho2 := smoothCharge(m)
	s.Solve(rho2)
	ref.Solve(rho2)
	psi, _, _ = s.Planes()
	for i := range psi {
		if psi[i] != ref.Psi[i] {
			t.Fatalf("post-fallback solve differs from reference at %d", i)
		}
	}
}

// TestGuardStaysQuietOnNormalCharge: the default tolerance must not
// trip on ordinary charge planes (the fallback is for pathologies, not
// the steady state).
func TestGuardStaysQuietOnNormalCharge(t *testing.T) {
	const m = 128
	s, err := NewSolver32Workers(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.GuardEvery = 1 // check every solve
	for i := 0; i < 5; i++ {
		s.Solve(randCharge(m, int64(i)))
		if s.FellBack() {
			t.Fatalf("guard tripped on solve %d with err %v", i, s.LastGuardErr())
		}
	}
}

// TestBackendNames pins Name() round-tripping through NewBackend, which
// the checkpoint backend-mismatch rejection depends on.
func TestBackendNames(t *testing.T) {
	for _, kind := range Kinds() {
		b := mustBackend(t, kind, 16, 1)
		if b.Name() != kind {
			t.Errorf("NewBackend(%q).Name() = %q", kind, b.Name())
		}
		if b.M() != 16 {
			t.Errorf("%s: M() = %d, want 16", kind, b.M())
		}
	}
	if NormalizeKind("") != KindSpectral {
		t.Error("NormalizeKind(\"\") != spectral")
	}
	if _, err := NewBackend("bogus", 16, 1); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown-kind error %v does not name the kind", err)
	}
}

// TestMultigridUniformCharge: pure DC charge is entirely in the removed
// mean, so everything is zero (matching the spectral dropped (0,0) mode).
func TestMultigridUniformCharge(t *testing.T) {
	const m = 16
	g := mustBackend(t, KindMultigrid, m, 1)
	rho := make([]float64, m*m)
	for i := range rho {
		rho[i] = 4.2
	}
	g.Solve(rho)
	// The shard-folded mean subtraction leaves a rounding residue of a
	// few ulps, so the planes are tiny rather than exactly zero.
	psi, ex, ey := g.Planes()
	for i := range psi {
		if math.Abs(psi[i]) > 1e-12 || math.Abs(ex[i]) > 1e-12 || math.Abs(ey[i]) > 1e-12 {
			t.Fatalf("uniform charge produced psi=%v ex=%v ey=%v at %d", psi[i], ex[i], ey[i], i)
		}
	}
	if e := g.Energy(rho); math.Abs(e) > 1e-9 {
		t.Fatalf("uniform-charge energy = %v, want ~0", e)
	}
}

// TestBackendsDegenerateGrid: the 1x1 grid has only the removed DC mode.
func TestBackendsDegenerateGrid(t *testing.T) {
	for _, kind := range Kinds() {
		b := mustBackend(t, kind, 1, 1)
		b.Solve([]float64{42})
		psi, ex, ey := b.Planes()
		if psi[0] != 0 || ex[0] != 0 || ey[0] != 0 {
			t.Fatalf("%s 1x1: psi=%v ex=%v ey=%v, want zeros", kind, psi[0], ex[0], ey[0])
		}
	}
}

func benchBackend(b *testing.B, kind string, m, workers int) {
	s := mustBackend(b, kind, m, workers)
	rho := randCharge(m, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(rho)
	}
}

// Per-backend solve benchmarks at the committed microbench sizes (the
// float64 rows live in poisson_test.go as BenchmarkSolve_*).
func BenchmarkSolve32_128(b *testing.B)     { benchBackend(b, KindSpectral32, 128, 1) }
func BenchmarkSolve32_256(b *testing.B)     { benchBackend(b, KindSpectral32, 256, 1) }
func BenchmarkSolve32_512(b *testing.B)     { benchBackend(b, KindSpectral32, 512, 1) }
func BenchmarkSolveMG_128(b *testing.B)     { benchBackend(b, KindMultigrid, 128, 1) }
func BenchmarkSolveMG_256(b *testing.B)     { benchBackend(b, KindMultigrid, 256, 1) }
func BenchmarkSolveMG_512(b *testing.B)     { benchBackend(b, KindMultigrid, 512, 1) }
func BenchmarkSolve32_256AllCores(b *testing.B) { benchBackend(b, KindSpectral32, 256, 0) }
