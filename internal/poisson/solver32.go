// solver32.go is the mixed-precision spectral backend: the same
// cache-blocked five-pass pipeline as Solver, carried in float32 planes
// through fft.Real32's pair-packed transforms. Every intermediate plane
// (forward spectra, coefficient planes, transpose scratch) is float32,
// halving the memory traffic of the passes that dominate the float64
// solver at production grid sizes; the charge input and the
// Psi/Ex/Ey outputs stay float64, with the narrowing fused into the
// forward reorder gather (DCT2PairFrom64) and the widening into the
// inverse output scatter (IDCTPairTo64/IDSTPairTo64) so no separate
// conversion pass ever runs.
//
// Precision is error-controlled, not assumed: every GuardEvery-th
// Solve recomputes the same charge plane with a lazily-built float64
// reference Solver and compares the field planes (MaxRelError over Ex
// and Ey). The fields ARE the density gradient up to the shared factors
// q_i and lambda, which cancel in a relative error, so this is exactly
// the relative lambda-scaled gradient error of the tentpole contract.
// If it ever exceeds GuardTol the backend falls back to the float64
// reference permanently for the rest of its lifetime. The cadence is
// solve-count based and the reference is itself bitwise-deterministic,
// so the guard never breaks determinism across worker counts.
package poisson

import (
	"math"

	"eplace/internal/fft"
	"eplace/internal/parallel"
)

// Guard defaults: check the first solve and every 64th after it, and
// tolerate up to 0.1% relative field error. The observed float32
// pipeline error is ~1e-5 at m=512 (see the backend property tests), so
// the guard trips only on genuinely pathological charge planes.
const (
	defaultGuardEvery = 64
	defaultGuardTol   = 1e-3
)

// Solver32 is the float32 spectral Poisson backend. Not safe for
// concurrent method calls; use one per placement engine.
type Solver32 struct {
	m int
	// One float32 transform workspace per worker.
	trs []*fft.Real32
	// wu[u] = pi*u/m, kept in float64 for the guard/reference paths.
	wu []float64
	// cb[u*m+v] = 4/m^2 * s_u * s_v / k2 (0 at the origin) and
	// wuf[u] = float32(wu[u]): the whole normalization pass reduces to
	// three float32 multiplies per element. The coefficients are
	// computed in float64 and rounded once at construction, so the only
	// extra rounding vs a float64 pass is the final narrowing.
	cb  []float32
	wuf []float32
	// Coefficient planes in transposed [u*m + v] layout, float32.
	buv, cxuv, cyuv []float32
	// Whole-plane float32 scratch for the transform passes.
	ta, tb, tc []float32
	// Fixed-order Energy partials, same contract as Solver.
	epart   [energyShards]float64
	eShards int
	// Outputs, float64, valid after Solve.
	psi, ex, ey []float64

	// Runtime precision guard.
	GuardEvery int      // check cadence in solves (<=0 disables)
	GuardTol   float64  // max relative field error before fallback
	ref        *Solver  // float64 reference, built on first guard check
	solves     int      // Solve calls so far
	fellBack   bool     // permanent float64 fallback engaged
	lastErr    float64  // relative field error at the latest guard check
	refWorkers int      // worker request to build ref with

	// Per-call inputs threaded through fields so the persistent task
	// closures below allocate nothing per Solve (same pattern as Solver).
	rho        []float64
	tSrc, tDst []float32

	fwdRowsTask, fwdColsTask, normTask func(w, lo, hi int)
	invYTask, invXTask                 func(w, lo, hi int)
	transposeTask, energyTask          func(w, lo, hi int)
}

// NewSolver32 creates a float32 spectral solver for an m x m grid
// (m a power of two) using all cores.
func NewSolver32(m int) (*Solver32, error) { return NewSolver32Workers(m, 0) }

// NewSolver32Workers is NewSolver32 with an explicit worker count;
// workers <= 0 selects all cores. The same small-grid serial clamp as
// the float64 solver applies.
func NewSolver32Workers(m, workers int) (*Solver32, error) {
	if err := checkGridSize(m); err != nil {
		return nil, err
	}
	req := workers
	workers = parallel.Count(workers)
	if m < 64 {
		workers = 1
	}
	if workers > m/2 {
		workers = m / 2
	}
	if workers < 1 {
		workers = 1
	}
	s := &Solver32{
		m:    m,
		wu:   make([]float64, m),
		buv:  make([]float32, m*m),
		cxuv: make([]float32, m*m),
		cyuv: make([]float32, m*m),
		ta:   make([]float32, m*m),
		tb:   make([]float32, m*m),
		tc:   make([]float32, m*m),
		psi:  make([]float64, m*m),
		ex:   make([]float64, m*m),
		ey:   make([]float64, m*m),

		GuardEvery: defaultGuardEvery,
		GuardTol:   defaultGuardTol,
		refWorkers: req,
	}
	for w := 0; w < workers; w++ {
		s.trs = append(s.trs, fft.NewReal32(m))
	}
	for u := 0; u < m; u++ {
		s.wu[u] = math.Pi * float64(u) / float64(m)
	}
	s.cb = make([]float32, m*m)
	s.wuf = make([]float32, m)
	norm := 4 / float64(m*m)
	for u := 0; u < m; u++ {
		s.wuf[u] = float32(s.wu[u])
		su := 1.0
		if u == 0 {
			su = 0.5
		}
		for v := 0; v < m; v++ {
			sv := 1.0
			if v == 0 {
				sv = 0.5
			}
			k2 := s.wu[u]*s.wu[u] + s.wu[v]*s.wu[v]
			if k2 > 0 {
				s.cb[u*m+v] = float32(norm * su * sv / k2)
			}
		}
	}
	s.eShards = energyShards
	if s.eShards > m*m {
		s.eShards = m * m
	}
	s.buildTasks()
	return s, nil
}

func (s *Solver32) buildTasks() {
	m := s.m
	s.fwdRowsTask = func(w, lo, hi int) {
		rho := s.rho
		for k := lo; k < hi; k++ {
			j := 2 * k
			s.trs[w].DCT2PairFrom64(rho[j*m:(j+1)*m], rho[(j+1)*m:(j+2)*m],
				s.ta[j*m:(j+1)*m], s.ta[(j+1)*m:(j+2)*m])
		}
	}
	s.fwdColsTask = func(w, lo, hi int) {
		for k := lo; k < hi; k++ {
			u := 2 * k
			r0, r1 := s.tb[u*m:(u+1)*m], s.tb[(u+1)*m:(u+2)*m]
			s.trs[w].DCT2Pair(r0, r1, r0, r1)
		}
	}
	s.normTask = func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			wu := s.wuf[u]
			base := u * m
			for v := 0; v < m; v++ {
				b := s.tb[base+v] * s.cb[base+v]
				s.buv[base+v] = b
				s.cxuv[base+v] = b * wu
				s.cyuv[base+v] = b * s.wuf[v]
			}
		}
	}
	s.invYTask = func(w, lo, hi int) {
		for k := lo; k < hi; k++ {
			u := 2 * k
			tr := s.trs[w]
			b0, b1 := s.buv[u*m:(u+1)*m], s.buv[(u+1)*m:(u+2)*m]
			cx0, cx1 := s.cxuv[u*m:(u+1)*m], s.cxuv[(u+1)*m:(u+2)*m]
			cy0, cy1 := s.cyuv[u*m:(u+1)*m], s.cyuv[(u+1)*m:(u+2)*m]
			tr.IDCTPair(b0, cx0, b0, cx0)
			tr.IDCTPair(b1, cx1, b1, cx1)
			tr.IDSTPair(cy0, cy1, cy0, cy1)
		}
	}
	s.invXTask = func(w, lo, hi int) {
		for k := lo; k < hi; k++ {
			j := 2 * k
			tr := s.trs[w]
			tr.IDCTPairTo64(s.ta[j*m:(j+1)*m], s.tb[j*m:(j+1)*m],
				s.psi[j*m:(j+1)*m], s.ey[j*m:(j+1)*m])
			tr.IDCTPairTo64(s.ta[(j+1)*m:(j+2)*m], s.tb[(j+1)*m:(j+2)*m],
				s.psi[(j+1)*m:(j+2)*m], s.ey[(j+1)*m:(j+2)*m])
			tr.IDSTPairTo64(s.tc[j*m:(j+1)*m], s.tc[(j+1)*m:(j+2)*m],
				s.ex[j*m:(j+1)*m], s.ex[(j+1)*m:(j+2)*m])
		}
	}
	s.transposeTask = func(_, lo, hi int) {
		src, dst := s.tSrc, s.tDst
		for bi := lo; bi < hi; bi++ {
			i0 := bi * tblk
			i1 := min(i0+tblk, m)
			for j0 := 0; j0 < m; j0 += tblk {
				j1 := min(j0+tblk, m)
				for i := i0; i < i1; i++ {
					row := dst[i*m : (i+1)*m]
					for j := j0; j < j1; j++ {
						row[j] = src[j*m+i]
					}
				}
			}
		}
	}
	s.energyTask = func(_, lo, hi int) {
		n := m * m
		shards := s.eShards
		rho := s.rho
		for sh := lo; sh < hi; sh++ {
			a, b := sh*n/shards, (sh+1)*n/shards
			e := 0.0
			for k := a; k < b; k++ {
				e += rho[k] * s.psi[k]
			}
			s.epart[sh] = e
		}
	}
}

// M returns the grid size.
func (s *Solver32) M() int { return s.m }

// Name returns the backend kind.
func (s *Solver32) Name() string { return KindSpectral32 }

// Planes returns the potential and field planes of the latest Solve.
// After a guard fallback these are the float64 reference's planes.
func (s *Solver32) Planes() (psi, ex, ey []float64) {
	if s.fellBack {
		return s.ref.Planes()
	}
	return s.psi, s.ex, s.ey
}

// FellBack reports whether the precision guard has permanently switched
// this backend to the float64 reference.
func (s *Solver32) FellBack() bool { return s.fellBack }

// LastGuardErr returns the relative field error measured at the most
// recent guard check (zero before the first check).
func (s *Solver32) LastGuardErr() float64 { return s.lastErr }

// Solve computes the float64 potential and field planes from the
// float64 charge plane rho through the float32 transform pipeline,
// cross-checking against the float64 reference on the guard cadence.
func (s *Solver32) Solve(rho []float64) {
	m := s.m
	if len(rho) != m*m {
		panic("poisson: charge plane size mismatch")
	}
	s.solves++
	if s.fellBack {
		s.ref.Solve(rho)
		return
	}
	if m == 1 {
		s.psi[0], s.ex[0], s.ey[0] = 0, 0, 0
		return
	}

	workers := len(s.trs)
	pairs := m / 2

	// Same five passes as Solver.Solve, float32 planes throughout.
	s.rho = rho
	parallel.For(workers, pairs, s.fwdRowsTask)
	s.rho = nil
	s.transpose(s.ta, s.tb)
	parallel.For(workers, pairs, s.fwdColsTask)
	parallel.For(workers, m, s.normTask)
	parallel.For(workers, pairs, s.invYTask)
	s.transpose(s.buv, s.ta)
	s.transpose(s.cyuv, s.tb)
	s.transpose(s.cxuv, s.tc)
	parallel.For(workers, pairs, s.invXTask)

	if s.GuardEvery > 0 && (s.solves-1)%s.GuardEvery == 0 {
		s.guardCheck(rho)
	}
}

// guardCheck solves rho with the float64 reference and measures the
// relative field error of the float32 planes. Above GuardTol the
// backend flips to the reference permanently (its planes are already
// filled for this solve).
func (s *Solver32) guardCheck(rho []float64) {
	if s.ref == nil {
		// The grid size was validated at construction, so this cannot fail.
		s.ref, _ = NewSolverWorkers(s.m, s.refWorkers)
	}
	s.ref.Solve(rho)
	errX := MaxRelError(s.ex, s.ref.Ex)
	errY := MaxRelError(s.ey, s.ref.Ey)
	s.lastErr = math.Max(errX, errY)
	if s.lastErr > s.GuardTol {
		s.fellBack = true
	}
}

func (s *Solver32) transpose(src, dst []float32) {
	nb := (s.m + tblk - 1) / tblk
	s.tSrc, s.tDst = src, dst
	parallel.For(len(s.trs), nb, s.transposeTask)
	s.tSrc, s.tDst = nil, nil
}

// Energy returns sum_b rho_b * psi_b with the same fixed-order shard
// reduction as the float64 solver. The potential plane is the widened
// float32 result (or the reference's after a fallback), so the sum
// itself accumulates in float64.
func (s *Solver32) Energy(rho []float64) float64 {
	if s.fellBack {
		return s.ref.Energy(rho)
	}
	if len(rho) != len(s.psi) {
		panic("poisson: charge plane size mismatch")
	}
	s.rho = rho
	parallel.For(len(s.trs), s.eShards, s.energyTask)
	s.rho = nil
	e := 0.0
	for _, p := range s.epart[:s.eShards] {
		e += p
	}
	return e
}
