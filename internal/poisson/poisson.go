// Package poisson solves the well-defined Poisson equation of Eq. (6)
//
//	div grad psi(x, y) = -rho(x, y)
//	n . grad psi = 0 on the boundary (Neumann)
//	integral of rho = integral of psi = 0
//
// on an M x M grid by spectral methods, exactly as FFTPL/ePlace: the
// charge is expanded in the cosine basis cos(w_u x) cos(w_v y),
// w_u = pi*u/M (which satisfies the Neumann condition term by term), the
// potential coefficients are a_{uv}/(w_u^2 + w_v^2) with the (0,0) mode
// removed, and the field components come from differentiating the basis,
// turning one cosine factor into a sine.
//
// Everything runs in O(M^2 log M) via the packed real transforms in
// internal/fft, organized as a cache-blocked 2D pipeline: every 1-D
// pass runs on contiguous rows (column passes go through an explicit
// blocked transpose instead of stride-M gather/scatter), two real rows
// share each complex FFT (fft.Real's *Pair methods), and the three
// inverse planes fuse where their transform kinds coincide — the
// Psi/Ex y-pass and the Psi/Ey x-pass each pair two planes into one
// FFT. All passes fan out over the shared internal/parallel worker
// pool (one thread-confined fft.Real workspace per worker). Tasks are
// fixed row pairs and transpose blocks whose boundaries do not depend
// on the worker count, and each task writes a disjoint slice of its
// output plane, so results are bitwise-identical for every worker
// count.
//
// Grid coordinates: sample (i, j) is the bin center (i+1/2, j+1/2) in
// units of bins. Ex is minus d(psi)/dx, the electric field that pushes
// positive charge away from density peaks; Ey likewise.
package poisson

import (
	"fmt"
	"math"

	"eplace/internal/fft"
	"eplace/internal/parallel"
)

// energyShards is the fixed number of partial sums in the Energy
// reduction. It is independent of the worker count so the summation
// order — shard-local left-to-right folds combined in shard order — is
// identical for every Workers setting.
const energyShards = 64

// tblk is the transpose tile edge: a 32x32 float64 tile is 8 KiB, so
// one source and one destination tile stay L1-resident.
const tblk = 32

// Solver holds workspace for repeated solves on one grid size. A Solver
// is not safe for concurrent method calls (Solve parallelizes
// internally and Energy reuses the shared partial-sum buffer); use one
// Solver per goroutine.
type Solver struct {
	m int
	// One packed-transform workspace per worker. Each worker's fft.Real
	// owns its reorder/twiddle tables and complex scratch; the solver
	// itself owns the whole-plane scratch below, written in disjoint
	// row/tile slices by the workers.
	trs []*fft.Real
	// wu[u] = pi*u/m.
	wu []float64
	// Coefficient planes in TRANSPOSED layout [u*m + v] (frequency u
	// outer, v inner) so the y-direction passes run on contiguous rows.
	// After the inverse y-pass they hold the half-reconstructed planes
	// G[u*m + j] in place.
	buv  []float64 // potential coefficients auv/(wu^2+wv^2)
	cxuv []float64 // field-x coefficients buv*wu
	cyuv []float64 // field-y coefficients buv*wv
	// Whole-plane scratch: ta/tb carry the forward passes, and all
	// three hold the re-transposed G planes for the inverse x-pass.
	ta, tb, tc []float64
	// epart holds the fixed-order Energy partial sums; eShards is the
	// effective shard count (fixed at construction).
	epart   [energyShards]float64
	eShards int
	// Outputs, valid after Solve.
	Psi []float64 // potential at bin centers
	Ex  []float64 // -d psi / dx
	Ey  []float64 // -d psi / dy

	// Per-call inputs for the persistent task closures below. Closures
	// handed to parallel.For escape; capturing per-call locals would
	// heap-allocate one closure per pass per Solve, so the passes are
	// built once here and their varying inputs threaded through fields.
	rho        []float64 // charge plane of the current Solve/Energy
	tSrc, tDst []float64 // planes of the current transpose

	fwdRowsTask, fwdColsTask, normTask func(w, lo, hi int)
	invYTask, invXTask                 func(w, lo, hi int)
	transposeTask, energyTask          func(w, lo, hi int)
}

// NewSolver creates a solver for an m x m grid (m a power of two)
// using all cores. It returns a descriptive error for any m the packed
// transforms cannot handle (zero, negative, or not a power of two) —
// feeding such an m through would produce garbage transforms, and the
// grid size often arrives from user-facing options.
func NewSolver(m int) (*Solver, error) { return NewSolverWorkers(m, 0) }

// NewSolverWorkers is NewSolver with an explicit worker count;
// workers <= 0 selects all cores (GOMAXPROCS). Grids below 64x64 run
// serial regardless: a transform there is cheaper than a fork-join.
func NewSolverWorkers(m, workers int) (*Solver, error) {
	if err := checkGridSize(m); err != nil {
		return nil, err
	}
	workers = parallel.Count(workers)
	if m < 64 {
		workers = 1
	}
	// The finest-grained parallel regions shard over m/2 row pairs.
	if workers > m/2 {
		workers = m / 2
	}
	if workers < 1 {
		workers = 1
	}
	s := &Solver{
		m:    m,
		wu:   make([]float64, m),
		buv:  make([]float64, m*m),
		cxuv: make([]float64, m*m),
		cyuv: make([]float64, m*m),
		ta:   make([]float64, m*m),
		tb:   make([]float64, m*m),
		tc:   make([]float64, m*m),
		Psi:  make([]float64, m*m),
		Ex:   make([]float64, m*m),
		Ey:   make([]float64, m*m),
	}
	for w := 0; w < workers; w++ {
		s.trs = append(s.trs, fft.NewReal(m))
	}
	for u := 0; u < m; u++ {
		s.wu[u] = math.Pi * float64(u) / float64(m)
	}
	s.eShards = energyShards
	if s.eShards > m*m {
		s.eShards = m * m
	}
	s.buildTasks()
	return s, nil
}

// checkGridSize validates the grid edge shared by every backend: the
// spectral transforms need a power of two, and multigrid coarsens by
// factors of two down to 1x1, so the same constraint applies everywhere.
func checkGridSize(m int) error {
	if m <= 0 || m&(m-1) != 0 {
		return fmt.Errorf("poisson: grid size %d is not a positive power of two", m)
	}
	return nil
}

// buildTasks creates the persistent worker closures for every parallel
// pass. Each task receives a contiguous shard [lo, hi) of its fixed
// index space (row pairs, frequency rows, transpose tile bands or
// energy shards); the shard boundaries parallel.For picks never affect
// the values each index computes, preserving bitwise determinism.
func (s *Solver) buildTasks() {
	m := s.m
	s.fwdRowsTask = func(w, lo, hi int) {
		rho := s.rho
		for k := lo; k < hi; k++ {
			j := 2 * k
			s.trs[w].DCT2Pair(rho[j*m:(j+1)*m], rho[(j+1)*m:(j+2)*m],
				s.ta[j*m:(j+1)*m], s.ta[(j+1)*m:(j+2)*m])
		}
	}
	s.fwdColsTask = func(w, lo, hi int) {
		for k := lo; k < hi; k++ {
			u := 2 * k
			r0, r1 := s.tb[u*m:(u+1)*m], s.tb[(u+1)*m:(u+2)*m]
			s.trs[w].DCT2Pair(r0, r1, r0, r1)
		}
	}
	s.normTask = func(_, lo, hi int) {
		norm := 4 / float64(m*m)
		for u := lo; u < hi; u++ {
			su := 1.0
			if u == 0 {
				su = 0.5
			}
			wu := s.wu[u]
			base := u * m
			for v := 0; v < m; v++ {
				sv := 1.0
				if v == 0 {
					sv = 0.5
				}
				a := s.tb[base+v] * norm * su * sv
				wv := s.wu[v]
				k2 := wu*wu + wv*wv
				var b float64
				if k2 > 0 {
					b = a / k2
				}
				s.buv[base+v] = b
				s.cxuv[base+v] = b * wu
				s.cyuv[base+v] = b * wv
			}
		}
	}
	s.invYTask = func(w, lo, hi int) {
		for k := lo; k < hi; k++ {
			u := 2 * k
			tr := s.trs[w]
			b0, b1 := s.buv[u*m:(u+1)*m], s.buv[(u+1)*m:(u+2)*m]
			cx0, cx1 := s.cxuv[u*m:(u+1)*m], s.cxuv[(u+1)*m:(u+2)*m]
			cy0, cy1 := s.cyuv[u*m:(u+1)*m], s.cyuv[(u+1)*m:(u+2)*m]
			tr.IDCTPair(b0, cx0, b0, cx0)
			tr.IDCTPair(b1, cx1, b1, cx1)
			tr.IDSTPair(cy0, cy1, cy0, cy1)
		}
	}
	s.invXTask = func(w, lo, hi int) {
		for k := lo; k < hi; k++ {
			j := 2 * k
			tr := s.trs[w]
			tr.IDCTPair(s.ta[j*m:(j+1)*m], s.tb[j*m:(j+1)*m],
				s.Psi[j*m:(j+1)*m], s.Ey[j*m:(j+1)*m])
			tr.IDCTPair(s.ta[(j+1)*m:(j+2)*m], s.tb[(j+1)*m:(j+2)*m],
				s.Psi[(j+1)*m:(j+2)*m], s.Ey[(j+1)*m:(j+2)*m])
			tr.IDSTPair(s.tc[j*m:(j+1)*m], s.tc[(j+1)*m:(j+2)*m],
				s.Ex[j*m:(j+1)*m], s.Ex[(j+1)*m:(j+2)*m])
		}
	}
	s.transposeTask = func(_, lo, hi int) {
		src, dst := s.tSrc, s.tDst
		for bi := lo; bi < hi; bi++ {
			i0 := bi * tblk
			i1 := min(i0+tblk, m)
			for j0 := 0; j0 < m; j0 += tblk {
				j1 := min(j0+tblk, m)
				for i := i0; i < i1; i++ {
					row := dst[i*m : (i+1)*m]
					for j := j0; j < j1; j++ {
						row[j] = src[j*m+i]
					}
				}
			}
		}
	}
	s.energyTask = func(_, lo, hi int) {
		n := m * m
		shards := s.eShards
		rho := s.rho
		for sh := lo; sh < hi; sh++ {
			a, b := sh*n/shards, (sh+1)*n/shards
			e := 0.0
			for k := a; k < b; k++ {
				e += rho[k] * s.Psi[k]
			}
			s.epart[sh] = e
		}
	}
}

// M returns the grid size.
func (s *Solver) M() int { return s.m }

// Name returns the backend kind: the float64 spectral reference.
func (s *Solver) Name() string { return KindSpectral }

// Planes returns the potential and field planes of the latest Solve.
func (s *Solver) Planes() (psi, ex, ey []float64) { return s.Psi, s.Ex, s.Ey }

// transpose writes dst[i*m+j] = src[j*m+i] tile by tile (tblk square
// tiles), sharding tile rows of dst across the pool. Each task owns a
// disjoint band of dst rows.
func (s *Solver) transpose(src, dst []float64) {
	nb := (s.m + tblk - 1) / tblk
	s.tSrc, s.tDst = src, dst
	parallel.For(len(s.trs), nb, s.transposeTask)
	s.tSrc, s.tDst = nil, nil
}

// Solve computes Psi, Ex and Ey from the charge plane rho (length m*m,
// row-major [j*m + i]). The zero-frequency (mean) component of rho is
// discarded, so callers need not pre-center the charge.
func (s *Solver) Solve(rho []float64) {
	m := s.m
	if len(rho) != m*m {
		panic("poisson: charge plane size mismatch")
	}
	if m == 1 {
		// Only the removed (0,0) mode exists.
		s.Psi[0], s.Ex[0], s.Ey[0] = 0, 0, 0
		return
	}

	workers := len(s.trs)
	pairs := m / 2

	// Forward 2D DCT-II. Rows (x direction) first, two rows per FFT.
	s.rho = rho
	parallel.For(workers, pairs, s.fwdRowsTask)
	s.rho = nil
	// Columns (y direction): transpose so the pass runs on contiguous
	// rows, transforming in place. tb ends as X_{uv} transposed [u,v].
	s.transpose(s.ta, s.tb)
	parallel.For(workers, pairs, s.fwdColsTask)

	// Normalize so that rho[j][i] = sum a_{uv} cos(wu(i+1/2)) cos(wv(j+1/2)):
	// a_{uv} = (2 s_u / m)(2 s_v / m) * X_{uv}, s_0 = 1/2 else 1, and
	// fold in the potential and field coefficients in the same pass
	// (all planes stay in the transposed [u,v] layout; see normTask).
	parallel.For(workers, m, s.normTask)

	// Inverse y-pass, in place on the coefficient planes:
	//   Psi = IDCT_y(buv), Ex = IDCT_y(cxuv), Ey = IDST_y(cyuv).
	// Psi and Ex need the same transform kind, so each u row pairs them
	// into one FFT; the two Ey rows of the pair share another.
	parallel.For(workers, pairs, s.invYTask)

	// Back to row-major [j, u] for the x-pass.
	s.transpose(s.buv, s.ta)
	s.transpose(s.cyuv, s.tb)
	s.transpose(s.cxuv, s.tc)

	// Inverse x-pass straight into the outputs:
	//   Psi = IDCT_x, Ey = IDCT_x (paired), Ex = IDST_x (row pairs).
	// Ex = -d psi/dx = +sum b wu sin cos: psi's x-cosine differentiates
	// to -wu sin; Ey symmetric in y.
	parallel.For(workers, pairs, s.invXTask)
}

// Energy returns the total electric potential energy N = sum_b rho_b * psi_b
// for the charge plane used in the latest Solve. Callers pass the same
// rho they solved with; the (0,0) mode of psi is zero so any constant
// offset of rho does not contribute.
//
// The sum is sharded over the worker pool into energyShards fixed-width
// partials folded in shard order, so the result is bitwise-identical at
// every worker count (though it may differ in the last ulp from a
// single left-to-right fold).
func (s *Solver) Energy(rho []float64) float64 {
	if len(rho) != len(s.Psi) {
		panic("poisson: charge plane size mismatch")
	}
	s.rho = rho
	parallel.For(len(s.trs), s.eShards, s.energyTask)
	s.rho = nil
	e := 0.0
	for _, p := range s.epart[:s.eShards] {
		e += p
	}
	return e
}
