// Package poisson solves the well-defined Poisson equation of Eq. (6)
//
//	div grad psi(x, y) = -rho(x, y)
//	n . grad psi = 0 on the boundary (Neumann)
//	integral of rho = integral of psi = 0
//
// on an M x M grid by spectral methods, exactly as FFTPL/ePlace: the
// charge is expanded in the cosine basis cos(w_u x) cos(w_v y),
// w_u = pi*u/M (which satisfies the Neumann condition term by term), the
// potential coefficients are a_{uv}/(w_u^2 + w_v^2) with the (0,0) mode
// removed, and the field components come from differentiating the basis,
// turning one cosine factor into a sine. Everything runs in
// O(M^2 log M) via the transforms in internal/fft, with both the row
// and the column passes of every 2D transform fanned out over the
// shared internal/parallel worker pool (one thread-confined fft.Real
// workspace per worker). Each row/column writes a disjoint slice of the
// output plane, so results are bitwise-identical for every worker count.
//
// Grid coordinates: sample (i, j) is the bin center (i+1/2, j+1/2) in
// units of bins. Ex is minus d(psi)/dx, the electric field that pushes
// positive charge away from density peaks; Ey likewise.
package poisson

import (
	"fmt"
	"math"

	"eplace/internal/fft"
	"eplace/internal/parallel"
)

// Solver holds workspace for repeated solves on one grid size. A Solver
// is not safe for concurrent Solve calls; it parallelizes internally.
type Solver struct {
	m int
	// One transform workspace and column scratch pair per worker.
	trs        []*fft.Real
	cols, colO [][]float64
	// wu[u] = pi*u/m.
	wu []float64
	// Coefficient and scratch planes, all m*m row-major [v*m + u].
	auv  []float64 // DCT coefficients of rho
	buv  []float64 // potential coefficients auv/(wu^2+wv^2)
	cxuv []float64 // field-x coefficients buv*wu
	cyuv []float64 // field-y coefficients buv*wv
	tmp  []float64
	// Outputs, valid after Solve.
	Psi []float64 // potential at bin centers
	Ex  []float64 // -d psi / dx
	Ey  []float64 // -d psi / dy
}

// NewSolver creates a solver for an m x m grid (m a power of two)
// using all cores.
func NewSolver(m int) *Solver { return NewSolverWorkers(m, 0) }

// NewSolverWorkers is NewSolver with an explicit worker count;
// workers <= 0 selects all cores (GOMAXPROCS). Grids below 64x64 run
// serial regardless: a transform there is cheaper than a fork-join.
func NewSolverWorkers(m, workers int) *Solver {
	if m <= 0 || m&(m-1) != 0 {
		panic(fmt.Sprintf("poisson: grid size %d is not a positive power of two", m))
	}
	workers = parallel.Count(workers)
	if m < 64 {
		workers = 1
	}
	if workers > m {
		workers = m
	}
	s := &Solver{
		m:    m,
		wu:   make([]float64, m),
		auv:  make([]float64, m*m),
		buv:  make([]float64, m*m),
		cxuv: make([]float64, m*m),
		cyuv: make([]float64, m*m),
		tmp:  make([]float64, m*m),
		Psi:  make([]float64, m*m),
		Ex:   make([]float64, m*m),
		Ey:   make([]float64, m*m),
	}
	for w := 0; w < workers; w++ {
		s.trs = append(s.trs, fft.NewReal(m))
		s.cols = append(s.cols, make([]float64, m))
		s.colO = append(s.colO, make([]float64, m))
	}
	for u := 0; u < m; u++ {
		s.wu[u] = math.Pi * float64(u) / float64(m)
	}
	return s
}

// M returns the grid size.
func (s *Solver) M() int { return s.m }

// pfor runs fn(worker, i) for i in [0, n) across the worker pool. Each
// worker owns one contiguous index shard and one fft.Real workspace.
func (s *Solver) pfor(n int, fn func(worker, i int)) {
	parallel.For(len(s.trs), n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(w, i)
		}
	})
}

// Solve computes Psi, Ex and Ey from the charge plane rho (length m*m,
// row-major [j*m + i]). The zero-frequency (mean) component of rho is
// discarded, so callers need not pre-center the charge.
func (s *Solver) Solve(rho []float64) {
	m := s.m
	if len(rho) != m*m {
		panic("poisson: charge plane size mismatch")
	}

	// Forward 2D DCT-II: rows (x direction) then columns (y direction).
	s.pfor(m, func(w, j int) {
		s.trs[w].DCT2(rho[j*m:(j+1)*m], s.tmp[j*m:(j+1)*m])
	})
	s.pfor(m, func(w, u int) {
		col, colO := s.cols[w], s.colO[w]
		for j := 0; j < m; j++ {
			col[j] = s.tmp[j*m+u]
		}
		s.trs[w].DCT2(col, colO)
		for v := 0; v < m; v++ {
			s.auv[v*m+u] = colO[v]
		}
	})
	// Normalize so that rho[j][i] = sum a_{uv} cos(wu(i+1/2)) cos(wv(j+1/2)):
	// a_{uv} = (2 s_u / m)(2 s_v / m) * X_{uv}, s_0 = 1/2 else 1, and
	// fold in the potential and field coefficients in the same pass.
	norm := 4 / float64(m*m)
	s.pfor(m, func(_, v int) {
		sv := 1.0
		if v == 0 {
			sv = 0.5
		}
		wv := s.wu[v]
		for u := 0; u < m; u++ {
			su := 1.0
			if u == 0 {
				su = 0.5
			}
			a := s.auv[v*m+u] * norm * su * sv
			s.auv[v*m+u] = a
			wu := s.wu[u]
			k2 := wu*wu + wv*wv
			var b float64
			if k2 > 0 {
				b = a / k2
			}
			s.buv[v*m+u] = b
			s.cxuv[v*m+u] = b * wu
			s.cyuv[v*m+u] = b * wv
		}
	})

	// Psi = IDCT_x IDCT_y (buv).
	s.inverse2D(s.buv, s.Psi, false, false)
	// Ex = IDST_x IDCT_y (buv * wu): psi's x-cosine differentiates to
	// -wu sin; Ex = -d psi/dx = +sum b wu sin cos.
	s.inverse2D(s.cxuv, s.Ex, true, false)
	// Ey symmetric.
	s.inverse2D(s.cyuv, s.Ey, false, true)
}

// inverse2D reconstructs out[j][i] = sum_{u,v} c[v][u] * fx(u,i) * fy(v,j)
// where fx is sin when sinX else cos, and fy likewise.
func (s *Solver) inverse2D(c, out []float64, sinX, sinY bool) {
	m := s.m
	// Along u (x) for each coefficient row v.
	s.pfor(m, func(w, v int) {
		row := c[v*m : (v+1)*m]
		dst := s.tmp[v*m : (v+1)*m]
		if sinX {
			s.trs[w].IDST(row, dst)
		} else {
			s.trs[w].IDCT(row, dst)
		}
	})
	// Along v (y) for each spatial column i.
	s.pfor(m, func(w, i int) {
		col, colO := s.cols[w], s.colO[w]
		for v := 0; v < m; v++ {
			col[v] = s.tmp[v*m+i]
		}
		if sinY {
			s.trs[w].IDST(col, colO)
		} else {
			s.trs[w].IDCT(col, colO)
		}
		for j := 0; j < m; j++ {
			out[j*m+i] = colO[j]
		}
	})
}

// Energy returns the total electric potential energy N = sum_b rho_b * psi_b
// for the charge plane used in the latest Solve. Callers pass the same
// rho they solved with; the (0,0) mode of psi is zero so any constant
// offset of rho does not contribute.
func (s *Solver) Energy(rho []float64) float64 {
	if len(rho) != len(s.Psi) {
		panic("poisson: charge plane size mismatch")
	}
	e := 0.0
	for b, r := range rho {
		e += r * s.Psi[b]
	}
	return e
}
