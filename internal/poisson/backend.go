// backend.go defines the pluggable Poisson-solve contract. The density
// model (and everything above it) talks to a Backend, not to the
// spectral Solver directly, so the float32 pipeline and the
// geometric-multigrid solver slot in behind one switch
// (core.Options.Poisson / eplace -poisson).
//
// Every backend obeys the same determinism contract as the rest of the
// gradient pipeline: fixed task boundaries independent of the worker
// count and fixed-order reductions, so Solve/Energy are
// bitwise-identical at every Workers setting — within a backend.
// Across backends the fields differ (precision for spectral32,
// discretization for multigrid); the cross-backend tolerances are
// pinned by the property tests and the EXPERIMENTS precision study.
package poisson

import "fmt"

// Backend kind names, as accepted by NewBackend and the -poisson flag.
const (
	// KindSpectral is the float64 cosine-basis reference solver.
	KindSpectral = "spectral"
	// KindSpectral32 is the mixed-precision spectral pipeline: float32
	// transforms with float64 plane I/O and a runtime precision guard.
	KindSpectral32 = "spectral32"
	// KindMultigrid is the geometric multigrid solver: red-black
	// Gauss-Seidel V-cycles on the same cell-centered Neumann grid.
	KindMultigrid = "multigrid"
)

// Kinds lists the backend names in presentation order.
func Kinds() []string { return []string{KindSpectral, KindSpectral32, KindMultigrid} }

// NormalizeKind maps the empty string to the default backend
// (KindSpectral); any other value passes through for NewBackend to
// accept or reject. Checkpoints written before backends existed carry
// an empty kind, which this normalization makes equivalent to
// "spectral".
func NormalizeKind(kind string) string {
	if kind == "" {
		return KindSpectral
	}
	return kind
}

// Backend solves the Neumann Poisson problem of Eq. (6) on a fixed
// m x m grid and exposes the resulting potential and field planes.
// Implementations hold reusable workspace and are NOT safe for
// concurrent method calls; use one Backend per placement engine.
type Backend interface {
	// M returns the grid size.
	M() int
	// Name returns the backend kind (one of the constants above).
	Name() string
	// Solve computes the potential and field planes from the charge
	// plane rho (length m*m, row-major [j*m + i]). The mean of rho is
	// discarded, so callers need not pre-center the charge.
	Solve(rho []float64)
	// Energy returns sum_b rho_b * psi_b for the charge plane of the
	// latest Solve, with a fixed-order reduction.
	Energy(rho []float64) float64
	// Planes returns the potential and field planes written by the
	// latest Solve. The slices are owned by the backend and overwritten
	// by the next Solve; callers must not retain them across solves
	// (the density model reads them immediately after each Refresh).
	Planes() (psi, ex, ey []float64)
}

// NewBackend creates the named backend for an m x m grid (m a power of
// two); workers follows the core.Options convention (0 = all cores).
// An empty kind selects the default float64 spectral solver.
func NewBackend(kind string, m, workers int) (Backend, error) {
	switch NormalizeKind(kind) {
	case KindSpectral:
		return NewSolverWorkers(m, workers)
	case KindSpectral32:
		return NewSolver32Workers(m, workers)
	case KindMultigrid:
		return NewMultigridWorkers(m, workers)
	default:
		return nil, fmt.Errorf("poisson: unknown backend %q (want one of %v)", kind, Kinds())
	}
}

// MaxRelError returns max_i |got_i - want_i| / max(max_i |want_i|, eps):
// the worst absolute deviation normalized by the reference plane's
// magnitude. Plane-normalized (not pointwise) because near-zero field
// samples would otherwise dominate with meaningless huge ratios; what
// the optimizer feels is the error relative to the gradient scale.
func MaxRelError(got, want []float64) float64 {
	scale := 1e-30
	for _, w := range want {
		if w < 0 {
			w = -w
		}
		if w > scale {
			scale = w
		}
	}
	worst := 0.0
	for i := range got {
		d := got[i] - want[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst / scale
}
