package timing

import (
	"math"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/netlist"
	"eplace/internal/synth"
)

// chain builds a linear pipeline a -> b -> c with unit spacing.
func chain(xs ...float64) (*netlist.Design, []int) {
	d := netlist.New("chain", geom.Rect{Hx: 100, Hy: 10})
	var cells []int
	for _, x := range xs {
		cells = append(cells, d.AddCell(netlist.Cell{W: 1, H: 1, X: x, Y: 5}))
	}
	for i := 0; i+1 < len(cells); i++ {
		ni := d.AddNet("", 1)
		p := d.Connect(cells[i], ni, 0, 0)
		d.Pins[p].Dir = netlist.DirOut
		p = d.Connect(cells[i+1], ni, 0, 0)
		d.Pins[p].Dir = netlist.DirIn
	}
	return d, cells
}

func TestChainArrivalTimes(t *testing.T) {
	d, cells := chain(0, 10, 30)
	g := Build(d, Options{GateDelay: 1, WireDelayPerUnit: 1})
	g.Analyze()
	// arcs: 0->1 delay 1+10=11; 1->2 delay 1+20=21.
	if got := g.Arrival[cells[0]]; got != 0 {
		t.Errorf("arrival[a] = %v", got)
	}
	if got := g.Arrival[cells[1]]; math.Abs(got-11) > 1e-9 {
		t.Errorf("arrival[b] = %v, want 11", got)
	}
	if got := g.Arrival[cells[2]]; math.Abs(got-32) > 1e-9 {
		t.Errorf("arrival[c] = %v, want 32", got)
	}
	if math.Abs(g.WorstArrival-32) > 1e-9 {
		t.Errorf("worst arrival = %v", g.WorstArrival)
	}
	// Everything on the single path has zero slack.
	for _, ci := range cells {
		if s := g.Slack(ci); math.Abs(s) > 1e-9 {
			t.Errorf("slack[%d] = %v, want 0", ci, s)
		}
	}
	// Both nets fully critical.
	for ni := range d.Nets {
		if c := g.NetCriticality[ni]; math.Abs(c-1) > 1e-9 {
			t.Errorf("criticality[%d] = %v, want 1", ni, c)
		}
	}
}

func TestSidePathHasSlack(t *testing.T) {
	// Diamond: s drives a long path (via l) and a short path (via h)
	// into sink t; the short path must carry positive slack and lower
	// criticality.
	d := netlist.New("diamond", geom.Rect{Hx: 100, Hy: 100})
	s := d.AddCell(netlist.Cell{W: 1, H: 1, X: 0, Y: 50})
	l := d.AddCell(netlist.Cell{W: 1, H: 1, X: 50, Y: 90}) // far: long path
	h := d.AddCell(netlist.Cell{W: 1, H: 1, X: 10, Y: 50}) // near: short path
	sink := d.AddCell(netlist.Cell{W: 1, H: 1, X: 20, Y: 50})
	wire := func(from, to int) int {
		ni := d.AddNet("", 1)
		p := d.Connect(from, ni, 0, 0)
		d.Pins[p].Dir = netlist.DirOut
		p = d.Connect(to, ni, 0, 0)
		d.Pins[p].Dir = netlist.DirIn
		return ni
	}
	wire(s, l)
	nLong := wire(l, sink)
	wire(s, h)
	nShort := wire(h, sink)
	g := Build(d, Options{})
	g.Analyze()
	if g.Slack(h) <= 0 {
		t.Errorf("short-path slack = %v, want > 0", g.Slack(h))
	}
	if math.Abs(g.Slack(l)) > 1e-9 {
		t.Errorf("long-path slack = %v, want 0", g.Slack(l))
	}
	if g.NetCriticality[nShort] >= g.NetCriticality[nLong] {
		t.Errorf("criticality short %v not below long %v",
			g.NetCriticality[nShort], g.NetCriticality[nLong])
	}
}

func TestCycleBroken(t *testing.T) {
	// a -> b -> a: the cycle must be broken, analysis must terminate
	// with finite times.
	d := netlist.New("loop", geom.Rect{Hx: 10, Hy: 10})
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 1, Y: 5})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 9, Y: 5})
	wire := func(from, to int) {
		ni := d.AddNet("", 1)
		p := d.Connect(from, ni, 0, 0)
		d.Pins[p].Dir = netlist.DirOut
		p = d.Connect(to, ni, 0, 0)
		d.Pins[p].Dir = netlist.DirIn
	}
	wire(a, b)
	wire(b, a)
	g := Build(d, Options{})
	g.Analyze()
	if g.DroppedEdges == 0 {
		t.Error("no edges dropped for a 2-cycle")
	}
	for _, ci := range []int{a, b} {
		if math.IsInf(g.Arrival[ci], 0) || math.IsNaN(g.Arrival[ci]) {
			t.Fatalf("non-finite arrival at %d", ci)
		}
	}
}

func TestUndirectedNetsFallBack(t *testing.T) {
	// Without pin directions the first pin drives: analysis still works.
	d := netlist.New("nodir", geom.Rect{Hx: 20, Hy: 10})
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 0, Y: 5})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 10, Y: 5})
	ni := d.AddNet("", 1)
	d.Connect(a, ni, 0, 0)
	d.Connect(b, ni, 0, 0)
	g := Build(d, Options{})
	g.Analyze()
	if math.Abs(g.Arrival[b]-11) > 1e-9 {
		t.Errorf("arrival[b] = %v, want 11", g.Arrival[b])
	}
}

func TestTimingWeights(t *testing.T) {
	d, _ := chain(0, 10, 30)
	// Add an uncritical stub net far off the critical path.
	e := d.AddCell(netlist.Cell{W: 1, H: 1, X: 0, Y: 1})
	f := d.AddCell(netlist.Cell{W: 1, H: 1, X: 1, Y: 1})
	ni := d.AddNet("", 1)
	p := d.Connect(e, ni, 0, 0)
	d.Pins[p].Dir = netlist.DirOut
	p = d.Connect(f, ni, 0, 0)
	d.Pins[p].Dir = netlist.DirIn

	g := Build(d, Options{})
	g.Analyze()
	changed := g.TimingWeights(3)
	if changed == 0 {
		t.Fatal("no weights changed")
	}
	// Critical chain nets get weight 1 + 3*1 = 4; the stub stays near 1.
	if w := d.Nets[0].Weight; math.Abs(w-4) > 1e-6 {
		t.Errorf("critical net weight = %v, want 4", w)
	}
	if w := d.Nets[ni].Weight; w > 1.5 {
		t.Errorf("stub net weight = %v, want near 1", w)
	}
}

func TestWNSAgainstPeriod(t *testing.T) {
	d, _ := chain(0, 10, 30)
	g := Build(d, Options{})
	g.Analyze()
	if wns := g.WNS(40); wns != 0 {
		t.Errorf("WNS(40) = %v, want 0", wns)
	}
	if wns := g.WNS(30); math.Abs(wns-(-2)) > 1e-9 {
		t.Errorf("WNS(30) = %v, want -2", wns)
	}
}

func TestAnalyzeTracksMovement(t *testing.T) {
	d, cells := chain(0, 10, 30)
	g := Build(d, Options{})
	g.Analyze()
	before := g.WorstArrival
	// Pull the chain together: delay must drop.
	d.Cells[cells[1]].X = 2
	d.Cells[cells[2]].X = 4
	g.Analyze()
	if g.WorstArrival >= before {
		t.Errorf("worst arrival %v did not drop from %v after moving", g.WorstArrival, before)
	}
}

func TestOnSyntheticCircuit(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "timing", NumCells: 500})
	g := Build(d, Options{})
	g.Analyze()
	if g.WorstArrival <= 0 {
		t.Fatalf("worst arrival = %v", g.WorstArrival)
	}
	// Criticalities are in [0, 1] and at least one net is fully critical.
	maxC := 0.0
	for _, c := range g.NetCriticality {
		if c < 0 || c > 1 {
			t.Fatalf("criticality out of range: %v", c)
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 0.999 {
		t.Errorf("max criticality = %v, want ~1", maxC)
	}
	// All slacks non-negative against the implied period.
	for ci := range d.Cells {
		if g.Slack(ci) < -1e-6 {
			t.Fatalf("negative slack %v at cell %d", g.Slack(ci), ci)
		}
	}
}

func BenchmarkAnalyze5k(b *testing.B) {
	d := synth.Generate(synth.Spec{Name: "tb", NumCells: 5000})
	g := Build(d, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Analyze()
	}
}
