// Package timing implements the paper's "extension towards other design
// objectives like timing" (Sec. VIII): a lightweight static timing
// analyzer over the placed netlist and criticality-driven net
// reweighting for timing-driven placement.
//
// The delay model is deliberately simple and placement-driven: a net's
// delay from its driver to a sink is proportional to their Manhattan
// pin distance (a linearized Elmore model), and every cell adds a
// constant gate delay. Combinational loops are broken deterministically
// by discarding the back edge that closes each cycle. Arrival and
// required times propagate over the resulting DAG; slack and per-net
// criticality follow, and TimingWeights turns criticality into net
// weights the wirelength models consume directly.
package timing

import (
	"math"

	"eplace/internal/netlist"
)

// Options tunes the analyzer.
type Options struct {
	// GateDelay is the fixed delay added by every cell (default 1).
	GateDelay float64
	// WireDelayPerUnit converts Manhattan distance to delay (default 1).
	WireDelayPerUnit float64
}

func (o *Options) defaults() {
	if o.GateDelay <= 0 {
		o.GateDelay = 1
	}
	if o.WireDelayPerUnit <= 0 {
		o.WireDelayPerUnit = 1
	}
}

// Graph is the timing DAG extracted from a design. Endpoints are cells
// with no fanout (plus pads); startpoints are cells with no fanin (plus
// pads).
type Graph struct {
	d   *netlist.Design
	opt Options

	// edges[ci] lists fanout arcs of cell ci.
	edges [][]arc
	// fanin[ci] counts fanin arcs (for topological order).
	fanin []int
	// order is a topological order of all cells; pos is its inverse.
	// Arcs going backward in this order are the dropped cycle-breaking
	// edges and are excluded from analysis.
	order []int
	pos   []int

	// Arrival and Required times per cell; Slack[ci] = Required - Arrival.
	Arrival  []float64
	Required []float64
	// NetCriticality in [0, 1]: 1 = on the most critical path.
	NetCriticality []float64
	// WorstArrival is the critical path delay (the clock period bound).
	WorstArrival float64
	// DroppedEdges counts arcs discarded to break combinational cycles.
	DroppedEdges int
}

// arc is a driver-to-sink timing edge through net net.
type arc struct {
	to  int
	net int
}

// Build extracts the timing graph using pin directions: each net's
// DirOut pin drives its DirIn pins. Nets without direction information
// use their first pin as the driver.
func Build(d *netlist.Design, opt Options) *Graph {
	opt.defaults()
	g := &Graph{
		d:              d,
		opt:            opt,
		edges:          make([][]arc, len(d.Cells)),
		fanin:          make([]int, len(d.Cells)),
		Arrival:        make([]float64, len(d.Cells)),
		Required:       make([]float64, len(d.Cells)),
		NetCriticality: make([]float64, len(d.Nets)),
	}
	for ni := range d.Nets {
		driver, sinks := netPins(d, ni)
		if driver < 0 || len(sinks) == 0 {
			continue
		}
		dc := d.Pins[driver].Cell
		if dc < 0 {
			continue
		}
		for _, si := range sinks {
			sc := d.Pins[si].Cell
			if sc < 0 || sc == dc {
				continue
			}
			g.edges[dc] = append(g.edges[dc], arc{to: sc, net: ni})
			g.fanin[sc]++
		}
	}
	g.topoSort()
	g.pos = make([]int, len(d.Cells))
	for k, ci := range g.order {
		g.pos[ci] = k
	}
	return g
}

// netPins classifies a net's pins into one driver and its sinks.
func netPins(d *netlist.Design, ni int) (driver int, sinks []int) {
	driver = -1
	net := &d.Nets[ni]
	for _, pi := range net.Pins {
		switch d.Pins[pi].Dir {
		case netlist.DirOut:
			if driver < 0 {
				driver = pi
			}
		case netlist.DirIn:
			sinks = append(sinks, pi)
		}
	}
	if driver >= 0 && len(sinks) > 0 {
		return driver, sinks
	}
	// No direction info: first pin drives the rest.
	if len(net.Pins) < 2 {
		return -1, nil
	}
	driver = net.Pins[0]
	sinks = append([]int(nil), net.Pins[1:]...)
	return driver, sinks
}

// topoSort orders the cells, dropping one back arc per cycle found.
func (g *Graph) topoSort() {
	n := len(g.d.Cells)
	fanin := append([]int(nil), g.fanin...)
	queue := make([]int, 0, n)
	for ci := 0; ci < n; ci++ {
		if fanin[ci] == 0 {
			queue = append(queue, ci)
		}
	}
	g.order = g.order[:0]
	seen := make([]bool, n)
	for len(queue) > 0 {
		ci := queue[0]
		queue = queue[1:]
		seen[ci] = true
		g.order = append(g.order, ci)
		for _, a := range g.edges[ci] {
			fanin[a.to]--
			if fanin[a.to] == 0 {
				queue = append(queue, a.to)
			}
		}
	}
	if len(g.order) < n {
		// Cycles remain: break them by dropping the arc with the lowest
		// (from, to) among unprocessed cells, repeatedly.
		for len(g.order) < n {
			// Find an unseen cell with minimal remaining fanin and force it.
			best := -1
			for ci := 0; ci < n; ci++ {
				if !seen[ci] && (best < 0 || fanin[ci] < fanin[best]) {
					best = ci
				}
			}
			g.DroppedEdges += fanin[best]
			fanin[best] = 0
			seen[best] = true
			g.order = append(g.order, best)
			for _, a := range g.edges[best] {
				if !seen[a.to] {
					fanin[a.to]--
					if fanin[a.to] == 0 {
						// Will be picked up in a later sweep iteration.
						queue = append(queue, a.to)
					}
				}
			}
			for len(queue) > 0 {
				ci := queue[0]
				queue = queue[1:]
				if seen[ci] {
					continue
				}
				seen[ci] = true
				g.order = append(g.order, ci)
				for _, a := range g.edges[ci] {
					if !seen[a.to] {
						fanin[a.to]--
						if fanin[a.to] == 0 {
							queue = append(queue, a.to)
						}
					}
				}
			}
		}
	}
}

// arcDelay returns the delay of one driver->sink arc at current
// positions: gate delay plus distance-proportional wire delay.
func (g *Graph) arcDelay(from, to int) float64 {
	d := g.d
	cf, ct := &d.Cells[from], &d.Cells[to]
	dist := math.Abs(cf.X-ct.X) + math.Abs(cf.Y-ct.Y)
	return g.opt.GateDelay + g.opt.WireDelayPerUnit*dist
}

// Analyze propagates arrival and required times at the current cell
// positions and fills Slack and NetCriticality. Call again after any
// movement.
func (g *Graph) Analyze() {
	n := len(g.d.Cells)
	for i := 0; i < n; i++ {
		g.Arrival[i] = 0
	}
	// Forward: arrival times in topological order. Arcs that point
	// backward in the order are the edges dropped to break cycles and
	// are skipped so arrival/required stay consistent.
	for _, ci := range g.order {
		for _, a := range g.edges[ci] {
			if g.pos[a.to] <= g.pos[ci] {
				continue
			}
			if t := g.Arrival[ci] + g.arcDelay(ci, a.to); t > g.Arrival[a.to] {
				g.Arrival[a.to] = t
			}
		}
	}
	g.WorstArrival = 0
	for i := 0; i < n; i++ {
		if g.Arrival[i] > g.WorstArrival {
			g.WorstArrival = g.Arrival[i]
		}
	}
	// Backward: required times from the worst arrival.
	for i := 0; i < n; i++ {
		g.Required[i] = g.WorstArrival
	}
	for k := len(g.order) - 1; k >= 0; k-- {
		ci := g.order[k]
		for _, a := range g.edges[ci] {
			if g.pos[a.to] <= g.pos[ci] {
				continue
			}
			if t := g.Required[a.to] - g.arcDelay(ci, a.to); t < g.Required[ci] {
				g.Required[ci] = t
			}
		}
	}
	// Net criticality: max over the net's arcs of 1 - slack/worst.
	for ni := range g.NetCriticality {
		g.NetCriticality[ni] = 0
	}
	if g.WorstArrival <= 0 {
		return
	}
	for ci := 0; ci < n; ci++ {
		for _, a := range g.edges[ci] {
			if g.pos[a.to] <= g.pos[ci] {
				continue
			}
			slack := g.Required[a.to] - (g.Arrival[ci] + g.arcDelay(ci, a.to))
			crit := 1 - slack/g.WorstArrival
			if crit < 0 {
				crit = 0
			}
			if crit > 1 {
				crit = 1
			}
			if crit > g.NetCriticality[a.net] {
				g.NetCriticality[a.net] = crit
			}
		}
	}
}

// Slack returns the slack of cell ci from the latest Analyze.
func (g *Graph) Slack(ci int) float64 { return g.Required[ci] - g.Arrival[ci] }

// WNS returns the worst negative slack (0 when every path meets the
// implied period, which by construction of Required is always >= 0;
// WNS is meaningful against an explicit target period).
func (g *Graph) WNS(period float64) float64 {
	w := 0.0
	for i := range g.Arrival {
		if s := period - g.Arrival[i]; s < w {
			w = s
		}
	}
	return w
}

// CriticalityThreshold is the criticality below which TimingWeights
// leaves a net alone: in a typical netlist most nets sit at moderate
// criticality, and reweighting them all just trades wirelength for
// nothing. Only the genuinely critical tail gets pulled.
const CriticalityThreshold = 0.8

// TimingWeights maps net criticality to net weights
//
//	excess = max(0, (crit - threshold) / (1 - threshold))
//	w = 1 + strength * excess^2
//
// and writes them into the design, returning how many nets changed.
// The thresholded quadratic concentrates weight on the critical tail,
// the standard timing-driven placement recipe.
// Weights accumulate across passes (the new weight never drops below
// the old one) so consecutive reweighting rounds do not oscillate
// between alternating critical paths.
func (g *Graph) TimingWeights(strength float64) int {
	changed := 0
	for ni := range g.d.Nets {
		excess := (g.NetCriticality[ni] - CriticalityThreshold) / (1 - CriticalityThreshold)
		if excess < 0 {
			excess = 0
		}
		w := 1 + strength*excess*excess
		if old := g.d.Nets[ni].Weight; w < old {
			w = old
		}
		if g.d.Nets[ni].Weight != w {
			g.d.Nets[ni].Weight = w
			changed++
		}
	}
	return changed
}
