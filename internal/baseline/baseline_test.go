// Package baseline_test exercises the three comparison placers on the
// same synthetic circuits and checks the quality ordering the paper's
// tables report: analytic placers close together, min-cut far behind.
package baseline_test

import (
	"testing"

	"eplace/internal/baseline/bellshape"
	"eplace/internal/baseline/mincut"
	"eplace/internal/baseline/quadratic"
	"eplace/internal/metrics"
	"eplace/internal/netlist"
	"eplace/internal/synth"
)

func circuit(name string, n int) *netlist.Design {
	return synth.Generate(synth.Spec{Name: name, NumCells: n, NumFixedMacros: 3})
}

func TestQuadraticSpreads(t *testing.T) {
	d := circuit("q", 600)
	res := quadratic.Place(d, d.Movable(), quadratic.Options{GridM: 32})
	if res.Overflow > 0.2 {
		t.Errorf("quadratic overflow = %v", res.Overflow)
	}
	if res.HPWL <= 0 {
		t.Error("no HPWL")
	}
	for _, ci := range d.Movable() {
		if !d.Region.ContainsRect(d.Cells[ci].Rect()) {
			t.Fatalf("cell %d escaped region", ci)
		}
	}
}

func TestQuadraticBeatsRandom(t *testing.T) {
	d := circuit("qr", 600)
	randomHPWL := d.HPWL()
	res := quadratic.Place(d, d.Movable(), quadratic.Options{GridM: 32})
	if res.HPWL >= randomHPWL {
		t.Errorf("quadratic HPWL %v not below random %v", res.HPWL, randomHPWL)
	}
}

func TestBellshapeSpreads(t *testing.T) {
	d := circuit("b", 400)
	res := bellshape.Place(d, d.Movable(), bellshape.Options{GridM: 32})
	if res.Overflow > 0.25 {
		t.Errorf("bellshape overflow = %v", res.Overflow)
	}
	if res.CostEvals == 0 || res.GradEvals == 0 {
		t.Error("no line-search accounting")
	}
	for _, ci := range d.Movable() {
		if !d.Region.ContainsRect(d.Cells[ci].Rect()) {
			t.Fatalf("cell %d escaped region", ci)
		}
	}
}

func TestBellshapeLineSearchDominatesEvals(t *testing.T) {
	// Footnote 2: the line search burns most of the objective
	// evaluations (>60% of FFTPL's runtime there).
	d := circuit("bl", 300)
	res := bellshape.Place(d, d.Movable(), bellshape.Options{GridM: 32, MaxOuter: 10})
	if res.CostEvals < res.GradEvals {
		t.Errorf("cost evals %d below grad evals %d: line search suspiciously cheap",
			res.CostEvals, res.GradEvals)
	}
}

func TestMincutPlaces(t *testing.T) {
	d := circuit("m", 600)
	randomHPWL := d.HPWL()
	res := mincut.Place(d, d.Movable(), mincut.Options{})
	if res.Bisections == 0 {
		t.Error("no bisections")
	}
	if res.HPWL >= randomHPWL {
		t.Errorf("min-cut HPWL %v not below random start %v", res.HPWL, randomHPWL)
	}
	for _, ci := range d.Movable() {
		if !d.Region.ContainsRect(d.Cells[ci].Rect()) {
			t.Fatalf("cell %d escaped region", ci)
		}
	}
	// Min-cut leaves moderate overlap but spreads cells broadly.
	if tau := metrics.Overflow(d, 32); tau > 0.5 {
		t.Errorf("min-cut overflow = %v, expected rough spreading", tau)
	}
}

func TestMincutDeterministic(t *testing.T) {
	d1 := circuit("det", 300)
	mincut.Place(d1, d1.Movable(), mincut.Options{Seed: 5})
	d2 := circuit("det", 300)
	mincut.Place(d2, d2.Movable(), mincut.Options{Seed: 5})
	for i := range d1.Cells {
		if d1.Cells[i].X != d2.Cells[i].X || d1.Cells[i].Y != d2.Cells[i].Y {
			t.Fatalf("cell %d differs between identical runs", i)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	d := circuit("e", 50)
	if r := quadratic.Place(d, nil, quadratic.Options{}); r.Iterations != 0 {
		t.Error("quadratic on empty input")
	}
	if r := bellshape.Place(d, nil, bellshape.Options{}); r.OuterIterations != 0 {
		t.Error("bellshape on empty input")
	}
	if r := mincut.Place(d, nil, mincut.Options{}); r.Bisections != 0 {
		t.Error("mincut on empty input")
	}
}
