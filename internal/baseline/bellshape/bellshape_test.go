package bellshape

import (
	"math"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/netlist"
)

func TestBellShapeAndSupport(t *testing.T) {
	const r = 4.0
	// Peak at zero, zero outside the radius, continuous at the knee.
	if p, _ := bell(0, r); p != 1 {
		t.Errorf("bell(0) = %v, want 1", p)
	}
	if p, _ := bell(r, r); p != 0 {
		t.Errorf("bell(r) = %v, want 0", p)
	}
	if p, _ := bell(r+1, r); p != 0 {
		t.Errorf("bell(r+1) = %v, want 0", p)
	}
	// Continuity at d = r/2 (the piece boundary).
	pl, _ := bell(r/2-1e-9, r)
	pr, _ := bell(r/2+1e-9, r)
	if math.Abs(pl-pr) > 1e-6 {
		t.Errorf("bell discontinuous at knee: %v vs %v", pl, pr)
	}
	// Symmetry.
	p1, d1 := bell(1.3, r)
	p2, d2 := bell(-1.3, r)
	if math.Abs(p1-p2) > 1e-12 || math.Abs(d1+d2) > 1e-12 {
		t.Errorf("bell not even: p %v/%v, dp %v/%v", p1, p2, d1, d2)
	}
}

func TestBellDerivativeNumeric(t *testing.T) {
	const r = 3.0
	h := 1e-6
	for _, d := range []float64{-2.5, -1.6, -0.4, 0.7, 1.4, 2.9} {
		_, dp := bell(d, r)
		pp, _ := bell(d+h, r)
		pm, _ := bell(d-h, r)
		num := (pp - pm) / (2 * h)
		if math.Abs(num-dp) > 1e-4 {
			t.Errorf("d=%v: numeric %v analytic %v", d, num, dp)
		}
	}
}

func TestModelChargeConservation(t *testing.T) {
	d := netlist.New("b", geom.Rect{Hx: 64, Hy: 64})
	var idx []int
	idx = append(idx, d.AddCell(netlist.Cell{W: 6, H: 4, X: 20, Y: 30}))
	idx = append(idx, d.AddCell(netlist.Cell{W: 2, H: 2, X: 45, Y: 10}))
	md := newModel(d, idx, 32, 1.0)
	md.lam = 1
	md.accumulate(nil)
	total := 0.0
	for _, v := range md.rho {
		total += v
	}
	want := 6*4 + 2*2.0
	if math.Abs(total-want) > 1e-6*want {
		t.Errorf("total bell charge = %v, want %v", total, want)
	}
}

func TestModelDensityGradientNumeric(t *testing.T) {
	d := netlist.New("bg", geom.Rect{Hx: 64, Hy: 64})
	var idx []int
	// Two overlapping cells create a density error gradient.
	idx = append(idx, d.AddCell(netlist.Cell{W: 8, H: 8, X: 30, Y: 32}))
	idx = append(idx, d.AddCell(netlist.Cell{W: 8, H: 8, X: 34, Y: 32}))
	md := newModel(d, idx, 32, 1.0)
	md.lam = 1
	grad := make([]float64, 4)
	md.accumulate(grad)

	h := 0.02
	x0 := d.Cells[idx[0]].X
	d.Cells[idx[0]].X = x0 + h
	cp := md.accumulate(nil)
	d.Cells[idx[0]].X = x0 - h
	cm := md.accumulate(nil)
	d.Cells[idx[0]].X = x0
	num := (cp - cm) / (2 * h)
	if math.Abs(num-grad[0]) > 0.15*(math.Abs(num)+math.Abs(grad[0])+1e-12) {
		t.Errorf("numeric dD/dx = %v, analytic = %v", num, grad[0])
	}
	// Overlapping pair: descent separates them (left cell pushed left).
	if grad[0] <= 0 {
		t.Errorf("dD/dx_left = %v, want > 0", grad[0])
	}
}
