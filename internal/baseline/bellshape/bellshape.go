// Package bellshape implements an APlace/NTUplace3-style nonlinear
// placer, the "Nonlinear" comparison category of Tables I-III: LSE
// wirelength smoothing plus the bell-shaped density potential of Naylor
// [14], optimized flat (no clustering) by conjugate gradient with
// Armijo line search — the configuration whose line-search cost
// motivates ePlace's Nesterov solver (Sec. V-A).
package bellshape

import (
	"math"

	"eplace/internal/geom"
	"eplace/internal/grid"
	"eplace/internal/nesterov"
	"eplace/internal/netlist"
	"eplace/internal/qp"
	"eplace/internal/telemetry"
	"eplace/internal/wirelength"
)

// Options tunes the bell-shape placer.
type Options struct {
	// MaxOuter bounds penalty-growing outer iterations (default 30).
	MaxOuter int
	// InnerIters is the CG iteration count per outer round (default 30).
	InnerIters int
	// TargetOverflow stops the outer loop (default 0.10).
	TargetOverflow float64
	// GridM is the density grid size (0 = auto).
	GridM int
	// Workers is the worker count for the shared LSE wirelength model
	// (0 = all cores, 1 = serial); the bell-shape density stays serial.
	Workers int
	// Telemetry, when non-nil, receives one Sample per outer iteration
	// (stage "BellPL").
	Telemetry *telemetry.Recorder
}

func (o *Options) defaults() {
	if o.MaxOuter <= 0 {
		o.MaxOuter = 30
	}
	if o.InnerIters <= 0 {
		o.InnerIters = 30
	}
	if o.TargetOverflow <= 0 {
		o.TargetOverflow = 0.10
	}
}

// Result reports a run.
type Result struct {
	OuterIterations int
	CostEvals       int
	GradEvals       int
	HPWL            float64
	Overflow        float64
}

// model evaluates the bell-shape density cost
//
//	D(v) = sum_b (rho_b(v) - target_b)^2
//
// where rho_b accumulates each cell's separable bell potential.
type model struct {
	d    *netlist.Design
	idx  []int
	g    *grid.Grid
	m    int
	tgt  []float64 // per-bin target occupancy (capacity * rhoT)
	rho  []float64
	wl   *wirelength.Model
	lam  float64
	grad []float64 // wl gradient scratch
}

func newModel(d *netlist.Design, idx []int, m int, gamma float64) *model {
	g := grid.New(d.Region, m)
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			g.AddFixed(d.Cells[i].Rect())
		}
	}
	md := &model{
		d: d, idx: idx, g: g, m: m,
		tgt:  make([]float64, m*m),
		rho:  make([]float64, m*m),
		grad: make([]float64, 2*len(idx)),
		wl:   wirelength.New(d, idx, gamma),
	}
	md.wl.Kind = wirelength.LSE
	// Per-bin target: remaining capacity scaled to hold exactly the
	// movable area (uniform spreading objective).
	totalCap := 0.0
	binArea := g.BinArea()
	for b := range md.tgt {
		md.tgt[b] = math.Max(0, binArea-g.Fixed[b])
		totalCap += md.tgt[b]
	}
	movable := 0.0
	for _, ci := range idx {
		movable += d.Cells[ci].Area()
	}
	scale := movable / math.Max(totalCap, 1e-12)
	for b := range md.tgt {
		md.tgt[b] *= scale
	}
	return md
}

// bell evaluates the two-piece bell potential and derivative at
// distance dx from the cell center, with radius r.
func bell(dx, r float64) (p, dp float64) {
	a := math.Abs(dx)
	if a >= r {
		return 0, 0
	}
	if a <= r/2 {
		p = 1 - 2*a*a/(r*r)
		dp = -4 * dx / (r * r)
		return p, dp
	}
	t := a - r
	p = 2 * t * t / (r * r)
	dp = 4 * t / (r * r)
	if dx < 0 {
		dp = -dp
	}
	return p, dp
}

// accumulate builds rho from current positions; when g is non-nil it
// also adds the density gradient (scaled by lam) into g.
func (md *model) accumulate(addGrad []float64) float64 {
	for b := range md.rho {
		md.rho[b] = 0
	}
	m := md.m
	reg := md.g.Region
	bw, bh := md.g.BinW, md.g.BinH
	// First pass: build rho.
	type span struct {
		i0, i1, j0, j1 int
		rx, ry, norm   float64
	}
	spans := make([]span, len(md.idx))
	for k, ci := range md.idx {
		c := &md.d.Cells[ci]
		rx := c.W/2 + 2*bw
		ry := c.H/2 + 2*bh
		i0 := int((c.X - rx - reg.Lx) / bw)
		i1 := int(math.Ceil((c.X + rx - reg.Lx) / bw))
		j0 := int((c.Y - ry - reg.Ly) / bh)
		j1 := int(math.Ceil((c.Y + ry - reg.Ly) / bh))
		i0, j0 = clampI(i0, m), clampI(j0, m)
		i1, j1 = clampH(i1, m), clampH(j1, m)
		// Normalization so the cell contributes exactly its area.
		sum := 0.0
		for j := j0; j < j1; j++ {
			cy := reg.Ly + (float64(j)+0.5)*bh
			py, _ := bell(cy-c.Y, ry)
			for i := i0; i < i1; i++ {
				cx := reg.Lx + (float64(i)+0.5)*bw
				px, _ := bell(cx-c.X, rx)
				sum += px * py
			}
		}
		norm := 0.0
		if sum > 0 {
			norm = c.Area() / sum
		}
		spans[k] = span{i0, i1, j0, j1, rx, ry, norm}
		for j := j0; j < j1; j++ {
			cy := reg.Ly + (float64(j)+0.5)*bh
			py, _ := bell(cy-c.Y, ry)
			for i := i0; i < i1; i++ {
				cx := reg.Lx + (float64(i)+0.5)*bw
				px, _ := bell(cx-c.X, rx)
				md.rho[j*m+i] += norm * px * py
			}
		}
	}
	// Cost and optional gradient.
	cost := 0.0
	for b := range md.rho {
		e := md.rho[b] - md.tgt[b]
		cost += e * e
	}
	if addGrad != nil {
		n := len(md.idx)
		for k, ci := range md.idx {
			c := &md.d.Cells[ci]
			sp := spans[k]
			var gx, gy float64
			for j := sp.j0; j < sp.j1; j++ {
				cy := reg.Ly + (float64(j)+0.5)*bh
				py, dpy := bell(cy-c.Y, sp.ry)
				for i := sp.i0; i < sp.i1; i++ {
					cx := reg.Lx + (float64(i)+0.5)*bw
					px, dpx := bell(cx-c.X, sp.rx)
					e := md.rho[j*m+i] - md.tgt[j*m+i]
					// d rho_b / d cX = -norm * dpx * py (bell measured
					// from cell center).
					gx += 2 * e * sp.norm * (-dpx) * py
					gy += 2 * e * sp.norm * px * (-dpy)
				}
			}
			addGrad[k] += md.lam * gx
			addGrad[k+n] += md.lam * gy
		}
	}
	return cost
}

func (md *model) cost(v []float64) float64 {
	md.d.SetPositions(md.idx, v)
	return md.wl.Cost() + md.lam*md.accumulate(nil)
}

func (md *model) gradient(v, g []float64) {
	md.d.SetPositions(md.idx, v)
	md.wl.CostAndGradient(g)
	md.accumulate(g)
}

// Place runs bell-shape global placement over the movable cells idx.
func Place(d *netlist.Design, idx []int, opt Options) Result {
	opt.defaults()
	var res Result
	if len(idx) == 0 {
		res.HPWL = d.HPWL()
		return res
	}
	m := opt.GridM
	if m == 0 {
		m = grid.ChooseM(len(d.Cells))
	}
	qp.Place(d, idx, qp.Options{})

	gamma := 0.05 * math.Max(d.Region.W(), d.Region.H()) / float64(m) * 8
	md := newModel(d, idx, m, gamma)
	md.wl.Workers = opt.Workers

	// Balance initial gradient norms for lambda, as ePlace does.
	v := d.Positions(idx)
	clamp := func(vv []float64) {
		n := len(idx)
		for k, ci := range idx {
			c := &d.Cells[ci]
			vv[k] = geom.Clamp(vv[k], d.Region.Lx+c.W/2, d.Region.Hx-c.W/2)
			vv[k+n] = geom.Clamp(vv[k+n], d.Region.Ly+c.H/2, d.Region.Hy-c.H/2)
		}
	}
	wg := make([]float64, 2*len(idx))
	md.wl.CostAndGradient(wg)
	dg := make([]float64, 2*len(idx))
	md.lam = 1
	md.accumulate(dg)
	var sw, sd float64
	for i := range wg {
		sw += math.Abs(wg[i])
		sd += math.Abs(dg[i])
	}
	if sd > 0 {
		md.lam = sw / sd
	}

	seed := 0.1 * md.g.BinW
	solver := nesterov.NewCG(v, md.cost, md.gradient, clamp, seed*10)
	for outer := 0; outer < opt.MaxOuter; outer++ {
		res.OuterIterations = outer + 1
		for k := 0; k < opt.InnerIters; k++ {
			solver.Step()
		}
		d.SetPositions(idx, solver.V)
		tau := overflowOf(d, idx, m)
		res.Overflow = tau
		if opt.Telemetry.Active() {
			opt.Telemetry.Sample(telemetry.Sample{
				Stage: "BellPL", Iteration: outer, HPWL: d.HPWL(),
				Overflow: tau, Lambda: md.lam, Steps: solver.Steps(),
			})
		}
		if tau <= opt.TargetOverflow {
			break
		}
		md.lam *= 2
	}
	d.SetPositions(idx, solver.V)
	clampCells(d, idx)
	res.CostEvals = solver.CostEvals()
	res.GradEvals = solver.GradEvals()
	res.Overflow = overflowOf(d, idx, m)
	res.HPWL = d.HPWL()
	return res
}

func overflowOf(d *netlist.Design, idx []int, m int) float64 {
	g := grid.New(d.Region, m)
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			g.AddFixed(d.Cells[i].Rect())
		}
	}
	for _, ci := range idx {
		c := &d.Cells[ci]
		g.AddMovable(c.X, c.Y, c.W, c.H)
	}
	return g.Overflow(d.TargetDensity)
}

func clampCells(d *netlist.Design, idx []int) {
	for _, ci := range idx {
		c := &d.Cells[ci]
		p := geom.ClampPoint(geom.Point{X: c.X, Y: c.Y}, c.W, c.H, d.Region)
		c.X, c.Y = p.X, p.Y
	}
}

func clampI(i, m int) int {
	if i < 0 {
		return 0
	}
	if i >= m {
		return m - 1
	}
	return i
}

func clampH(i, m int) int {
	if i < 0 {
		return 0
	}
	if i > m {
		return m
	}
	return i
}
