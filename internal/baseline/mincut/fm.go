// Package mincut implements a Capo-style min-cut placer, the "Min-Cut"
// comparison category of Tables I-III: recursive bisection driven by
// Fiduccia-Mattheyses hypergraph partitioning with terminal propagation,
// packing leaf regions directly. Quality is expected to trail the
// analytic placers by a wide margin (the paper reports ~21-64% longer
// wirelength), which this reproduction preserves.
package mincut

import (
	"math/rand"
)

// hypergraph is the local partitioning instance of one bisection.
type hypergraph struct {
	area     []float64
	nets     [][]int // net -> member cell ids (local)
	cellNets [][]int // cell -> incident net ids (local)
	// terminal[n][side] counts immovable pins of net n locked to a side
	// (terminal propagation).
	terminal [][2]int
}

// fmPartition splits the cells into two sides with side-0 area close to
// targetFrac of the total, minimizing net cut. Runs a few restarts with
// BFS-grown initial partitions and keeps the best. Deterministic given
// seed.
func fmPartition(h *hypergraph, targetFrac, tol float64, seed int64, maxPasses int) []bool {
	const restarts = 3
	var best []bool
	bestCut := -1
	for r := 0; r < restarts; r++ {
		side := fmRun(h, targetFrac, tol, seed+int64(r)*7919, maxPasses)
		if cut := cutSize(h, side); bestCut < 0 || cut < bestCut {
			bestCut = cut
			best = side
		}
		if bestCut == 0 {
			break
		}
	}
	return best
}

func fmRun(h *hypergraph, targetFrac, tol float64, seed int64, maxPasses int) []bool {
	n := len(h.area)
	side := make([]bool, n) // false = side 0, true = side 1
	total := 0.0
	for _, a := range h.area {
		total += a
	}
	target0 := targetFrac * total
	lo := target0 - tol*total
	hi := target0 + tol*total

	// Initial partition: grow a connected cluster (BFS over shared
	// nets) from a random start until side 0 reaches its target area;
	// contiguous seeds give FM a far better basin than random fills.
	rng := rand.New(rand.NewSource(seed))
	for i := range side {
		side[i] = true
	}
	visited := make([]bool, n)
	queue := []int{rng.Intn(n)}
	visited[queue[0]] = true
	a0 := 0.0
	for len(queue) > 0 && a0 < target0 {
		c := queue[0]
		queue = queue[1:]
		side[c] = false
		a0 += h.area[c]
		for _, ni := range h.cellNets[c] {
			for _, nb := range h.nets[ni] {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		if len(queue) == 0 && a0 < target0 {
			// Disconnected: jump to an unvisited cell.
			for c2 := 0; c2 < n; c2++ {
				if !visited[c2] {
					visited[c2] = true
					queue = append(queue, c2)
					break
				}
			}
		}
	}

	// Per-net side counts.
	cnt := make([][2]int, len(h.nets))
	recount := func() {
		for ni := range h.nets {
			cnt[ni] = h.terminal[ni]
			for _, c := range h.nets[ni] {
				if side[c] {
					cnt[ni][1]++
				} else {
					cnt[ni][0]++
				}
			}
		}
	}
	recount()

	gainOf := func(c int) int {
		g := 0
		from, to := 0, 1
		if !side[c] {
			from, to = 0, 1
		} else {
			from, to = 1, 0
		}
		for _, ni := range h.cellNets[c] {
			if cnt[ni][from] == 1 {
				g++
			}
			if cnt[ni][to] == 0 {
				g--
			}
		}
		return g
	}

	maxDeg := 1
	for _, ns := range h.cellNets {
		if len(ns) > maxDeg {
			maxDeg = len(ns)
		}
	}

	for pass := 0; pass < maxPasses; pass++ {
		locked := make([]bool, n)
		// Gain buckets.
		buckets := make([][]int, 2*maxDeg+1)
		where := make([]int, n) // gain+maxDeg of each cell
		for c := 0; c < n; c++ {
			g := gainOf(c) + maxDeg
			where[c] = g
			buckets[g] = append(buckets[g], c)
		}
		type mv struct {
			cell int
			gain int
		}
		var seq []mv
		cum, best, bestAt := 0, 0, -1
		a0cur := 0.0
		for c := 0; c < n; c++ {
			if !side[c] {
				a0cur += h.area[c]
			}
		}
		for moves := 0; moves < n; moves++ {
			// Pick the highest-gain unlocked balance-legal cell.
			found := -1
			for g := len(buckets) - 1; g >= 0 && found < 0; g-- {
				for len(buckets[g]) > 0 {
					c := buckets[g][len(buckets[g])-1]
					buckets[g] = buckets[g][:len(buckets[g])-1]
					if locked[c] || where[c] != g {
						continue
					}
					// Balance check for the prospective move.
					na0 := a0cur
					if side[c] {
						na0 += h.area[c]
					} else {
						na0 -= h.area[c]
					}
					if na0 < lo || na0 > hi {
						// Re-queue for possible later legality.
						buckets[g] = append(buckets[g], c)
						break
					}
					found = c
					break
				}
			}
			if found < 0 {
				break
			}
			c := found
			g := where[c] - maxDeg
			locked[c] = true
			// Apply the move and update net counts + neighbor gains.
			from, to := 0, 1
			if side[c] {
				from, to = 1, 0
			}
			if side[c] {
				a0cur += h.area[c]
			} else {
				a0cur -= h.area[c]
			}
			side[c] = !side[c]
			for _, ni := range h.cellNets[c] {
				cnt[ni][from]--
				cnt[ni][to]++
			}
			// Lazy gain refresh: recompute gains of unlocked neighbors.
			for _, ni := range h.cellNets[c] {
				for _, nb := range h.nets[ni] {
					if locked[nb] {
						continue
					}
					ng := gainOf(nb) + maxDeg
					if ng != where[nb] {
						where[nb] = ng
						buckets[ng] = append(buckets[ng], nb)
					}
				}
			}
			cum += g
			seq = append(seq, mv{c, g})
			if cum > best {
				best = cum
				bestAt = len(seq) - 1
			}
		}
		// Revert moves past the best prefix.
		for i := len(seq) - 1; i > bestAt; i-- {
			c := seq[i].cell
			from, to := 0, 1
			if side[c] {
				from, to = 1, 0
			}
			side[c] = !side[c]
			for _, ni := range h.cellNets[c] {
				cnt[ni][from]--
				cnt[ni][to]++
			}
		}
		if best <= 0 {
			break
		}
	}
	return side
}

// cutSize returns the number of cut nets for a side assignment.
func cutSize(h *hypergraph, side []bool) int {
	cut := 0
	for ni, members := range h.nets {
		c0, c1 := h.terminal[ni][0], h.terminal[ni][1]
		for _, c := range members {
			if side[c] {
				c1++
			} else {
				c0++
			}
		}
		if c0 > 0 && c1 > 0 {
			cut++
		}
	}
	return cut
}
