package mincut

import (
	"math"
	"sort"

	"eplace/internal/geom"
	"eplace/internal/netlist"
	"eplace/internal/telemetry"
)

// Options tunes the min-cut placer.
type Options struct {
	// LeafCells stops recursion (default 8).
	LeafCells int
	// BalanceTol is the FM area balance tolerance (default 0.1).
	BalanceTol float64
	// FMPasses bounds FM improvement passes per bisection (default 8).
	FMPasses int
	// Seed drives initial partitions (default 1).
	Seed int64
	// Telemetry, when non-nil, receives a bisection counter and a final
	// Sample (stage "MinCutPL").
	Telemetry *telemetry.Recorder
}

func (o *Options) defaults() {
	if o.LeafCells <= 0 {
		o.LeafCells = 8
	}
	if o.BalanceTol <= 0 {
		o.BalanceTol = 0.1
	}
	if o.FMPasses <= 0 {
		o.FMPasses = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Result reports a run.
type Result struct {
	Bisections int
	HPWL       float64
}

// Place runs recursive min-cut placement over the movable cells idx.
func Place(d *netlist.Design, idx []int, opt Options) Result {
	opt.defaults()
	var res Result
	if len(idx) == 0 {
		res.HPWL = d.HPWL()
		return res
	}
	p := &placer{d: d, opt: opt}
	p.recurse(append([]int(nil), idx...), shrinkForFixed(d, d.Region), opt.Seed)
	res.Bisections = p.bisections
	res.HPWL = d.HPWL()
	if opt.Telemetry.Active() {
		opt.Telemetry.Count("mincut/bisections", int64(res.Bisections))
		opt.Telemetry.Sample(telemetry.Sample{Stage: "MinCutPL", HPWL: res.HPWL})
	}
	return res
}

// shrinkForFixed is a no-op placeholder kept for clarity: fixed blocks
// are handled through capacity weighting at each bisection.
func shrinkForFixed(d *netlist.Design, r geom.Rect) geom.Rect { return r }

type placer struct {
	d          *netlist.Design
	opt        Options
	bisections int
}

// capacity returns region area minus fixed overlap.
func (p *placer) capacity(r geom.Rect) float64 {
	cap := r.Area()
	for i := range p.d.Cells {
		c := &p.d.Cells[i]
		if c.Fixed {
			cap -= c.Rect().Overlap(r)
		}
	}
	return math.Max(cap, 1e-9)
}

func (p *placer) recurse(cells []int, region geom.Rect, seed int64) {
	if len(cells) == 0 || region.Empty() {
		return
	}
	if len(cells) <= p.opt.LeafCells {
		p.packLeaf(cells, region)
		return
	}
	p.bisections++
	d := p.d
	// Split along the longer axis.
	vertCut := region.W() >= region.H()
	var rA, rB geom.Rect
	var cut float64
	if vertCut {
		cut = (region.Lx + region.Hx) / 2
		rA = geom.Rect{Lx: region.Lx, Ly: region.Ly, Hx: cut, Hy: region.Hy}
		rB = geom.Rect{Lx: cut, Ly: region.Ly, Hx: region.Hx, Hy: region.Hy}
	} else {
		cut = (region.Ly + region.Hy) / 2
		rA = geom.Rect{Lx: region.Lx, Ly: region.Ly, Hx: region.Hx, Hy: cut}
		rB = geom.Rect{Lx: region.Lx, Ly: cut, Hx: region.Hx, Hy: region.Hy}
	}
	capA := p.capacity(rA)
	capB := p.capacity(rB)
	targetFrac := capA / (capA + capB)

	// Build the local hypergraph with terminal propagation: pins of
	// cells outside this subset (or fixed) lock their net to the side
	// of the cut they sit on.
	local := make(map[int]int, len(cells))
	for li, ci := range cells {
		local[ci] = li
	}
	h := &hypergraph{
		area:     make([]float64, len(cells)),
		cellNets: make([][]int, len(cells)),
	}
	for li, ci := range cells {
		h.area[li] = math.Max(d.Cells[ci].Area(), 1e-9)
	}
	netSeen := map[int]int{} // global net -> local net id
	for li, ci := range cells {
		for _, pi := range d.Cells[ci].Pins {
			ni := d.Pins[pi].Net
			lni, ok := netSeen[ni]
			if !ok {
				lni = len(h.nets)
				netSeen[ni] = lni
				h.nets = append(h.nets, nil)
				h.terminal = append(h.terminal, [2]int{})
				// Classify external pins once.
				for _, qi := range d.Nets[ni].Pins {
					qc := d.Pins[qi].Cell
					if qc >= 0 {
						if _, in := local[qc]; in {
							continue
						}
					}
					pos := d.PinPos(qi)
					v := pos.Y
					if vertCut {
						v = pos.X
					}
					if v < cut {
						h.terminal[lni][0]++
					} else {
						h.terminal[lni][1]++
					}
				}
			}
			// Avoid duplicate membership for multi-pin connections.
			dup := false
			for _, m := range h.nets[lni] {
				if m == li {
					dup = true
					break
				}
			}
			if !dup {
				h.nets[lni] = append(h.nets[lni], li)
				h.cellNets[li] = append(h.cellNets[li], lni)
			}
		}
	}

	side := fmPartition(h, targetFrac, p.opt.BalanceTol, seed, p.opt.FMPasses)
	var a, b []int
	for li, ci := range cells {
		if side[li] {
			b = append(b, ci)
		} else {
			a = append(a, ci)
		}
	}
	// Move the cells to their subregion centers so terminal propagation
	// at deeper levels sees meaningful positions.
	for _, ci := range a {
		c := &d.Cells[ci]
		pnt := geom.ClampPoint(rA.Center(), c.W, c.H, rA)
		c.X, c.Y = pnt.X, pnt.Y
	}
	for _, ci := range b {
		c := &d.Cells[ci]
		pnt := geom.ClampPoint(rB.Center(), c.W, c.H, rB)
		c.X, c.Y = pnt.X, pnt.Y
	}
	p.recurse(a, rA, seed*2+1)
	p.recurse(b, rB, seed*2+2)
}

// packLeaf arranges a handful of cells in rows inside the region.
func (p *placer) packLeaf(cells []int, region geom.Rect) {
	d := p.d
	sort.Slice(cells, func(i, j int) bool {
		return d.Cells[cells[i]].Area() > d.Cells[cells[j]].Area()
	})
	x, y := region.Lx, region.Ly
	rowH := 0.0
	for _, ci := range cells {
		c := &d.Cells[ci]
		if x+c.W > region.Hx+1e-9 && x > region.Lx {
			x = region.Lx
			y += rowH
			rowH = 0
		}
		cx := x + c.W/2
		cy := y + c.H/2
		pnt := geom.ClampPoint(geom.Point{X: cx, Y: cy}, c.W, c.H, d.Region)
		c.X, c.Y = pnt.X, pnt.Y
		x += c.W
		if c.H > rowH {
			rowH = c.H
		}
	}
}
