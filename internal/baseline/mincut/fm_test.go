package mincut

import "testing"

// chainGraph builds a path hypergraph 0-1-2-...-n-1 of 2-pin nets.
func chainGraph(n int) *hypergraph {
	h := &hypergraph{
		area:     make([]float64, n),
		cellNets: make([][]int, n),
	}
	for i := range h.area {
		h.area[i] = 1
	}
	for i := 0; i+1 < n; i++ {
		ni := len(h.nets)
		h.nets = append(h.nets, []int{i, i + 1})
		h.terminal = append(h.terminal, [2]int{})
		h.cellNets[i] = append(h.cellNets[i], ni)
		h.cellNets[i+1] = append(h.cellNets[i+1], ni)
	}
	return h
}

func TestFMChainOptimalCut(t *testing.T) {
	// A path graph has a minimum bisection cut of exactly 1.
	h := chainGraph(16)
	side := fmPartition(h, 0.5, 0.1, 1, 10)
	if cut := cutSize(h, side); cut != 1 {
		t.Errorf("chain cut = %d, want 1", cut)
	}
	// Balance respected.
	a0 := 0.0
	for c, s := range side {
		if !s {
			a0 += h.area[c]
		}
	}
	if a0 < 6 || a0 > 10 {
		t.Errorf("side-0 area = %v, want near 8", a0)
	}
}

func TestFMTwoCliques(t *testing.T) {
	// Two 6-cliques joined by one net: optimal cut = 1 separating them.
	n := 12
	h := &hypergraph{area: make([]float64, n), cellNets: make([][]int, n)}
	for i := range h.area {
		h.area[i] = 1
	}
	addNet := func(members ...int) {
		ni := len(h.nets)
		h.nets = append(h.nets, members)
		h.terminal = append(h.terminal, [2]int{})
		for _, c := range members {
			h.cellNets[c] = append(h.cellNets[c], ni)
		}
	}
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			addNet(a, b)
			addNet(a+6, b+6)
		}
	}
	addNet(0, 6)
	side := fmPartition(h, 0.5, 0.1, 3, 10)
	if cut := cutSize(h, side); cut != 1 {
		t.Errorf("two-clique cut = %d, want 1", cut)
	}
	// The cliques must end on opposite sides, each intact.
	for c := 1; c < 6; c++ {
		if side[c] != side[0] {
			t.Fatalf("clique A split at %d", c)
		}
	}
	for c := 7; c < 12; c++ {
		if side[c] != side[6] {
			t.Fatalf("clique B split at %d", c)
		}
	}
	if side[0] == side[6] {
		t.Error("cliques on the same side")
	}
}

func TestFMTerminalPropagation(t *testing.T) {
	// Two cells, one net each to opposite locked terminals: FM should
	// put each cell with its terminal.
	h := &hypergraph{area: []float64{1, 1}, cellNets: [][]int{{0}, {1}}}
	h.nets = [][]int{{0}, {1}}
	h.terminal = [][2]int{{1, 0}, {0, 1}} // net0 locked left, net1 right
	// tol must allow transient one-sided states on a 2-cell instance,
	// or no single FM move is balance-legal.
	side := fmPartition(h, 0.5, 0.6, 1, 10)
	if cut := cutSize(h, side); cut != 0 {
		t.Errorf("cut = %d, want 0", cut)
	}
	if side[0] != false || side[1] != true {
		t.Errorf("sides = %v, want [false true]", side)
	}
}

func TestFMBalanceRespected(t *testing.T) {
	// Unequal areas: a huge cell must not overload side 0 when target
	// is lopsided.
	h := chainGraph(10)
	h.area[0] = 5
	side := fmPartition(h, 0.3, 0.15, 2, 10)
	total := 14.0
	a0 := 0.0
	for c, s := range side {
		if !s {
			a0 += h.area[c]
		}
	}
	frac := a0 / total
	if frac < 0.10 || frac > 0.50 {
		t.Errorf("side-0 fraction = %v, target 0.3 +- 0.15", frac)
	}
}
