// Package quadratic implements a SimPL/POLAR-lineage quadratic placer,
// the "Quadratic" comparison category of Tables I-III: the classic
// lower-bound / upper-bound iteration. Each round solves the
// bound-to-bound quadratic wirelength system with pseudo-net anchors
// toward the previous upper bound (the "lower bound": optimal
// wirelength, overlapping), then roughly legalizes that solution onto
// the rows (the "upper bound": overlap-free, longer wire), and anchors
// the next solve to it with linearly growing weight. The two bounds
// approach each other, which is exactly how SimPL, ComPLx and POLAR
// (Table I's strongest quadratic competitors) converge.
package quadratic

import (
	"math"
	"sort"

	"eplace/internal/geom"
	"eplace/internal/grid"
	"eplace/internal/netlist"
	"eplace/internal/qp"
	"eplace/internal/sparse"
	"eplace/internal/telemetry"
)

// Options tunes the quadratic placer.
type Options struct {
	// MaxRounds bounds the lower/upper-bound iterations (default 60).
	MaxRounds int
	// TargetOverflow stops when the lower bound is spread (default 0.10).
	TargetOverflow float64
	// GridM is the density grid used for overflow checks (0 = auto).
	GridM int
	// AnchorWeight0 scales the per-round anchor weight
	// w = AnchorWeight0 * 1.2^round (default 0.005).
	AnchorWeight0 float64
	// Telemetry, when non-nil, receives one Sample per round
	// (stage "QuadPL").
	Telemetry *telemetry.Recorder
}

func (o *Options) defaults() {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 60
	}
	if o.TargetOverflow <= 0 {
		o.TargetOverflow = 0.10
	}
	if o.AnchorWeight0 <= 0 {
		o.AnchorWeight0 = 0.005
	}
}

// Result reports a run.
type Result struct {
	Iterations int
	HPWL       float64
	Overflow   float64
}

// Place runs global placement over the movable cells idx. Standard
// cells are rough-legalized for the upper bound; movable macros anchor
// at their clamped lower-bound positions (mLG legalizes them later).
func Place(d *netlist.Design, idx []int, opt Options) Result {
	opt.defaults()
	var res Result
	if len(idx) == 0 {
		res.HPWL = d.HPWL()
		return res
	}
	m := opt.GridM
	if m == 0 {
		m = grid.ChooseM(len(d.Cells))
	}
	n := len(idx)

	// Lower bound 0: pure wirelength.
	qp.Place(d, idx, qp.Options{})
	cur := d.Positions(idx)

	anchors := make([]geom.Point, n)
	for round := 1; round <= opt.MaxRounds; round++ {
		res.Iterations = round
		d.SetPositions(idx, cur)
		tau := overflowOf(d, idx, m)
		res.Overflow = tau
		if opt.Telemetry.Active() {
			opt.Telemetry.Sample(telemetry.Sample{
				Stage: "QuadPL", Iteration: round, HPWL: d.HPWL(),
				Overflow: tau,
				Lambda:   opt.AnchorWeight0 * math.Pow(1.2, float64(round)),
			})
		}
		if tau <= opt.TargetOverflow {
			break
		}
		// Upper bound: look-ahead legalization of the lower bound by
		// order-preserving top-down geometric partitioning (the SimPL
		// LAL): recursively bisect each region by free capacity,
		// assigning cells in position order, then place each leaf's
		// cells evenly inside its region.
		lookAheadLegalize(d, idx, m, anchors)
		// Next lower bound: anchored solve from the previous one. The
		// anchor weight ramps geometrically so the bounds provably meet.
		d.SetPositions(idx, cur)
		w := opt.AnchorWeight0 * math.Pow(1.2, float64(round))
		solveAnchored(d, idx, anchors, w)
		copy(cur, d.Positions(idx))
	}
	d.SetPositions(idx, cur)
	for _, ci := range idx {
		c := &d.Cells[ci]
		p := geom.ClampPoint(geom.Point{X: c.X, Y: c.Y}, c.W, c.H, d.Region)
		c.X, c.Y = p.X, p.Y
	}
	res.Overflow = overflowOf(d, idx, m)
	res.HPWL = d.HPWL()
	return res
}

// lookAheadLegalize computes the SimPL-style upper bound into anchors
// (indexed like idx): cells in satisfied areas stay put; around every
// overfilled bin a minimal region with sufficient free capacity is
// grown, and only that region's cells are spread by order-preserving
// top-down geometric bisection. Locality is what keeps the upper bound
// cheap once the lower bound is nearly spread.
func lookAheadLegalize(d *netlist.Design, idx []int, m int, anchors []geom.Point) {
	slot := make([]int, len(d.Cells))
	for i := range slot {
		slot[i] = -1
	}
	for k, ci := range idx {
		slot[ci] = k
		c := &d.Cells[ci]
		anchors[k] = geom.Point{X: c.X, Y: c.Y}
	}
	g := grid.New(d.Region, m)
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			g.AddFixed(d.Cells[i].Rect())
		}
	}
	for _, ci := range idx {
		c := &d.Cells[ci]
		g.AddMovable(c.X, c.Y, c.W, c.H)
	}
	// Prefix sums of movable area and target capacity per bin.
	rhoT := d.TargetDensity
	binArea := g.BinArea()
	pm := make([]float64, (m+1)*(m+1))
	pc := make([]float64, (m+1)*(m+1))
	at := func(p []float64, i, j int) float64 { return p[j*(m+1)+i] }
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			capB := rhoT * math.Max(0, binArea-g.Fixed[j*m+i])
			pm[(j+1)*(m+1)+i+1] = g.Mov[j*m+i] + at(pm, i, j+1) + at(pm, i+1, j) - at(pm, i, j)
			pc[(j+1)*(m+1)+i+1] = capB + at(pc, i, j+1) + at(pc, i+1, j) - at(pc, i, j)
		}
	}
	sum := func(p []float64, i0, j0, i1, j1 int) float64 { // [i0,i1) x [j0,j1)
		return at(p, i1, j1) - at(p, i0, j1) - at(p, i1, j0) + at(p, i0, j0)
	}

	// Overfilled bins seed spreading regions. Each region grows until
	// its free capacity holds its movable area; overlapping regions are
	// merged (otherwise they would double-book the shared capacity) and
	// re-grown until the set is disjoint and every region fits.
	type box struct{ i0, j0, i1, j1 int }
	var boxes []box
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			capB := rhoT * math.Max(0, binArea-g.Fixed[j*m+i])
			if g.Mov[j*m+i]-capB > 1e-9 {
				boxes = append(boxes, box{i, j, i + 1, j + 1})
			}
		}
	}
	grow := func(b box) box {
		for {
			mov := sum(pm, b.i0, b.j0, b.i1, b.j1)
			capR := sum(pc, b.i0, b.j0, b.i1, b.j1)
			if mov <= capR || (b.i0 == 0 && b.j0 == 0 && b.i1 == m && b.j1 == m) {
				return b
			}
			if b.i0 > 0 {
				b.i0--
			}
			if b.j0 > 0 {
				b.j0--
			}
			if b.i1 < m {
				b.i1++
			}
			if b.j1 < m {
				b.j1++
			}
		}
	}
	overlaps := func(a, b box) bool {
		return a.i0 < b.i1 && b.i0 < a.i1 && a.j0 < b.j1 && b.j0 < a.j1
	}
	for i := range boxes {
		boxes[i] = grow(boxes[i])
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(boxes); i++ {
			for j := i + 1; j < len(boxes); j++ {
				if overlaps(boxes[i], boxes[j]) {
					a, b := boxes[i], boxes[j]
					boxes[i] = grow(box{
						i0: minI(a.i0, b.i0), j0: minI(a.j0, b.j0),
						i1: maxI(a.i1, b.i1), j1: maxI(a.j1, b.j1),
					})
					boxes = append(boxes[:j], boxes[j+1:]...)
					changed = true
					j--
				}
			}
		}
	}

	for _, b := range boxes {
		rect := geom.Rect{
			Lx: g.Region.Lx + float64(b.i0)*g.BinW,
			Ly: g.Region.Ly + float64(b.j0)*g.BinH,
			Hx: g.Region.Lx + float64(b.i1)*g.BinW,
			Hy: g.Region.Ly + float64(b.j1)*g.BinH,
		}
		var cells []int
		for _, ci := range idx {
			c := &d.Cells[ci]
			if rect.Contains(geom.Point{X: c.X, Y: c.Y}) {
				cells = append(cells, ci)
			}
		}
		spreadRegion(d, rect, cells, slot, anchors,
			math.Max(g.BinW, g.BinH))
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// spreadRegion assigns the cells' anchors inside rect by recursive
// capacity-balanced bisection with order-preserving assignment.
func spreadRegion(d *netlist.Design, rect geom.Rect, cells []int, slot []int, anchors []geom.Point, minSide float64) {
	if len(cells) == 0 {
		return
	}
	if len(cells) <= 2 || (rect.W() <= minSide && rect.H() <= minSide) {
		lo := geom.Point{X: math.Inf(1), Y: math.Inf(1)}
		hi := geom.Point{X: math.Inf(-1), Y: math.Inf(-1)}
		for _, ci := range cells {
			c := &d.Cells[ci]
			lo.X, lo.Y = math.Min(lo.X, c.X), math.Min(lo.Y, c.Y)
			hi.X, hi.Y = math.Max(hi.X, c.X), math.Max(hi.Y, c.Y)
		}
		ctr := rect.Center()
		for _, ci := range cells {
			c := &d.Cells[ci]
			p := ctr
			if hi.X > lo.X {
				p.X = rect.Lx + (c.X-lo.X)/(hi.X-lo.X)*rect.W()
			}
			if hi.Y > lo.Y {
				p.Y = rect.Ly + (c.Y-lo.Y)/(hi.Y-lo.Y)*rect.H()
			}
			// Clamp into the leaf, then into the die: a cell wider than
			// its leaf must still stay on the region.
			p = geom.ClampPoint(p, c.W, c.H, rect)
			anchors[slot[ci]] = geom.ClampPoint(p, c.W, c.H, d.Region)
		}
		return
	}
	vert := rect.W() >= rect.H()
	var ra, rb geom.Rect
	if vert {
		cut := (rect.Lx + rect.Hx) / 2
		ra = geom.Rect{Lx: rect.Lx, Ly: rect.Ly, Hx: cut, Hy: rect.Hy}
		rb = geom.Rect{Lx: cut, Ly: rect.Ly, Hx: rect.Hx, Hy: rect.Hy}
	} else {
		cut := (rect.Ly + rect.Hy) / 2
		ra = geom.Rect{Lx: rect.Lx, Ly: rect.Ly, Hx: rect.Hx, Hy: cut}
		rb = geom.Rect{Lx: rect.Lx, Ly: cut, Hx: rect.Hx, Hy: rect.Hy}
	}
	capA := freeCap(d, ra)
	capB := freeCap(d, rb)
	order := append([]int(nil), cells...)
	sort.Slice(order, func(i, j int) bool {
		ci, cj := &d.Cells[order[i]], &d.Cells[order[j]]
		if vert {
			if ci.X != cj.X {
				return ci.X < cj.X
			}
		} else if ci.Y != cj.Y {
			return ci.Y < cj.Y
		}
		return order[i] < order[j]
	})
	total := 0.0
	for _, ci := range order {
		total += d.Cells[ci].Area()
	}
	wantA := total * capA / (capA + capB)
	var a, b []int
	acc := 0.0
	for _, ci := range order {
		if acc < wantA {
			a = append(a, ci)
			acc += d.Cells[ci].Area()
		} else {
			b = append(b, ci)
		}
	}
	spreadRegion(d, ra, a, slot, anchors, minSide)
	spreadRegion(d, rb, b, slot, anchors, minSide)
}

// freeCap returns region area minus fixed-cell overlap.
func freeCap(d *netlist.Design, r geom.Rect) float64 {
	c := r.Area()
	for i := range d.Cells {
		fc := &d.Cells[i]
		if fc.Fixed {
			c -= fc.Rect().Overlap(r)
		}
	}
	return math.Max(c, 1e-9)
}

// overflowOf rasterizes the current layout and returns tau.
func overflowOf(d *netlist.Design, idx []int, m int) float64 {
	g := grid.New(d.Region, m)
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			g.AddFixed(d.Cells[i].Rect())
		}
	}
	for _, ci := range idx {
		c := &d.Cells[ci]
		g.AddMovable(c.X, c.Y, c.W, c.H)
	}
	return g.Overflow(d.TargetDensity)
}

// solveAnchored minimizes quadratic wirelength plus pseudo-net springs
// to the anchors (one CG solve per axis, B2B weights from the current
// positions). Anchor springs use a constant weight, so the restoring
// force grows with the distance to the upper-bound position and the
// bounds are guaranteed to approach as w ramps.
func solveAnchored(d *netlist.Design, idx []int, anchors []geom.Point, w float64) {
	slot := make([]int, len(d.Cells))
	for i := range slot {
		slot[i] = -1
	}
	for k, ci := range idx {
		slot[ci] = k
	}
	minDist := 1e-4 * math.Max(d.Region.W(), d.Region.H())
	for _, xAxis := range []bool{true, false} {
		n := len(idx)
		b := sparse.NewBuilder(n)
		rhs := make([]float64, n)
		for ni := range d.Nets {
			net := &d.Nets[ni]
			if len(net.Pins) < 2 {
				continue
			}
			stampClique(d, b, rhs, slot, net, xAxis, minDist)
		}
		for k := range idx {
			av := anchors[k].Y
			if xAxis {
				av = anchors[k].X
			}
			b.AddDiag(k, w)
			rhs[k] += w * av
		}
		a := b.Build()
		x := make([]float64, n)
		for k, ci := range idx {
			if xAxis {
				x[k] = d.Cells[ci].X
			} else {
				x[k] = d.Cells[ci].Y
			}
		}
		sparse.CG(a, rhs, x, 1e-6, 300)
		for k, ci := range idx {
			if xAxis {
				d.Cells[ci].X = x[k]
			} else {
				d.Cells[ci].Y = x[k]
			}
		}
	}
}

// stampClique adds a star-approximation clique for one net: every pin
// connects to the two extreme pins (B2B).
func stampClique(d *netlist.Design, b *sparse.Builder, rhs []float64, slot []int, net *netlist.Net, xAxis bool, minDist float64) {
	loPin, hiPin := -1, -1
	lo, hi := math.Inf(1), math.Inf(-1)
	coord := func(pi int) float64 {
		p := d.PinPos(pi)
		if xAxis {
			return p.X
		}
		return p.Y
	}
	for _, pi := range net.Pins {
		v := coord(pi)
		if v < lo {
			lo, loPin = v, pi
		}
		if v > hi {
			hi, hiPin = v, pi
		}
	}
	if loPin == hiPin {
		hiPin = net.Pins[0]
		if hiPin == loPin {
			hiPin = net.Pins[1]
		}
	}
	wgt := net.Weight
	if wgt == 0 {
		wgt = 1
	}
	base := 2 * wgt / float64(len(net.Pins)-1)
	addSpring := func(p, q int) {
		dist := math.Abs(coord(p) - coord(q))
		if dist < minDist {
			dist = minDist
		}
		wv := base / dist
		pc, qc := d.Pins[p].Cell, d.Pins[q].Cell
		ps, qs := -1, -1
		if pc >= 0 {
			ps = slot[pc]
		}
		if qc >= 0 {
			qs = slot[qc]
		}
		switch {
		case ps >= 0 && qs >= 0:
			b.AddSym(ps, qs, wv)
		case ps >= 0:
			b.AddDiag(ps, wv)
			rhs[ps] += wv * coord(q)
		case qs >= 0:
			b.AddDiag(qs, wv)
			rhs[qs] += wv * coord(p)
		}
	}
	for _, pi := range net.Pins {
		if pi != loPin {
			addSpring(pi, loPin)
		}
		if pi != hiPin && pi != loPin {
			addSpring(pi, hiPin)
		}
	}
}
