package quadratic

import (
	"math"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/netlist"
	"eplace/internal/qp"
	"eplace/internal/synth"
)

func TestLookAheadLegalizeFlattensBlob(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "lal", NumCells: 800, NumFixedMacros: 4})
	idx := d.Movable()
	qp.Place(d, idx, qp.Options{})
	if tau := overflowOf(d, idx, 64); tau < 0.8 {
		t.Fatalf("setup: mIP blob tau = %v, want high", tau)
	}
	anchors := make([]geom.Point, len(idx))
	lookAheadLegalize(d, idx, 64, anchors)
	// Move cells to the anchors and measure.
	v := make([]float64, 2*len(idx))
	for k := range idx {
		v[k], v[k+len(idx)] = anchors[k].X, anchors[k].Y
	}
	d.SetPositions(idx, v)
	if tau := overflowOf(d, idx, 64); tau > 0.2 {
		t.Errorf("LAL tau = %v, want <= 0.2", tau)
	}
	for _, ci := range idx {
		if !d.Region.ContainsRect(d.Cells[ci].Rect()) {
			t.Fatalf("cell %d escaped region", ci)
		}
	}
}

func TestLookAheadLegalizeKeepsSatisfiedCells(t *testing.T) {
	// A layout that is already spread: LAL must barely move anything.
	d := netlist.New("sat", geom.Rect{Hx: 64, Hy: 64})
	var idx []int
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			idx = append(idx, d.AddCell(netlist.Cell{
				W: 4, H: 4, X: 4 + 8*float64(i), Y: 4 + 8*float64(j),
			}))
		}
	}
	anchors := make([]geom.Point, len(idx))
	lookAheadLegalize(d, idx, 32, anchors)
	for k, ci := range idx {
		c := &d.Cells[ci]
		if math.Hypot(anchors[k].X-c.X, anchors[k].Y-c.Y) > 1e-9 {
			t.Fatalf("cell %d moved by LAL in a satisfied layout: %v vs (%v,%v)",
				ci, anchors[k], c.X, c.Y)
		}
	}
}

func TestLowerUpperBoundsApproach(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "bounds", NumCells: 600, NumFixedMacros: 4})
	idx := d.Movable()
	res := Place(d, idx, Options{})
	if res.Overflow > 0.2 {
		t.Errorf("final overflow = %v", res.Overflow)
	}
	// The output must beat the pure-LAL layout on wirelength: the whole
	// point of the lower-bound solves.
	d2 := synth.Generate(synth.Spec{Name: "bounds", NumCells: 600, NumFixedMacros: 4})
	idx2 := d2.Movable()
	qp.Place(d2, idx2, qp.Options{})
	anchors := make([]geom.Point, len(idx2))
	lookAheadLegalize(d2, idx2, 64, anchors)
	v := make([]float64, 2*len(idx2))
	for k := range idx2 {
		v[k], v[k+len(idx2)] = anchors[k].X, anchors[k].Y
	}
	d2.SetPositions(idx2, v)
	if res.HPWL >= d2.HPWL() {
		t.Errorf("SimPL iteration HPWL %v not below one-shot LAL %v", res.HPWL, d2.HPWL())
	}
}

func TestFreeCapSubtractsFixed(t *testing.T) {
	d := netlist.New("cap", geom.Rect{Hx: 10, Hy: 10})
	d.AddCell(netlist.Cell{W: 4, H: 5, X: 2, Y: 2.5, Fixed: true})
	got := freeCap(d, geom.Rect{Hx: 10, Hy: 10})
	if math.Abs(got-80) > 1e-9 {
		t.Errorf("freeCap = %v, want 80", got)
	}
	// Clipped overlap only.
	got = freeCap(d, geom.Rect{Lx: 0, Ly: 0, Hx: 2, Hy: 10})
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("clipped freeCap = %v, want 10", got)
	}
}
