// Package density implements the eDensity electrostatic density model
// of ePlace (Sec. IV): every object is a charge with electric quantity
// q_i equal to its area, the density cost N(v) = sum_i q_i psi_i is the
// total electric potential energy, and the density gradient on object i
// is the electric force 2*q_i*xi_i obtained from the spectral Poisson
// solution of Eq. (6). Fixed objects carry charge like everything else
// ("generalized without special handling of fixed blocks").
package density

import (
	"math"

	"eplace/internal/grid"
	"eplace/internal/netlist"
	"eplace/internal/parallel"
	"eplace/internal/poisson"
)

// Model evaluates the density cost and gradient for one design.
//
// Concurrency contract: a Model is NOT safe for concurrent use by
// multiple goroutines — Refresh mutates the grid, the charge plane and
// the Poisson solver workspace, and Gradient reads them. Parallelism is
// internal: the worker count fixed at construction fans out the movable
// rasterization, the spectral solve and the per-cell force integration,
// with results bitwise-identical for every worker count.
type Model struct {
	Grid   *grid.Grid
	Solver *poisson.Solver
	d      *netlist.Design
	rho    []float64
	objs   []grid.Object // rasterization batch scratch
	// binAreaInv normalizes charge to dimensionless bin density.
	binAreaInv float64
	energy     float64
	workers    int
}

// NewModel builds a density model over design d with an m x m grid
// (m a power of two, e.g. grid.ChooseM) using all cores. Fixed cells
// are rasterized once; call Refresh whenever movable positions change.
func NewModel(d *netlist.Design, m int) *Model {
	return NewModelWorkers(d, m, 0)
}

// NewModelWorkers is NewModel with an explicit worker count for the
// rasterization, force and Poisson kernels; workers <= 0 selects all
// cores, 1 runs fully serial.
func NewModelWorkers(d *netlist.Design, m, workers int) *Model {
	g := grid.New(d.Region, m)
	md := &Model{
		Grid:       g,
		Solver:     poisson.NewSolverWorkers(m, workers),
		d:          d,
		rho:        make([]float64, m*m),
		binAreaInv: 1 / g.BinArea(),
		workers:    parallel.Count(workers),
	}
	for _, ci := range d.FixedCells() {
		g.AddFixed(d.Cells[ci].Rect())
	}
	return md
}

// Refresh re-rasterizes the movable cells listed in idx (fillers go to
// the filler layer), solves the Poisson system and caches the total
// energy. idx must cover every non-fixed cell that should carry charge.
func (md *Model) Refresh(idx []int) {
	md.Grid.ClearMovable()
	if cap(md.objs) < len(idx) {
		md.objs = make([]grid.Object, len(idx))
	}
	objs := md.objs[:len(idx)]
	for i, ci := range idx {
		c := &md.d.Cells[ci]
		objs[i] = grid.Object{X: c.X, Y: c.Y, W: c.W, H: c.H, Filler: c.Kind == netlist.Filler}
	}
	md.Grid.AddObjects(objs, md.workers)
	md.Grid.Charge(md.rho)
	for b := range md.rho {
		md.rho[b] *= md.binAreaInv
	}
	md.Solver.Solve(md.rho)
	md.energy = md.Solver.Energy(md.rho)
}

// Energy returns N(v) for the last Refresh.
func (md *Model) Energy() float64 { return md.energy }

// Overflow returns the density overflow tau against rhoT for the last
// Refresh (movable cells only; fillers excluded).
func (md *Model) Overflow(rhoT float64) float64 { return md.Grid.Overflow(rhoT) }

// Gradient writes dN/dx and dN/dy for each cell in idx into grad, laid
// out {x_1..x_n, y_1..y_n} like netlist.Positions. The gradient is the
// negated electric force: descending it moves charge away from density
// peaks. Footprints use the same local smoothing as rasterization so
// the gradient is consistent with the energy. Cells shard over the
// worker pool; every cell's force is an independent integral over the
// solved field, so the result does not depend on the worker count.
func (md *Model) Gradient(idx []int, grad []float64) {
	n := len(idx)
	if len(grad) != 2*n {
		panic("density: gradient buffer size mismatch")
	}
	g := md.Grid
	parallel.For(md.workers, n, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			c := &md.d.Cells[idx[k]]
			fx, fy := md.forceOn(c)
			// Convert grid-coordinate field to design units and negate the
			// force (Eq. 8: dN/dx_i = 2 q_i xi_ix, pointing uphill).
			grad[k] = -2 * fx / g.BinW
			grad[k+n] = -2 * fy / g.BinH
		}
	})
}

// forceOn integrates charge-density * field over the smoothed footprint
// of cell c, returning the force components in grid units. It only
// reads shared state (grid geometry, solved field planes) and is safe
// to call from worker goroutines.
func (md *Model) forceOn(c *netlist.Cell) (fx, fy float64) {
	g := md.Grid
	m := g.M
	r, scale := smoothedRect(g, c)
	i0 := int(math.Floor((r.Lx - g.Region.Lx) / g.BinW))
	i1 := int(math.Ceil((r.Hx - g.Region.Lx) / g.BinW))
	j0 := int(math.Floor((r.Ly - g.Region.Ly) / g.BinH))
	j1 := int(math.Ceil((r.Hy - g.Region.Ly) / g.BinH))
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 > m {
		i1 = m
	}
	if j1 > m {
		j1 = m
	}
	chargeScale := scale * md.binAreaInv
	for j := j0; j < j1; j++ {
		by0 := g.Region.Ly + float64(j)*g.BinH
		oy := math.Min(r.Hy, by0+g.BinH) - math.Max(r.Ly, by0)
		if oy <= 0 {
			continue
		}
		row := j * m
		for i := i0; i < i1; i++ {
			bx0 := g.Region.Lx + float64(i)*g.BinW
			ox := math.Min(r.Hx, bx0+g.BinW) - math.Max(r.Lx, bx0)
			if ox <= 0 {
				continue
			}
			q := ox * oy * chargeScale
			fx += q * md.Solver.Ex[row+i]
			fy += q * md.Solver.Ey[row+i]
		}
	}
	return fx, fy
}

// smoothedRect mirrors grid's local smoothing: sub-bin objects inflate
// to sqrt(2) bins with charge preserved, clamped inside the region.
func smoothedRect(g *grid.Grid, c *netlist.Cell) (r rectT, scale float64) {
	const inflate = math.Sqrt2
	ew, eh := c.W, c.H
	scale = 1.0
	if minW := inflate * g.BinW; ew < minW {
		scale *= ew / minW
		ew = minW
	}
	if minH := inflate * g.BinH; eh < minH {
		scale *= eh / minH
		eh = minH
	}
	lx := c.X - ew/2
	ly := c.Y - eh/2
	hx := c.X + ew/2
	hy := c.Y + eh/2
	// Clamp inside region (translate).
	if lx < g.Region.Lx {
		hx += g.Region.Lx - lx
		lx = g.Region.Lx
	} else if hx > g.Region.Hx {
		lx -= hx - g.Region.Hx
		hx = g.Region.Hx
	}
	if ly < g.Region.Ly {
		hy += g.Region.Ly - ly
		ly = g.Region.Ly
	} else if hy > g.Region.Hy {
		ly -= hy - g.Region.Hy
		hy = g.Region.Hy
	}
	return rectT{lx, ly, hx, hy}, scale
}

type rectT struct{ Lx, Ly, Hx, Hy float64 }
