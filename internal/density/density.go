// Package density implements the eDensity electrostatic density model
// of ePlace (Sec. IV): every object is a charge with electric quantity
// q_i equal to its area, the density cost N(v) = sum_i q_i psi_i is the
// total electric potential energy, and the density gradient on object i
// is the electric force 2*q_i*xi_i obtained from the spectral Poisson
// solution of Eq. (6). Fixed objects carry charge like everything else
// ("generalized without special handling of fixed blocks").
//
// The rasterization and force kernels read cell geometry from the SoA
// arrays of a netlist.Compiled view instead of walking Cell structs;
// the engine shares one view across all models and writes positions
// into it once per iteration.
package density

import (
	"math"
	"time"

	"eplace/internal/grid"
	"eplace/internal/netlist"
	"eplace/internal/parallel"
	"eplace/internal/poisson"
)

// Model evaluates the density cost and gradient for one design.
//
// Concurrency contract: a Model is NOT safe for concurrent use by
// multiple goroutines — Refresh mutates the grid, the charge plane and
// the Poisson solver workspace, and Gradient reads them. Parallelism is
// internal: the worker count fixed at construction fans out the movable
// rasterization, the spectral solve and the per-cell force integration,
// with results bitwise-identical for every worker count.
//
// Allocation contract: steady-state Refresh and Gradient calls allocate
// nothing at workers <= 1 (and only goroutine-spawn bookkeeping beyond
// that).
type Model struct {
	Grid *grid.Grid
	// Solver is the pluggable Poisson backend (spectral float64 by
	// default; see poisson.Kinds). Its field planes are re-fetched into
	// ex/ey after every solve — backends may remap them on fallback.
	Solver poisson.Backend
	d      *netlist.Design
	cv     *netlist.Compiled
	// ownView marks a privately compiled view that must re-sync from the
	// Cell structs before each Refresh (callers may move cells directly).
	ownView bool
	rho     []float64
	// binAreaInv normalizes charge to dimensionless bin density.
	binAreaInv float64
	energy     float64
	workers    int
	// Field planes from the backend's latest solve (grid units).
	ex, ey []float64
	// solveTime is the wall time of the latest Poisson solve + energy
	// evaluation, for per-backend telemetry spans.
	solveTime time.Duration

	// Per-call inputs for the persistent Gradient closure (closures
	// passed to parallel.For escape; capturing locals would allocate
	// one closure per call).
	gradIdx  []int
	gradBuf  []float64
	gradTask func(wk, lo, hi int)
}

// NewModel builds a density model over design d with an m x m grid
// (m a power of two, e.g. grid.ChooseM) using all cores and the default
// spectral float64 backend. Fixed cells are rasterized once; call
// Refresh whenever movable positions change. It errors on an invalid
// grid size.
func NewModel(d *netlist.Design, m int) (*Model, error) {
	return NewModelWorkers(d, m, 0)
}

// NewModelWorkers is NewModel with an explicit worker count for the
// rasterization, force and Poisson kernels; workers <= 0 selects all
// cores, 1 runs fully serial. The model compiles a private view of d
// and re-syncs it from the Cell structs on every Refresh.
func NewModelWorkers(d *netlist.Design, m, workers int) (*Model, error) {
	return newModel(d.Compile(), m, workers, poisson.KindSpectral, true)
}

// NewModelCompiled builds a density model over a caller-owned compiled
// view with the named Poisson backend (poisson.Kinds; "" selects
// spectral). The caller keeps the view's positions current (the engine
// writes them once per iteration via Compiled.SetPositions); Refresh
// performs no struct-to-SoA sync. It errors on an invalid grid size or
// an unknown backend kind.
func NewModelCompiled(cv *netlist.Compiled, m, workers int, kind string) (*Model, error) {
	return newModel(cv, m, workers, kind, false)
}

func newModel(cv *netlist.Compiled, m, workers int, kind string, ownView bool) (*Model, error) {
	d := cv.Design()
	solver, err := poisson.NewBackend(kind, m, workers)
	if err != nil {
		return nil, err
	}
	g := grid.New(d.Region, m)
	md := &Model{
		Grid:       g,
		Solver:     solver,
		d:          d,
		cv:         cv,
		ownView:    ownView,
		rho:        make([]float64, m*m),
		binAreaInv: 1 / g.BinArea(),
		workers:    parallel.Count(workers),
	}
	for _, ci := range d.FixedCells() {
		g.AddFixed(d.Cells[ci].Rect())
	}
	md.gradTask = func(_, lo, hi int) {
		cv, grad := md.cv, md.gradBuf
		n := len(md.gradIdx)
		for k := lo; k < hi; k++ {
			ci := md.gradIdx[k]
			fx, fy := md.force(cv.PosX[ci], cv.PosY[ci], cv.CellW[ci], cv.CellH[ci])
			// Convert grid-coordinate field to design units and negate the
			// force (Eq. 8: dN/dx_i = 2 q_i xi_ix, pointing uphill).
			grad[k] = -2 * fx / md.Grid.BinW
			grad[k+n] = -2 * fy / md.Grid.BinH
		}
	}
	return md, nil
}

// Refresh re-rasterizes the movable cells listed in idx (fillers go to
// the filler layer), solves the Poisson system and caches the total
// energy. idx must cover every non-fixed cell that should carry charge.
func (md *Model) Refresh(idx []int) {
	if md.ownView {
		md.cv.SyncGeometry()
	}
	md.Grid.ClearMovable()
	cv := md.cv
	md.Grid.AddCellsSoA(idx, cv.PosX, cv.PosY, cv.CellW, cv.CellH, cv.Filler, md.workers)
	md.Grid.Charge(md.rho)
	for b := range md.rho {
		md.rho[b] *= md.binAreaInv
	}
	t0 := time.Now()
	md.Solver.Solve(md.rho)
	md.energy = md.Solver.Energy(md.rho)
	md.solveTime = time.Since(t0)
	_, md.ex, md.ey = md.Solver.Planes()
}

// Energy returns N(v) for the last Refresh.
func (md *Model) Energy() float64 { return md.energy }

// Backend returns the Poisson backend's kind name (telemetry labels).
func (md *Model) Backend() string { return md.Solver.Name() }

// LastSolveTime returns the wall time the latest Refresh spent in the
// Poisson solve + energy evaluation, for per-backend kernel spans.
func (md *Model) LastSolveTime() time.Duration { return md.solveTime }

// Overflow returns the density overflow tau against rhoT for the last
// Refresh (movable cells only; fillers excluded).
func (md *Model) Overflow(rhoT float64) float64 { return md.Grid.Overflow(rhoT) }

// Gradient writes dN/dx and dN/dy for each cell in idx into grad, laid
// out {x_1..x_n, y_1..y_n} like netlist.Positions. The gradient is the
// negated electric force: descending it moves charge away from density
// peaks. Footprints use the same local smoothing as rasterization so
// the gradient is consistent with the energy. Cells shard over the
// worker pool; every cell's force is an independent integral over the
// solved field, so the result does not depend on the worker count.
// Geometry comes from the compiled view as synced at the last Refresh.
func (md *Model) Gradient(idx []int, grad []float64) {
	n := len(idx)
	if len(grad) != 2*n {
		panic("density: gradient buffer size mismatch")
	}
	md.gradIdx, md.gradBuf = idx, grad
	parallel.For(md.workers, n, md.gradTask)
	md.gradIdx, md.gradBuf = nil, nil
}

// forceOn integrates the force on cell c's current struct geometry; it
// is the pointer-based reference wrapper around force.
func (md *Model) forceOn(c *netlist.Cell) (fx, fy float64) {
	return md.force(c.X, c.Y, c.W, c.H)
}

// force integrates charge-density * field over the smoothed footprint
// of an object centered at (cx, cy) with extents w x h, returning the
// force components in grid units. It only reads shared state (grid
// geometry, solved field planes) and is safe to call from worker
// goroutines.
func (md *Model) force(cx, cy, w, h float64) (fx, fy float64) {
	g := md.Grid
	m := g.M
	r, scale := smoothedRect(g, cx, cy, w, h)
	i0 := int(math.Floor((r.Lx - g.Region.Lx) / g.BinW))
	i1 := int(math.Ceil((r.Hx - g.Region.Lx) / g.BinW))
	j0 := int(math.Floor((r.Ly - g.Region.Ly) / g.BinH))
	j1 := int(math.Ceil((r.Hy - g.Region.Ly) / g.BinH))
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 > m {
		i1 = m
	}
	if j1 > m {
		j1 = m
	}
	chargeScale := scale * md.binAreaInv
	for j := j0; j < j1; j++ {
		by0 := g.Region.Ly + float64(j)*g.BinH
		oy := math.Min(r.Hy, by0+g.BinH) - math.Max(r.Ly, by0)
		if oy <= 0 {
			continue
		}
		row := j * m
		for i := i0; i < i1; i++ {
			bx0 := g.Region.Lx + float64(i)*g.BinW
			ox := math.Min(r.Hx, bx0+g.BinW) - math.Max(r.Lx, bx0)
			if ox <= 0 {
				continue
			}
			q := ox * oy * chargeScale
			fx += q * md.ex[row+i]
			fy += q * md.ey[row+i]
		}
	}
	return fx, fy
}

// smoothedRect mirrors grid's local smoothing: sub-bin objects inflate
// to sqrt(2) bins with charge preserved, clamped inside the region.
func smoothedRect(g *grid.Grid, cx, cy, w, h float64) (r rectT, scale float64) {
	const inflate = math.Sqrt2
	ew, eh := w, h
	scale = 1.0
	if minW := inflate * g.BinW; ew < minW {
		scale *= ew / minW
		ew = minW
	}
	if minH := inflate * g.BinH; eh < minH {
		scale *= eh / minH
		eh = minH
	}
	lx := cx - ew/2
	ly := cy - eh/2
	hx := cx + ew/2
	hy := cy + eh/2
	// Clamp inside region (translate).
	if lx < g.Region.Lx {
		hx += g.Region.Lx - lx
		lx = g.Region.Lx
	} else if hx > g.Region.Hx {
		lx -= hx - g.Region.Hx
		hx = g.Region.Hx
	}
	if ly < g.Region.Ly {
		hy += g.Region.Ly - ly
		ly = g.Region.Ly
	} else if hy > g.Region.Hy {
		ly -= hy - g.Region.Hy
		hy = g.Region.Hy
	}
	return rectT{lx, ly, hx, hy}, scale
}

type rectT struct{ Lx, Ly, Hx, Hy float64 }
