package density

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"eplace/internal/netlist"
	"eplace/internal/poisson"
	"eplace/internal/synth"
)

// serialRefresh reproduces the seed's single-goroutine Refresh: the
// per-cell AddMovable/AddFiller loop followed by a serial Poisson solve.
func serialRefresh(md *Model, idx []int) {
	md.Grid.ClearMovable()
	for _, ci := range idx {
		c := &md.d.Cells[ci]
		if c.Kind == netlist.Filler {
			md.Grid.AddFiller(c.X, c.Y, c.W, c.H)
		} else {
			md.Grid.AddMovable(c.X, c.Y, c.W, c.H)
		}
	}
	md.Grid.Charge(md.rho)
	for b := range md.rho {
		md.rho[b] *= md.binAreaInv
	}
	md.Solver.Solve(md.rho)
	md.energy = md.Solver.Energy(md.rho)
	_, md.ex, md.ey = md.Solver.Planes()
}

// mustModelWorkers builds a spectral-backed model or fails the test.
func mustModelWorkers(tb testing.TB, d *netlist.Design, m, workers int) *Model {
	tb.Helper()
	md, err := NewModelWorkers(d, m, workers)
	if err != nil {
		tb.Fatalf("NewModelWorkers(m=%d, workers=%d): %v", m, workers, err)
	}
	return md
}

// mustPoissonSolver builds a float64 spectral solver or fails the test.
func mustPoissonSolver(tb testing.TB, m, workers int) *poisson.Solver {
	tb.Helper()
	s, err := poisson.NewSolverWorkers(m, workers)
	if err != nil {
		tb.Fatalf("NewSolverWorkers(m=%d, workers=%d): %v", m, workers, err)
	}
	return s
}

// serialGradient reproduces the seed's single-goroutine Gradient loop.
func serialGradient(md *Model, idx []int, grad []float64) {
	n := len(idx)
	g := md.Grid
	for k, ci := range idx {
		c := &md.d.Cells[ci]
		fx, fy := md.forceOn(c)
		grad[k] = -2 * fx / g.BinW
		grad[k+n] = -2 * fy / g.BinH
	}
}

// TestRefreshGradientParallelEquivalence asserts bitwise-identical
// charge, energy, overflow and gradient for Workers in {1, 2, 7,
// NumCPU} against the seed serial implementation.
func TestRefreshGradientParallelEquivalence(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "dens-par", NumCells: 1200, NumMovableMacros: 4})
	idx := d.Movable()
	const m = 64 // >= 64 so the Poisson pool actually fans out

	ref := mustModelWorkers(t, d, m, 1)
	serialRefresh(ref, idx)
	refGrad := make([]float64, 2*len(idx))
	serialGradient(ref, idx, refGrad)

	counts := []int{1, 2, 7, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		counts = append(counts, 4)
	}
	grad := make([]float64, 2*len(idx))
	for _, workers := range counts {
		md := mustModelWorkers(t, d, m, workers)
		md.Refresh(idx)
		if math.Float64bits(md.Energy()) != math.Float64bits(ref.Energy()) {
			t.Fatalf("workers=%d: energy %v != serial %v", workers, md.Energy(), ref.Energy())
		}
		if math.Float64bits(md.Overflow(1)) != math.Float64bits(ref.Overflow(1)) {
			t.Fatalf("workers=%d: overflow differs", workers)
		}
		for b := range md.rho {
			if math.Float64bits(md.rho[b]) != math.Float64bits(ref.rho[b]) {
				t.Fatalf("workers=%d: rho[%d] = %v, serial %v", workers, b, md.rho[b], ref.rho[b])
			}
		}
		md.Gradient(idx, grad)
		for i := range grad {
			if math.Float64bits(grad[i]) != math.Float64bits(refGrad[i]) {
				t.Fatalf("workers=%d: grad[%d] = %v, serial %v", workers, i, grad[i], refGrad[i])
			}
		}
	}
}

// TestGradientFiniteDifferenceParallel verifies the sharded gradient
// against central differences of the energy; under -race it exercises
// the rasterize/solve/force pipeline's write ownership.
func TestGradientFiniteDifferenceParallel(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "dens-fd", NumCells: 120})
	idx := d.Movable()
	md := mustModelWorkers(t, d, 64, 4)
	md.Refresh(idx)
	n := len(idx)
	grad := make([]float64, 2*n)
	md.Gradient(idx, grad)

	v := d.Positions(idx)
	h := 1e-4 * md.Grid.BinW
	for _, k := range []int{0, n / 2, n - 1, n + 1, 2*n - 1} {
		orig := v[k]
		v[k] = orig + h
		d.SetPositions(idx, v)
		md.Refresh(idx)
		up := md.Energy()
		v[k] = orig - h
		d.SetPositions(idx, v)
		md.Refresh(idx)
		dn := md.Energy()
		v[k] = orig
		d.SetPositions(idx, v)
		md.Refresh(idx)
		fd := (up - dn) / (2 * h)
		// The analytic gradient differentiates the field with footprints
		// frozen; FD re-rasterizes, so agreement is approximate.
		scale := math.Max(1, math.Abs(fd))
		if diff := math.Abs(fd - grad[k]); diff > 0.2*scale {
			t.Errorf("grad[%d] = %v, finite difference %v", k, grad[k], fd)
		}
	}
}

// TestPoissonWorkersEquivalence asserts the spectral solve is
// bitwise-identical across worker counts.
func TestPoissonWorkersEquivalence(t *testing.T) {
	const m = 64
	rho := make([]float64, m*m)
	for i := range rho {
		rho[i] = math.Sin(float64(3 * i)) // deterministic, zero-ish mean
	}
	ref := mustPoissonSolver(t, m, 1)
	ref.Solve(append([]float64(nil), rho...))
	for _, workers := range []int{2, 7, runtime.NumCPU() + 2} {
		s := mustPoissonSolver(t, m, workers)
		s.Solve(append([]float64(nil), rho...))
		for b := range ref.Psi {
			if math.Float64bits(s.Psi[b]) != math.Float64bits(ref.Psi[b]) ||
				math.Float64bits(s.Ex[b]) != math.Float64bits(ref.Ex[b]) ||
				math.Float64bits(s.Ey[b]) != math.Float64bits(ref.Ey[b]) {
				t.Fatalf("workers=%d: plane mismatch at bin %d", workers, b)
			}
		}
	}
}

// BenchmarkDensityGradient measures one Refresh+Gradient pass (the
// eDensity rasterize/solve/force kernel) on a >=10K-cell synthetic
// design across worker counts (acceptance: >=2x at 4+ cores vs
// workers-1 on multi-core hardware).
func BenchmarkDensityGradient(b *testing.B) {
	d := synth.Generate(synth.Spec{Name: "dens-bench", NumCells: 12000, NumMovableMacros: 8})
	idx := d.Movable()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			md := mustModelWorkers(b, d, 128, workers)
			grad := make([]float64, 2*len(idx))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				md.Refresh(idx)
				md.Gradient(idx, grad)
			}
		})
	}
}
