package density

import (
	"math"
	"math/rand"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/netlist"
)

func newDesign(n int, seed int64) (*netlist.Design, []int) {
	d := netlist.New("t", geom.Rect{Lx: 0, Ly: 0, Hx: 64, Hy: 64})
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		idx = append(idx, d.AddCell(netlist.Cell{
			W: 2 + rng.Float64()*3, H: 2,
			X: 16 + rng.Float64()*32, Y: 16 + rng.Float64()*32,
		}))
	}
	return d, idx
}

// mustModel builds a spectral-backed all-core model or fails the test.
func mustModel(tb testing.TB, d *netlist.Design, m int) *Model {
	tb.Helper()
	md, err := NewModel(d, m)
	if err != nil {
		tb.Fatalf("NewModel(m=%d): %v", m, err)
	}
	return md
}

func TestEnergyPositiveWhenClustered(t *testing.T) {
	d, idx := newDesign(40, 1)
	md := mustModel(t, d, 32)
	md.Refresh(idx)
	if md.Energy() <= 0 {
		t.Errorf("clustered energy = %v, want > 0", md.Energy())
	}
}

func TestEnergyDropsWhenSpread(t *testing.T) {
	d, idx := newDesign(64, 2)
	md := mustModel(t, d, 32)
	md.Refresh(idx)
	clustered := md.Energy()
	// Spread the same cells uniformly over the region.
	k := 0
	for _, ci := range idx {
		d.Cells[ci].X = 4 + float64(k%8)*8
		d.Cells[ci].Y = 4 + float64(k/8)*8
		k++
	}
	md.Refresh(idx)
	if spread := md.Energy(); spread >= clustered {
		t.Errorf("spread energy %v >= clustered %v", spread, clustered)
	}
}

func TestGradientPushesApart(t *testing.T) {
	d := netlist.New("pair", geom.Rect{Hx: 64, Hy: 64})
	a := d.AddCell(netlist.Cell{W: 8, H: 8, X: 30, Y: 32})
	b := d.AddCell(netlist.Cell{W: 8, H: 8, X: 34, Y: 32}) // overlapping to the right
	idx := []int{a, b}
	md := mustModel(t, d, 32)
	md.Refresh(idx)
	grad := make([]float64, 4)
	md.Gradient(idx, grad)
	// Descending -grad must separate them: a moves left, b moves right.
	if grad[0] <= 0 {
		t.Errorf("dN/dx_a = %v, want > 0 (a pushed left)", grad[0])
	}
	if grad[1] >= 0 {
		t.Errorf("dN/dx_b = %v, want < 0 (b pushed right)", grad[1])
	}
}

func TestGradientMatchesNumericDerivative(t *testing.T) {
	d, idx := newDesign(30, 3)
	md := mustModel(t, d, 32)
	md.Refresh(idx)
	grad := make([]float64, 2*len(idx))
	md.Gradient(idx, grad)

	// Numeric derivatives via central differences. The analytic gradient
	// samples the field at bin granularity, so per-cell values carry an
	// O(1/footprint-bins) discretization error; require agreement to 40%
	// per cell plus high cosine similarity over the whole vector.
	h := 0.05
	numeric := make([]float64, 2*len(idx))
	for k, ci := range idx {
		x0 := d.Cells[ci].X
		d.Cells[ci].X = x0 + h
		md.Refresh(idx)
		ep := md.Energy()
		d.Cells[ci].X = x0 - h
		md.Refresh(idx)
		em := md.Energy()
		d.Cells[ci].X = x0
		numeric[k] = (ep - em) / (2 * h)

		y0 := d.Cells[ci].Y
		d.Cells[ci].Y = y0 + h
		md.Refresh(idx)
		ep = md.Energy()
		d.Cells[ci].Y = y0 - h
		md.Refresh(idx)
		em = md.Energy()
		d.Cells[ci].Y = y0
		numeric[k+len(idx)] = (ep - em) / (2 * h)
	}
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range grad {
		dot += grad[i] * numeric[i]
		na += grad[i] * grad[i]
		nb += numeric[i] * numeric[i]
	}
	cos := dot / math.Sqrt(na*nb)
	if cos < 0.95 {
		t.Fatalf("gradient cosine similarity %v, want >= 0.95", cos)
	}
	scale := math.Sqrt(nb / float64(len(numeric)))
	for _, k := range []int{0, 7, 19, len(idx) + 3, len(idx) + 11} {
		if math.Abs(numeric[k]-grad[k]) > 0.4*(math.Abs(numeric[k])+math.Abs(grad[k]))+0.05*scale {
			t.Errorf("component %d: numeric = %v, analytic = %v", k, numeric[k], grad[k])
		}
	}
}

func TestFixedCellsRepelMovable(t *testing.T) {
	d := netlist.New("fixed", geom.Rect{Hx: 64, Hy: 64})
	// Fixed macro on the left half; movable cell right at its edge.
	d.AddCell(netlist.Cell{W: 24, H: 24, X: 20, Y: 32, Kind: netlist.Macro, Fixed: true})
	c := d.AddCell(netlist.Cell{W: 4, H: 4, X: 33, Y: 32})
	idx := []int{c}
	md := mustModel(t, d, 32)
	md.Refresh(idx)
	grad := make([]float64, 2)
	md.Gradient(idx, grad)
	// Descent moves along -grad, so being pushed right (away from the
	// macro) means dN/dx < 0.
	if grad[0] >= 0 {
		t.Errorf("dN/dx = %v, want < 0 (movable pushed right, away from fixed macro)", grad[0])
	}
}

func TestFillersCountedInChargeNotOverflow(t *testing.T) {
	d := netlist.New("fill", geom.Rect{Hx: 64, Hy: 64})
	var idx []int
	// Pile both a movable cell and fillers in the center.
	idx = append(idx, d.AddCell(netlist.Cell{W: 6, H: 6, X: 32, Y: 32}))
	for i := 0; i < 10; i++ {
		idx = append(idx, d.AddCell(netlist.Cell{
			W: 6, H: 6, X: 32, Y: 32, Kind: netlist.Filler,
		}))
	}
	md := mustModel(t, d, 32)
	md.Refresh(idx)
	// Overflow sees only the single movable cell: one 6x6 cell in a
	// 64x64 region cannot overflow target density 1.0 by much.
	if tau := md.Overflow(1.0); tau > 0.35 {
		t.Errorf("overflow with fillers = %v, want small", tau)
	}
	// But the charge (and so the energy) must include the fillers.
	if md.Energy() <= 0 {
		t.Error("stacked fillers produced no positive energy")
	}
	if got := md.Grid.TotalFill(); math.Abs(got-360) > 1e-6 {
		t.Errorf("filler charge = %v, want 360", got)
	}
}

func TestRefreshIsIdempotent(t *testing.T) {
	d, idx := newDesign(20, 5)
	md := mustModel(t, d, 32)
	md.Refresh(idx)
	e1 := md.Energy()
	md.Refresh(idx)
	if e2 := md.Energy(); e1 != e2 {
		t.Errorf("Refresh not idempotent: %v then %v", e1, e2)
	}
}

func TestGradientZeroAtUniform(t *testing.T) {
	d := netlist.New("uni", geom.Rect{Hx: 64, Hy: 64})
	var idx []int
	// Perfectly uniform tiling: 8x8 cells of 8x8 each.
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			idx = append(idx, d.AddCell(netlist.Cell{
				W: 8, H: 8, X: 4 + 8*float64(i), Y: 4 + 8*float64(j),
			}))
		}
	}
	md := mustModel(t, d, 16)
	md.Refresh(idx)
	grad := make([]float64, 2*len(idx))
	md.Gradient(idx, grad)
	maxG := 0.0
	for _, g := range grad {
		if a := math.Abs(g); a > maxG {
			maxG = a
		}
	}
	// Compare against the gradient scale of a clustered layout.
	for _, ci := range idx {
		d.Cells[ci].X = 28 + 2*rand.New(rand.NewSource(1)).Float64()
		d.Cells[ci].Y = 32
	}
	md.Refresh(idx)
	gc := make([]float64, 2*len(idx))
	md.Gradient(idx, gc)
	maxC := 0.0
	for _, g := range gc {
		if a := math.Abs(g); a > maxC {
			maxC = a
		}
	}
	if maxG > 0.05*maxC {
		t.Errorf("uniform layout gradient %v not << clustered gradient %v", maxG, maxC)
	}
}

func BenchmarkRefreshAndGradient(b *testing.B) {
	d, idx := newDesign(2000, 9)
	md := mustModel(b, d, 64)
	grad := make([]float64, 2*len(idx))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		md.Refresh(idx)
		md.Gradient(idx, grad)
	}
}
