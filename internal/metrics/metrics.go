// Package metrics computes the evaluation quantities of the paper's
// tables with the official contest semantics: HPWL, density overflow
// tau, the ISPD 2006 scaled HPWL penalty (sHPWL = HPWL * (1 + 0.01 *
// tau_avg)), and total object overlap.
package metrics

import (
	"eplace/internal/grid"
	"eplace/internal/netlist"
)

// Report is the per-circuit scorecard used by the experiment tables.
type Report struct {
	Circuit    string
	Placer     string
	HPWL       float64
	ScaledHPWL float64
	// Overflow is the total density overflow tau in [0, 1].
	Overflow float64
	// OverflowPerBin is the ISPD 2006 per-bin average in percent.
	OverflowPerBin float64
	Overlap        float64
	Seconds        float64
	Legal          bool
	Failed         bool
}

// rasterize fills a grid from the design's current movable and fixed
// cells (fillers excluded: they are placer-internal).
func rasterize(d *netlist.Design, m int) *grid.Grid {
	g := grid.New(d.Region, m)
	for i := range d.Cells {
		c := &d.Cells[i]
		switch {
		case c.Kind == netlist.Filler:
		case c.Fixed:
			g.AddFixed(c.Rect())
		default:
			g.AddMovable(c.X, c.Y, c.W, c.H)
		}
	}
	return g
}

// Overflow returns the density overflow tau of the current layout
// against the design's target density, on an m x m grid (0 = auto).
func Overflow(d *netlist.Design, m int) float64 {
	if m == 0 {
		m = grid.ChooseM(len(d.Cells))
	}
	return rasterize(d, m).Overflow(d.TargetDensity)
}

// ScaledHPWL returns the ISPD 2006 contest score
// sHPWL = HPWL * (1 + 0.01 * tau_avg), where tau_avg is the average
// per-bin percentage overflow against the benchmark target density.
func ScaledHPWL(d *netlist.Design, m int) float64 {
	if m == 0 {
		m = grid.ChooseM(len(d.Cells))
	}
	tauAvg := rasterize(d, m).OverflowPerBin(d.TargetDensity)
	return d.HPWL() * (1 + 0.01*tauAvg)
}

// Measure builds a full report for the current layout.
func Measure(circuit, placer string, d *netlist.Design, m int, seconds float64, legal bool) Report {
	if m == 0 {
		m = grid.ChooseM(len(d.Cells))
	}
	g := rasterize(d, m)
	return Report{
		Circuit:        circuit,
		Placer:         placer,
		HPWL:           d.HPWL(),
		ScaledHPWL:     d.HPWL() * (1 + 0.01*g.OverflowPerBin(d.TargetDensity)),
		Overflow:       g.Overflow(d.TargetDensity),
		OverflowPerBin: g.OverflowPerBin(d.TargetDensity),
		Overlap:        d.TotalOverlap(d.Movable()),
		Seconds:        seconds,
		Legal:          legal,
	}
}
