package metrics

import (
	"math"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/netlist"
)

func uniformDesign() *netlist.Design {
	d := netlist.New("u", geom.Rect{Hx: 64, Hy: 64})
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			d.AddCell(netlist.Cell{W: 8, H: 8, X: 4 + 8*float64(i), Y: 4 + 8*float64(j)})
		}
	}
	return d
}

func TestOverflowUniformZero(t *testing.T) {
	d := uniformDesign()
	if tau := Overflow(d, 16); tau > 1e-9 {
		t.Errorf("uniform overflow = %v", tau)
	}
}

func TestOverflowStackedHigh(t *testing.T) {
	d := netlist.New("s", geom.Rect{Hx: 64, Hy: 64})
	for k := 0; k < 16; k++ {
		d.AddCell(netlist.Cell{W: 16, H: 16, X: 32, Y: 32})
	}
	if tau := Overflow(d, 16); tau < 0.7 {
		t.Errorf("stacked overflow = %v, want high", tau)
	}
}

func TestScaledHPWLPenalty(t *testing.T) {
	d := uniformDesign()
	// A 2-pin net across the region gives nonzero HPWL.
	n := d.AddNet("n", 1)
	d.Connect(0, n, 0, 0)
	d.Connect(63, n, 0, 0)
	hpwl := d.HPWL()
	// Uniform at density 1.0: no penalty.
	if s := ScaledHPWL(d, 16); math.Abs(s-hpwl) > 1e-9 {
		t.Errorf("uniform sHPWL = %v, HPWL = %v", s, hpwl)
	}
	// Against a tight target density the same layout is penalized.
	d.TargetDensity = 0.5
	if s := ScaledHPWL(d, 16); s <= hpwl {
		t.Errorf("sHPWL %v not above HPWL %v at rhoT=0.5", s, hpwl)
	}
}

func TestMeasureFields(t *testing.T) {
	d := uniformDesign()
	r := Measure("circ", "ePlace", d, 16, 1.5, true)
	if r.Circuit != "circ" || r.Placer != "ePlace" || !r.Legal || r.Seconds != 1.5 {
		t.Errorf("report = %+v", r)
	}
	if r.Overflow > 1e-9 || r.Overlap > 1e-9 {
		t.Errorf("uniform layout: %+v", r)
	}
	if r.ScaledHPWL < r.HPWL {
		t.Errorf("sHPWL %v below HPWL %v", r.ScaledHPWL, r.HPWL)
	}
}

func TestFillersExcluded(t *testing.T) {
	d := netlist.New("f", geom.Rect{Hx: 64, Hy: 64})
	d.AddCell(netlist.Cell{W: 8, H: 8, X: 32, Y: 32})
	for k := 0; k < 20; k++ {
		d.AddCell(netlist.Cell{W: 8, H: 8, X: 32, Y: 32, Kind: netlist.Filler})
	}
	if tau := Overflow(d, 16); tau > 0.1 {
		t.Errorf("fillers counted in overflow: %v", tau)
	}
}
