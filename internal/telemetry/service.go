package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
)

// LatencyPercentiles summarizes one latency distribution in seconds,
// by nearest-rank percentile.
type LatencyPercentiles struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
	Max   float64 `json:"max_seconds"`
}

// Percentiles computes nearest-rank percentiles over samples (seconds).
// The input is not modified.
func Percentiles(samples []float64) LatencyPercentiles {
	if len(samples) == 0 {
		return LatencyPercentiles{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := func(p float64) float64 {
		i := int(math.Ceil(p/100*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return LatencyPercentiles{
		Count: len(s),
		P50:   rank(50),
		P90:   rank(90),
		P99:   rank(99),
		Max:   s[len(s)-1],
	}
}

// ServiceReport is the machine-readable scorecard of one placement-
// service load run (BENCH_service.json): scheduler configuration, the
// job census, preemption/resume activity, the bitwise-resume digest
// verification tally, and throughput/latency percentiles.
type ServiceReport struct {
	Name       string `json:"name"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	MaxConcurrent int `json:"max_concurrent"`
	WorkersPerJob int `json:"workers_per_job"`

	Jobs     int `json:"jobs"`
	Done     int `json:"done"`
	Canceled int `json:"canceled"`
	Failed   int `json:"failed"`
	// Preemptions counts scheduler preemptions; Resumes counts run
	// segments continued from a mid-flow checkpoint.
	Preemptions int `json:"preemptions"`
	Resumes     int `json:"resumes"`

	// DigestChecks preempted-and-resumed jobs were re-run without
	// interruption and their golden-trace digests compared;
	// DigestMatches of them were bitwise-identical. The service's
	// determinism contract holds iff these are equal.
	DigestChecks  int `json:"digest_checks"`
	DigestMatches int `json:"digest_matches"`

	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// JobsPerSecond is completed (done) jobs over elapsed wall time.
	JobsPerSecond float64 `json:"jobs_per_second"`

	// Wait is submit -> first start; Run is placement wall time summed
	// over a job's segments; Turnaround is submit -> terminal state.
	Wait       LatencyPercentiles `json:"wait"`
	Run        LatencyPercentiles `json:"run"`
	Turnaround LatencyPercentiles `json:"turnaround"`
}

// NewServiceReport creates a report stamped with the runtime
// environment, mirroring NewBenchReport.
func NewServiceReport(name string) *ServiceReport {
	return &ServiceReport{
		Name:       name,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Write emits the report as indented JSON.
func (r *ServiceReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *ServiceReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadServiceReport decodes a report written by Write.
func ReadServiceReport(r io.Reader) (*ServiceReport, error) {
	var out ServiceReport
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
