package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestStatusEndpoint(t *testing.T) {
	ring := NewRingSink(16)
	r := New(ring)
	r.SetWorkers(3)
	r.AddSpanTime("mGP", "density", time.Second)
	r.Count("engine/grad_evals", 12)
	r.Sample(Sample{Stage: "mGP", Iteration: 5, HPWL: 1234, Overflow: 0.42})

	srv, err := ServeStatus("127.0.0.1:0", r, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	for _, path := range []string{"/", "/status"} {
		code, body := getBody(t, base+path)
		if code != http.StatusOK {
			t.Fatalf("GET %s -> %d", path, code)
		}
		var snap Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("decode %s: %v\n%s", path, err, body)
		}
		if snap.Stage != "mGP" || snap.Iteration != 5 || snap.HPWL != 1234 ||
			snap.Overflow != 0.42 || snap.Workers != 3 || snap.Samples != 1 {
			t.Errorf("%s snapshot = %+v", path, snap)
		}
		if len(snap.Spans) != 1 || snap.Spans[0].Kernel != "density" {
			t.Errorf("%s spans = %+v", path, snap.Spans)
		}
		if len(snap.Counters) != 1 || snap.Counters[0].Value != 12 {
			t.Errorf("%s counters = %+v", path, snap.Counters)
		}
	}

	code, body := getBody(t, base+"/samples")
	if code != http.StatusOK {
		t.Fatalf("GET /samples -> %d", code)
	}
	var samples []Sample
	if err := json.Unmarshal([]byte(body), &samples); err != nil {
		t.Fatalf("decode samples: %v", err)
	}
	if len(samples) != 1 || samples[0].HPWL != 1234 {
		t.Errorf("samples = %+v", samples)
	}

	if code, body = getBody(t, base+"/debug/vars"); code != http.StatusOK ||
		!strings.Contains(body, `"eplace"`) {
		t.Errorf("expvar -> %d, eplace var present=%v", code, strings.Contains(body, `"eplace"`))
	}
	if code, _ = getBody(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof index -> %d", code)
	}
	if code, _ = getBody(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof cmdline -> %d", code)
	}
	if code, _ = getBody(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path -> %d, want 404", code)
	}
}

func TestServeStatusBadAddr(t *testing.T) {
	if _, err := ServeStatus("256.256.256.256:99999", New(), nil); err == nil {
		t.Error("expected error for bad address")
	}
}

func TestStatusServesLatestRecorder(t *testing.T) {
	// Publishing expvar twice must not panic, and the var must follow
	// the most recent recorder.
	r1 := New()
	r1.Sample(Sample{Stage: "old"})
	s1, err := ServeStatus("127.0.0.1:0", r1, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	r2 := New()
	r2.Sample(Sample{Stage: "new"})
	s2, err := ServeStatus("127.0.0.1:0", r2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, body := getBody(t, fmt.Sprintf("http://%s/debug/vars", s2.Addr()))
	if !strings.Contains(body, `"stage": "new"`) && !strings.Contains(body, `"stage":"new"`) {
		t.Errorf("expvar still serves old recorder:\n%s", body)
	}
}
