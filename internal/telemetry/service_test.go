package telemetry

import (
	"bytes"
	"testing"
)

func TestPercentiles(t *testing.T) {
	if got := Percentiles(nil); got.Count != 0 || got.Max != 0 {
		t.Errorf("empty input: %+v", got)
	}
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(100 - i) // unsorted on purpose
	}
	p := Percentiles(samples)
	if p.Count != 100 || p.P50 != 50 || p.P90 != 90 || p.P99 != 99 || p.Max != 100 {
		t.Errorf("percentiles over 1..100: %+v", p)
	}
	if samples[0] != 100 {
		t.Error("input was mutated")
	}
	one := Percentiles([]float64{3.5})
	if one.P50 != 3.5 || one.P99 != 3.5 || one.Max != 3.5 {
		t.Errorf("single sample: %+v", one)
	}
}

func TestServiceReportRoundTrip(t *testing.T) {
	rep := NewServiceReport("test")
	rep.Jobs = 10
	rep.Done = 8
	rep.Preemptions = 2
	rep.DigestChecks = 2
	rep.DigestMatches = 2
	rep.Wait = Percentiles([]float64{0.1, 0.2, 0.3})
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadServiceReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Jobs != 10 || got.Done != 8 || got.Preemptions != 2 || got.Wait.Count != 3 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if got.GoVersion == "" || got.CPUs == 0 {
		t.Errorf("environment stamp missing: %+v", got)
	}
}
