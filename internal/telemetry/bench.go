package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"sort"
)

// StageSeconds is one stage's wall time in a benchmark record, kept as
// an ordered list so no stage can be silently dropped from reports.
type StageSeconds struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// BenchRecord is the machine-readable scorecard of one benchmark run:
// quality, iteration counts, and the stage/kernel timing breakdown
// (the paper's Tables I-III plus Fig. 7 in one JSON object).
type BenchRecord struct {
	Benchmark  string  `json:"benchmark"`
	Cells      int     `json:"cells"`
	Nets       int     `json:"nets"`
	Pins       int     `json:"pins"`
	HPWL       float64 `json:"hpwl"`
	ScaledHPWL float64 `json:"scaled_hpwl,omitempty"`
	Overflow   float64 `json:"tau"`
	Legal      bool    `json:"legal"`
	Failed     bool    `json:"failed,omitempty"`
	Seconds    float64 `json:"seconds"`
	// Iterations maps GP stage name to iteration count.
	Iterations map[string]int `json:"iterations,omitempty"`
	// Stages lists per-stage wall times in execution order.
	Stages []StageSeconds `json:"stages,omitempty"`
	// Kernels maps "stage/kernel" span paths to aggregate seconds
	// (e.g. "mGP/density"), the Fig. 7 gradient breakdown.
	Kernels map[string]float64 `json:"kernels,omitempty"`
	// Digests lists the per-stage golden-trace hashes (GoldenTrace) in
	// execution order: two runs of the same benchmark are
	// bitwise-identical iff these match, so committed reports double as
	// determinism fixtures.
	Digests []StageDigest `json:"digests,omitempty"`
}

// KernelsFrom fills the record's Kernels map from a recorder's span
// aggregates, keeping only kernel-level spans.
func (b *BenchRecord) KernelsFrom(r *Recorder) {
	totals := r.SpanTotals()
	if len(totals) == 0 {
		return
	}
	if b.Kernels == nil {
		b.Kernels = map[string]float64{}
	}
	for _, st := range totals {
		if st.Kernel == "" {
			continue
		}
		b.Kernels[st.Stage+"/"+st.Kernel] += st.Seconds
	}
}

// MicroBench is one kernel microbenchmark measurement: a tight loop
// over a single hot kernel (a spectral transform, a Poisson solve),
// recorded alongside the full-flow records so kernel-level speedups
// show up in the committed report, not just in ad-hoc `go test -bench`
// runs.
type MicroBench struct {
	Name    string  `json:"name"`
	Ops     int     `json:"ops"`
	NsPerOp float64 `json:"ns_per_op"`
	// MaxRelErr is the measured max relative error of an approximate
	// kernel's output against its float64 reference (the precision
	// column of the Poisson backend study); 0 for exact kernels.
	MaxRelErr float64 `json:"max_rel_err,omitempty"`
}

// BenchReport is the full BENCH_eplace.json payload: environment
// fingerprint plus one record per benchmark. Workers is the resolved
// gradient-kernel worker count and GOMAXPROCS the scheduler limit the
// run executed under — both are needed to compare reports across
// machines (CPUs alone says nothing about how wide the run actually
// was).
type BenchReport struct {
	Name       string        `json:"name"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	CPUs       int           `json:"cpus"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Workers    int           `json:"workers,omitempty"`
	Scale      float64       `json:"scale,omitempty"`
	Micro      []MicroBench  `json:"microbench,omitempty"`
	Records    []BenchRecord `json:"records"`
}

// NewBenchReport creates a report stamped with the runtime environment.
func NewBenchReport(name string) *BenchReport {
	return &BenchReport{
		Name:       name,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Add appends a record.
func (b *BenchReport) Add(rec BenchRecord) { b.Records = append(b.Records, rec) }

// Sort orders records by benchmark name for stable diffs.
func (b *BenchReport) Sort() {
	sort.SliceStable(b.Records, func(i, j int) bool {
		return b.Records[i].Benchmark < b.Records[j].Benchmark
	})
}

// Write emits the report as indented JSON.
func (b *BenchReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteFile writes the report to path.
func (b *BenchReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBenchReport decodes a report written by Write.
func ReadBenchReport(r io.Reader) (*BenchReport, error) {
	var b BenchReport
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, err
	}
	return &b, nil
}
