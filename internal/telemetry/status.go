package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// The expvar registry is process-global and panics on duplicate
// publication, so the "eplace" var is published once and reads through
// an atomic pointer to whichever recorder the latest status handler
// serves.
var (
	expvarOnce sync.Once
	expvarRec  atomic.Pointer[Recorder]
)

func publishExpvar(r *Recorder) {
	expvarRec.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("eplace", expvar.Func(func() any {
			return expvarRec.Load().Snapshot()
		}))
	})
}

// NewStatusMux builds the status endpoint served by ServeStatus:
//
//	/ and /status   JSON Snapshot of the recorder (live stage,
//	                iteration, HPWL, tau, worker count, spans, counters)
//	/samples        JSON array of recent samples (ring, may be empty)
//	/debug/vars     expvar, including the "eplace" snapshot var
//	/debug/pprof/   the standard pprof profile index
//
// ring may be nil; /samples then serves an empty array. Everything is
// stdlib only.
func NewStatusMux(r *Recorder, ring *RingSink) *http.ServeMux {
	publishExpvar(r)
	mux := http.NewServeMux()
	status := func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	}
	mux.HandleFunc("/status", status)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		status(w, req)
	})
	mux.HandleFunc("/samples", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var samples []Sample
		if ring != nil {
			samples = ring.Samples()
		}
		if samples == nil {
			samples = []Sample{}
		}
		json.NewEncoder(w).Encode(samples)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StatusServer is a running status endpoint.
type StatusServer struct {
	ln  net.Listener
	srv *http.Server

	// ShutdownTimeout bounds how long Close waits for in-flight
	// requests to finish before dropping them (default 2s).
	ShutdownTimeout time.Duration
}

// ServeStatus starts the status endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0") and serves it in a background goroutine until Close.
func ServeStatus(addr string, r *Recorder, ring *RingSink) (*StatusServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: status listen %s: %w", addr, err)
	}
	s := &StatusServer{ln: ln, srv: &http.Server{Handler: NewStatusMux(r, ring)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (resolves ":0" ports).
func (s *StatusServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server gracefully: it stops accepting connections
// and waits up to ShutdownTimeout for in-flight /status and /samples
// responses to finish (http.Server.Close would sever them mid-body),
// then falls back to a hard close for any straggler.
func (s *StatusServer) Close() error {
	timeout := s.ShutdownTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
