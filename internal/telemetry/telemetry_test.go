package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"eplace/internal/parallel"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Active() || r.Emitting() {
		t.Error("nil recorder reports active")
	}
	r.Sample(Sample{Stage: "mGP"})
	r.AddSpanTime("mGP", "density", time.Second)
	r.EmitSpan("mGP", "", time.Second)
	r.Count("x", 1)
	r.SetWorkers(4)
	r.SetStage("mGP")
	if r.SpanTime("mGP", "density") != 0 || r.Samples() != 0 {
		t.Error("nil recorder retained data")
	}
	if got := r.Snapshot(); got.Samples != 0 {
		t.Errorf("nil snapshot = %+v", got)
	}
	if r.SpanTotals() != nil || r.Counters() != nil {
		t.Error("nil recorder returned aggregates")
	}
	if err := r.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

// The disabled (nil) recorder must be a zero-allocation no-op on every
// hot-path method (ISSUE acceptance criterion).
func TestNoopRecorderZeroAllocs(t *testing.T) {
	var r *Recorder
	s := Sample{Stage: "mGP", Iteration: 3, HPWL: 1e6}
	if n := testing.AllocsPerRun(1000, func() { r.Sample(s) }); n != 0 {
		t.Errorf("nil Sample allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() { r.AddSpanTime("mGP", "density", 1) }); n != 0 {
		t.Errorf("nil AddSpanTime allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() { r.Count("grad_evals", 1) }); n != 0 {
		t.Errorf("nil Count allocates %v per call", n)
	}
}

func BenchmarkNoopRecorderSample(b *testing.B) {
	var r *Recorder
	s := Sample{Stage: "mGP", Iteration: 3, HPWL: 1e6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Sample(s)
	}
}

func BenchmarkRecorderSampleNoSinks(b *testing.B) {
	r := New()
	s := Sample{Stage: "mGP", HPWL: 1e6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Iteration = i
		r.Sample(s)
	}
}

// Concurrent use from sharded kernels: every worker of the PR-1 pool
// hammers samples, span aggregates and counters while another
// goroutine reads snapshots. Run under -race in CI.
func TestConcurrentRecorderFromShardedKernels(t *testing.T) {
	ring := NewRingSink(64)
	r := New(ring)
	const n = 4096
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
				r.SpanTotals()
				ring.Samples()
			}
		}
	}()
	parallel.For(8, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			r.AddSpanTime("mGP", "density", time.Nanosecond)
			r.AddSpanTime("mGP", "wirelength", 2*time.Nanosecond)
			r.Count("engine/grad_evals", 1)
			r.Sample(Sample{Stage: "mGP", Iteration: i, HPWL: float64(i)})
		}
	})
	close(done)
	wg.Wait()

	if got := r.Samples(); got != n {
		t.Errorf("samples = %d, want %d", got, n)
	}
	if got := r.SpanTime("mGP", "density"); got != n*time.Nanosecond {
		t.Errorf("density span = %v, want %v", got, n*time.Nanosecond)
	}
	if got := r.SpanTime("mGP", "wirelength"); got != 2*n*time.Nanosecond {
		t.Errorf("wirelength span = %v", got)
	}
	cs := r.Counters()
	if len(cs) != 1 || cs[0].Value != n {
		t.Errorf("counters = %+v", cs)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := New(NewJSONLSink(&buf))
	in := []Sample{
		{Stage: "mGP", Iteration: 0, HPWL: 123.5, Overflow: 0.8, Energy: 2.5,
			Lambda: 1e-4, Gamma: 9, Alpha: 0.5, Backtracks: 1, Steps: 1,
			GradWL: 10, GradDensity: 20, WirelengthTime: 1500, DensityTime: 2500},
		{Stage: "cGP", Iteration: 1, HPWL: 99, Overflow: 0.1, Restarts: 2, Overlap: 3.5},
	}
	for _, s := range in {
		r.Sample(s)
	}
	r.EmitSpan("mGP", "", 5*time.Millisecond)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	for i, want := range in {
		if events[i].Type != "sample" || events[i].Sample == nil {
			t.Fatalf("event %d = %+v, want sample", i, events[i])
		}
		if !reflect.DeepEqual(*events[i].Sample, want) {
			t.Errorf("sample %d round trip:\n got %+v\nwant %+v", i, *events[i].Sample, want)
		}
	}
	sp := events[2]
	if sp.Type != "span" || sp.Span == nil {
		t.Fatalf("event 2 = %+v, want span", sp)
	}
	if sp.Span.Stage != "mGP" || sp.Span.Dur != 5*time.Millisecond {
		t.Errorf("span = %+v", *sp.Span)
	}
	if sp.Span.Path() != "mGP" {
		t.Errorf("span path = %q", sp.Span.Path())
	}
}

func TestCSVSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf)
	s.Sample(Sample{Stage: "mGP", Iteration: 0, HPWL: 100, Overflow: 0.9})
	s.Span(SpanRecord{Stage: "mGP"}) // ignored
	s.Sample(Sample{Stage: "cGP", Iteration: 1, HPWL: 90, Overflow: 0.2, Backtracks: 2})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != CSVHeader {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "mGP,0,100") || !strings.HasPrefix(lines[2], "cGP,1,90") {
		t.Errorf("rows:\n%s", buf.String())
	}

	// An empty stream still yields the header.
	buf.Reset()
	if err := NewCSVSink(&buf).Close(); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != CSVHeader {
		t.Errorf("empty CSV = %q", buf.String())
	}
}

func TestRingSinkBounded(t *testing.T) {
	ring := NewRingSink(4)
	for i := 0; i < 10; i++ {
		ring.Sample(Sample{Iteration: i})
		ring.Span(SpanRecord{Stage: "mGP", Dur: time.Duration(i)})
	}
	got := ring.Samples()
	if len(got) != 4 {
		t.Fatalf("retained %d samples, want 4", len(got))
	}
	for i, s := range got {
		if s.Iteration != 6+i {
			t.Errorf("sample %d iteration = %d, want %d (oldest first)", i, s.Iteration, 6+i)
		}
	}
	spans := ring.Spans()
	if len(spans) != 4 || spans[0].Dur != 6 || spans[3].Dur != 9 {
		t.Errorf("spans = %+v", spans)
	}
}

func TestMultiSinkFanout(t *testing.T) {
	a, b := NewRingSink(8), NewRingSink(8)
	r := New(Multi(a, b))
	r.Sample(Sample{Stage: "mGP", Iteration: 7})
	r.EmitSpan("mGP", "density", time.Second)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	for i, ring := range []*RingSink{a, b} {
		if n := len(ring.Samples()); n != 1 {
			t.Errorf("sink %d got %d samples", i, n)
		}
		if n := len(ring.Spans()); n != 1 {
			t.Errorf("sink %d got %d spans", i, n)
		}
	}
}

func TestSpanAggregationOrderAndSnapshot(t *testing.T) {
	r := New()
	r.SetWorkers(8)
	r.EmitSpan("mIP", "", 2*time.Second)
	r.AddSpanTime("mGP", "wirelength", time.Second)
	r.AddSpanTime("mGP", "density", 3*time.Second)
	r.AddSpanTime("mGP", "density", time.Second)
	r.Sample(Sample{Stage: "mGP", Iteration: 41, HPWL: 5, Overflow: 0.3, Lambda: 2})

	totals := r.SpanTotals()
	want := []SpanTotal{
		{Stage: "mIP", Seconds: 2, Count: 1},
		{Stage: "mGP", Kernel: "wirelength", Seconds: 1, Count: 1},
		{Stage: "mGP", Kernel: "density", Seconds: 4, Count: 2},
	}
	if !reflect.DeepEqual(totals, want) {
		t.Errorf("totals:\n got %+v\nwant %+v", totals, want)
	}
	if got := r.SpanTime("mGP", "density"); got != 4*time.Second {
		t.Errorf("SpanTime = %v", got)
	}

	snap := r.Snapshot()
	if snap.Stage != "mGP" || snap.Iteration != 41 || snap.HPWL != 5 ||
		snap.Overflow != 0.3 || snap.Lambda != 2 || snap.Workers != 8 || snap.Samples != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	if !reflect.DeepEqual(snap.Spans, want) {
		t.Errorf("snapshot spans = %+v", snap.Spans)
	}
}

func TestWriteSamplesCSVDoesNotCloseWriter(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSamplesCSV(&buf, []Sample{{Stage: "mGP", HPWL: 1}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mGP,0,1") {
		t.Errorf("csv = %q", buf.String())
	}
}
