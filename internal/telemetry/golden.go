package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// GoldenTrace is the determinism harness of the flow: a rolling FNV-1a
// (64-bit) hash per stage over the exact bit patterns of every
// iteration's state (solution positions, cost, penalty lambda). Two
// runs of the same flow are bitwise-identical if and only if every
// stage digest matches, so a digest mismatch pinpoints the first stage
// where nondeterminism crept in — far sharper than comparing a final
// HPWL that two different trajectories can coincidentally share, and
// far less flaky than chasing a 0.1% wirelength flutter.
//
// Digest definition (stable across releases; tests and CI depend on
// it): each stage starts from the FNV-1a 64-bit offset basis. One
// Absorb(stage, iter, pos, cost, lambda) call feeds, in order, the
// iteration index as a uint64, the IEEE-754 bit pattern of every
// position value (in slice order), then the bit patterns of cost and
// lambda — every uint64 absorbed little-endian byte by byte through
// the standard FNV-1a update (xor byte, multiply by 1099511628211).
//
// A nil *GoldenTrace is valid and turns every method into a no-op, the
// same convention as Recorder: instrumented code never branches on
// "digests on?".
//
// Concurrency: all methods are safe for concurrent use. Within one
// stage, callers absorb iterations from a single goroutine (the
// optimizer loop is serial), which is what makes the rolling hash
// well-defined.
type GoldenTrace struct {
	mu     sync.Mutex
	stages map[string]*stageHash
	order  []string
}

type stageHash struct {
	hash  uint64
	iters int
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewGoldenTrace creates an empty digest harness.
func NewGoldenTrace() *GoldenTrace {
	return &GoldenTrace{stages: map[string]*stageHash{}}
}

// fnvU64 absorbs one uint64 little-endian into an FNV-1a hash.
func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// Absorb folds one iteration of a stage into its rolling digest: the
// iteration index, the solution vector pos (exact float64 bit
// patterns, slice order), the iteration cost and the penalty lambda.
// Stages are created on first use and remembered in first-seen order.
func (g *GoldenTrace) Absorb(stage string, iter int, pos []float64, cost, lambda float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	sh := g.stages[stage]
	if sh == nil {
		sh = &stageHash{hash: fnvOffset64}
		g.stages[stage] = sh
		g.order = append(g.order, stage)
	}
	h := fnvU64(sh.hash, uint64(iter))
	for _, p := range pos {
		h = fnvU64(h, math.Float64bits(p))
	}
	h = fnvU64(h, math.Float64bits(cost))
	h = fnvU64(h, math.Float64bits(lambda))
	sh.hash = h
	sh.iters++
	g.mu.Unlock()
}

// StageDigest is one stage's final rolling hash, exposed in
// FlowResult.Digests and BenchRecord.Digests.
type StageDigest struct {
	// Stage is the flow stage label ("mIP", "mGP", ...).
	Stage string `json:"stage"`
	// Iterations is how many Absorb calls the digest covers.
	Iterations int `json:"iters"`
	// Digest is the rolling FNV-1a hash after the last absorb.
	Digest uint64 `json:"digest"`
}

// Hex renders the digest as the canonical fixed-width hex string.
func (s StageDigest) Hex() string { return fmt.Sprintf("%016x", s.Digest) }

// Digests returns every stage digest in first-seen (execution) order.
func (g *GoldenTrace) Digests() []StageDigest {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]StageDigest, 0, len(g.order))
	for _, name := range g.order {
		sh := g.stages[name]
		out = append(out, StageDigest{Stage: name, Iterations: sh.iters, Digest: sh.hash})
	}
	return out
}

// GoldenState is the serializable snapshot of a GoldenTrace, captured
// into checkpoints so a resumed run continues the same rolling hashes
// and its final digests match the uninterrupted run's exactly.
type GoldenState struct {
	Stages []StageDigest
}

// State snapshots the rolling hashes in execution order.
func (g *GoldenTrace) State() GoldenState {
	if g == nil {
		return GoldenState{}
	}
	return GoldenState{Stages: g.Digests()}
}

// SetState replaces the rolling hashes with a snapshot taken by State.
func (g *GoldenTrace) SetState(s GoldenState) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.stages = make(map[string]*stageHash, len(s.Stages))
	g.order = g.order[:0]
	for _, sd := range s.Stages {
		g.stages[sd.Stage] = &stageHash{hash: sd.Digest, iters: sd.Iterations}
		g.order = append(g.order, sd.Stage)
	}
	g.mu.Unlock()
}

// DigestsEqual reports whether two digest lists are identical after
// name-keyed alignment (order-insensitive), returning a description of
// the first difference for test failure messages.
func DigestsEqual(a, b []StageDigest) (bool, string) {
	am := map[string]StageDigest{}
	for _, d := range a {
		am[d.Stage] = d
	}
	bm := map[string]StageDigest{}
	for _, d := range b {
		bm[d.Stage] = d
	}
	var names []string
	for n := range am {
		names = append(names, n)
	}
	for n := range bm {
		if _, ok := am[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		da, oka := am[n]
		db, okb := bm[n]
		switch {
		case !oka:
			return false, fmt.Sprintf("stage %s only in second trace", n)
		case !okb:
			return false, fmt.Sprintf("stage %s only in first trace", n)
		case da.Digest != db.Digest || da.Iterations != db.Iterations:
			return false, fmt.Sprintf("stage %s: %s/%d iters vs %s/%d iters",
				n, da.Hex(), da.Iterations, db.Hex(), db.Iterations)
		}
	}
	return true, ""
}
