package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sink receives samples and span records from a Recorder. Writes
// arrive serialized (the Recorder holds its lock), so implementations
// only need internal locking when they are also read concurrently.
type Sink interface {
	Sample(Sample)
	Span(SpanRecord)
	Close() error
}

// Event is one decoded JSONL line.
type Event struct {
	Type   string      `json:"type"` // "sample" or "span"
	Sample *Sample     `json:"sample,omitempty"`
	Span   *SpanRecord `json:"span,omitempty"`
}

// JSONLSink streams events as JSON Lines: one object per line with a
// "type" tag, replayable with ReadJSONL.
type JSONLSink struct {
	buf *bufio.Writer
	enc *json.Encoder
	c   io.Closer
	err error
}

// NewJSONLSink writes events to w. If w is also an io.Closer it is
// closed by Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	buf := bufio.NewWriter(w)
	s := &JSONLSink{buf: buf, enc: json.NewEncoder(buf)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

func (s *JSONLSink) Sample(sm Sample) {
	if s.err == nil {
		s.err = s.enc.Encode(Event{Type: "sample", Sample: &sm})
	}
}

func (s *JSONLSink) Span(sp SpanRecord) {
	if s.err == nil {
		s.err = s.enc.Encode(Event{Type: "span", Span: &sp})
	}
}

// Close flushes buffered output, closes the underlying writer when it
// is closable, and reports the first error seen on the stream.
func (s *JSONLSink) Close() error {
	if err := s.buf.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// ReadJSONL decodes a JSONL event stream produced by JSONLSink.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}

// CSVHeader is the column list of the per-iteration CSV stream, the
// raw data behind the paper's Figure 2.
const CSVHeader = "stage,iter,hpwl,tau,energy,lambda,gamma,alpha,backtracks"

// CSVSink writes one CSV row per sample (span records are skipped:
// CSV is the flat convergence-trace format).
type CSVSink struct {
	buf  *bufio.Writer
	c    io.Closer
	head bool
	err  error
}

// NewCSVSink writes CSV to w, emitting the header before the first
// row. If w is also an io.Closer it is closed by Close.
func NewCSVSink(w io.Writer) *CSVSink {
	s := &CSVSink{buf: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

func (s *CSVSink) Sample(sm Sample) {
	if s.err != nil {
		return
	}
	if !s.head {
		s.head = true
		if _, err := fmt.Fprintln(s.buf, CSVHeader); err != nil {
			s.err = err
			return
		}
	}
	_, s.err = fmt.Fprintf(s.buf, "%s,%d,%.8g,%.6f,%.8g,%.8g,%.8g,%.8g,%d\n",
		sm.Stage, sm.Iteration, sm.HPWL, sm.Overflow, sm.Energy,
		sm.Lambda, sm.Gamma, sm.Alpha, sm.Backtracks)
}

func (s *CSVSink) Span(SpanRecord) {}

func (s *CSVSink) Close() error {
	if !s.head && s.err == nil {
		// Header-only stream so an empty trace is still well-formed CSV.
		if _, err := fmt.Fprintln(s.buf, CSVHeader); err != nil {
			s.err = err
		}
		s.head = true
	}
	if err := s.buf.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// WriteSamplesCSV writes samples in the CSVSink format, header
// included. core.Trace.WriteCSV adapts onto this.
func WriteSamplesCSV(w io.Writer, samples []Sample) error {
	s := NewCSVSink(struct{ io.Writer }{w}) // hide any Closer: caller owns w
	for _, sm := range samples {
		s.Sample(sm)
	}
	return s.Close()
}

// RingSink keeps the most recent samples and spans in bounded ring
// buffers. It is safe to read while the recorder writes (the status
// endpoint streams recent iterations from it).
type RingSink struct {
	mu      sync.Mutex
	samples []Sample
	spans   []SpanRecord
	si, sn  int
	pi, pn  int
}

// NewRingSink keeps the last n samples and the last n spans (n >= 1).
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{
		samples: make([]Sample, n),
		spans:   make([]SpanRecord, n),
	}
}

func (s *RingSink) Sample(sm Sample) {
	s.mu.Lock()
	s.samples[s.si] = sm
	s.si = (s.si + 1) % len(s.samples)
	if s.sn < len(s.samples) {
		s.sn++
	}
	s.mu.Unlock()
}

func (s *RingSink) Span(sp SpanRecord) {
	s.mu.Lock()
	s.spans[s.pi] = sp
	s.pi = (s.pi + 1) % len(s.spans)
	if s.pn < len(s.spans) {
		s.pn++
	}
	s.mu.Unlock()
}

// Samples returns the retained samples, oldest first.
func (s *RingSink) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, s.sn)
	start := s.si - s.sn
	if start < 0 {
		start += len(s.samples)
	}
	for i := 0; i < s.sn; i++ {
		out = append(out, s.samples[(start+i)%len(s.samples)])
	}
	return out
}

// Spans returns the retained span records, oldest first.
func (s *RingSink) Spans() []SpanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SpanRecord, 0, s.pn)
	start := s.pi - s.pn
	if start < 0 {
		start += len(s.spans)
	}
	for i := 0; i < s.pn; i++ {
		out = append(out, s.spans[(start+i)%len(s.spans)])
	}
	return out
}

func (s *RingSink) Close() error { return nil }

// MultiSink fans events out to several sinks in order.
type MultiSink struct {
	sinks []Sink
}

// Multi combines sinks into one.
func Multi(sinks ...Sink) *MultiSink {
	return &MultiSink{sinks: sinks}
}

func (m *MultiSink) Sample(sm Sample) {
	for _, s := range m.sinks {
		s.Sample(sm)
	}
}

func (m *MultiSink) Span(sp SpanRecord) {
	for _, s := range m.sinks {
		s.Span(sp)
	}
}

// Close closes every sink, returning the first error.
func (m *MultiSink) Close() error {
	var first error
	for _, s := range m.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
