// Package telemetry is the structured observability layer of the
// placement flow: per-iteration Samples (the raw data behind the
// paper's Fig. 2/3 convergence traces), hierarchical stage/kernel span
// aggregates (the Fig. 7 runtime breakdown), named counters, pluggable
// sinks (JSONL, CSV, bounded ring, fanout), a live HTTP status
// endpoint, and a machine-readable benchmark report writer.
//
// The central type is Recorder. A nil *Recorder is the canonical
// disabled state: every method is nil-safe and a no-op that performs
// zero allocations, so instrumented code never branches on "telemetry
// on?" and the hot path costs nothing when observability is off.
//
// Concurrency contract: all Recorder methods are safe for concurrent
// use from multiple goroutines (the gradient kernels shard across a
// worker pool). Sinks are invoked with the Recorder's lock held, so a
// Sink implementation needs no locking of its own for writes; sinks
// that are also read from other goroutines (RingSink serving the
// status endpoint) guard their reads internally.
//
// Recording never influences placement results: every instrumentation
// point only reads optimizer state, so placements are bitwise-identical
// with telemetry enabled or disabled (asserted by the core tests).
package telemetry

import (
	"sync"
	"time"
)

// Sample is one per-iteration record of an optimization stage. GP
// stages (mGP, cGP) populate every field; coarser stages (mIP, mLG,
// cDP, baseline placers) fill the subset that applies and leave the
// rest zero.
type Sample struct {
	// Stage labels the flow stage ("mIP", "mGP", "mLG", "cGP-filler",
	// "cGP", "cDP", or a baseline placer name).
	Stage string `json:"stage"`
	// Iteration counts from 0 within the stage.
	Iteration int `json:"iter"`
	// HPWL is the half-perimeter wirelength after the iteration.
	HPWL float64 `json:"hpwl"`
	// Overflow is the density overflow tau (Fig. 2's second axis).
	Overflow float64 `json:"tau"`
	// Energy is the eDensity potential energy N(v).
	Energy float64 `json:"energy,omitempty"`
	// Lambda and Gamma are the penalty and smoothing schedule values.
	Lambda float64 `json:"lambda,omitempty"`
	Gamma  float64 `json:"gamma,omitempty"`
	// Alpha is the accepted steplength.
	Alpha float64 `json:"alpha,omitempty"`
	// Backtracks is the BkTrk count of this iteration.
	Backtracks int `json:"backtracks,omitempty"`
	// Steps and Restarts are the optimizer's cumulative step and
	// adaptive-restart counts (nesterov accessor methods).
	Steps    int `json:"steps,omitempty"`
	Restarts int `json:"restarts,omitempty"`
	// GradWL and GradDensity are L1 norms of the wirelength and density
	// gradients at the last evaluation point.
	GradWL      float64 `json:"grad_wl,omitempty"`
	GradDensity float64 `json:"grad_density,omitempty"`
	// Overlap is stage-specific overlap area (mLG's Om metric).
	Overlap float64 `json:"overlap,omitempty"`
	// WirelengthTime and DensityTime are this iteration's kernel wall
	// times in nanoseconds (all gradient evaluations, including
	// backtracking re-evaluations).
	WirelengthTime time.Duration `json:"wl_ns,omitempty"`
	DensityTime    time.Duration `json:"density_ns,omitempty"`
}

// SpanRecord is one completed stage or kernel span as emitted to
// sinks. Kernel spans nest under their stage: Stage "mGP" with Kernel
// "density" is the density-gradient kernel of the mGP stage; Kernel ""
// is the stage itself.
type SpanRecord struct {
	Stage  string `json:"stage"`
	Kernel string `json:"kernel,omitempty"`
	// Start is the offset from recorder creation.
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// Path returns "stage" or "stage/kernel".
func (s SpanRecord) Path() string {
	if s.Kernel == "" {
		return s.Stage
	}
	return s.Stage + "/" + s.Kernel
}

// SpanTotal is one aggregated (stage, kernel) span.
type SpanTotal struct {
	Stage   string  `json:"stage"`
	Kernel  string  `json:"kernel,omitempty"`
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// spanKey identifies an aggregate without string concatenation, so the
// per-gradient-call hot path stays allocation-free.
type spanKey struct{ stage, kernel string }

type spanAgg struct {
	total time.Duration
	count int64
}

// Counter is one named counter value.
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a point-in-time view of a Recorder, served by the status
// endpoint and embedded in benchmark reports.
type Snapshot struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Stage         string      `json:"stage"`
	Iteration     int         `json:"iter"`
	HPWL          float64     `json:"hpwl"`
	Overflow      float64     `json:"tau"`
	Lambda        float64     `json:"lambda"`
	Samples       int64       `json:"samples"`
	Workers       int         `json:"workers"`
	Spans         []SpanTotal `json:"spans"`
	Counters      []Counter   `json:"counters"`
}

// Recorder collects samples, span aggregates and counters, and fans
// them out to sinks. The zero value is not usable; call New. A nil
// *Recorder is valid and turns every method into a zero-allocation
// no-op.
type Recorder struct {
	mu      sync.Mutex
	start   time.Time
	sinks   []Sink
	workers int

	stage   string
	iter    int
	last    Sample
	samples int64

	spans     map[spanKey]*spanAgg
	spanOrder []spanKey

	counters     map[string]int64
	counterOrder []string
}

// New creates a Recorder fanning out to sinks (none is valid: the
// recorder then only aggregates spans and counters, which is how the
// engine derives its timing breakdown when telemetry is off).
func New(sinks ...Sink) *Recorder {
	return &Recorder{
		start:    time.Now(),
		sinks:    sinks,
		spans:    map[spanKey]*spanAgg{},
		counters: map[string]int64{},
	}
}

// Active reports whether r records anything (false for nil). Use it to
// gate instrumentation whose inputs are expensive to compute (an extra
// HPWL evaluation, say); cheap reads can call the nil-safe methods
// unconditionally.
func (r *Recorder) Active() bool { return r != nil }

// Emitting reports whether r has at least one sink attached.
func (r *Recorder) Emitting() bool {
	return r != nil && len(r.sinks) > 0
}

// SetWorkers records the gradient-kernel worker count for snapshots.
func (r *Recorder) SetWorkers(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.workers = n
	r.mu.Unlock()
}

// Sample records one per-iteration sample and forwards it to sinks.
func (r *Recorder) Sample(s Sample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.stage = s.Stage
	r.iter = s.Iteration
	r.last = s
	r.samples++
	for _, sk := range r.sinks {
		sk.Sample(s)
	}
	r.mu.Unlock()
}

// SetStage updates the current stage label without emitting a sample
// (stages like mIP report progress before their first sample exists).
func (r *Recorder) SetStage(stage string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.stage = stage
	r.mu.Unlock()
}

// AddSpanTime adds d to the (stage, kernel) aggregate without emitting
// a sink event. This is the per-gradient-call hot path: kernel wall
// times appear in every Sample already, so streaming a span event per
// call would only bloat the JSONL.
func (r *Recorder) AddSpanTime(stage, kernel string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.addSpanLocked(stage, kernel, d)
	r.mu.Unlock()
}

// EmitSpan adds d to the (stage, kernel) aggregate and emits a
// SpanRecord event to sinks, with the span assumed to have just ended.
func (r *Recorder) EmitSpan(stage, kernel string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.addSpanLocked(stage, kernel, d)
	end := time.Since(r.start)
	start := end - d
	if start < 0 {
		start = 0
	}
	rec := SpanRecord{Stage: stage, Kernel: kernel, Start: start, Dur: d}
	for _, sk := range r.sinks {
		sk.Span(rec)
	}
	r.mu.Unlock()
}

func (r *Recorder) addSpanLocked(stage, kernel string, d time.Duration) {
	k := spanKey{stage, kernel}
	agg := r.spans[k]
	if agg == nil {
		agg = &spanAgg{}
		r.spans[k] = agg
		r.spanOrder = append(r.spanOrder, k)
	}
	agg.total += d
	agg.count++
}

// SpanTime returns the aggregated duration of (stage, kernel); kernel
// "" addresses the stage span itself.
func (r *Recorder) SpanTime(stage, kernel string) time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if agg := r.spans[spanKey{stage, kernel}]; agg != nil {
		return agg.total
	}
	return 0
}

// SpanTotals returns every span aggregate in first-seen order.
func (r *Recorder) SpanTotals() []SpanTotal {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanTotal, 0, len(r.spanOrder))
	for _, k := range r.spanOrder {
		agg := r.spans[k]
		out = append(out, SpanTotal{
			Stage: k.stage, Kernel: k.kernel,
			Seconds: agg.total.Seconds(), Count: agg.count,
		})
	}
	return out
}

// Count adds delta to the named counter.
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if _, ok := r.counters[name]; !ok {
		r.counterOrder = append(r.counterOrder, name)
	}
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counters returns every counter in first-seen order.
func (r *Recorder) Counters() []Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Counter, 0, len(r.counterOrder))
	for _, name := range r.counterOrder {
		out = append(out, Counter{Name: name, Value: r.counters[name]})
	}
	return out
}

// Samples returns how many samples have been recorded.
func (r *Recorder) Samples() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samples
}

// Snapshot returns a point-in-time view for the status endpoint.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	snap := Snapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Stage:         r.stage,
		Iteration:     r.iter,
		HPWL:          r.last.HPWL,
		Overflow:      r.last.Overflow,
		Lambda:        r.last.Lambda,
		Samples:       r.samples,
		Workers:       r.workers,
	}
	spanOrder := append([]spanKey(nil), r.spanOrder...)
	spans := make([]SpanTotal, 0, len(spanOrder))
	for _, k := range spanOrder {
		agg := r.spans[k]
		spans = append(spans, SpanTotal{
			Stage: k.stage, Kernel: k.kernel,
			Seconds: agg.total.Seconds(), Count: agg.count,
		})
	}
	counters := make([]Counter, 0, len(r.counterOrder))
	for _, name := range r.counterOrder {
		counters = append(counters, Counter{Name: name, Value: r.counters[name]})
	}
	r.mu.Unlock()
	snap.Spans = spans
	snap.Counters = counters
	return snap
}

// Close flushes and closes every sink, returning the first error.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, sk := range r.sinks {
		if err := sk.Close(); err != nil && first == nil {
			first = err
		}
	}
	r.sinks = nil
	return first
}
