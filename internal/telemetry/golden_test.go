package telemetry

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"
)

// TestGoldenMatchesStdlibFNV pins the digest definition to the stdlib
// FNV-1a implementation fed the documented byte stream.
func TestGoldenMatchesStdlibFNV(t *testing.T) {
	g := NewGoldenTrace()
	pos := []float64{1.5, -2.25, 3.75}
	g.Absorb("mGP", 0, pos, 10.5, 0.25)
	g.Absorb("mGP", 1, pos, 11.5, 0.5)

	ref := fnv.New64a()
	feed := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		ref.Write(b[:])
	}
	absorb := func(iter uint64, cost, lambda float64) {
		feed(iter)
		for _, p := range pos {
			feed(math.Float64bits(p))
		}
		feed(math.Float64bits(cost))
		feed(math.Float64bits(lambda))
	}
	absorb(0, 10.5, 0.25)
	absorb(1, 11.5, 0.5)

	ds := g.Digests()
	if len(ds) != 1 || ds[0].Stage != "mGP" || ds[0].Iterations != 2 {
		t.Fatalf("digests = %+v", ds)
	}
	if ds[0].Digest != ref.Sum64() {
		t.Errorf("digest %016x != stdlib FNV-1a %016x", ds[0].Digest, ref.Sum64())
	}
}

func TestGoldenDeterministicAndSensitive(t *testing.T) {
	run := func(perturb bool) []StageDigest {
		g := NewGoldenTrace()
		g.Absorb("mIP", 0, []float64{1, 2, 3}, 6, 0)
		third := 3.0
		if perturb {
			third = math.Nextafter(3, 4) // one ULP
		}
		g.Absorb("mGP", 0, []float64{1, 2, third}, 6, 1)
		g.Absorb("mGP", 1, []float64{4, 5, 6}, 15, 1.1)
		return g.Digests()
	}
	a, b := run(false), run(false)
	if ok, diff := DigestsEqual(a, b); !ok {
		t.Fatalf("identical input, digests differ: %s", diff)
	}
	c := run(true) // a one-ULP change must flip the mGP digest
	if ok, _ := DigestsEqual(a, c); ok {
		t.Fatal("perturbed trace produced identical digests")
	}
	if a[0].Digest != c[0].Digest {
		t.Error("perturbation in mGP changed the mIP digest")
	}
}

func TestGoldenStateRoundTrip(t *testing.T) {
	g := NewGoldenTrace()
	g.Absorb("mGP", 0, []float64{1, 2}, 3, 0.5)
	g.Absorb("mGP", 1, []float64{2, 3}, 5, 0.6)
	mid := g.State()

	// Continue the original.
	g.Absorb("mGP", 2, []float64{4, 5}, 9, 0.7)
	g.Absorb("cGP", 0, []float64{6}, 6, 0.1)

	// Resume a fresh trace from the snapshot and replay the tail.
	r := NewGoldenTrace()
	r.SetState(mid)
	r.Absorb("mGP", 2, []float64{4, 5}, 9, 0.7)
	r.Absorb("cGP", 0, []float64{6}, 6, 0.1)

	if ok, diff := DigestsEqual(g.Digests(), r.Digests()); !ok {
		t.Fatalf("resumed trace diverged: %s", diff)
	}
}

func TestGoldenNilSafe(t *testing.T) {
	var g *GoldenTrace
	g.Absorb("mGP", 0, []float64{1}, 1, 1) // must not panic
	if g.Digests() != nil {
		t.Error("nil trace returned digests")
	}
	g.SetState(GoldenState{})
	if s := g.State(); len(s.Stages) != 0 {
		t.Error("nil trace returned state")
	}
}

func TestDigestsEqualReportsDifferences(t *testing.T) {
	a := []StageDigest{{Stage: "mGP", Iterations: 3, Digest: 1}}
	b := []StageDigest{{Stage: "mGP", Iterations: 3, Digest: 2}}
	if ok, diff := DigestsEqual(a, b); ok || diff == "" {
		t.Error("digest mismatch not reported")
	}
	if ok, diff := DigestsEqual(a, nil); ok || diff == "" {
		t.Error("missing stage not reported")
	}
	// Alignment is by stage name, not position.
	c := []StageDigest{{Stage: "cGP", Digest: 9}, {Stage: "mGP", Iterations: 3, Digest: 1}}
	d := []StageDigest{{Stage: "mGP", Iterations: 3, Digest: 1}, {Stage: "cGP", Digest: 9}}
	if ok, diff := DigestsEqual(c, d); !ok {
		t.Errorf("order-insensitive compare failed: %s", diff)
	}
}
