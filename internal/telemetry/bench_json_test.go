package telemetry

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestBenchReportRoundTrip(t *testing.T) {
	rep := NewBenchReport("eplace-synthetic")
	if rep.GoVersion == "" || rep.CPUs <= 0 || rep.GOMAXPROCS <= 0 {
		t.Fatalf("environment fingerprint missing: %+v", rep)
	}
	rep.Scale = 0.25
	rep.Workers = 4
	rep.Micro = []MicroBench{{Name: "fft/DCT2_512", Ops: 1000, NsPerOp: 7200.5}}

	rec := New()
	rec.AddSpanTime("mGP", "density", 3*time.Second)
	rec.AddSpanTime("mGP", "wirelength", time.Second)
	rec.AddSpanTime("cGP", "density", time.Second)
	rec.EmitSpan("mGP", "", 5*time.Second) // stage span: not a kernel

	b := BenchRecord{
		Benchmark: "ADAPTEC1", Cells: 2110, Nets: 2000, Pins: 7000,
		HPWL: 1.5e6, Overflow: 0.09, Legal: true, Seconds: 12.5,
		Iterations: map[string]int{"mGP": 300, "cGP": 120},
		Stages: []StageSeconds{
			{Name: "mIP", Seconds: 0.5}, {Name: "mGP", Seconds: 5},
		},
	}
	b.KernelsFrom(rec)
	if b.Kernels["mGP/density"] != 3 || b.Kernels["mGP/wirelength"] != 1 || b.Kernels["cGP/density"] != 1 {
		t.Errorf("kernels = %+v", b.Kernels)
	}
	if _, ok := b.Kernels["mGP/"]; ok {
		t.Error("stage span leaked into kernel map")
	}
	rep.Add(b)
	rep.Add(BenchRecord{Benchmark: "ADAPTEC0"})
	rep.Sort()
	if rep.Records[0].Benchmark != "ADAPTEC0" {
		t.Errorf("sort order: %+v", rep.Records)
	}

	path := filepath.Join(t.TempDir(), "BENCH_eplace.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadBenchReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "eplace-synthetic" || len(got.Records) != 2 {
		t.Errorf("decoded = %+v", got)
	}
	if got.GOMAXPROCS != rep.GOMAXPROCS || got.Workers != 4 {
		t.Errorf("environment round trip = %+v", got)
	}
	if len(got.Micro) != 1 || got.Micro[0].Name != "fft/DCT2_512" ||
		got.Micro[0].Ops != 1000 || got.Micro[0].NsPerOp != 7200.5 {
		t.Errorf("microbench round trip = %+v", got.Micro)
	}
	r1 := got.Records[1]
	if r1.HPWL != 1.5e6 || r1.Iterations["mGP"] != 300 ||
		len(r1.Stages) != 2 || r1.Stages[0].Name != "mIP" ||
		r1.Kernels["mGP/density"] != 3 {
		t.Errorf("record round trip = %+v", r1)
	}
}

// KernelsFrom on a nil recorder must be a no-op (telemetry disabled).
func TestKernelsFromNilRecorder(t *testing.T) {
	var b BenchRecord
	b.KernelsFrom(nil)
	if b.Kernels != nil {
		t.Errorf("kernels = %+v", b.Kernels)
	}
}
