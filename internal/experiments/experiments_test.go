package experiments

import (
	"bytes"
	"strings"
	"testing"

	"eplace/internal/synth"
)

// The experiment harness is exercised end-to-end at tiny scale; the
// real tables run through cmd/experiments at full scale.

func tinyOpt() RunOptions { return RunOptions{GridM: 32, MaxIters: 600} }

func TestRunEachPlacer(t *testing.T) {
	spec := synth.Spec{Name: "harness", NumCells: 300, NumFixedMacros: 2}
	for _, p := range AllPlacers {
		rep := RunSpec(spec, p, tinyOpt())
		if rep.Failed {
			t.Errorf("%s failed", p)
		}
		if rep.HPWL <= 0 || rep.Seconds <= 0 {
			t.Errorf("%s report incomplete: %+v", p, rep)
		}
		if !rep.Legal {
			t.Errorf("%s produced illegal layout", p)
		}
	}
}

func TestRunMixedSizeEachPlacer(t *testing.T) {
	spec := synth.Spec{Name: "harness-mms", NumCells: 300, NumMovableMacros: 3}
	for _, p := range AllPlacers {
		rep := RunSpec(spec, p, tinyOpt())
		if rep.Failed {
			t.Errorf("%s failed on mixed-size", p)
		}
		if !rep.Legal {
			t.Errorf("%s illegal on mixed-size", p)
		}
	}
}

func TestEPlaceBeatsMinCut(t *testing.T) {
	// The headline shape of Tables I-III: the analytic placer clearly
	// beats min-cut.
	spec := synth.Spec{Name: "shape", NumCells: 500, NumFixedMacros: 3}
	e := RunSpec(spec, EPlace, tinyOpt())
	m := RunSpec(spec, MinCut, tinyOpt())
	if e.Failed || m.Failed {
		t.Fatal("runs failed")
	}
	if e.HPWL >= m.HPWL {
		t.Errorf("ePlace HPWL %v not below min-cut %v", e.HPWL, m.HPWL)
	}
}

func TestTablePrinting(t *testing.T) {
	specs := []synth.Spec{{Name: "T1", NumCells: 200}, {Name: "T2", NumCells: 250}}
	tr := runSuite("test table", specs, []Placer{MinCut, EPlace}, tinyOpt(), nil)
	var buf bytes.Buffer
	tr.Print(&buf, hpwlMetric, true)
	out := buf.String()
	for _, want := range []string{"T1", "T2", "AvgGap%", "AvgRuntime", "AvgOverflow", "Wins", "ePlace"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Output(t *testing.T) {
	var buf bytes.Buffer
	Fig2(0.05, tinyOpt(), &buf)
	out := buf.String()
	if !strings.Contains(out, "stage,iter,hpwl") || !strings.Contains(out, "mGP") {
		t.Errorf("Fig2 output malformed:\n%s", truncStr(out, 400))
	}
}

func TestFig5Output(t *testing.T) {
	var buf bytes.Buffer
	Fig5(0.05, tinyOpt(), &buf)
	out := buf.String()
	if !strings.Contains(out, "before,") || !strings.Contains(out, "after,") {
		t.Errorf("Fig5 output malformed:\n%s", out)
	}
	if !strings.Contains(out, "legal=true") {
		t.Errorf("Fig5 did not legalize:\n%s", out)
	}
}

func TestFig7Output(t *testing.T) {
	var buf bytes.Buffer
	Fig7(0.03, tinyOpt(), 2, &buf)
	out := buf.String()
	for _, want := range []string{"mGP,", "density-gradient,", "wirelength-gradient,"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig7 output missing %q:\n%s", want, out)
		}
	}
}

func TestLineSearchStudy(t *testing.T) {
	var buf bytes.Buffer
	LineSearchStudy(0.05, tinyOpt(), &buf)
	out := buf.String()
	if !strings.Contains(out, "Nesterov,") || !strings.Contains(out, "CG(FFTPL),") {
		t.Errorf("line-search study malformed:\n%s", out)
	}
}

func TestAblationOutput(t *testing.T) {
	var buf bytes.Buffer
	AblateFillerPhase(0.05, 2, tinyOpt(), &buf)
	out := buf.String()
	if !strings.Contains(out, "circuit,hpwl_base") {
		t.Errorf("ablation output malformed:\n%s", out)
	}
}

func truncStr(s string, n int) string {
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}
