package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"eplace/internal/core"
	"eplace/internal/legalize"
	"eplace/internal/netlist"
	"eplace/internal/qp"
	"eplace/internal/synth"
)

// mmsAdaptec1 returns the MMS ADAPTEC1 analog used by Figures 2-6.
func mmsAdaptec1(scale float64) synth.Spec {
	for _, s := range synth.MMSSuite(scale) {
		if s.Name == "ADAPTEC1" {
			return s
		}
	}
	panic("experiments: ADAPTEC1 missing from MMS suite")
}

// Fig2 regenerates Figure 2: total HPWL and object overlap across the
// mIP/mGP/mLG/cGP stages on MMS ADAPTEC1. One line per iteration:
// stage, iteration, HPWL, overflow tau, overlap-area estimate.
func Fig2(scale float64, opt RunOptions, out io.Writer) {
	d := synth.Generate(mmsAdaptec1(scale))
	tr := &core.Trace{}
	gp := core.Options{GridM: opt.GridM, MaxIters: opt.MaxIters, Trace: tr}
	res, err := core.Place(d, core.FlowOptions{GP: gp})
	if err != nil {
		fmt.Fprintf(out, "# flow failed: %v\n", err)
		return
	}
	movableArea := d.MovableArea()
	fmt.Fprintf(out, "# Figure 2: HPWL and overlap vs iteration, MMS-like ADAPTEC1\n")
	fmt.Fprintf(out, "# final HPWL=%.6g legal=%v\n", res.HPWL, res.Legal)
	fmt.Fprintf(out, "stage,iter,hpwl,tau,ovlp_est\n")
	for _, s := range tr.Samples {
		fmt.Fprintf(out, "%s,%d,%.6g,%.4f,%.6g\n",
			s.Stage, s.Iteration, s.HPWL, s.Overflow, s.Overflow*movableArea)
	}
	// Stage summary (the figure's phase boundaries).
	for _, stage := range []string{"mGP", "cGP-filler", "cGP"} {
		ss := tr.Stage(stage)
		if len(ss) == 0 {
			continue
		}
		first, last := ss[0], ss[len(ss)-1]
		fmt.Fprintf(out, "# %s: %d iters, HPWL %.6g -> %.6g, tau %.3f -> %.3f\n",
			stage, len(ss), first.HPWL, last.HPWL, first.Overflow, last.Overflow)
	}
}

// Fig3 regenerates Figure 3: mGP snapshots on MMS ADAPTEC1. For each
// snapshot iteration it reports W (HPWL) and O (total overlap area) and
// optionally dumps cell positions as CSV files under dir (skipped when
// dir is empty).
func Fig3(scale float64, opt RunOptions, snapshots []int, dir string, out io.Writer) {
	fmt.Fprintf(out, "# Figure 3: mGP snapshots on MMS-like ADAPTEC1\n")
	fmt.Fprintf(out, "iter,W,O\n")
	for _, iters := range snapshots {
		d := synth.Generate(mmsAdaptec1(scale))
		movable := d.Movable()
		qp.Place(d, movable, qp.Options{})
		core.InsertFillers(d, 2)
		gp := core.Options{
			GridM: opt.GridM, MaxIters: maxInt(iters, 1), MinIters: maxInt(iters, 1),
			TargetOverflow: 1e-12,
		}
		if iters > 0 {
			_, _ = core.PlaceGlobal(d, d.Movable(), gp, "mGP", 0)
		}
		w := d.HPWL()
		o := d.TotalOverlap(movable)
		fmt.Fprintf(out, "%d,%.6g,%.6g\n", iters, w, o)
		if dir != "" {
			writePositionsCSV(d, filepath.Join(dir, fmt.Sprintf("fig3_iter%04d.csv", iters)))
		}
	}
}

// Fig5 regenerates Figure 5: macro distribution before/after mLG with
// the W, D and Om metrics of Eq. (14).
func Fig5(scale float64, opt RunOptions, out io.Writer) {
	d := synth.Generate(mmsAdaptec1(scale))
	movable := d.Movable()
	qp.Place(d, movable, qp.Options{})
	core.InsertFillers(d, 2)
	gp := core.Options{GridM: opt.GridM, MaxIters: opt.MaxIters}
	_, _ = core.PlaceGlobal(d, d.Movable(), gp, "mGP", 0)
	d.RemoveFillers()
	macros := d.MovableOf(netlist.Macro)
	res := legalize.Macros(d, macros, legalize.MLGOptions{})
	fmt.Fprintf(out, "# Figure 5: mLG on MMS-like ADAPTEC1 (std cells fixed)\n")
	fmt.Fprintf(out, "phase,W,D,Om\n")
	fmt.Fprintf(out, "before,%.6g,%.6g,%.6g\n", res.WBefore, res.DBefore, res.OmBefore)
	fmt.Fprintf(out, "after,%.6g,%.6g,%.6g\n", res.WAfter, res.DAfter, res.OmAfter)
	fmt.Fprintf(out, "# outer iterations j=%d, legal=%v\n", res.OuterIterations, res.Legal)
}

// Fig6 regenerates Figure 6: standard cells and fillers before/after
// cGP with fixed macros.
func Fig6(scale float64, opt RunOptions, out io.Writer) {
	d := synth.Generate(mmsAdaptec1(scale))
	tr := &core.Trace{}
	gp := core.Options{GridM: opt.GridM, MaxIters: opt.MaxIters, Trace: tr}
	if _, err := core.Place(d, core.FlowOptions{GP: gp, SkipLegalization: true}); err != nil {
		fmt.Fprintf(out, "# flow failed: %v\n", err)
		return
	}
	cgp := tr.Stage("cGP")
	fmt.Fprintf(out, "# Figure 6: cGP on MMS-like ADAPTEC1 (fixed macros)\n")
	fmt.Fprintf(out, "phase,iter,W,tau\n")
	if len(cgp) > 0 {
		first, last := cgp[0], cgp[len(cgp)-1]
		fmt.Fprintf(out, "before,%d,%.6g,%.4f\n", first.Iteration, first.HPWL, first.Overflow)
		fmt.Fprintf(out, "after,%d,%.6g,%.4f\n", last.Iteration, last.HPWL, last.Overflow)
	}
}

// Fig7 regenerates Figure 7: the runtime breakdown averaged over the
// MMS-like suite: stage shares of the total, and within mGP the
// density/wirelength/other gradient split (paper: 57%/29%/14%).
func Fig7(scale float64, opt RunOptions, circuits int, out io.Writer) {
	suite := synth.MMSSuite(scale)
	if circuits > 0 && circuits < len(suite) {
		suite = suite[:circuits]
	}
	stageTotals := map[string]float64{}
	var stageOrder []string
	var density, wl, other, mgpTotal float64
	total := 0.0
	for _, spec := range suite {
		d := synth.Generate(spec)
		gp := core.Options{GridM: opt.GridM, MaxIters: opt.MaxIters}
		res, err := core.Place(d, core.FlowOptions{GP: gp})
		if err != nil {
			fmt.Fprintf(out, "# %s failed: %v\n", spec.Name, err)
			continue
		}
		for _, stage := range res.Stages {
			if _, seen := stageTotals[stage.Name]; !seen {
				stageOrder = append(stageOrder, stage.Name)
			}
			stageTotals[stage.Name] += stage.Time.Seconds()
			total += stage.Time.Seconds()
		}
		density += res.MGP.DensityTime.Seconds()
		wl += res.MGP.WirelengthTime.Seconds()
		other += res.MGP.OtherTime.Seconds()
		mgpTotal += res.MGP.Total.Seconds()
	}
	fmt.Fprintf(out, "# Figure 7: runtime breakdown, average of MMS-like suite (%d circuits)\n", len(suite))
	fmt.Fprintf(out, "stage,share%%\n")
	for _, stage := range stageOrder {
		fmt.Fprintf(out, "%s,%.1f\n", stage, 100*stageTotals[stage]/total)
	}
	fmt.Fprintf(out, "# within mGP (paper: density 57%%, wirelength 29%%, other 14%%):\n")
	fmt.Fprintf(out, "mGP-part,share%%\n")
	fmt.Fprintf(out, "density-gradient,%.1f\n", 100*density/mgpTotal)
	fmt.Fprintf(out, "wirelength-gradient,%.1f\n", 100*wl/mgpTotal)
	fmt.Fprintf(out, "other,%.1f\n", 100*other/mgpTotal)
}

func writePositionsCSV(d *netlist.Design, path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "name,kind,x,y,w,h\n")
	for i := range d.Cells {
		c := &d.Cells[i]
		fmt.Fprintf(f, "%s,%s,%.4f,%.4f,%.4f,%.4f\n", c.Name, c.Kind, c.X, c.Y, c.W, c.H)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
