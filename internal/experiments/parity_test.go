package experiments

import (
	"math"
	"testing"

	"eplace/internal/poisson"
	"eplace/internal/synth"
)

// TestBackendQualityParity is the full-flow quality guard for the
// Poisson backends: the multilevel flow over the suite at scale 0.2
// must end equally legal under every backend on every circuit, with
// suite geomean HPWL within 0.5% of the float64 spectral reference.
// The cheaper backends perturb every gradient in the low-order bits
// (that is the point), which nudges individual circuits into slightly
// different local minima — the suite geomean is the quality metric
// that must not drift.
func TestBackendQualityParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full placements")
	}
	specs := synth.ISPD05Suite(0.2)
	run := func(spec synth.Spec, kind string) (bool, float64) {
		rep := RunSpec(spec, EPlace, RunOptions{
			MaxIters: 1000, Levels: 3, Poisson: kind,
		})
		if rep.Failed {
			t.Fatalf("%s on %s: flow failed", kind, spec.Name)
		}
		return rep.Legal, rep.HPWL
	}
	for _, kind := range []string{poisson.KindSpectral32, poisson.KindMultigrid} {
		logSum := 0.0
		for _, spec := range specs {
			refLegal, refHPWL := run(spec, poisson.KindSpectral)
			legal, hpwl := run(spec, kind)
			if legal != refLegal {
				t.Errorf("%s on %s: legal=%v, spectral reference legal=%v",
					kind, spec.Name, legal, refLegal)
			}
			logSum += math.Log(hpwl / refHPWL)
		}
		geo := math.Exp(logSum/float64(len(specs))) - 1
		t.Logf("%s: suite geomean HPWL deviation %+.3f%%", kind, 100*geo)
		if math.Abs(geo) > 0.005 {
			t.Errorf("%s: suite geomean HPWL deviates %+.3f%% from spectral (limit 0.5%%)",
				kind, 100*geo)
		}
	}
}
