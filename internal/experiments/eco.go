package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"eplace/internal/core"
	"eplace/internal/eco"
	"eplace/internal/netlist"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
)

// ECOStudyOptions sizes the incremental-vs-cold study.
type ECOStudyOptions struct {
	// Cells is the base circuit size (default 4000).
	Cells int
	// GridM and Workers forward to the placers.
	GridM   int
	Workers int
	// Log receives per-case progress lines.
	Log io.Writer
}

func (o *ECOStudyOptions) defaults() {
	if o.Cells <= 0 {
		o.Cells = 4000
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
}

// ecoCase is one synthetic edit: the script builder sees the base
// design so it can address real nets and the region.
type ecoCase struct {
	name  string
	build func(d *netlist.Design, rng *rand.Rand) *eco.Script
}

// insertScript adds n new standard cells sized like the average
// existing cell. Each insertion is anchored at a random existing cell
// and wired into two of that cell's nets, modeling the local splice of
// a buffer or gate insertion — real ECO edits attach at a spot, they
// do not span the die.
func insertScript(d *netlist.Design, rng *rand.Rand, n int) *eco.Script {
	var aw, ah float64
	cnt := 0
	var movable []int
	for i := range d.Cells {
		if c := &d.Cells[i]; !c.Fixed && c.Kind == netlist.StdCell {
			aw += c.W
			ah += c.H
			cnt++
			movable = append(movable, i)
		}
	}
	aw, ah = aw/float64(cnt), ah/float64(cnt)
	s := &eco.Script{}
	for i := 0; i < n; i++ {
		anchor := &d.Cells[movable[rng.Intn(len(movable))]]
		var nets []int
		for _, pi := range anchor.Pins {
			ni := d.Pins[pi].Net
			if len(nets) == 0 || nets[0] != ni {
				nets = append(nets, ni)
			}
			if len(nets) == 2 {
				break
			}
		}
		for len(nets) < 2 {
			nets = append(nets, rng.Intn(len(d.Nets)))
		}
		s.AddCells = append(s.AddCells, eco.AddCell{
			Name:   fmt.Sprintf("eco_ins_%d", i),
			W:      aw,
			H:      ah,
			NetIDs: nets,
		})
	}
	return s
}

// ecoCases builds the committed suite: insertions at 0.1/1/5% of the
// cell count, a net-reweight pass, and a region blockage.
func ecoCases(cells int) []ecoCase {
	frac := func(f float64) int {
		n := int(float64(cells) * f)
		if n < 1 {
			n = 1
		}
		return n
	}
	return []ecoCase{
		{"ins0.1", func(d *netlist.Design, rng *rand.Rand) *eco.Script {
			return insertScript(d, rng, frac(0.001))
		}},
		{"ins1", func(d *netlist.Design, rng *rand.Rand) *eco.Script {
			return insertScript(d, rng, frac(0.01))
		}},
		{"ins5", func(d *netlist.Design, rng *rand.Rand) *eco.Script {
			return insertScript(d, rng, frac(0.05))
		}},
		{"reweight", func(d *netlist.Design, rng *rand.Rand) *eco.Script {
			s := &eco.Script{}
			for i := 0; i < 20; i++ {
				s.ReweightNets = append(s.ReweightNets, eco.Reweight{
					NetID: rng.Intn(len(d.Nets)), Weight: 4,
				})
			}
			return s
		}},
		{"block", func(d *netlist.Design, rng *rand.Rand) *eco.Script {
			// A blockage covering ~4% of the region, off-center.
			r := d.Region
			w, h := 0.2*r.W(), 0.2*r.H()
			lx := r.Lx + 0.15*r.W()
			ly := r.Ly + 0.55*r.H()
			return &eco.Script{BlockRegions: []eco.Block{{Lx: lx, Ly: ly, Hx: lx + w, Hy: ly + h}}}
		}},
	}
}

// ECOStudy measures incremental re-placement against a cold re-run on
// the committed edit suite. For each case the edited design is placed
// twice from the same inputs — a full cold flow, and an ECO warm start
// off the base design's converged placement — and the pair of records
// ("ECO-<case>/cold", "ECO-<case>/eco") lands in the report. The
// headline numbers are the speedup at matched quality: for small edits
// (<=1% of cells) the warm start must be >=3x faster within 1% of the
// cold flow's final HPWL.
func ECOStudy(opt ECOStudyOptions, out io.Writer) (*telemetry.BenchReport, error) {
	opt.defaults()
	spec := synth.Spec{Name: "eco-base", NumCells: opt.Cells, Seed: 1, TargetDensity: 0.8}
	gp := core.Options{GridM: opt.GridM, Workers: opt.Workers}

	// The shared warm start: one converged placement of the base design.
	base := synth.Generate(spec)
	t0 := time.Now()
	baseRes, err := core.Place(base, core.FlowOptions{GP: gp})
	if err != nil {
		return nil, fmt.Errorf("eco study: base placement: %w", err)
	}
	fmt.Fprintf(opt.Log, "eco study: base %d cells placed in %.2fs (HPWL %.6g)\n",
		opt.Cells, time.Since(t0).Seconds(), baseRes.HPWL)

	report := telemetry.NewBenchReport("eco-study")
	report.Workers = opt.Workers
	fmt.Fprintf(out, "# ECO warm-start vs cold re-place (%d-cell base)\n", opt.Cells)
	fmt.Fprintf(out, "case,cold_s,eco_s,speedup,cold_hpwl,eco_hpwl,delta%%,active,frozen,legal\n")

	for _, cs := range ecoCases(opt.Cells) {
		script := cs.build(base, rand.New(rand.NewSource(7)))

		// Cold: fresh design, apply the edit, full flow.
		cold := synth.Generate(spec)
		if _, err := eco.Apply(cold, script); err != nil {
			return nil, fmt.Errorf("eco study %s: apply (cold): %w", cs.name, err)
		}
		t0 = time.Now()
		coldRes, err := core.Place(cold, core.FlowOptions{GP: gp})
		if err != nil {
			return nil, fmt.Errorf("eco study %s: cold flow: %w", cs.name, err)
		}
		coldSec := time.Since(t0).Seconds()

		// Warm: fresh design, base positions, incremental re-place.
		warm := synth.Generate(spec)
		for i := range warm.Cells {
			warm.Cells[i].X = base.Cells[i].X
			warm.Cells[i].Y = base.Cells[i].Y
		}
		t0 = time.Now()
		prep, err := eco.Prepare(warm, script, eco.PlanOptions{})
		if err != nil {
			return nil, fmt.Errorf("eco study %s: prepare: %w", cs.name, err)
		}
		ecoRes, err := core.PlaceECO(context.Background(), warm, prep.Plan, core.ECOOptions{GP: gp})
		if err != nil {
			return nil, fmt.Errorf("eco study %s: warm flow: %w", cs.name, err)
		}
		ecoSec := time.Since(t0).Seconds()

		speedup := coldSec / ecoSec
		delta := 100 * (ecoRes.HPWL/coldRes.HPWL - 1)
		fmt.Fprintf(out, "%s,%.3f,%.3f,%.1f,%.6g,%.6g,%.2f,%d,%d,%v\n",
			cs.name, coldSec, ecoSec, speedup, coldRes.HPWL, ecoRes.HPWL, delta,
			ecoRes.ActiveCells, ecoRes.FrozenCells, ecoRes.Legal && coldRes.Legal)
		fmt.Fprintf(opt.Log, "eco study: %-8s cold %.2fs eco %.2fs (%.1fx), HPWL delta %+.2f%%\n",
			cs.name, coldSec, ecoSec, speedup, delta)

		report.Add(telemetry.BenchRecord{
			Benchmark:  "ECO-" + cs.name + "/cold",
			Cells:      len(cold.Cells),
			Nets:       len(cold.Nets),
			Pins:       len(cold.Pins),
			HPWL:       coldRes.HPWL,
			Legal:      coldRes.Legal,
			Seconds:    coldSec,
			Iterations: map[string]int{"mGP": coldRes.MGP.Iterations},
			Digests:    coldRes.Digests,
		})
		report.Add(telemetry.BenchRecord{
			Benchmark: "ECO-" + cs.name + "/eco",
			Cells:     len(warm.Cells),
			Nets:      len(warm.Nets),
			Pins:      len(warm.Pins),
			HPWL:      ecoRes.HPWL,
			Legal:     ecoRes.Legal,
			Seconds:   ecoSec,
			Iterations: map[string]int{
				"eGP": ecoRes.GP.Iterations, "active": ecoRes.ActiveCells, "frozen": ecoRes.FrozenCells,
			},
			Digests: ecoRes.Digests,
		})
	}
	return report, nil
}

// MergeBenchFile folds the new records into an existing benchmark
// report file: rows whose benchmark name starts with prefix are
// replaced, everything else is preserved. A missing file just writes
// the new report.
func MergeBenchFile(path, prefix string, report *telemetry.BenchReport) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return report.WriteFile(path)
		}
		return err
	}
	old, err := telemetry.ReadBenchReport(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("merging %s: %w", path, err)
	}
	var kept []telemetry.BenchRecord
	for _, r := range old.Records {
		if !strings.HasPrefix(r.Benchmark, prefix) {
			kept = append(kept, r)
		}
	}
	old.Records = append(kept, report.Records...)
	return old.WriteFile(path)
}
