package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"eplace/internal/core"
	"eplace/internal/server"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
)

// ServiceOptions sizes the placement-service load experiment.
type ServiceOptions struct {
	// Jobs is the total submissions (default 200).
	Jobs int
	// Concurrent is the scheduler's slot count (default 4).
	Concurrent int
	// WorkersPerJob is each slot's gradient-kernel budget (default 1).
	WorkersPerJob int
	// CancelFrac is the fraction of jobs canceled mid-run (default 0.15).
	CancelFrac float64
	// Verify bounds how many preempted-and-resumed jobs are re-run
	// without interruption for a digest comparison (default 3; the
	// re-runs are full placements, so this dominates verification cost).
	Verify int
	// Seed drives the job mix and cancel choices (default 1).
	Seed int64
	// Dir overrides the job-state directory (default: a temp dir,
	// removed afterwards).
	Dir string
	// Log, when non-nil, receives scheduler events and progress lines.
	Log io.Writer
}

func (o *ServiceOptions) defaults() {
	if o.Jobs <= 0 {
		o.Jobs = 200
	}
	if o.Concurrent <= 0 {
		o.Concurrent = 4
	}
	if o.WorkersPerJob <= 0 {
		o.WorkersPerJob = 1
	}
	if o.CancelFrac < 0 {
		o.CancelFrac = 0
	} else if o.CancelFrac == 0 {
		o.CancelFrac = 0.15
	}
	if o.Verify <= 0 {
		o.Verify = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// serviceJob pairs a submission with what the harness knows about it.
type serviceJob struct {
	id     string
	spec   server.JobSpec
	cancel bool
}

// serviceMix builds a deterministic mixed-size job load: mostly small
// GP-only placements (the throughput filler), some full flows, a few
// mixed-size designs, plus a forced-preemption pattern — long
// low-priority jobs submitted first so the later high-priority
// submissions must preempt them.
func serviceMix(n int, rng *rand.Rand) []server.JobSpec {
	specs := make([]server.JobSpec, 0, n)
	// Preemption bait: long, low-priority, checkpoint-heavy.
	bait := n / 20
	if bait < 2 {
		bait = 2
	}
	for i := 0; i < bait && len(specs) < n; i++ {
		specs = append(specs, server.JobSpec{
			Synth: &synth.Spec{
				Name:             fmt.Sprintf("svc-bait-%02d", i),
				NumCells:         500 + rng.Intn(100),
				NumMovableMacros: 2,
			},
			GridM:    32,
			MaxIters: 500,
			Priority: 0,
		})
	}
	for len(specs) < n {
		i := len(specs)
		r := rng.Float64()
		switch {
		case r < 0.70: // small, GP-only: the queue filler
			specs = append(specs, server.JobSpec{
				Synth: &synth.Spec{
					Name:     fmt.Sprintf("svc-s%03d", i),
					NumCells: 60 + rng.Intn(120),
				},
				GridM:    16,
				MaxIters: 60 + rng.Intn(60),
				Priority: rng.Intn(2),
				GPOnly:   true,
			})
		case r < 0.90: // mid-size full flow
			specs = append(specs, server.JobSpec{
				Synth: &synth.Spec{
					Name:     fmt.Sprintf("svc-m%03d", i),
					NumCells: 150 + rng.Intn(150),
				},
				GridM:    16,
				MaxIters: 150,
				Priority: rng.Intn(3),
			})
		default: // mixed-size, high priority: the preemptors
			specs = append(specs, server.JobSpec{
				Synth: &synth.Spec{
					Name:             fmt.Sprintf("svc-x%03d", i),
					NumCells:         250 + rng.Intn(100),
					NumMovableMacros: 2,
				},
				GridM:    32,
				MaxIters: 300,
				Priority: 3,
			})
		}
	}
	return specs
}

// ServiceLoad drives the placement job server with a mixed load —
// hundreds of queued jobs, random cancellations, forced preemptions —
// waits for the queue to drain, digest-verifies preempted jobs against
// uninterrupted re-runs, and returns the throughput/latency report
// committed as BENCH_service.json.
func ServiceLoad(opt ServiceOptions) (*telemetry.ServiceReport, error) {
	opt.defaults()
	rng := rand.New(rand.NewSource(opt.Seed))

	dir := opt.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "eplace-service-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	s, err := server.New(server.Config{
		MaxConcurrent:   opt.Concurrent,
		WorkersPerJob:   opt.WorkersPerJob,
		CheckpointEvery: 5,
		QueueLimit:      opt.Jobs + 16,
		Dir:             dir,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	specs := serviceMix(opt.Jobs, rng)
	jobs := make([]*serviceJob, 0, len(specs))
	t0 := time.Now()
	for _, spec := range specs {
		st, err := s.Submit(spec)
		if err != nil {
			return nil, fmt.Errorf("submit: %w", err)
		}
		jobs = append(jobs, &serviceJob{id: st.ID, spec: spec})
	}

	// Random cancellations land while the queue drains: some hit jobs
	// still queued, some hit running placements mid-flow.
	for _, j := range jobs {
		if rng.Float64() < opt.CancelFrac {
			j.cancel = true
		}
	}
	for _, j := range jobs {
		if !j.cancel {
			continue
		}
		if _, err := s.Cancel(j.id); err != nil {
			return nil, fmt.Errorf("cancel %s: %w", j.id, err)
		}
		time.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
	}

	// Drain.
	statuses := make(map[string]server.JobStatus, len(jobs))
	for _, j := range jobs {
		for {
			st, err := s.Job(j.id)
			if err != nil {
				return nil, err
			}
			if st.State == server.StateDone || st.State == server.StateFailed ||
				st.State == server.StateCanceled {
				statuses[j.id] = st
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	elapsed := time.Since(t0)

	rep := telemetry.NewServiceReport("eplace-service")
	rep.MaxConcurrent = opt.Concurrent
	rep.WorkersPerJob = opt.WorkersPerJob
	rep.Jobs = len(jobs)
	rep.ElapsedSeconds = elapsed.Seconds()

	var wait, run, turnaround []float64
	for _, j := range jobs {
		st := statuses[j.id]
		switch st.State {
		case server.StateDone:
			rep.Done++
		case server.StateCanceled:
			rep.Canceled++
		case server.StateFailed:
			rep.Failed++
			if opt.Log != nil {
				fmt.Fprintf(opt.Log, "service: %s FAILED: %s\n", j.id, st.Error)
			}
		}
		rep.Preemptions += st.Preemptions
		rep.Resumes += st.Resumes
		if st.Started != nil {
			wait = append(wait, st.Started.Sub(st.Submitted).Seconds())
		}
		if st.RunSeconds > 0 {
			run = append(run, st.RunSeconds)
		}
		if st.Finished != nil {
			turnaround = append(turnaround, st.Finished.Sub(st.Submitted).Seconds())
		}
	}
	rep.Wait = telemetry.Percentiles(wait)
	rep.Run = telemetry.Percentiles(run)
	rep.Turnaround = telemetry.Percentiles(turnaround)
	if elapsed > 0 {
		rep.JobsPerSecond = float64(rep.Done) / elapsed.Seconds()
	}

	// Bitwise-resume verification: re-run preempted-and-finished jobs
	// without interruption and compare golden-trace digests.
	for _, j := range jobs {
		if rep.DigestChecks >= opt.Verify {
			break
		}
		st := statuses[j.id]
		if st.State != server.StateDone || st.Preemptions == 0 || st.Result == nil {
			continue
		}
		ref, err := core.Place(synth.Generate(*j.spec.Synth), core.FlowOptions{
			GP: core.Options{
				GridM:    j.spec.GridM,
				MaxIters: j.spec.MaxIters,
				Workers:  opt.WorkersPerJob,
			},
			SkipLegalization: j.spec.GPOnly,
		})
		if err != nil {
			return nil, fmt.Errorf("verify re-run of %s: %w", j.id, err)
		}
		rep.DigestChecks++
		if ok, why := telemetry.DigestsEqual(ref.Digests, st.Result.Digests); ok {
			rep.DigestMatches++
		} else if opt.Log != nil {
			fmt.Fprintf(opt.Log, "service: %s digest MISMATCH: %s\n", j.id, why)
		}
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, "service: verified %s (%d preemptions, %d resumes)\n",
				j.id, st.Preemptions, st.Resumes)
		}
	}

	if opt.Log != nil {
		fmt.Fprintf(opt.Log,
			"service: %d jobs in %.1fs (%.1f done/s): %d done %d canceled %d failed, %d preemptions %d resumes, digests %d/%d\n",
			rep.Jobs, rep.ElapsedSeconds, rep.JobsPerSecond, rep.Done, rep.Canceled,
			rep.Failed, rep.Preemptions, rep.Resumes, rep.DigestMatches, rep.DigestChecks)
	}
	return rep, nil
}
