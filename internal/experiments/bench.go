package experiments

import (
	"fmt"
	"io"
	"time"

	"eplace/internal/core"
	"eplace/internal/metrics"
	"eplace/internal/netlist"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
)

// BenchOptions tunes the machine-readable benchmark harness.
type BenchOptions struct {
	// Scale shrinks the suite cell counts (default 0.2).
	Scale float64
	// Circuits limits how many ISPD05 circuits run (0 = all).
	Circuits int
	// Workers is the gradient-kernel worker count (0 = all cores).
	Workers int
	// Log, when non-nil, receives one progress line per circuit.
	Log io.Writer
}

// BenchDesign places d with the full ePlace flow under a fresh recorder
// and returns its benchmark record: quality metrics plus the stage and
// kernel timing breakdown.
func BenchDesign(d *netlist.Design, opt RunOptions) telemetry.BenchRecord {
	rec := telemetry.New()
	if opt.Telemetry == nil {
		opt.Telemetry = rec
	} else {
		rec = opt.Telemetry
	}
	start := time.Now()
	flowRes, err := core.Place(d, core.FlowOptions{
		GP: core.Options{
			GridM: opt.GridM, MaxIters: opt.MaxIters, Trace: opt.Trace,
			Workers: opt.Workers, Telemetry: opt.Telemetry,
		},
		SkipDetail: opt.SkipDetail,
	})
	elapsed := time.Since(start).Seconds()
	rep := metrics.Measure(d.Name, string(EPlace), d, opt.GridM, elapsed, flowRes.Legal)

	b := telemetry.BenchRecord{
		Benchmark:  d.Name,
		Cells:      len(d.Cells),
		Nets:       len(d.Nets),
		Pins:       len(d.Pins),
		HPWL:       rep.HPWL,
		ScaledHPWL: rep.ScaledHPWL,
		Overflow:   rep.Overflow,
		Legal:      rep.Legal,
		Failed:     err != nil,
		Seconds:    elapsed,
		Iterations: map[string]int{},
	}
	if flowRes.MGP.Iterations > 0 {
		b.Iterations["mGP"] = flowRes.MGP.Iterations
	}
	if flowRes.CGP.Iterations > 0 {
		b.Iterations["cGP"] = flowRes.CGP.Iterations
	}
	for _, st := range flowRes.Stages {
		b.Stages = append(b.Stages, telemetry.StageSeconds{
			Name: st.Name, Seconds: st.Time.Seconds(),
		})
	}
	b.KernelsFrom(rec)
	return b
}

// BenchSuite runs the ePlace flow over the scaled ISPD05 suite and
// returns the BENCH_eplace.json payload. Each circuit gets a fresh
// recorder so per-circuit kernel aggregates do not bleed together.
func BenchSuite(opt BenchOptions) *telemetry.BenchReport {
	if opt.Scale <= 0 {
		opt.Scale = 0.2
	}
	specs := synth.ISPD05Suite(opt.Scale)
	if opt.Circuits > 0 && opt.Circuits < len(specs) {
		specs = specs[:opt.Circuits]
	}
	report := telemetry.NewBenchReport("eplace-ispd05")
	report.Scale = opt.Scale
	report.Workers = opt.Workers
	for _, spec := range specs {
		d := synth.Generate(spec)
		b := BenchDesign(d, RunOptions{Workers: opt.Workers})
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, "bench %-10s cells=%-6d HPWL=%.4g tau=%.3f legal=%v %.2fs\n",
				b.Benchmark, b.Cells, b.HPWL, b.Overflow, b.Legal, b.Seconds)
		}
		report.Add(b)
	}
	report.Sort()
	return report
}
