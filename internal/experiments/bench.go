package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"eplace/internal/core"
	"eplace/internal/detail"
	"eplace/internal/fft"
	"eplace/internal/legalize"
	"eplace/internal/metrics"
	"eplace/internal/netlist"
	"eplace/internal/parallel"
	"eplace/internal/poisson"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
	"eplace/internal/wirelength"
)

// BenchOptions tunes the machine-readable benchmark harness.
type BenchOptions struct {
	// Scale shrinks the suite cell counts (default 0.2).
	Scale float64
	// Circuits limits how many ISPD05 circuits run (0 = all).
	Circuits int
	// Workers is the gradient-kernel worker count (0 = all cores).
	Workers int
	// Log, when non-nil, receives one progress line per circuit.
	Log io.Writer

	// SweepSizes are the large single-circuit cell counts appended after
	// the suite, each placed by the multilevel V-cycle and — up to
	// SweepFlatMax cells — by the flat flow for comparison (default
	// 50000 and 100000; nil runs the default, empty slice skips).
	SweepSizes []int
	// Million appends a 1,000,000-cell row to the sweep (multilevel
	// only; the flat flow does not finish such a row in useful time).
	Million bool
	// SweepFlatMax is the largest sweep row that also gets a flat
	// baseline (default 100000).
	SweepFlatMax int
	// SweepLevels is the V-cycle depth for the sweep rows (default 5).
	SweepLevels int
	// SkipSweep drops the scale sweep entirely (suite rows only).
	SkipSweep bool

	// Poisson selects the eDensity Poisson backend the benchmark flow
	// runs (poisson.Kinds). BenchSuite defaults to spectral32, the
	// fastest backend, so the committed report carries the reduced mGP
	// density share; the per-backend microbench rows always measure all
	// backends regardless.
	Poisson string
}

// BenchDesign places d with the full ePlace flow under a fresh recorder
// and returns its benchmark record: quality metrics plus the stage and
// kernel timing breakdown.
func BenchDesign(d *netlist.Design, opt RunOptions) telemetry.BenchRecord {
	rec := telemetry.New()
	if opt.Telemetry == nil {
		opt.Telemetry = rec
	} else {
		rec = opt.Telemetry
	}
	start := time.Now()
	flowRes, err := core.Place(d, core.FlowOptions{
		GP: core.Options{
			GridM: opt.GridM, MaxIters: opt.MaxIters, Trace: opt.Trace,
			Workers: opt.Workers, Poisson: opt.Poisson, Telemetry: opt.Telemetry,
		},
		SkipDetail: opt.SkipDetail,
		Levels:     opt.Levels,
	})
	elapsed := time.Since(start).Seconds()
	rep := metrics.Measure(d.Name, string(EPlace), d, opt.GridM, elapsed, flowRes.Legal)

	b := telemetry.BenchRecord{
		Benchmark:  d.Name,
		Cells:      len(d.Cells),
		Nets:       len(d.Nets),
		Pins:       len(d.Pins),
		HPWL:       rep.HPWL,
		ScaledHPWL: rep.ScaledHPWL,
		Overflow:   rep.Overflow,
		Legal:      rep.Legal,
		Failed:     err != nil,
		Seconds:    elapsed,
		Iterations: map[string]int{},
	}
	if flowRes.MGP.Iterations > 0 {
		b.Iterations["mGP"] = flowRes.MGP.Iterations
	}
	for _, ml := range flowRes.ML {
		b.Iterations[fmt.Sprintf("mGP/L%d", ml.Level)] = ml.Result.Iterations
	}
	if flowRes.CGP.Iterations > 0 {
		b.Iterations["cGP"] = flowRes.CGP.Iterations
	}
	for _, st := range flowRes.Stages {
		b.Stages = append(b.Stages, telemetry.StageSeconds{
			Name: st.Name, Seconds: st.Time.Seconds(),
		})
	}
	b.KernelsFrom(rec)
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// timeKernel runs fn in a tight loop for roughly budget wall time
// (after one warm-up call) and returns the measurement.
func timeKernel(name string, budget time.Duration, fn func()) telemetry.MicroBench {
	fn() // warm up: first call may fault pages and fill caches
	var ops int
	var elapsed time.Duration
	for elapsed < budget && ops < 1<<20 {
		start := time.Now()
		fn()
		elapsed += time.Since(start)
		ops++
	}
	return telemetry.MicroBench{
		Name:    name,
		Ops:     ops,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(ops),
	}
}

// KernelMicrobench measures the spectral kernels that dominate the
// eDensity gradient — the packed DCT-II and the full Poisson solve —
// so BENCH_eplace.json records kernel-level speedups alongside the
// full-flow numbers. budget bounds the wall time per kernel; workers
// follows the core.Options convention (0 = all cores).
func KernelMicrobench(workers int, budget time.Duration) []telemetry.MicroBench {
	var out []telemetry.MicroBench

	r := fft.NewReal(512)
	x := make([]float64, 512)
	o1 := make([]float64, 512)
	o2 := make([]float64, 512)
	for i := range x {
		x[i] = float64(i % 13)
	}
	out = append(out,
		timeKernel("fft/DCT2_512", budget, func() { r.DCT2(x, o1) }),
		timeKernel("fft/DCT2Pair_512", budget, func() { r.DCT2Pair(x, x, o1, o2) }),
		timeKernel("fft/IDCTAndIDST_512", budget, func() { r.IDCTAndIDST(x, o1, o2) }),
	)

	// Per-backend Poisson solve rows with the float32-vs-float64 (and
	// multigrid-vs-spectral) max-relative-error column: the serial
	// float64 spectral row is the reference both for the >=2x speedup
	// acceptance line and for MaxRelErr.
	for _, m := range []int{128, 256, 512} {
		rho := make([]float64, m*m)
		rng := rand.New(rand.NewSource(1))
		for i := range rho {
			rho[i] = rng.Float64()
		}
		ref, err := poisson.NewSolverWorkers(m, 1)
		if err != nil {
			panic(err) // power-of-two literals above; unreachable
		}
		ref.Solve(rho)
		_, refEx, refEy := ref.Planes()
		for _, kind := range poisson.Kinds() {
			counts := []int{1}
			if parallel.Count(workers) > 1 {
				counts = append(counts, parallel.Count(workers))
			}
			for _, w := range counts {
				b, err := poisson.NewBackend(kind, m, w)
				if err != nil {
					panic(err)
				}
				mb := timeKernel(fmt.Sprintf("poisson/Solve_%d_%s_w%d", m, kind, w), budget,
					func() { b.Solve(rho) })
				if kind != poisson.KindSpectral {
					b.Solve(rho)
					_, ex, ey := b.Planes()
					mb.MaxRelErr = maxFloat(poisson.MaxRelError(ex, refEx),
						poisson.MaxRelError(ey, refEy))
				}
				out = append(out, mb)
			}
		}
	}

	// Back-end rows: banded row legalization and one full cDP
	// improvement pass (reorder + swap + ISM + relocate) on a 5000-cell
	// circuit, serial and — on multicore hosts — at the session worker
	// count. Positions are restored between runs so every measurement
	// legalizes/refines the same input.
	{
		const n = 5000
		d := synth.Generate(synth.Spec{Name: "backend-micro", NumCells: n})
		std := d.MovableOf(netlist.StdCell)
		if len(d.Rows) == 0 {
			legalize.BuildRows(d, d.Cells[std[0]].H, 0)
		}
		saveX := make([]float64, len(d.Cells))
		saveY := make([]float64, len(d.Cells))
		snap := func() {
			for i := range d.Cells {
				saveX[i], saveY[i] = d.Cells[i].X, d.Cells[i].Y
			}
		}
		restore := func() {
			for i := range d.Cells {
				d.Cells[i].X, d.Cells[i].Y = saveX[i], saveY[i]
			}
		}
		counts := []int{1}
		if parallel.Count(workers) > 1 {
			counts = append(counts, parallel.Count(workers))
		}
		snap()
		for _, w := range counts {
			w := w
			out = append(out, timeKernel(fmt.Sprintf("legalize/Cells_%d_w%d", n, w), budget,
				func() {
					restore()
					if _, _, err := legalize.CellsWorkers(d, std, legalize.Abacus, w); err != nil {
						panic(err)
					}
				}))
		}
		restore()
		if _, _, err := legalize.CellsWorkers(d, std, legalize.Abacus, 1); err != nil {
			panic(err)
		}
		snap() // legalized layout is the detail-pass input
		for _, w := range counts {
			w := w
			out = append(out, timeKernel(fmt.Sprintf("detail/Pass_%d_w%d", n, w), budget,
				func() {
					restore()
					if _, err := detail.Place(d, std, detail.Options{Passes: 1, Workers: w}); err != nil {
						panic(err)
					}
				}))
		}
	}

	// The fused WA wirelength kernel and the flat-view exact HPWL, at a
	// small and a large design scale (the data-oriented hot path).
	for _, cells := range []int{2000, 12000} {
		d := synth.Generate(synth.Spec{
			Name: fmt.Sprintf("wl-micro-%d", cells), NumCells: cells, NumMovableMacros: 4,
		})
		idx := d.Movable()
		cv := d.Compile()
		wl := wirelength.NewCompiled(cv, idx, 2.0)
		wl.Workers = 1
		grad := make([]float64, 2*len(idx))
		out = append(out,
			timeKernel(fmt.Sprintf("wirelength/CostAndGradient_%d_w1", cells), budget,
				func() { wl.CostAndGradient(grad) }),
			timeKernel(fmt.Sprintf("netlist/HPWL_%d", cells), budget,
				func() { cv.HPWL() }),
		)
		if parallel.Count(workers) > 1 {
			wide := wirelength.NewCompiled(cv, idx, 2.0)
			wide.Workers = workers
			out = append(out, timeKernel(
				fmt.Sprintf("wirelength/CostAndGradient_%d_w%d", cells, parallel.Count(workers)),
				budget, func() { wide.CostAndGradient(grad) }))
		}
	}
	return out
}

// BenchSuite runs the ePlace flow over the scaled ISPD05 suite and
// returns the BENCH_eplace.json payload. Each circuit gets a fresh
// recorder so per-circuit kernel aggregates do not bleed together; a
// kernel microbenchmark sweep rides along in the report header.
func BenchSuite(opt BenchOptions) *telemetry.BenchReport {
	if opt.Scale <= 0 {
		opt.Scale = 0.2
	}
	if opt.Poisson == "" {
		opt.Poisson = poisson.KindSpectral32
	}
	specs := synth.ISPD05Suite(opt.Scale)
	if opt.Circuits > 0 && opt.Circuits < len(specs) {
		specs = specs[:opt.Circuits]
	}
	report := telemetry.NewBenchReport("eplace-ispd05")
	report.Scale = opt.Scale
	report.Workers = parallel.Count(opt.Workers)
	report.Micro = KernelMicrobench(opt.Workers, 150*time.Millisecond)
	for _, spec := range specs {
		d := synth.Generate(spec)
		b := BenchDesign(d, RunOptions{Workers: opt.Workers, Poisson: opt.Poisson})
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, "bench %-10s cells=%-6d HPWL=%.4g tau=%.3f legal=%v %.2fs\n",
				b.Benchmark, b.Cells, b.HPWL, b.Overflow, b.Legal, b.Seconds)
		}
		report.Add(b)
	}
	report.Sort()
	if !opt.SkipSweep {
		for _, b := range ScaleSweep(opt) {
			report.Add(b)
		}
	}
	return report
}

// ScaleSweep runs the large-circuit rows that make the scale trajectory
// visible in BENCH_eplace.json: one synthetic circuit per sweep size,
// placed by the multilevel V-cycle and — up to SweepFlatMax cells — by
// the flat flow, so the report carries the ML-vs-flat wall-clock and
// HPWL comparison at 10^5 cells (and 10^6 behind Million). Records are
// named "SWEEP<cells>/flat" and "SWEEP<cells>/ml".
func ScaleSweep(opt BenchOptions) []telemetry.BenchRecord {
	sizes := opt.SweepSizes
	if sizes == nil {
		sizes = []int{50000, 100000}
	}
	if opt.Million {
		sizes = append(append([]int(nil), sizes...), 1000000)
	}
	flatMax := opt.SweepFlatMax
	if flatMax <= 0 {
		flatMax = 100000
	}
	levels := opt.SweepLevels
	if levels <= 0 {
		levels = 5
	}
	var out []telemetry.BenchRecord
	for _, n := range sizes {
		spec := synth.Spec{Name: fmt.Sprintf("SWEEP%d", n), NumCells: n}
		variants := []struct {
			tag    string
			levels int
		}{{"ml", levels}}
		if n <= flatMax {
			variants = append([]struct {
				tag    string
				levels int
			}{{"flat", 1}}, variants...)
		}
		for _, v := range variants {
			d := synth.Generate(spec)
			b := BenchDesign(d, RunOptions{Workers: opt.Workers, Levels: v.levels, Poisson: opt.Poisson})
			b.Benchmark = fmt.Sprintf("%s/%s", spec.Name, v.tag)
			if opt.Log != nil {
				fmt.Fprintf(opt.Log, "sweep %-14s cells=%-7d HPWL=%.4g legal=%v %.2fs\n",
					b.Benchmark, b.Cells, b.HPWL, b.Legal, b.Seconds)
			}
			out = append(out, b)
		}
	}
	return out
}
