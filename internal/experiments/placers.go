// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. VII) on the synthetic benchmark suites: the
// ISPD 2005 HPWL table, the ISPD 2006 scaled-HPWL/density-overflow
// table, the MMS mixed-size table, the convergence and snapshot figures,
// the runtime breakdown, and the ablations of Secs. V-C, V-D and VI-B.
// cmd/experiments is the CLI front end; the root bench_test.go wraps
// the same entry points as testing.B benchmarks.
package experiments

import (
	"fmt"
	"time"

	"eplace/internal/baseline/bellshape"
	"eplace/internal/baseline/mincut"
	"eplace/internal/baseline/quadratic"
	"eplace/internal/core"
	"eplace/internal/detail"
	"eplace/internal/legalize"
	"eplace/internal/metrics"
	"eplace/internal/netlist"
	"eplace/internal/qp"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
)

// Placer identifies one competitor.
type Placer string

// The placer lineup: ePlace plus one representative per category the
// paper compares against (see DESIGN.md, Substitutions).
const (
	EPlace    Placer = "ePlace"   // this paper
	FFTPL     Placer = "FFTPL"    // eDensity + CG line search [10]
	Quadratic Placer = "QuadPL"   // FastPlace3-style quadratic
	BellShape Placer = "BellPL"   // APlace/NTUplace-style nonlinear
	MinCut    Placer = "MinCutPL" // Capo-style min-cut
)

// AllPlacers is the Table I lineup.
var AllPlacers = []Placer{MinCut, Quadratic, BellShape, FFTPL, EPlace}

// Table23Placers is the Table II/III lineup: the paper's later tables
// carry no FFTPL column.
var Table23Placers = []Placer{MinCut, Quadratic, BellShape, EPlace}

// RunOptions tunes a harness run.
type RunOptions struct {
	// GridM forces the bin grid (0 = auto).
	GridM int
	// MaxIters bounds GP iterations (0 = engine default).
	MaxIters int
	// SkipDetail measures global placement + legalization only.
	SkipDetail bool
	// Levels > 1 runs the ePlace flow's multilevel V-cycle with up to
	// that many coarsening levels (ePlace flow only).
	Levels int
	// Trace collects per-iteration samples (ePlace/FFTPL only).
	Trace *core.Trace
	// Workers is the gradient-kernel worker count (0 = all cores).
	Workers int
	// Poisson selects the eDensity Poisson backend by name
	// (poisson.Kinds; "" = spectral float64).
	Poisson string
	// Telemetry, when non-nil, receives samples, spans and counters
	// from whichever placer runs.
	Telemetry *telemetry.Recorder
}

// Run places design d with the given placer and returns the scorecard.
// The design is modified in place: all placers share the same mLG,
// legalization and detail-placement backend, mirroring the paper's use
// of one common detail placer (Sec. VII).
func Run(d *netlist.Design, p Placer, opt RunOptions) metrics.Report {
	start := time.Now()
	stdCells := d.MovableOf(netlist.StdCell)
	movMacros := d.MovableOf(netlist.Macro)
	movable := d.Movable()
	failed := false

	gpOpt := core.Options{
		GridM: opt.GridM, MaxIters: opt.MaxIters, Trace: opt.Trace,
		Workers: opt.Workers, Poisson: opt.Poisson, Telemetry: opt.Telemetry,
	}

	switch p {
	case EPlace, FFTPL:
		if p == FFTPL {
			gpOpt.Solver = core.SolverCG
		}
		flowRes, err := core.Place(d, core.FlowOptions{
			GP:         gpOpt,
			SkipDetail: opt.SkipDetail,
		})
		elapsed := time.Since(start).Seconds()
		rep := metrics.Measure(d.Name, string(p), d, opt.GridM, elapsed, flowRes.Legal)
		rep.Failed = err != nil
		return rep
	case Quadratic:
		opt.Telemetry.SetStage(string(Quadratic))
		qres := quadratic.Place(d, movable, quadratic.Options{GridM: opt.GridM, Telemetry: opt.Telemetry})
		failed = qres.Iterations == 0 && len(movable) > 0
	case BellShape:
		opt.Telemetry.SetStage(string(BellShape))
		bres := bellshape.Place(d, movable, bellshape.Options{GridM: opt.GridM, Workers: opt.Workers, Telemetry: opt.Telemetry})
		failed = bres.OuterIterations == 0 && len(movable) > 0
	case MinCut:
		opt.Telemetry.SetStage(string(MinCut))
		mincut.Place(d, movable, mincut.Options{Telemetry: opt.Telemetry})
	default:
		panic(fmt.Sprintf("experiments: unknown placer %q", p))
	}

	// Shared back end: macro legalization, row legalization, detail.
	legal := finishLayout(d, stdCells, movMacros, opt, &failed)
	elapsed := time.Since(start).Seconds()
	rep := metrics.Measure(d.Name, string(p), d, opt.GridM, elapsed, legal)
	rep.Failed = failed
	return rep
}

// finishLayout applies the common mLG + legalize + detail back end used
// for the baseline placers.
func finishLayout(d *netlist.Design, stdCells, movMacros []int, opt RunOptions, failed *bool) bool {
	if len(movMacros) > 0 {
		res := legalize.Macros(d, movMacros, legalize.MLGOptions{Workers: opt.Workers})
		if !res.Legal {
			*failed = true
			return false
		}
	}
	if len(d.Rows) == 0 {
		return false
	}
	if _, _, err := legalize.CellsWorkers(d, stdCells, legalize.Abacus, opt.Workers); err != nil {
		*failed = true
		return false
	}
	if !opt.SkipDetail {
		if _, err := detail.Place(d, stdCells, detail.Options{Workers: opt.Workers}); err != nil {
			*failed = true
			return false
		}
	}
	legal := legalize.CheckLegal(d, stdCells) == nil
	if legal && len(movMacros) > 0 {
		legal = legalize.CheckMacrosLegal(d, movMacros) == nil
	}
	return legal
}

// RunSpec generates the circuit for spec and runs placer p on it.
func RunSpec(spec synth.Spec, p Placer, opt RunOptions) metrics.Report {
	d := synth.Generate(spec)
	return Run(d, p, opt)
}

// MIPOnly runs just the quadratic initial placement (used by figures
// that start from v_mIP).
func MIPOnly(d *netlist.Design) {
	qp.Place(d, d.Movable(), qp.Options{})
}
