package experiments

import (
	"fmt"
	"testing"

	"eplace/internal/baseline/mincut"
	"eplace/internal/detail"
	"eplace/internal/legalize"
	"eplace/internal/netlist"
	"eplace/internal/synth"
)

func TestDebugMinCutMMS(t *testing.T) {
	spec := synth.Spec{Name: "harness-mms", NumCells: 300, NumMovableMacros: 3}
	d := synth.Generate(spec)
	movable := d.Movable()
	mincut.Place(d, movable, mincut.Options{})
	macros := d.MovableOf(netlist.Macro)
	legalize.Macros(d, macros, legalize.MLGOptions{})
	std := d.MovableOf(netlist.StdCell)
	if _, _, err := legalize.Cells(d, std, legalize.Abacus); err != nil {
		fmt.Println("legalize err:", err)
		return
	}
	if e := legalize.CheckLegal(d, std); e != nil {
		fmt.Println("violation pre-detail:", e)
	}
	if _, err := detail.Place(d, std, detail.Options{}); err != nil {
		fmt.Println("detail err:", err)
	}
	if e := legalize.CheckLegal(d, std); e != nil {
		fmt.Println("violation post-detail:", e)
	}
}
