package experiments

import (
	"fmt"
	"io"
	"math"

	"eplace/internal/metrics"
	"eplace/internal/synth"
)

// TableResult holds one regenerated table.
type TableResult struct {
	Title    string
	Circuits []string
	Placers  []Placer
	// Cell[circuit][placer] is the per-run report.
	Cell map[string]map[Placer]metrics.Report
}

// runSuite executes every placer on every circuit of the suite.
func runSuite(title string, specs []synth.Spec, placers []Placer, opt RunOptions, progress io.Writer) *TableResult {
	tr := &TableResult{Title: title, Placers: placers, Cell: map[string]map[Placer]metrics.Report{}}
	for _, spec := range specs {
		tr.Circuits = append(tr.Circuits, spec.Name)
		tr.Cell[spec.Name] = map[Placer]metrics.Report{}
		for _, p := range placers {
			if progress != nil {
				fmt.Fprintf(progress, "# running %-9s on %-10s ...", p, spec.Name)
			}
			rep := RunSpec(spec, p, opt)
			tr.Cell[spec.Name][p] = rep
			if progress != nil {
				fmt.Fprintf(progress, " HPWL=%.4g sHPWL=%.4g tau=%.3f t=%.1fs legal=%v failed=%v\n",
					rep.HPWL, rep.ScaledHPWL, rep.Overflow, rep.Seconds, rep.Legal, rep.Failed)
			}
		}
	}
	return tr
}

// metricOf selects the table's quality metric.
type metricOf func(metrics.Report) float64

func hpwlMetric(r metrics.Report) float64   { return r.HPWL }
func scaledMetric(r metrics.Report) float64 { return r.ScaledHPWL }

// Print renders the table in the paper's layout: one row per circuit,
// one column per placer, then average quality gap vs ePlace, average
// runtime ratio, and (when asked) average density-overflow ratio.
func (tr *TableResult) Print(w io.Writer, metric metricOf, withOverflow bool) {
	fmt.Fprintf(w, "%s\n", tr.Title)
	fmt.Fprintf(w, "%-11s", "Circuit")
	for _, p := range tr.Placers {
		fmt.Fprintf(w, " %12s", p)
	}
	fmt.Fprintln(w)
	for _, c := range tr.Circuits {
		fmt.Fprintf(w, "%-11s", c)
		for _, p := range tr.Placers {
			rep := tr.Cell[c][p]
			if rep.Failed {
				fmt.Fprintf(w, " %12s", "N/A")
			} else {
				fmt.Fprintf(w, " %12.4g", metric(rep))
			}
		}
		fmt.Fprintln(w)
	}
	// Average quality gap vs ePlace (geometric-mean style arithmetic
	// average of per-circuit ratios, as the paper's "Average HPWL" row).
	fmt.Fprintf(w, "%-11s", "AvgGap%")
	for _, p := range tr.Placers {
		gap, n := 0.0, 0
		for _, c := range tr.Circuits {
			base := tr.Cell[c][EPlace]
			rep := tr.Cell[c][p]
			if rep.Failed || base.Failed || metric(base) == 0 {
				continue
			}
			gap += metric(rep)/metric(base) - 1
			n++
		}
		if n == 0 {
			fmt.Fprintf(w, " %12s", "N/A")
		} else {
			fmt.Fprintf(w, " %11.2f%%", 100*gap/float64(n))
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-11s", "AvgRuntime")
	for _, p := range tr.Placers {
		ratio, n := 0.0, 0
		for _, c := range tr.Circuits {
			base := tr.Cell[c][EPlace]
			rep := tr.Cell[c][p]
			if rep.Failed || base.Failed || base.Seconds == 0 {
				continue
			}
			ratio += rep.Seconds / base.Seconds
			n++
		}
		if n == 0 {
			fmt.Fprintf(w, " %12s", "N/A")
		} else {
			fmt.Fprintf(w, " %11.2fx", ratio/float64(n))
		}
	}
	fmt.Fprintln(w)
	if withOverflow {
		fmt.Fprintf(w, "%-11s", "AvgOverflow")
		for _, p := range tr.Placers {
			ratio, n := 0.0, 0
			for _, c := range tr.Circuits {
				base := tr.Cell[c][EPlace]
				rep := tr.Cell[c][p]
				if rep.Failed || base.Failed {
					continue
				}
				den := math.Max(base.OverflowPerBin, 1e-6)
				ratio += math.Max(rep.OverflowPerBin, 1e-6) / den
				n++
			}
			if n == 0 {
				fmt.Fprintf(w, " %12s", "N/A")
			} else {
				fmt.Fprintf(w, " %11.2fx", ratio/float64(n))
			}
		}
		fmt.Fprintln(w)
	}
	// Wins row: circuits where this placer has the best metric.
	fmt.Fprintf(w, "%-11s", "Wins")
	for _, p := range tr.Placers {
		wins := 0
		for _, c := range tr.Circuits {
			best, bestP := math.Inf(1), Placer("")
			for _, q := range tr.Placers {
				rep := tr.Cell[c][q]
				if rep.Failed {
					continue
				}
				if v := metric(rep); v < best {
					best, bestP = v, q
				}
			}
			if bestP == p {
				wins++
			}
		}
		fmt.Fprintf(w, " %12d", wins)
	}
	fmt.Fprintln(w)
}

// Table1 regenerates Table I: HPWL on the ISPD 2005-like suite
// (std-cell mode: macros fixed).
func Table1(scale float64, opt RunOptions, out, progress io.Writer) *TableResult {
	tr := runSuite("Table I: HPWL on ISPD2005-like suite (std-cell)", synth.ISPD05Suite(scale), AllPlacers, opt, progress)
	tr.Print(out, hpwlMetric, false)
	return tr
}

// Table2 regenerates Table II: scaled HPWL and density overflow on the
// ISPD 2006-like suite with benchmark target densities.
func Table2(scale float64, opt RunOptions, out, progress io.Writer) *TableResult {
	// The paper's Table II lineup has no FFTPL column; omitting the
	// CG baseline here also matches it being the slowest placer by far.
	tr := runSuite("Table II: scaled HPWL on ISPD2006-like suite (rho_t targets)", synth.ISPD06Suite(scale), Table23Placers, opt, progress)
	tr.Print(out, scaledMetric, true)
	return tr
}

// Table3 regenerates Table III: HPWL on the MMS-like suite with movable
// macros (full mixed-size flow).
func Table3(scale float64, opt RunOptions, out, progress io.Writer) *TableResult {
	tr := runSuite("Table III: (scaled) HPWL on MMS-like suite (mixed-size)", synth.MMSSuite(scale), Table23Placers, opt, progress)
	tr.Print(out, scaledMetric, true)
	return tr
}
