package experiments

import (
	"strings"
	"testing"
	"time"
)

// KernelMicrobench must measure every spectral kernel with at least one
// op and a positive rate, serial and (when workers allow) parallel.
func TestKernelMicrobench(t *testing.T) {
	micro := KernelMicrobench(1, time.Millisecond)
	if len(micro) == 0 {
		t.Fatal("no microbenchmarks recorded")
	}
	names := map[string]bool{}
	for _, mb := range micro {
		if mb.Ops < 1 || mb.NsPerOp <= 0 {
			t.Errorf("%s: ops=%d ns/op=%v", mb.Name, mb.Ops, mb.NsPerOp)
		}
		names[mb.Name] = true
	}
	for _, want := range []string{"fft/DCT2_512", "fft/DCT2Pair_512", "fft/IDCTAndIDST_512",
		"poisson/Solve_128_spectral_w1", "poisson/Solve_256_spectral_w1",
		"poisson/Solve_256_spectral32_w1", "poisson/Solve_256_multigrid_w1",
		"legalize/Cells_5000_w1", "detail/Pass_5000_w1"} {
		if !names[want] {
			t.Errorf("missing kernel %q in %v", want, micro)
		}
	}
	// The non-reference backends carry the error-vs-float64 column.
	for _, mb := range micro {
		if strings.Contains(mb.Name, "spectral32") && (mb.MaxRelErr <= 0 || mb.MaxRelErr > 1e-4) {
			t.Errorf("%s: max_rel_err = %v, want (0, 1e-4]", mb.Name, mb.MaxRelErr)
		}
	}
	// workers=1: no parallel variants should appear.
	for name := range names {
		if strings.Contains(name, "_w") && !strings.HasSuffix(name, "_w1") {
			t.Errorf("unexpected parallel kernel %q at workers=1", name)
		}
	}
}

// The suite harness stamps the resolved worker count and attaches the
// microbenchmark sweep to the report header.
func TestBenchSuiteRecordsEnvironment(t *testing.T) {
	if testing.Short() {
		t.Skip("full placements")
	}
	rep := BenchSuite(BenchOptions{Scale: 0.05, Circuits: 1, Workers: 2, SkipSweep: true})
	if rep.Workers != 2 {
		t.Errorf("workers = %d, want 2", rep.Workers)
	}
	if rep.GOMAXPROCS <= 0 {
		t.Errorf("gomaxprocs = %d", rep.GOMAXPROCS)
	}
	if len(rep.Micro) == 0 {
		t.Error("no microbenchmarks attached to report")
	}
	if len(rep.Records) != 1 {
		t.Errorf("records = %d, want 1", len(rep.Records))
	}
}

// The scale sweep emits a flat and a multilevel row per size (flat only
// up to SweepFlatMax) with per-level iteration counts on the ML rows.
func TestScaleSweepRows(t *testing.T) {
	if testing.Short() {
		t.Skip("full placements")
	}
	recs := ScaleSweep(BenchOptions{
		SweepSizes: []int{2500}, SweepFlatMax: 2500, SweepLevels: 3, Workers: 2,
	})
	if len(recs) != 2 {
		t.Fatalf("records = %d, want flat+ml", len(recs))
	}
	if recs[0].Benchmark != "SWEEP2500/flat" || recs[1].Benchmark != "SWEEP2500/ml" {
		t.Fatalf("record names = %q, %q", recs[0].Benchmark, recs[1].Benchmark)
	}
	for _, b := range recs {
		if !b.Legal || b.Failed {
			t.Errorf("%s: legal=%v failed=%v", b.Benchmark, b.Legal, b.Failed)
		}
	}
	if recs[1].Iterations["mGP/L1"] == 0 {
		t.Errorf("ml row missing per-level iterations: %v", recs[1].Iterations)
	}
	found := false
	for _, st := range recs[1].Stages {
		if st.Name == "mGP/L1" && st.Seconds > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("ml row missing per-level stage time: %+v", recs[1].Stages)
	}
}
