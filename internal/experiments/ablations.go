package experiments

import (
	"fmt"
	"io"

	"eplace/internal/core"
	"eplace/internal/legalize"
	"eplace/internal/synth"
)

// ablationRun executes the full flow twice on each circuit — baseline
// options vs modified options — and reports the wirelength delta and
// failures, the shape of the paper's Secs. V-C/V-D/VI-B ablations.
func ablationRun(title string, specs []synth.Spec, modify func(*core.Options), opt RunOptions, out io.Writer) {
	fmt.Fprintf(out, "# %s\n", title)
	fmt.Fprintf(out, "circuit,hpwl_base,hpwl_ablated,delta%%,mgp_delta%%,iters_base,iters_ablated,failed\n")
	var sum, mgpSum float64
	var n, failures int
	for _, spec := range specs {
		base := synth.Generate(spec)
		gp := core.Options{GridM: opt.GridM, MaxIters: opt.MaxIters}
		resBase, errBase := core.Place(base, core.FlowOptions{GP: gp})

		abl := synth.Generate(spec)
		gpA := gp
		modify(&gpA)
		resAbl, errAbl := core.Place(abl, core.FlowOptions{GP: gpA})

		failed := errAbl != nil || resAbl.MGP.Diverged || (errBase == nil && !resAbl.Legal && resBase.Legal)
		if errBase != nil {
			fmt.Fprintf(out, "%s,N/A,N/A,N/A,base-failed\n", spec.Name)
			continue
		}
		if failed {
			failures++
			fmt.Fprintf(out, "%s,%.6g,N/A,N/A,%d,N/A,true\n", spec.Name, resBase.HPWL, resBase.MGP.Iterations)
			continue
		}
		delta := 100 * (resAbl.HPWL/resBase.HPWL - 1)
		mgpDelta := 100 * (resAbl.MGP.HPWL/resBase.MGP.HPWL - 1)
		sum += delta
		mgpSum += mgpDelta
		n++
		fmt.Fprintf(out, "%s,%.6g,%.6g,%.2f,%.2f,%d,%d,false\n",
			spec.Name, resBase.HPWL, resAbl.HPWL, delta, mgpDelta, resBase.MGP.Iterations, resAbl.MGP.Iterations)
	}
	if n > 0 {
		fmt.Fprintf(out, "# average wirelength delta on non-failing circuits: %.2f%% (mGP level: %.2f%%)\n",
			sum/float64(n), mgpSum/float64(n))
	}
	fmt.Fprintf(out, "# failures: %d of %d\n", failures, len(specs))
}

// AblateBacktracking regenerates the Sec. V-C study: disabling BkTrk
// (paper: one failure, +43.12%% wirelength on the rest).
func AblateBacktracking(scale float64, circuits int, opt RunOptions, out io.Writer) {
	ablationRun("Ablation (Sec. V-C): steplength backtracking disabled",
		truncate(synth.MMSSuite(scale), circuits),
		func(o *core.Options) { o.DisableBkTrk = true }, opt, out)
}

// AblatePreconditioner regenerates the Sec. V-D study: disabling the
// preconditioner (paper: 9/16 failures, +24.63%% on the rest). The
// pathology needs macros that dwarf standard cells — in the real MMS
// circuits macros are 1e3-1e6 cell areas — so the study runs on a
// large-macro variant of the suite (half the movable area in a handful
// of macros) rather than the count-scaled default, whose macros are
// only ~10 cell areas.
func AblatePreconditioner(scale float64, circuits int, opt RunOptions, out io.Writer) {
	specs := truncate(synth.MMSSuite(scale), circuits)
	for i := range specs {
		specs[i].MacroAreaFrac = 0.5
		if specs[i].NumMovableMacros > 8 {
			specs[i].NumMovableMacros = 8
		}
	}
	ablationRun("Ablation (Sec. V-D): preconditioner disabled (large-macro variant)",
		specs,
		func(o *core.Options) { o.DisablePrecond = true }, opt, out)
}

// AblateFillerPhase regenerates the Sec. VI-B study: skipping cGP's
// filler-only placement (paper: +6.53%% wirelength).
func AblateFillerPhase(scale float64, circuits int, opt RunOptions, out io.Writer) {
	ablationRun("Ablation (Sec. VI-B): cGP filler-only placement disabled",
		truncate(synth.MMSSuite(scale), circuits),
		func(o *core.Options) { o.DisableFillerPhase = true }, opt, out)
}

// LineSearchStudy regenerates footnote 2: the objective-evaluation cost
// of CG line search (FFTPL) vs Nesterov's near-one gradient per
// iteration on the same eDensity objective.
func LineSearchStudy(scale float64, opt RunOptions, out io.Writer) {
	spec := mmsAdaptec1(scale)

	dn := synth.Generate(spec)
	gp := core.Options{GridM: opt.GridM, MaxIters: opt.MaxIters}
	MIPOnly(dn)
	core.InsertFillers(dn, 2)
	resN, errN := core.PlaceGlobal(dn, dn.Movable(), gp, "mGP", 0)

	dc := synth.Generate(spec)
	gpc := gp
	gpc.Solver = core.SolverCG
	MIPOnly(dc)
	core.InsertFillers(dc, 2)
	resC, errC := core.PlaceGlobal(dc, dc.Movable(), gpc, "mGP", 0)
	if errN != nil || errC != nil {
		fmt.Fprintf(out, "# error: nesterov=%v cg=%v\n", errN, errC)
		return
	}

	fmt.Fprintf(out, "# Footnote 2: line-search cost, eDensity objective, MMS-like ADAPTEC1\n")
	fmt.Fprintf(out, "solver,iters,grad_evals_per_iter,cost_evals_per_iter,hpwl,tau,seconds\n")
	nPerIter := 1 + float64(resN.Backtracks)/float64(maxInt(resN.Iterations, 1))
	fmt.Fprintf(out, "Nesterov,%d,%.3f,0,%.6g,%.3f,%.2f\n",
		resN.Iterations, nPerIter, resN.HPWL, resN.Overflow, resN.Total.Seconds())
	cPerIter := float64(resC.CostEvals) / float64(maxInt(resC.Iterations, 1))
	fmt.Fprintf(out, "CG(FFTPL),%d,1.0,%.3f,%.6g,%.3f,%.2f\n",
		resC.Iterations, cPerIter, resC.HPWL, resC.Overflow, resC.Total.Seconds())
	lsShare := float64(resC.CostEvals) / float64(resC.CostEvals+resC.Iterations)
	fmt.Fprintf(out, "# line-search share of CG objective evaluations: %.0f%% (paper: >60%% of runtime)\n", 100*lsShare)
	fmt.Fprintf(out, "# Nesterov average backtracks/iter: %.3f (paper: 1.037)\n",
		float64(resN.Backtracks)/float64(maxInt(resN.Iterations, 1)))
}

func truncate(specs []synth.Spec, n int) []synth.Spec {
	if n > 0 && n < len(specs) {
		return specs[:n]
	}
	return specs
}

// RotationStudy mirrors Table III's NP3U-NR vs NP3U columns: the same
// mixed-size flow with macro rotation disabled (the paper's protocol)
// vs enabled (the extension). The paper reports NTUplace3 gaining 0.27%
// from rotation; the mechanism, not the exact number, is the point.
func RotationStudy(scale float64, circuits int, opt RunOptions, out io.Writer) {
	specs := truncate(synth.MMSSuite(scale), circuits)
	fmt.Fprintf(out, "# Rotation study: mLG with AllowOrient off (NR) vs on\n")
	fmt.Fprintf(out, "circuit,hpwl_nr,hpwl_rot,delta%%\n")
	sum, n := 0.0, 0
	for _, spec := range specs {
		gp := core.Options{GridM: opt.GridM, MaxIters: opt.MaxIters}
		dNR := synth.Generate(spec)
		resNR, errNR := core.Place(dNR, core.FlowOptions{GP: gp})
		dR := synth.Generate(spec)
		resR, errR := core.Place(dR, core.FlowOptions{
			GP:  gp,
			MLG: legalize.MLGOptions{AllowOrient: true},
		})
		if errNR != nil || errR != nil {
			fmt.Fprintf(out, "%s,N/A,N/A,N/A\n", spec.Name)
			continue
		}
		delta := 100 * (resR.HPWL/resNR.HPWL - 1)
		sum += delta
		n++
		fmt.Fprintf(out, "%s,%.6g,%.6g,%.2f\n", spec.Name, resNR.HPWL, resR.HPWL, delta)
	}
	if n > 0 {
		fmt.Fprintf(out, "# average rotation delta: %.2f%% (negative = rotation helps; paper's NP3U gains ~0.3%%)\n", sum/float64(n))
	}
}
