package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArith(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dist(q); !almostEq(got, math.Hypot(2, 6)) {
		t.Errorf("Dist = %v", got)
	}
	if got := p.Manhattan(q); !almostEq(got, 8) {
		t.Errorf("Manhattan = %v", got)
	}
}

func TestRectConstructors(t *testing.T) {
	r := NewRectWH(1, 2, 3, 4)
	if r != (Rect{1, 2, 4, 6}) {
		t.Fatalf("NewRectWH = %v", r)
	}
	c := NewRectCenter(0, 0, 2, 4)
	if c != (Rect{-1, -2, 1, 2}) {
		t.Fatalf("NewRectCenter = %v", c)
	}
	if !almostEq(r.W(), 3) || !almostEq(r.H(), 4) || !almostEq(r.Area(), 12) {
		t.Errorf("W/H/Area = %v %v %v", r.W(), r.H(), r.Area())
	}
	if ctr := r.Center(); !almostEq(ctr.X, 2.5) || !almostEq(ctr.Y, 4) {
		t.Errorf("Center = %v", ctr)
	}
}

func TestRectDegenerate(t *testing.T) {
	r := Rect{0, 0, 0, 5}
	if !r.Valid() {
		t.Error("zero-width rect should be valid")
	}
	if !r.Empty() {
		t.Error("zero-width rect should be empty")
	}
	if r.Area() != 0 {
		t.Errorf("Area = %v, want 0", r.Area())
	}
	bad := Rect{1, 0, 0, 5}
	if bad.Valid() {
		t.Error("inverted rect should be invalid")
	}
}

func TestContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},   // closed on low edges
		{Point{10, 5}, false}, // open on high edges
		{Point{5, 10}, false},
		{Point{-1, 5}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !r.ContainsRect(Rect{0, 0, 10, 10}) {
		t.Error("rect should contain itself")
	}
	if r.ContainsRect(Rect{5, 5, 11, 6}) {
		t.Error("rect should not contain an overhanging rect")
	}
}

func TestOverlapCases(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	cases := []struct {
		b    Rect
		want float64
	}{
		{Rect{2, 2, 6, 6}, 4},   // corner overlap
		{Rect{4, 0, 8, 4}, 0},   // edge-touching
		{Rect{5, 5, 6, 6}, 0},   // disjoint
		{Rect{1, 1, 3, 3}, 4},   // contained
		{Rect{0, 0, 4, 4}, 16},  // identical
		{Rect{-2, 1, 2, 2}, 2},  // partial
		{Rect{-5, -5, 0, 0}, 0}, // corner-touching
	}
	for _, c := range cases {
		if got := a.Overlap(c.b); !almostEq(got, c.want) {
			t.Errorf("Overlap(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := a.Intersects(c.b); got != (c.want > 0) {
			t.Errorf("Intersects(%v, %v) = %v", a, c.b, got)
		}
	}
}

func TestIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 1, 6, 3}
	i := a.Intersect(b)
	if i != (Rect{2, 1, 4, 3}) {
		t.Errorf("Intersect = %v", i)
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 6, 4}) {
		t.Errorf("Union = %v", u)
	}
	// Disjoint intersection is degenerate but valid.
	d := a.Intersect(Rect{10, 10, 12, 12})
	if !d.Valid() || !d.Empty() {
		t.Errorf("disjoint Intersect = %v, want valid empty", d)
	}
}

func TestTranslateExpand(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if got := r.Translate(1, -1); got != (Rect{1, -1, 3, 1}) {
		t.Errorf("Translate = %v", got)
	}
	if got := r.Expand(1); got != (Rect{-1, -1, 3, 3}) {
		t.Errorf("Expand = %v", got)
	}
	if got := r.Expand(-0.5); got != (Rect{0.5, 0.5, 1.5, 1.5}) {
		t.Errorf("shrink = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp basic cases failed")
	}
	region := Rect{0, 0, 100, 50}
	p := ClampPoint(Point{-10, 60}, 10, 6, region)
	if p != (Point{5, 47}) {
		t.Errorf("ClampPoint = %v", p)
	}
	// Already inside: unchanged.
	q := ClampPoint(Point{50, 25}, 10, 6, region)
	if q != (Point{50, 25}) {
		t.Errorf("ClampPoint inside = %v", q)
	}
}

func TestClampRectInside(t *testing.T) {
	region := Rect{0, 0, 100, 100}
	r := ClampRectInside(Rect{-5, 95, 5, 105}, region)
	if r != (Rect{0, 90, 10, 100}) {
		t.Errorf("ClampRectInside = %v", r)
	}
	// Inside already: unchanged.
	in := Rect{10, 10, 20, 20}
	if got := ClampRectInside(in, region); got != in {
		t.Errorf("ClampRectInside inside = %v", got)
	}
}

// Property: overlap is symmetric and bounded by both areas.
func TestOverlapPropertySymmetric(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := NewRectWH(mod(ax, 100), mod(ay, 100), mod(aw, 50), mod(ah, 50))
		b := NewRectWH(mod(bx, 100), mod(by, 100), mod(bw, 50), mod(bh, 50))
		o1, o2 := a.Overlap(b), b.Overlap(a)
		if !almostEq(o1, o2) {
			return false
		}
		return o1 <= a.Area()+1e-9 && o1 <= b.Area()+1e-9 && o1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Intersect area equals Overlap.
func TestIntersectAreaMatchesOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := NewRectWH(rng.Float64()*100, rng.Float64()*100, rng.Float64()*50, rng.Float64()*50)
		b := NewRectWH(rng.Float64()*100, rng.Float64()*100, rng.Float64()*50, rng.Float64()*50)
		if got, want := a.Intersect(b).Area(), a.Overlap(b); !almostEq(got, want) {
			t.Fatalf("Intersect.Area=%v Overlap=%v for %v %v", got, want, a, b)
		}
	}
}

// Property: union contains both operands; intersect is contained in both.
func TestUnionIntersectContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		a := NewRectWH(rng.Float64()*100-50, rng.Float64()*100-50, rng.Float64()*40, rng.Float64()*40)
		b := NewRectWH(rng.Float64()*100-50, rng.Float64()*100-50, rng.Float64()*40, rng.Float64()*40)
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatalf("union %v does not contain %v and %v", u, a, b)
		}
		x := a.Intersect(b)
		if !x.Empty() && (!a.ContainsRect(x) || !b.ContainsRect(x)) {
			t.Fatalf("intersect %v not contained in %v and %v", x, a, b)
		}
	}
}

// Property: ClampPoint always produces an in-region placement when the
// object fits.
func TestClampPointProperty(t *testing.T) {
	region := Rect{0, 0, 100, 80}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		w := rng.Float64() * 90
		h := rng.Float64() * 70
		p := Point{rng.Float64()*400 - 200, rng.Float64()*400 - 200}
		c := ClampPoint(p, w, h, region)
		r := NewRectCenter(c.X, c.Y, w, h)
		if r.Lx < region.Lx-1e-9 || r.Hx > region.Hx+1e-9 || r.Ly < region.Ly-1e-9 || r.Hy > region.Hy+1e-9 {
			t.Fatalf("clamped rect %v escapes region (w=%v h=%v p=%v)", r, w, h, p)
		}
	}
}

func mod(x, m float64) float64 {
	x = math.Mod(math.Abs(x), m)
	if math.IsNaN(x) {
		return 0
	}
	return x
}
