// Package geom provides the small set of planar geometry primitives used
// throughout the placer: points, rectangles, overlap computation and
// clamping. All coordinates are float64 in the design's database units.
package geom

import (
	"fmt"
	"math"
)

// Point is a location on the placement plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// String formats the point for debugging.
func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle described by its lower-left (Lx, Ly)
// and upper-right (Hx, Hy) corners. A Rect is well formed when Lx <= Hx
// and Ly <= Hy; a degenerate Rect may have zero width or height.
type Rect struct {
	Lx, Ly, Hx, Hy float64
}

// NewRectWH builds a rectangle from a lower-left corner and a size.
func NewRectWH(lx, ly, w, h float64) Rect {
	return Rect{Lx: lx, Ly: ly, Hx: lx + w, Hy: ly + h}
}

// NewRectCenter builds a rectangle of size w x h centered at (cx, cy).
func NewRectCenter(cx, cy, w, h float64) Rect {
	return Rect{Lx: cx - w/2, Ly: cy - h/2, Hx: cx + w/2, Hy: cy + h/2}
}

// W returns the rectangle width.
func (r Rect) W() float64 { return r.Hx - r.Lx }

// H returns the rectangle height.
func (r Rect) H() float64 { return r.Hy - r.Ly }

// Area returns the rectangle area; degenerate rectangles have zero area.
func (r Rect) Area() float64 {
	if r.Hx <= r.Lx || r.Hy <= r.Ly {
		return 0
	}
	return (r.Hx - r.Lx) * (r.Hy - r.Ly)
}

// Center returns the rectangle center.
func (r Rect) Center() Point { return Point{(r.Lx + r.Hx) / 2, (r.Ly + r.Hy) / 2} }

// Valid reports whether r is well formed (non-negative extent).
func (r Rect) Valid() bool { return r.Lx <= r.Hx && r.Ly <= r.Hy }

// Empty reports whether r encloses zero area.
func (r Rect) Empty() bool { return r.Hx <= r.Lx || r.Hy <= r.Ly }

// Contains reports whether the point p lies inside r (closed on the low
// edges, open on the high edges, matching bin-membership semantics).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lx && p.X < r.Hx && p.Y >= r.Ly && p.Y < r.Hy
}

// ContainsRect reports whether q lies entirely inside r (closed test).
func (r Rect) ContainsRect(q Rect) bool {
	return q.Lx >= r.Lx && q.Hx <= r.Hx && q.Ly >= r.Ly && q.Hy <= r.Hy
}

// Intersect returns the intersection of r and q. The result may be
// degenerate (Empty) when the rectangles do not overlap.
func (r Rect) Intersect(q Rect) Rect {
	out := Rect{
		Lx: math.Max(r.Lx, q.Lx),
		Ly: math.Max(r.Ly, q.Ly),
		Hx: math.Min(r.Hx, q.Hx),
		Hy: math.Min(r.Hy, q.Hy),
	}
	if out.Hx < out.Lx {
		out.Hx = out.Lx
	}
	if out.Hy < out.Ly {
		out.Hy = out.Ly
	}
	return out
}

// Overlap returns the overlap area between r and q.
func (r Rect) Overlap(q Rect) float64 {
	w := math.Min(r.Hx, q.Hx) - math.Max(r.Lx, q.Lx)
	if w <= 0 {
		return 0
	}
	h := math.Min(r.Hy, q.Hy) - math.Max(r.Ly, q.Ly)
	if h <= 0 {
		return 0
	}
	return w * h
}

// Intersects reports whether r and q overlap with positive area.
func (r Rect) Intersects(q Rect) bool {
	return r.Lx < q.Hx && q.Lx < r.Hx && r.Ly < q.Hy && q.Ly < r.Hy
}

// Union returns the bounding box of r and q.
func (r Rect) Union(q Rect) Rect {
	return Rect{
		Lx: math.Min(r.Lx, q.Lx),
		Ly: math.Min(r.Ly, q.Ly),
		Hx: math.Max(r.Hx, q.Hx),
		Hy: math.Max(r.Hy, q.Hy),
	}
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{r.Lx + dx, r.Ly + dy, r.Hx + dx, r.Hy + dy}
}

// Expand returns r grown by d on every side (shrunk when d < 0).
func (r Rect) Expand(d float64) Rect {
	return Rect{r.Lx - d, r.Ly - d, r.Hx + d, r.Hy + d}
}

// String formats the rectangle for debugging.
func (r Rect) String() string {
	return fmt.Sprintf("[%.4g %.4g %.4g %.4g]", r.Lx, r.Ly, r.Hx, r.Hy)
}

// Clamp returns x limited to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampPoint limits p so that a w x h rectangle whose center is the
// returned point fits entirely inside region.
func ClampPoint(p Point, w, h float64, region Rect) Point {
	return Point{
		X: Clamp(p.X, region.Lx+w/2, region.Hx-w/2),
		Y: Clamp(p.Y, region.Ly+h/2, region.Hy-h/2),
	}
}

// ClampRectInside returns r translated by the minimum amount needed to
// fit inside region. If r is larger than region along an axis it is
// aligned to the region's low edge on that axis.
func ClampRectInside(r, region Rect) Rect {
	dx, dy := 0.0, 0.0
	switch {
	case r.Lx < region.Lx:
		dx = region.Lx - r.Lx
	case r.Hx > region.Hx:
		dx = region.Hx - r.Hx
	}
	switch {
	case r.Ly < region.Ly:
		dy = region.Ly - r.Ly
	case r.Hy > region.Hy:
		dy = region.Hy - r.Hy
	}
	return r.Translate(dx, dy)
}
