package grid

import (
	"math"
	"math/rand"
	"testing"

	"eplace/internal/geom"
)

// randomBatch builds n random objects plus the SoA mirror arrays that
// AddCellsSoA reads (indexed by a shuffled cell id, like a compiled
// netlist view).
func randomBatch(n int, seed int64) (objs []Object, idx []int, x, y, w, h []float64, filler []bool) {
	rng := rand.New(rand.NewSource(seed))
	objs = make([]Object, n)
	idx = make([]int, n)
	total := 2 * n // SoA arrays cover more cells than the batch rasterizes
	x = make([]float64, total)
	y = make([]float64, total)
	w = make([]float64, total)
	h = make([]float64, total)
	filler = make([]bool, total)
	perm := rng.Perm(total)
	for i := 0; i < n; i++ {
		o := Object{
			X: rng.Float64() * 100, Y: rng.Float64() * 100,
			W: rng.Float64() * 10, H: rng.Float64() * 10,
			Filler: rng.Intn(3) == 0,
		}
		objs[i] = o
		ci := perm[i]
		idx[i] = ci
		x[ci], y[ci], w[ci], h[ci], filler[ci] = o.X, o.Y, o.W, o.H, o.Filler
	}
	return
}

// TestAddCellsSoAMatchesAddObjects locks the equivalence the density
// model relies on: rasterizing straight from SoA arrays is bit-for-bit
// the same as gathering []Object and calling AddObjects, at several
// worker counts.
func TestAddCellsSoAMatchesAddObjects(t *testing.T) {
	region := geom.Rect{Hx: 100, Hy: 100}
	objs, idx, x, y, w, h, filler := randomBatch(500, 5)
	ref := New(region, 32)
	ref.AddObjects(objs, 1)
	for _, workers := range []int{1, 2, 7} {
		g := New(region, 32)
		g.AddCellsSoA(idx, x, y, w, h, filler, workers)
		for b := range ref.Mov {
			if math.Float64bits(g.Mov[b]) != math.Float64bits(ref.Mov[b]) ||
				math.Float64bits(g.Fill[b]) != math.Float64bits(ref.Fill[b]) {
				t.Fatalf("workers=%d: bin %d differs: mov %v vs %v, fill %v vs %v",
					workers, b, g.Mov[b], ref.Mov[b], g.Fill[b], ref.Fill[b])
			}
		}
	}
}

// TestRasterizeAllocFree pins the steady-state allocation contract of
// both batch rasterization entry points at workers=1.
func TestRasterizeAllocFree(t *testing.T) {
	region := geom.Rect{Hx: 100, Hy: 100}
	objs, idx, x, y, w, h, filler := randomBatch(300, 9)
	g := New(region, 32)
	g.AddObjects(objs, 1)                     // size scratch
	g.AddCellsSoA(idx, x, y, w, h, filler, 1) // size scratch
	if n := testing.AllocsPerRun(20, func() {
		g.ClearMovable()
		g.AddObjects(objs, 1)
	}); n != 0 {
		t.Errorf("AddObjects allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		g.ClearMovable()
		g.AddCellsSoA(idx, x, y, w, h, filler, 1)
	}); n != 0 {
		t.Errorf("AddCellsSoA allocates %v times per call, want 0", n)
	}
}
