package grid

import (
	"math"
	"math/rand"
	"testing"

	"eplace/internal/geom"
)

func region100() geom.Rect { return geom.Rect{Lx: 0, Ly: 0, Hx: 100, Hy: 100} }

func TestNewRejectsBadSize(t *testing.T) {
	for _, m := range []int{0, 3, -8, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(m=%d) did not panic", m)
				}
			}()
			New(region100(), m)
		}()
	}
}

func TestChooseM(t *testing.T) {
	cases := []struct {
		objects, want int
	}{
		{1, 16}, {100, 16}, {1000, 32}, {10000, 128}, {250000, 512}, {4000000, 1024}, {100000000, 1024},
	}
	for _, c := range cases {
		if got := ChooseM(c.objects); got != c.want {
			t.Errorf("ChooseM(%d) = %d, want %d", c.objects, got, c.want)
		}
		if m := ChooseM(c.objects); m&(m-1) != 0 {
			t.Errorf("ChooseM(%d) not a power of two", c.objects)
		}
	}
}

func TestAreaConservationLargeCell(t *testing.T) {
	g := New(region100(), 16)
	// A cell larger than a bin: no smoothing, exact area.
	g.AddMovable(50, 50, 20, 30)
	if got := g.TotalMovable(); math.Abs(got-600) > 1e-9 {
		t.Errorf("TotalMovable = %v, want 600", got)
	}
}

func TestAreaConservationSmallCell(t *testing.T) {
	g := New(region100(), 16) // bins 6.25 x 6.25
	// A tiny cell is inflated but its total charge is preserved.
	g.AddMovable(50, 50, 1, 1.5)
	if got := g.TotalMovable(); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("smoothed TotalMovable = %v, want 1.5", got)
	}
}

func TestSmallCellSpreadsOverBins(t *testing.T) {
	g := New(region100(), 16)
	g.AddMovable(50, 50, 1, 1) // inflated to sqrt2*6.25 ~ 8.84 wide
	occupied := 0
	for _, v := range g.Mov {
		if v > 0 {
			occupied++
		}
	}
	if occupied < 4 {
		t.Errorf("smoothed cell touches %d bins, want >= 4", occupied)
	}
}

func TestFixedClippedToRegion(t *testing.T) {
	g := New(region100(), 16)
	g.AddFixed(geom.Rect{Lx: -10, Ly: 40, Hx: 10, Hy: 60}) // half outside
	total := 0.0
	for _, v := range g.Fixed {
		total += v
	}
	if math.Abs(total-200) > 1e-9 {
		t.Errorf("clipped fixed area = %v, want 200", total)
	}
}

func TestSplatExactPartition(t *testing.T) {
	// A rect aligned to cover exactly 2x2 bins must put binArea in each.
	g := New(region100(), 4) // bins 25x25
	g.AddMovable(50, 50, 50, 50)
	for j := 1; j <= 2; j++ {
		for i := 1; i <= 2; i++ {
			if got := g.Mov[j*4+i]; math.Abs(got-625) > 1e-9 {
				t.Errorf("bin (%d,%d) = %v, want 625", i, j, got)
			}
		}
	}
	if got := g.TotalMovable(); math.Abs(got-2500) > 1e-9 {
		t.Errorf("total = %v", got)
	}
}

func TestOverflowUniformIsZero(t *testing.T) {
	g := New(region100(), 8)
	// Tile the region exactly with 16 cells of 2x2 bins each; they are
	// wide enough to escape smoothing, so the result is perfectly even.
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			g.AddMovable(12.5+25*float64(i), 12.5+25*float64(j), 25, 25)
		}
	}
	if got := g.Overflow(1.0); got > 1e-9 {
		t.Errorf("uniform overflow = %v, want 0", got)
	}
}

func TestOverflowAllStacked(t *testing.T) {
	g := New(region100(), 8)
	// Everything piled onto the same 2x2-bin patch: overflow ~ 0.9.
	for k := 0; k < 10; k++ {
		g.AddMovable(50, 50, 2*g.BinW, 2*g.BinH)
	}
	tau := g.Overflow(1.0)
	if tau < 0.8 || tau > 1.0 {
		t.Errorf("stacked overflow = %v, want in (0.8, 1]", tau)
	}
}

func TestOverflowRespectsTargetDensity(t *testing.T) {
	g := New(region100(), 8)
	// Half-fill every bin uniformly: fine at rhoT=1, overflowing at 0.25.
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			c := g.BinCenter(i, j)
			g.AddMovable(c.X, c.Y, g.BinW, g.BinH/2)
		}
	}
	if got := g.Overflow(1.0); got > 1e-9 {
		t.Errorf("overflow at rhoT=1 = %v", got)
	}
	if got := g.Overflow(0.25); got < 0.4 {
		t.Errorf("overflow at rhoT=0.25 = %v, want >= 0.4", got)
	}
}

func TestOverflowAccountsFixed(t *testing.T) {
	g := New(region100(), 4)
	// Fixed macro fills bins (1..2, 1..2) completely.
	g.AddFixed(geom.Rect{Lx: 25, Ly: 25, Hx: 75, Hy: 75})
	// A 2x2-bin movable cell sits exactly on the blocked patch; it is
	// large enough to escape smoothing, so all of it overflows.
	g.AddMovable(50, 50, 50, 50)
	tau := g.Overflow(1.0)
	if math.Abs(tau-1.0) > 1e-9 {
		t.Errorf("overflow on blocked bin = %v, want 1", tau)
	}
}

func TestChargeZeroMean(t *testing.T) {
	g := New(region100(), 16)
	rng := rand.New(rand.NewSource(5))
	for k := 0; k < 50; k++ {
		g.AddMovable(rng.Float64()*100, rng.Float64()*100, 3, 3)
	}
	g.AddFixed(geom.Rect{Lx: 10, Ly: 10, Hx: 30, Hy: 20})
	out := make([]float64, 16*16)
	g.Charge(out)
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum) > 1e-6 {
		t.Errorf("charge sum = %v, want 0", sum)
	}
}

func TestClearMovableKeepsFixed(t *testing.T) {
	g := New(region100(), 8)
	g.AddFixed(geom.Rect{Lx: 0, Ly: 0, Hx: 10, Hy: 10})
	g.AddMovable(50, 50, 5, 5)
	g.AddFiller(20, 20, 5, 5)
	g.ClearMovable()
	if g.TotalMovable() != 0 || g.TotalFill() != 0 {
		t.Error("ClearMovable left movable/filler area")
	}
	fixed := 0.0
	for _, v := range g.Fixed {
		fixed += v
	}
	if fixed == 0 {
		t.Error("ClearMovable erased fixed layer")
	}
	g.ClearAll()
	fixed = 0
	for _, v := range g.Fixed {
		fixed += v
	}
	if fixed != 0 {
		t.Error("ClearAll kept fixed layer")
	}
}

func TestBinOfClamps(t *testing.T) {
	g := New(region100(), 8)
	i, j := g.BinOf(geom.Point{X: -5, Y: 105})
	if i != 0 || j != 7 {
		t.Errorf("BinOf clamp = (%d, %d)", i, j)
	}
	i, j = g.BinOf(geom.Point{X: 50, Y: 50})
	if i != 4 || j != 4 {
		t.Errorf("BinOf center = (%d, %d)", i, j)
	}
}

func TestBinCenterGeometry(t *testing.T) {
	g := New(region100(), 4)
	c := g.BinCenter(0, 0)
	if c != (geom.Point{X: 12.5, Y: 12.5}) {
		t.Errorf("BinCenter(0,0) = %v", c)
	}
	c = g.BinCenter(3, 3)
	if c != (geom.Point{X: 87.5, Y: 87.5}) {
		t.Errorf("BinCenter(3,3) = %v", c)
	}
}

// Property: rasterized movable charge always equals the full cell area;
// footprints overhanging the boundary are reflected inside (Neumann
// walls), never truncated.
func TestSplatAreaProperty(t *testing.T) {
	g := New(region100(), 32)
	rng := rand.New(rand.NewSource(9))
	for k := 0; k < 200; k++ {
		g.ClearAll()
		w := 4 + rng.Float64()*30 // larger than sqrt2*binW, no smoothing
		h := 5 + rng.Float64()*30
		cx := rng.Float64() * 100
		cy := rng.Float64() * 100
		g.AddMovable(cx, cy, w, h)
		want := w * h
		if got := g.TotalMovable(); math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("splat area %v, exact %v (cell %vx%v at %v,%v)", got, want, w, h, cx, cy)
		}
	}
}

// Property: smoothed small cells near the boundary conserve charge too.
func TestSplatConservationAtCorners(t *testing.T) {
	g := New(region100(), 32)
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 100}, {X: 100, Y: 100}, {X: 50, Y: 0}} {
		g.ClearAll()
		g.AddMovable(p.X, p.Y, 1, 1)
		if got := g.TotalMovable(); math.Abs(got-1) > 1e-9 {
			t.Fatalf("corner cell at %v conserved %v, want 1", p, got)
		}
	}
}

func TestOverflowPerBin(t *testing.T) {
	g := New(region100(), 4)
	// Four bins at 2x target (rhoT=0.5, fully dense bins), others empty.
	g.AddMovable(25, 25, 50, 50) // fills bins (0..1, 0..1) to density 1.0
	got := g.OverflowPerBin(0.5)
	if math.Abs(got-100) > 1e-6 {
		t.Errorf("OverflowPerBin = %v, want 100 (percent)", got)
	}
	if g.OverflowPerBin(1.0) != 0 {
		t.Errorf("OverflowPerBin at rhoT=1 should be 0")
	}
}

func TestMaxDensity(t *testing.T) {
	g := New(region100(), 4)
	g.AddMovable(25, 25, 50, 50)
	g.AddFixed(geom.Rect{Lx: 0, Ly: 0, Hx: 25, Hy: 25})
	if got := g.MaxDensity(); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("MaxDensity = %v, want 2", got)
	}
}
