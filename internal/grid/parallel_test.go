package grid

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"eplace/internal/geom"
)

// randomObjects mixes sub-bin cells, multi-bin macros, boundary-clamped
// cells and fillers.
func randomObjects(n int, seed int64, region geom.Rect) []Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]Object, n)
	for i := range objs {
		w := 0.5 + rng.Float64()*3
		h := 0.5 + rng.Float64()*3
		if rng.Intn(20) == 0 { // occasional macro
			w *= 10
			h *= 10
		}
		objs[i] = Object{
			X:      region.Lx + rng.Float64()*region.W(),
			Y:      region.Ly + rng.Float64()*region.H(),
			W:      w,
			H:      h,
			Filler: rng.Intn(3) == 0,
		}
	}
	return objs
}

// TestAddObjectsMatchesSerial asserts the batch row-sharded rasterizer
// is bitwise-identical to the serial AddMovable/AddFiller loop for
// every worker count.
func TestAddObjectsMatchesSerial(t *testing.T) {
	region := geom.Rect{Hx: 64, Hy: 64}
	objs := randomObjects(600, 3, region)

	ref := New(region, 32)
	for _, o := range objs {
		if o.Filler {
			ref.AddFiller(o.X, o.Y, o.W, o.H)
		} else {
			ref.AddMovable(o.X, o.Y, o.W, o.H)
		}
	}

	for _, workers := range []int{1, 2, 7, runtime.NumCPU(), 64} {
		g := New(region, 32)
		g.AddObjects(objs, workers)
		for b := range ref.Mov {
			if math.Float64bits(g.Mov[b]) != math.Float64bits(ref.Mov[b]) {
				t.Fatalf("workers=%d: Mov[%d] = %v, serial %v", workers, b, g.Mov[b], ref.Mov[b])
			}
			if math.Float64bits(g.Fill[b]) != math.Float64bits(ref.Fill[b]) {
				t.Fatalf("workers=%d: Fill[%d] = %v, serial %v", workers, b, g.Fill[b], ref.Fill[b])
			}
		}
	}
}

// TestAddObjectsReuse checks the scratch buffers survive repeated calls
// with different batch sizes (the per-iteration Refresh pattern).
func TestAddObjectsReuse(t *testing.T) {
	region := geom.Rect{Hx: 32, Hy: 32}
	g := New(region, 16)
	for _, n := range []int{100, 7, 250, 0, 33} {
		objs := randomObjects(n, int64(n)+1, region)
		ref := New(region, 16)
		for _, o := range objs {
			if o.Filler {
				ref.AddFiller(o.X, o.Y, o.W, o.H)
			} else {
				ref.AddMovable(o.X, o.Y, o.W, o.H)
			}
		}
		g.ClearMovable()
		g.AddObjects(objs, 3)
		for b := range ref.Mov {
			if g.Mov[b] != ref.Mov[b] || g.Fill[b] != ref.Fill[b] {
				t.Fatalf("n=%d: bin %d (%v,%v) != serial (%v,%v)",
					n, b, g.Mov[b], g.Fill[b], ref.Mov[b], ref.Fill[b])
			}
		}
	}
}

// TestAddObjectsConservesArea mirrors the serial conservation property:
// in-region objects rasterize to exactly their area.
func TestAddObjectsConservesArea(t *testing.T) {
	region := geom.Rect{Hx: 64, Hy: 64}
	g := New(region, 32)
	objs := []Object{
		{X: 10, Y: 10, W: 4, H: 4},
		{X: 30.3, Y: 40.7, W: 0.9, H: 1.1}, // sub-bin, smoothed
		{X: 50, Y: 20, W: 6, H: 2, Filler: true},
	}
	g.AddObjects(objs, 2)
	wantMov := 4.0*4 + 0.9*1.1
	if got := g.TotalMovable(); math.Abs(got-wantMov) > 1e-9 {
		t.Errorf("TotalMovable = %v, want %v", got, wantMov)
	}
	if got := g.TotalFill(); math.Abs(got-12.0) > 1e-9 {
		t.Errorf("TotalFill = %v, want 12", got)
	}
}
