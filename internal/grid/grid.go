// Package grid implements the uniform bin decomposition of the
// placement region used both for density-overflow accounting (the
// constraint of Eq. 2) and as the charge grid of the electrostatic
// density model. The grid tracks fixed, movable and filler area per bin
// separately: overflow counts only real movable cells against the
// remaining bin capacity, while the electrostatic charge sums all three.
package grid

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"eplace/internal/geom"
	"eplace/internal/parallel"
)

// Grid is an M x M uniform bin decomposition of a region.
//
// Concurrency contract: a Grid is not safe for concurrent mutation;
// AddObjects parallelizes internally over bin rows. Read-only queries
// (Overflow, MaxDensity, ...) may run concurrently with each other but
// not with mutations.
type Grid struct {
	M      int
	Region geom.Rect
	BinW   float64
	BinH   float64
	// Fixed, Mov and Fill hold occupied area per bin, row-major
	// indexed [j*M + i] with i the x (column) index.
	Fixed []float64
	Mov   []float64
	Fill  []float64

	// Batch rasterization scratch (AddObjects/AddCellsSoA), reused
	// across calls so steady-state rasterization allocates nothing.
	rObjs   []rasterObj
	rowCnt  []int
	rowOff  []int
	rowIdx  []int32
	bounds  []int
	nRaster int

	// Per-call inputs for the persistent phase-1 closures (a closure
	// passed to parallel.For escapes and would be heap-allocated on
	// every call if it captured locals, so the inputs are threaded
	// through fields instead).
	objs                   []Object
	soaIdx                 []int
	soaX, soaY, soaW, soaH []float64
	soaFill                []bool

	objTask, soaTask, splatTask func(wk, lo, hi int)
}

// New creates an M x M grid over region. M must be a positive power of
// two so the spectral solver can run on the same resolution.
func New(region geom.Rect, m int) *Grid {
	if m <= 0 || m&(m-1) != 0 {
		panic(fmt.Sprintf("grid: size %d is not a positive power of two", m))
	}
	if region.Empty() {
		panic("grid: empty region")
	}
	g := &Grid{
		M:      m,
		Region: region,
		BinW:   region.W() / float64(m),
		BinH:   region.H() / float64(m),
		Fixed:  make([]float64, m*m),
		Mov:    make([]float64, m*m),
		Fill:   make([]float64, m*m),
	}
	g.objTask = func(_, lo, hi int) {
		ro := g.rObjs[:len(g.objs)]
		for oi := lo; oi < hi; oi++ {
			o := &g.objs[oi]
			g.stage(ro, oi, o.X, o.Y, o.W, o.H, o.Filler)
		}
	}
	g.soaTask = func(_, lo, hi int) {
		ro := g.rObjs[:len(g.soaIdx)]
		for k := lo; k < hi; k++ {
			ci := g.soaIdx[k]
			g.stage(ro, k, g.soaX[ci], g.soaY[ci], g.soaW[ci], g.soaH[ci], g.soaFill[ci])
		}
	}
	g.splatTask = func(_, wlo, whi int) {
		ro := g.rObjs[:g.nRaster]
		rowIdx := g.rowIdx[:g.rowOff[g.M]]
		for w := wlo; w < whi; w++ {
			for j := g.bounds[w]; j < g.bounds[w+1]; j++ {
				g.splatRow(j, ro, rowIdx[g.rowOff[j]:g.rowOff[j+1]])
			}
		}
	}
	return g
}

// ChooseM picks a power-of-two grid size so that the bin count is close
// to the number of placeable objects (flat high-resolution grid, Sec.
// IV), clamped to [16, 1024].
func ChooseM(objects int) int {
	if objects < 1 {
		objects = 1
	}
	target := math.Sqrt(float64(objects))
	m := 1 << bits.Len(uint(int(target)))
	if m < 16 {
		m = 16
	}
	if m > 1024 {
		m = 1024
	}
	return m
}

// BinArea returns the area of one bin.
func (g *Grid) BinArea() float64 { return g.BinW * g.BinH }

// ClearMovable zeroes the movable and filler layers, keeping fixed.
func (g *Grid) ClearMovable() {
	for i := range g.Mov {
		g.Mov[i] = 0
		g.Fill[i] = 0
	}
}

// ClearAll zeroes every layer.
func (g *Grid) ClearAll() {
	for i := range g.Mov {
		g.Mov[i] = 0
		g.Fill[i] = 0
		g.Fixed[i] = 0
	}
}

// binRange returns the closed-open bin index range [i0,i1) covering the
// interval [lo,hi) along an axis with bin size s and origin o, clamped
// to [0, M).
func (g *Grid) binRange(lo, hi, o, s float64) (int, int) {
	i0 := int(math.Floor((lo - o) / s))
	i1 := int(math.Ceil((hi - o) / s))
	if i0 < 0 {
		i0 = 0
	}
	if i1 > g.M {
		i1 = g.M
	}
	if i1 < i0 {
		i1 = i0
	}
	return i0, i1
}

// splat adds rectangle r's overlap area, scaled by density, into layer.
func (g *Grid) splat(layer []float64, r geom.Rect, density float64) {
	if density == 0 || r.Empty() {
		return
	}
	i0, i1 := g.binRange(r.Lx, r.Hx, g.Region.Lx, g.BinW)
	j0, j1 := g.binRange(r.Ly, r.Hy, g.Region.Ly, g.BinH)
	for j := j0; j < j1; j++ {
		by0 := g.Region.Ly + float64(j)*g.BinH
		oy := math.Min(r.Hy, by0+g.BinH) - math.Max(r.Ly, by0)
		if oy <= 0 {
			continue
		}
		row := j * g.M
		for i := i0; i < i1; i++ {
			bx0 := g.Region.Lx + float64(i)*g.BinW
			ox := math.Min(r.Hx, bx0+g.BinW) - math.Max(r.Lx, bx0)
			if ox <= 0 {
				continue
			}
			layer[row+i] += ox * oy * density
		}
	}
}

// AddFixed rasterizes a fixed object's rectangle into the fixed layer.
func (g *Grid) AddFixed(r geom.Rect) { g.splat(g.Fixed, r.Intersect(g.Region), 1) }

// smoothed returns the footprint and charge-preserving density scale for
// an object centered at (cx, cy): objects narrower than sqrt(2) bins are
// inflated to sqrt(2) bins with density scaled so total charge (area) is
// preserved, the ePlace local density smoothing for sub-bin cells.
func (g *Grid) smoothed(cx, cy, w, h float64) (geom.Rect, float64) {
	const inflate = math.Sqrt2
	ew, eh := w, h
	scale := 1.0
	if minW := inflate * g.BinW; ew < minW {
		scale *= ew / minW
		ew = minW
	}
	if minH := inflate * g.BinH; eh < minH {
		scale *= eh / minH
		eh = minH
	}
	r := geom.NewRectCenter(cx, cy, ew, eh)
	// Keep the (possibly inflated) footprint inside the region so charge
	// is conserved at the boundary; Neumann walls reflect, not absorb.
	return geom.ClampRectInside(r, g.Region), scale
}

// AddMovable rasterizes a movable cell (center cx, cy, size w x h) into
// the movable layer with local smoothing.
func (g *Grid) AddMovable(cx, cy, w, h float64) {
	r, s := g.smoothed(cx, cy, w, h)
	g.splat(g.Mov, r, s)
}

// AddFiller rasterizes a filler cell into the filler layer with local
// smoothing.
func (g *Grid) AddFiller(cx, cy, w, h float64) {
	r, s := g.smoothed(cx, cy, w, h)
	g.splat(g.Fill, r, s)
}

// Object is one movable or filler rectangle for batch rasterization,
// given by its center and size.
type Object struct {
	X, Y, W, H float64
	Filler     bool // rasterize into the filler layer instead of movable
}

// rasterObj is one smoothed, clamped rectangle ready to splat.
type rasterObj struct {
	r              geom.Rect
	scale          float64
	i0, i1, j0, j1 int32
	filler         bool
	skip           bool
}

// stage smooths, clamps and bin-ranges one object into rasterObj slot
// oi (phase 1 of batch rasterization; every slot is independent).
func (g *Grid) stage(ro []rasterObj, oi int, cx, cy, w, h float64, filler bool) {
	r, scale := g.smoothed(cx, cy, w, h)
	if scale == 0 || r.Empty() {
		ro[oi] = rasterObj{skip: true}
		return
	}
	i0, i1 := g.binRange(r.Lx, r.Hx, g.Region.Lx, g.BinW)
	j0, j1 := g.binRange(r.Ly, r.Hy, g.Region.Ly, g.BinH)
	ro[oi] = rasterObj{
		r: r, scale: scale, filler: filler,
		i0: int32(i0), i1: int32(i1), j0: int32(j0), j1: int32(j1),
	}
}

// ensureScratch sizes the rasterization scratch for n objects.
func (g *Grid) ensureScratch(n int) {
	if cap(g.rObjs) < n {
		g.rObjs = make([]rasterObj, n)
	}
	if g.rowCnt == nil {
		g.rowCnt = make([]int, g.M)
		g.rowOff = make([]int, g.M+1)
	}
}

// AddObjects rasterizes the objects into the movable and filler layers
// with the same local smoothing as AddMovable/AddFiller, fanning the
// work out over bin-row shards. Every bin row is owned by exactly one
// worker, and each row visits its overlapping objects in ascending
// slice order, so each bin accumulates contributions with the same
// values, order and association as the serial loop
//
//	for _, o := range objs { AddMovable/AddFiller(o...) }
//
// making the result bitwise-identical for every worker count.
// workers <= 0 selects all cores. Steady-state calls allocate nothing.
func (g *Grid) AddObjects(objs []Object, workers int) {
	workers = parallel.Count(workers)
	g.ensureScratch(len(objs))
	g.objs = objs
	parallel.For(workers, len(objs), g.objTask)
	g.objs = nil
	g.finishRaster(len(objs), workers)
}

// AddCellsSoA rasterizes the cells in idx straight from SoA geometry
// arrays (indexed by cell, as in netlist.Compiled): centers x/y,
// extents w/h and filler flags. It shares phases 2-3 with AddObjects,
// and phase 1 applies the identical smoothing arithmetic to the same
// values, so the result is bitwise-identical to building []Object and
// calling AddObjects — without the gather. Steady-state calls allocate
// nothing.
func (g *Grid) AddCellsSoA(idx []int, x, y, w, h []float64, filler []bool, workers int) {
	workers = parallel.Count(workers)
	g.ensureScratch(len(idx))
	g.soaIdx, g.soaX, g.soaY, g.soaW, g.soaH, g.soaFill = idx, x, y, w, h, filler
	parallel.For(workers, len(idx), g.soaTask)
	g.soaIdx, g.soaX, g.soaY, g.soaW, g.soaH, g.soaFill = nil, nil, nil, nil, nil, nil
	g.finishRaster(len(idx), workers)
}

// finishRaster runs phases 2-3 over the n staged rasterObjs.
func (g *Grid) finishRaster(n, workers int) {
	m := g.M
	ro := g.rObjs[:n]

	// Phase 2: bucket objects by the bin rows they touch (CSR layout,
	// filled in ascending object order so each row's list is sorted).
	total := 0
	for j := range g.rowCnt {
		g.rowCnt[j] = 0
	}
	for oi := range ro {
		if ro[oi].skip {
			continue
		}
		for j := ro[oi].j0; j < ro[oi].j1; j++ {
			g.rowCnt[j]++
		}
		total += int(ro[oi].j1 - ro[oi].j0)
	}
	g.rowOff[0] = 0
	for j := 0; j < m; j++ {
		g.rowOff[j+1] = g.rowOff[j] + g.rowCnt[j]
		g.rowCnt[j] = g.rowOff[j] // reuse as the fill cursor
	}
	if cap(g.rowIdx) < total {
		g.rowIdx = make([]int32, total)
	}
	rowIdx := g.rowIdx[:total]
	for oi := range ro {
		if ro[oi].skip {
			continue
		}
		for j := ro[oi].j0; j < ro[oi].j1; j++ {
			rowIdx[g.rowCnt[j]] = int32(oi)
			g.rowCnt[j]++
		}
	}

	// Phase 3: splat, sharded by bin row with shard boundaries balanced
	// on the per-row entry counts (dense regions get narrower shards).
	if cap(g.bounds) < workers+1 {
		g.bounds = make([]int, workers+1)
	}
	bounds := g.bounds[:workers+1]
	bounds[0] = 0
	bounds[workers] = m
	for w := 1; w < workers; w++ {
		target := total * w / workers
		bounds[w] = sort.SearchInts(g.rowOff[:m+1], target)
		if bounds[w] > m {
			bounds[w] = m
		}
	}
	g.nRaster = n
	parallel.For(workers, workers, g.splatTask)
}

// splatRow accumulates the x-overlap of each listed object with bin row
// j, mirroring splat's inner loop exactly.
func (g *Grid) splatRow(j int, ro []rasterObj, objIdx []int32) {
	by0 := g.Region.Ly + float64(j)*g.BinH
	row := j * g.M
	for _, oi := range objIdx {
		o := &ro[oi]
		oy := math.Min(o.r.Hy, by0+g.BinH) - math.Max(o.r.Ly, by0)
		if oy <= 0 {
			continue
		}
		layer := g.Mov
		if o.filler {
			layer = g.Fill
		}
		for i := o.i0; i < o.i1; i++ {
			bx0 := g.Region.Lx + float64(i)*g.BinW
			ox := math.Min(o.r.Hx, bx0+g.BinW) - math.Max(o.r.Lx, bx0)
			if ox <= 0 {
				continue
			}
			layer[row+int(i)] += ox * oy * o.scale
		}
	}
}

// Charge writes the total electrostatic charge per bin (fixed + movable
// + filler area) into out, which must have length M*M, and removes the
// mean so the total charge is zero (Eq. 6's compatibility condition).
func (g *Grid) Charge(out []float64) {
	if len(out) != g.M*g.M {
		panic("grid: charge buffer size mismatch")
	}
	sum := 0.0
	for i := range out {
		out[i] = g.Fixed[i] + g.Mov[i] + g.Fill[i]
		sum += out[i]
	}
	mean := sum / float64(len(out))
	for i := range out {
		out[i] -= mean
	}
}

// Overflow returns the total density overflow tau in [0, 1]: the summed
// movable area exceeding each bin's remaining capacity rhoT*(binArea -
// fixed), normalized by the total movable area. Fillers are excluded:
// they are placement aids, not demand.
func (g *Grid) Overflow(rhoT float64) float64 {
	binArea := g.BinArea()
	over, total := 0.0, 0.0
	for b := range g.Mov {
		cap := rhoT * math.Max(0, binArea-g.Fixed[b])
		if ex := g.Mov[b] - cap; ex > 0 {
			over += ex
		}
		total += g.Mov[b]
	}
	if total == 0 {
		return 0
	}
	return over / total
}

// OverflowPerBin returns the average scaled per-bin overflow used by the
// ISPD 2006 sHPWL formula: for each bin, max(0, density/rhoT - 1)
// averaged over bins carrying movable area, expressed in percent.
func (g *Grid) OverflowPerBin(rhoT float64) float64 {
	binArea := g.BinArea()
	sum, n := 0.0, 0
	for b := range g.Mov {
		if g.Mov[b] <= 0 {
			continue
		}
		freeCap := rhoT * math.Max(0, binArea-g.Fixed[b])
		n++
		if freeCap <= 0 {
			sum += 1
			continue
		}
		if r := g.Mov[b]/freeCap - 1; r > 0 {
			sum += r
		}
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}

// MaxDensity returns the peak bin density (occupied fraction, all layers).
func (g *Grid) MaxDensity() float64 {
	binArea := g.BinArea()
	m := 0.0
	for b := range g.Mov {
		if d := (g.Fixed[b] + g.Mov[b] + g.Fill[b]) / binArea; d > m {
			m = d
		}
	}
	return m
}

// TotalMovable returns the rasterized movable area (a conservation check:
// it must match the summed cell areas for cells inside the region).
func (g *Grid) TotalMovable() float64 {
	s := 0.0
	for _, v := range g.Mov {
		s += v
	}
	return s
}

// TotalFill returns the rasterized filler area.
func (g *Grid) TotalFill() float64 {
	s := 0.0
	for _, v := range g.Fill {
		s += v
	}
	return s
}

// BinCenter returns the center coordinate of bin (i, j).
func (g *Grid) BinCenter(i, j int) geom.Point {
	return geom.Point{
		X: g.Region.Lx + (float64(i)+0.5)*g.BinW,
		Y: g.Region.Ly + (float64(j)+0.5)*g.BinH,
	}
}

// BinOf returns the bin indices containing point p, clamped to the grid.
func (g *Grid) BinOf(p geom.Point) (int, int) {
	i := int((p.X - g.Region.Lx) / g.BinW)
	j := int((p.Y - g.Region.Ly) / g.BinH)
	if i < 0 {
		i = 0
	}
	if i >= g.M {
		i = g.M - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= g.M {
		j = g.M - 1
	}
	return i, j
}
