// Package congestion implements the paper's "extension towards
// routability" (Sec. VIII) as a RUDY-based congestion estimator:
// RUDY (Rectangular Uniform wire DensitY, Spindler & Johannes) spreads
// each net's expected wire area uniformly over its bounding box, giving
// a fast, router-free congestion map. The map feeds reporting and
// congestion-driven net reweighting for a routability-aware placement
// pass.
package congestion

import (
	"math"

	"eplace/internal/netlist"
)

// Options tunes the estimator.
type Options struct {
	// WireWidth is the routed wire width plus spacing in design units
	// (default: half a row height approximated as 1).
	WireWidth float64
	// SupplyPerArea is the routing capacity per unit chip area in wire
	// area units (default 1.0: one full layer's worth).
	SupplyPerArea float64
}

func (o *Options) defaults() {
	if o.WireWidth <= 0 {
		o.WireWidth = 1
	}
	if o.SupplyPerArea <= 0 {
		o.SupplyPerArea = 1
	}
}

// Map is a congestion map over an m x m grid.
type Map struct {
	M      int
	Region [4]float64 // Lx, Ly, Hx, Hy
	// Demand is the RUDY wire-area demand per bin.
	Demand []float64
	// Supply is the routing capacity per bin.
	Supply float64
	binW   float64
	binH   float64
}

// Compute builds the RUDY map of the design's current placement.
func Compute(d *netlist.Design, m int, opt Options) *Map {
	opt.defaults()
	if m <= 0 {
		m = 64
	}
	mp := &Map{
		M:      m,
		Region: [4]float64{d.Region.Lx, d.Region.Ly, d.Region.Hx, d.Region.Hy},
		Demand: make([]float64, m*m),
		binW:   d.Region.W() / float64(m),
		binH:   d.Region.H() / float64(m),
	}
	mp.Supply = opt.SupplyPerArea * mp.binW * mp.binH

	for ni := range d.Nets {
		net := &d.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		lx, ly, hx, hy := netBBox(d, ni)
		w := hx - lx
		h := hy - ly
		// Degenerate boxes still occupy one wire width.
		if w < opt.WireWidth {
			w = opt.WireWidth
		}
		if h < opt.WireWidth {
			h = opt.WireWidth
		}
		// RUDY: wire area = wirewidth * HPWL, spread over the box.
		wireArea := opt.WireWidth * (w + h)
		density := wireArea / (w * h)
		mp.splat(lx, ly, lx+w, ly+h, density)
	}
	return mp
}

// netBBox returns the pin bounding box of net ni.
func netBBox(d *netlist.Design, ni int) (lx, ly, hx, hy float64) {
	lx, ly = math.Inf(1), math.Inf(1)
	hx, hy = math.Inf(-1), math.Inf(-1)
	for _, pi := range d.Nets[ni].Pins {
		p := d.PinPos(pi)
		lx, hx = math.Min(lx, p.X), math.Max(hx, p.X)
		ly, hy = math.Min(ly, p.Y), math.Max(hy, p.Y)
	}
	return lx, ly, hx, hy
}

// splat accumulates density * overlap area into the covered bins.
func (mp *Map) splat(lx, ly, hx, hy, density float64) {
	m := mp.M
	i0 := clamp(int((lx-mp.Region[0])/mp.binW), 0, m-1)
	i1 := clamp(int(math.Ceil((hx-mp.Region[0])/mp.binW)), 1, m)
	j0 := clamp(int((ly-mp.Region[1])/mp.binH), 0, m-1)
	j1 := clamp(int(math.Ceil((hy-mp.Region[1])/mp.binH)), 1, m)
	for j := j0; j < j1; j++ {
		by := mp.Region[1] + float64(j)*mp.binH
		oy := math.Min(hy, by+mp.binH) - math.Max(ly, by)
		if oy <= 0 {
			continue
		}
		for i := i0; i < i1; i++ {
			bx := mp.Region[0] + float64(i)*mp.binW
			ox := math.Min(hx, bx+mp.binW) - math.Max(lx, bx)
			if ox > 0 {
				mp.Demand[j*m+i] += density * ox * oy
			}
		}
	}
}

// Ratio returns demand/supply of bin (i, j).
func (mp *Map) Ratio(i, j int) float64 {
	return mp.Demand[j*mp.M+i] / mp.Supply
}

// RatioAt returns the congestion ratio at a point.
func (mp *Map) RatioAt(x, y float64) float64 {
	i := clamp(int((x-mp.Region[0])/mp.binW), 0, mp.M-1)
	j := clamp(int((y-mp.Region[1])/mp.binH), 0, mp.M-1)
	return mp.Ratio(i, j)
}

// Stats summarizes the map.
type Stats struct {
	// MaxRatio is the peak demand/supply.
	MaxRatio float64
	// AvgRatio averages over all bins.
	AvgRatio float64
	// OverflowedBins counts bins with demand > supply.
	OverflowedBins int
	// TotalOverflow sums demand exceeding supply, in wire-area units.
	TotalOverflow float64
}

// Stats computes the summary.
func (mp *Map) Stats() Stats {
	var s Stats
	for _, dem := range mp.Demand {
		r := dem / mp.Supply
		s.AvgRatio += r
		if r > s.MaxRatio {
			s.MaxRatio = r
		}
		if dem > mp.Supply {
			s.OverflowedBins++
			s.TotalOverflow += dem - mp.Supply
		}
	}
	s.AvgRatio /= float64(len(mp.Demand))
	return s
}

// Weights raises the weight of nets whose bounding boxes cross
// congested bins:
//
//	w = 1 + strength * max(0, maxRatioInBBox - 1)
//
// writing them into the design and returning how many changed. Running
// global placement again with these weights pulls congested nets
// tighter and spreads hotspots, the standard congestion-driven loop.
func (mp *Map) Weights(d *netlist.Design, strength float64) int {
	changed := 0
	for ni := range d.Nets {
		if len(d.Nets[ni].Pins) < 2 {
			continue
		}
		lx, ly, hx, hy := netBBox(d, ni)
		m := mp.M
		i0 := clamp(int((lx-mp.Region[0])/mp.binW), 0, m-1)
		i1 := clamp(int(math.Ceil((hx-mp.Region[0])/mp.binW)), i0+1, m)
		j0 := clamp(int((ly-mp.Region[1])/mp.binH), 0, m-1)
		j1 := clamp(int(math.Ceil((hy-mp.Region[1])/mp.binH)), j0+1, m)
		maxR := 0.0
		for j := j0; j < j1; j++ {
			for i := i0; i < i1; i++ {
				if r := mp.Ratio(i, j); r > maxR {
					maxR = r
				}
			}
		}
		w := 1 + strength*math.Max(0, maxR-1)
		if d.Nets[ni].Weight != w {
			d.Nets[ni].Weight = w
			changed++
		}
	}
	return changed
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
