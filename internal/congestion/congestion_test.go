package congestion

import (
	"math"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/netlist"
	"eplace/internal/synth"
)

// twoPin builds one net spanning (x0,y0)-(x1,y1).
func twoPin(x0, y0, x1, y1 float64) *netlist.Design {
	d := netlist.New("c", geom.Rect{Hx: 64, Hy: 64})
	a := d.AddCell(netlist.Cell{W: 1, H: 1, X: x0, Y: y0})
	b := d.AddCell(netlist.Cell{W: 1, H: 1, X: x1, Y: y1})
	ni := d.AddNet("", 1)
	d.Connect(a, ni, 0, 0)
	d.Connect(b, ni, 0, 0)
	return d
}

func TestDemandConservation(t *testing.T) {
	d := twoPin(10, 10, 40, 30)
	mp := Compute(d, 32, Options{WireWidth: 1})
	total := 0.0
	for _, v := range mp.Demand {
		total += v
	}
	// Wire area = wireWidth * (w + h) = 1 * (30 + 20) = 50.
	if math.Abs(total-50) > 1e-6 {
		t.Errorf("total demand = %v, want 50", total)
	}
}

func TestDemandInsideBBoxOnly(t *testing.T) {
	d := twoPin(10, 10, 20, 20)
	mp := Compute(d, 32, Options{WireWidth: 1})
	for j := 0; j < 32; j++ {
		for i := 0; i < 32; i++ {
			cx := float64(i)*2 + 1
			cy := float64(j)*2 + 1
			inside := cx >= 8 && cx <= 22 && cy >= 8 && cy <= 22
			if !inside && mp.Demand[j*32+i] > 1e-12 {
				t.Fatalf("demand outside bbox at bin (%d,%d): %v", i, j, mp.Demand[j*32+i])
			}
		}
	}
}

func TestCrossingNetsCreateHotspot(t *testing.T) {
	// Many nets through the center vs an empty corner.
	d := netlist.New("x", geom.Rect{Hx: 64, Hy: 64})
	for k := 0; k < 20; k++ {
		a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 20, Y: 30 + float64(k)/10})
		b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 44, Y: 32 + float64(k)/10})
		ni := d.AddNet("", 1)
		d.Connect(a, ni, 0, 0)
		d.Connect(b, ni, 0, 0)
	}
	mp := Compute(d, 32, Options{WireWidth: 1})
	center := mp.RatioAt(32, 31)
	corner := mp.RatioAt(2, 2)
	if center <= corner {
		t.Errorf("center ratio %v not above corner %v", center, corner)
	}
	st := mp.Stats()
	if st.MaxRatio <= 0 || st.AvgRatio <= 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.MaxRatio < st.AvgRatio {
		t.Errorf("max %v below avg %v", st.MaxRatio, st.AvgRatio)
	}
}

func TestDegenerateNetStillCounted(t *testing.T) {
	// Two pins at the same point: the box degenerates but demand stays
	// finite and positive.
	d := twoPin(30, 30, 30, 30)
	mp := Compute(d, 32, Options{WireWidth: 1})
	total := 0.0
	for _, v := range mp.Demand {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite demand")
		}
		total += v
	}
	if total <= 0 {
		t.Error("degenerate net contributed nothing")
	}
}

func TestWeightsRaiseCongestedNets(t *testing.T) {
	d := netlist.New("w", geom.Rect{Hx: 64, Hy: 64})
	// A congested bundle and one far-away lonely net.
	for k := 0; k < 30; k++ {
		a := d.AddCell(netlist.Cell{W: 1, H: 1, X: 10, Y: 10.0 + float64(k)*0.01})
		b := d.AddCell(netlist.Cell{W: 1, H: 1, X: 14, Y: 10.0 + float64(k)*0.01})
		ni := d.AddNet("", 1)
		d.Connect(a, ni, 0, 0)
		d.Connect(b, ni, 0, 0)
	}
	la := d.AddCell(netlist.Cell{W: 1, H: 1, X: 50, Y: 50})
	lb := d.AddCell(netlist.Cell{W: 1, H: 1, X: 54, Y: 50})
	lone := d.AddNet("", 1)
	d.Connect(la, lone, 0, 0)
	d.Connect(lb, lone, 0, 0)

	mp := Compute(d, 32, Options{WireWidth: 1})
	changed := mp.Weights(d, 2)
	if changed == 0 {
		t.Fatal("no weights changed")
	}
	if d.Nets[0].Weight <= d.Nets[lone].Weight {
		t.Errorf("congested net weight %v not above lonely %v",
			d.Nets[0].Weight, d.Nets[lone].Weight)
	}
	if math.Abs(d.Nets[lone].Weight-1) > 0.2 {
		t.Errorf("lonely net weight = %v, want ~1", d.Nets[lone].Weight)
	}
}

func TestOnSyntheticPlacement(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "cong", NumCells: 800})
	mp := Compute(d, 0, Options{})
	st := mp.Stats()
	if st.AvgRatio <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	// A random placement of a connected netlist is congested somewhere.
	if st.MaxRatio < st.AvgRatio {
		t.Errorf("max %v < avg %v", st.MaxRatio, st.AvgRatio)
	}
}

func BenchmarkCompute5k(b *testing.B) {
	d := synth.Generate(synth.Spec{Name: "cb", NumCells: 5000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(d, 64, Options{})
	}
}
