package detail

import (
	"math/rand"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/legalize"
	"eplace/internal/netlist"
)

// legalDesign builds a legalized random design with connectivity.
func legalDesign(n int, seed int64) (*netlist.Design, []int) {
	rng := rand.New(rand.NewSource(seed))
	d := netlist.New("dp", geom.Rect{Hx: 150, Hy: 60})
	legalize.BuildRows(d, 2, 1)
	var cells []int
	for i := 0; i < n; i++ {
		cells = append(cells, d.AddCell(netlist.Cell{
			W: float64(2 + rng.Intn(3)), H: 2,
			X: 5 + rng.Float64()*140, Y: 2 + rng.Float64()*56,
		}))
	}
	// Pads on the boundary.
	var pads []int
	for i := 0; i < 6; i++ {
		pads = append(pads, d.AddCell(netlist.Cell{
			W: 1, H: 1, X: float64(10 + i*25), Y: 59.5, Fixed: true, Kind: netlist.Pad,
		}))
	}
	for k := 0; k < n; k++ {
		ni := d.AddNet("", 1)
		deg := 2 + rng.Intn(3)
		for p := 0; p < deg; p++ {
			d.Connect(cells[rng.Intn(n)], ni, 0, 0)
		}
		if rng.Intn(5) == 0 {
			d.Connect(pads[rng.Intn(len(pads))], ni, 0, 0)
		}
	}
	if _, _, err := legalize.Cells(d, cells, legalize.Abacus); err != nil {
		panic(err)
	}
	return d, cells
}

func TestPlaceImprovesHPWL(t *testing.T) {
	d, cells := legalDesign(250, 1)
	res, err := Place(d, cells, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWLAfter > res.HPWLBefore {
		t.Errorf("detail placement worsened HPWL: %v -> %v", res.HPWLBefore, res.HPWLAfter)
	}
	if res.HPWLAfter >= res.HPWLBefore {
		t.Errorf("no improvement: %v -> %v", res.HPWLBefore, res.HPWLAfter)
	}
	if res.Swaps+res.Reorders+res.Relocates == 0 {
		t.Error("no operations performed")
	}
}

func TestPlacePreservesLegality(t *testing.T) {
	d, cells := legalDesign(250, 2)
	if _, err := Place(d, cells, Options{Passes: 5}); err != nil {
		t.Fatal(err)
	}
	if err := legalize.CheckLegal(d, cells); err != nil {
		t.Fatalf("layout illegal after detail placement: %v", err)
	}
}

func TestPlaceWithMacroObstacles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := netlist.New("dpm", geom.Rect{Hx: 120, Hy: 40})
	legalize.BuildRows(d, 2, 0)
	d.AddCell(netlist.Cell{W: 30, H: 16, X: 60, Y: 20, Kind: netlist.Macro, Fixed: true})
	var cells []int
	for i := 0; i < 150; i++ {
		cells = append(cells, d.AddCell(netlist.Cell{
			W: 2 + rng.Float64()*2, H: 2,
			X: 5 + rng.Float64()*110, Y: 2 + rng.Float64()*36,
		}))
	}
	for k := 0; k < 150; k++ {
		ni := d.AddNet("", 1)
		d.Connect(cells[rng.Intn(len(cells))], ni, 0, 0)
		d.Connect(cells[rng.Intn(len(cells))], ni, 0, 0)
	}
	if _, _, err := legalize.Cells(d, cells, legalize.Abacus); err != nil {
		t.Fatal(err)
	}
	if _, err := Place(d, cells, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := legalize.CheckLegal(d, cells); err != nil {
		t.Fatalf("illegal after detail placement near macro: %v", err)
	}
}

func TestPlaceConvergesToFixedPoint(t *testing.T) {
	d, cells := legalDesign(150, 4)
	if _, err := Place(d, cells, Options{Passes: 10}); err != nil {
		t.Fatal(err)
	}
	h1 := d.HPWL()
	res, err := Place(d, cells, Options{Passes: 10})
	if err != nil {
		t.Fatal(err)
	}
	// A second run should find little or nothing left.
	if res.HPWLAfter > h1+1e-9 {
		t.Errorf("second run worsened HPWL: %v -> %v", h1, res.HPWLAfter)
	}
	if (h1-res.HPWLAfter)/h1 > 0.05 {
		t.Errorf("second run still improved by %v%%: first run under-converged",
			100*(h1-res.HPWLAfter)/h1)
	}
}

func TestPlaceRequiresRows(t *testing.T) {
	d := netlist.New("norows", geom.Rect{Hx: 10, Hy: 10})
	c := d.AddCell(netlist.Cell{W: 2, H: 2, X: 5, Y: 5})
	if _, err := Place(d, []int{c}, Options{}); err == nil {
		t.Error("expected error for design without rows")
	}
}

func TestPlaceRejectsOffRowCells(t *testing.T) {
	d := netlist.New("offrow", geom.Rect{Hx: 10, Hy: 10})
	legalize.BuildRows(d, 2, 0)
	c := d.AddCell(netlist.Cell{W: 2, H: 2, X: 5, Y: 4.7})
	if _, err := Place(d, []int{c}, Options{}); err == nil {
		t.Error("expected error for off-row cell")
	}
}

func TestPermutations(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 2, 3: 6, 4: 24} {
		perms := permutations(n)
		if len(perms) != want {
			t.Errorf("permutations(%d) = %d, want %d", n, len(perms), want)
		}
		seen := map[string]bool{}
		for _, p := range perms {
			key := ""
			for _, v := range p {
				key += string(rune('0' + v))
			}
			if seen[key] {
				t.Errorf("duplicate permutation %v", p)
			}
			seen[key] = true
		}
	}
}

func TestEmptyCellList(t *testing.T) {
	d := netlist.New("e", geom.Rect{Hx: 10, Hy: 10})
	legalize.BuildRows(d, 2, 0)
	res, err := Place(d, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps != 0 || res.HPWLBefore != res.HPWLAfter {
		t.Errorf("empty run: %+v", res)
	}
}

func BenchmarkDetailPlace500(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, cells := legalDesign(500, 7)
		b.StartTimer()
		if _, err := Place(d, cells, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Regression: a wide macro with pads underneath spans several row
// markers; the gap logic must never let a cell slide onto the macro
// (this exact scenario produced overlaps before the segment-based
// rewrite).
func TestMacroSpanningPadsRegression(t *testing.T) {
	d := netlist.New("span", geom.Rect{Hx: 80, Hy: 20})
	legalize.BuildRows(d, 2, 1)
	// Macro covering x [30, 51.3], all rows up to y=14.
	d.AddCell(netlist.Cell{W: 21.3, H: 14, X: 40.65, Y: 7, Kind: netlist.Macro, Fixed: true})
	// Pads underneath the macro in row 0.
	for _, x := range []float64{32.5, 40.5, 48.5} {
		d.AddCell(netlist.Cell{W: 1, H: 1, X: x, Y: 0.5, Kind: netlist.Pad, Fixed: true})
	}
	// Cells on both sides of the macro in row 0, pulled across by a net.
	a := d.AddCell(netlist.Cell{W: 3, H: 2, X: 53.5, Y: 1})
	b := d.AddCell(netlist.Cell{W: 5, H: 2, X: 59.5, Y: 1})
	c := d.AddCell(netlist.Cell{W: 4, H: 2, X: 10, Y: 1})
	ni := d.AddNet("pull", 5)
	d.Connect(b, ni, 0, 0)
	d.Connect(c, ni, 0, 0)
	cells := []int{a, b, c}
	if err := legalize.CheckLegal(d, cells); err != nil {
		t.Fatalf("setup not legal: %v", err)
	}
	if _, err := Place(d, cells, Options{Passes: 5}); err != nil {
		t.Fatal(err)
	}
	if err := legalize.CheckLegal(d, cells); err != nil {
		t.Fatalf("detail placement broke legality: %v", err)
	}
}
