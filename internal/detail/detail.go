// Package detail implements the discrete refinement of the cDP stage
// (the paper invokes NTUplace3's detail placer [4]; this is a
// functional reimplementation): legality-preserving global swaps toward
// each cell's optimal region, local reordering windows, relocation into
// whitespace, and independent-set matching. Cells are managed per
// obstacle-free row segment (from legalize.FreeSegments), so wide
// macros and pads can never be stepped on. Every operation keeps the
// layout legal and is accepted only when it shortens HPWL.
//
// The improvement passes are region-parallel: segments are grouped into
// contiguous regions with worker-count-independent boundaries, each
// region's moves are evaluated against a frozen snapshot of the other
// regions, and the cross-region ISM pass runs as parallel propose +
// total-order serial commit. Results are bitwise-identical at every
// worker count (see DESIGN.md, "Parallel legalization and detailed
// placement").
package detail

import (
	"fmt"
	"math"
	"sort"
	"time"

	"eplace/internal/legalize"
	"eplace/internal/netlist"
	"eplace/internal/parallel"
	"eplace/internal/telemetry"
)

// Options tunes detail placement.
type Options struct {
	// Passes bounds the improvement sweeps (default 3).
	Passes int
	// Window is the local reordering window size (default 3).
	Window int
	// SwapCandidates bounds how many neighbors are tried per global
	// swap (default 8).
	SwapCandidates int
	// ISMSetSize bounds independent-set matching groups (default 6;
	// the assignment solve is cubic in this).
	ISMSetSize int
	// DisableISM turns off independent-set matching.
	DisableISM bool
	// Workers is the worker count for the region-parallel improvement
	// passes: 0 uses all cores, 1 runs on the calling goroutine.
	// Results are bitwise-identical at every setting.
	Workers int
	// Telemetry, when non-nil, receives one Sample per improvement pass
	// (stage "cDP") plus swap/reorder/relocate/ISM counters and
	// per-pass-type kernel spans (cDP/reorder, cDP/swap, cDP/ism,
	// cDP/relocate).
	Telemetry *telemetry.Recorder
	// Golden, when non-nil, absorbs every pass's cell positions and
	// HPWL into the "cDP" determinism digest (see telemetry.GoldenTrace).
	Golden *telemetry.GoldenTrace
}

func (o *Options) defaults() {
	if o.Passes <= 0 {
		o.Passes = 3
	}
	if o.Window <= 0 {
		o.Window = 3
	}
	if o.SwapCandidates <= 0 {
		o.SwapCandidates = 8
	}
	if o.ISMSetSize <= 0 {
		o.ISMSetSize = 6
	}
	if o.ISMSetSize > maxISMSet {
		o.ISMSetSize = maxISMSet
	}
}

// maxISMSet caps independent-set matching groups: the assignment solve
// is cubic and the evalCtx override buffers are fixed-size.
const maxISMSet = 16

// Result reports a detail placement run.
type Result struct {
	Passes     int
	Swaps      int
	Reorders   int
	Relocates  int
	ISMRounds  int
	HPWLBefore float64
	HPWLAfter  float64
}

// segCells is one obstacle-free row interval and its cells in x order.
type segCells struct {
	lx, hx float64
	cells  []int
}

// segRange is a contiguous run of segment indices forming one region.
type segRange struct{ lo, hi int }

// passCount accumulates one region's accepted moves; reduced over
// regions in fixed (region-index) order after each pass.
type passCount struct{ improved, ops int }

// placer holds segment-ordered occupancy over legalized cells plus the
// region partition and worker contexts for the parallel passes.
type placer struct {
	d    *netlist.Design
	opt  Options
	segs []*segCells
	// segOf maps cell index -> segment index (-1 for unmanaged cells:
	// macros, pads, fixed objects). regionOf maps cell -> region the
	// same way; segRegion maps segment -> region.
	segOf     []int32
	regionOf  []int32
	segRegion []int32
	regions   []segRange
	workers   int
	evals     []*evalCtx
	// snapX/snapY freeze managed-cell positions at the start of each
	// region-parallel pass; other regions are read through them.
	snapX, snapY []float64
	counts       []passCount
	ismProps     []ismProposal

	// Flat CSR pin view, built once per Place call: the HPWL inner loops
	// read these contiguous arrays instead of chasing Net -> pin-index ->
	// Pin struct. netPin*[netPinStart[ni]:netPinStart[ni+1]] are net ni's
	// pins (cell index, or -1 with absolute coordinates for floating
	// terminals); cellNet[cellNetStart[ci]:cellNetStart[ci+1]] is the net
	// of each of cell ci's pins, in pin order (not deduplicated — netsOf
	// and optimalX preserve the per-pin iteration order of the source
	// structures).
	netPinStart  []int32
	netPinCell   []int32
	netPinOx     []float64
	netPinOy     []float64
	netW         []float64
	cellNetStart []int32
	cellNet      []int32
}

// buildPinView flattens the netlist's pin structures into the CSR
// arrays above.
func (p *placer) buildPinView() {
	d := p.d
	p.netPinStart = make([]int32, len(d.Nets)+1)
	p.netW = make([]float64, len(d.Nets))
	total := 0
	for ni := range d.Nets {
		p.netPinStart[ni] = int32(total)
		total += len(d.Nets[ni].Pins)
		p.netW[ni] = d.Nets[ni].EffWeight()
	}
	p.netPinStart[len(d.Nets)] = int32(total)
	p.netPinCell = make([]int32, total)
	p.netPinOx = make([]float64, total)
	p.netPinOy = make([]float64, total)
	k := 0
	for ni := range d.Nets {
		for _, pi := range d.Nets[ni].Pins {
			pin := &d.Pins[pi]
			p.netPinCell[k] = int32(pin.Cell)
			p.netPinOx[k] = pin.Ox
			p.netPinOy[k] = pin.Oy
			k++
		}
	}
	p.cellNetStart = make([]int32, len(d.Cells)+1)
	total = 0
	for ci := range d.Cells {
		p.cellNetStart[ci] = int32(total)
		total += len(d.Cells[ci].Pins)
	}
	p.cellNetStart[len(d.Cells)] = int32(total)
	p.cellNet = make([]int32, total)
	k = 0
	for ci := range d.Cells {
		for _, pi := range d.Cells[ci].Pins {
			p.cellNet[k] = int32(d.Pins[pi].Net)
			k++
		}
	}
}

// Place refines the legalized standard cells in cells. The layout must
// be legal on entry (legalize.CheckLegal passes); it stays legal.
func Place(d *netlist.Design, cells []int, opt Options) (Result, error) {
	opt.defaults()
	res := Result{HPWLBefore: d.HPWL()}
	p := &placer{d: d, opt: opt, workers: parallel.Count(opt.Workers)}
	if err := p.buildSegments(cells); err != nil {
		return res, err
	}
	p.buildPinView()
	p.buildRegions()
	rec := opt.Telemetry
	for pass := 0; pass < opt.Passes; pass++ {
		res.Passes = pass + 1
		improved := 0
		t := time.Now()
		improved += p.reorderPass(&res)
		rec.AddSpanTime("cDP", "reorder", time.Since(t))
		t = time.Now()
		improved += p.swapPass(&res)
		rec.AddSpanTime("cDP", "swap", time.Since(t))
		if !opt.DisableISM {
			t = time.Now()
			improved += p.ismPass(&res)
			rec.AddSpanTime("cDP", "ism", time.Since(t))
		}
		t = time.Now()
		improved += p.relocatePass(&res)
		rec.AddSpanTime("cDP", "relocate", time.Since(t))
		if opt.Golden != nil {
			opt.Golden.Absorb("cDP", pass, d.Positions(cells), d.HPWL(), 0)
		}
		if rec.Active() {
			rec.Sample(telemetry.Sample{
				Stage: "cDP", Iteration: pass, HPWL: d.HPWL(),
			})
		}
		if improved == 0 {
			break
		}
	}
	res.HPWLAfter = d.HPWL()
	rec.Count("cDP/swaps", int64(res.Swaps))
	rec.Count("cDP/reorders", int64(res.Reorders))
	rec.Count("cDP/relocates", int64(res.Relocates))
	rec.Count("cDP/ism_rounds", int64(res.ISMRounds))
	return res, nil
}

// buildSegments assigns every movable cell to its free row segment.
func (p *placer) buildSegments(cells []int) error {
	d := p.d
	if len(d.Rows) == 0 {
		return fmt.Errorf("detail: design has no rows")
	}
	free := legalize.FreeSegments(d)
	// Row lookup by bottom y. Determinism contract: byY is used for
	// point lookups only, never range-iterated, so map order is
	// irrelevant (keys are distinct row baselines, so no overwrites).
	byY := map[float64]int{}
	for ri, r := range d.Rows {
		byY[round6(r.Y)] = ri
	}
	// Build segment objects with row-major ordering.
	segStart := make([]int, len(d.Rows)) // first seg index per row
	for ri := range free {
		segStart[ri] = len(p.segs)
		for _, s := range free[ri] {
			p.segs = append(p.segs, &segCells{lx: s.Lx, hx: s.Hx})
		}
	}
	p.segOf = make([]int32, len(d.Cells))
	p.regionOf = make([]int32, len(d.Cells))
	for i := range p.segOf {
		p.segOf[i] = -1
		p.regionOf[i] = -1
	}
	for _, ci := range cells {
		c := &d.Cells[ci]
		ri, ok := byY[round6(c.Y-c.H/2)]
		if !ok {
			return fmt.Errorf("detail: cell %d not row-aligned (y=%v)", ci, c.Y-c.H/2)
		}
		// Find the segment containing the cell.
		found := -1
		for si := segStart[ri]; si < len(p.segs); si++ {
			if si >= segStart[ri]+len(free[ri]) {
				break
			}
			s := p.segs[si]
			if c.X-c.W/2 >= s.lx-1e-6 && c.X+c.W/2 <= s.hx+1e-6 {
				found = si
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("detail: cell %d (%s) not inside a free segment", ci, c.Name)
		}
		p.segs[found].cells = append(p.segs[found].cells, ci)
		p.segOf[ci] = int32(found)
	}
	for _, s := range p.segs {
		sort.Slice(s.cells, func(a, b int) bool {
			if d.Cells[s.cells[a]].X != d.Cells[s.cells[b]].X {
				return d.Cells[s.cells[a]].X < d.Cells[s.cells[b]].X
			}
			// Equal abutting x (zero-width gaps): fall back to cell
			// index so the initial segment order is a total order.
			return s.cells[a] < s.cells[b]
		})
	}
	return nil
}

// regionTargetCells sets region granularity: large enough that most of
// a cell's neighborhood is in its own (live) region — small designs get
// a single region and therefore exactly the serial semantics — small
// enough to spread a 50K+-cell design across a worker pool. maxRegions
// bounds snapshot bookkeeping.
const (
	regionTargetCells = 2048
	maxRegions        = 64
)

// buildRegions partitions the segment list into contiguous ranges with
// balanced cell counts. Determinism contract: the partition is a pure
// function of the design (segment contents), never of the worker
// count, so every worker count evaluates the same region boundaries.
func (p *placer) buildRegions() {
	managed := 0
	for _, s := range p.segs {
		managed += len(s.cells)
	}
	g := managed / regionTargetCells
	if g < 1 {
		g = 1
	}
	if g > maxRegions {
		g = maxRegions
	}
	if g > len(p.segs) && len(p.segs) > 0 {
		g = len(p.segs)
	}
	p.segRegion = make([]int32, len(p.segs))
	acc, seg := 0, 0
	for r := 0; r < g; r++ {
		lo := seg
		target := ((r + 1) * managed) / g
		for seg < len(p.segs) && (acc < target || r == g-1) {
			acc += len(p.segs[seg].cells)
			p.segRegion[seg] = int32(r)
			seg++
		}
		p.regions = append(p.regions, segRange{lo, seg})
	}
	for si, s := range p.segs {
		for _, ci := range s.cells {
			p.regionOf[ci] = p.segRegion[si]
		}
	}
	p.snapX = make([]float64, len(p.d.Cells))
	p.snapY = make([]float64, len(p.d.Cells))
	p.counts = make([]passCount, len(p.regions))
	p.evals = make([]*evalCtx, p.workers)
	for i := range p.evals {
		p.evals[i] = newEvalCtx(p)
	}
}

// snapshot freezes every managed cell's position into snapX/snapY.
// Parallel over segments (disjoint writes per cell).
func (p *placer) snapshot() {
	parallel.For(p.workers, len(p.segs), func(_, lo, hi int) {
		for si := lo; si < hi; si++ {
			for _, ci := range p.segs[si].cells {
				c := &p.d.Cells[ci]
				p.snapX[ci], p.snapY[ci] = c.X, c.Y
			}
		}
	})
}

// forRegions snapshots the managed positions and runs fn once per
// region, sharded across the worker pool. fn mutates only its own
// region's cells and reads other regions through the snapshot, so each
// region's outcome is a pure function of the pass's starting state —
// identical at every worker count. Accepted-move counters are written
// per region and reduced in region order by the caller.
func (p *placer) forRegions(fn func(e *evalCtx, r int) passCount) (improved, ops int) {
	p.snapshot()
	parallel.For(p.workers, len(p.regions), func(w, lo, hi int) {
		e := p.evals[w]
		e.allLive = false
		for r := lo; r < hi; r++ {
			e.region = int32(r)
			p.counts[r] = fn(e, r)
		}
	})
	for r := range p.counts {
		improved += p.counts[r].improved
		ops += p.counts[r].ops
	}
	return improved, ops
}

// gap returns the free interval available to the cell at s.cells[k].
// Neighbors are always in the same segment (the caller's own region),
// so live reads are exact.
func (p *placer) gap(s *segCells, k int) (lo, hi float64) {
	d := p.d
	lo, hi = s.lx, s.hx
	if k > 0 {
		c := &d.Cells[s.cells[k-1]]
		lo = math.Max(lo, c.X+c.W/2)
	}
	if k+1 < len(s.cells) {
		c := &d.Cells[s.cells[k+1]]
		hi = math.Min(hi, c.X-c.W/2)
	}
	return lo, hi
}

// relocatePass slides each cell within its own gap toward its optimal
// x, accepting when HPWL improves.
func (p *placer) relocatePass(res *Result) int {
	d := p.d
	improved, ops := p.forRegions(func(e *evalCtx, r int) passCount {
		var pc passCount
		for si := p.regions[r].lo; si < p.regions[r].hi; si++ {
			s := p.segs[si]
			for k, ci := range s.cells {
				c := &d.Cells[ci]
				lo, hi := p.gap(s, k)
				if hi-lo < c.W-1e-12 {
					continue
				}
				target := e.optimalX(ci)
				nx := math.Max(lo+c.W/2, math.Min(hi-c.W/2, target))
				if math.Abs(nx-c.X) < 1e-12 {
					continue
				}
				nets := e.netsOf1(ci)
				before := e.hpwlOf(nets)
				oldX := c.X
				c.X = nx
				if e.hpwlOf(nets) < before-1e-12 {
					pc.improved++
					pc.ops++
				} else {
					c.X = oldX
				}
			}
		}
		return pc
	})
	res.Relocates += ops
	return improved
}

// swapPass tries exchanging each cell with cells of its segment nearest
// its optimal x. Iteration follows a fixed copy of each segment's order
// captured when the segment is entered (swaps permute it in place).
func (p *placer) swapPass(res *Result) int {
	d := p.d
	improved, ops := p.forRegions(func(e *evalCtx, r int) passCount {
		var pc passCount
		for si := p.regions[r].lo; si < p.regions[r].hi; si++ {
			s := p.segs[si]
			e.order = append(e.order[:0], s.cells...)
			for _, ci := range e.order {
				k := indexOf(s.cells, ci)
				if k < 0 {
					continue
				}
				target := e.optimalX(ci)
				// Binary search for the first cell at or right of the
				// target (hand-rolled: sort.Search's closure allocates).
				lo, hi := 0, len(s.cells)
				for lo < hi {
					mid := (lo + hi) / 2
					if d.Cells[s.cells[mid]].X >= target {
						hi = mid
					} else {
						lo = mid + 1
					}
				}
				tried := 0
				for off := 0; off < len(s.cells) && tried < p.opt.SwapCandidates; off++ {
					advanced := false
					for side := 0; side < 2; side++ {
						j := lo + off
						if side == 1 {
							j = lo - off - 1
						}
						if j < 0 || j >= len(s.cells) || s.cells[j] == ci || tried >= p.opt.SwapCandidates {
							continue
						}
						advanced = true
						tried++
						if e.trySwap(s, k, j) {
							pc.improved++
							pc.ops++
							k = indexOf(s.cells, ci)
							break
						}
					}
					if !advanced && off > len(s.cells) {
						break
					}
				}
			}
		}
		return pc
	})
	res.Swaps += ops
	return improved
}

// trySwap exchanges the cells at positions ka and kb of segment s when
// both fit in each other's gaps and HPWL improves.
func (e *evalCtx) trySwap(s *segCells, ka, kb int) bool {
	if ka == kb {
		return false
	}
	p := e.p
	d := p.d
	if ka > kb {
		ka, kb = kb, ka
	}
	a, b := s.cells[ka], s.cells[kb]
	ca, cb := &d.Cells[a], &d.Cells[b]
	loA, hiA := p.gap(s, ka)
	loB, hiB := p.gap(s, kb)
	if kb == ka+1 {
		// Adjacent: joint interval.
		lo, hi := loA, hiB
		if cb.W+ca.W > hi-lo+1e-12 {
			return false
		}
		nets := e.netsOf2(a, b)
		before := e.hpwlOf(nets)
		oldAX, oldBX := ca.X, cb.X
		cb.X = lo + cb.W/2
		ca.X = lo + cb.W + ca.W/2
		if e.hpwlOf(nets) < before-1e-12 {
			s.cells[ka], s.cells[kb] = b, a
			return true
		}
		ca.X, cb.X = oldAX, oldBX
		return false
	}
	if cb.W > hiA-loA+1e-12 || ca.W > hiB-loB+1e-12 {
		return false
	}
	nets := e.netsOf2(a, b)
	before := e.hpwlOf(nets)
	oldAX, oldBX := ca.X, cb.X
	ca.X = math.Max(loB+ca.W/2, math.Min(hiB-ca.W/2, oldBX))
	cb.X = math.Max(loA+cb.W/2, math.Min(hiA-cb.W/2, oldAX))
	if e.hpwlOf(nets) < before-1e-12 {
		s.cells[ka], s.cells[kb] = b, a
		return true
	}
	ca.X, cb.X = oldAX, oldBX
	return false
}

// reorderPass permutes cells inside sliding windows of each segment.
func (p *placer) reorderPass(res *Result) int {
	w := p.opt.Window
	improved, ops := p.forRegions(func(e *evalCtx, r int) passCount {
		var pc passCount
		for si := p.regions[r].lo; si < p.regions[r].hi; si++ {
			s := p.segs[si]
			for start := 0; start+w <= len(s.cells); start++ {
				if e.tryReorder(s, start, w) {
					pc.improved++
					pc.ops++
				}
			}
		}
		return pc
	})
	res.Reorders += ops
	return improved
}

// tryReorder tests all permutations of the w cells starting at position
// start of segment s, packing each permutation from the window's left
// boundary, and keeps the best.
func (e *evalCtx) tryReorder(s *segCells, start, w int) bool {
	p := e.p
	d := p.d
	e.win = append(e.win[:0], s.cells[start:start+w]...)
	win := e.win
	lo, _ := p.gap(s, start)
	_, hi := p.gap(s, start+w-1)
	totalW := 0.0
	for _, ci := range win {
		totalW += d.Cells[ci].W
	}
	if totalW > hi-lo+1e-12 {
		return false
	}
	nets := e.netsOf(win)
	e.oldX = e.oldX[:0]
	for _, ci := range win {
		e.oldX = append(e.oldX, d.Cells[ci].X)
	}
	bestCost := e.hpwlOf(nets)
	baseCost := bestCost
	bestPerm := -1
	perms := permutations(w)
	e.bestXs = e.bestXs[:0]
	for pi, perm := range perms {
		x := lo
		for _, idx := range perm {
			c := &d.Cells[win[idx]]
			c.X = x + c.W/2
			x += c.W
		}
		if cost := e.hpwlOf(nets); cost < bestCost-1e-12 {
			bestCost = cost
			bestPerm = pi
			e.bestXs = e.bestXs[:0]
			for _, idx := range perm {
				e.bestXs = append(e.bestXs, d.Cells[win[idx]].X)
			}
		}
	}
	if bestPerm < 0 || bestCost >= baseCost-1e-12 {
		for i, ci := range win {
			d.Cells[ci].X = e.oldX[i]
		}
		return false
	}
	perm := perms[bestPerm]
	for i, idx := range perm {
		d.Cells[win[idx]].X = e.bestXs[i]
		s.cells[start+i] = win[idx]
	}
	return true
}

// permCache holds the permutation tables for the common window sizes;
// tables are built once and must never be mutated by callers.
var permCache = func() [][][]int {
	out := make([][][]int, 5)
	for n := 1; n <= 4; n++ {
		out[n] = buildPermutations(n)
	}
	return out
}()

// permutations returns all permutations of 0..n-1 (n small). The
// returned tables are shared and read-only for n <= 4.
func permutations(n int) [][]int {
	if n >= 1 && n < len(permCache) {
		return permCache[n]
	}
	return buildPermutations(n)
}

func buildPermutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	sub := buildPermutations(n - 1)
	var out [][]int
	for _, s := range sub {
		for pos := 0; pos <= len(s); pos++ {
			p := make([]int, 0, n)
			p = append(p, s[:pos]...)
			p = append(p, n-1)
			p = append(p, s[pos:]...)
			out = append(out, p)
		}
	}
	return out
}

func indexOf(list []int, ci int) int {
	for i, v := range list {
		if v == ci {
			return i
		}
	}
	return -1
}

func round6(x float64) float64 { return math.Round(x*1e6) / 1e6 }
