// Package detail implements the discrete refinement of the cDP stage
// (the paper invokes NTUplace3's detail placer [4]; this is a
// functional reimplementation): legality-preserving global swaps toward
// each cell's optimal region, local reordering windows, and relocation
// into whitespace. Cells are managed per obstacle-free row segment
// (from legalize.FreeSegments), so wide macros and pads can never be
// stepped on. Every operation keeps the layout legal and is accepted
// only when it shortens HPWL.
package detail

import (
	"fmt"
	"math"
	"sort"

	"eplace/internal/legalize"
	"eplace/internal/netlist"
	"eplace/internal/telemetry"
)

// Options tunes detail placement.
type Options struct {
	// Passes bounds the improvement sweeps (default 3).
	Passes int
	// Window is the local reordering window size (default 3).
	Window int
	// SwapCandidates bounds how many neighbors are tried per global
	// swap (default 8).
	SwapCandidates int
	// ISMSetSize bounds independent-set matching groups (default 6;
	// the assignment solve is cubic in this).
	ISMSetSize int
	// DisableISM turns off independent-set matching.
	DisableISM bool
	// Telemetry, when non-nil, receives one Sample per improvement pass
	// (stage "cDP") plus swap/reorder/relocate/ISM counters.
	Telemetry *telemetry.Recorder
	// Golden, when non-nil, absorbs every pass's cell positions and
	// HPWL into the "cDP" determinism digest (see telemetry.GoldenTrace).
	Golden *telemetry.GoldenTrace
}

func (o *Options) defaults() {
	if o.Passes <= 0 {
		o.Passes = 3
	}
	if o.Window <= 0 {
		o.Window = 3
	}
	if o.SwapCandidates <= 0 {
		o.SwapCandidates = 8
	}
	if o.ISMSetSize <= 0 {
		o.ISMSetSize = 6
	}
}

// Result reports a detail placement run.
type Result struct {
	Passes     int
	Swaps      int
	Reorders   int
	Relocates  int
	ISMRounds  int
	HPWLBefore float64
	HPWLAfter  float64
}

// segCells is one obstacle-free row interval and its cells in x order.
type segCells struct {
	lx, hx float64
	cells  []int
}

// placer holds segment-ordered occupancy over legalized cells.
type placer struct {
	d     *netlist.Design
	opt   Options
	segs  []*segCells
	segOf map[int]int // movable cell -> index into segs
}

// Place refines the legalized standard cells in cells. The layout must
// be legal on entry (legalize.CheckLegal passes); it stays legal.
func Place(d *netlist.Design, cells []int, opt Options) (Result, error) {
	opt.defaults()
	res := Result{HPWLBefore: d.HPWL()}
	p := &placer{d: d, opt: opt, segOf: map[int]int{}}
	if err := p.buildSegments(cells); err != nil {
		return res, err
	}
	for pass := 0; pass < opt.Passes; pass++ {
		res.Passes = pass + 1
		improved := 0
		improved += p.reorderPass(&res)
		improved += p.swapPass(cells, &res)
		if !opt.DisableISM {
			improved += p.ismPass(cells, &res)
		}
		improved += p.relocatePass(&res)
		if opt.Golden != nil {
			opt.Golden.Absorb("cDP", pass, d.Positions(cells), d.HPWL(), 0)
		}
		if opt.Telemetry.Active() {
			opt.Telemetry.Sample(telemetry.Sample{
				Stage: "cDP", Iteration: pass, HPWL: d.HPWL(),
			})
		}
		if improved == 0 {
			break
		}
	}
	res.HPWLAfter = d.HPWL()
	opt.Telemetry.Count("cDP/swaps", int64(res.Swaps))
	opt.Telemetry.Count("cDP/reorders", int64(res.Reorders))
	opt.Telemetry.Count("cDP/relocates", int64(res.Relocates))
	opt.Telemetry.Count("cDP/ism_rounds", int64(res.ISMRounds))
	return res, nil
}

// buildSegments assigns every movable cell to its free row segment.
func (p *placer) buildSegments(cells []int) error {
	d := p.d
	if len(d.Rows) == 0 {
		return fmt.Errorf("detail: design has no rows")
	}
	free := legalize.FreeSegments(d)
	// Row lookup by bottom y. Determinism contract: byY is used for
	// point lookups only, never range-iterated, so map order is
	// irrelevant (keys are distinct row baselines, so no overwrites).
	byY := map[float64]int{}
	for ri, r := range d.Rows {
		byY[round6(r.Y)] = ri
	}
	// Build segment objects with row-major ordering.
	segStart := make([]int, len(d.Rows)) // first seg index per row
	for ri := range free {
		segStart[ri] = len(p.segs)
		for _, s := range free[ri] {
			p.segs = append(p.segs, &segCells{lx: s.Lx, hx: s.Hx})
		}
	}
	for _, ci := range cells {
		c := &d.Cells[ci]
		ri, ok := byY[round6(c.Y-c.H/2)]
		if !ok {
			return fmt.Errorf("detail: cell %d not row-aligned (y=%v)", ci, c.Y-c.H/2)
		}
		// Find the segment containing the cell.
		found := -1
		for si := segStart[ri]; si < len(p.segs); si++ {
			if si >= segStart[ri]+len(free[ri]) {
				break
			}
			s := p.segs[si]
			if c.X-c.W/2 >= s.lx-1e-6 && c.X+c.W/2 <= s.hx+1e-6 {
				found = si
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("detail: cell %d (%s) not inside a free segment", ci, c.Name)
		}
		p.segs[found].cells = append(p.segs[found].cells, ci)
		p.segOf[ci] = found
	}
	for _, s := range p.segs {
		sort.Slice(s.cells, func(a, b int) bool {
			if d.Cells[s.cells[a]].X != d.Cells[s.cells[b]].X {
				return d.Cells[s.cells[a]].X < d.Cells[s.cells[b]].X
			}
			// Equal abutting x (zero-width gaps): fall back to cell
			// index so the initial segment order is a total order.
			return s.cells[a] < s.cells[b]
		})
	}
	return nil
}

// gap returns the free interval available to the cell at s.cells[k].
func (p *placer) gap(s *segCells, k int) (lo, hi float64) {
	d := p.d
	lo, hi = s.lx, s.hx
	if k > 0 {
		c := &d.Cells[s.cells[k-1]]
		lo = math.Max(lo, c.X+c.W/2)
	}
	if k+1 < len(s.cells) {
		c := &d.Cells[s.cells[k+1]]
		hi = math.Min(hi, c.X-c.W/2)
	}
	return lo, hi
}

// netsOf returns the distinct nets touching the given cells, in first-
// encounter (pin) order. Determinism contract: seen is a membership
// test only; the output order comes from the deterministic pin lists.
func (p *placer) netsOf(cells ...int) []int {
	seen := map[int]bool{}
	var out []int
	for _, ci := range cells {
		for _, pi := range p.d.Cells[ci].Pins {
			ni := p.d.Pins[pi].Net
			if !seen[ni] {
				seen[ni] = true
				out = append(out, ni)
			}
		}
	}
	return out
}

// hpwlOf sums current HPWL over the given nets.
func (p *placer) hpwlOf(nets []int) float64 {
	s := 0.0
	for _, ni := range nets {
		s += p.d.NetHPWL(ni)
	}
	return s
}

// optimalX returns the x median of the other pins of the cell's nets:
// the center of its optimal region.
func (p *placer) optimalX(ci int) float64 {
	var xs []float64
	d := p.d
	for _, pi := range d.Cells[ci].Pins {
		net := &d.Nets[d.Pins[pi].Net]
		for _, qi := range net.Pins {
			if d.Pins[qi].Cell == ci {
				continue
			}
			xs = append(xs, d.PinPos(qi).X)
		}
	}
	if len(xs) == 0 {
		return d.Cells[ci].X
	}
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// relocatePass slides each cell within its own gap toward its optimal
// x, accepting when HPWL improves.
func (p *placer) relocatePass(res *Result) int {
	improved := 0
	d := p.d
	for _, s := range p.segs {
		for k, ci := range s.cells {
			c := &d.Cells[ci]
			lo, hi := p.gap(s, k)
			if hi-lo < c.W-1e-12 {
				continue
			}
			target := p.optimalX(ci)
			nx := math.Max(lo+c.W/2, math.Min(hi-c.W/2, target))
			if math.Abs(nx-c.X) < 1e-12 {
				continue
			}
			nets := p.netsOf(ci)
			before := p.hpwlOf(nets)
			oldX := c.X
			c.X = nx
			if p.hpwlOf(nets) < before-1e-12 {
				improved++
				res.Relocates++
			} else {
				c.X = oldX
			}
		}
	}
	return improved
}

// swapPass tries exchanging each cell with cells of its segment nearest
// its optimal x.
func (p *placer) swapPass(cells []int, res *Result) int {
	improved := 0
	d := p.d
	for _, ci := range cells {
		si, ok := p.segOf[ci]
		if !ok {
			continue
		}
		s := p.segs[si]
		k := indexOf(s.cells, ci)
		if k < 0 {
			continue
		}
		target := p.optimalX(ci)
		lo := sort.Search(len(s.cells), func(i int) bool { return d.Cells[s.cells[i]].X >= target })
		tried := 0
		for off := 0; off < len(s.cells) && tried < p.opt.SwapCandidates; off++ {
			advanced := false
			for _, j := range []int{lo + off, lo - off - 1} {
				if j < 0 || j >= len(s.cells) || s.cells[j] == ci || tried >= p.opt.SwapCandidates {
					continue
				}
				advanced = true
				tried++
				if p.trySwap(s, k, j) {
					improved++
					res.Swaps++
					k = indexOf(s.cells, ci)
					break
				}
			}
			if !advanced && off > len(s.cells) {
				break
			}
		}
	}
	return improved
}

// trySwap exchanges the cells at positions ka and kb of segment s when
// both fit in each other's gaps and HPWL improves.
func (p *placer) trySwap(s *segCells, ka, kb int) bool {
	if ka == kb {
		return false
	}
	d := p.d
	if ka > kb {
		ka, kb = kb, ka
	}
	a, b := s.cells[ka], s.cells[kb]
	ca, cb := &d.Cells[a], &d.Cells[b]
	loA, hiA := p.gap(s, ka)
	loB, hiB := p.gap(s, kb)
	if kb == ka+1 {
		// Adjacent: joint interval.
		lo, hi := loA, hiB
		if cb.W+ca.W > hi-lo+1e-12 {
			return false
		}
		nets := p.netsOf(a, b)
		before := p.hpwlOf(nets)
		oldAX, oldBX := ca.X, cb.X
		cb.X = lo + cb.W/2
		ca.X = lo + cb.W + ca.W/2
		if p.hpwlOf(nets) < before-1e-12 {
			s.cells[ka], s.cells[kb] = b, a
			return true
		}
		ca.X, cb.X = oldAX, oldBX
		return false
	}
	if cb.W > hiA-loA+1e-12 || ca.W > hiB-loB+1e-12 {
		return false
	}
	nets := p.netsOf(a, b)
	before := p.hpwlOf(nets)
	oldAX, oldBX := ca.X, cb.X
	ca.X = math.Max(loB+ca.W/2, math.Min(hiB-ca.W/2, oldBX))
	cb.X = math.Max(loA+cb.W/2, math.Min(hiA-cb.W/2, oldAX))
	if p.hpwlOf(nets) < before-1e-12 {
		s.cells[ka], s.cells[kb] = b, a
		return true
	}
	ca.X, cb.X = oldAX, oldBX
	return false
}

// reorderPass permutes cells inside sliding windows of each segment.
func (p *placer) reorderPass(res *Result) int {
	improved := 0
	w := p.opt.Window
	for _, s := range p.segs {
		for start := 0; start+w <= len(s.cells); start++ {
			if p.tryReorder(s, start, w) {
				improved++
				res.Reorders++
			}
		}
	}
	return improved
}

// tryReorder tests all permutations of the w cells starting at position
// start of segment s, packing each permutation from the window's left
// boundary, and keeps the best.
func (p *placer) tryReorder(s *segCells, start, w int) bool {
	d := p.d
	win := make([]int, w)
	copy(win, s.cells[start:start+w])
	lo, _ := p.gap(s, start)
	_, hi := p.gap(s, start+w-1)
	totalW := 0.0
	for _, ci := range win {
		totalW += d.Cells[ci].W
	}
	if totalW > hi-lo+1e-12 {
		return false
	}
	nets := p.netsOf(win...)
	oldX := make([]float64, w)
	for i, ci := range win {
		oldX[i] = d.Cells[ci].X
	}
	bestCost := p.hpwlOf(nets)
	baseCost := bestCost
	bestPerm := -1
	perms := permutations(w)
	var bestXs []float64
	for pi, perm := range perms {
		x := lo
		for _, idx := range perm {
			c := &d.Cells[win[idx]]
			c.X = x + c.W/2
			x += c.W
		}
		if cost := p.hpwlOf(nets); cost < bestCost-1e-12 {
			bestCost = cost
			bestPerm = pi
			bestXs = bestXs[:0]
			for _, idx := range perm {
				bestXs = append(bestXs, d.Cells[win[idx]].X)
			}
		}
	}
	if bestPerm < 0 || bestCost >= baseCost-1e-12 {
		for i, ci := range win {
			d.Cells[ci].X = oldX[i]
		}
		return false
	}
	perm := perms[bestPerm]
	for i, idx := range perm {
		d.Cells[win[idx]].X = bestXs[i]
		s.cells[start+i] = win[idx]
	}
	return true
}

// permutations returns all permutations of 0..n-1 (n small).
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	sub := permutations(n - 1)
	var out [][]int
	for _, s := range sub {
		for pos := 0; pos <= len(s); pos++ {
			p := make([]int, 0, n)
			p = append(p, s[:pos]...)
			p = append(p, n-1)
			p = append(p, s[pos:]...)
			out = append(out, p)
		}
	}
	return out
}

func indexOf(list []int, ci int) int {
	for i, v := range list {
		if v == ci {
			return i
		}
	}
	return -1
}

func round6(x float64) float64 { return math.Round(x*1e6) / 1e6 }
