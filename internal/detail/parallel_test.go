package detail

import (
	"math"
	"math/rand"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/legalize"
	"eplace/internal/netlist"
)

// bigLegalDesign builds a legalized design large enough to split into
// several detail-placement regions (cell count above regionTargetCells)
// with realistic connectivity.
func bigLegalDesign(n int, seed int64) (*netlist.Design, []int) {
	rng := rand.New(rand.NewSource(seed))
	side := math.Sqrt(float64(n) * 3 * 2 / 0.55)
	side = math.Ceil(side/2) * 2
	d := netlist.New("dp-big", geom.Rect{Hx: side, Hy: side})
	legalize.BuildRows(d, 2, 1)
	var cells []int
	for i := 0; i < n; i++ {
		cells = append(cells, d.AddCell(netlist.Cell{
			W: float64(2 + rng.Intn(3)), H: 2,
			X: 2 + rng.Float64()*(side-4), Y: 2 + rng.Float64()*(side-4),
		}))
	}
	var pads []int
	for i := 0; i < 8; i++ {
		pads = append(pads, d.AddCell(netlist.Cell{
			W: 1, H: 1, X: side * float64(i) / 8, Y: side - 0.5,
			Fixed: true, Kind: netlist.Pad,
		}))
	}
	for k := 0; k < n; k++ {
		ni := d.AddNet("", 1)
		deg := 2 + rng.Intn(3)
		for p := 0; p < deg; p++ {
			d.Connect(cells[rng.Intn(n)], ni, 0, 0)
		}
		if rng.Intn(5) == 0 {
			d.Connect(pads[rng.Intn(len(pads))], ni, 0, 0)
		}
	}
	if _, _, err := legalize.Cells(d, cells, legalize.Abacus); err != nil {
		panic(err)
	}
	return d, cells
}

// TestDetailWorkersBitwiseIdentical is the cDP half of the back-end
// determinism property: every worker count must produce bit-for-bit
// the same layout and pass counters. 9000 cells split into 4 regions,
// so region-parallel relocate/swap/reorder and the propose/commit ISM
// protocol are all genuinely exercised.
func TestDetailWorkersBitwiseIdentical(t *testing.T) {
	var refX, refY []float64
	var ref Result
	for _, w := range []int{1, 2, 7} {
		d, cells := bigLegalDesign(9000, 13)
		res, err := Place(d, cells, Options{Workers: w, Passes: 2})
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if err := legalize.CheckLegal(d, cells); err != nil {
			t.Fatalf("workers %d: not legal after detail: %v", w, err)
		}
		if res.HPWLAfter >= res.HPWLBefore {
			t.Errorf("workers %d: no improvement (%v -> %v)", w, res.HPWLBefore, res.HPWLAfter)
		}
		if w == 1 {
			ref = res
			for _, ci := range cells {
				refX = append(refX, d.Cells[ci].X)
				refY = append(refY, d.Cells[ci].Y)
			}
			continue
		}
		if res != ref {
			t.Errorf("workers %d: result %+v != serial %+v", w, res, ref)
		}
		for k, ci := range cells {
			if d.Cells[ci].X != refX[k] || d.Cells[ci].Y != refY[k] {
				t.Fatalf("workers %d: cell %d at (%v, %v), serial (%v, %v)",
					w, ci, d.Cells[ci].X, d.Cells[ci].Y, refX[k], refY[k])
			}
		}
	}
}

// buildPlacer assembles a ready-to-pass placer for the alloc and
// microbenchmark harnesses.
func buildPlacer(d *netlist.Design, cells []int, workers int) *placer {
	opt := Options{}
	opt.defaults()
	opt.Workers = workers
	p := &placer{d: d, opt: opt, workers: workers}
	if err := p.buildSegments(cells); err != nil {
		panic(err)
	}
	p.buildPinView()
	p.buildRegions()
	return p
}

// TestPassAllocs guards the churn satellite: after one warm-up sweep,
// the relocate/swap/reorder inner loops must run allocation-free (the
// only steady-state allocations allowed are the per-pass fork-join
// closures, a handful of objects, not per-cell garbage).
func TestPassAllocs(t *testing.T) {
	d, cells := legalDesign(400, 3)
	p := buildPlacer(d, cells, 1)
	var res Result
	p.relocatePass(&res)
	p.swapPass(&res)
	p.reorderPass(&res)
	const limit = 8
	if a := testing.AllocsPerRun(5, func() { p.relocatePass(&res) }); a > limit {
		t.Errorf("relocatePass allocates %v objects per run, want <= %d", a, limit)
	}
	if a := testing.AllocsPerRun(5, func() { p.swapPass(&res) }); a > limit {
		t.Errorf("swapPass allocates %v objects per run, want <= %d", a, limit)
	}
	if a := testing.AllocsPerRun(5, func() { p.reorderPass(&res) }); a > limit {
		t.Errorf("reorderPass allocates %v objects per run, want <= %d", a, limit)
	}
}

// TestHungarianAllocs: the flat assignment solver reuses its scratch.
func TestHungarianAllocs(t *testing.T) {
	var s hungScratch
	n := 6
	cost := make([]float64, n*n)
	for i := range cost {
		cost[i] = float64((i*7919)%101) / 10
	}
	s.solve(n, cost) // warm the scratch
	if a := testing.AllocsPerRun(100, func() { s.solve(n, cost) }); a != 0 {
		t.Errorf("hungScratch.solve allocates %v objects per run, want 0", a)
	}
}

// TestPermutationsCached: window-sized tables come from the shared cache.
func TestPermutationsCached(t *testing.T) {
	for n := 1; n <= 4; n++ {
		if a := testing.AllocsPerRun(100, func() { permutations(n) }); a != 0 {
			t.Errorf("permutations(%d) allocates %v objects per run, want 0", n, a)
		}
	}
	if got := len(permutations(4)); got != 24 {
		t.Errorf("permutations(4) has %d entries, want 24", got)
	}
}

// BenchmarkDetailPass measures one full improvement pass (reorder +
// swap + ISM + relocate) over a 5000-cell legalized design at 1 worker.
func BenchmarkDetailPass(b *testing.B) {
	d, cells := bigLegalDesign(5000, 7)
	saveX := make([]float64, len(d.Cells))
	saveY := make([]float64, len(d.Cells))
	for i := range d.Cells {
		saveX[i], saveY[i] = d.Cells[i].X, d.Cells[i].Y
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := range d.Cells {
			d.Cells[i].X, d.Cells[i].Y = saveX[i], saveY[i]
		}
		if _, err := Place(d, cells, Options{Passes: 1, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
