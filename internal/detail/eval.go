package detail

import (
	"math"
	"sort"
)

// evalCtx is one worker's evaluation context: region-aware position
// reads plus every scratch buffer the inner loops need, so a steady-
// state improvement pass allocates nothing.
//
// Position visibility rule (the heart of the determinism argument, see
// DESIGN.md "Parallel legalization and detailed placement"): during a
// region-parallel pass each worker owns the cells of its current
// region. It reads those live (including its own in-flight trial
// moves), reads every other region's managed cells from the snapshot
// taken at pass start, and reads unmanaged cells (fixed objects,
// macros, pads) live — nobody moves those during cDP. A region's moves
// are therefore a pure function of (snapshot, own region's state),
// independent of how regions are scheduled onto workers.
type evalCtx struct {
	p *placer
	// region is the region this worker currently owns; allLive
	// short-circuits the snapshot redirect for the serial phases (ISM
	// propose/commit run without concurrent mutation, so live reads are
	// both safe and exact).
	region  int32
	allLive bool

	// Hypothetically-moved cells (ISM cost evaluation): pos() returns
	// the override instead of the stored position.
	nmoved    int
	movedCell [maxISMSet]int
	movedX    [maxISMSet]float64
	movedY    [maxISMSet]float64

	// netsOf scratch: epoch-stamped membership test over nets (replaces
	// the per-call map the serial implementation allocated).
	netSeen []int64
	epoch   int64
	nets    []int
	cbuf    [2]int

	// optimalX scratch.
	xs []float64

	// Pass scratch: segment iteration order, reorder windows.
	order  []int
	win    []int
	oldX   []float64
	bestXs []float64

	// ISM scratch.
	setBuf []int
	slotX  []float64
	slotY  []float64
	cost   []float64
	hung   hungScratch
}

func newEvalCtx(p *placer) *evalCtx {
	return &evalCtx{p: p, netSeen: make([]int64, len(p.d.Nets))}
}

// pos returns the cell's position as seen by this context: override
// first, then the live/frozen split described on evalCtx.
func (e *evalCtx) pos(ci int) (float64, float64) {
	for k := 0; k < e.nmoved; k++ {
		if e.movedCell[k] == ci {
			return e.movedX[k], e.movedY[k]
		}
	}
	if !e.allLive {
		if r := e.p.regionOf[ci]; r >= 0 && r != e.region {
			return e.p.snapX[ci], e.p.snapY[ci]
		}
	}
	c := &e.p.d.Cells[ci]
	return c.X, c.Y
}

// pushMoved installs a hypothetical position for ci (ISM cost rows).
func (e *evalCtx) pushMoved(ci int, x, y float64) {
	e.movedCell[e.nmoved] = ci
	e.movedX[e.nmoved] = x
	e.movedY[e.nmoved] = y
	e.nmoved++
}

func (e *evalCtx) clearMoved() { e.nmoved = 0 }

// netHPWL is d.NetHPWL through the context's position rule, over the
// placer's flat pin view. Floating-point note: x is computed as
// Ox + pos rather than the source structure's pos + Ox; IEEE addition
// is commutative, so the result is bitwise identical.
func (e *evalCtx) netHPWL(ni int) float64 {
	p := e.p
	lo, hi := p.netPinStart[ni], p.netPinStart[ni+1]
	if hi-lo < 2 {
		return 0
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for k := lo; k < hi; k++ {
		x, y := p.netPinOx[k], p.netPinOy[k]
		if ci := p.netPinCell[k]; ci >= 0 {
			cx, cy := e.pos(int(ci))
			x += cx
			y += cy
		}
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	return p.netW[ni] * ((maxX - minX) + (maxY - minY))
}

// hpwlOf sums netHPWL over the given nets.
func (e *evalCtx) hpwlOf(nets []int) float64 {
	s := 0.0
	for _, ni := range nets {
		s += e.netHPWL(ni)
	}
	return s
}

// bumpEpoch advances the membership epoch, resetting the stamp array on
// the (practically unreachable) wraparound.
func (e *evalCtx) bumpEpoch() {
	e.epoch++
	if e.epoch == math.MaxInt64 {
		for i := range e.netSeen {
			e.netSeen[i] = 0
		}
		e.epoch = 1
	}
}

// netsOf returns the distinct nets touching the given cells, in first-
// encounter (pin) order, in a scratch slice valid until the next
// netsOf/independentSubset call on this context.
func (e *evalCtx) netsOf(cells []int) []int {
	e.bumpEpoch()
	p := e.p
	e.nets = e.nets[:0]
	for _, ci := range cells {
		for k := p.cellNetStart[ci]; k < p.cellNetStart[ci+1]; k++ {
			ni := int(p.cellNet[k])
			if e.netSeen[ni] != e.epoch {
				e.netSeen[ni] = e.epoch
				e.nets = append(e.nets, ni)
			}
		}
	}
	return e.nets
}

// netsOf1 and netsOf2 avoid a variadic allocation on the two hot arities.
func (e *evalCtx) netsOf1(ci int) []int {
	e.cbuf[0] = ci
	return e.netsOf(e.cbuf[:1])
}

func (e *evalCtx) netsOf2(a, b int) []int {
	e.cbuf[0], e.cbuf[1] = a, b
	return e.netsOf(e.cbuf[:2])
}

// optimalX returns the x median of the other pins of the cell's nets:
// the center of its optimal region, under the context's position rule.
func (e *evalCtx) optimalX(ci int) float64 {
	p := e.p
	e.xs = e.xs[:0]
	for k := p.cellNetStart[ci]; k < p.cellNetStart[ci+1]; k++ {
		ni := p.cellNet[k]
		for q := p.netPinStart[ni]; q < p.netPinStart[ni+1]; q++ {
			cj := p.netPinCell[q]
			if int(cj) == ci {
				continue
			}
			x := p.netPinOx[q]
			if cj >= 0 {
				cx, _ := e.pos(int(cj))
				x += cx
			}
			e.xs = append(e.xs, x)
		}
	}
	if len(e.xs) == 0 {
		return p.d.Cells[ci].X
	}
	sort.Float64s(e.xs)
	return e.xs[len(e.xs)/2]
}
