package detail

import (
	"math"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/legalize"
	"eplace/internal/netlist"
)

func TestHungarianKnownMatrices(t *testing.T) {
	cases := []struct {
		cost [][]float64
		want []int
		sum  float64
	}{
		{
			cost: [][]float64{{1, 2}, {2, 1}},
			want: []int{0, 1},
			sum:  2,
		},
		{
			cost: [][]float64{{2, 1}, {1, 2}},
			want: []int{1, 0},
			sum:  2,
		},
		{
			// Classic 3x3: optimal assignment 0->1, 1->0, 2->2 (sum 5).
			cost: [][]float64{{4, 1, 3}, {2, 0, 5}, {3, 2, 2}},
			want: nil, // check sum only (ties possible)
			sum:  5,
		},
	}
	for k, c := range cases {
		got := hungarian(c.cost)
		sum := 0.0
		seen := map[int]bool{}
		for i, j := range got {
			sum += c.cost[i][j]
			if seen[j] {
				t.Fatalf("case %d: column %d assigned twice", k, j)
			}
			seen[j] = true
		}
		if math.Abs(sum-c.sum) > 1e-9 {
			t.Errorf("case %d: sum = %v, want %v (assign %v)", k, sum, c.sum, got)
		}
		if c.want != nil {
			for i := range c.want {
				if got[i] != c.want[i] {
					t.Errorf("case %d: assign = %v, want %v", k, got, c.want)
					break
				}
			}
		}
	}
}

func TestHungarianIsOptimalBruteForce(t *testing.T) {
	cost := [][]float64{
		{7, 3, 9, 1},
		{2, 8, 4, 6},
		{5, 5, 2, 8},
		{6, 1, 7, 3},
	}
	got := hungarian(cost)
	gotSum := 0.0
	for i, j := range got {
		gotSum += cost[i][j]
	}
	best := math.Inf(1)
	for _, perm := range permutations(4) {
		s := 0.0
		for i, j := range perm {
			s += cost[i][j]
		}
		if s < best {
			best = s
		}
	}
	if math.Abs(gotSum-best) > 1e-9 {
		t.Errorf("hungarian sum %v, brute force optimum %v", gotSum, best)
	}
}

// TestISMUntanglesCrossedCells: two equal-width cells placed at each
// other's ideal slots; pairwise swap also finds this, so disable swaps
// by construction: put them in different rows where only ISM (cross-
// segment, equal-width) can exchange them.
func TestISMUntanglesCrossedCells(t *testing.T) {
	d := netlist.New("ism", geom.Rect{Hx: 60, Hy: 8})
	legalize.BuildRows(d, 2, 1)
	// a at left of row 0, tied to a pad at the right; b at right of row
	// 1, tied to a pad at the left. Exchanging them fixes both nets.
	a := d.AddCell(netlist.Cell{W: 4, H: 2, X: 5, Y: 1})
	b := d.AddCell(netlist.Cell{W: 4, H: 2, X: 55, Y: 3})
	padR := d.AddCell(netlist.Cell{W: 1, H: 1, X: 58.5, Y: 0.5, Fixed: true, Kind: netlist.Pad})
	padL := d.AddCell(netlist.Cell{W: 1, H: 1, X: 1.5, Y: 2.5, Fixed: true, Kind: netlist.Pad})
	n1 := d.AddNet("", 1)
	d.Connect(a, n1, 0, 0)
	d.Connect(padR, n1, 0, 0)
	n2 := d.AddNet("", 1)
	d.Connect(b, n2, 0, 0)
	d.Connect(padL, n2, 0, 0)

	cells := []int{a, b}
	before := d.HPWL()
	res, err := Place(d, cells, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWLAfter >= before {
		t.Errorf("ISM did not improve: %v -> %v", before, res.HPWLAfter)
	}
	if err := legalize.CheckLegal(d, cells); err != nil {
		t.Fatalf("illegal after ISM: %v", err)
	}
	// The cells swapped rows.
	if !(d.Cells[a].X > 40 && d.Cells[b].X < 20) {
		t.Errorf("cells not exchanged: a at %v, b at %v", d.Cells[a].X, d.Cells[b].X)
	}
}

func TestISMPreservesLegalityAtScale(t *testing.T) {
	d, cells := legalDesign(300, 9)
	res, err := Place(d, cells, Options{Passes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := legalize.CheckLegal(d, cells); err != nil {
		t.Fatalf("illegal after ISM-enabled detail: %v", err)
	}
	_ = res
}

func TestISMImprovesOverDisabled(t *testing.T) {
	d1, c1 := legalDesign(400, 10)
	rOn, err := Place(d1, c1, Options{Passes: 4})
	if err != nil {
		t.Fatal(err)
	}
	d2, c2 := legalDesign(400, 10)
	rOff, err := Place(d2, c2, Options{Passes: 4, DisableISM: true})
	if err != nil {
		t.Fatal(err)
	}
	if rOn.HPWLAfter > rOff.HPWLAfter*1.001 {
		t.Errorf("ISM-enabled HPWL %v worse than disabled %v", rOn.HPWLAfter, rOff.HPWLAfter)
	}
	if rOn.ISMRounds == 0 {
		t.Error("ISM never fired")
	}
}

func TestIndependentSubsetSharesNoNets(t *testing.T) {
	d, cells := legalDesign(100, 11)
	p := &placer{d: d, opt: Options{ISMSetSize: 6}, workers: 1}
	if err := p.buildSegments(cells); err != nil {
		t.Fatal(err)
	}
	p.buildPinView()
	p.buildRegions()
	set := p.evals[0].independentSubset(cells, 6)
	seen := map[int]bool{}
	for _, ci := range set {
		for _, pi := range d.Cells[ci].Pins {
			ni := d.Pins[pi].Net
			if seen[ni] {
				t.Fatalf("cells share net %d", ni)
			}
			seen[ni] = true
		}
	}
}

// TestDetailPlaceDeterministic pins the determinism contract of the
// whole detail placer: two runs from identical starting layouts must
// produce bitwise-identical positions and statistics. ISM group order,
// the touched-segment repair, and every segment sort are exercised.
func TestDetailPlaceDeterministic(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		d1, cells1 := legalDesign(300, seed)
		d2, cells2 := legalDesign(300, seed)
		r1, err := Place(d1, cells1, Options{Passes: 3})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Place(d2, cells2, Options{Passes: 3})
		if err != nil {
			t.Fatal(err)
		}
		if r1.HPWLAfter != r2.HPWLAfter || r1.Swaps != r2.Swaps ||
			r1.Reorders != r2.Reorders || r1.ISMRounds != r2.ISMRounds {
			t.Fatalf("seed %d: results differ: %+v vs %+v", seed, r1, r2)
		}
		for i := range d1.Cells {
			if math.Float64bits(d1.Cells[i].X) != math.Float64bits(d2.Cells[i].X) ||
				math.Float64bits(d1.Cells[i].Y) != math.Float64bits(d2.Cells[i].Y) {
				t.Fatalf("seed %d: cell %d position differs: (%v,%v) vs (%v,%v)",
					seed, i, d1.Cells[i].X, d1.Cells[i].Y, d2.Cells[i].X, d2.Cells[i].Y)
			}
		}
	}
}
