package detail

import (
	"math"
	"sort"
)

// ismPass runs independent-set matching (the NTUplace3 cDP technique):
// groups of equal-width cells that share no nets have interchangeable
// slots, so their joint reassignment is an assignment problem solved
// exactly by the Hungarian method. Groups are gathered per width from
// nearby segments; each solved group is applied only when it improves
// HPWL (the optimum of the matching, so it never regresses).
func (p *placer) ismPass(cells []int, res *Result) int {
	d := p.d
	// Bucket movable cells by width.
	byWidth := map[float64][]int{}
	for _, ci := range cells {
		if _, ok := p.segOf[ci]; !ok {
			continue
		}
		byWidth[d.Cells[ci].W] = append(byWidth[d.Cells[ci].W], ci)
	}
	// Determinism contract: groups are processed in ascending width
	// order, never in Go's randomized map order. Each group's matching
	// moves cells, which changes the HPWL every later group optimizes
	// against — so group order is result-affecting and must be fixed
	// (this was the last source of run-to-run flutter in the flow).
	widths := make([]float64, 0, len(byWidth))
	for w := range byWidth {
		widths = append(widths, w)
	}
	sort.Float64s(widths)
	improved := 0
	for _, w := range widths {
		group := byWidth[w]
		if len(group) < 2 {
			continue
		}
		// Deterministic intra-group order: by x position, cell index as
		// the total tie-break (bucket append order is irrelevant once
		// the comparator is a strict total order).
		sort.Slice(group, func(a, b int) bool {
			if d.Cells[group[a]].X != d.Cells[group[b]].X {
				return d.Cells[group[a]].X < d.Cells[group[b]].X
			}
			return group[a] < group[b]
		})
		// Sliding windows over the bucket; within each window select an
		// independent subset (no shared nets).
		const window = 12
		for start := 0; start < len(group); start += window / 2 {
			end := start + window
			if end > len(group) {
				end = len(group)
			}
			set := independentSubset(p, group[start:end], p.opt.ISMSetSize)
			if len(set) >= 2 {
				if p.solveISM(set) {
					improved++
					res.ISMRounds++
				}
			}
			if end == len(group) {
				break
			}
		}
	}
	return improved
}

// independentSubset greedily picks cells sharing no nets. Determinism
// contract: used is membership-only; the greedy scan follows the
// caller's (sorted) candidate order.
func independentSubset(p *placer, candidates []int, maxSize int) []int {
	if maxSize <= 0 {
		maxSize = 6
	}
	used := map[int]bool{}
	var out []int
	for _, ci := range candidates {
		ok := true
		for _, pi := range p.d.Cells[ci].Pins {
			if used[p.d.Pins[pi].Net] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, ci)
		for _, pi := range p.d.Cells[ci].Pins {
			used[p.d.Pins[pi].Net] = true
		}
		if len(out) >= maxSize {
			break
		}
	}
	return out
}

// solveISM builds the cost matrix over the set's slots and applies the
// optimal assignment when it strictly improves total HPWL.
func (p *placer) solveISM(set []int) bool {
	d := p.d
	n := len(set)
	// Slots: the cells' current positions (x, y); widths are equal so
	// any permutation stays legal.
	type slot struct{ x, y float64 }
	slots := make([]slot, n)
	for k, ci := range set {
		slots[k] = slot{d.Cells[ci].X, d.Cells[ci].Y}
	}
	// Cost matrix: HPWL of cell i's nets with the cell at slot j. The
	// set's independence makes per-cell costs separable and exact.
	cost := make([][]float64, n)
	base := 0.0
	for i, ci := range set {
		cost[i] = make([]float64, n)
		nets := p.netsOf(ci)
		ox, oy := d.Cells[ci].X, d.Cells[ci].Y
		base += p.hpwlOf(nets)
		for j := range slots {
			d.Cells[ci].X, d.Cells[ci].Y = slots[j].x, slots[j].y
			cost[i][j] = p.hpwlOf(nets)
		}
		d.Cells[ci].X, d.Cells[ci].Y = ox, oy
	}
	assign := hungarian(cost)
	total := 0.0
	for i, j := range assign {
		total += cost[i][j]
	}
	if total >= base-1e-9 {
		return false
	}
	// Apply: move cells and swap their slot bookkeeping. Slot j is
	// exactly cell set[j]'s old position, so the segment a slot belongs
	// to is indexed directly by slot number — no position-keyed lookup.
	// (The previous composite float key x+1e7*y silently collided for
	// coordinates beyond the scale factor or with fractional parts,
	// corrupting segment bookkeeping on large designs.)
	origSeg := make([]int, n) // slot index -> segment that owns it
	for k, ci := range set {
		origSeg[k] = p.segOf[ci]
	}
	touched := map[int]bool{}
	for i, j := range assign {
		ci := set[i]
		d.Cells[ci].X, d.Cells[ci].Y = slots[j].x, slots[j].y
		newSeg := origSeg[j]
		if p.segOf[ci] != newSeg {
			// Remove from old segment list, add to the new one.
			old := p.segs[p.segOf[ci]]
			old.cells = removeOne(old.cells, ci)
			p.segs[newSeg].cells = append(p.segs[newSeg].cells, ci)
			p.segOf[ci] = newSeg
			touched[newSeg] = true
		}
		touched[p.segOf[ci]] = true
	}
	// Determinism contract: the per-segment re-sorts are independent,
	// but iterate touched segments in sorted order anyway (and break
	// equal-x ties by cell index) so the repair step has exactly one
	// possible outcome.
	touchedIdx := make([]int, 0, len(touched))
	for si := range touched {
		touchedIdx = append(touchedIdx, si)
	}
	sort.Ints(touchedIdx)
	for _, si := range touchedIdx {
		s := p.segs[si]
		sort.Slice(s.cells, func(a, b int) bool {
			if d.Cells[s.cells[a]].X != d.Cells[s.cells[b]].X {
				return d.Cells[s.cells[a]].X < d.Cells[s.cells[b]].X
			}
			return s.cells[a] < s.cells[b]
		})
	}
	return true
}

func removeOne(list []int, v int) []int {
	for i, x := range list {
		if x == v {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// hungarian solves the square assignment problem, returning for each
// row the assigned column with minimal total cost (Jonker-style O(n^3)
// shortest augmenting path formulation).
func hungarian(cost [][]float64) []int {
	n := len(cost)
	// Potentials and matching, 1-indexed internally.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	pcol := make([]int, n+1) // pcol[j] = row matched to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		pcol[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := pcol[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[pcol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if pcol[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			pcol[j0] = pcol[j1]
			j0 = j1
		}
	}
	out := make([]int, n)
	for j := 1; j <= n; j++ {
		if pcol[j] > 0 {
			out[pcol[j]-1] = j - 1
		}
	}
	return out
}
