package detail

import (
	"math"
	"sort"

	"eplace/internal/parallel"
)

// Independent-set matching (the NTUplace3 cDP technique): groups of
// equal-width cells that share no nets have interchangeable slots, so
// their joint reassignment is an assignment problem solved exactly by
// the Hungarian method.
//
// The pass is two-phase so it parallelizes without giving up bitwise
// determinism. Phase 1 (propose) builds the task list — width buckets,
// sliding windows — from the frozen pass-start state and solves every
// task's matching in parallel against that state without mutating it.
// Phase 2 (commit) walks the proposals in task order on one goroutine:
// a proposal whose cells all still sit bitwise-exactly on their
// proposed slots is re-priced against the live layout (earlier commits
// may have moved shared-net neighbors) and applied only if it still
// improves; any proposal invalidated by an earlier commit is dropped.
// The task list, each proposal, and the commit order are all pure
// functions of the pass-start state, so the outcome is identical at
// every worker count.

// ismTask is one sliding window over a width bucket.
type ismTask struct {
	cells []int // window into the bucket's sorted cell list
}

// ismProposal is one task's solved matching, produced in parallel and
// consumed serially. Buffers are reused across passes.
type ismProposal struct {
	ok     bool
	set    []int     // independent subset, candidate order
	slotX  []float64 // slot j = set[j]'s position at propose time
	slotY  []float64
	assign []int // set[i] moves to slot assign[i]
}

// ismWindow is the sliding-window size over each width bucket; windows
// advance by half so neighboring windows overlap.
const ismWindow = 12

// buildISMTasks gathers movable cells by footprint and cuts sliding
// windows. Cells are interchangeable only when both width AND height
// match: slots carry a y position, and parking a double-height cell on
// a single-height cell's slot leaves it straddling a row boundary
// (bucketing by width alone did exactly that once edits introduced
// same-width cells of a different height). Determinism contract:
// buckets are processed in ascending (width, height) order (never Go's
// randomized map order) and each bucket is sorted by (x, cell index) —
// a strict total order — so the task list is a pure function of the
// pass-start positions.
func (p *placer) buildISMTasks() []ismTask {
	d := p.d
	type dim struct{ w, h float64 }
	byDim := map[dim][]int{}
	for _, s := range p.segs {
		for _, ci := range s.cells {
			k := dim{d.Cells[ci].W, d.Cells[ci].H}
			byDim[k] = append(byDim[k], ci)
		}
	}
	dims := make([]dim, 0, len(byDim))
	for k := range byDim {
		dims = append(dims, k)
	}
	sort.Slice(dims, func(a, b int) bool {
		if dims[a].w != dims[b].w {
			return dims[a].w < dims[b].w
		}
		return dims[a].h < dims[b].h
	})
	var tasks []ismTask
	for _, w := range dims {
		group := byDim[w]
		if len(group) < 2 {
			continue
		}
		sort.Slice(group, func(a, b int) bool {
			if d.Cells[group[a]].X != d.Cells[group[b]].X {
				return d.Cells[group[a]].X < d.Cells[group[b]].X
			}
			return group[a] < group[b]
		})
		for start := 0; start < len(group); start += ismWindow / 2 {
			end := start + ismWindow
			if end > len(group) {
				end = len(group)
			}
			tasks = append(tasks, ismTask{cells: group[start:end]})
			if end == len(group) {
				break
			}
		}
	}
	return tasks
}

// ismPass runs the two-phase propose/commit scheme described above.
func (p *placer) ismPass(res *Result) int {
	tasks := p.buildISMTasks()
	if len(tasks) == 0 {
		return 0
	}
	if cap(p.ismProps) < len(tasks) {
		p.ismProps = make([]ismProposal, len(tasks))
	}
	props := p.ismProps[:len(tasks)]
	// Phase 1: parallel propose. Read-only against the live layout
	// (nothing moves during this phase), disjoint writes per task slot.
	parallel.For(p.workers, len(tasks), func(w, lo, hi int) {
		e := p.evals[w]
		e.allLive = true
		for t := lo; t < hi; t++ {
			e.proposeISM(tasks[t], &props[t])
		}
	})
	// Phase 2: total-order serial commit.
	improved := 0
	for t := range props {
		if p.commitISM(&props[t]) {
			improved++
			res.ISMRounds++
		}
	}
	return improved
}

// independentSubset greedily picks cells sharing no nets, following the
// caller's (sorted) candidate order. The result lives in e.setBuf until
// the next independentSubset call on this context.
func (e *evalCtx) independentSubset(candidates []int, maxSize int) []int {
	if maxSize <= 0 {
		maxSize = 6
	}
	e.bumpEpoch()
	d := e.p.d
	e.setBuf = e.setBuf[:0]
	for _, ci := range candidates {
		ok := true
		for _, pi := range d.Cells[ci].Pins {
			if e.netSeen[d.Pins[pi].Net] == e.epoch {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		e.setBuf = append(e.setBuf, ci)
		for _, pi := range d.Cells[ci].Pins {
			e.netSeen[d.Pins[pi].Net] = e.epoch
		}
		if len(e.setBuf) >= maxSize {
			break
		}
	}
	return e.setBuf
}

// proposeISM selects the task's independent subset, prices every
// cell/slot pair against the pass-start state, and records the optimal
// assignment when it improves. No layout mutation: hypothetical
// positions go through the evalCtx override.
func (e *evalCtx) proposeISM(t ismTask, prop *ismProposal) {
	prop.ok = false
	d := e.p.d
	set := e.independentSubset(t.cells, e.p.opt.ISMSetSize)
	n := len(set)
	if n < 2 {
		return
	}
	e.slotX = e.slotX[:0]
	e.slotY = e.slotY[:0]
	for _, ci := range set {
		e.slotX = append(e.slotX, d.Cells[ci].X)
		e.slotY = append(e.slotY, d.Cells[ci].Y)
	}
	if cap(e.cost) < n*n {
		e.cost = make([]float64, n*n)
	}
	cost := e.cost[:n*n]
	// Cost matrix: HPWL of cell i's nets with the cell at slot j. The
	// set's independence makes per-cell costs separable and exact.
	base := 0.0
	for i, ci := range set {
		nets := e.netsOf1(ci)
		base += e.hpwlOf(nets)
		for j := 0; j < n; j++ {
			e.pushMoved(ci, e.slotX[j], e.slotY[j])
			cost[i*n+j] = e.hpwlOf(nets)
			e.clearMoved()
		}
	}
	assign := e.hung.solve(n, cost)
	total := 0.0
	for i, j := range assign {
		total += cost[i*n+j]
	}
	if total >= base-1e-9 {
		return
	}
	prop.set = append(prop.set[:0], set...)
	prop.slotX = append(prop.slotX[:0], e.slotX...)
	prop.slotY = append(prop.slotY[:0], e.slotY...)
	prop.assign = append(prop.assign[:0], assign...)
	prop.ok = true
}

// commitISM validates a proposal against the live layout and applies
// it. Runs serially in task order.
func (p *placer) commitISM(prop *ismProposal) bool {
	if !prop.ok {
		return false
	}
	d := p.d
	e := p.evals[0]
	e.allLive = true
	// Drop the proposal if any member moved since propose time: an
	// earlier commit (overlapping window) won that cell.
	for i, ci := range prop.set {
		if d.Cells[ci].X != prop.slotX[i] || d.Cells[ci].Y != prop.slotY[i] {
			return false
		}
	}
	// Re-price on the live layout: earlier commits may have moved
	// shared-net neighbors. Per-cell evaluation is exact because the
	// set's nets are disjoint (independence).
	base, total := 0.0, 0.0
	for i, ci := range prop.set {
		nets := e.netsOf1(ci)
		base += e.hpwlOf(nets)
		j := prop.assign[i]
		e.pushMoved(ci, prop.slotX[j], prop.slotY[j])
		total += e.hpwlOf(nets)
		e.clearMoved()
	}
	if total >= base-1e-9 {
		return false
	}
	// Apply: move cells and swap their slot bookkeeping. Slot j is
	// exactly cell set[j]'s position, so the segment a slot belongs to
	// is indexed directly by slot number — no position-keyed lookup.
	var origSeg [maxISMSet]int32
	var touched [2 * maxISMSet]int32
	nt := 0
	for k, ci := range prop.set {
		origSeg[k] = p.segOf[ci]
	}
	for i, j := range prop.assign {
		ci := prop.set[i]
		d.Cells[ci].X, d.Cells[ci].Y = prop.slotX[j], prop.slotY[j]
		newSeg := origSeg[j]
		if p.segOf[ci] != newSeg {
			// Remove from old segment list, add to the new one.
			old := p.segs[p.segOf[ci]]
			old.cells = removeOne(old.cells, ci)
			p.segs[newSeg].cells = append(p.segs[newSeg].cells, ci)
			p.segOf[ci] = newSeg
			p.regionOf[ci] = p.segRegion[newSeg]
			touched[nt] = newSeg
			nt++
		}
		touched[nt] = p.segOf[ci]
		nt++
	}
	// Determinism contract: the per-segment re-sorts are independent,
	// but iterate touched segments in sorted order anyway (and break
	// equal-x ties by cell index) so the repair step has exactly one
	// possible outcome.
	ts := touched[:nt]
	sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
	var prev int32 = -1
	for _, si := range ts {
		if si == prev {
			continue
		}
		prev = si
		s := p.segs[si]
		sort.Slice(s.cells, func(a, b int) bool {
			if d.Cells[s.cells[a]].X != d.Cells[s.cells[b]].X {
				return d.Cells[s.cells[a]].X < d.Cells[s.cells[b]].X
			}
			return s.cells[a] < s.cells[b]
		})
	}
	return true
}

func removeOne(list []int, v int) []int {
	for i, x := range list {
		if x == v {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// hungScratch holds the assignment solver's working arrays so repeated
// solves allocate nothing once warm.
type hungScratch struct {
	u, v, minv []float64
	pcol, way  []int
	used       []bool
	assign     []int
}

func (s *hungScratch) grow(n int) {
	if cap(s.u) < n+1 {
		s.u = make([]float64, n+1)
		s.v = make([]float64, n+1)
		s.minv = make([]float64, n+1)
		s.pcol = make([]int, n+1)
		s.way = make([]int, n+1)
		s.used = make([]bool, n+1)
		s.assign = make([]int, n)
	}
	s.u = s.u[:n+1]
	s.v = s.v[:n+1]
	s.minv = s.minv[:n+1]
	s.pcol = s.pcol[:n+1]
	s.way = s.way[:n+1]
	s.used = s.used[:n+1]
	s.assign = s.assign[:n]
	for j := 0; j <= n; j++ {
		s.u[j] = 0
		s.v[j] = 0
		s.pcol[j] = 0
		s.way[j] = 0
	}
}

// solve finds the minimal-cost row->column assignment of the n x n
// matrix cost (row-major, cost[i*n+j]) using the Jonker-style O(n^3)
// shortest-augmenting-path formulation (1-indexed internally). The
// returned slice is scratch, valid until the next solve.
func (s *hungScratch) solve(n int, cost []float64) []int {
	s.grow(n)
	u, v, pcol, way := s.u, s.v, s.pcol, s.way
	for i := 1; i <= n; i++ {
		pcol[0] = i
		j0 := 0
		minv, used := s.minv, s.used
		for j := 0; j <= n; j++ {
			minv[j] = math.Inf(1)
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := pcol[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[(i0-1)*n+(j-1)] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[pcol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if pcol[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			pcol[j0] = pcol[j1]
			j0 = j1
		}
	}
	for j := 1; j <= n; j++ {
		if pcol[j] > 0 {
			s.assign[pcol[j]-1] = j - 1
		}
	}
	return s.assign
}

// hungarian solves the square assignment problem over a 2D cost matrix
// (convenience wrapper around hungScratch.solve).
func hungarian(cost [][]float64) []int {
	n := len(cost)
	flat := make([]float64, n*n)
	for i, row := range cost {
		copy(flat[i*n:(i+1)*n], row)
	}
	var s hungScratch
	out := make([]int, n)
	copy(out, s.solve(n, flat))
	return out
}
