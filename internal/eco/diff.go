package eco

import (
	"encoding/binary"
	"math"

	"eplace/internal/netlist"
)

// DefaultGridN is the occupancy-grid resolution of a Signature (per
// side). It doubles as the freeze planner's dirty-bin grid.
const DefaultGridN = 32

// Signature generalizes checkpoint.Fingerprint into addressable
// hashes: one per net (weight + pin membership), one per cell
// (geometry, kind, fixedness, and the hashes of every net it touches),
// and one per occupancy-grid region (the cells whose centers fall in
// the bin, position-sensitive by construction). Where the checkpoint
// fingerprint can only answer "did anything change?", a Signature diff
// answers "what changed, and which placed regions does it dirty?" —
// the reuse decision an incremental re-placement needs.
type Signature struct {
	GridN int
	// Cells and Nets are indexed like the design's slices.
	Cells []uint64
	Nets  []uint64
	// Regions is the GridN x GridN row-major occupancy hash.
	Regions []uint64
}

const fnvOffset = 14695981039346656037
const fnvPrime = 1099511628211

// fnv1a folds one 64-bit word into a rolling FNV-1a hash, byte-wise
// little-endian so the value matches hashing the serialized bytes.
func fnv1a(h, v uint64) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	for _, x := range b {
		h ^= uint64(x)
		h *= fnvPrime
	}
	return h
}

func fnvF(h uint64, f float64) uint64 { return fnv1a(h, math.Float64bits(f)) }

// Sign computes the structural signature of d at its current
// placement. gridN <= 0 selects DefaultGridN. Filler cells must not be
// present (signatures describe finished placements).
func Sign(d *netlist.Design, gridN int) *Signature {
	if gridN <= 0 {
		gridN = DefaultGridN
	}
	s := &Signature{
		GridN:   gridN,
		Cells:   make([]uint64, len(d.Cells)),
		Nets:    make([]uint64, len(d.Nets)),
		Regions: make([]uint64, gridN*gridN),
	}

	// Net hashes first: weight, degree, and each pin's (cell, offset).
	for ni := range d.Nets {
		n := &d.Nets[ni]
		h := uint64(fnvOffset)
		h = fnvF(h, n.EffWeight())
		h = fnv1a(h, uint64(len(n.Pins)))
		for _, pi := range n.Pins {
			p := &d.Pins[pi]
			h = fnv1a(h, uint64(uint32(p.Cell)))
			h = fnvF(h, p.Ox)
			h = fnvF(h, p.Oy)
		}
		s.Nets[ni] = h
	}

	// Cell hashes fold in the owning nets' hashes, so reweighting a net
	// or editing any of its members dirties every cell on the net.
	for ci := range d.Cells {
		c := &d.Cells[ci]
		h := uint64(fnvOffset)
		h = fnvF(h, c.W)
		h = fnvF(h, c.H)
		kind := uint64(c.Kind)
		if c.Fixed {
			kind |= 1 << 8
		}
		h = fnv1a(h, kind)
		for _, pi := range c.Pins {
			h = fnv1a(h, s.Nets[d.Pins[pi].Net])
		}
		s.Cells[ci] = h
	}

	// Region hashes: fold (index, cellHash) of the cells centered in
	// each bin, in cell-index order.
	for i := range s.Regions {
		s.Regions[i] = fnvOffset
	}
	for ci := range d.Cells {
		c := &d.Cells[ci]
		b := s.binOf(d, c.X, c.Y)
		s.Regions[b] = fnv1a(s.Regions[b], uint64(ci))
		s.Regions[b] = fnv1a(s.Regions[b], s.Cells[ci])
	}
	return s
}

// binOf maps a point to its row-major occupancy bin, clamping to the
// region boundary.
func (s *Signature) binOf(d *netlist.Design, x, y float64) int {
	n := s.GridN
	bx := int(float64(n) * (x - d.Region.Lx) / d.Region.W())
	by := int(float64(n) * (y - d.Region.Ly) / d.Region.H())
	if bx < 0 {
		bx = 0
	}
	if bx >= n {
		bx = n - 1
	}
	if by < 0 {
		by = 0
	}
	if by >= n {
		by = n - 1
	}
	return by*n + bx
}

// Fold collapses the signature to one fingerprint-style hash (useful
// for logging and quick equality checks).
func (s *Signature) Fold() uint64 {
	h := uint64(fnvOffset)
	for _, v := range s.Cells {
		h = fnv1a(h, v)
	}
	for _, v := range s.Nets {
		h = fnv1a(h, v)
	}
	return h
}

// Diff is the structural delta between two signatures of the same
// design lineage (after mutated in place by Apply, so indices align;
// cells/nets present only in the newer signature count as changed).
type Diff struct {
	// ChangedCells lists cells whose structural hash differs, ascending.
	ChangedCells []int
	// ChangedNets lists nets whose hash differs, ascending.
	ChangedNets []int
	// DirtyRegions lists occupancy bins whose hash differs, ascending
	// (row-major in the older signature's grid).
	DirtyRegions []int
}

// Empty reports a diff with no changes: the edit was a structural
// no-op and the previous placement can be reused bitwise.
func (df *Diff) Empty() bool {
	return len(df.ChangedCells) == 0 && len(df.ChangedNets) == 0 && len(df.DirtyRegions) == 0
}

// DiffSignatures compares old against new index-aligned.
func DiffSignatures(old, cur *Signature) *Diff {
	df := &Diff{}
	for ci := range cur.Cells {
		if ci >= len(old.Cells) || old.Cells[ci] != cur.Cells[ci] {
			df.ChangedCells = append(df.ChangedCells, ci)
		}
	}
	for ni := range cur.Nets {
		if ni >= len(old.Nets) || old.Nets[ni] != cur.Nets[ni] {
			df.ChangedNets = append(df.ChangedNets, ni)
		}
	}
	if old.GridN == cur.GridN {
		for b := range cur.Regions {
			if old.Regions[b] != cur.Regions[b] {
				df.DirtyRegions = append(df.DirtyRegions, b)
			}
		}
	}
	return df
}
