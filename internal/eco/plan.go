package eco

import (
	"fmt"
	"math"
	"sort"

	"eplace/internal/netlist"
)

// PlanOptions tunes the freeze planner.
type PlanOptions struct {
	// Hops is how many net-adjacency hops to expand the active set from
	// the edited cells (default 1: the edited cells' direct neighbors
	// re-place too, so new connectivity can pull them).
	Hops int
	// RadiusFrac is the geometric halo around edited cells, as a
	// fraction of the shorter region side (default 0.04). Every movable
	// standard cell within the halo is re-placed; everything beyond
	// stays frozen at its converged position.
	RadiusFrac float64
	// MaxNetDegree stops net-hop expansion through hub nets larger than
	// this (default 64): a clock-like net would otherwise activate the
	// whole design.
	MaxNetDegree int
	// GridN is the dirty-bin grid resolution (default DefaultGridN,
	// matching Sign).
	GridN int
}

func (o *PlanOptions) defaults() {
	if o.Hops == 0 {
		o.Hops = 1
	}
	if o.RadiusFrac <= 0 {
		o.RadiusFrac = 0.04
	}
	if o.MaxNetDegree <= 0 {
		o.MaxNetDegree = 64
	}
	if o.GridN <= 0 {
		o.GridN = DefaultGridN
	}
}

// Plan is the freeze decision: which movable cells are re-placed and
// which are reused (frozen as fixed obstacles) for one ECO run.
type Plan struct {
	// Seeds are the structurally-changed cells (movable or fixed) the
	// activity radiates from, ascending.
	Seeds []int
	// Active are the movable standard cells to re-place, ascending.
	// Added cells are always active.
	Active []int
	// Frozen are the movable cells reused verbatim (standard cells
	// outside the activity halo plus every movable macro), ascending.
	Frozen []int
	// Fresh are the geometric seeds: cells whose physical footprint is
	// new or changed (insertions, blockages, tombstones), ascending.
	// Unlike the rest of the active set, these cells have no trusted
	// legal slot in the reused placement.
	Fresh []int
	// DirtyBins counts activity bins out of GridN*GridN (diagnostics).
	DirtyBins int
	// GridN is the bin grid the plan was computed on.
	GridN int
}

// BuildPlan decides the active/frozen split for the given changed-cell
// set (typically Diff.ChangedCells). An empty changed set yields an
// empty plan: the previous placement is reusable as-is.
//
// The active set is the union of (a) the changed movable standard
// cells, (b) their net neighbors up to Hops hops (skipping hub nets
// beyond MaxNetDegree), and (c) every movable standard cell centered
// in a bin within the RadiusFrac halo of a geometric seed's footprint.
// Geometric seeds (geom) are the cells whose physical footprint
// changed — insertions, removals, blockages — and are typically a
// small subset of changed: a net reweight marks every member cell
// changed, but those cells did not move, so radiating halos from them
// would activate most of the die for a purely electrical edit.
// Movable macros are never activated: re-legalizing macros would
// perturb the whole layout, defeating the reuse (macro edits should
// fall back to a cold placement).
func BuildPlan(d *netlist.Design, changed, geom []int, opt PlanOptions) *Plan {
	opt.defaults()
	p := &Plan{GridN: opt.GridN}
	if len(changed) == 0 {
		// Everything movable is reused.
		for i := range d.Cells {
			if !d.Cells[i].Fixed {
				p.Frozen = append(p.Frozen, i)
			}
		}
		return p
	}
	p.Seeds = append([]int(nil), changed...)
	sort.Ints(p.Seeds)
	p.Fresh = append([]int(nil), geom...)
	sort.Ints(p.Fresh)

	active := make([]bool, len(d.Cells))
	markActive := func(ci int) {
		c := &d.Cells[ci]
		if !c.Fixed && c.Kind == netlist.StdCell {
			active[ci] = true
		}
	}
	for _, ci := range p.Seeds {
		markActive(ci)
	}

	// Net-hop expansion from the seeds (through the seeds' nets even
	// when a seed itself is fixed or a macro: its neighbors still feel
	// the edit).
	frontier := append([]int(nil), p.Seeds...)
	for hop := 0; hop < opt.Hops; hop++ {
		var next []int
		for _, ci := range frontier {
			for _, pi := range d.Cells[ci].Pins {
				ni := d.Pins[pi].Net
				if len(d.Nets[ni].Pins) > opt.MaxNetDegree {
					continue
				}
				for _, np := range d.Nets[ni].Pins {
					oc := d.Pins[np].Cell
					if oc < 0 || active[oc] {
						continue
					}
					c := &d.Cells[oc]
					if !c.Fixed && c.Kind == netlist.StdCell {
						active[oc] = true
						next = append(next, oc)
					}
				}
			}
		}
		frontier = next
	}

	// Geometric halo, bin-granular: mark every bin whose extent lies
	// within radius of a geometric seed's footprint, then activate the
	// movable standard cells centered in dirty bins. Bin-snapping keeps
	// the halo deterministic and O(cells + seeds*bins-per-halo).
	n := opt.GridN
	binW := d.Region.W() / float64(n)
	binH := d.Region.H() / float64(n)
	radius := opt.RadiusFrac * math.Min(d.Region.W(), d.Region.H())
	dirty := make([]bool, n*n)
	clampBin := func(b int) int {
		if b < 0 {
			return 0
		}
		if b >= n {
			return n - 1
		}
		return b
	}
	for _, ci := range geom {
		r := d.Cells[ci].Rect().Expand(radius)
		bx0 := clampBin(int((r.Lx - d.Region.Lx) / binW))
		bx1 := clampBin(int((r.Hx - d.Region.Lx) / binW))
		by0 := clampBin(int((r.Ly - d.Region.Ly) / binH))
		by1 := clampBin(int((r.Hy - d.Region.Ly) / binH))
		for by := by0; by <= by1; by++ {
			for bx := bx0; bx <= bx1; bx++ {
				dirty[by*n+bx] = true
			}
		}
	}
	for _, on := range dirty {
		if on {
			p.DirtyBins++
		}
	}
	sig := &Signature{GridN: n}
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if c.Fixed || c.Kind != netlist.StdCell || active[ci] {
			continue
		}
		if dirty[sig.binOf(d, c.X, c.Y)] {
			active[ci] = true
		}
	}

	for ci := range d.Cells {
		if d.Cells[ci].Fixed {
			continue
		}
		if active[ci] {
			p.Active = append(p.Active, ci)
		} else {
			p.Frozen = append(p.Frozen, ci)
		}
	}
	return p
}

// String summarizes the plan for logs.
func (p *Plan) String() string {
	return fmt.Sprintf("eco plan: %d seeds, %d active, %d frozen, %d/%d dirty bins",
		len(p.Seeds), len(p.Active), len(p.Frozen), p.DirtyBins, p.GridN*p.GridN)
}

// Prepared bundles everything an ECO run needs, produced by Prepare.
type Prepared struct {
	Change *Change
	Diff   *Diff
	Plan   *Plan
}

// Prepare signs the placed design, applies the edit script, re-signs,
// diffs the two signatures, and builds the freeze plan from the
// confirmed structural changes. The design is mutated in place (see
// Apply); the previous placement's positions are untouched except for
// newly added cells.
func Prepare(d *netlist.Design, s *Script, opt PlanOptions) (*Prepared, error) {
	opt.defaults()
	before := Sign(d, opt.GridN)
	ch, err := Apply(d, s)
	if err != nil {
		return nil, err
	}
	after := Sign(d, opt.GridN)
	df := DiffSignatures(before, after)
	// Halos radiate only from cells whose footprint actually changed;
	// electrically-changed cells (reweighted net members, new-cell
	// neighbors) re-place via the net-hop expansion alone.
	var geom []int
	geom = append(geom, ch.Added...)
	geom = append(geom, ch.Removed...)
	geom = append(geom, ch.Blocked...)
	sort.Ints(geom)
	return &Prepared{Change: ch, Diff: df, Plan: BuildPlan(d, df.ChangedCells, geom, opt)}, nil
}
