// Package eco implements incremental (ECO — engineering change order)
// re-placement support: edit scripts that mutate a placed design
// in a controlled way (add/remove cells, reweight nets, block regions),
// a structural differ that generalizes the checkpoint fingerprint into
// per-cell/per-net/per-region hashes, and a freeze planner that decides
// which cells must be re-placed and which converged far-away regions
// can be reused verbatim.
//
// The flow layer (core.PlaceECO) consumes the Plan: frozen cells are
// temporarily marked fixed so the density model rasterizes them as
// immovable charge, the wirelength model treats them as terminals, and
// legalization/detail placement route around them as obstacles — then
// runs a short warm-started Nesterov placement over the active set
// only. Everything here is deterministic: applying the same script to
// the same design always yields the same plan, at any worker count.
package eco

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"eplace/internal/geom"
	"eplace/internal/netlist"
)

// Script is one edit script, the JSON payload of `eplace -eco` and of
// the server's ECO job kind. Edits are applied in field order: removals
// first, then additions, reweights, and region blocks.
type Script struct {
	// AddCells inserts new movable standard cells.
	AddCells []AddCell `json:"add_cells,omitempty"`
	// RemoveCells deletes cells by name: their pins are detached from
	// every net and the cell degenerates to a zero-area fixed tombstone
	// (indices of the remaining cells never shift, which is what lets
	// the previous placement's positions carry over untouched).
	RemoveCells []string `json:"remove_cells,omitempty"`
	// ReweightNets overrides net weights (a timing/congestion pass
	// feeding back into placement).
	ReweightNets []Reweight `json:"reweight_nets,omitempty"`
	// BlockRegions inserts fixed zero-connectivity blockages; movable
	// cells inside are evicted by the re-placement.
	BlockRegions []Block `json:"block_regions,omitempty"`
}

// AddCell describes one inserted standard cell.
type AddCell struct {
	Name string  `json:"name"`
	W    float64 `json:"w"`
	H    float64 `json:"h"`
	// Nets connects the new cell (pin at the cell center) to existing
	// nets by name; NetIDs addresses nets by index, for designs whose
	// nets are unnamed (e.g. synthetic circuits).
	Nets   []string `json:"nets,omitempty"`
	NetIDs []int    `json:"net_ids,omitempty"`
	// X, Y optionally seed the new cell's position. When both are zero
	// the cell starts at the centroid of its connected nets' existing
	// pins (or the region center for unconnected cells).
	X float64 `json:"x,omitempty"`
	Y float64 `json:"y,omitempty"`
}

// Reweight sets one net's weight. Net addresses by name; when empty,
// NetID addresses by index.
type Reweight struct {
	Net    string  `json:"net,omitempty"`
	NetID  int     `json:"net_id,omitempty"`
	Weight float64 `json:"weight"`
}

// Block is one blocked rectangle in region coordinates.
type Block struct {
	Lx float64 `json:"lx"`
	Ly float64 `json:"ly"`
	Hx float64 `json:"hx"`
	Hy float64 `json:"hy"`
}

// Rect converts the block to a geometry rectangle.
func (b Block) Rect() geom.Rect { return geom.Rect{Lx: b.Lx, Ly: b.Ly, Hx: b.Hx, Hy: b.Hy} }

// Empty reports whether the script holds no edits at all.
func (s *Script) Empty() bool {
	return s == nil ||
		len(s.AddCells) == 0 && len(s.RemoveCells) == 0 &&
			len(s.ReweightNets) == 0 && len(s.BlockRegions) == 0
}

// LoadScript reads a Script from a JSON file, rejecting unknown fields
// so a typo'd edit cannot silently become a no-op.
func LoadScript(path string) (*Script, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Script
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("eco: decoding %s: %w", path, err)
	}
	return &s, nil
}

// Change records what Apply actually touched, in design indices.
type Change struct {
	// Added are the new cells' indices (appended at the end).
	Added []int
	// Removed are tombstoned cell indices.
	Removed []int
	// Reweighted are the nets whose weight changed.
	Reweighted []int
	// Blocked are the inserted blockage cells' indices.
	Blocked []int
}

// Touched returns every cell index the script edited directly: added
// cells, removed tombstones, blockages, and the member cells of
// reweighted nets. This is the seed set the structural diff confirms.
func (c *Change) Touched(d *netlist.Design) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(ci int) {
		if ci >= 0 && !seen[ci] {
			seen[ci] = true
			out = append(out, ci)
		}
	}
	for _, ci := range c.Added {
		add(ci)
	}
	for _, ci := range c.Removed {
		add(ci)
	}
	for _, ci := range c.Blocked {
		add(ci)
	}
	for _, ni := range c.Reweighted {
		for _, pi := range d.Nets[ni].Pins {
			add(d.Pins[pi].Cell)
		}
	}
	sort.Ints(out)
	return out
}

// Apply mutates d according to the script and returns what changed.
// The design must be at rest (no filler cells). Edits are validated up
// front; a failed Apply may leave the design partially edited, so
// callers treating errors as recoverable should Apply onto a clone.
func Apply(d *netlist.Design, s *Script) (*Change, error) {
	if s == nil {
		return &Change{}, nil
	}
	for i := range d.Cells {
		if d.Cells[i].Kind == netlist.Filler {
			return nil, fmt.Errorf("eco: design %q still holds filler cells; edits apply to finished placements only", d.Name)
		}
	}
	ch := &Change{}

	// Name lookup for nets (names may be empty for synthetic designs).
	netByName := make(map[string]int)
	for ni := range d.Nets {
		if name := d.Nets[ni].Name; name != "" {
			netByName[name] = ni
		}
	}
	resolveNet := func(name string, id int) (int, error) {
		if name != "" {
			ni, ok := netByName[name]
			if !ok {
				return -1, fmt.Errorf("eco: no net named %q", name)
			}
			return ni, nil
		}
		if id < 0 || id >= len(d.Nets) {
			return -1, fmt.Errorf("eco: net index %d out of range [0,%d)", id, len(d.Nets))
		}
		return id, nil
	}

	// Removals: detach every pin, keep the slot as a zero-area fixed
	// tombstone so all other cell indices (and the previous placement's
	// position vectors) stay valid.
	for _, name := range s.RemoveCells {
		ci := d.CellByName(name)
		if ci < 0 {
			return nil, fmt.Errorf("eco: no cell named %q to remove", name)
		}
		c := &d.Cells[ci]
		if c.Fixed && c.W == 0 && c.H == 0 {
			return nil, fmt.Errorf("eco: cell %q was already removed", name)
		}
		if c.Fixed {
			return nil, fmt.Errorf("eco: cell %q is fixed; only movable cells can be removed", name)
		}
		for _, pi := range c.Pins {
			ni := d.Pins[pi].Net
			pins := d.Nets[ni].Pins
			keep := pins[:0]
			for _, np := range pins {
				if np != pi {
					keep = append(keep, np)
				}
			}
			d.Nets[ni].Pins = keep
		}
		c.Pins = nil
		c.W, c.H = 0, 0
		c.Kind = netlist.Pad
		c.Fixed = true
		ch.Removed = append(ch.Removed, ci)
	}

	// Additions, appended after every existing cell.
	for _, a := range s.AddCells {
		if a.Name == "" {
			return nil, fmt.Errorf("eco: added cell needs a name")
		}
		if d.CellByName(a.Name) >= 0 {
			return nil, fmt.Errorf("eco: cell %q already exists", a.Name)
		}
		if a.W <= 0 || a.H <= 0 {
			return nil, fmt.Errorf("eco: added cell %q needs positive size", a.Name)
		}
		ci := d.AddCell(netlist.Cell{Name: a.Name, W: a.W, H: a.H, Kind: netlist.StdCell})
		var nets []int
		for _, name := range a.Nets {
			ni, err := resolveNet(name, -1)
			if err != nil {
				return nil, err
			}
			nets = append(nets, ni)
		}
		for _, id := range a.NetIDs {
			ni, err := resolveNet("", id)
			if err != nil {
				return nil, err
			}
			nets = append(nets, ni)
		}
		// Seed position: explicit, else the centroid of the connected
		// nets' existing pins, else the region center.
		x, y := a.X, a.Y
		if x == 0 && y == 0 {
			var sx, sy float64
			n := 0
			for _, ni := range nets {
				for _, pi := range d.Nets[ni].Pins {
					p := d.PinPos(pi)
					sx += p.X
					sy += p.Y
					n++
				}
			}
			if n > 0 {
				x, y = sx/float64(n), sy/float64(n)
			} else {
				c := d.Region.Center()
				x, y = c.X, c.Y
			}
		}
		p := geom.ClampPoint(geom.Point{X: x, Y: y}, a.W, a.H, d.Region)
		d.Cells[ci].X, d.Cells[ci].Y = p.X, p.Y
		for _, ni := range nets {
			d.Connect(ci, ni, 0, 0)
		}
		ch.Added = append(ch.Added, ci)
	}

	// Net reweights.
	for _, r := range s.ReweightNets {
		ni, err := resolveNet(r.Net, r.NetID)
		if err != nil {
			return nil, err
		}
		if r.Weight <= 0 {
			return nil, fmt.Errorf("eco: net %d reweight needs a positive weight", ni)
		}
		if d.Nets[ni].EffWeight() != r.Weight {
			d.Nets[ni].Weight = r.Weight
			ch.Reweighted = append(ch.Reweighted, ni)
		}
	}

	// Region blocks: fixed zero-connectivity blockages.
	for k, b := range s.BlockRegions {
		r := b.Rect().Intersect(d.Region)
		if !r.Valid() || r.Empty() {
			return nil, fmt.Errorf("eco: block region %d is empty after clipping to %v", k, d.Region)
		}
		c := r.Center()
		ci := d.AddCell(netlist.Cell{
			Name: fmt.Sprintf("ECO_BLOCK_%d_%d", len(d.Cells), k),
			W:    r.W(), H: r.H(), X: c.X, Y: c.Y,
			Kind: netlist.Macro, Fixed: true,
		})
		ch.Blocked = append(ch.Blocked, ci)
	}

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("eco: script left design inconsistent: %w", err)
	}
	return ch, nil
}

// avgStdCellDim returns the average movable standard-cell width and
// height, the natural length scale for perturbations and halos.
func avgStdCellDim(d *netlist.Design) (w, h float64) {
	n := 0
	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Fixed && c.Kind == netlist.StdCell {
			w += c.W
			h += c.H
			n++
		}
	}
	if n == 0 {
		return 1, 1
	}
	return w / float64(n), h / float64(n)
}
