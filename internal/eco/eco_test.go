package eco

import (
	"os"
	"path/filepath"
	"testing"

	"eplace/internal/netlist"
	"eplace/internal/synth"
)

func testDesign(t *testing.T) *netlist.Design {
	t.Helper()
	d := synth.Generate(synth.Spec{Name: "eco-ut", NumCells: 200, Seed: 3})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestApplyAddRemoveReweightBlock(t *testing.T) {
	d := testDesign(t)
	nc, nn := len(d.Cells), len(d.Nets)
	victim := d.Cells[d.MovableOf(netlist.StdCell)[0]].Name

	s := &Script{
		AddCells:     []AddCell{{Name: "eco_new", W: 2, H: 2, NetIDs: []int{0, 1}}},
		RemoveCells:  []string{victim},
		ReweightNets: []Reweight{{NetID: 2, Weight: 5}},
		BlockRegions: []Block{{Lx: d.Region.Lx, Ly: d.Region.Ly, Hx: d.Region.Lx + 10, Hy: d.Region.Ly + 10}},
	}
	ch, err := Apply(d, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Added) != 1 || len(ch.Removed) != 1 || len(ch.Reweighted) != 1 || len(ch.Blocked) != 1 {
		t.Fatalf("change = %+v", ch)
	}
	// Added cell connected and inside the region.
	ai := ch.Added[0]
	if got := len(d.Cells[ai].Pins); got != 2 {
		t.Fatalf("added cell has %d pins, want 2", got)
	}
	// Tombstone: zero-size, fixed, detached; index layout unchanged.
	ri := ch.Removed[0]
	c := &d.Cells[ri]
	if !c.Fixed || c.W != 0 || c.H != 0 || len(c.Pins) != 0 {
		t.Fatalf("tombstone = %+v", c)
	}
	if len(d.Cells) != nc+2 || len(d.Nets) != nn {
		t.Fatalf("got %d cells %d nets, want %d cells %d nets", len(d.Cells), len(d.Nets), nc+2, nn)
	}
	if d.Nets[2].EffWeight() != 5 {
		t.Fatalf("net 2 weight = %v", d.Nets[2].EffWeight())
	}
	if bc := &d.Cells[ch.Blocked[0]]; !bc.Fixed || bc.Kind != netlist.Macro {
		t.Fatalf("blockage = %+v", bc)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("edited design invalid: %v", err)
	}
	// Removing the same cell again must fail.
	if _, err := Apply(d, &Script{RemoveCells: []string{victim}}); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestApplyRejectsBadEdits(t *testing.T) {
	for _, s := range []*Script{
		{AddCells: []AddCell{{Name: "", W: 1, H: 1}}},
		{AddCells: []AddCell{{Name: "x", W: 0, H: 1}}},
		{AddCells: []AddCell{{Name: "x", W: 1, H: 1, Nets: []string{"nope"}}}},
		{RemoveCells: []string{"no-such-cell"}},
		{ReweightNets: []Reweight{{NetID: 1 << 30, Weight: 2}}},
		{ReweightNets: []Reweight{{NetID: 0, Weight: -1}}},
		{BlockRegions: []Block{{Lx: -1e9, Ly: -1e9, Hx: -1e8, Hy: -1e8}}},
	} {
		if _, err := Apply(testDesign(t), s); err == nil {
			t.Errorf("script %+v accepted", s)
		}
	}
}

func TestLoadScriptRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edits.json")
	if err := os.WriteFile(path, []byte(`{"add_cellz": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScript(path); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := os.WriteFile(path, []byte(`{"reweight_nets": [{"net_id": 3, "weight": 2.5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadScript(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ReweightNets) != 1 || s.ReweightNets[0].NetID != 3 {
		t.Fatalf("script = %+v", s)
	}
}

func TestSignDiffLocality(t *testing.T) {
	d := testDesign(t)
	before := Sign(d, 0)

	// Identical design: empty diff.
	if df := DiffSignatures(before, Sign(d, 0)); !df.Empty() {
		t.Fatalf("self-diff not empty: %+v", df)
	}

	// Reweight one net: exactly its member cells change.
	ch, err := Apply(d, &Script{ReweightNets: []Reweight{{NetID: 4, Weight: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	df := DiffSignatures(before, Sign(d, 0))
	if len(df.ChangedNets) != 1 || df.ChangedNets[0] != 4 {
		t.Fatalf("changed nets = %v", df.ChangedNets)
	}
	want := ch.Touched(d)
	if len(df.ChangedCells) != len(want) {
		t.Fatalf("changed cells = %v, want the %d members of net 4 (%v)", df.ChangedCells, len(want), want)
	}
	for i := range want {
		if df.ChangedCells[i] != want[i] {
			t.Fatalf("changed cells = %v, want %v", df.ChangedCells, want)
		}
	}
	if len(df.DirtyRegions) == 0 {
		t.Fatal("no dirty regions for a structural change")
	}
}

func TestBuildPlanFreezeSplit(t *testing.T) {
	d := testDesign(t)

	// Empty change: everything movable frozen, nothing active.
	p := BuildPlan(d, nil, nil, PlanOptions{})
	if len(p.Active) != 0 || len(p.Seeds) != 0 {
		t.Fatalf("no-op plan = %+v", p)
	}
	if len(p.Frozen) != len(d.Movable()) {
		t.Fatalf("frozen %d, want all %d movable", len(p.Frozen), len(d.Movable()))
	}

	// A single changed cell activates itself plus a local halo, not the
	// whole design, and active/frozen partition the movables.
	seed := d.MovableOf(netlist.StdCell)[10]
	p = BuildPlan(d, []int{seed}, []int{seed}, PlanOptions{})
	if len(p.Active) == 0 {
		t.Fatal("seeded plan has no active cells")
	}
	mov := len(d.Movable())
	if len(p.Active)+len(p.Frozen) != mov {
		t.Fatalf("active %d + frozen %d != movable %d", len(p.Active), len(p.Frozen), mov)
	}
	if len(p.Active) >= mov/2 {
		t.Fatalf("plan activated %d of %d movables; not local", len(p.Active), mov)
	}
	found := false
	for _, ci := range p.Active {
		if ci == seed {
			found = true
		}
	}
	if !found {
		t.Fatal("seed cell not active")
	}
}

func TestPrepareNoOp(t *testing.T) {
	d := testDesign(t)
	prep, err := Prepare(d, &Script{}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !prep.Diff.Empty() || len(prep.Plan.Active) != 0 {
		t.Fatalf("empty script produced work: diff=%+v plan=%s", prep.Diff, prep.Plan)
	}
	// Reweighting to the current effective weight is also a no-op.
	prep, err = Prepare(d, &Script{ReweightNets: []Reweight{{NetID: 0, Weight: d.Nets[0].EffWeight()}}}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !prep.Diff.Empty() {
		t.Fatalf("same-weight reweight dirtied the diff: %+v", prep.Diff)
	}
}
