// Package cluster is the multilevel coarsening/uncoarsening subsystem
// that lets the ePlace engine scale to 10^5-10^6 cells: best-choice
// clustering merges movable standard cells into clusters under an area
// cap, producing a reduced netlist.Design the existing global placer
// runs on at a fraction of the cost, and the uncoarsening step seats
// member cells inside their cluster's footprint to warm-start the next
// finer level (the V-cycle of the mPL6/NTUplace3 comparators the paper
// measures against).
//
// Determinism contract: coarsening is a serial algorithm with a total
// order on every decision — the score heap breaks ties by cluster index
// pair, neighbor scores accumulate in fine-index order, and coarse
// cells/nets/pins are emitted in first-member order — so the same fine
// design always produces the bit-identical hierarchy, independent of
// worker counts (which only parallelize the per-level gradient kernels
// downstream).
//
// Memory stays O(cells + pins): the coarse design's slices are sized
// exactly by a counting pass before construction, and the transient
// scoring state is a handful of flat arrays over the fine cells.
package cluster

import (
	"container/heap"
	"math"

	"eplace/internal/netlist"
)

// Options tunes one coarsening level.
type Options struct {
	// CapFactor caps a cluster's area at CapFactor times the average
	// movable standard-cell area (default 16). Larger caps coarsen more
	// aggressively but hide more detail from the coarse level.
	CapFactor float64
	// Reduction is the target fine/coarse ratio of movable standard
	// cells per level (default 4): coarsening stops once the cluster
	// count drops below movable/Reduction.
	Reduction float64
	// MaxNetDegree ignores nets with more pins than this when scoring
	// merges (default 16): clock-like global nets connect everything to
	// everything and would otherwise glue unrelated logic together.
	MaxNetDegree int
	// MinCells stops coarsening when a level would hold fewer movable
	// objects than this (default 150): below that, a level is pure
	// overhead over running the engine directly.
	MinCells int
}

func (o *Options) defaults() {
	if o.CapFactor <= 0 {
		o.CapFactor = 16
	}
	if o.Reduction <= 1 {
		o.Reduction = 4
	}
	if o.MaxNetDegree <= 0 {
		o.MaxNetDegree = 16
	}
	if o.MinCells <= 0 {
		o.MinCells = 150
	}
}

// Level is one coarsening step: the coarse design plus the map back to
// the finer design it was built from.
type Level struct {
	// D is the coarse design.
	D *netlist.Design
	// Up maps every fine cell index to its coarse cell index. Movable
	// standard cells map to their cluster; macros, pads and fixed cells
	// map to their singleton image.
	Up []int
	// Fine is the design this level was coarsened from.
	Fine *netlist.Design
}

// pairEntry is one candidate merge in the score heap. Entries go stale
// when either endpoint merges (its version advances); stale entries are
// discarded lazily at pop time.
type pairEntry struct {
	score  float64
	a, b   int32
	va, vb uint32
}

// pairHeap orders candidates by score descending with a total-order
// index tie-break, so the pop sequence — and therefore the whole
// clustering — never depends on insertion order.
type pairHeap []pairEntry

func (h pairHeap) Len() int { return len(h) }
func (h pairHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	if h[i].a != h[j].a {
		return h[i].a < h[j].a
	}
	return h[i].b < h[j].b
}
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(pairEntry)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// coarsener holds the transient state of one best-choice run.
type coarsener struct {
	d   *netlist.Design
	opt Options

	eligible  []bool    // movable std cells that may merge
	alive     []bool    // cluster representatives still mergeable
	version   []uint32  // bumped on every merge touching the cluster
	area      []float64 // current cluster area
	clusterOf []int32   // fine cell -> representative fine cell
	members   [][]int32 // representative -> member fine cells (in merge order)

	// netConn[e] = w_e / (|e| - 1), precomputed per fine net; zero for
	// nets outside the [2, MaxNetDegree] scoring window.
	netConn []float64

	// Scratch for neighbor accumulation: conn is indexed by
	// representative, touched lists the representatives written this
	// round (reset between score evaluations without clearing conn).
	conn    []float64
	touched []int32

	cap    float64
	alive0 int // live cluster count
}

// scoreBest returns cluster a's best eligible merge partner and the
// best-choice score d(a,b) = conn(a,b) / (area_a + area_b), or
// (-1, 0) when no partner satisfies the area cap. Neighbor scores
// accumulate in member/pin order; ties break toward the smaller
// representative index — both total orders, so the choice is
// reproducible bit for bit.
func (c *coarsener) scoreBest(a int32) (int32, float64) {
	d := c.d
	c.touched = c.touched[:0]
	for _, m := range c.members[a] {
		for _, pi := range d.Cells[m].Pins {
			p := &d.Pins[pi]
			w := c.netConn[p.Net]
			if w == 0 {
				continue
			}
			for _, qi := range d.Nets[p.Net].Pins {
				qc := d.Pins[qi].Cell
				if qc < 0 {
					continue
				}
				b := c.clusterOf[qc]
				if b == a || !c.eligible[b] || !c.alive[b] {
					continue
				}
				if c.conn[b] == 0 {
					c.touched = append(c.touched, b)
				}
				c.conn[b] += w
			}
		}
	}
	best := int32(-1)
	bestScore := 0.0
	for _, b := range c.touched {
		cb := c.conn[b]
		c.conn[b] = 0
		if c.area[a]+c.area[b] > c.cap {
			continue
		}
		s := cb / (c.area[a] + c.area[b])
		if s > bestScore || (s == bestScore && best >= 0 && b < best) {
			best, bestScore = b, s
		}
	}
	return best, bestScore
}

// push enqueues cluster a's current best candidate, if any.
func (c *coarsener) push(h *pairHeap, a int32) {
	b, s := c.scoreBest(a)
	if b < 0 {
		return
	}
	heap.Push(h, pairEntry{score: s, a: a, b: b, va: c.version[a], vb: c.version[b]})
}

// merge folds cluster b into cluster a.
func (c *coarsener) merge(a, b int32) {
	for _, m := range c.members[b] {
		c.clusterOf[m] = a
	}
	c.members[a] = append(c.members[a], c.members[b]...)
	c.members[b] = nil
	c.area[a] += c.area[b]
	c.alive[b] = false
	c.version[a]++
	c.version[b]++
	c.alive0--
}

// Coarsen builds one coarse level above fine, or returns nil when the
// design is too small or too loosely connected for a level to pay off
// (fewer movable std cells than 2*MinCells, or best-choice achieved
// less than a 1.25x reduction).
func Coarsen(fine *netlist.Design, opt Options) *Level {
	opt.defaults()
	n := len(fine.Cells)

	c := &coarsener{
		d:         fine,
		opt:       opt,
		eligible:  make([]bool, n),
		alive:     make([]bool, n),
		version:   make([]uint32, n),
		area:      make([]float64, n),
		clusterOf: make([]int32, n),
		members:   make([][]int32, n),
		netConn:   make([]float64, len(fine.Nets)),
		conn:      make([]float64, n),
	}
	movableStd := 0
	var avgArea float64
	for i := range fine.Cells {
		cell := &fine.Cells[i]
		c.clusterOf[i] = int32(i)
		if cell.Kind == netlist.Filler {
			// Fillers are placement aids inserted per level by the flow;
			// clustering runs on clean designs only (a filler slipping
			// through would survive as a singleton and pollute every
			// coarse level above it).
			panic("cluster: design contains filler cells")
		}
		if cell.Fixed || cell.Kind != netlist.StdCell {
			continue
		}
		c.eligible[i] = true
		c.alive[i] = true
		c.area[i] = cell.Area()
		c.members[i] = []int32{int32(i)}
		avgArea += c.area[i]
		movableStd++
	}
	if movableStd < 2*opt.MinCells {
		return nil
	}
	avgArea /= float64(movableStd)
	c.cap = opt.CapFactor * avgArea
	c.alive0 = movableStd

	for ni := range fine.Nets {
		net := &fine.Nets[ni]
		deg := len(net.Pins)
		if deg < 2 || deg > opt.MaxNetDegree {
			continue
		}
		c.netConn[ni] = net.EffWeight() / float64(deg-1)
	}

	// Movable macros, pads and fixed cells are singletons by
	// construction; only std-cell clusters shrink the level. Stop at the
	// reduction target, floored by MinCells.
	target := int(float64(movableStd) / opt.Reduction)
	if target < opt.MinCells {
		target = opt.MinCells
	}

	h := &pairHeap{}
	for i := 0; i < n; i++ {
		if c.alive[int32(i)] {
			c.push(h, int32(i))
		}
	}
	for c.alive0 > target && h.Len() > 0 {
		e := heap.Pop(h).(pairEntry)
		if !c.alive[e.a] {
			continue
		}
		if c.version[e.a] != e.va || !c.alive[e.b] || c.version[e.b] != e.vb {
			// Stale: one endpoint merged since this entry was scored.
			// Re-evaluate a's best partner against the current clusters.
			c.push(h, e.a)
			continue
		}
		c.merge(e.a, e.b)
		c.push(h, e.a)
	}

	reduced := c.alive0
	if float64(movableStd)/float64(reduced) < 1.25 {
		return nil
	}
	return c.build()
}

// build materializes the coarse design and the fine->coarse map. All
// slices are sized by counting passes first, keeping memory O(pins).
func (c *coarsener) build() *Level {
	fine := c.d
	n := len(fine.Cells)
	rh := stdCellHeight(fine)

	// Coarse cell indices in order of each cluster's first (lowest)
	// member, so the emitted design never depends on merge order.
	up := make([]int, n)
	for i := range up {
		up[i] = -1
	}
	numCoarse := 0
	for i := 0; i < n; i++ {
		if up[i] >= 0 {
			continue
		}
		rep := c.clusterOf[i]
		if !c.eligible[rep] {
			up[i] = numCoarse
			numCoarse++
			continue
		}
		ci := numCoarse
		numCoarse++
		for _, m := range c.members[rep] {
			up[m] = ci
		}
	}

	// Count coarse nets and pins: a fine net survives when it spans at
	// least two distinct coarse endpoints (floating pins count as their
	// own endpoint).
	seen := make([]int32, numCoarse)
	for i := range seen {
		seen[i] = -1
	}
	numNets, numPins := 0, 0
	for ni := range fine.Nets {
		ends := 0
		floats := 0
		for _, pi := range fine.Nets[ni].Pins {
			cell := fine.Pins[pi].Cell
			if cell < 0 {
				floats++
				continue
			}
			if seen[up[cell]] != int32(ni) {
				seen[up[cell]] = int32(ni)
				ends++
			}
		}
		if ends+floats >= 2 {
			numNets++
			numPins += ends + floats
		}
	}

	// Coarse cell geometry. Clusters get an area-conserving, roughly
	// square footprint snapped to the fine row height (legalization
	// never runs at coarse levels; the shape only feeds the density
	// model). Singletons keep their exact geometry so pin offsets stay
	// valid.
	cd := netlist.New(fine.Name+"~", fine.Region)
	cd.TargetDensity = fine.TargetDensity
	cd.Reserve(numCoarse, numNets, numPins)
	multi := make([]bool, numCoarse)
	emitted := make([]bool, numCoarse)
	for i := 0; i < n; i++ {
		ci := up[i]
		if emitted[ci] {
			continue
		}
		emitted[ci] = true
		rep := c.clusterOf[i]
		if !c.eligible[rep] || len(c.members[rep]) == 1 {
			src := &fine.Cells[i]
			cd.AddCell(netlist.Cell{
				W: src.W, H: src.H, X: src.X, Y: src.Y,
				Kind: src.Kind, Fixed: src.Fixed,
			})
			continue
		}
		multi[ci] = true
		var area, cx, cy float64
		for _, m := range c.members[rep] {
			cell := &fine.Cells[m]
			a := cell.Area()
			area += a
			cx += a * cell.X
			cy += a * cell.Y
		}
		ch := rh * math.Max(1, math.Round(math.Sqrt(area)/rh))
		cd.AddCell(netlist.Cell{
			W: area / ch, H: ch, X: cx / area, Y: cy / area,
			Kind: netlist.StdCell,
		})
	}

	// Coarse nets: first-occurrence pins per endpoint, offsets kept for
	// singletons (geometry identical) and zeroed for clusters (member
	// layout is not meaningful at the coarse level).
	for i := range seen {
		seen[i] = -1
	}
	for ni := range fine.Nets {
		net := &fine.Nets[ni]
		ends := 0
		floats := 0
		for _, pi := range net.Pins {
			cell := fine.Pins[pi].Cell
			if cell < 0 {
				floats++
				continue
			}
			if seen[up[cell]] != int32(ni) {
				seen[up[cell]] = int32(ni)
				ends++
			}
		}
		if ends+floats < 2 {
			continue
		}
		cni := cd.AddNet(net.Name, net.Weight)
		// Reset per-net mark for the emit pass (distinct sentinel so the
		// counting marks above do not leak in).
		for _, pi := range net.Pins {
			p := &fine.Pins[pi]
			if p.Cell < 0 {
				pin := cd.Connect(-1, cni, p.Ox, p.Oy)
				cd.Pins[pin].Dir = p.Dir
				continue
			}
			ci := up[p.Cell]
			if seen[ci] == int32(ni) {
				seen[ci] = -2 - int32(ni)
				ox, oy := p.Ox, p.Oy
				if multi[ci] {
					ox, oy = 0, 0
				}
				pin := cd.Connect(ci, cni, ox, oy)
				cd.Pins[pin].Dir = p.Dir
			}
		}
	}

	return &Level{D: cd, Up: up, Fine: fine}
}

// stdCellHeight returns the dominant movable standard-cell height of d
// (ties toward the smaller height — no map-order dependence), falling
// back to 1 for designs without movable std cells.
func stdCellHeight(d *netlist.Design) float64 {
	counts := map[float64]int{}
	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Fixed && c.Kind == netlist.StdCell {
			counts[c.H]++
		}
	}
	bestH, bestN := 0.0, 0
	for h, n := range counts {
		if n > bestN || (n == bestN && (bestN == 0 || h < bestH)) {
			bestH, bestN = h, n
		}
	}
	if bestH <= 0 {
		return 1
	}
	return bestH
}

// Interpolate hands the coarse placement down: every fine movable cell
// is seated inside its cluster's current footprint. Cluster members are
// laid out on a deterministic ceil(sqrt(m))-column grid spanning the
// footprint (member order = fine index order); singletons land exactly
// on their image. Fixed cells are never touched.
func (l *Level) Interpolate() {
	fine, coarse := l.Fine, l.D

	// Member counts and CSR offsets per coarse cell, in fine order.
	counts := make([]int32, len(coarse.Cells))
	for i := range fine.Cells {
		if !fine.Cells[i].Fixed {
			counts[l.Up[i]]++
		}
	}
	rank := make([]int32, len(coarse.Cells)) // members seated so far
	for i := range fine.Cells {
		fc := &fine.Cells[i]
		if fc.Fixed {
			continue
		}
		ci := l.Up[i]
		cc := &coarse.Cells[ci]
		m := counts[ci]
		if m == 1 {
			fc.X, fc.Y = cc.X, cc.Y
			continue
		}
		cols := int32(math.Ceil(math.Sqrt(float64(m))))
		rows := (m + cols - 1) / cols
		k := rank[ci]
		rank[ci]++
		col, row := k%cols, k/cols
		fc.X = cc.X - cc.W/2 + (float64(col)+0.5)*cc.W/float64(cols)
		fc.Y = cc.Y - cc.H/2 + (float64(row)+0.5)*cc.H/float64(rows)
	}
}
