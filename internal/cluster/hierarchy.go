package cluster

import "eplace/internal/netlist"

// Hierarchy is a stack of progressively coarser designs for the
// V-cycle: Designs[0] is the original (finest) design, Designs[k] the
// k-th coarsening above it, and Levels[k-1] the step that links them.
type Hierarchy struct {
	// Designs lists the levels finest-first. Designs[0] aliases the
	// design Build was given; coarser designs are owned by the
	// hierarchy.
	Designs []*netlist.Design
	// Levels[k] coarsens Designs[k] into Designs[k+1].
	Levels []*Level
}

// Build coarsens d up to maxLevels total levels (including the finest).
// Coarsening stops early when a level would be too small or too loosely
// connected to pay off, so Depth() may be less than maxLevels. The
// result depends only on the design's structure — never on cell
// positions or worker counts — so a resumed process rebuilding the
// hierarchy from the same input gets the bit-identical stack.
func Build(d *netlist.Design, maxLevels int, opt Options) *Hierarchy {
	h := &Hierarchy{Designs: []*netlist.Design{d}}
	for k := 1; k < maxLevels; k++ {
		lvl := Coarsen(h.Designs[k-1], opt)
		if lvl == nil {
			break
		}
		h.Levels = append(h.Levels, lvl)
		h.Designs = append(h.Designs, lvl.D)
	}
	return h
}

// Depth returns the number of levels, counting the finest.
func (h *Hierarchy) Depth() int { return len(h.Designs) }

// Interpolate seats level k-1's movable cells inside their level-k
// cluster footprints (k in [1, Depth-1]), handing positions one level
// down the V-cycle.
func (h *Hierarchy) Interpolate(k int) { h.Levels[k-1].Interpolate() }
