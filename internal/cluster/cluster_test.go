package cluster

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"eplace/internal/netlist"
	"eplace/internal/synth"
)

func testDesign(t *testing.T) *netlist.Design {
	t.Helper()
	d := synth.Generate(synth.Spec{
		Name: "clustest", NumCells: 3000,
		NumMovableMacros: 4, NumFixedMacros: 4,
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// membersOf inverts Up: coarse index -> fine member indices.
func membersOf(l *Level) [][]int {
	m := make([][]int, len(l.D.Cells))
	for fi, ci := range l.Up {
		m[ci] = append(m[ci], fi)
	}
	return m
}

func TestCoarsenPartitionAndArea(t *testing.T) {
	d := testDesign(t)
	lvl := Coarsen(d, Options{})
	if lvl == nil {
		t.Fatal("Coarsen returned nil on a 3000-cell design")
	}
	if len(lvl.Up) != len(d.Cells) {
		t.Fatalf("Up covers %d cells, fine has %d", len(lvl.Up), len(d.Cells))
	}
	for fi, ci := range lvl.Up {
		if ci < 0 || ci >= len(lvl.D.Cells) {
			t.Fatalf("Up[%d] = %d out of range [0, %d)", fi, ci, len(lvl.D.Cells))
		}
	}

	fineStd, coarseStd := 0, 0
	for i := range d.Cells {
		if !d.Cells[i].Fixed && d.Cells[i].Kind == netlist.StdCell {
			fineStd++
		}
	}
	members := membersOf(lvl)
	for ci := range lvl.D.Cells {
		cc := &lvl.D.Cells[ci]
		mem := members[ci]
		if len(mem) == 0 {
			t.Fatalf("coarse cell %d has no fine members", ci)
		}
		if !cc.Fixed && cc.Kind == netlist.StdCell {
			coarseStd++
		}
		if len(mem) == 1 {
			// Singletons keep their exact geometry, kind and fixedness so
			// pin offsets and fixed charge stay valid.
			fc := &d.Cells[mem[0]]
			if cc.W != fc.W || cc.H != fc.H || cc.X != fc.X || cc.Y != fc.Y ||
				cc.Kind != fc.Kind || cc.Fixed != fc.Fixed {
				t.Errorf("singleton %d does not mirror fine cell %d: %+v vs %+v", ci, mem[0], cc, fc)
			}
			continue
		}
		// Multi-member clusters hold movable standard cells only, and the
		// footprint conserves the exact member area.
		var area float64
		for _, fi := range mem {
			fc := &d.Cells[fi]
			if fc.Fixed || fc.Kind != netlist.StdCell {
				t.Fatalf("cluster %d contains non-std or fixed fine cell %d (kind %v fixed %v)",
					ci, fi, fc.Kind, fc.Fixed)
			}
			area += fc.Area()
		}
		if cc.Fixed || cc.Kind != netlist.StdCell {
			t.Errorf("cluster %d emitted as kind %v fixed %v", ci, cc.Kind, cc.Fixed)
		}
		if got := cc.Area(); math.Abs(got-area) > 1e-9*area {
			t.Errorf("cluster %d area %v, members total %v", ci, got, area)
		}
	}
	if red := float64(fineStd) / float64(coarseStd); red < 1.25 {
		t.Errorf("reduction %.2fx below the 1.25x floor (%d -> %d std cells)", red, fineStd, coarseStd)
	}

	// Non-std population (macros, pads, fixed blocks) survives unchanged.
	count := func(dd *netlist.Design) map[string]int {
		h := map[string]int{}
		for i := range dd.Cells {
			c := &dd.Cells[i]
			if c.Kind != netlist.StdCell || c.Fixed {
				h[fmt.Sprintf("%v/%v", c.Kind, c.Fixed)]++
			}
		}
		return h
	}
	if f, c := count(d), count(lvl.D); !reflect.DeepEqual(f, c) {
		t.Errorf("non-std census changed: fine %v coarse %v", f, c)
	}
}

// TestCoarsenNetConservation recomputes the expected coarse netlist
// independently from Up and checks the emitted one matches: every fine
// net spanning >= 2 clusters survives with exactly its distinct coarse
// endpoints and weight; nets collapsing inside one cluster vanish.
func TestCoarsenNetConservation(t *testing.T) {
	d := testDesign(t)
	lvl := Coarsen(d, Options{})
	if lvl == nil {
		t.Fatal("Coarsen returned nil")
	}

	key := func(ends []int, weight float64) string {
		sort.Ints(ends)
		return fmt.Sprintf("%v w%g", ends, weight)
	}
	want := map[string]int{}
	wantPins := 0
	for ni := range d.Nets {
		net := &d.Nets[ni]
		seen := map[int]bool{}
		var ends []int
		for _, pi := range net.Pins {
			ci := lvl.Up[d.Pins[pi].Cell]
			if !seen[ci] {
				seen[ci] = true
				ends = append(ends, ci)
			}
		}
		if len(ends) < 2 {
			continue
		}
		want[key(ends, net.Weight)]++
		wantPins += len(ends)
	}

	got := map[string]int{}
	for ni := range lvl.D.Nets {
		net := &lvl.D.Nets[ni]
		var ends []int
		for _, pi := range net.Pins {
			ends = append(ends, lvl.D.Pins[pi].Cell)
		}
		if len(ends) < 2 {
			t.Errorf("coarse net %d has degree %d", ni, len(ends))
		}
		got[key(ends, net.Weight)]++
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("coarse nets differ from Up-derived expectation: %d want keys, %d got keys",
			len(want), len(got))
	}
	if len(lvl.D.Pins) != wantPins {
		t.Errorf("coarse pins = %d, expected %d", len(lvl.D.Pins), wantPins)
	}
}

func TestCoarsenTooSmallReturnsNil(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "tiny", NumCells: 250})
	if lvl := Coarsen(d, Options{}); lvl != nil {
		t.Error("Coarsen clustered a design below 2*MinCells")
	}
	h := Build(d, 4, Options{})
	if h.Depth() != 1 {
		t.Errorf("Build depth = %d on a too-small design, want 1", h.Depth())
	}
}

// TestCoarsenDeterministic regenerates the same design twice and
// coarsens both: the coarse designs and maps must match bit for bit
// (the resume path rebuilds hierarchies and relies on this).
func TestCoarsenDeterministic(t *testing.T) {
	a := Coarsen(testDesign(t), Options{})
	b := Coarsen(testDesign(t), Options{})
	if a == nil || b == nil {
		t.Fatal("Coarsen returned nil")
	}
	if !reflect.DeepEqual(a.Up, b.Up) {
		t.Fatal("fine->coarse maps differ between identical runs")
	}
	if !reflect.DeepEqual(a.D.Cells, b.D.Cells) {
		t.Fatal("coarse cells differ between identical runs")
	}
	if !reflect.DeepEqual(a.D.Nets, b.D.Nets) || !reflect.DeepEqual(a.D.Pins, b.D.Pins) {
		t.Fatal("coarse connectivity differs between identical runs")
	}
}

func TestBuildHierarchyShrinks(t *testing.T) {
	d := synth.Generate(synth.Spec{Name: "stack", NumCells: 8000})
	h := Build(d, 4, Options{})
	if h.Depth() < 3 {
		t.Fatalf("depth = %d on an 8000-cell design, want >= 3", h.Depth())
	}
	if h.Designs[0] != d {
		t.Error("Designs[0] must alias the input design")
	}
	for k := 1; k < h.Depth(); k++ {
		if len(h.Designs[k].Cells) >= len(h.Designs[k-1].Cells) {
			t.Errorf("level %d did not shrink: %d -> %d cells",
				k, len(h.Designs[k-1].Cells), len(h.Designs[k].Cells))
		}
		if err := h.Designs[k].Validate(); err != nil {
			t.Errorf("level %d invalid: %v", k, err)
		}
	}
}

// TestInterpolateSeatsMembers scatters the coarse cells and hands the
// placement down: members must land inside their cluster footprint,
// singletons exactly on their image, and fixed cells must not move.
func TestInterpolateSeatsMembers(t *testing.T) {
	d := testDesign(t)
	lvl := Coarsen(d, Options{})
	if lvl == nil {
		t.Fatal("Coarsen returned nil")
	}
	for ci := range lvl.D.Cells {
		cc := &lvl.D.Cells[ci]
		if cc.Fixed {
			continue
		}
		// Deterministic scatter well inside the region.
		r := lvl.D.Region
		fx := float64(ci%97) / 97
		fy := float64(ci%89) / 89
		cc.X = r.Lx + cc.W/2 + fx*(r.W()-cc.W)
		cc.Y = r.Ly + cc.H/2 + fy*(r.H()-cc.H)
	}
	type pos struct{ x, y float64 }
	before := make([]pos, len(d.Cells))
	for i := range d.Cells {
		before[i] = pos{d.Cells[i].X, d.Cells[i].Y}
	}
	members := membersOf(lvl)

	lvl.Interpolate()

	const tol = 1e-9
	for i := range d.Cells {
		fc := &d.Cells[i]
		if fc.Fixed {
			if fc.X != before[i].x || fc.Y != before[i].y {
				t.Fatalf("fixed cell %d moved", i)
			}
			continue
		}
		cc := &lvl.D.Cells[lvl.Up[i]]
		movable := 0
		for _, m := range members[lvl.Up[i]] {
			if !d.Cells[m].Fixed {
				movable++
			}
		}
		if movable == 1 {
			if fc.X != cc.X || fc.Y != cc.Y {
				t.Errorf("singleton %d at (%v,%v), image at (%v,%v)", i, fc.X, fc.Y, cc.X, cc.Y)
			}
			continue
		}
		if fc.X < cc.X-cc.W/2-tol || fc.X > cc.X+cc.W/2+tol ||
			fc.Y < cc.Y-cc.H/2-tol || fc.Y > cc.Y+cc.H/2+tol {
			t.Errorf("member %d at (%v,%v) outside footprint of cluster %d", i, fc.X, fc.Y, lvl.Up[i])
		}
	}
}

func TestCoarsenRejectsFillers(t *testing.T) {
	d := netlist.New("fill", testDesign(t).Region)
	for i := 0; i < 700; i++ {
		d.AddCell(netlist.Cell{W: 2, H: 2, X: 10, Y: 10})
	}
	d.AddCell(netlist.Cell{W: 2, H: 2, X: 5, Y: 5, Kind: netlist.Filler})
	defer func() {
		if recover() == nil {
			t.Error("Coarsen accepted a design with filler cells")
		}
	}()
	Coarsen(d, Options{})
}
