// Package parallel provides the shared fork-join primitive used by the
// per-iteration gradient kernels (WA wirelength, eDensity rasterization
// and force integration, spectral Poisson transforms): a worker pool
// sized by GOMAXPROCS with static contiguous range sharding and panic
// propagation.
//
// The pool is deliberately fork-join per call rather than a persistent
// goroutine set behind channels: a Go goroutine spawn costs on the order
// of a microsecond, far below the cost of one kernel shard, while a
// channel-fed pool adds a hop of latency per task and a lifecycle to
// manage. Static sharding (one contiguous index range per worker) keeps
// every worker's memory traffic sequential and makes the shard -> worker
// mapping deterministic, which the callers rely on for per-worker
// scratch buffers.
//
// Determinism contract: For itself imposes no ordering between shards;
// callers that reduce across shards must do so in a fixed order that is
// independent of the worker count (see wirelength and grid for the two
// reduction patterns used in this repo) so that results are
// bitwise-identical for every Workers setting.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Count resolves a Workers option: values <= 0 select all available
// cores (runtime.GOMAXPROCS(0)); positive values are returned unchanged.
func Count(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// WorkerPanic is the value For re-panics on the calling goroutine when
// a pool worker panics: the worker's recovered value plus the stack
// trace captured on the worker at recover time. Re-panicking raw would
// print the *caller's* stack — every pool panic would point at
// wg.Wait() instead of the kernel shard that blew up, which is
// undebuggable once panics surface in server logs rather than a
// terminal.
type WorkerPanic struct {
	// Value is the worker's original panic value.
	Value any
	// Stack is the worker goroutine's stack at recover time
	// (runtime/debug.Stack).
	Stack []byte
}

// Error renders the original panic value followed by the worker stack,
// so both the runtime's panic output and log captures show where the
// shard actually failed.
func (p WorkerPanic) Error() string {
	return fmt.Sprintf("%v\n\nworker stack:\n%s", p.Value, p.Stack)
}

// Unwrap exposes the original panic value when it was an error, so
// errors.Is/As keep working through a recover-and-inspect.
func (p WorkerPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// For splits the index range [0, n) into one contiguous shard per worker
// and runs fn(worker, lo, hi) for every non-empty shard concurrently.
// Worker ids passed to fn are dense in [0, min(workers, n)), so callers
// may index per-worker scratch by them. With workers <= 1 (or n == 1)
// fn runs inline on the calling goroutine: no goroutines are spawned and
// the call is exactly the serial loop.
//
// If any shard panics, For waits for the remaining shards and then
// re-panics the first recovered value on the calling goroutine, wrapped
// in a WorkerPanic that carries the worker's own stack trace (the
// inline workers <= 1 path panics straight through and needs no
// wrapping: the caller's stack IS the worker's stack there).
func For(workers, n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var (
		wg   sync.WaitGroup
		once sync.Once
		pv   any
	)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// debug.Stack() must run here, on the worker that
					// panicked, or the trace is lost; nested Fors keep
					// the innermost capture.
					if wp, ok := r.(WorkerPanic); ok {
						once.Do(func() { pv = wp })
						return
					}
					stack := debug.Stack()
					once.Do(func() { pv = WorkerPanic{Value: r, Stack: stack} })
				}
			}()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	if pv != nil {
		panic(pv)
	}
}
