// Package parallel provides the shared fork-join primitive used by the
// per-iteration gradient kernels (WA wirelength, eDensity rasterization
// and force integration, spectral Poisson transforms): a worker pool
// sized by GOMAXPROCS with static contiguous range sharding and panic
// propagation.
//
// The pool is deliberately fork-join per call rather than a persistent
// goroutine set behind channels: a Go goroutine spawn costs on the order
// of a microsecond, far below the cost of one kernel shard, while a
// channel-fed pool adds a hop of latency per task and a lifecycle to
// manage. Static sharding (one contiguous index range per worker) keeps
// every worker's memory traffic sequential and makes the shard -> worker
// mapping deterministic, which the callers rely on for per-worker
// scratch buffers.
//
// Determinism contract: For itself imposes no ordering between shards;
// callers that reduce across shards must do so in a fixed order that is
// independent of the worker count (see wirelength and grid for the two
// reduction patterns used in this repo) so that results are
// bitwise-identical for every Workers setting.
package parallel

import (
	"runtime"
	"sync"
)

// Count resolves a Workers option: values <= 0 select all available
// cores (runtime.GOMAXPROCS(0)); positive values are returned unchanged.
func Count(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For splits the index range [0, n) into one contiguous shard per worker
// and runs fn(worker, lo, hi) for every non-empty shard concurrently.
// Worker ids passed to fn are dense in [0, min(workers, n)), so callers
// may index per-worker scratch by them. With workers <= 1 (or n == 1)
// fn runs inline on the calling goroutine: no goroutines are spawned and
// the call is exactly the serial loop.
//
// If any shard panics, For waits for the remaining shards and then
// re-panics the first recovered value on the calling goroutine.
func For(workers, n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var (
		wg   sync.WaitGroup
		once sync.Once
		pv   any
	)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { pv = r })
				}
			}()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	if pv != nil {
		panic(pv)
	}
}
