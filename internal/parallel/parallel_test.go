package parallel

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestCount(t *testing.T) {
	if got := Count(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Count(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Count(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Count(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Count(7); got != 7 {
		t.Fatalf("Count(7) = %d", got)
	}
}

// TestForCoversRange checks every index is visited exactly once and
// worker ids stay dense, for worker counts below, at and above n.
func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 5, 16, 97} {
			visits := make([]int32, n)
			maxWorkers := workers
			if n < maxWorkers {
				maxWorkers = n
			}
			For(workers, n, func(w, lo, hi int) {
				if w < 0 || w >= maxWorkers {
					t.Errorf("workers=%d n=%d: worker id %d out of range", workers, n, w)
				}
				if lo >= hi {
					t.Errorf("workers=%d n=%d: empty shard [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// TestForSerialInline checks the workers<=1 path runs on the calling
// goroutine (shards execute in order with no interleaving).
func TestForSerialInline(t *testing.T) {
	var order []int
	For(1, 5, func(w, lo, hi int) {
		if w != 0 || lo != 0 || hi != 5 {
			t.Fatalf("serial shard (%d,%d,%d), want (0,0,5)", w, lo, hi)
		}
		for i := lo; i < hi; i++ {
			order = append(order, i)
		}
	})
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestForPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				// The inline workers<=1 path panics the raw value; the
				// pooled path wraps it in a WorkerPanic carrying the
				// worker's stack.
				switch v := r.(type) {
				case string:
					if workers != 1 || v != "boom" {
						t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
					}
				case WorkerPanic:
					if workers == 1 {
						t.Fatalf("workers=1 inline path should not wrap, got %T", r)
					}
					if s, ok := v.Value.(string); !ok || s != "boom" {
						t.Fatalf("workers=%d: wrapped value %v, want boom", workers, v.Value)
					}
					if len(v.Stack) == 0 {
						t.Fatalf("workers=%d: WorkerPanic carries no stack", workers)
					}
				default:
					t.Fatalf("workers=%d: recovered %T %v", workers, r, r)
				}
			}()
			For(workers, 8, func(w, lo, hi int) {
				if lo == 0 {
					panic("boom")
				}
			})
		}()
	}
}

// TestForPanicCarriesWorkerStack pins the debugging contract: the
// propagated panic's stack names the function that actually panicked on
// the worker goroutine, not just the wg.Wait() frame of the caller.
func TestForPanicCarriesWorkerStack(t *testing.T) {
	defer func() {
		r := recover()
		wp, ok := r.(WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T, want WorkerPanic", r)
		}
		if !strings.Contains(string(wp.Stack), "explodingShard") {
			t.Errorf("worker stack does not name the panicking function:\n%s", wp.Stack)
		}
		if !strings.Contains(wp.Error(), "kaboom") || !strings.Contains(wp.Error(), "worker stack:") {
			t.Errorf("Error() = %q, want panic value and stack", wp.Error())
		}
	}()
	For(4, 8, func(w, lo, hi int) {
		if lo == 0 {
			explodingShard()
		}
	})
}

func explodingShard() { panic("kaboom") }

// TestWorkerPanicUnwrap: error panic values stay inspectable with
// errors.Is through the wrapper.
func TestWorkerPanicUnwrap(t *testing.T) {
	sentinel := errors.New("shard failed")
	defer func() {
		r := recover()
		wp, ok := r.(WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T, want WorkerPanic", r)
		}
		if !errors.Is(wp, sentinel) {
			t.Error("errors.Is does not see the original error through WorkerPanic")
		}
	}()
	For(2, 4, func(w, lo, hi int) { panic(sentinel) })
}
