package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestCount(t *testing.T) {
	if got := Count(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Count(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Count(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Count(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Count(7); got != 7 {
		t.Fatalf("Count(7) = %d", got)
	}
}

// TestForCoversRange checks every index is visited exactly once and
// worker ids stay dense, for worker counts below, at and above n.
func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 5, 16, 97} {
			visits := make([]int32, n)
			maxWorkers := workers
			if n < maxWorkers {
				maxWorkers = n
			}
			For(workers, n, func(w, lo, hi int) {
				if w < 0 || w >= maxWorkers {
					t.Errorf("workers=%d n=%d: worker id %d out of range", workers, n, w)
				}
				if lo >= hi {
					t.Errorf("workers=%d n=%d: empty shard [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// TestForSerialInline checks the workers<=1 path runs on the calling
// goroutine (shards execute in order with no interleaving).
func TestForSerialInline(t *testing.T) {
	var order []int
	For(1, 5, func(w, lo, hi int) {
		if w != 0 || lo != 0 || hi != 5 {
			t.Fatalf("serial shard (%d,%d,%d), want (0,0,5)", w, lo, hi)
		}
		for i := lo; i < hi; i++ {
			order = append(order, i)
		}
	})
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestForPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			For(workers, 8, func(w, lo, hi int) {
				if lo == 0 {
					panic("boom")
				}
			})
		}()
	}
}
