package server

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"eplace/internal/checkpoint"
	"eplace/internal/eco"
	"eplace/internal/synth"
)

// TestServerECOChain covers the checkpoint-expiry bugfix end to end: an
// ECO job chains off a completed job's pinned final checkpoint, the
// chain keeps working when latest.ckpt is gone (only the pin survives
// pruning), an ECO job can itself parent another ECO job, and a parent
// whose checkpoints are gone entirely is rejected with the typed
// ErrCheckpointExpired instead of an inconsistent 404.
func TestServerECOChain(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 1, WorkersPerJob: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	parent, err := s.Submit(JobSpec{
		Synth:    &synth.Spec{Name: "eco-parent", NumCells: 300, Seed: 5},
		MaxIters: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	pst := waitJob(t, s, parent.ID, "done", terminal)
	if pst.State != StateDone {
		t.Fatalf("parent ended %s: %s", pst.State, pst.Error)
	}
	ckptDir := filepath.Join(s.JobDir(parent.ID), "ckpt")
	if _, err := os.Stat(filepath.Join(ckptDir, checkpoint.FinalName)); err != nil {
		t.Fatalf("completed job has no pinned final checkpoint: %v", err)
	}

	// Simulate history/latest erosion: only the pinned final remains.
	if err := os.Remove(filepath.Join(ckptDir, checkpoint.LatestName)); err != nil {
		t.Fatal(err)
	}

	child, err := s.Submit(JobSpec{ECO: &ECOSpec{
		FromJob: parent.ID,
		Edits: eco.Script{AddCells: []eco.AddCell{
			{Name: "eco_x", W: 2, H: 1, NetIDs: []int{0, 1}},
		}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cst := waitJob(t, s, child.ID, "done", terminal)
	if cst.State != StateDone {
		t.Fatalf("eco child ended %s: %s", cst.State, cst.Error)
	}
	if cst.Result == nil || !cst.Result.Legal {
		t.Fatalf("eco child result = %+v", cst.Result)
	}
	if cst.Result.Iterations["active"] == 0 || cst.Result.Iterations["frozen"] == 0 {
		t.Fatalf("eco child did not split active/frozen: %v", cst.Result.Iterations)
	}

	// ECO off an ECO job: the lineage replays the ancestor edits.
	grand, err := s.Submit(JobSpec{ECO: &ECOSpec{
		FromJob: child.ID,
		Edits:   eco.Script{ReweightNets: []eco.Reweight{{NetID: 2, Weight: 4}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	gst := waitJob(t, s, grand.ID, "done", terminal)
	if gst.State != StateDone {
		t.Fatalf("eco grandchild ended %s: %s", gst.State, gst.Error)
	}

	// The completed parent's result must still be served...
	if st, err := s.Job(parent.ID); err != nil || st.Result == nil {
		t.Fatalf("parent result lost: %v %+v", err, st)
	}
	// ...but chaining off a job whose checkpoints are gone entirely is a
	// typed rejection, not a late 404.
	if err := os.RemoveAll(ckptDir); err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(JobSpec{ECO: &ECOSpec{
		FromJob: parent.ID,
		Edits:   eco.Script{ReweightNets: []eco.Reweight{{NetID: 0, Weight: 2}}},
	}})
	if !errors.Is(err, ErrCheckpointExpired) {
		t.Fatalf("expired-checkpoint submit returned %v, want ErrCheckpointExpired", err)
	}

	// Unknown parents and non-done parents are rejected up front.
	if _, err := s.Submit(JobSpec{ECO: &ECOSpec{FromJob: "job-999999", Edits: eco.Script{}}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown parent returned %v, want ErrNotFound", err)
	}
}
