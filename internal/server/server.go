// Package server turns the placement flow into a long-running
// multi-tenant job service: clients submit designs (a Bookshelf .aux
// on disk, uploaded Bookshelf file contents, or a synthetic-circuit
// spec), a bounded scheduler runs at most MaxConcurrent placements at
// a time with a per-job gradient-kernel worker budget, and every other
// job waits in a priority queue.
//
// The scheduler is preemptive: when a higher-priority job is waiting
// and every slot is busy, the lowest-priority running job is stopped
// through its flow context. Cancellation makes the flow persist a
// final mid-stage checkpoint (see core.PlaceContext), so the preempted
// job re-enters the queue and later resumes from exactly the iteration
// it was stopped at — the finished placement, including its per-stage
// golden-trace digests, is bitwise-identical to a never-preempted run.
// The same mechanism serves client cancellation and server shutdown;
// context.Cause distinguishes the three.
//
// All scheduling state lives behind one mutex and transitions happen
// at job start/finish and submit/cancel, so there is no scheduler
// goroutine to leak or to race with shutdown.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"eplace/internal/bookshelf"
	"eplace/internal/checkpoint"
	"eplace/internal/core"
	"eplace/internal/eco"
	"eplace/internal/metrics"
	"eplace/internal/netlist"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
)

// Config sizes the job server.
type Config struct {
	// MaxConcurrent bounds simultaneously running placements (default 2).
	MaxConcurrent int
	// WorkersPerJob is the gradient-kernel worker budget each running
	// job gets (default 1: jobs parallelize across slots, not within
	// them). A JobSpec may request fewer but never more.
	WorkersPerJob int
	// CheckpointEvery is the mid-stage snapshot cadence, in GP
	// iterations, for every job (default 25). Snapshots bound how much
	// work a preemption can lose and how stale a fetched checkpoint is;
	// cancellation additionally writes a final snapshot regardless.
	CheckpointEvery int
	// QueueLimit bounds jobs that are queued, preempted or running;
	// submits beyond it are rejected with ErrQueueFull (default 1024).
	QueueLimit int
	// Dir is the root directory for per-job state (checkpoints, traces,
	// results). Required.
	Dir string
	// Log, when non-nil, receives one line per scheduling event.
	Log io.Writer
}

func (c *Config) defaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.WorkersPerJob <= 0 {
		c.WorkersPerJob = 1
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 25
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 1024
	}
}

// JobSpec is a placement request. Exactly one design source must be
// set: Synth, AuxPath, or Files.
type JobSpec struct {
	// Synth generates a synthetic circuit server-side. The same spec
	// always yields the same circuit, which is what lets a preempted
	// job rebuild its design for the resumed segment.
	Synth *synth.Spec `json:"synth,omitempty"`
	// AuxPath names a Bookshelf .aux readable by the server process.
	AuxPath string `json:"aux_path,omitempty"`
	// Files uploads a Bookshelf design inline: name -> contents. Aux
	// names the entry to start from; defaults to the single *.aux file.
	Files map[string]string `json:"files,omitempty"`
	Aux   string            `json:"aux,omitempty"`
	// ECO chains an incremental re-placement off a completed job's
	// pinned final checkpoint instead of naming a design source.
	ECO *ECOSpec `json:"eco,omitempty"`

	// Priority orders the queue; higher runs first and may preempt
	// strictly lower. Default 0.
	Priority int `json:"priority,omitempty"`
	// Workers caps this job's gradient-kernel workers below the
	// server's per-job budget (0 = use the full budget).
	Workers int `json:"workers,omitempty"`

	// GridM, MaxIters and GPOnly forward to core.Options/FlowOptions.
	GridM    int  `json:"grid,omitempty"`
	MaxIters int  `json:"max_iters,omitempty"`
	GPOnly   bool `json:"gp_only,omitempty"`
}

// ECOSpec is the server's incremental-re-placement job kind: apply the
// edit script to the design of a completed job and warm-start from that
// job's final placement.
type ECOSpec struct {
	// FromJob is the completed job whose placement is edited.
	FromJob string `json:"from_job"`
	// Edits is the edit script (see eco.Script).
	Edits eco.Script `json:"edits"`
	// MaxIters bounds the incremental GP stage (0 = core default).
	MaxIters int `json:"max_iters,omitempty"`
}

func (s *JobSpec) validate() error {
	n := 0
	if s.Synth != nil {
		n++
	}
	if s.AuxPath != "" {
		n++
	}
	if len(s.Files) > 0 {
		n++
	}
	if s.ECO != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("server: spec needs exactly one of synth, aux_path, files, eco (got %d)", n)
	}
	if s.ECO != nil && s.ECO.FromJob == "" {
		return fmt.Errorf("server: eco spec needs from_job")
	}
	if s.Synth != nil && s.Synth.NumCells <= 0 {
		return fmt.Errorf("server: synth spec needs NumCells > 0")
	}
	if len(s.Files) > 0 && s.auxFile() == "" {
		return fmt.Errorf("server: files upload has no .aux entry")
	}
	return nil
}

// auxFile resolves the .aux entry of a Files upload.
func (s *JobSpec) auxFile() string {
	if s.Aux != "" {
		return s.Aux
	}
	names := make([]string, 0, len(s.Files))
	for name := range s.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if strings.HasSuffix(name, ".aux") {
			return name
		}
	}
	return ""
}

// JobState is a job's lifecycle state.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StatePreempted JobState = "preempted" // checkpointed, waiting to resume
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCanceled  JobState = "canceled"
)

// terminal reports whether the state can never change again.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// waiting reports whether the scheduler may start (or resume) the job.
func (s JobState) waiting() bool {
	return s == StateQueued || s == StatePreempted
}

// JobResult is the scorecard of a finished job.
type JobResult struct {
	Design     string                  `json:"design"`
	Cells      int                     `json:"cells"`
	Nets       int                     `json:"nets"`
	HPWL       float64                 `json:"hpwl"`
	Overflow   float64                 `json:"tau"`
	Legal      bool                    `json:"legal"`
	MixedSize  bool                    `json:"mixed_size,omitempty"`
	Iterations map[string]int          `json:"iterations,omitempty"`
	Stages     []telemetry.StageSeconds `json:"stages,omitempty"`
	// Digests are the per-stage golden-trace hashes; identical for a
	// preempted-and-resumed job and an uninterrupted run of the same
	// design (the service's determinism contract).
	Digests []telemetry.StageDigest `json:"digests,omitempty"`
	// Seconds is placement wall time summed over all run segments.
	Seconds float64 `json:"seconds"`
}

// JobStatus is a point-in-time view of a job.
type JobStatus struct {
	ID        string     `json:"id"`
	State     JobState   `json:"state"`
	Design    string     `json:"design"`
	Priority  int        `json:"priority"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Preemptions counts scheduler preemptions; Resumes counts run
	// segments that re-entered the flow from a checkpoint.
	Preemptions int    `json:"preemptions,omitempty"`
	Resumes     int    `json:"resumes,omitempty"`
	Error       string `json:"error,omitempty"`
	// Live progress of the current (or last) run segment.
	Stage     string  `json:"stage,omitempty"`
	Iteration int     `json:"iter,omitempty"`
	HPWL      float64 `json:"hpwl,omitempty"`
	Overflow  float64 `json:"tau,omitempty"`
	// RunSeconds is placement wall time spent so far (all segments).
	RunSeconds float64    `json:"run_seconds,omitempty"`
	Result     *JobResult `json:"result,omitempty"`
}

// Stats summarizes the server.
type Stats struct {
	MaxConcurrent int `json:"max_concurrent"`
	WorkersPerJob int `json:"workers_per_job"`
	Jobs          int `json:"jobs"`
	Running       int `json:"running"`
	Waiting       int `json:"waiting"`
	Done          int `json:"done"`
	Failed        int `json:"failed"`
	Canceled      int `json:"canceled"`
	// Preemptions counts scheduler preemptions across all jobs.
	Preemptions int `json:"preemptions"`
}

// Sentinel errors of the public API.
var (
	ErrNotFound  = errors.New("server: no such job")
	ErrQueueFull = errors.New("server: queue full")
	ErrClosed    = errors.New("server: shutting down")
	// ErrCheckpointExpired rejects an ECO submission whose parent job
	// has no loadable final checkpoint (pre-pinning job directory, or
	// state cleaned up out-of-band).
	ErrCheckpointExpired = errors.New("server: checkpoint expired")
)

// Cancellation causes, distinguished via context.Cause when a run
// segment comes back with core.ErrCanceled.
var (
	errPreempted    = errors.New("server: preempted by scheduler")
	errClientCancel = errors.New("server: canceled by client")
	errShutdown     = errors.New("server: server shutdown")
)

// job is the scheduler's bookkeeping for one submission. All mutable
// fields are guarded by Server.mu; spec, id, seq and dir are immutable
// after Submit.
type job struct {
	id   string
	seq  int
	spec JobSpec
	dir  string

	// ECO lineage, captured at Submit and immutable after: the root
	// design source (a non-ECO spec plus its job dir, for uploaded
	// files), the edit scripts of every ancestor ECO job in order, and
	// the parent's checkpoint directory. Rebuilding root + ancestor
	// edits reproduces the parent's design structure, which the parent
	// checkpoint's fingerprint verifies before positions are restored.
	baseSpec      JobSpec
	baseDir       string
	priorEdits    []eco.Script
	parentCkptDir string

	state       JobState
	preempting  bool // cancel(errPreempted) issued, runJob not yet back
	errMsg      string
	preemptions int
	resumes     int
	submitted   time.Time
	started     time.Time
	finished    time.Time
	runTotal    time.Duration
	cancel      context.CancelCauseFunc // non-nil while running
	result      *JobResult

	// ring buffers live telemetry across run segments; rec is the
	// current segment's recorder (progress snapshots).
	ring *telemetry.RingSink
	rec  *telemetry.Recorder
	mgr  *checkpoint.Manager
}

// Server is the placement job scheduler.
type Server struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[string]*job
	order   []*job // submission order, for listings
	seq     int
	running int
	closed  bool
	preempt int // total preemptions
	wg      sync.WaitGroup
}

// New creates a server rooted at cfg.Dir.
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("server: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating %s: %w", cfg.Dir, err)
	}
	return &Server{cfg: cfg, jobs: map[string]*job{}}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "server: "+format+"\n", args...)
	}
}

// Submit enqueues a job and returns its initial status. The scheduler
// starts it immediately when a slot is free.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	if err := spec.validate(); err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, ErrClosed
	}
	live := 0
	for _, j := range s.jobs {
		if !j.state.terminal() {
			live++
		}
	}
	if live >= s.cfg.QueueLimit {
		return JobStatus{}, ErrQueueFull
	}
	var baseSpec JobSpec
	var baseDir string
	var priorEdits []eco.Script
	var parentCkptDir string
	if spec.ECO != nil {
		p := s.jobs[spec.ECO.FromJob]
		if p == nil {
			return JobStatus{}, fmt.Errorf("%w: eco parent %q", ErrNotFound, spec.ECO.FromJob)
		}
		if p.state != StateDone {
			return JobStatus{}, fmt.Errorf("server: eco parent %s is %s, not done", p.id, p.state)
		}
		if !hasFinalCheckpoint(p.dir) {
			return JobStatus{}, fmt.Errorf("%w: job %s has no loadable final checkpoint", ErrCheckpointExpired, p.id)
		}
		if p.spec.ECO != nil {
			baseSpec, baseDir = p.baseSpec, p.baseDir
			priorEdits = append(append([]eco.Script(nil), p.priorEdits...), p.spec.ECO.Edits)
		} else {
			baseSpec, baseDir = p.spec, p.dir
		}
		parentCkptDir = filepath.Join(p.dir, "ckpt")
	}
	s.seq++
	id := fmt.Sprintf("job-%06d", s.seq)
	dir := filepath.Join(s.cfg.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return JobStatus{}, fmt.Errorf("server: job dir: %w", err)
	}
	if len(spec.Files) > 0 {
		ddir := filepath.Join(dir, "design")
		if err := os.MkdirAll(ddir, 0o755); err != nil {
			return JobStatus{}, fmt.Errorf("server: design dir: %w", err)
		}
		for name, content := range spec.Files {
			if name != filepath.Base(name) {
				return JobStatus{}, fmt.Errorf("server: file name %q must be a bare name", name)
			}
			if err := os.WriteFile(filepath.Join(ddir, name), []byte(content), 0o644); err != nil {
				return JobStatus{}, fmt.Errorf("server: writing upload: %w", err)
			}
		}
	}
	mgr, err := checkpoint.NewManager(filepath.Join(dir, "ckpt"))
	if err != nil {
		return JobStatus{}, err
	}
	j := &job{
		id:            id,
		seq:           s.seq,
		spec:          spec,
		dir:           dir,
		baseSpec:      baseSpec,
		baseDir:       baseDir,
		priorEdits:    priorEdits,
		parentCkptDir: parentCkptDir,
		state:         StateQueued,
		submitted:     time.Now(),
		ring:          telemetry.NewRingSink(1024),
		mgr:           mgr,
	}
	s.jobs[id] = j
	s.order = append(s.order, j)
	s.logf("%s submitted (%s, priority %d)", id, j.designLabel(), spec.Priority)
	s.scheduleLocked()
	return s.statusLocked(j), nil
}

// designLabel names the job's design source for logs and status.
func (j *job) designLabel() string {
	switch {
	case j.spec.ECO != nil:
		return "eco(" + j.spec.ECO.FromJob + ")"
	case j.spec.Synth != nil:
		if j.spec.Synth.Name != "" {
			return j.spec.Synth.Name
		}
		return fmt.Sprintf("synth-%d", j.spec.Synth.NumCells)
	case j.spec.AuxPath != "":
		return filepath.Base(j.spec.AuxPath)
	default:
		return j.spec.auxFile()
	}
}

// Cancel stops a job. A waiting job transitions to canceled directly;
// a running one is stopped through its flow context (it writes a final
// checkpoint first, then transitions). Cancel of a terminal job is a
// no-op.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobStatus{}, ErrNotFound
	}
	switch {
	case j.state.waiting():
		j.state = StateCanceled
		j.errMsg = "canceled before running"
		j.finished = time.Now()
		s.logf("%s canceled while waiting", id)
		s.scheduleLocked()
	case j.state == StateRunning && j.cancel != nil:
		j.preempting = false
		j.cancel(errClientCancel)
		s.logf("%s cancel requested", id)
	}
	return s.statusLocked(j), nil
}

// Job returns one job's status.
func (s *Server) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobStatus{}, ErrNotFound
	}
	return s.statusLocked(j), nil
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, j := range s.order {
		out = append(out, s.statusLocked(j))
	}
	return out
}

// Stats summarizes the scheduler.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		MaxConcurrent: s.cfg.MaxConcurrent,
		WorkersPerJob: s.cfg.WorkersPerJob,
		Jobs:          len(s.order),
		Preemptions:   s.preempt,
	}
	for _, j := range s.order {
		switch {
		case j.state == StateRunning:
			st.Running++
		case j.state.waiting():
			st.Waiting++
		case j.state == StateDone:
			st.Done++
		case j.state == StateFailed:
			st.Failed++
		case j.state == StateCanceled:
			st.Canceled++
		}
	}
	return st
}

// Ring exposes a job's live telemetry ring (nil for unknown jobs).
func (s *Server) Ring(id string) *telemetry.RingSink {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil {
		return j.ring
	}
	return nil
}

// JobDir returns a job's state directory ("" for unknown jobs). The
// HTTP layer serves trace/result/checkpoint artifacts out of it.
func (s *Server) JobDir(id string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil {
		return j.dir
	}
	return ""
}

// Close stops accepting jobs, cancels every running placement (each
// writes a final checkpoint and parks as preempted), and waits for
// them to drain. Waiting jobs stay queued; nothing restarts.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for _, j := range s.order {
		if j.state == StateRunning && j.cancel != nil {
			j.cancel(errShutdown)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// statusLocked snapshots a job. Caller holds s.mu.
func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Design:      j.designLabel(),
		Priority:    j.spec.Priority,
		Submitted:   j.submitted,
		Preemptions: j.preemptions,
		Resumes:     j.resumes,
		Error:       j.errMsg,
		RunSeconds:  j.runTotal.Seconds(),
		Result:      j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if snap := j.rec.Snapshot(); snap.Samples > 0 {
		st.Stage = snap.Stage
		st.Iteration = snap.Iteration
		st.HPWL = snap.HPWL
		st.Overflow = snap.Overflow
	}
	return st
}

// --- Scheduling. All *Locked methods run under s.mu. ---

// bestWaitingLocked picks the next job to start: highest priority,
// then oldest submission.
func (s *Server) bestWaitingLocked() *job {
	var best *job
	for _, j := range s.order {
		if !j.state.waiting() {
			continue
		}
		if best == nil || j.spec.Priority > best.spec.Priority {
			best = j
		}
	}
	return best
}

// preemptVictimLocked picks the running job to stop for a waiting job
// of the given priority: the lowest-priority running job, newest
// submission on ties — and only if strictly lower-priority than the
// waiting job, which is what makes preemption converge (a preempted
// job can never bounce right back and preempt its preemptor).
func (s *Server) preemptVictimLocked(priority int) *job {
	var victim *job
	for _, j := range s.order {
		if j.state != StateRunning || j.preempting {
			continue
		}
		if victim == nil || j.spec.Priority < victim.spec.Priority ||
			(j.spec.Priority == victim.spec.Priority && j.seq > victim.seq) {
			victim = j
		}
	}
	if victim == nil || victim.spec.Priority >= priority {
		return nil
	}
	return victim
}

// scheduleLocked fills free slots with the best waiting jobs, then —
// if the queue is still backed up behind full slots — preempts one
// strictly-lower-priority running job. It is called at every state
// transition (submit, cancel, job completion), so preemption drains
// one victim per transition until the high-priority backlog fits.
func (s *Server) scheduleLocked() {
	if s.closed {
		return
	}
	for s.running < s.cfg.MaxConcurrent {
		j := s.bestWaitingLocked()
		if j == nil {
			return
		}
		s.startLocked(j)
	}
	if waiter := s.bestWaitingLocked(); waiter != nil {
		if v := s.preemptVictimLocked(waiter.spec.Priority); v != nil {
			v.preempting = true
			v.preemptions++
			s.preempt++
			s.logf("%s preempted for %s (priority %d < %d)",
				v.id, waiter.id, v.spec.Priority, waiter.spec.Priority)
			v.cancel(errPreempted)
		}
	}
}

// startLocked launches one run segment for a waiting job.
func (s *Server) startLocked(j *job) {
	resume := j.state == StatePreempted
	j.state = StateRunning
	j.preempting = false
	if j.started.IsZero() {
		j.started = time.Now()
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	j.cancel = cancel
	s.running++
	s.wg.Add(1)
	s.logf("%s starting (resume=%v)", j.id, resume)
	go s.runJob(j, ctx, cancel, resume)
}

// buildDesign materializes the job's design. Called once per run
// segment: a resumed segment rebuilds the identical design (synthetic
// circuits are pure functions of their spec; Bookshelf inputs are
// re-read from the job dir) and the checkpoint fingerprint verifies
// the match before any positions are restored.
func (j *job) buildDesign() (*netlist.Design, error) {
	if j.spec.ECO != nil {
		// The parent's design is its root source plus every ancestor
		// edit script, replayed in order — a pure function of the specs,
		// like a synthetic circuit is of its generator spec.
		d, err := buildDesignFrom(j.baseSpec, j.baseDir)
		if err != nil {
			return nil, err
		}
		for i := range j.priorEdits {
			if _, err := eco.Apply(d, &j.priorEdits[i]); err != nil {
				return nil, fmt.Errorf("server: replaying ancestor edit %d: %w", i, err)
			}
		}
		return d, nil
	}
	return buildDesignFrom(j.spec, j.dir)
}

// buildDesignFrom materializes a non-ECO spec's design; dir is the
// spec's own job directory (uploaded files live under it).
func buildDesignFrom(spec JobSpec, dir string) (*netlist.Design, error) {
	var d *netlist.Design
	var err error
	switch {
	case spec.Synth != nil:
		d = synth.Generate(*spec.Synth)
	case spec.AuxPath != "":
		d, err = bookshelf.ReadAux(spec.AuxPath)
	default:
		d, err = bookshelf.ReadAux(filepath.Join(dir, "design", spec.auxFile()))
	}
	if err != nil {
		return nil, err
	}
	return d, d.Validate()
}

// hasFinalCheckpoint reports whether a job directory still holds a
// loadable end-of-run checkpoint (the pinned final, or latest for
// directories written before pinning existed).
func hasFinalCheckpoint(jobDir string) bool {
	for _, name := range []string{checkpoint.FinalName, checkpoint.LatestName} {
		if _, err := os.Stat(filepath.Join(jobDir, "ckpt", name)); err == nil {
			return true
		}
	}
	return false
}

// runJob executes one run segment: build the design, optionally load
// the resume checkpoint, run the flow under the job's cancelable
// context, then classify the outcome under the scheduler lock.
func (s *Server) runJob(j *job, ctx context.Context, cancel context.CancelCauseFunc, resume bool) {
	defer s.wg.Done()
	defer cancel(nil)

	fail := func(err error) {
		s.mu.Lock()
		j.cancel = nil
		j.state = StateFailed
		j.errMsg = err.Error()
		j.finished = time.Now()
		s.running--
		s.logf("%s failed: %v", j.id, err)
		s.scheduleLocked()
		s.mu.Unlock()
	}

	d, err := j.buildDesign()
	if err != nil {
		fail(err)
		return
	}

	workers := s.cfg.WorkersPerJob
	if j.spec.Workers > 0 && j.spec.Workers < workers {
		workers = j.spec.Workers
	}

	// Telemetry: the ring survives segments (live progress endpoint);
	// the JSONL trace appends, so the file holds the concatenated
	// per-iteration history of every segment.
	sinks := []telemetry.Sink{j.ring}
	tf, err := os.OpenFile(filepath.Join(j.dir, "trace.jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err == nil {
		sinks = append(sinks, telemetry.NewJSONLSink(tf))
	}
	rec := telemetry.New(sinks...)
	rec.SetWorkers(workers)
	s.mu.Lock()
	j.rec = rec
	s.mu.Unlock()

	resumed := false
	t0 := time.Now()
	var res core.FlowResult
	var ecoRes core.ECOResult
	if j.spec.ECO != nil {
		// ECO segments are short and deterministic; a preempted one
		// simply restarts from the parent checkpoint.
		ecoRes, err = j.runECO(ctx, d, rec, workers)
	} else {
		fo := core.FlowOptions{
			GP: core.Options{
				GridM:           j.spec.GridM,
				MaxIters:        j.spec.MaxIters,
				Workers:         workers,
				Telemetry:       rec,
				CheckpointEvery: s.cfg.CheckpointEvery,
			},
			SkipLegalization: j.spec.GPOnly,
			Checkpoint:       j.mgr,
		}
		if resume {
			if st, lerr := j.mgr.Load(); lerr == nil && st.Validate(d) == nil {
				fo.Resume = st
				resumed = true
			}
			// No loadable checkpoint (preempted before the first boundary
			// snapshot): run from scratch, which is the same trajectory.
		}
		res, err = core.PlaceContext(ctx, d, fo)
	}
	// runTotal is written only by this job's (serialized) run segments,
	// so reading it outside the lock is race-free; the locked store
	// below publishes the new value to status readers.
	total := j.runTotal + time.Since(t0)
	rec.Close()
	var result *JobResult
	if err == nil {
		// Result assembly rasterizes the layout and writes artifacts;
		// keep that out of the scheduler lock.
		if j.spec.ECO != nil {
			result = j.finishECO(d, ecoRes, total)
		} else {
			result = j.finish(d, res, total)
		}
		// Pin the end-of-run checkpoint so history pruning can never
		// strand an ECO chain off this job.
		if perr := j.mgr.PinFinal(); perr != nil {
			s.logf("%s pin final checkpoint: %v", j.id, perr)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	j.runTotal = total
	if resumed {
		j.resumes++
	}
	s.running--
	cause := context.Cause(ctx)
	switch {
	case err == nil:
		j.result = result
		j.state = StateDone
		j.finished = time.Now()
		s.logf("%s done: HPWL %.6g legal=%v (%.2fs over %d segments)",
			j.id, result.HPWL, result.Legal, j.runTotal.Seconds(), j.resumes+1)
	case errors.Is(err, core.ErrCanceled) && errors.Is(cause, errPreempted):
		j.state = StatePreempted
		s.logf("%s parked (checkpointed mid-flow)", j.id)
	case errors.Is(err, core.ErrCanceled) && errors.Is(cause, errShutdown):
		// Checkpointed; a future server over the same Dir could resume
		// it, but this process is going away.
		j.state = StatePreempted
		j.errMsg = "interrupted by server shutdown"
	case errors.Is(err, core.ErrCanceled):
		j.state = StateCanceled
		j.errMsg = "canceled"
		j.finished = time.Now()
		s.logf("%s canceled", j.id)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		j.finished = time.Now()
		s.logf("%s failed: %v", j.id, err)
	}
	s.scheduleLocked()
}

// finish assembles and persists the result artifacts of a completed
// job. Artifact write errors are logged, not fatal: the placement
// itself succeeded and the result is served from memory.
func (j *job) finish(d *netlist.Design, res core.FlowResult, total time.Duration) *JobResult {
	rep := metrics.Measure(d.Name, "ePlace", d, j.spec.GridM, total.Seconds(), res.Legal)
	r := &JobResult{
		Design:     d.Name,
		Cells:      len(d.Cells),
		Nets:       len(d.Nets),
		HPWL:       rep.HPWL,
		Overflow:   rep.Overflow,
		Legal:      res.Legal,
		MixedSize:  res.MixedSize,
		Iterations: map[string]int{"mGP": res.MGP.Iterations},
		Digests:    res.Digests,
		Seconds:    total.Seconds(),
	}
	if res.MixedSize {
		r.Iterations["cGP"] = res.CGP.Iterations
	}
	for _, st := range res.Stages {
		r.Stages = append(r.Stages, telemetry.StageSeconds{
			Name: st.Name, Seconds: st.Time.Seconds(),
		})
	}
	_ = bookshelf.WritePL(d, filepath.Join(j.dir, "result.pl"))
	if data, err := json.MarshalIndent(r, "", "  "); err == nil {
		_ = os.WriteFile(filepath.Join(j.dir, "result.json"), data, 0o644)
	}
	return r
}

// runECO executes an incremental re-placement segment: load the
// parent's pinned final checkpoint, warm-start d (the rebuilt parent
// design) from it, apply this job's edit script, and re-place only the
// affected cells.
func (j *job) runECO(ctx context.Context, d *netlist.Design, rec *telemetry.Recorder, workers int) (core.ECOResult, error) {
	pmgr, err := checkpoint.NewManager(j.parentCkptDir)
	if err != nil {
		return core.ECOResult{}, err
	}
	st, err := pmgr.LoadFinal()
	if err != nil {
		return core.ECOResult{}, fmt.Errorf("%w: loading parent checkpoint: %v", ErrCheckpointExpired, err)
	}
	if err := core.WarmStart(d, st); err != nil {
		return core.ECOResult{}, err
	}
	prep, err := eco.Prepare(d, &j.spec.ECO.Edits, eco.PlanOptions{})
	if err != nil {
		return core.ECOResult{}, err
	}
	return core.PlaceECO(ctx, d, prep.Plan, core.ECOOptions{
		GP: core.Options{
			GridM:     j.spec.GridM,
			Workers:   workers,
			Telemetry: rec,
			// The parent's Poisson backend, so the warm start continues
			// the trajectory the positions came from.
			Poisson: st.Poisson,
		},
		MaxIters:   j.spec.ECO.MaxIters,
		Checkpoint: j.mgr,
	})
}

// finishECO assembles and persists an ECO job's result artifacts.
func (j *job) finishECO(d *netlist.Design, res core.ECOResult, total time.Duration) *JobResult {
	rep := metrics.Measure(d.Name, "ePlace-ECO", d, j.spec.GridM, total.Seconds(), res.Legal)
	r := &JobResult{
		Design:   d.Name,
		Cells:    len(d.Cells),
		Nets:     len(d.Nets),
		HPWL:     rep.HPWL,
		Overflow: rep.Overflow,
		Legal:    res.Legal,
		Iterations: map[string]int{
			"eGP":    res.GP.Iterations,
			"active": res.ActiveCells,
			"frozen": res.FrozenCells,
		},
		Digests: res.Digests,
		Seconds: total.Seconds(),
	}
	for _, st := range res.Stages {
		r.Stages = append(r.Stages, telemetry.StageSeconds{
			Name: st.Name, Seconds: st.Time.Seconds(),
		})
	}
	_ = bookshelf.WritePL(d, filepath.Join(j.dir, "result.pl"))
	if data, err := json.MarshalIndent(r, "", "  "); err == nil {
		_ = os.WriteFile(filepath.Join(j.dir, "result.json"), data, 0o644)
	}
	return r
}
