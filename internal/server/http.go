package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"eplace/internal/checkpoint"
	"eplace/internal/telemetry"
)

// maxBodyBytes bounds a job submission (uploaded Bookshelf files
// travel inline in the JSON body).
const maxBodyBytes = 64 << 20

// Handler returns the HTTP API:
//
//	POST /jobs                  submit a JobSpec, 201 + JobStatus
//	GET  /jobs                  list all jobs
//	GET  /jobs/{id}             one job's status
//	POST /jobs/{id}/cancel      cancel (idempotent)
//	GET  /jobs/{id}/telemetry   recent per-iteration events as JSONL
//	GET  /jobs/{id}/trace       the full JSONL trace (all run segments)
//	GET  /jobs/{id}/result      JobResult (409 until the job is done)
//	GET  /jobs/{id}/result.pl   placed Bookshelf .pl
//	GET  /jobs/{id}/checkpoint  latest raw checkpoint file
//	GET  /status                scheduler Stats
//
// Errors are JSON objects {"error": "..."}.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{id}/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleArtifact("trace.jsonl", "application/x-ndjson"))
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/result.pl", s.handleArtifact("result.pl", "text/plain; charset=utf-8"))
	mux.HandleFunc("GET /jobs/{id}/checkpoint",
		s.handleArtifact(filepath.Join("ckpt", checkpoint.LatestName), "application/octet-stream"))
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "decoding spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+st.ID)
	writeJSON(w, http.StatusCreated, st)
}

// handleTelemetry streams the job's retained ring events in the same
// JSONL format the trace files use, so one decoder (ReadJSONL) serves
// both.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	ring := s.Ring(r.PathValue("id"))
	if ring == nil {
		writeError(w, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	sink := telemetry.NewJSONLSink(w)
	for _, sm := range ring.Samples() {
		sink.Sample(sm)
	}
	for _, sp := range ring.Spans() {
		sink.Span(sp)
	}
	sink.Close() // flush; w is not an io.Closer
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if st.Result == nil {
		writeJSON(w, http.StatusConflict,
			map[string]string{"error": fmt.Sprintf("job %s is %s, no result yet", st.ID, st.State)})
		return
	}
	writeJSON(w, http.StatusOK, st.Result)
}

// handleArtifact serves one file out of the job directory.
func (s *Server) handleArtifact(rel, contentType string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		dir := s.JobDir(r.PathValue("id"))
		if dir == "" {
			writeError(w, ErrNotFound)
			return
		}
		path := filepath.Join(dir, rel)
		if _, err := os.Stat(path); err != nil {
			writeJSON(w, http.StatusNotFound,
				map[string]string{"error": "artifact not available: " + rel})
			return
		}
		w.Header().Set("Content-Type", contentType)
		http.ServeFile(w, r, path)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrCheckpointExpired):
		code = http.StatusGone
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	default:
		code = http.StatusBadRequest
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// HTTPServer serves a Server's Handler on a listener.
type HTTPServer struct {
	s   *Server
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe starts serving s on addr (e.g. ":8080", or ":0" for
// an ephemeral test port).
func ListenAndServe(addr string, s *Server) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &HTTPServer{s: s, ln: ln, srv: &http.Server{Handler: s.Handler()}}
	go h.srv.Serve(ln)
	return h, nil
}

// Addr returns the bound listen address.
func (h *HTTPServer) Addr() string { return h.ln.Addr().String() }

// Close drains in-flight HTTP requests (bounded by a short timeout,
// then forced) without touching the job scheduler — callers shut the
// Server itself down separately so jobs checkpoint before exit.
func (h *HTTPServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		return h.srv.Close()
	}
	return nil
}
