package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"eplace/internal/core"
	"eplace/internal/synth"
	"eplace/internal/telemetry"
)

// waitJob polls until pred accepts the job's status.
func waitJob(t *testing.T, s *Server, id string, what string, pred func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Job(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if pred(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := s.Job(id)
	t.Fatalf("job %s never reached %s (stuck at %+v)", id, what, st)
	return JobStatus{}
}

func terminal(st JobStatus) bool { return st.State.terminal() }

// TestServerPreemptResumeBitwise is the service-level acceptance test:
// a single-slot server runs a low-priority job, a high-priority submit
// forces the scheduler to preempt it mid-flow via checkpoint, and after
// the high-priority job finishes the victim resumes and completes with
// golden-trace digests identical to an uninterrupted run of the same
// design.
func TestServerPreemptResumeBitwise(t *testing.T) {
	spec := synth.Spec{Name: "srv-victim", NumCells: 600, NumMovableMacros: 3}

	// Uninterrupted reference, same placement options the server uses.
	ref, err := core.Place(synth.Generate(spec), core.FlowOptions{
		GP: core.Options{GridM: 32, MaxIters: 500, Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{
		MaxConcurrent:   1,
		WorkersPerJob:   1,
		CheckpointEvery: 2,
		Dir:             t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	victim, err := s.Submit(JobSpec{
		Synth: &spec, GridM: 32, MaxIters: 500, Priority: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let the victim get well into mGP before the preemptor arrives.
	waitJob(t, s, victim.ID, "mid-mGP", func(st JobStatus) bool {
		return st.State == StateRunning && st.Stage == "mGP" && st.Iteration > 5
	})

	hi, err := s.Submit(JobSpec{
		Synth:    &synth.Spec{Name: "srv-urgent", NumCells: 120},
		GridM:    16,
		MaxIters: 200,
		Priority: 5,
		GPOnly:   true,
	})
	if err != nil {
		t.Fatal(err)
	}

	hiSt := waitJob(t, s, hi.ID, "terminal", terminal)
	if hiSt.State != StateDone {
		t.Fatalf("high-priority job ended %s (%s)", hiSt.State, hiSt.Error)
	}
	vSt := waitJob(t, s, victim.ID, "terminal", terminal)
	if vSt.State != StateDone {
		t.Fatalf("victim ended %s (%s)", vSt.State, vSt.Error)
	}
	if vSt.Preemptions < 1 {
		t.Errorf("victim recorded %d preemptions, want >= 1", vSt.Preemptions)
	}
	if vSt.Resumes < 1 {
		t.Errorf("victim recorded %d resumes, want >= 1", vSt.Resumes)
	}
	if vSt.Result == nil {
		t.Fatal("victim has no result")
	}
	if ok, why := telemetry.DigestsEqual(ref.Digests, vSt.Result.Digests); !ok {
		t.Errorf("preempted+resumed digests differ from uninterrupted run: %s", why)
	}
	if !vSt.Result.Legal {
		t.Error("victim result not legal")
	}
	if s.Stats().Preemptions < 1 {
		t.Errorf("server stats count %d preemptions", s.Stats().Preemptions)
	}
}

// TestServerConcurrentSubmitCancel hammers the scheduler from many
// goroutines: parallel submits of small jobs, cancels landing on
// queued and running jobs alike, everything draining to a consistent
// terminal census. Run under -race this is the scheduler's
// thread-safety test.
func TestServerConcurrentSubmitCancel(t *testing.T) {
	s, err := New(Config{
		MaxConcurrent:   2,
		WorkersPerJob:   1,
		CheckpointEvery: 5,
		Dir:             t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 12
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.Submit(JobSpec{
				Synth:    &synth.Spec{Name: fmt.Sprintf("srv-c%d", i), NumCells: 80 + 10*i},
				GridM:    16,
				MaxIters: 80,
				GPOnly:   true,
				Priority: i % 3,
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = st.ID
			if i%4 == 0 {
				// Cancel some jobs immediately: these land on queued or
				// just-started jobs nondeterministically.
				if _, err := s.Cancel(st.ID); err != nil {
					t.Errorf("cancel %s: %v", st.ID, err)
				}
			}
		}(i)
	}
	wg.Wait()

	done, canceled := 0, 0
	for _, id := range ids {
		if id == "" {
			continue
		}
		st := waitJob(t, s, id, "terminal", terminal)
		switch st.State {
		case StateDone:
			done++
			if st.Result == nil || st.Result.HPWL <= 0 {
				t.Errorf("%s done without a result", id)
			}
		case StateCanceled:
			canceled++
		default:
			t.Errorf("%s ended %s: %s", id, st.State, st.Error)
		}
	}
	if done == 0 {
		t.Error("no job completed")
	}
	if done+canceled != n {
		t.Errorf("census done=%d canceled=%d, want %d total", done, canceled, n)
	}
	stats := s.Stats()
	if stats.Running != 0 || stats.Waiting != 0 {
		t.Errorf("drained server still reports running=%d waiting=%d", stats.Running, stats.Waiting)
	}
}

// TestServerCloseCheckpointsRunning: shutdown cancels running jobs
// through their flow context, so each parks as preempted with a
// loadable checkpoint instead of losing its work.
func TestServerCloseCheckpointsRunning(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{MaxConcurrent: 1, CheckpointEvery: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(JobSpec{
		Synth: &synth.Spec{Name: "srv-shut", NumCells: 600, NumMovableMacros: 3},
		GridM: 32, MaxIters: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, st.ID, "mid-mGP", func(js JobStatus) bool {
		return js.State == StateRunning && js.Stage == "mGP" && js.Iteration > 3
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StatePreempted {
		t.Fatalf("job state after shutdown %s, want preempted", got.State)
	}
	if _, err := os.Stat(filepath.Join(dir, st.ID, "ckpt", "latest.ckpt")); err != nil {
		t.Errorf("no checkpoint on disk after shutdown: %v", err)
	}
}

// TestServerHTTP drives the wire API end-to-end: submit via POST,
// watch progress, fetch the result, the JSONL trace, the telemetry
// ring and the raw checkpoint, and cancel a queued job.
func TestServerHTTP(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 1, CheckpointEvery: 5, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h, err := ListenAndServe("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	base := "http://" + h.Addr()

	post := func(path string, body any) (*http.Response, []byte) {
		t.Helper()
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				t.Fatal(err)
			}
		}
		resp, err := http.Post(base+path, "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		return resp, out.Bytes()
	}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		return resp, out.Bytes()
	}

	resp, body := post("/jobs", JobSpec{
		Synth: &synth.Spec{Name: "http-a", NumCells: 150}, GridM: 16, MaxIters: 150,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	// A second submission that we cancel over the wire while the first
	// occupies the single slot.
	resp, body = post("/jobs", JobSpec{
		Synth: &synth.Spec{Name: "http-b", NumCells: 150}, GridM: 16, MaxIters: 150,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit b: %d %s", resp.StatusCode, body)
	}
	var stB JobStatus
	if err := json.Unmarshal(body, &stB); err != nil {
		t.Fatal(err)
	}
	if resp, body = post("/jobs/"+stB.ID+"/cancel", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d %s", resp.StatusCode, body)
	}

	// Result is a 409 until the job finishes.
	if resp, _ = get("/jobs/" + st.ID + "/result"); resp.StatusCode == http.StatusOK {
		if w := waitJob(t, s, st.ID, "terminal", terminal); w.State != StateDone {
			t.Fatalf("job a ended %s", w.State)
		}
	}
	fin := waitJob(t, s, st.ID, "terminal", terminal)
	if fin.State != StateDone {
		t.Fatalf("job a ended %s (%s)", fin.State, fin.Error)
	}

	resp, body = get("/jobs/" + st.ID + "/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, body)
	}
	var res JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.HPWL <= 0 || !res.Legal || len(res.Digests) == 0 {
		t.Errorf("implausible result over the wire: %+v", res)
	}

	// The trace artifact and the live ring both decode with ReadJSONL —
	// one wire format.
	resp, body = get("/jobs/" + st.ID + "/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d", resp.StatusCode)
	}
	events, err := telemetry.ReadJSONL(bytes.NewReader(body))
	if err != nil || len(events) == 0 {
		t.Fatalf("trace decode: %d events, %v", len(events), err)
	}
	resp, body = get("/jobs/" + st.ID + "/telemetry")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("telemetry: %d", resp.StatusCode)
	}
	if events, err = telemetry.ReadJSONL(bytes.NewReader(body)); err != nil || len(events) == 0 {
		t.Fatalf("telemetry decode: %d events, %v", len(events), err)
	}

	if resp, _ = get("/jobs/" + st.ID + "/checkpoint"); resp.StatusCode != http.StatusOK {
		t.Errorf("checkpoint fetch: %d", resp.StatusCode)
	}
	if resp, _ = get("/jobs/" + st.ID + "/result.pl"); resp.StatusCode != http.StatusOK {
		t.Errorf("result.pl fetch: %d", resp.StatusCode)
	}

	resp, body = get("/status")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	var stats Stats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Jobs != 2 || stats.Done < 1 {
		t.Errorf("status census %+v", stats)
	}

	if resp, _ = get("/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestJobSpecValidate rejects ambiguous and empty design sources.
func TestJobSpecValidate(t *testing.T) {
	bad := []JobSpec{
		{},
		{Synth: &synth.Spec{NumCells: 10}, AuxPath: "x.aux"},
		{Synth: &synth.Spec{}},
		{Files: map[string]string{"a.nodes": ""}},
	}
	for i, spec := range bad {
		if err := spec.validate(); err == nil {
			t.Errorf("spec %d validated, want error", i)
		}
	}
	ok := JobSpec{Files: map[string]string{"a.aux": "", "a.nodes": ""}}
	if err := ok.validate(); err != nil {
		t.Errorf("files spec rejected: %v", err)
	}
	if got := ok.auxFile(); got != "a.aux" {
		t.Errorf("auxFile = %q", got)
	}
}
