// Package sparse provides the minimal sparse linear algebra needed by
// the quadratic placement stages: symmetric positive-definite matrices
// in compressed sparse row form assembled from triplets, and a
// Jacobi-preconditioned conjugate gradient solver.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Builder accumulates (row, col, value) triplets; duplicates sum.
type Builder struct {
	n    int
	rows []int32
	cols []int32
	vals []float64
}

// NewBuilder creates a builder for an n x n matrix.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// Add accumulates a(i, j) += v.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("sparse: index (%d, %d) out of range for n=%d", i, j, b.n))
	}
	if v == 0 {
		return
	}
	b.rows = append(b.rows, int32(i))
	b.cols = append(b.cols, int32(j))
	b.vals = append(b.vals, v)
}

// AddSym accumulates the symmetric stamp of a spring between i and j
// with weight w: a(i,i)+=w, a(j,j)+=w, a(i,j)-=w, a(j,i)-=w.
func (b *Builder) AddSym(i, j int, w float64) {
	b.Add(i, i, w)
	b.Add(j, j, w)
	b.Add(i, j, -w)
	b.Add(j, i, -w)
}

// AddDiag accumulates a(i,i) += w (an anchor to a fixed location).
func (b *Builder) AddDiag(i int, w float64) { b.Add(i, i, w) }

// Build assembles the CSR matrix, merging duplicate entries.
func (b *Builder) Build() *CSR {
	m := len(b.vals)
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, c int) bool {
		ia, ic := order[a], order[c]
		if b.rows[ia] != b.rows[ic] {
			return b.rows[ia] < b.rows[ic]
		}
		return b.cols[ia] < b.cols[ic]
	})
	csr := &CSR{N: b.n, RowPtr: make([]int, b.n+1)}
	lastR, lastC := int32(-1), int32(-1)
	for _, k := range order {
		r, c, v := b.rows[k], b.cols[k], b.vals[k]
		if r == lastR && c == lastC {
			csr.Val[len(csr.Val)-1] += v
			continue
		}
		csr.Col = append(csr.Col, int(c))
		csr.Val = append(csr.Val, v)
		csr.RowPtr[r+1]++
		lastR, lastC = r, c
	}
	for i := 0; i < b.n; i++ {
		csr.RowPtr[i+1] += csr.RowPtr[i]
	}
	return csr
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	N      int
	RowPtr []int
	Col    []int
	Val    []float64
}

// MulVec computes y = A x.
func (a *CSR) MulVec(x, y []float64) {
	if len(x) != a.N || len(y) != a.N {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := 0; i < a.N; i++ {
		s := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.Col[k]]
		}
		y[i] = s
	}
}

// Diag extracts the diagonal into d.
func (a *CSR) Diag(d []float64) {
	if len(d) != a.N {
		panic("sparse: Diag dimension mismatch")
	}
	for i := 0; i < a.N; i++ {
		d[i] = 0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.Col[k] == i {
				d[i] = a.Val[k]
				break
			}
		}
	}
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	Iterations int
	Residual   float64 // final ||r|| / ||b||
	Converged  bool
}

// CG solves A x = b for symmetric positive-definite A using conjugate
// gradient with Jacobi (diagonal) preconditioning. x holds the initial
// guess on entry and the solution on return.
func CG(a *CSR, b, x []float64, tol float64, maxIter int) CGResult {
	n := a.N
	if len(b) != n || len(x) != n {
		panic("sparse: CG dimension mismatch")
	}
	if maxIter <= 0 {
		maxIter = 2 * n
	}
	inv := make([]float64, n)
	a.Diag(inv)
	for i := range inv {
		if inv[i] > 0 {
			inv[i] = 1 / inv[i]
		} else {
			inv[i] = 1
		}
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	a.MulVec(x, r)
	normB := 0.0
	for i := 0; i < n; i++ {
		r[i] = b[i] - r[i]
		normB += b[i] * b[i]
	}
	normB = math.Sqrt(normB)
	if normB == 0 {
		normB = 1
	}
	rz := 0.0
	for i := 0; i < n; i++ {
		z[i] = inv[i] * r[i]
		p[i] = z[i]
		rz += r[i] * z[i]
	}
	res := CGResult{}
	for it := 0; it < maxIter; it++ {
		normR := 0.0
		for i := 0; i < n; i++ {
			normR += r[i] * r[i]
		}
		normR = math.Sqrt(normR)
		res.Iterations = it
		res.Residual = normR / normB
		if res.Residual <= tol {
			res.Converged = true
			return res
		}
		a.MulVec(p, ap)
		pap := 0.0
		for i := 0; i < n; i++ {
			pap += p[i] * ap[i]
		}
		if pap <= 0 {
			// Not positive definite along p; bail out with best effort.
			return res
		}
		alpha := rz / pap
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rzNew := 0.0
		for i := 0; i < n; i++ {
			z[i] = inv[i] * r[i]
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			p[i] = z[i] + beta*p[i]
		}
	}
	// Final residual.
	a.MulVec(x, ap)
	normR := 0.0
	for i := 0; i < n; i++ {
		d := b[i] - ap[i]
		normR += d * d
	}
	res.Iterations = maxIter
	res.Residual = math.Sqrt(normR) / normB
	res.Converged = res.Residual <= tol
	return res
}
