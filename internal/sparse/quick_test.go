package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds a random diagonally-dominant SPD system.
func randomSPD(seed int64) (*CSR, []float64) {
	rng := rand.New(rand.NewSource(seed))
	n := 5 + rng.Intn(30)
	b := NewBuilder(n)
	for k := 0; k < 3*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			b.AddSym(i, j, rng.Float64())
		}
	}
	for i := 0; i < n; i++ {
		b.AddDiag(i, 0.5+rng.Float64())
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	return b.Build(), rhs
}

// Property: CG always converges on diagonally-dominant SPD systems and
// the returned residual matches a direct A*x - b check.
func TestQuickCGResidual(t *testing.T) {
	f := func(seed int64) bool {
		a, rhs := randomSPD(seed)
		x := make([]float64, a.N)
		res := CG(a, rhs, x, 1e-9, 10*a.N)
		if !res.Converged {
			return false
		}
		y := make([]float64, a.N)
		a.MulVec(x, y)
		normR, normB := 0.0, 0.0
		for i := range y {
			d := rhs[i] - y[i]
			normR += d * d
			normB += rhs[i] * rhs[i]
		}
		if normB == 0 {
			return normR < 1e-18
		}
		return math.Sqrt(normR/normB) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the assembled matrix is exactly symmetric when built from
// AddSym/AddDiag stamps: A*e_i dot e_j == A*e_j dot e_i.
func TestQuickSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		a, _ := randomSPD(seed)
		rng := rand.New(rand.NewSource(seed + 1))
		for trial := 0; trial < 5; trial++ {
			i, j := rng.Intn(a.N), rng.Intn(a.N)
			ei := make([]float64, a.N)
			ej := make([]float64, a.N)
			ei[i], ej[j] = 1, 1
			yi := make([]float64, a.N)
			yj := make([]float64, a.N)
			a.MulVec(ei, yi)
			a.MulVec(ej, yj)
			if math.Abs(yi[j]-yj[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MulVec is linear.
func TestQuickMulVecLinearity(t *testing.T) {
	f := func(seed int64, alphaRaw int8) bool {
		a, x := randomSPD(seed)
		alpha := float64(alphaRaw) / 16
		ax := make([]float64, a.N)
		a.MulVec(x, ax)
		scaled := make([]float64, a.N)
		for i := range x {
			scaled[i] = alpha * x[i]
		}
		aScaled := make([]float64, a.N)
		a.MulVec(scaled, aScaled)
		for i := range ax {
			if math.Abs(aScaled[i]-alpha*ax[i]) > 1e-9*(1+math.Abs(ax[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
