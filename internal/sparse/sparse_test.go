package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 1, 2)
	b.Add(0, 1, 3)
	b.Add(2, 2, 1)
	a := b.Build()
	if a.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", a.NNZ())
	}
	x := []float64{0, 1, 0}
	y := make([]float64, 3)
	a.MulVec(x, y)
	if y[0] != 5 {
		t.Errorf("merged entry = %v, want 5", y[0])
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	defer func() {
		if recover() == nil {
			t.Error("Add out of range did not panic")
		}
	}()
	b.Add(2, 0, 1)
}

func TestAddSymProducesLaplacian(t *testing.T) {
	b := NewBuilder(3)
	b.AddSym(0, 1, 2)
	b.AddSym(1, 2, 3)
	a := b.Build()
	want := [3][3]float64{{2, -2, 0}, {-2, 5, -3}, {0, -3, 3}}
	for i := 0; i < 3; i++ {
		e := make([]float64, 3)
		e[i] = 1
		row := make([]float64, 3)
		a.MulVec(e, row)
		for j := 0; j < 3; j++ {
			if math.Abs(row[j]-want[j][i]) > 1e-12 {
				t.Errorf("a[%d][%d] = %v, want %v", j, i, row[j], want[j][i])
			}
		}
	}
}

func TestDiag(t *testing.T) {
	b := NewBuilder(3)
	b.AddSym(0, 1, 2)
	b.AddDiag(2, 7)
	a := b.Build()
	d := make([]float64, 3)
	a.Diag(d)
	if d[0] != 2 || d[1] != 2 || d[2] != 7 {
		t.Errorf("Diag = %v", d)
	}
}

func TestCGSolvesIdentity(t *testing.T) {
	n := 10
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddDiag(i, 1)
	}
	a := b.Build()
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i)
	}
	x := make([]float64, n)
	res := CG(a, rhs, x, 1e-12, 100)
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-rhs[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], rhs[i])
		}
	}
}

func TestCGSolvesAnchoredLaplacian(t *testing.T) {
	// Chain 0-1-2-...-9 with both ends anchored: a standard placement
	// system. Anchors at value 0 and 9 with strong weight; interior
	// should approach linear interpolation.
	n := 10
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddSym(i, i+1, 1)
	}
	const anchor = 1e6
	b.AddDiag(0, anchor)
	b.AddDiag(n-1, anchor)
	a := b.Build()
	rhs := make([]float64, n)
	rhs[0] = anchor * 0
	rhs[n-1] = anchor * 9
	x := make([]float64, n)
	res := CG(a, rhs, x, 1e-10, 1000)
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	for i := 0; i < n; i++ {
		if math.Abs(x[i]-float64(i)) > 1e-3 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], float64(i))
		}
	}
}

func TestCGRandomSPD(t *testing.T) {
	// Random diagonally-dominant symmetric system; verify A x = b.
	rng := rand.New(rand.NewSource(3))
	n := 50
	b := NewBuilder(n)
	for k := 0; k < 200; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			b.AddSym(i, j, rng.Float64())
		}
	}
	for i := 0; i < n; i++ {
		b.AddDiag(i, 1+rng.Float64())
	}
	a := b.Build()
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	res := CG(a, rhs, x, 1e-10, 5000)
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	y := make([]float64, n)
	a.MulVec(x, y)
	for i := range y {
		if math.Abs(y[i]-rhs[i]) > 1e-7 {
			t.Errorf("residual at %d: %v", i, y[i]-rhs[i])
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	b := NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.AddDiag(i, 2)
	}
	a := b.Build()
	x := []float64{1, 2, 3, 4}
	res := CG(a, make([]float64, 4), x, 1e-10, 100)
	if !res.Converged {
		t.Fatalf("CG on zero rhs: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]) > 1e-8 {
			t.Errorf("x[%d] = %v, want 0", i, x[i])
		}
	}
}

func TestCGWarmStart(t *testing.T) {
	// Starting at the exact solution must converge immediately.
	n := 5
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddDiag(i, 3)
	}
	a := b.Build()
	rhs := []float64{3, 6, 9, 12, 15}
	x := []float64{1, 2, 3, 4, 5}
	res := CG(a, rhs, x, 1e-10, 100)
	if res.Iterations != 0 || !res.Converged {
		t.Errorf("warm start took %d iterations", res.Iterations)
	}
}

func TestMulVecDimensionPanic(t *testing.T) {
	a := NewBuilder(3).Build()
	defer func() {
		if recover() == nil {
			t.Error("MulVec mismatched dims did not panic")
		}
	}()
	a.MulVec(make([]float64, 2), make([]float64, 3))
}

func BenchmarkCGChain1000(b *testing.B) {
	n := 1000
	bu := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		bu.AddSym(i, i+1, 1)
	}
	bu.AddDiag(0, 1e6)
	bu.AddDiag(n-1, 1e6)
	a := bu.Build()
	rhs := make([]float64, n)
	rhs[n-1] = 1e6 * float64(n-1)
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		x := make([]float64, n)
		CG(a, rhs, x, 1e-8, 10000)
	}
}
