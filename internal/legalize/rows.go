// Package legalize turns global-placement layouts into legal ones: the
// two-level annealing macro legalizer mLG of Sec. VI-A, and row-based
// standard-cell legalization (greedy Tetris and Abacus-style cluster
// dynamic programming) used by the cDP stage. A legality checker
// validates results in tests and at stage boundaries.
package legalize

import (
	"fmt"
	"math"
	"sort"

	"eplace/internal/geom"
	"eplace/internal/netlist"
)

// BuildRows synthesizes uniform standard-cell rows covering the region
// when the design has none. rowHeight should match the standard-cell
// height; siteW is the x snap grid (0 disables snapping).
func BuildRows(d *netlist.Design, rowHeight, siteW float64) {
	if rowHeight <= 0 {
		panic("legalize: non-positive row height")
	}
	d.Rows = d.Rows[:0]
	r := d.Region
	for y := r.Ly; y+rowHeight <= r.Hy+1e-9; y += rowHeight {
		d.Rows = append(d.Rows, netlist.Row{
			Y: y, Height: rowHeight, Lx: r.Lx, Hx: r.Hx, SiteW: siteW,
		})
	}
}

// Segment is a free interval of one row between obstacles.
type Segment struct {
	Lx, Hx float64
}

// FreeSegments computes the obstacle-free intervals of every row:
// anything Fixed, plus macro-kind cells regardless of the Fixed flag
// (mLG runs before cell legalization), blocks the rows it crosses.
// Overlapping obstacles (e.g. pads under a macro) are merged.
func FreeSegments(d *netlist.Design) [][]Segment {
	segs := make([][]Segment, len(d.Rows))
	for ri, row := range d.Rows {
		// Collect blockage x-intervals intersecting this row.
		type iv struct{ lo, hi float64 }
		var blocks []iv
		rowRect := geom.Rect{Lx: row.Lx, Ly: row.Y, Hx: row.Hx, Hy: row.Y + row.Height}
		for i := range d.Cells {
			c := &d.Cells[i]
			if !c.Fixed && c.Kind != netlist.Macro {
				continue
			}
			if c.Kind == netlist.Filler {
				continue
			}
			r := c.Rect()
			if r.Intersects(rowRect) {
				blocks = append(blocks, iv{math.Max(r.Lx, row.Lx), math.Min(r.Hx, row.Hx)})
			}
		}
		sort.Slice(blocks, func(a, b int) bool { return blocks[a].lo < blocks[b].lo })
		x := row.Lx
		for _, b := range blocks {
			if b.lo > x {
				segs[ri] = append(segs[ri], Segment{x, b.lo})
			}
			if b.hi > x {
				x = b.hi
			}
		}
		if x < row.Hx {
			segs[ri] = append(segs[ri], Segment{x, row.Hx})
		}
	}
	return segs
}

// snap rounds x to the row's site grid.
func snap(row *netlist.Row, x float64) float64 {
	if row.SiteW <= 0 {
		return x
	}
	return row.Lx + math.Round((x-row.Lx)/row.SiteW)*row.SiteW
}

// CheckLegal verifies that the given standard cells are legally placed:
// inside the region, bottom-aligned to a row, non-overlapping with each
// other and with fixed objects/macros. It returns nil or a descriptive
// error for the first violation.
func CheckLegal(d *netlist.Design, cells []int) error {
	if len(d.Rows) == 0 {
		return fmt.Errorf("legalize: design has no rows")
	}
	// Determinism contract: rowAt is a membership set queried per cell,
	// never range-iterated; map order cannot affect the verdict.
	rowAt := make(map[float64]bool, len(d.Rows))
	for _, r := range d.Rows {
		rowAt[round6(r.Y)] = true
	}
	type placed struct {
		r  geom.Rect
		ci int
	}
	var all []placed
	for _, ci := range cells {
		c := &d.Cells[ci]
		r := c.Rect()
		if !d.Region.ContainsRect(r) {
			return fmt.Errorf("legalize: cell %d (%s) outside region: %v", ci, c.Name, r)
		}
		if !rowAt[round6(r.Ly)] {
			return fmt.Errorf("legalize: cell %d (%s) not row-aligned: y=%v", ci, c.Name, r.Ly)
		}
		all = append(all, placed{r, ci})
	}
	// Overlap among the legalized cells (sweep).
	sort.Slice(all, func(a, b int) bool { return all[a].r.Lx < all[b].r.Lx })
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if all[j].r.Lx >= all[i].r.Hx-1e-9 {
				break
			}
			if ov := all[i].r.Overlap(all[j].r); ov > 1e-6 {
				return fmt.Errorf("legalize: cells %d and %d overlap by %v", all[i].ci, all[j].ci, ov)
			}
		}
	}
	// Overlap with fixed objects and macros.
	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Fixed && c.Kind != netlist.Macro {
			continue
		}
		fr := c.Rect()
		for _, p := range all {
			if p.ci == i {
				continue
			}
			if ov := fr.Overlap(p.r); ov > 1e-6 {
				return fmt.Errorf("legalize: cell %d overlaps fixed/macro %d by %v", p.ci, i, ov)
			}
		}
	}
	return nil
}

// CheckMacrosLegal verifies macros are inside the region and mutually
// non-overlapping.
func CheckMacrosLegal(d *netlist.Design, macros []int) error {
	for _, mi := range macros {
		r := d.Cells[mi].Rect()
		if !d.Region.ContainsRect(r.Expand(-1e-9)) {
			return fmt.Errorf("legalize: macro %d outside region: %v", mi, r)
		}
	}
	for i := 0; i < len(macros); i++ {
		ri := d.Cells[macros[i]].Rect()
		for j := i + 1; j < len(macros); j++ {
			if ov := ri.Overlap(d.Cells[macros[j]].Rect()); ov > 1e-6 {
				return fmt.Errorf("legalize: macros %d and %d overlap by %v", macros[i], macros[j], ov)
			}
		}
	}
	return nil
}

func round6(x float64) float64 { return math.Round(x*1e6) / 1e6 }
