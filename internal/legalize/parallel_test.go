package legalize

import (
	"math"
	"math/rand"
	"testing"

	"eplace/internal/geom"
	"eplace/internal/netlist"
)

// bigLegalizeDesign builds a design large enough to split into several
// row bands (rows and cell count both above the banding thresholds).
func bigLegalizeDesign(n int, seed int64) (*netlist.Design, []int) {
	rng := rand.New(rand.NewSource(seed))
	// Size the region for ~55% utilization at average width 3.5.
	side := math.Sqrt(float64(n) * 3.5 * 2 / 0.55)
	side = math.Ceil(side/2) * 2
	d := netlist.New("lg-big", geom.Rect{Hx: side, Hy: side})
	BuildRows(d, 2, 1)
	var cells []int
	for i := 0; i < n; i++ {
		cells = append(cells, d.AddCell(netlist.Cell{
			W: float64(2 + rng.Intn(4)), H: 2,
			X: 2 + rng.Float64()*(side-4), Y: 2 + rng.Float64()*(side-4),
		}))
	}
	return d, cells
}

// TestCellsWorkersBitwiseIdentical is the banded-legalization half of
// the back-end determinism property: every worker count must produce
// bit-for-bit the same layout and displacement stats. The design is
// big enough (9000 cells, ~340 rows → 4 bands) that the partition is
// real.
func TestCellsWorkersBitwiseIdentical(t *testing.T) {
	for _, method := range []Method{Abacus, Tetris} {
		var refX, refY []float64
		var refTotal, refMax float64
		for _, w := range []int{1, 2, 7} {
			d, cells := bigLegalizeDesign(9000, 42)
			total, max, err := CellsWorkers(d, cells, method, w)
			if err != nil {
				t.Fatalf("method %d workers %d: %v", method, w, err)
			}
			if err := CheckLegal(d, cells); err != nil {
				t.Fatalf("method %d workers %d: not legal: %v", method, w, err)
			}
			if w == 1 {
				refTotal, refMax = total, max
				for _, ci := range cells {
					refX = append(refX, d.Cells[ci].X)
					refY = append(refY, d.Cells[ci].Y)
				}
				continue
			}
			if total != refTotal || max != refMax {
				t.Errorf("method %d workers %d: displacement (%v, %v) != serial (%v, %v)",
					method, w, total, max, refTotal, refMax)
			}
			for k, ci := range cells {
				if d.Cells[ci].X != refX[k] || d.Cells[ci].Y != refY[k] {
					t.Fatalf("method %d workers %d: cell %d at (%v, %v), serial (%v, %v)",
						method, w, ci, d.Cells[ci].X, d.Cells[ci].Y, refX[k], refY[k])
				}
			}
		}
	}
}

// TestMacrosWorkersBitwiseIdentical covers the mLG state-build
// parallelism: the annealer consumes one RNG stream, so identical
// state at every worker count means identical moves and layout.
func TestMacrosWorkersBitwiseIdentical(t *testing.T) {
	var refX, refY []float64
	var ref MLGResult
	for _, w := range []int{1, 2, 7} {
		d, macros := mlgDesign(8, 5)
		res := Macros(d, macros, MLGOptions{Seed: 3, Workers: w})
		if w == 1 {
			ref = res
			for _, mi := range macros {
				refX = append(refX, d.Cells[mi].X)
				refY = append(refY, d.Cells[mi].Y)
			}
			continue
		}
		if res != ref {
			t.Errorf("workers %d: result %+v != serial %+v", w, res, ref)
		}
		for k, mi := range macros {
			if d.Cells[mi].X != refX[k] || d.Cells[mi].Y != refY[k] {
				t.Fatalf("workers %d: macro %d at (%v, %v), serial (%v, %v)",
					w, mi, d.Cells[mi].X, d.Cells[mi].Y, refX[k], refY[k])
			}
		}
	}
}

// TestAbacusTrialAllocFree guards the satellite optimization: the
// per-candidate Abacus trial must not copy the cluster slice.
func TestAbacusTrialAllocFree(t *testing.T) {
	s := &seg{lx: 0, hx: 100}
	for i := 0; i < 20; i++ {
		abacusCommit(s, i, float64(i*4), 3)
		s.used += 3
	}
	allocs := testing.AllocsPerRun(100, func() {
		abacusTrial(s, 37, 3)
	})
	if allocs != 0 {
		t.Errorf("abacusTrial allocates %v objects per call, want 0", allocs)
	}
}

// BenchmarkLegalize measures banded row legalization end to end
// (5000 cells) at 1 worker; the harness restores the global-placement
// positions between runs so every iteration legalizes the same input.
func BenchmarkLegalize(b *testing.B) {
	d, cells := bigLegalizeDesign(5000, 7)
	saveX := make([]float64, len(d.Cells))
	saveY := make([]float64, len(d.Cells))
	for i := range d.Cells {
		saveX[i], saveY[i] = d.Cells[i].X, d.Cells[i].Y
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := range d.Cells {
			d.Cells[i].X, d.Cells[i].Y = saveX[i], saveY[i]
		}
		if _, _, err := CellsWorkers(d, cells, Abacus, 1); err != nil {
			b.Fatal(err)
		}
	}
}
